package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"simprof/internal/resilience"
	"simprof/internal/synth"
	"simprof/internal/trace"
)

// encodedTrace generates a synthetic trace and encodes it as gob.
func encodedTrace(t testing.TB, units int, seed uint64) []byte {
	t.Helper()
	tr, err := synth.DefaultTrace(units, seed).Generate()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf, "gob"); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// newTestServer builds a server over a temp history store and an
// httptest listener.
func newTestServer(t testing.TB, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.HistoryPath == "" {
		cfg.HistoryPath = filepath.Join(t.TempDir(), "history.jsonl")
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(srv.Close) // idempotent; stops the access logger and runtime collector
	return srv, ts
}

func postTrace(t testing.TB, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// decodeError unpacks the JSON error envelope.
func decodeError(t testing.TB, body []byte) errorBody {
	t.Helper()
	var e errorBody
	if err := json.Unmarshal(body, &e); err != nil {
		t.Fatalf("error body %q is not the JSON envelope: %v", body, err)
	}
	return e
}

// TestProfileHappyPath: upload → 200 with estimate and a persisted,
// queryable history record.
func TestProfileHappyPath(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	data := encodedTrace(t, 200, 7)

	resp, body := postTrace(t, ts.URL+"/v1/profile?n=30&seed=5", data)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
	var pr ProfileResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Units != 200 || pr.K < 1 || pr.EstCPI <= 0 || pr.N != 30 || pr.Seq != 1 {
		t.Fatalf("response %+v", pr)
	}

	// The record is listed and retrievable in full.
	resp2, err := http.Get(ts.URL + "/v1/history")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var rows []map[string]any
	if err := json.NewDecoder(resp2.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("history rows = %d, want 1", len(rows))
	}
	resp3, err := http.Get(fmt.Sprintf("%s/v1/history/%d", ts.URL, pr.Seq))
	if err != nil {
		t.Fatal(err)
	}
	defer resp3.Body.Close()
	if resp3.StatusCode != http.StatusOK {
		t.Fatalf("history/%d status %d", pr.Seq, resp3.StatusCode)
	}
	var rec struct {
		Manifest struct {
			Sampling struct {
				EstCPI float64 `json:"est_cpi"`
			} `json:"sampling"`
		} `json:"manifest"`
	}
	if err := json.NewDecoder(resp3.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	if rec.Manifest.Sampling.EstCPI != pr.EstCPI {
		t.Fatalf("persisted estimate %v != response %v", rec.Manifest.Sampling.EstCPI, pr.EstCPI)
	}
}

// TestProfileDeterministicAcrossRequests: same upload, same params →
// identical estimate (the service adds no nondeterminism).
func TestProfileDeterministicAcrossRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	data := encodedTrace(t, 150, 3)
	var estimates []float64
	for i := 0; i < 2; i++ {
		resp, body := postTrace(t, ts.URL+"/v1/profile?n=25&seed=9", data)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var pr ProfileResponse
		if err := json.Unmarshal(body, &pr); err != nil {
			t.Fatal(err)
		}
		estimates = append(estimates, pr.EstCPI)
	}
	if estimates[0] != estimates[1] {
		t.Fatalf("same request produced %v then %v", estimates[0], estimates[1])
	}
}

// TestProfileBadInput: garbage bytes → 400 with class bad_input, and
// the breaker stays closed no matter how many arrive.
func TestProfileBadInput(t *testing.T) {
	srv, ts := newTestServer(t, Config{Breaker: breakerCfg(2)})
	for i := 0; i < 6; i++ {
		resp, body := postTrace(t, ts.URL+"/v1/profile", []byte("definitely not a trace"))
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status %d, want 400; body %s", resp.StatusCode, body)
		}
		if e := decodeError(t, body); e.Class != "bad_input" {
			t.Fatalf("class %q, want bad_input", e.Class)
		}
	}
	// Malformed uploads never open the circuit.
	resp, body := postTrace(t, ts.URL+"/v1/profile?n=10", encodedTrace(t, 100, 1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("good upload after garbage flood: status %d, body %s", resp.StatusCode, body)
	}
	_ = srv
}

// TestProfileBadParams: malformed query knobs → 400.
func TestProfileBadParams(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, q := range []string{"?n=0", "?n=x", "?seed=-1"} {
		resp, body := postTrace(t, ts.URL+"/v1/profile"+q, []byte("x"))
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, body %s", q, resp.StatusCode, body)
		}
	}
}

// TestProfileEmptyBody: an empty upload is a 400, not a decode panic.
func TestProfileEmptyBody(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	resp, body := postTrace(t, ts.URL+"/v1/profile", nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, body %s", resp.StatusCode, body)
	}
}

// TestHealthAndMetrics: liveness always OK; metrics endpoint serves
// the obs snapshot shape.
func TestHealthAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, path := range []string{"/healthz", "/readyz", "/v1/metrics"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status %d", path, resp.StatusCode)
		}
	}
}

// TestDrainRefusesNewWork: after BeginDrain, profile requests get 503
// unavailable with Retry-After, readyz flips to 503, and Drain returns
// once in-flight work (none here) is gone.
func TestDrainRefusesNewWork(t *testing.T) {
	srv, ts := newTestServer(t, Config{})
	srv.BeginDrain()

	resp, body := postTrace(t, ts.URL+"/v1/profile", encodedTrace(t, 100, 1))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503; body %s", resp.StatusCode, body)
	}
	if e := decodeError(t, body); e.Class != "unavailable" {
		t.Fatalf("class %q, want unavailable", e.Class)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 without Retry-After")
	}

	r2, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	r2.Body.Close()
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d", r2.StatusCode)
	}

	ctx, cancel := ctxTimeout(t)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("Drain with nothing in flight: %v", err)
	}
}

// TestHistoryDisabled: HistoryPath "" serves profiles without
// persistence; Seq stays 0 and the history list is empty.
func TestHistoryDisabled(t *testing.T) {
	srv, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, body := postTrace(t, ts.URL+"/v1/profile?n=10", encodedTrace(t, 100, 2))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr ProfileResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Seq != 0 {
		t.Fatalf("Seq = %d with persistence off", pr.Seq)
	}
}

// breakerCfg builds a fast-tripping breaker for tests.
func breakerCfg(threshold int) resilience.BreakerConfig {
	return resilience.BreakerConfig{Threshold: threshold, Cooldown: 50 * time.Millisecond}
}

// ctxTimeout returns a context bounded by a generous test deadline.
func ctxTimeout(t testing.TB) (context.Context, context.CancelFunc) {
	t.Helper()
	return context.WithTimeout(context.Background(), 10*time.Second)
}

// sanity: keep the formats the CLI writes decodable by the server.
func TestServerAcceptsJSONTrace(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	tr, err := synth.DefaultTrace(100, 4).Generate()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.Encode(&buf, "json"); err != nil {
		t.Fatal(err)
	}
	resp, body := postTrace(t, ts.URL+"/v1/profile?n=10", buf.Bytes())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("json trace: status %d, body %s", resp.StatusCode, body)
	}
	_ = trace.FormatNames()
}
