// Package server implements simprofd, SimProf's resilience-first
// profiling service: trace upload → phase formation → stratified
// sampling → crash-safe history append, behind HTTP. Every failure
// mode maps to the typed error taxonomy of internal/resilience, and
// every refusal is explicit:
//
//   - per-request deadlines propagate as context cancellation through
//     the whole pipeline (decode, formation kernels, sampling), so an
//     abandoned request stops burning CPU;
//   - admission is a bounded queue — beyond it clients get 429 plus
//     Retry-After, not unbounded latency;
//   - transient history-store failures are retried with seeded
//     exponential backoff;
//   - a circuit breaker around the profile pipeline sheds load when
//     the pipeline itself is failing (not when clients send garbage);
//   - SIGTERM drains: new work is refused with 503 while in-flight
//     requests finish inside the drain budget.
//
// The pipeline stays bit-for-bit deterministic: the service adds
// refusals and retries around it, never alternative results.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"simprof/internal/batch"
	"simprof/internal/history"
	"simprof/internal/obs"
	"simprof/internal/obs/reqtrace"
	"simprof/internal/phase"
	"simprof/internal/resilience"
	"simprof/internal/sampling"
	"simprof/internal/stats"
	"simprof/internal/trace"
)

var (
	obsRequests = obs.NewCounter("server.requests",
		"HTTP requests received")
	obsProfilesOK = obs.NewCounter("server.profiles_ok",
		"profile requests completed and persisted")
	obsProfilesErr = obs.NewCounter("server.profiles_err",
		"profile requests that ended in any typed error")
	obsBodyBytes = obs.NewCounter("server.body_bytes",
		"trace upload bytes read")

	obsRequestsByRoute = obs.NewCounterVec("server.requests_by_route",
		"HTTP requests by normalized route and status", "route", "status")
	obsRequestsByTenant = obs.NewCounterVec("server.requests_by_tenant",
		"HTTP requests by tenant header", "tenant")
	obsErrorsByClass = obs.NewCounterVec("server.errors_by_class",
		"typed errors by resilience class and route", "class", "route")
	obsRequestSeconds = obs.NewHistogramVec("server.request_seconds",
		"request latency by route (cumulative since boot)",
		[]string{"route"},
		0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10)
)

// Config tunes a Server. The zero value selects the noted defaults.
type Config struct {
	// HistoryPath is the crash-safe JSONL store appended per profile.
	// Empty disables persistence (profiles still run; Seq is 0).
	HistoryPath string
	// Workers bounds the profile pipeline's kernel concurrency per
	// request (0 = GOMAXPROCS).
	Workers int
	// Concurrency is how many profile requests execute at once
	// (default 2); Queue how many more may wait (0 defaults to 8,
	// negative means no queue at all). Beyond that: 429.
	Concurrency int
	Queue       int
	// Timeout is the per-request deadline (default 30s). The handler
	// context carries it; pipeline work stops when it fires.
	Timeout time.Duration
	// Breaker wraps the profile pipeline (defaults per BreakerConfig).
	Breaker resilience.BreakerConfig
	// Retry is the store-append retry policy. Zero value means a
	// sensible default (3 attempts, 10ms base, jittered).
	Retry resilience.Retry
	// MaxBodyBytes caps trace uploads (default 64 MiB).
	MaxBodyBytes int64
	// AccessLog receives one structured JSON line per finished request
	// (nil disables access logging). Writes happen on a dedicated
	// goroutine; a slow sink drops lines instead of adding tail latency.
	AccessLog io.Writer
	// SLO is the objective set tracked live and served at /v1/slo.
	// nil selects DefaultSLOConfig.
	SLO *SLOConfig
	// RuntimeInterval is the period of the runtime-metrics collector
	// (goroutines, heap, GC pauses). 0 disables the collector.
	RuntimeInterval time.Duration
	// RequestIDSeed seeds generated request IDs for requests that carry
	// no X-Request-Id header; IDs are deterministic per (seed, arrival
	// index).
	RequestIDSeed uint64
	// Trace, when non-nil, turns on request tracing with stratified
	// tail-based retention (see internal/obs/reqtrace). nil disables it
	// entirely: the per-request cost of the disabled path is two nil
	// checks and zero allocations.
	Trace *reqtrace.Config
	// TraceStorePath persists every admitted trace as a durable history
	// record. Empty keeps the retained set in memory only. Ignored when
	// Trace is nil.
	TraceStorePath string
	// CacheEntries and CacheBytes bound the content-hash result cache
	// (0 selects 512 entries / 64 MiB). CacheEntries < 0 disables the
	// cache: every request coalesces or executes.
	CacheEntries int
	CacheBytes   int64
	// BatchSize and BatchWait tune the request batcher: a batch flushes
	// at BatchSize distinct requests (0 selects 8) or BatchWait after
	// its first enqueue (0 selects 2ms); an idle server flushes
	// immediately. BatchSize < 0 disables the whole batched path —
	// requests run the pre-batching inline pipeline with no cache and
	// no coalescing.
	BatchSize int
	BatchWait time.Duration
}

func (c Config) withDefaults() Config {
	if c.Concurrency <= 0 {
		c.Concurrency = 2
	}
	if c.Queue == 0 {
		c.Queue = 8
	} else if c.Queue < 0 {
		c.Queue = 0
	}
	if c.Timeout <= 0 {
		c.Timeout = 30 * time.Second
	}
	if c.Retry.Attempts == 0 {
		c.Retry = resilience.Retry{Attempts: 3, Base: 10 * time.Millisecond, Jitter: 0.5, Seed: 0x51dd}
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 64 << 20
	}
	return c
}

// profileOutcome is what the profile pipeline hands back for one
// upload.
type profileOutcome struct {
	Trace *trace.Trace
	Ph    *phase.Phases
	Sp    sampling.Stratified
}

// profileKey identifies one profile computation for dedup: the strong
// hash of the exact upload bytes plus the canonicalized sampling
// options. Workers is deliberately not part of the key — the pipeline
// is bit-identical across worker counts, so dedup across that knob is
// free. Two uploads with the same bytes but different n or seed get
// different keys and never share a result.
type profileKey struct {
	sum  [32]byte // sha256 of the raw trace upload
	opts string   // canonical "n=<n>,seed=<seed>"
}

// profilePayload carries one upload into the batcher, including the
// leader's request-trace collector so pipeline spans executed on a
// flush goroutine still land in the originating request's tree.
type profilePayload struct {
	data []byte
	n    int
	seed uint64
	col  *obs.Collector
}

// profileResult is the cacheable outcome of one executed profile:
// the response body (ElapsedMS zeroed; each request stamps its own),
// with Seq/Key referencing the history record the executing flight
// persisted — cache hits point at the original record instead of
// appending duplicates.
type profileResult struct {
	resp  ProfileResponse
	flush time.Duration // history persist time, retries included
	size  int64         // resident-byte estimate for the cache budget
}

// Server is the simprofd HTTP service. Construct with New; serve
// Handler(); stop with BeginDrain + Drain.
type Server struct {
	cfg   Config
	store *history.Store
	brk   *resilience.Breaker
	adm   *resilience.Admission
	drain *resilience.Drain
	mux   *http.ServeMux

	// group is the batched request path: content-hash cache, coalescing
	// of identical in-flight uploads, bounded batching of distinct ones.
	// nil (BatchSize < 0) selects the inline pipeline.
	group *batch.Group[profileKey, profilePayload, profileResult]

	slo         *sloTracker
	accessLog   *accessLogger
	stopRuntime func()
	tracer      *reqtrace.Engine // nil when request tracing is off
	reqSeq      atomic.Uint64    // arrival index for generated request IDs

	storeMu sync.Mutex // serializes Append's read-max-seq/write cycle

	// Test seams: the chaos harness swaps these to inject pipeline and
	// store faults without touching the HTTP machinery. nil selects the
	// real implementations.
	profileFn func(ctx context.Context, data []byte, n int, seed uint64) (*profileOutcome, error)
	appendFn  func(r *history.Record) (*history.Record, error)
}

// New builds a Server, recovering the history store's torn tail (if
// any) before accepting writes.
func New(cfg Config) (*Server, error) {
	c := cfg.withDefaults()
	if c.SLO != nil {
		if err := c.SLO.Validate(); err != nil {
			return nil, err
		}
	}
	s := &Server{
		cfg:   c,
		brk:   resilience.NewBreaker(c.Breaker),
		adm:   resilience.NewAdmission(c.Concurrency, c.Queue),
		drain: resilience.NewDrain(),
		slo:   newSLOTracker(c.SLO, nil),
	}
	if c.HistoryPath != "" {
		s.store = history.OpenDurable(c.HistoryPath)
		if _, err := s.store.RecoverTail(); err != nil {
			return nil, fmt.Errorf("server: history recovery: %w", err)
		}
	}
	var traceCfg *reqtrace.Config
	if c.Trace != nil {
		tc := *c.Trace
		if c.TraceStorePath != "" {
			tstore := history.OpenDurable(c.TraceStorePath)
			if _, err := tstore.RecoverTail(); err != nil {
				return nil, fmt.Errorf("server: trace store recovery: %w", err)
			}
			tc.Store = tstore
		}
		traceCfg = &tc
	}
	if c.BatchSize >= 0 {
		var cache *batch.Cache[profileKey, profileResult]
		if c.CacheEntries >= 0 {
			cache = batch.NewCache[profileKey, profileResult](c.CacheEntries, c.CacheBytes)
		}
		s.group = batch.NewGroup(batch.Config[profileKey, profilePayload, profileResult]{
			MaxBatch: c.BatchSize,
			MaxWait:  c.BatchWait,
			Exec:     s.execProfile,
			Size:     func(v profileResult) int64 { return v.size },
			Cache:    cache,
			Admit: func() (batch.Ticket, error) {
				t, err := s.adm.Enqueue()
				if err != nil {
					return nil, err
				}
				return t, nil
			},
		})
	}
	// Background goroutines start only after every fallible step, so a
	// failed New never leaks them.
	if traceCfg != nil {
		s.tracer = reqtrace.New(*traceCfg)
	}
	s.accessLog = newAccessLogger(c.AccessLog)
	s.stopRuntime = obs.StartRuntimeCollector(c.RuntimeInterval)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/profile", s.handleProfile)
	s.mux.HandleFunc("GET /v1/history", s.handleHistory)
	s.mux.HandleFunc("GET /v1/history/{seq}", s.handleHistoryOne)
	s.mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /metrics", s.handlePromMetrics)
	s.mux.HandleFunc("GET /v1/slo", s.handleSLO)
	s.mux.HandleFunc("GET /v1/traces", s.handleTraces)
	s.mux.HandleFunc("GET /v1/traces/{id}", s.handleTraceOne)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	return s, nil
}

// Close stops the server's background goroutines: the runtime-metrics
// collector, the trace-retention engine's persister (queue drained)
// and the access logger (which drains its queue and writes a final
// shutdown line). Call after Drain. Safe to call more than once.
func (s *Server) Close() {
	if s.stopRuntime != nil {
		s.stopRuntime()
	}
	if s.group != nil {
		s.group.Stop()
	}
	s.tracer.Stop()
	s.accessLog.Close()
}

// reqStats carries one request's identity and timing breakdown through
// the context: handlers fill in the pieces (class on error, body bytes,
// admission wait, persist time) and the Handler middleware emits them
// as labeled metrics, SLO window samples and one access-log line.
type reqStats struct {
	id     string
	tenant string
	route  string
	class  resilience.Class
	bytes  int64

	enqueue time.Duration // admission-queue wait
	flush   time.Duration // history persist, retries included
}

type ctxKey int

const reqStatsKey ctxKey = iota

// statsFrom returns the request's stats sink (nil when the middleware
// did not run, e.g. a handler invoked directly in a test).
func statsFrom(ctx context.Context) *reqStats {
	st, _ := ctx.Value(reqStatsKey).(*reqStats)
	return st
}

// RequestIDFrom returns the request ID the middleware assigned (empty
// outside a request).
func RequestIDFrom(ctx context.Context) string {
	if st := statsFrom(ctx); st != nil {
		return st.id
	}
	return ""
}

// routeOf normalizes a request path to a bounded route label, so path
// parameters (history seq) and unknown paths cannot explode metric
// cardinality.
func routeOf(path string) string {
	switch {
	case path == "/v1/profile":
		return "/v1/profile"
	case path == "/v1/history":
		return "/v1/history"
	case strings.HasPrefix(path, "/v1/history/"):
		return "/v1/history/{seq}"
	case path == "/v1/metrics":
		return "/v1/metrics"
	case path == "/v1/slo":
		return "/v1/slo"
	case path == "/v1/traces":
		return "/v1/traces"
	case strings.HasPrefix(path, "/v1/traces/"):
		return "/v1/traces/{id}"
	case path == "/metrics":
		return "/metrics"
	case path == "/healthz":
		return "/healthz"
	case path == "/readyz":
		return "/readyz"
	}
	return "other"
}

// statusRecorder captures the response status for the middleware.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (sr *statusRecorder) WriteHeader(code int) {
	if sr.status == 0 {
		sr.status = code
	}
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Write(b []byte) (int, error) {
	if sr.status == 0 {
		sr.status = http.StatusOK
	}
	return sr.ResponseWriter.Write(b)
}

// requestID returns the caller-provided X-Request-Id, or generates a
// deterministic one from the configured seed and the arrival index.
func (s *Server) requestID(r *http.Request) string {
	if id := r.Header.Get("X-Request-Id"); id != "" {
		if len(id) > 128 {
			id = id[:128]
		}
		return id
	}
	return fmt.Sprintf("%016x", stats.SplitSeed(s.cfg.RequestIDSeed, s.reqSeq.Add(1)))
}

// Handler returns the service's HTTP handler: the observability
// middleware (request ID, labeled metrics, SLO windows, access log)
// wrapping the route mux.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		obsRequests.Inc()
		tenant := r.Header.Get("X-Simprof-Tenant")
		if tenant == "" {
			tenant = "default"
		}
		st := &reqStats{
			id:     s.requestID(r),
			tenant: tenant,
			route:  routeOf(r.URL.Path),
		}
		w.Header().Set("X-Request-Id", st.id)
		// Request tracing: the collector attaches to this goroutine, so
		// the pipeline's ordinary StartSpan calls land in this request's
		// tree. ServeHTTP runs the handler synchronously on this
		// goroutine, which is what makes that safe.
		act := s.tracer.Start(st.id, st.route, st.tenant)
		sr := &statusRecorder{ResponseWriter: w}
		s.mux.ServeHTTP(sr, r.WithContext(context.WithValue(r.Context(), reqStatsKey, st)))
		if sr.status == 0 {
			sr.status = http.StatusOK
		}
		elapsed := time.Since(start)
		// Finish with the same elapsed the metrics and access log report,
		// so the retained trace's latency agrees with every other view.
		s.tracer.Finish(act, sr.status, st.class.String(), st.bytes, elapsed)

		obsRequestsByRoute.With(st.route, strconv.Itoa(sr.status)).Inc()
		obsRequestsByTenant.With(st.tenant).Inc()
		obsRequestSeconds.With(st.route).Observe(elapsed.Seconds())
		s.slo.observe(st.route, st.class, elapsed)
		s.accessLog.Log(accessEntry{
			ID:        st.id,
			Route:     st.route,
			Tenant:    st.tenant,
			Status:    sr.status,
			Class:     st.class.String(),
			Bytes:     st.bytes,
			EnqueueMS: durMS(st.enqueue),
			FlushMS:   durMS(st.flush),
			HandleMS:  durMS(elapsed),
		})
	})
}

// durMS renders a duration in float milliseconds.
func durMS(d time.Duration) float64 {
	return float64(d) / float64(time.Millisecond)
}

// BeginDrain flips the server to draining: profile requests are
// refused with 503 while in-flight ones keep running. Idempotent.
func (s *Server) BeginDrain() { s.drain.Begin() }

// Drain blocks until in-flight profile work finishes or ctx (the drain
// budget) expires.
func (s *Server) Drain(ctx context.Context) error { return s.drain.Wait(ctx) }

// errorBody is the uniform JSON error envelope.
type errorBody struct {
	Error string `json:"error"`
	Class string `json:"class"`
}

// writeError maps err through the resilience taxonomy onto status,
// Retry-After and the JSON envelope, and records the class on the
// request's stats (feeding the class-labeled error counter, the SLO
// windows and the access log).
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, err error) {
	class := resilience.Classify(err)
	route := routeOf(r.URL.Path)
	if st := statsFrom(r.Context()); st != nil {
		st.class = class
	}
	obsErrorsByClass.With(class.String(), route).Inc()
	if ra := s.retryAfter(err); ra > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(int(ra.Seconds()+1)))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(class.HTTPStatus())
	json.NewEncoder(w).Encode(errorBody{Error: err.Error(), Class: class.String()})
}

// retryAfter picks the Retry-After hint for a refusal: the breaker's
// remaining cooldown when it is the refuser, one second for queue
// overload and draining (retry against a peer or after the drain).
func (s *Server) retryAfter(err error) time.Duration {
	switch {
	case errors.Is(err, resilience.ErrBreakerOpen):
		if ra := s.brk.RetryAfter(); ra > 0 {
			return ra
		}
		return time.Second
	case errors.Is(err, resilience.ErrOverload), errors.Is(err, resilience.ErrDraining):
		return time.Second
	}
	return 0
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// ProfileResponse is the profile endpoint's success body.
type ProfileResponse struct {
	Seq        int     `json:"seq,omitempty"` // history record, 0 when persistence is off
	Key        string  `json:"key,omitempty"`
	Units      int     `json:"units"`
	K          int     `json:"k"`
	Silhouette float64 `json:"silhouette"`
	N          int     `json:"n"`
	EstCPI     float64 `json:"est_cpi"`
	SE         float64 `json:"se"`
	CILo       float64 `json:"ci_lo"`
	CIHi       float64 `json:"ci_hi"`
	Alloc      []int   `json:"alloc"`
	ElapsedMS  float64 `json:"elapsed_ms"`
}

// handleProfile is the hot path. With batching on (the default) it is
// content-hash dedup → coalesce/batch → admission-gated execution:
// parse, read and hash the upload, then hand the key to the batch
// group, which answers from the result cache, joins an identical
// in-flight request, or enqueues a new flight (refusing with 429 at
// enqueue when the admission queue is full). With BatchSize < 0 the
// original inline pipeline runs instead.
func (s *Server) handleProfile(w http.ResponseWriter, r *http.Request) {
	if s.group == nil {
		s.handleProfileInline(w, r)
		return
	}
	start := time.Now()
	exit, err := s.drain.Enter()
	if err != nil {
		obsProfilesErr.Inc()
		s.writeError(w, r, err)
		return
	}
	defer exit()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	st := statsFrom(ctx)

	n, seed, err := sampleParams(r)
	if err != nil {
		obsProfilesErr.Inc()
		s.writeError(w, r, err)
		return
	}
	data, err := readBody(ctx, r, s.cfg.MaxBodyBytes)
	if err != nil {
		obsProfilesErr.Inc()
		s.writeError(w, r, err)
		return
	}
	obsBodyBytes.Add(int64(len(data)))
	if st != nil {
		st.bytes = int64(len(data))
	}

	key := profileKey{sum: sha256.Sum256(data), opts: fmt.Sprintf("n=%d,seed=%d", n, seed)}
	payload := profilePayload{data: data, n: n, seed: seed, col: obs.CurrentCollector()}
	span := obs.StartSpan("batch.do")
	v, res, err := s.group.Do(ctx, key, payload)
	if span != nil {
		span.SetAttr("source", res.Source.String())
		span.SetAttr("batch_size", strconv.Itoa(res.BatchSize))
		span.SetAttr("enqueue_wait_ms", strconv.FormatFloat(durMS(res.EnqueueWait), 'f', 3, 64))
		span.SetAttr("exec_ms", strconv.FormatFloat(durMS(res.Exec), 'f', 3, 64))
		span.SetAttr("commit_ms", strconv.FormatFloat(durMS(res.Commit), 'f', 3, 64))
		span.End()
	}
	w.Header().Set("X-Simprof-Cache", res.Source.String())
	if st != nil {
		st.enqueue = res.EnqueueWait
		if res.Source == batch.Miss {
			st.flush = v.flush
		}
	}
	if err != nil {
		obsProfilesErr.Inc()
		s.writeError(w, r, err)
		return
	}
	resp := v.resp
	resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	obsProfilesOK.Inc()
	writeJSON(w, http.StatusOK, resp)
}

// execProfile runs one deduplicated flight on a batch-flush goroutine:
// breaker gate → pipeline → retried, fsynced history append. ctx is
// the flight context (alive until the last waiting request leaves).
// The leader's trace collector is adopted for the duration so the
// pipeline's spans land in that request's tree.
func (s *Server) execProfile(ctx context.Context, key profileKey, p profilePayload) (profileResult, error) {
	release := p.col.Adopt()
	defer release()
	span := obs.StartSpan("batch.exec")
	defer span.End()

	if err := s.brk.Allow(); err != nil {
		return profileResult{}, err
	}
	out, err := s.runProfile(ctx, p.data, p.n, p.seed)
	if err != nil {
		class := resilience.Classify(err)
		// The breaker guards the pipeline: internal faults and pipeline
		// timeouts count, caller-at-fault classes must not (a flood of
		// malformed uploads would otherwise take the service down for
		// well-behaved clients too).
		s.brk.Record(class == resilience.ClassInternal || class == resilience.ClassTimeout)
		return profileResult{}, err
	}
	s.brk.Record(false)

	resp := ProfileResponse{
		Units:      len(out.Trace.Units),
		K:          out.Ph.K,
		Silhouette: out.Ph.Silhouette,
		N:          p.n,
		EstCPI:     out.Sp.EstCPI,
		SE:         out.Sp.SE,
		CILo:       out.Sp.CI(0.997).Lo(),
		CIHi:       out.Sp.CI(0.997).Hi(),
		Alloc:      out.Sp.Alloc,
	}
	flushStart := time.Now()
	rec, err := s.persist(ctx, out, p.n, p.seed)
	flush := time.Since(flushStart)
	if err != nil {
		return profileResult{}, err
	}
	if rec != nil {
		resp.Seq, resp.Key = rec.Seq, rec.Key
	}
	// Resident-size estimate for the cache's byte budget: fixed struct
	// fields plus the allocation slice and key string.
	size := int64(224 + 8*len(resp.Alloc) + len(resp.Key) + len(key.opts))
	return profileResult{resp: resp, flush: flush, size: size}, nil
}

// handleProfileInline is the pre-batching request path (BatchSize < 0):
// admission → breaker → deadline-bound pipeline → retried, fsynced
// history append, all on the handler goroutine. Kept both as the
// de-risking escape hatch and as the baseline the storm benchmark
// measures batching against.
func (s *Server) handleProfileInline(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	exit, err := s.drain.Enter()
	if err != nil {
		obsProfilesErr.Inc()
		s.writeError(w, r, err)
		return
	}
	defer exit()

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.Timeout)
	defer cancel()
	st := statsFrom(ctx)

	enqStart := time.Now()
	release, err := s.adm.Acquire(ctx)
	if st != nil {
		st.enqueue = time.Since(enqStart)
	}
	if err != nil {
		obsProfilesErr.Inc()
		s.writeError(w, r, err)
		return
	}
	defer release()

	if err := s.brk.Allow(); err != nil {
		obsProfilesErr.Inc()
		s.writeError(w, r, err)
		return
	}

	n, seed, err := sampleParams(r)
	if err != nil {
		s.brk.Record(false) // client error: not the pipeline's fault
		obsProfilesErr.Inc()
		s.writeError(w, r, err)
		return
	}

	data, err := readBody(ctx, r, s.cfg.MaxBodyBytes)
	if err != nil {
		// A stalled or disconnected client is their failure, not the
		// pipeline's; don't feed it to the breaker.
		s.brk.Record(false)
		obsProfilesErr.Inc()
		s.writeError(w, r, err)
		return
	}
	obsBodyBytes.Add(int64(len(data)))
	if st != nil {
		st.bytes = int64(len(data))
	}

	out, err := s.runProfile(ctx, data, n, seed)
	if err != nil {
		class := resilience.Classify(err)
		s.brk.Record(class == resilience.ClassInternal || class == resilience.ClassTimeout)
		obsProfilesErr.Inc()
		s.writeError(w, r, err)
		return
	}
	s.brk.Record(false)

	resp := ProfileResponse{
		Units:      len(out.Trace.Units),
		K:          out.Ph.K,
		Silhouette: out.Ph.Silhouette,
		N:          n,
		EstCPI:     out.Sp.EstCPI,
		SE:         out.Sp.SE,
		CILo:       out.Sp.CI(0.997).Lo(),
		CIHi:       out.Sp.CI(0.997).Hi(),
		Alloc:      out.Sp.Alloc,
	}
	flushStart := time.Now()
	rec, err := s.persist(ctx, out, n, seed)
	if st != nil {
		st.flush = time.Since(flushStart)
	}
	if err != nil {
		obsProfilesErr.Inc()
		s.writeError(w, r, err)
		return
	}
	if rec != nil {
		resp.Seq, resp.Key = rec.Seq, rec.Key
	}
	resp.ElapsedMS = float64(time.Since(start)) / float64(time.Millisecond)
	obsProfilesOK.Inc()
	writeJSON(w, http.StatusOK, resp)
}

// sampleParams parses the n/seed query knobs.
func sampleParams(r *http.Request) (n int, seed uint64, err error) {
	n, seed = 20, 1
	if v := r.URL.Query().Get("n"); v != "" {
		n, err = strconv.Atoi(v)
		if err != nil || n <= 0 {
			return 0, 0, resilience.BadInput(fmt.Errorf("query n=%q must be a positive integer", v))
		}
	}
	if v := r.URL.Query().Get("seed"); v != "" {
		seed, err = strconv.ParseUint(v, 10, 64)
		if err != nil {
			return 0, 0, resilience.BadInput(fmt.Errorf("query seed=%q must be an unsigned integer", v))
		}
	}
	return n, seed, nil
}

// readBody reads the upload under the request context: a client that
// stalls past the deadline (or disconnects) yields the context error,
// not a hung handler. The reader goroutine never outlives the
// request — the server closes the body when the handler returns, which
// unblocks the pending Read.
func readBody(ctx context.Context, r *http.Request, maxBytes int64) ([]byte, error) {
	body := http.MaxBytesReader(nil, r.Body, maxBytes)
	type result struct {
		data []byte
		err  error
	}
	ch := make(chan result, 1)
	go func() {
		data, err := io.ReadAll(body)
		ch <- result{data, err}
	}()
	select {
	case res := <-ch:
		if res.err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(res.err, &tooBig) {
				return nil, resilience.BadInput(fmt.Errorf("trace upload exceeds %d bytes", tooBig.Limit))
			}
			return nil, resilience.BadInput(fmt.Errorf("reading trace upload: %w", res.err))
		}
		if len(res.data) == 0 {
			return nil, resilience.BadInput(errors.New("empty trace upload"))
		}
		return res.data, nil
	case <-ctx.Done():
		return nil, fmt.Errorf("reading trace upload: %w", ctx.Err())
	}
}

// runProfile executes the pipeline (or the injected test seam).
func (s *Server) runProfile(ctx context.Context, data []byte, n int, seed uint64) (*profileOutcome, error) {
	if s.profileFn != nil {
		return s.profileFn(ctx, data, n, seed)
	}
	return s.profile(ctx, data, n, seed)
}

// profile is the real pipeline: decode → form phases → sample, all
// under ctx.
func (s *Server) profile(ctx context.Context, data []byte, n int, seed uint64) (*profileOutcome, error) {
	tr, err := trace.DecodeBytesCtx(ctx, data)
	if err != nil {
		return nil, pipelineError("decode", err)
	}
	ph, err := phase.FormCtx(ctx, tr, phase.Options{Seed: seed, Workers: s.cfg.Workers})
	if err != nil {
		return nil, pipelineError("phase formation", err)
	}
	sp, err := sampling.SimProfCtx(ctx, ph, n, seed)
	if err != nil {
		return nil, pipelineError("sampling", err)
	}
	return &profileOutcome{Trace: tr, Ph: ph, Sp: sp}, nil
}

// pipelineError classifies a pipeline stage failure: context ends pass
// through (timeout/cancel), everything else means the uploaded trace
// cannot be profiled — the caller's fault, not the service's.
func pipelineError(stage string, err error) error {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return fmt.Errorf("%s: %w", stage, err)
	}
	return resilience.BadInput(fmt.Errorf("%s: %w", stage, err))
}

// persist appends the profile outcome to the history store, retrying
// transient failures with seeded backoff. Returns (nil, nil) when
// persistence is disabled.
func (s *Server) persist(ctx context.Context, out *profileOutcome, n int, seed uint64) (*history.Record, error) {
	if s.store == nil && s.appendFn == nil {
		return nil, nil
	}
	m := obs.NewManifest("simprofd profile", nil)
	m.Workload = &obs.WorkloadInfo{
		Benchmark: out.Trace.Benchmark,
		Framework: out.Trace.Framework,
		Input:     out.Trace.Input,
		Seed:      seed,
		Workers:   s.cfg.Workers,
		Units:     len(out.Trace.Units),
		UnitInstr: out.Trace.UnitInstr,
	}
	m.Phases = &obs.PhaseInfo{
		K:                out.Ph.K,
		Silhouette:       out.Ph.Silhouette,
		DegradedFraction: out.Ph.DegradedFraction(),
	}
	ci := out.Sp.CI(0.997)
	m.Sampling = &obs.SamplingInfo{
		Method: out.Sp.Method, N: n, Confidence: 0.997,
		EstCPI: out.Sp.EstCPI, SE: out.Sp.SE,
		CILo: ci.Lo(), CIHi: ci.Hi(),
		SEInflation: out.Sp.SEInflation,
	}
	rec := history.FromManifest(m)
	rec.Note = fmt.Sprintf("profile %s_%s n=%d", out.Trace.Benchmark, out.Trace.Framework, n)

	var saved *history.Record
	err := s.cfg.Retry.Do(ctx, nil, func(context.Context) error {
		var err error
		saved, err = s.append(rec)
		return err
	})
	if err != nil {
		return nil, fmt.Errorf("history append: %w", err)
	}
	return saved, nil
}

// append runs one store append under the serialization lock (Append's
// max-seq read and write must not interleave across requests).
func (s *Server) append(rec *history.Record) (*history.Record, error) {
	s.storeMu.Lock()
	defer s.storeMu.Unlock()
	if s.appendFn != nil {
		return s.appendFn(rec)
	}
	return s.store.Append(rec)
}

// handleHistory lists the store (seq, time, key, tool, note per line).
func (s *Server) handleHistory(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		writeJSON(w, http.StatusOK, []any{})
		return
	}
	recs, skipped, err := s.store.Records()
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	type row struct {
		Seq  int    `json:"seq"`
		Time string `json:"time,omitempty"`
		Key  string `json:"key"`
		Tool string `json:"tool,omitempty"`
		Note string `json:"note,omitempty"`
	}
	rows := make([]row, 0, len(recs))
	for _, rec := range recs {
		rows = append(rows, row{rec.Seq, rec.Time, rec.Key, rec.Tool, rec.Note})
	}
	if skipped > 0 {
		w.Header().Set("X-Simprof-Skipped-Lines", strconv.Itoa(skipped))
	}
	writeJSON(w, http.StatusOK, rows)
}

// handleHistoryOne returns one full record (manifest included).
func (s *Server) handleHistoryOne(w http.ResponseWriter, r *http.Request) {
	if s.store == nil {
		s.writeError(w, r, resilience.BadInput(errors.New("history persistence is disabled")))
		return
	}
	seq, err := strconv.Atoi(r.PathValue("seq"))
	if err != nil {
		s.writeError(w, r, resilience.BadInput(fmt.Errorf("bad seq %q", r.PathValue("seq"))))
		return
	}
	rec, err := s.store.Get(seq)
	if err != nil {
		s.writeError(w, r, resilience.BadInput(err))
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// syncScrapeCounters mirrors internally tracked tallies — the access
// logger's written/dropped line counts — onto their obs counters just
// before a snapshot, so the exposition always reflects the source of
// truth instead of a racing duplicate count.
func (s *Server) syncScrapeCounters() {
	obsAccessLogLines.Sync(s.accessLog.Written())
	obsAccessLogDropped.Sync(s.accessLog.Dropped())
}

// handleMetrics dumps the obs registry snapshot as JSON (the snapshot
// order is deterministic: name, kind, then sorted label pairs).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.syncScrapeCounters()
	writeJSON(w, http.StatusOK, obs.Default().Snapshot())
}

// handlePromMetrics serves the same snapshot in the Prometheus text
// exposition format for scrapers.
func (s *Server) handlePromMetrics(w http.ResponseWriter, r *http.Request) {
	s.syncScrapeCounters()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.WritePrometheus(w, obs.Default().Snapshot())
}

// handleSLO serves the live burn-rate view of the configured
// objectives.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.slo.status())
}

// handleHealthz: liveness — the process is up.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReadyz: readiness — refuses while draining or while the
// pipeline breaker is open, so load balancers steer traffic away
// before requests fail.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	active, waiting := s.adm.Depth()
	body := map[string]any{
		"breaker": s.brk.State().String(),
		"active":  active,
		"waiting": waiting,
	}
	switch {
	case s.drain.Draining():
		body["status"] = "draining"
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, body)
	case s.brk.State() == resilience.BreakerOpen:
		body["status"] = "breaker-open"
		w.Header().Set("Retry-After", strconv.Itoa(int(s.brk.RetryAfter().Seconds()+1)))
		writeJSON(w, http.StatusServiceUnavailable, body)
	default:
		body["status"] = "ok"
		writeJSON(w, http.StatusOK, body)
	}
}
