package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"testing"
	"time"
)

// stripVolatile decodes a profile response body and removes the
// per-request fields (elapsed_ms) so bodies can be compared
// bit-for-bit across serving paths.
func stripVolatile(t testing.TB, body []byte) string {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("response %q is not JSON: %v", body, err)
	}
	delete(m, "elapsed_ms")
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// historyManifestSections fetches one history record and returns its
// manifest's deterministic sections (workload, phases, sampling) as
// canonical JSON — the parts that must agree across serving paths.
func historyManifestSections(t testing.TB, baseURL string, seq int) string {
	t.Helper()
	resp, err := http.Get(fmt.Sprintf("%s/v1/history/%d", baseURL, seq))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("history %d: status %d body %s", seq, resp.StatusCode, body)
	}
	var rec struct {
		Manifest map[string]json.RawMessage `json:"manifest"`
	}
	if err := json.Unmarshal(body, &rec); err != nil {
		t.Fatal(err)
	}
	return fmt.Sprintf("workload=%s phases=%s sampling=%s",
		rec.Manifest["workload"], rec.Manifest["phases"], rec.Manifest["sampling"])
}

// TestBatchedResponsesBitIdentical: the batched path (cache +
// coalescing + batcher) and the inline path produce byte-identical
// response bodies and history manifests for the same request
// sequence — batching changes scheduling, never results.
func TestBatchedResponsesBitIdentical(t *testing.T) {
	_, batched := newTestServer(t, Config{})
	_, inline := newTestServer(t, Config{BatchSize: -1})

	traces := [][]byte{
		encodedTrace(t, 120, 3),
		encodedTrace(t, 200, 7),
		encodedTrace(t, 80, 11),
	}
	for i, data := range traces {
		url := fmt.Sprintf("/v1/profile?n=%d&seed=%d", 10+2*i, i+1)
		respB, bodyB := postTrace(t, batched.URL+url, data)
		respI, bodyI := postTrace(t, inline.URL+url, data)
		if respB.StatusCode != http.StatusOK || respI.StatusCode != http.StatusOK {
			t.Fatalf("trace %d: statuses %d/%d, bodies %s / %s",
				i, respB.StatusCode, respI.StatusCode, bodyB, bodyI)
		}
		if gotB, gotI := stripVolatile(t, bodyB), stripVolatile(t, bodyI); gotB != gotI {
			t.Fatalf("trace %d: batched and inline bodies differ:\n%s\n%s", i, gotB, gotI)
		}
		if respB.Header.Get("X-Simprof-Cache") != "miss" {
			t.Fatalf("trace %d: batched header %q, want miss", i, respB.Header.Get("X-Simprof-Cache"))
		}
		if h := respI.Header.Get("X-Simprof-Cache"); h != "" {
			t.Fatalf("inline path set X-Simprof-Cache=%q", h)
		}
	}
	for seq := 1; seq <= len(traces); seq++ {
		mb := historyManifestSections(t, batched.URL, seq)
		mi := historyManifestSections(t, inline.URL, seq)
		if mb != mi {
			t.Fatalf("seq %d: manifests differ:\n%s\n%s", seq, mb, mi)
		}
	}
}

// TestCachedResponseBitIdentical: a cache hit returns the computed
// response byte-for-byte (modulo elapsed_ms), referencing the
// originally persisted history record instead of appending another.
func TestCachedResponseBitIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	data := encodedTrace(t, 150, 5)

	resp1, body1 := postTrace(t, ts.URL+"/v1/profile?n=12&seed=4", data)
	resp2, body2 := postTrace(t, ts.URL+"/v1/profile?n=12&seed=4", data)
	if resp1.StatusCode != http.StatusOK || resp2.StatusCode != http.StatusOK {
		t.Fatalf("statuses %d/%d", resp1.StatusCode, resp2.StatusCode)
	}
	if h := resp1.Header.Get("X-Simprof-Cache"); h != "miss" {
		t.Fatalf("first header %q, want miss", h)
	}
	if h := resp2.Header.Get("X-Simprof-Cache"); h != "hit" {
		t.Fatalf("second header %q, want hit", h)
	}
	if got1, got2 := stripVolatile(t, body1), stripVolatile(t, body2); got1 != got2 {
		t.Fatalf("cached body differs from computed:\n%s\n%s", got1, got2)
	}

	// Dedup extends to the store: the duplicate upload appended nothing.
	resp, err := http.Get(ts.URL + "/v1/history")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rows []json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&rows); err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("history has %d records after a duplicate upload, want 1", len(rows))
	}
}

// TestIdenticalBytesDifferentOptionsMiss: the upload bytes alone are
// not the dedup key — the sampling options are part of it, so the same
// trace with different n or seed computes fresh.
func TestIdenticalBytesDifferentOptionsMiss(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	data := encodedTrace(t, 100, 9)

	urls := []string{"/v1/profile?n=10&seed=1", "/v1/profile?n=12&seed=1", "/v1/profile?n=10&seed=2"}
	for i, u := range urls {
		resp, body := postTrace(t, ts.URL+u, data)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d body %s", i, resp.StatusCode, body)
		}
		if h := resp.Header.Get("X-Simprof-Cache"); h != "miss" {
			t.Fatalf("request %d (%s): header %q, want miss (options must be in the key)", i, u, h)
		}
	}
}

// TestCacheEvictionUnderPressure: a one-entry cache evicts LRU — the
// evicted key recomputes on its next request.
func TestCacheEvictionUnderPressure(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheEntries: 1})
	a := encodedTrace(t, 100, 1)
	b := encodedTrace(t, 100, 2)

	post := func(data []byte) string {
		t.Helper()
		resp, body := postTrace(t, ts.URL+"/v1/profile?n=10", data)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d body %s", resp.StatusCode, body)
		}
		return resp.Header.Get("X-Simprof-Cache")
	}
	if h := post(a); h != "miss" {
		t.Fatalf("first A: %q, want miss", h)
	}
	if h := post(a); h != "hit" {
		t.Fatalf("second A: %q, want hit", h)
	}
	if h := post(b); h != "miss" {
		t.Fatalf("first B: %q, want miss", h)
	}
	if h := post(a); h != "miss" {
		t.Fatalf("A after eviction: %q, want miss", h)
	}
}

// TestCoalescedRequestsShareOneExecution: identical concurrent
// requests ride one pipeline execution; followers see the coalesced
// header and the same body.
func TestCoalescedRequestsShareOneExecution(t *testing.T) {
	leakCheck(t)
	srv, ts := newTestServer(t, Config{})
	var execs int
	var mu sync.Mutex
	gate := make(chan struct{})
	entered := make(chan struct{})
	srv.profileFn = func(ctx context.Context, data []byte, n int, seed uint64) (*profileOutcome, error) {
		mu.Lock()
		execs++
		mu.Unlock()
		entered <- struct{}{}
		<-gate
		return srv.profile(ctx, data, n, seed)
	}
	data := encodedTrace(t, 100, 6)

	type reply struct {
		header string
		body   string
		status int
	}
	replies := make(chan reply, 3)
	post := func() {
		resp, body := postTrace(t, ts.URL+"/v1/profile?n=10", data)
		replies <- reply{resp.Header.Get("X-Simprof-Cache"), stripVolatile(t, body), resp.StatusCode}
	}
	go post()
	<-entered
	go post()
	go post()
	waitFor(t, func() bool {
		_, waiters, _, _ := srv.group.Stats()
		return waiters == 3
	})
	close(gate)

	got := map[string]int{}
	bodies := map[string]bool{}
	for i := 0; i < 3; i++ {
		r := <-replies
		if r.status != http.StatusOK {
			t.Fatalf("status %d", r.status)
		}
		got[r.header]++
		bodies[r.body] = true
	}
	if got["miss"] != 1 || got["coalesced"] != 2 {
		t.Fatalf("headers = %v, want 1 miss + 2 coalesced", got)
	}
	if len(bodies) != 1 {
		t.Fatalf("coalesced bodies differ: %v", bodies)
	}
	if execs != 1 {
		t.Fatalf("pipeline ran %d times, want 1", execs)
	}
}

// TestLeaderCancelHandsOffToFollowerHTTP: the request that started a
// flight aborting must not kill the shared execution — a concurrent
// identical request still gets the result.
func TestLeaderCancelHandsOffToFollowerHTTP(t *testing.T) {
	leakCheck(t)
	srv, ts := newTestServer(t, Config{})
	gate := make(chan struct{})
	entered := make(chan struct{})
	srv.profileFn = func(ctx context.Context, data []byte, n int, seed uint64) (*profileOutcome, error) {
		entered <- struct{}{}
		select {
		case <-gate:
			return srv.profile(ctx, data, n, seed)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	data := encodedTrace(t, 100, 13)

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		req, err := http.NewRequestWithContext(leaderCtx, http.MethodPost,
			ts.URL+"/v1/profile?n=10", bytes.NewReader(data))
		if err != nil {
			leaderDone <- err
			return
		}
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		leaderDone <- err
	}()
	<-entered

	followerDone := make(chan reply2, 1)
	go func() {
		resp, body := postTrace(t, ts.URL+"/v1/profile?n=10", data)
		followerDone <- reply2{resp.StatusCode, resp.Header.Get("X-Simprof-Cache"), body}
	}()
	waitFor(t, func() bool {
		_, waiters, _, _ := srv.group.Stats()
		return waiters == 2
	})

	cancelLeader()
	if err := <-leaderDone; err == nil {
		t.Fatal("canceled leader request returned without error")
	}
	close(gate)
	r := <-followerDone
	if r.status != http.StatusOK {
		t.Fatalf("follower status %d body %s (execution died with the leader)", r.status, r.body)
	}
	if r.header != "coalesced" {
		t.Fatalf("follower header %q, want coalesced", r.header)
	}
}

type reply2 struct {
	status int
	header string
	body   []byte
}

// TestMaxBodyLimitBadInput: an upload over -max-body is refused as the
// caller's fault (400 bad_input), on the batched path.
func TestMaxBodyLimitBadInput(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBodyBytes: 64})
	data := encodedTrace(t, 200, 3) // well over 64 bytes

	resp, body := postTrace(t, ts.URL+"/v1/profile?n=10", data)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400; body %s", resp.StatusCode, body)
	}
	if e := decodeError(t, body); e.Class != "bad_input" {
		t.Fatalf("class %q, want bad_input", e.Class)
	}
}

// TestChaosDuplicateStorm: a concurrent storm of duplicate uploads —
// some clients abandoning mid-flight — resolves with every surviving
// request answered consistently and no leaked goroutines.
func TestChaosDuplicateStorm(t *testing.T) {
	leakCheck(t)
	withObs(t)
	_, ts := newTestServer(t, Config{Concurrency: 2, Queue: 64})

	pool := [][]byte{
		encodedTrace(t, 80, 21),
		encodedTrace(t, 80, 22),
		encodedTrace(t, 80, 23),
	}
	rng := rand.New(rand.NewSource(99))
	const storm = 24
	var ok, canceled int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < storm; i++ {
		data := pool[rng.Intn(len(pool))]
		abandon := rng.Intn(4) == 0
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx := context.Background()
			if abandon {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, time.Millisecond)
				defer cancel()
			}
			req, err := http.NewRequestWithContext(ctx, http.MethodPost,
				ts.URL+"/v1/profile?n=10", bytes.NewReader(data))
			if err != nil {
				t.Error(err)
				return
			}
			resp, err := http.DefaultClient.Do(req)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				canceled++
				return
			}
			defer resp.Body.Close()
			io.Copy(io.Discard, resp.Body)
			switch resp.StatusCode {
			case http.StatusOK:
				ok++
			case http.StatusTooManyRequests, http.StatusGatewayTimeout:
				// acceptable under storm backpressure
			default:
				t.Errorf("unexpected status %d", resp.StatusCode)
			}
		}()
	}
	wg.Wait()
	if ok == 0 {
		t.Fatal("no request in the storm succeeded")
	}
	t.Logf("storm: %d ok, %d client-canceled of %d", ok, canceled, storm)
}
