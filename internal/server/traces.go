package server

import (
	"errors"
	"fmt"
	"net/http"
	"strconv"

	"simprof/internal/obs/reqtrace"
	"simprof/internal/obs/traceevent"
	"simprof/internal/resilience"
)

// Trace endpoints. GET /v1/traces answers "what is retention doing and
// what does it hold" — the engine status (per-stratum inclusion
// probabilities, the weighted latency estimate) plus a filterable
// trace listing. GET /v1/traces/{id} exports one retained trace as a
// Chrome trace-event file, loadable in any about:tracing-compatible
// viewer.

// TracesResponse is the trace listing endpoint's body.
type TracesResponse struct {
	Status reqtrace.Status    `json:"status"`
	Traces []reqtrace.Summary `json:"traces"`
}

// errTracingDisabled is the uniform refusal when the engine is off.
var errTracingDisabled = errors.New("request tracing is disabled (start simprofd with -trace)")

// handleTraces lists retained traces with the engine's retention
// status. Query knobs: route, status_class and latency_bucket filter;
// set=recent switches to the most-recent-completions ring; limit
// bounds the listing (newest win), default 100, 0 means unlimited.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		s.writeError(w, r, resilience.BadInput(errTracingDisabled))
		return
	}
	opts, err := listOptions(r)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	traces := s.tracer.List(opts)
	if traces == nil {
		traces = []reqtrace.Summary{}
	}
	writeJSON(w, http.StatusOK, TracesResponse{Status: s.tracer.Status(), Traces: traces})
}

// listOptions parses the listing filters.
func listOptions(r *http.Request) (opts reqtrace.ListOptions, err error) {
	q := r.URL.Query()
	opts.Route = q.Get("route")
	opts.StatusClass = q.Get("status_class")
	opts.LatencyBucket = q.Get("latency_bucket")
	opts.Limit = 100
	switch set := q.Get("set"); set {
	case "", "retained":
	case "recent":
		opts.Recent = true
	default:
		return opts, resilience.BadInput(fmt.Errorf("query set=%q must be 'retained' or 'recent'", set))
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return opts, resilience.BadInput(fmt.Errorf("query limit=%q must be a non-negative integer", v))
		}
		opts.Limit = n
	}
	return opts, nil
}

// handleTraceOne exports one retained trace in the Chrome trace-event
// format. The span tree becomes the event lanes; the request's
// identity and retention bookkeeping ride in the process name.
func (s *Server) handleTraceOne(w http.ResponseWriter, r *http.Request) {
	if s.tracer == nil {
		s.writeError(w, r, resilience.BadInput(errTracingDisabled))
		return
	}
	id := r.PathValue("id")
	t := s.tracer.Get(id)
	if t == nil {
		s.writeError(w, r, resilience.BadInput(fmt.Errorf("no retained trace with id %q", id)))
		return
	}
	process := fmt.Sprintf("simprofd %s %s status=%d %.2fms", t.ID, t.Route, t.Status, t.LatencyMS())
	f := traceevent.FromSpans(process, t.Spans, nil)
	if err := f.Validate(); err != nil {
		s.writeError(w, r, fmt.Errorf("trace export: %w", err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	f.Encode(w)
}
