// Chaos harness: every test injects a fault — stalled clients,
// mid-request cancellation, torn history appends, pipeline crashes,
// overload, drain during in-flight work — and asserts the three
// service invariants: (1) every fault surfaces as a typed error from
// the resilience taxonomy (or a clean recovery), (2) no goroutines
// leak, (3) the history store never serves a corrupt record.
package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"simprof/internal/faults"
	"simprof/internal/history"
	"simprof/internal/obs"
	"simprof/internal/phase"
	"simprof/internal/resilience"
	"simprof/internal/trace"
)

// leakCheck snapshots the goroutine count and fails the test if it has
// not settled back by the end (with retries — the HTTP machinery winds
// down asynchronously).
func leakCheck(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		var now int
		for time.Now().Before(deadline) {
			now = runtime.NumGoroutine()
			if now <= before {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		t.Errorf("goroutines grew from %d to %d — leak", before, now)
	})
}

// withObs enables telemetry for the test and restores the previous
// state afterwards.
func withObs(t *testing.T) {
	t.Helper()
	was := obs.Enabled()
	obs.Enable()
	t.Cleanup(func() {
		if !was {
			obs.Disable()
		}
	})
}

// TestChaosMidRequestCancel: a client that abandons its request stops
// the pipeline's CPU work — observed through the parallel engine's
// abandonment counters, which only move when kernel loops cut out
// early.
func TestChaosMidRequestCancel(t *testing.T) {
	leakCheck(t)
	withObs(t)
	abandoned := obs.NewCounter("parallel.chunks_abandoned", "")
	canceledLoops := obs.NewCounter("parallel.ctx_canceled_loops", "")
	before, beforeLoops := abandoned.Value(), canceledLoops.Value()

	srv, ts := newTestServer(t, Config{})
	started := make(chan struct{})
	// Seam: decode outside the request context (the upload is fine),
	// then run phase formation under the canceled request context — the
	// kernels must abandon their chunk grids.
	srv.profileFn = func(ctx context.Context, data []byte, n int, seed uint64) (*profileOutcome, error) {
		close(started)
		<-ctx.Done()
		tr, err := trace.DecodeBytesCtx(context.Background(), data)
		if err != nil {
			return nil, err
		}
		_, ferr := phase.FormCtx(ctx, tr, phase.Options{Seed: seed, Workers: 4})
		if ferr == nil {
			return nil, errors.New("formation succeeded under a dead context")
		}
		return nil, ferr
	}

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/profile", bytes.NewReader(encodedTrace(t, 300, 5)))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
			err = fmt.Errorf("abandoned request got status %d", resp.StatusCode)
		}
		done <- err
	}()
	<-started
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("client saw %v, want its own cancellation", err)
	}

	// The pipeline must have cut loops short, not run them to completion.
	waitFor(t, func() bool { return abandoned.Value() > before })
	if canceledLoops.Value() <= beforeLoops {
		t.Fatal("no loop recorded a context cancellation")
	}
}

// waitFor polls cond with a deadline.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

// stalledBody is an upload body that delivers nothing until its timer
// fires, then EOFs. The stall must be bounded (not a forever-block):
// the HTTP server drains unread request bodies after the handler
// returns, and an unbounded stall would wedge that drain rather than
// exercise the handler's deadline.
type stalledBody struct{ release <-chan time.Time }

func (b *stalledBody) Read(p []byte) (int, error) {
	<-b.release
	return 0, io.EOF
}

// TestChaosStalledClient: a client that sends headers and then stalls
// its body past the request deadline gets 504 timeout — the handler
// does not hang and does not leak its reader.
func TestChaosStalledClient(t *testing.T) {
	leakCheck(t)
	_, ts := newTestServer(t, Config{Timeout: 100 * time.Millisecond})
	body := &stalledBody{release: time.After(600 * time.Millisecond)}

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/profile", body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("stalled upload should yield a response, got %v", err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504; body %s", resp.StatusCode, out)
	}
	if e := decodeError(t, out); e.Class != "timeout" {
		t.Fatalf("class %q, want timeout", e.Class)
	}
}

// TestChaosTornAppendRecovery: a writer killed mid-append (simulated
// with the faults torn-write channel) leaves a torn tail; the next
// server boot recovers it, serves only committed records, and resumes
// the sequence correctly.
func TestChaosTornAppendRecovery(t *testing.T) {
	leakCheck(t)
	path := filepath.Join(t.TempDir(), "history.jsonl")
	_, ts := newTestServer(t, Config{HistoryPath: path})
	resp, body := postTrace(t, ts.URL+"/v1/profile?n=10", encodedTrace(t, 100, 1))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seed profile: %d %s", resp.StatusCode, body)
	}

	// Kill-during-append: a full record line goes through a torn
	// writer, so only a prefix reaches the file and the writer dies
	// with the typed error.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	line, _ := json.Marshal(&history.Record{Seq: 2, Key: "torn"})
	w := faults.NewIO(faults.Config{TornWrite: 1, Seed: 3}).Writer(f)
	if _, err := w.Write(append(line, '\n')); !errors.Is(err, faults.ErrTornWrite) {
		t.Fatalf("torn writer returned %v", err)
	}
	f.Close()

	// Reboot on the damaged store.
	srv2, err := New(Config{HistoryPath: path})
	if err != nil {
		t.Fatalf("boot on torn store: %v", err)
	}
	recs, skipped, err := history.Open(path).Records()
	if err != nil || skipped != 0 {
		t.Fatalf("store after recovery: skipped=%d err=%v", skipped, err)
	}
	if len(recs) != 1 || recs[0].Seq != 1 {
		t.Fatalf("recovered store has %d records, want the 1 committed", len(recs))
	}
	// The sequence resumes without colliding.
	if _, err := srv2.append(&history.Record{Key: "next"}); err != nil {
		t.Fatal(err)
	}
	recs, _, _ = history.Open(path).Records()
	if len(recs) != 2 || recs[1].Seq != 2 {
		t.Fatalf("post-recovery append: %d records, last seq %d", len(recs), recs[len(recs)-1].Seq)
	}
}

// TestChaosBreakerLifecycle: pipeline failures open the breaker (load
// shed with 503 + Retry-After, pipeline not invoked), cooldown
// half-opens it, and a successful probe closes it.
func TestChaosBreakerLifecycle(t *testing.T) {
	leakCheck(t)
	srv, ts := newTestServer(t, Config{Breaker: breakerCfg(3)})
	var failing atomic.Bool
	var calls atomic.Int64
	failing.Store(true)
	srv.profileFn = func(ctx context.Context, data []byte, n int, seed uint64) (*profileOutcome, error) {
		calls.Add(1)
		if failing.Load() {
			return nil, errors.New("pipeline exploded") // internal class
		}
		return srv.profile(ctx, data, n, seed)
	}
	data := encodedTrace(t, 100, 2)

	for i := 0; i < 3; i++ {
		resp, body := postTrace(t, ts.URL+"/v1/profile", data)
		if resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("failure %d: status %d body %s", i, resp.StatusCode, body)
		}
		if e := decodeError(t, body); e.Class != "internal" {
			t.Fatalf("class %q, want internal", e.Class)
		}
	}

	// Open: refused without touching the pipeline.
	n := calls.Load()
	resp, body := postTrace(t, ts.URL+"/v1/profile", data)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("open breaker: status %d body %s", resp.StatusCode, body)
	}
	if e := decodeError(t, body); e.Class != "unavailable" {
		t.Fatalf("class %q, want unavailable", e.Class)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("breaker refusal without Retry-After")
	}
	if calls.Load() != n {
		t.Fatal("open breaker still invoked the pipeline")
	}
	r, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with open breaker: %d", r.StatusCode)
	}

	// Recovery: cooldown elapses, the probe succeeds, the circuit
	// closes and stays closed.
	failing.Store(false)
	time.Sleep(80 * time.Millisecond) // cooldown is 50ms
	for i := 0; i < 2; i++ {
		resp, body := postTrace(t, ts.URL+"/v1/profile?n=10", data)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-recovery request %d: status %d body %s", i, resp.StatusCode, body)
		}
	}
}

// TestChaosOverloadBackpressure: with one execution slot and no queue,
// a second concurrent request is refused immediately with 429 +
// Retry-After instead of waiting.
func TestChaosOverloadBackpressure(t *testing.T) {
	leakCheck(t)
	srv, ts := newTestServer(t, Config{Concurrency: 1, Queue: -1})
	entered := make(chan struct{})
	gate := make(chan struct{})
	srv.profileFn = func(ctx context.Context, data []byte, n int, seed uint64) (*profileOutcome, error) {
		entered <- struct{}{}
		<-gate
		return srv.profile(ctx, data, n, seed)
	}
	data := encodedTrace(t, 100, 3)

	first := make(chan int, 1)
	go func() {
		resp, _ := postTrace(t, ts.URL+"/v1/profile?n=10", data)
		first <- resp.StatusCode
	}()
	<-entered

	// Distinct options so the second request is new work: an identical
	// request would coalesce onto the in-flight one instead of needing
	// (and being refused) admission.
	resp, body := postTrace(t, ts.URL+"/v1/profile?n=10&seed=2", data)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429; body %s", resp.StatusCode, body)
	}
	if e := decodeError(t, body); e.Class != "overload" {
		t.Fatalf("class %q, want overload", e.Class)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	close(gate)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("in-flight request finished with %d", code)
	}
}

// TestChaosDrainWithInFlight: draining refuses new work but lets the
// in-flight request finish; the drain budget reports honestly when
// work is still running.
func TestChaosDrainWithInFlight(t *testing.T) {
	leakCheck(t)
	srv, ts := newTestServer(t, Config{})
	entered := make(chan struct{})
	gate := make(chan struct{})
	srv.profileFn = func(ctx context.Context, data []byte, n int, seed uint64) (*profileOutcome, error) {
		entered <- struct{}{}
		<-gate
		return srv.profile(ctx, data, n, seed)
	}
	data := encodedTrace(t, 100, 4)

	first := make(chan int, 1)
	go func() {
		resp, _ := postTrace(t, ts.URL+"/v1/profile?n=10", data)
		first <- resp.StatusCode
	}()
	<-entered
	srv.BeginDrain()

	// New work: refused.
	resp, body := postTrace(t, ts.URL+"/v1/profile", data)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503; body %s", resp.StatusCode, body)
	}

	// Budget expires with the request still running.
	short, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := srv.Drain(short); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Drain with in-flight work = %v, want deadline", err)
	}

	// Release: the in-flight request completes, the drain finishes.
	close(gate)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("in-flight request finished with %d during drain", code)
	}
	ctx, cancel2 := ctxTimeout(t)
	defer cancel2()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("Drain after completion: %v", err)
	}
}

// TestChaosStoreRetryTransient: a history store that fails twice and
// then recovers is retried transparently — the client sees one clean
// 200 and exactly one persisted record.
func TestChaosStoreRetryTransient(t *testing.T) {
	leakCheck(t)
	path := filepath.Join(t.TempDir(), "history.jsonl")
	srv, ts := newTestServer(t, Config{HistoryPath: path})
	var attempts atomic.Int64
	srv.appendFn = func(r *history.Record) (*history.Record, error) {
		if attempts.Add(1) <= 2 {
			return nil, errors.New("disk hiccup")
		}
		return history.OpenDurable(path).Append(r)
	}
	resp, body := postTrace(t, ts.URL+"/v1/profile?n=10", encodedTrace(t, 100, 5))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d body %s", resp.StatusCode, body)
	}
	if attempts.Load() != 3 {
		t.Fatalf("append attempted %d times, want 3", attempts.Load())
	}
	recs, _, err := history.Open(path).Records()
	if err != nil || len(recs) != 1 {
		t.Fatalf("store: %d records, err %v; want exactly 1", len(recs), err)
	}
}

// TestChaosStoreDown: a store that stays down exhausts the retries and
// surfaces 500 internal — a typed failure, not a hang or a lie.
func TestChaosStoreDown(t *testing.T) {
	leakCheck(t)
	srv, ts := newTestServer(t, Config{})
	var attempts atomic.Int64
	srv.appendFn = func(r *history.Record) (*history.Record, error) {
		attempts.Add(1)
		return nil, errors.New("disk gone")
	}
	resp, body := postTrace(t, ts.URL+"/v1/profile?n=10", encodedTrace(t, 100, 6))
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d body %s", resp.StatusCode, body)
	}
	if e := decodeError(t, body); e.Class != "internal" {
		t.Fatalf("class %q, want internal", e.Class)
	}
	if attempts.Load() != 3 {
		t.Fatalf("append attempted %d times, want the policy's 3", attempts.Load())
	}
}

// TestChaosCorruptUpload: a bit-flipped trace (the faults corruption
// channel) is refused with 400 bad_input — never a panic, never a
// half-decoded profile.
func TestChaosCorruptUpload(t *testing.T) {
	leakCheck(t)
	_, ts := newTestServer(t, Config{})
	clean := encodedTrace(t, 100, 7)
	for flips := 1; flips <= 64; flips *= 4 {
		corrupt := faults.CorruptBytes(clean, flips, uint64(flips))
		resp, body := postTrace(t, ts.URL+"/v1/profile", corrupt)
		if resp.StatusCode == http.StatusOK {
			// A flip the codec provably tolerated (e.g. in padding) is a
			// legal decode, not a fault; only crashes/hangs are failures.
			continue
		}
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("flips=%d: status %d, want 400; body %s", flips, resp.StatusCode, body)
		}
		if e := decodeError(t, body); e.Class != "bad_input" {
			t.Fatalf("flips=%d: class %q, want bad_input", flips, e.Class)
		}
	}
}

// TestChaosMixedStorm: a burst of every client-side fault at once —
// garbage, cancels, empty bodies — leaves the service healthy: a
// well-formed request still succeeds and nothing leaked.
func TestChaosMixedStorm(t *testing.T) {
	leakCheck(t)
	_, ts := newTestServer(t, Config{Timeout: 2 * time.Second})
	data := encodedTrace(t, 100, 8)
	for i := 0; i < 10; i++ {
		switch i % 3 {
		case 0:
			postTrace(t, ts.URL+"/v1/profile", []byte("garbage"))
		case 1:
			postTrace(t, ts.URL+"/v1/profile", nil)
		case 2:
			ctx, cancel := context.WithCancel(context.Background())
			req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
				ts.URL+"/v1/profile", bytes.NewReader(data))
			go cancel()
			if resp, err := http.DefaultClient.Do(req); err == nil {
				resp.Body.Close()
			}
		}
	}
	resp, body := postTrace(t, ts.URL+"/v1/profile?n=10", data)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy request after the storm: %d %s", resp.StatusCode, body)
	}
	if _, ok := interface{}(resilience.ClassOK).(fmt.Stringer); !ok {
		t.Fatal("taxonomy classes must render for error envelopes")
	}
}
