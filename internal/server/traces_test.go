package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"path/filepath"
	"reflect"
	"testing"

	"simprof/internal/history"
	"simprof/internal/obs/reqtrace"
	"simprof/internal/obs/traceevent"
)

// tracedConfig is the test servers' tracing setup: small budget,
// deterministic seed, bounds that put the test workload's latencies in
// sampled buckets.
func tracedConfig() *reqtrace.Config {
	return &reqtrace.Config{Budget: 32, Ring: 16, Rebalance: 8, Seed: 41}
}

func getTraces(t testing.TB, url string) (int, TracesResponse) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tr TracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
	return resp.StatusCode, tr
}

// TestTracesEndpoint: traffic lands in strata, the retained listing is
// filterable, and errors are force-kept.
func TestTracesEndpoint(t *testing.T) {
	leakCheck(t)
	withObs(t)
	_, ts := newTestServer(t, Config{Trace: tracedConfig()})
	data := encodedTrace(t, 120, 3)

	for i := 0; i < 5; i++ {
		resp, body := postTrace(t, ts.URL+"/v1/profile?n=20&seed=4", data)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("profile status %d, body %s", resp.StatusCode, body)
		}
	}
	// A client error: 4xx strata are sampled, not forced.
	resp, _ := postTrace(t, ts.URL+"/v1/profile?n=-1", data)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad n: status %d", resp.StatusCode)
	}

	status, tr := getTraces(t, ts.URL+"/v1/traces")
	if status != http.StatusOK {
		t.Fatalf("traces status %d", status)
	}
	if tr.Status.Budget != 32 || tr.Status.Completed < 6 {
		t.Fatalf("engine status %+v", tr.Status)
	}
	if tr.Status.Retained == 0 || len(tr.Traces) == 0 {
		t.Fatal("nothing retained after traffic")
	}
	if len(tr.Status.Strata) < 2 {
		t.Fatalf("strata %+v, want at least the 2xx and 4xx profile strata", tr.Status.Strata)
	}
	for _, row := range tr.Status.Strata {
		if row.Route != "/v1/profile" {
			t.Fatalf("unexpected route %q in strata", row.Route)
		}
	}

	// Filters narrow the listing.
	status, tr = getTraces(t, ts.URL+"/v1/traces?status_class=4xx")
	if status != http.StatusOK {
		t.Fatalf("filtered status %d", status)
	}
	if len(tr.Traces) != 1 || tr.Traces[0].Status != http.StatusBadRequest {
		t.Fatalf("4xx filter returned %+v", tr.Traces)
	}
	// The recent ring answers too.
	if _, tr = getTraces(t, ts.URL+"/v1/traces?set=recent&limit=3"); len(tr.Traces) != 3 {
		t.Fatalf("recent limit=3 returned %d traces", len(tr.Traces))
	}

	// Bad query knobs are typed refusals.
	for _, q := range []string{"?set=bogus", "?limit=-1", "?limit=x"} {
		resp, err := http.Get(ts.URL + "/v1/traces" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestTracesDisabled: without Trace config both endpoints refuse with
// the typed bad_input envelope.
func TestTracesDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, path := range []string{"/v1/traces", "/v1/traces/some-id"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var e errorBody
		json.NewDecoder(resp.Body).Decode(&e)
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest || e.Class != "bad_input" {
			t.Fatalf("%s: status %d class %q, want 400 bad_input", path, resp.StatusCode, e.Class)
		}
	}
}

// TestTraceExportEndpoint: a retained trace exports as a valid Chrome
// trace-event file whose lanes carry the request's span tree.
func TestTraceExportEndpoint(t *testing.T) {
	leakCheck(t)
	withObs(t)
	_, ts := newTestServer(t, Config{Trace: tracedConfig()})
	data := encodedTrace(t, 120, 3)

	resp, body := postTraceWithID(t, ts.URL+"/v1/profile?n=20&seed=4", data, "trace-export-1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profile status %d, body %s", resp.StatusCode, body)
	}

	resp2, err := http.Get(ts.URL + "/v1/traces/trace-export-1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("export status %d", resp2.StatusCode)
	}
	f, err := traceevent.Decode(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatalf("exported trace invalid: %v", err)
	}
	var sawRoot bool
	for _, ev := range f.TraceEvents {
		if ev.Name == "request trace-export-1" {
			sawRoot = true
		}
	}
	if !sawRoot {
		t.Fatalf("export has no request root span; events: %d", len(f.TraceEvents))
	}

	// Unknown IDs refuse.
	resp3, err := http.Get(ts.URL + "/v1/traces/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown id: status %d, want 400", resp3.StatusCode)
	}
}

// postTraceWithID posts an upload with an explicit X-Request-Id.
func postTraceWithID(t testing.TB, url string, body []byte, id string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest("POST", url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	req.Header.Set("X-Request-Id", id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

// readTraceStore reads the persisted trace records back through the
// history package.
func readTraceStore(t testing.TB, path string) []*history.Record {
	t.Helper()
	recs, skipped, err := history.OpenDurable(path).Records()
	if err != nil || skipped != 0 {
		t.Fatalf("reading trace store: %v (skipped %d)", err, skipped)
	}
	return recs
}

// TestTracingOnOffDeterminism: the profile pipeline's output is
// bit-identical with tracing on and off — retention observes, never
// alters. Timing fields and store bookkeeping are the only permitted
// differences.
func TestTracingOnOffDeterminism(t *testing.T) {
	withObs(t)
	data := encodedTrace(t, 150, 9)

	run := func(traced bool) map[string]any {
		cfg := Config{HistoryPath: filepath.Join(t.TempDir(), "h.jsonl")}
		if traced {
			cfg.Trace = tracedConfig()
			cfg.TraceStorePath = filepath.Join(t.TempDir(), "t.jsonl")
		}
		_, ts := newTestServer(t, cfg)
		resp, body := postTrace(t, ts.URL+"/v1/profile?n=25&seed=11", data)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("traced=%v status %d body %s", traced, resp.StatusCode, body)
		}
		var m map[string]any
		if err := json.Unmarshal(body, &m); err != nil {
			t.Fatal(err)
		}
		delete(m, "elapsed_ms")
		return m
	}

	on, off := run(true), run(false)
	if !reflect.DeepEqual(on, off) {
		t.Fatalf("pipeline output differs with tracing on:\non:  %v\noff: %v", on, off)
	}
}

// TestTracedProfilePersistsSpans: with a trace store configured, a slow
// or failing request's record lands durably with its span tree.
func TestTracedProfilePersistsSpans(t *testing.T) {
	withObs(t)
	storePath := filepath.Join(t.TempDir(), "traces.jsonl")
	// Tail bound of 0.001ms: every request is tail latency, so every
	// trace is force-kept and persisted.
	srv, ts := newTestServer(t, Config{
		Trace:          &reqtrace.Config{Budget: 8, BucketBoundsMS: []float64{0.001}, Seed: 5},
		TraceStorePath: storePath,
	})
	data := encodedTrace(t, 120, 3)
	resp, body := postTraceWithID(t, ts.URL+"/v1/profile?n=20&seed=4", data, "durable-1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profile status %d, body %s", resp.StatusCode, body)
	}
	srv.Close() // drains the persist queue

	recs := readTraceStore(t, storePath)
	if len(recs) == 0 {
		t.Fatal("no trace records persisted")
	}
	var found bool
	for _, rec := range recs {
		if rec.Manifest == nil || rec.Manifest.Request == nil {
			t.Fatalf("record %d has no request section", rec.Seq)
		}
		if rec.Manifest.Request.ID == "durable-1" {
			found = true
			if rec.Manifest.Spans == nil {
				t.Fatal("durable trace has no span tree")
			}
			if got := rec.Manifest.Spans.Name; got != "request durable-1" {
				t.Fatalf("span root %q", got)
			}
			if !rec.Manifest.Request.Forced {
				t.Fatal("tail-latency trace not marked forced")
			}
		}
	}
	if !found {
		t.Fatalf("durable-1 not in persisted records (%d records)", len(recs))
	}
}
