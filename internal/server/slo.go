package server

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"sync"
	"time"

	"simprof/internal/obs"
	"simprof/internal/resilience"
)

// SLO tracking: per-route availability and latency objectives, with
// multi-window burn rates computed live from sliding-window metrics.
//
// The burn rate is the standard error-budget consumption speed:
//
//	availability burn = errRate(window) / (1 - availability)
//	latency burn      = slowRate(window) / (1 - latencyP)
//
// where errRate is bad/total over the window and slowRate the fraction
// of requests over the latency threshold. A burn rate of 1 consumes
// the budget exactly at the rate the objective allows; 14.4 (the
// default alert threshold, from the fast-burn page in the SRE
// workbook) exhausts a 30-day budget in 50 hours. Alerts require BOTH
// a fast window (5m, catches the spike quickly) and a slow window (1h,
// filters blips) over the threshold.
//
// "Bad" is server-caused failure only: internal, timeout, overload and
// unavailable. Client faults (bad_input, canceled) spend no budget —
// a flood of malformed uploads must not page anyone.

// RouteObjective is one route's SLO: a fraction of requests that must
// succeed, and a latency quantile that must stay under a threshold.
type RouteObjective struct {
	// Availability is the success-fraction objective in (0,1),
	// e.g. 0.999.
	Availability float64 `json:"availability"`
	// LatencyP is the latency objective's quantile in (0,1), e.g. 0.99:
	// "LatencyP of requests finish within LatencyMS".
	LatencyP float64 `json:"latency_p"`
	// LatencyMS is the latency threshold in milliseconds.
	LatencyMS float64 `json:"latency_threshold_ms"`
}

// SLOConfig maps routes to objectives.
type SLOConfig struct {
	Routes map[string]RouteObjective `json:"routes"`
	// BurnAlert is the burn-rate threshold both windows must exceed to
	// alert (default 14.4).
	BurnAlert float64 `json:"burn_alert,omitempty"`
}

// DefaultSLOConfig is the objective set simprofd serves with unless a
// -slo-config file overrides it.
func DefaultSLOConfig() *SLOConfig {
	return &SLOConfig{
		Routes: map[string]RouteObjective{
			"/v1/profile": {Availability: 0.999, LatencyP: 0.99, LatencyMS: 500},
		},
		BurnAlert: 14.4,
	}
}

// Validate checks objective ranges.
func (c *SLOConfig) Validate() error {
	if len(c.Routes) == 0 {
		return fmt.Errorf("slo config: no routes")
	}
	for route, o := range c.Routes {
		if !(o.Availability > 0 && o.Availability < 1) {
			return fmt.Errorf("slo config: route %s: availability %v outside (0,1)", route, o.Availability)
		}
		if !(o.LatencyP > 0 && o.LatencyP < 1) {
			return fmt.Errorf("slo config: route %s: latency_p %v outside (0,1)", route, o.LatencyP)
		}
		if o.LatencyMS <= 0 {
			return fmt.Errorf("slo config: route %s: latency_threshold_ms %v must be positive", route, o.LatencyMS)
		}
	}
	if c.BurnAlert < 0 {
		return fmt.Errorf("slo config: burn_alert %v must not be negative", c.BurnAlert)
	}
	if c.BurnAlert == 0 {
		c.BurnAlert = 14.4
	}
	return nil
}

// LoadSLOConfig reads and validates a JSON objective file.
func LoadSLOConfig(path string) (*SLOConfig, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("slo config: %w", err)
	}
	var c SLOConfig
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("slo config %s: %w", path, err)
	}
	if err := c.Validate(); err != nil {
		return nil, err
	}
	return &c, nil
}

// Burn-rate windows: fast catches spikes, slow filters blips. The ring
// spans the slow window.
const (
	sloWindowWidth = 10 * time.Second
	sloFastWindow  = 5 * time.Minute
	sloSlowWindow  = time.Hour
	sloRingCells   = int(sloSlowWindow / sloWindowWidth)
)

// sloRoute is the live state for one tracked route.
type sloRoute struct {
	objective RouteObjective
	total     *obs.WindowedCounter
	bad       *obs.WindowedCounter
	latency   *obs.WindowedHistogram // seconds; bounds include the threshold
}

// sloTracker feeds per-request outcomes into sliding windows and
// computes burn rates on demand.
type sloTracker struct {
	cfg *SLOConfig
	now func() time.Time

	mu     sync.Mutex
	routes map[string]*sloRoute
}

// newSLOTracker builds a tracker for the configured routes. A nil now
// uses the wall clock; tests inject a stepped clock.
func newSLOTracker(cfg *SLOConfig, now func() time.Time) *sloTracker {
	if cfg == nil {
		cfg = DefaultSLOConfig()
	}
	if now == nil {
		now = time.Now
	}
	return &sloTracker{cfg: cfg, now: now, routes: map[string]*sloRoute{}}
}

// route returns the live state for a tracked route (nil when the route
// has no objective).
func (t *sloTracker) route(name string) *sloRoute {
	if t == nil {
		return nil
	}
	o, ok := t.cfg.Routes[name]
	if !ok {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if rt, ok := t.routes[name]; ok {
		return rt
	}
	// Latency bounds: a coarse log-ish ladder with the objective's
	// threshold spliced in, so CountLE can read the threshold bucket
	// exactly.
	thresh := o.LatencyMS / 1e3
	base := []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
	bounds := base[:0:0]
	seen := false
	for _, b := range base {
		if b == thresh {
			seen = true
		}
		bounds = append(bounds, b)
	}
	if !seen {
		bounds = append(bounds, thresh)
		sort.Float64s(bounds)
	}
	rt := &sloRoute{
		objective: o,
		total:     obs.NewWindowedCounter(sloWindowWidth, sloRingCells, t.now),
		bad:       obs.NewWindowedCounter(sloWindowWidth, sloRingCells, t.now),
		latency:   obs.NewWindowedHistogram(sloWindowWidth, sloRingCells, t.now, bounds...),
	}
	t.routes[name] = rt
	return rt
}

// badClass reports whether a resilience class spends error budget:
// server-caused failure only.
func badClass(c resilience.Class) bool {
	switch c {
	case resilience.ClassInternal, resilience.ClassTimeout,
		resilience.ClassOverload, resilience.ClassUnavailable:
		return true
	}
	return false
}

// observe records one finished request for its route.
func (t *sloTracker) observe(routeName string, class resilience.Class, latency time.Duration) {
	rt := t.route(routeName)
	if rt == nil {
		return
	}
	rt.total.Inc()
	if badClass(class) {
		rt.bad.Inc()
	}
	rt.latency.Observe(latency.Seconds())
}

// burnRate is errRate/budget over one window; 0 when the window holds
// no traffic.
func burnRate(bad, total int64, budget float64) float64 {
	if total == 0 || budget <= 0 {
		return 0
	}
	return (float64(bad) / float64(total)) / budget
}

// RouteSLO is one route's status in the /v1/slo response.
type RouteSLO struct {
	Route     string         `json:"route"`
	Objective RouteObjective `json:"objective"`

	// Availability burn rates (fast 5m / slow 1h windows).
	FastBurn float64 `json:"fast_burn"`
	SlowBurn float64 `json:"slow_burn"`
	// Latency burn rates over the same windows.
	FastLatencyBurn float64 `json:"fast_latency_burn"`
	SlowLatencyBurn float64 `json:"slow_latency_burn"`

	// Alerting state: both windows of either burn over the threshold.
	Alert bool `json:"alert"`

	// Window observability: traffic and live quantile over the fast
	// window. WindowP99MS is 0 when the window holds no samples (the
	// signal has decayed); WindowSamples disambiguates "fast" from
	// "idle".
	FastTotal     int64   `json:"fast_total"`
	FastBad       int64   `json:"fast_bad"`
	SlowTotal     int64   `json:"slow_total"`
	SlowBad       int64   `json:"slow_bad"`
	WindowP99MS   float64 `json:"window_p99_ms"`
	WindowSamples int64   `json:"window_samples"`
}

// SLOStatus is the /v1/slo response body.
type SLOStatus struct {
	BurnAlert float64    `json:"burn_alert"`
	Routes    []RouteSLO `json:"routes"`
}

// status computes the live SLO view, routes sorted by name.
func (t *sloTracker) status() SLOStatus {
	if t == nil {
		return SLOStatus{}
	}
	out := SLOStatus{BurnAlert: t.cfg.BurnAlert}
	names := make([]string, 0, len(t.cfg.Routes))
	for name := range t.cfg.Routes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		rt := t.route(name)
		o := rt.objective
		availBudget := 1 - o.Availability
		latBudget := 1 - o.LatencyP
		thresh := o.LatencyMS / 1e3

		r := RouteSLO{Route: name, Objective: o}
		r.FastTotal = rt.total.Sum(sloFastWindow)
		r.FastBad = rt.bad.Sum(sloFastWindow)
		r.SlowTotal = rt.total.Sum(sloSlowWindow)
		r.SlowBad = rt.bad.Sum(sloSlowWindow)
		r.FastBurn = burnRate(r.FastBad, r.FastTotal, availBudget)
		r.SlowBurn = burnRate(r.SlowBad, r.SlowTotal, availBudget)

		fastN := rt.latency.Count(sloFastWindow)
		if fastN > 0 {
			slow := fastN - rt.latency.CountLE(thresh, sloFastWindow)
			r.FastLatencyBurn = burnRate(slow, fastN, latBudget)
		}
		slowN := rt.latency.Count(sloSlowWindow)
		if slowN > 0 {
			slowCnt := slowN - rt.latency.CountLE(thresh, sloSlowWindow)
			r.SlowLatencyBurn = burnRate(slowCnt, slowN, latBudget)
		}

		if p99 := rt.latency.Quantile(0.99, sloFastWindow); !math.IsNaN(p99) {
			r.WindowP99MS = p99 * 1e3
		}
		r.WindowSamples = fastN

		r.Alert = (r.FastBurn > t.cfg.BurnAlert && r.SlowBurn > t.cfg.BurnAlert) ||
			(r.FastLatencyBurn > t.cfg.BurnAlert && r.SlowLatencyBurn > t.cfg.BurnAlert)
		out.Routes = append(out.Routes, r)
	}
	return out
}
