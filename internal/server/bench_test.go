package server

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"simprof/internal/stats"
)

// BenchmarkSimprofdP99 drives the service with concurrent profile
// uploads and reports the tail (p99) request latency. It reports the
// tail as the benchmark's ns/op metric on purpose: the repo's bench
// gate compares ns/op medians across runs, so regressing the service's
// tail latency trips the same noise-aware gate as the kernels.
func BenchmarkSimprofdP99(b *testing.B) {
	srv, err := New(Config{
		HistoryPath: filepath.Join(b.TempDir(), "history.jsonl"),
		Concurrency: 4,
		Queue:       1 << 16, // admission must never 429 the benchmark itself
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	data := encodedTrace(b, 200, 1)
	url := ts.URL + "/v1/profile?n=20&seed=1"

	var mu sync.Mutex
	var lat []float64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		local := make([]float64, 0, 64)
		for pb.Next() {
			start := time.Now()
			resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(data))
			if err != nil {
				b.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Errorf("status %d", resp.StatusCode)
				return
			}
			local = append(local, float64(time.Since(start)))
		}
		mu.Lock()
		lat = append(lat, local...)
		mu.Unlock()
	})
	b.StopTimer()
	if len(lat) == 0 {
		return
	}
	sort.Float64s(lat)
	p99 := lat[int(0.99*float64(len(lat)-1))]
	b.ReportMetric(p99, "ns/op")
}

// BenchmarkSimprofdStorm drives a duplicate-heavy concurrent storm —
// the fleet-scale shape the batch layer exists for — against the
// batched path and the inline baseline. The request schedule draws
// from a fixed catalog of 16 distinct profile requests: a configurable
// fraction (SIMPROF_STORM_DUP percent, default 50) targets the 4-key
// hot set, the rest sweep the whole catalog, so the same profiles
// recur throughout the run the way redundant analytic workloads do.
// Each sub-benchmark reports p99 latency as ns/op (riding the repo's
// noise-aware bench gate), plus req/s and the measured dedup ratio
// (hits + coalesced per request) for the throughput table in
// EXPERIMENTS.md.
func BenchmarkSimprofdStorm(b *testing.B) {
	dupPct := 50
	if v := os.Getenv("SIMPROF_STORM_DUP"); v != "" {
		if p, err := strconv.Atoi(v); err == nil && p >= 0 && p <= 100 {
			dupPct = p
		}
	}
	modes := []struct {
		name string
		cfg  Config
	}{
		// HistoryPath stays empty in both modes: fsync throughput is not
		// what this benchmark measures.
		{"batched", Config{Concurrency: 4, Queue: 1 << 16}},
		{"baseline", Config{Concurrency: 4, Queue: 1 << 16, BatchSize: -1, CacheEntries: -1}},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			srv, err := New(mode.cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			// Catalog: 16 distinct requests over 4 distinct trace payloads
			// (the seed query param splits each payload into 4 keys).
			traces := make([][]byte, 4)
			for i := range traces {
				traces[i] = encodedTrace(b, 200, uint64(i+1))
			}
			type req struct {
				url  string
				data []byte
			}
			catalog := make([]req, 16)
			for i := range catalog {
				catalog[i] = req{
					url:  fmt.Sprintf("%s/v1/profile?n=20&seed=%d", ts.URL, i+1),
					data: traces[i%len(traces)],
				}
			}

			// Warm the catalog before timing: every key's first request is
			// an unavoidable compute miss, and at short benchtimes those 16
			// cold misses would dominate the p99 and make the gated metric
			// benchtime-dependent. The steady state — a fleet replaying
			// profiles it has seen before — is what this benchmark measures.
			for _, c := range catalog {
				resp, err := http.Post(c.url, "application/octet-stream", bytes.NewReader(c.data))
				if err != nil {
					b.Fatal(err)
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					b.Fatalf("warm-up status %d", resp.StatusCode)
				}
			}

			var seq atomic.Uint64
			var dedup atomic.Uint64
			var mu sync.Mutex
			var lat []float64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				local := make([]float64, 0, 256)
				for pb.Next() {
					// Seeded schedule: deterministic across runs for a given
					// dup percentage, independent of goroutine interleaving.
					r := stats.SplitSeed(0xbeef, seq.Add(1))
					var target req
					if int(r%100) < dupPct {
						target = catalog[(r>>8)%4] // hot set
					} else {
						target = catalog[(r>>8)%uint64(len(catalog))]
					}
					start := time.Now()
					resp, err := http.Post(target.url, "application/octet-stream", bytes.NewReader(target.data))
					if err != nil {
						b.Error(err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						b.Errorf("status %d", resp.StatusCode)
						return
					}
					switch resp.Header.Get("X-Simprof-Cache") {
					case "hit", "coalesced":
						dedup.Add(1)
					}
					local = append(local, float64(time.Since(start)))
				}
				mu.Lock()
				lat = append(lat, local...)
				mu.Unlock()
			})
			elapsed := b.Elapsed()
			b.StopTimer()
			if len(lat) == 0 {
				return
			}
			sort.Float64s(lat)
			b.ReportMetric(lat[int(0.99*float64(len(lat)-1))], "ns/op") // p99, gated
			b.ReportMetric(float64(len(lat))/elapsed.Seconds(), "req/s")
			b.ReportMetric(float64(dedup.Load())/float64(len(lat)), "dedup/op")
		})
	}
}

// BenchmarkAccessLog measures what the access log adds to the request
// path. "enqueue" is the handler-side cost with a live logger (a
// non-blocking channel send; the JSON encode happens on the writer
// goroutine); "disabled" is the nil-logger no-op every request pays
// when -access-log is off.
func BenchmarkAccessLog(b *testing.B) {
	entry := accessEntry{
		ID: "0123456789abcdef", Route: "/v1/profile", Tenant: "default",
		Status: 200, Class: "ok", Bytes: 1 << 20,
		EnqueueMS: 0.21, FlushMS: 1.73, HandleMS: 42.5,
	}
	b.Run("enqueue", func(b *testing.B) {
		l := newAccessLogger(io.Discard)
		defer l.Close()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			l.Log(entry)
		}
	})
	b.Run("disabled", func(b *testing.B) {
		var l *accessLogger
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			l.Log(entry)
		}
	})
}
