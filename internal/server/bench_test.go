package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"sync"
	"testing"
	"time"
)

// BenchmarkSimprofdP99 drives the service with concurrent profile
// uploads and reports the tail (p99) request latency. It reports the
// tail as the benchmark's ns/op metric on purpose: the repo's bench
// gate compares ns/op medians across runs, so regressing the service's
// tail latency trips the same noise-aware gate as the kernels.
func BenchmarkSimprofdP99(b *testing.B) {
	srv, err := New(Config{
		HistoryPath: filepath.Join(b.TempDir(), "history.jsonl"),
		Concurrency: 4,
		Queue:       1 << 16, // admission must never 429 the benchmark itself
	})
	if err != nil {
		b.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	data := encodedTrace(b, 200, 1)
	url := ts.URL + "/v1/profile?n=20&seed=1"

	var mu sync.Mutex
	var lat []float64
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		local := make([]float64, 0, 64)
		for pb.Next() {
			start := time.Now()
			resp, err := http.Post(url, "application/octet-stream", bytes.NewReader(data))
			if err != nil {
				b.Error(err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Errorf("status %d", resp.StatusCode)
				return
			}
			local = append(local, float64(time.Since(start)))
		}
		mu.Lock()
		lat = append(lat, local...)
		mu.Unlock()
	})
	b.StopTimer()
	if len(lat) == 0 {
		return
	}
	sort.Float64s(lat)
	p99 := lat[int(0.99*float64(len(lat)-1))]
	b.ReportMetric(p99, "ns/op")
}

// BenchmarkAccessLog measures what the access log adds to the request
// path. "enqueue" is the handler-side cost with a live logger (a
// non-blocking channel send; the JSON encode happens on the writer
// goroutine); "disabled" is the nil-logger no-op every request pays
// when -access-log is off.
func BenchmarkAccessLog(b *testing.B) {
	entry := accessEntry{
		ID: "0123456789abcdef", Route: "/v1/profile", Tenant: "default",
		Status: 200, Class: "ok", Bytes: 1 << 20,
		EnqueueMS: 0.21, FlushMS: 1.73, HandleMS: 42.5,
	}
	b.Run("enqueue", func(b *testing.B) {
		l := newAccessLogger(io.Discard)
		defer l.Close()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			l.Log(entry)
		}
	})
	b.Run("disabled", func(b *testing.B) {
		var l *accessLogger
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			l.Log(entry)
		}
	})
}
