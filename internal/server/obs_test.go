package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"simprof/internal/obs"
	"simprof/internal/stats"
)

// syncBuffer is a race-safe io.Writer for capturing the access log,
// which is written from the logger's own goroutine.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// steppedClock is an injectable time source for the SLO tracker. It is
// mutex-guarded because request handlers read it from the httptest
// server's goroutines while the test advances it.
type steppedClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *steppedClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *steppedClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// getBody GETs a URL and returns the response and full body.
func getBody(t testing.TB, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// getMetrics fetches and decodes the /v1/metrics JSON snapshot.
func getMetrics(t testing.TB, base string) (*http.Response, []obs.Metric) {
	t.Helper()
	resp, body := getBody(t, base+"/v1/metrics")
	var ms []obs.Metric
	if err := json.Unmarshal(body, &ms); err != nil {
		t.Fatalf("/v1/metrics body is not a metric list: %v\n%s", err, body)
	}
	return resp, ms
}

// findMetric returns the first snapshot entry matching name and label
// key, or nil.
func findMetric(ms []obs.Metric, name, labelsKey string) *obs.Metric {
	for i := range ms {
		if ms[i].Name == name && ms[i].LabelsKey() == labelsKey {
			return &ms[i]
		}
	}
	return nil
}

// TestMetricsEndpoints: /v1/metrics stays JSON with the right
// Content-Type, and /metrics serves the same registry in the
// Prometheus text exposition format, labeled families included.
func TestMetricsEndpoints(t *testing.T) {
	withObs(t)
	_, ts := newTestServer(t, Config{})

	if resp, _ := postTrace(t, ts.URL+"/v1/profile?n=20&seed=3", encodedTrace(t, 150, 9)); resp.StatusCode != http.StatusOK {
		t.Fatalf("profile upload failed: %d", resp.StatusCode)
	}

	resp, ms := getMetrics(t, ts.URL)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("/v1/metrics Content-Type = %q, want application/json", ct)
	}
	m := findMetric(ms, "server.requests_by_route", "route=/v1/profile,status=200")
	if m == nil || m.Value < 1 {
		t.Fatalf("labeled route counter missing from JSON snapshot: %+v", m)
	}
	if m := findMetric(ms, "server.request_seconds", "route=/v1/profile"); m == nil || m.Kind != "histogram" || len(m.Buckets) == 0 {
		t.Fatalf("labeled latency histogram missing from JSON snapshot: %+v", m)
	}

	promResp, promBody := getBody(t, ts.URL+"/metrics")
	if ct := promResp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("/metrics Content-Type = %q", ct)
	}
	text := string(promBody)
	for _, want := range []string{
		"# TYPE server_requests_by_route counter",
		`server_requests_by_route{route="/v1/profile",status="200"}`,
		"# TYPE server_request_seconds histogram",
		`server_request_seconds_bucket{route="/v1/profile",le="+Inf"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics output missing %q:\n%s", want, text)
		}
	}
}

// TestMetricsDeterministicUnderTraffic: every snapshot served while
// profile traffic is in flight is totally ordered by (name, kind,
// labels) — scrapers never see two orderings of the same registry.
func TestMetricsDeterministicUnderTraffic(t *testing.T) {
	leakCheck(t)
	withObs(t)
	_, ts := newTestServer(t, Config{Concurrency: 4})
	data := encodedTrace(t, 100, 11)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/v1/profile?n=10", "application/octet-stream", bytes.NewReader(data))
				if err != nil {
					return
				}
				resp.Body.Close()
			}
		}()
	}

	for i := 0; i < 20; i++ {
		_, ms := getMetrics(t, ts.URL)
		if len(ms) == 0 {
			t.Fatal("empty snapshot under load")
		}
		sorted := sort.SliceIsSorted(ms, func(a, b int) bool {
			x, y := ms[a], ms[b]
			if x.Name != y.Name {
				return x.Name < y.Name
			}
			if x.Kind != y.Kind {
				return x.Kind < y.Kind
			}
			return x.LabelsKey() < y.LabelsKey()
		})
		if !sorted {
			t.Fatalf("snapshot %d not ordered by (name, kind, labels)", i)
		}
	}
	close(stop)
	wg.Wait()
}

// TestAccessLog: one JSON line per request with identity, class and
// timing breakdown; caller-provided request IDs are echoed, generated
// ones are deterministic in the configured seed; Close appends the
// shutdown line after the queue drains.
func TestAccessLog(t *testing.T) {
	leakCheck(t)
	withObs(t)
	buf := &syncBuffer{}
	srv, ts := newTestServer(t, Config{AccessLog: buf, RequestIDSeed: 42})

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/profile?n=15&seed=2",
		bytes.NewReader(encodedTrace(t, 120, 4)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "caller-chose-this")
	req.Header.Set("X-Simprof-Tenant", "acme")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profile status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Request-Id"); got != "caller-chose-this" {
		t.Fatalf("caller request ID not echoed: %q", got)
	}

	// No header: the ID comes from SplitSeed(seed, arrival index) —
	// reproducible given the flagged seed.
	hresp, _ := getBody(t, ts.URL+"/healthz")
	wantID := fmt.Sprintf("%016x", stats.SplitSeed(42, 1))
	if got := hresp.Header.Get("X-Request-Id"); got != wantID {
		t.Fatalf("generated request ID = %q, want %q", got, wantID)
	}

	// A malformed upload logs with its error class.
	if resp, _ := postTrace(t, ts.URL+"/v1/profile", []byte("not a trace")); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage upload status %d, want 400", resp.StatusCode)
	}

	// Close drains the queue and flushes the final shutdown line.
	srv.Close()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("access log has %d lines, want 3 requests + shutdown:\n%s", len(lines), buf.String())
	}

	var first accessEntry
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 is not an access entry: %v", err)
	}
	if first.ID != "caller-chose-this" || first.Route != "/v1/profile" ||
		first.Tenant != "acme" || first.Status != 200 || first.Class != "ok" {
		t.Fatalf("profile line wrong: %+v", first)
	}
	if first.Bytes == 0 || first.HandleMS <= 0 {
		t.Fatalf("profile line missing body size or handle time: %+v", first)
	}

	var bad accessEntry
	if err := json.Unmarshal([]byte(lines[2]), &bad); err != nil {
		t.Fatal(err)
	}
	if bad.Status != 400 || bad.Class != "bad_input" {
		t.Fatalf("bad-input line wrong: %+v", bad)
	}

	var down shutdownEntry
	if err := json.Unmarshal([]byte(lines[3]), &down); err != nil {
		t.Fatalf("final line is not the shutdown entry: %v\n%s", err, lines[3])
	}
	if down.Event != "shutdown" || down.Requests != 3 || down.Dropped != 0 {
		t.Fatalf("shutdown line wrong: %+v", down)
	}
}

// getSLO fetches and decodes /v1/slo, returning the tracked
// /v1/profile route entry.
func getSLO(t testing.TB, base string) RouteSLO {
	t.Helper()
	_, body := getBody(t, base+"/v1/slo")
	var st SLOStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("/v1/slo body: %v\n%s", err, body)
	}
	for _, r := range st.Routes {
		if r.Route == "/v1/profile" {
			return r
		}
	}
	t.Fatalf("/v1/profile missing from SLO status: %+v", st)
	return RouteSLO{}
}

// TestChaosSLOBurnUnderFailure: a failing pipeline floods 5xx, the
// fast and slow burn rates spike past the alert threshold together,
// and recovery brings the fast burn back down as good traffic dilutes
// the window.
func TestChaosSLOBurnUnderFailure(t *testing.T) {
	leakCheck(t)
	withObs(t)
	srv, ts := newTestServer(t, Config{Breaker: breakerCfg(100)})
	var failing atomic.Bool
	failing.Store(true)
	srv.profileFn = func(ctx context.Context, data []byte, n int, seed uint64) (*profileOutcome, error) {
		if failing.Load() {
			return nil, errors.New("chaos: pipeline down")
		}
		return srv.profile(ctx, data, n, seed)
	}
	data := encodedTrace(t, 100, 6)

	for i := 0; i < 6; i++ {
		if resp, _ := postTrace(t, ts.URL+"/v1/profile", data); resp.StatusCode != http.StatusInternalServerError {
			t.Fatalf("failure %d: status %d", i, resp.StatusCode)
		}
	}

	r := getSLO(t, ts.URL)
	if r.FastBad < 6 || r.FastTotal < 6 {
		t.Fatalf("fast window did not record the failures: %+v", r)
	}
	// 100% errors against a 99.9%% objective: burn = 1/0.001 = 1000.
	if r.FastBurn <= 14.4 || r.SlowBurn <= 14.4 {
		t.Fatalf("burn rates did not spike: fast %.1f slow %.1f", r.FastBurn, r.SlowBurn)
	}
	if !r.Alert {
		t.Fatalf("both windows over threshold but no alert: %+v", r)
	}

	failing.Store(false)
	for i := 0; i < 6; i++ {
		if resp, body := postTrace(t, ts.URL+"/v1/profile?n=10", data); resp.StatusCode != http.StatusOK {
			t.Fatalf("recovery %d: status %d body %s", i, resp.StatusCode, body)
		}
	}
	healed := getSLO(t, ts.URL)
	if healed.FastBurn >= r.FastBurn {
		t.Fatalf("good traffic did not dilute the burn: %.1f -> %.1f", r.FastBurn, healed.FastBurn)
	}
}

// TestChaosSLOBurnUnderOverload: admission refusals (429) spend error
// budget too — backpressure is server-caused from the caller's view.
func TestChaosSLOBurnUnderOverload(t *testing.T) {
	leakCheck(t)
	withObs(t)
	srv, ts := newTestServer(t, Config{Concurrency: 1, Queue: -1})
	entered := make(chan struct{})
	gate := make(chan struct{})
	srv.profileFn = func(ctx context.Context, data []byte, n int, seed uint64) (*profileOutcome, error) {
		entered <- struct{}{}
		<-gate
		return srv.profile(ctx, data, n, seed)
	}
	data := encodedTrace(t, 100, 8)

	first := make(chan int, 1)
	go func() {
		resp, _ := postTrace(t, ts.URL+"/v1/profile?n=10", data)
		first <- resp.StatusCode
	}()
	<-entered

	// Distinct options (seed) so this is new work rather than a
	// coalesce onto the in-flight identical request.
	if resp, _ := postTrace(t, ts.URL+"/v1/profile?n=10&seed=2", data); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request status %d, want 429", resp.StatusCode)
	}
	r := getSLO(t, ts.URL)
	if r.FastBad < 1 || r.FastBurn <= 0 {
		t.Fatalf("overload refusal did not move the burn rate: %+v", r)
	}

	close(gate)
	if code := <-first; code != http.StatusOK {
		t.Fatalf("in-flight request finished with %d", code)
	}
}

// TestSLOWindowDecay: after load stops, the windowed view decays to
// silence — first the fast window, then the slow one — while the
// cumulative histogram keeps its counts. This is the property that
// makes /v1/slo a live signal and /v1/metrics an audit trail.
func TestSLOWindowDecay(t *testing.T) {
	withObs(t)
	srv, ts := newTestServer(t, Config{})
	clk := &steppedClock{t: time.Unix(1700000000, 0)}
	srv.slo = newSLOTracker(nil, clk.now) // swap in before any traffic
	data := encodedTrace(t, 100, 12)

	cumBefore := histCount(t, ts.URL)
	for i := 0; i < 3; i++ {
		if resp, _ := postTrace(t, ts.URL+"/v1/profile?n=10", data); resp.StatusCode != http.StatusOK {
			t.Fatalf("upload %d failed", i)
		}
	}

	live := getSLO(t, ts.URL)
	if live.WindowSamples != 3 || live.FastTotal != 3 {
		t.Fatalf("live window should hold 3 samples: %+v", live)
	}
	if live.WindowP99MS <= 0 {
		t.Fatalf("live window p99 should be positive: %+v", live)
	}

	// Ten minutes of silence: past the 5m fast window, inside the 1h
	// ring. The fast view decays purely from the read-side rotation —
	// no further traffic required.
	clk.advance(10 * time.Minute)
	faded := getSLO(t, ts.URL)
	if faded.WindowSamples != 0 || faded.WindowP99MS != 0 || faded.FastTotal != 0 {
		t.Fatalf("fast window did not decay after 10min: %+v", faded)
	}
	if faded.SlowTotal != 3 {
		t.Fatalf("slow window should still hold the samples: %+v", faded)
	}

	clk.advance(2 * time.Hour)
	gone := getSLO(t, ts.URL)
	if gone.SlowTotal != 0 {
		t.Fatalf("slow window did not decay after 2h: %+v", gone)
	}

	// The cumulative histogram never forgets.
	if got := histCount(t, ts.URL); got != cumBefore+3 {
		t.Fatalf("cumulative request histogram = %d, want %d", got, cumBefore+3)
	}
}

// histCount reads the cumulative per-route latency histogram's
// observation count from the JSON snapshot.
func histCount(t testing.TB, base string) int64 {
	t.Helper()
	_, ms := getMetrics(t, base)
	m := findMetric(ms, "server.request_seconds", "route=/v1/profile")
	if m == nil {
		return 0
	}
	return int64(m.Value)
}

// TestObsGoroutineLifecycle: the runtime collector and access-log
// writer are real goroutines; Close stops both (leakCheck verifies)
// and runtime gauges show the collector actually sampled.
func TestObsGoroutineLifecycle(t *testing.T) {
	leakCheck(t)
	withObs(t)
	buf := &syncBuffer{}
	srv, ts := newTestServer(t, Config{RuntimeInterval: time.Millisecond, AccessLog: buf})

	if resp, _ := postTrace(t, ts.URL+"/v1/profile?n=10", encodedTrace(t, 100, 13)); resp.StatusCode != http.StatusOK {
		t.Fatalf("upload status %d", resp.StatusCode)
	}
	waitFor(t, func() bool {
		_, ms := getMetrics(t, ts.URL)
		m := findMetric(ms, "runtime.goroutines", "")
		return m != nil && m.Value > 0
	})

	srv.Close()
	srv.Close() // idempotent
	if !strings.Contains(buf.String(), `"event":"shutdown"`) {
		t.Fatalf("drain did not flush the shutdown line:\n%s", buf.String())
	}
}

// gatedWriter blocks every Write until the gate channel is closed,
// pinning the access-log writer goroutine so the test can fill the
// queue deterministically.
type gatedWriter struct{ gate chan struct{} }

func (g *gatedWriter) Write(p []byte) (int, error) {
	<-g.gate
	return len(p), nil
}

// TestMetricsExposesInternalTallies: the access-log drop counter and
// the labeled-metric cardinality-overflow count are tracked internally;
// both must surface on the Prometheus exposition (and the JSON
// snapshot) once nonzero.
func TestMetricsExposesInternalTallies(t *testing.T) {
	withObs(t)
	gw := &gatedWriter{gate: make(chan struct{})}
	srv, ts := newTestServer(t, Config{AccessLog: gw})
	// Registered after newTestServer so it runs first (LIFO): the gate
	// must open before the server's Close drains the queue.
	t.Cleanup(func() { close(gw.gate) })

	// The writer goroutine blocks on the first entry; the queue holds
	// the next 1024; everything past that is dropped and counted.
	for i := 0; i < 1100; i++ {
		srv.accessLog.Log(accessEntry{ID: fmt.Sprintf("fill-%d", i)})
	}
	if srv.accessLog.Dropped() == 0 {
		t.Fatal("expected dropped access-log lines after overfilling the queue")
	}

	// Blow past a vec's cardinality bound: observations beyond
	// maxCardinality distinct tuples collapse into ~overflow and count.
	probe := obs.NewCounterVec("test.overflow_probe", "cardinality probe", "k")
	for i := 0; i < 300; i++ {
		probe.With(fmt.Sprintf("v%03d", i)).Inc()
	}
	if obs.CardinalityOverflows() == 0 {
		t.Fatal("expected cardinality overflows after 300 distinct tuples")
	}

	_, promBody := getBody(t, ts.URL+"/metrics")
	text := string(promBody)
	for _, want := range []string{
		"# TYPE server_accesslog_dropped counter",
		"server_accesslog_dropped ",
		"# TYPE obs_cardinality_overflow counter",
		"obs_cardinality_overflow ",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("/metrics output missing %q:\n%s", want, text)
		}
	}
	for _, line := range strings.Split(text, "\n") {
		var v float64
		if n, _ := fmt.Sscanf(line, "server_accesslog_dropped %g", &v); n == 1 && v < 1 {
			t.Fatalf("server_accesslog_dropped = %g, want >= 1", v)
		}
		if n, _ := fmt.Sscanf(line, "obs_cardinality_overflow %g", &v); n == 1 && v < 1 {
			t.Fatalf("obs_cardinality_overflow = %g, want >= 1", v)
		}
	}

	// The JSON snapshot carries the same counters.
	_, ms := getMetrics(t, ts.URL)
	if m := findMetric(ms, "server.accesslog_dropped", ""); m == nil || m.Value < 1 {
		t.Fatalf("server.accesslog_dropped missing from JSON snapshot: %+v", m)
	}
	if m := findMetric(ms, "obs.cardinality_overflow", ""); m == nil || m.Value < 1 {
		t.Fatalf("obs.cardinality_overflow missing from JSON snapshot: %+v", m)
	}
}
