package server

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"

	"simprof/internal/obs"
)

// The access-log counters mirror the logger's internal tallies. The
// logger is the source of truth (it counts whether or not telemetry is
// enabled, and its shutdown line must match); the obs counters are
// synced from the tallies at scrape time so /metrics and /v1/metrics
// always expose the current values instead of a racing duplicate count.
var (
	obsAccessLogDropped = obs.NewCounter("server.accesslog_dropped",
		"access-log lines dropped because the log queue was full")
	obsAccessLogLines = obs.NewCounter("server.accesslog_lines",
		"access-log lines written")
)

// accessEntry is one structured access-log line: who asked for what,
// how it was classified, and where the time went. Durations are split
// the way an operator debugs tail latency: enqueue (admission-queue
// wait), flush (history persist, retries included) and handle (whole
// request). All are milliseconds.
type accessEntry struct {
	ID        string  `json:"id"`
	Route     string  `json:"route"`
	Tenant    string  `json:"tenant"`
	Status    int     `json:"status"`
	Class     string  `json:"class"`
	Bytes     int64   `json:"bytes"`
	EnqueueMS float64 `json:"enqueue_ms"`
	FlushMS   float64 `json:"flush_ms"`
	HandleMS  float64 `json:"handle_ms"`
}

// shutdownEntry is the final line an access log emits on Close, so a
// log consumer can tell a clean drain from a truncated file.
type shutdownEntry struct {
	Event    string `json:"event"` // always "shutdown"
	Requests int64  `json:"requests"`
	Dropped  int64  `json:"dropped"`
}

// accessLogger writes one JSON line per request to an io.Writer,
// asynchronously: the handler path enqueues onto a bounded channel and
// never blocks on the log sink (a slow disk must not add tail latency).
// When the queue is full the line is dropped and counted. Close drains
// the queue, appends a shutdown line, and waits for the writer
// goroutine to exit — the chaos harness's goroutine-leak check covers
// the lifecycle.
type accessLogger struct {
	ch     chan accessEntry
	done   chan struct{}
	closed sync.Once

	mu sync.Mutex // serializes writes with the final shutdown line
	w  io.Writer
	// written and dropped are atomics, not mu-guarded: the scrape path
	// reads them while the writer goroutine may be blocked inside a slow
	// sink's Write with mu held.
	written atomic.Int64
	dropped atomic.Int64
}

// newAccessLogger starts the writer goroutine over w. A nil writer
// returns a nil logger, whose methods no-op.
func newAccessLogger(w io.Writer) *accessLogger {
	if w == nil {
		return nil
	}
	l := &accessLogger{
		ch:   make(chan accessEntry, 1024),
		done: make(chan struct{}),
		w:    w,
	}
	go l.run()
	return l
}

func (l *accessLogger) run() {
	defer close(l.done)
	for e := range l.ch {
		l.write(e)
	}
}

func (l *accessLogger) write(e accessEntry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	b, err := json.Marshal(e)
	if err != nil {
		return
	}
	b = append(b, '\n')
	if _, err := l.w.Write(b); err == nil {
		l.written.Add(1)
	}
}

// Log enqueues one entry; it never blocks. A full queue drops the line
// (counted in server.accesslog_dropped).
func (l *accessLogger) Log(e accessEntry) {
	if l == nil {
		return
	}
	select {
	case l.ch <- e:
	default:
		l.dropped.Add(1)
	}
}

// Written returns the number of lines successfully written so far.
func (l *accessLogger) Written() int64 {
	if l == nil {
		return 0
	}
	return l.written.Load()
}

// Dropped returns the number of lines dropped to the full queue.
func (l *accessLogger) Dropped() int64 {
	if l == nil {
		return 0
	}
	return l.dropped.Load()
}

// Close stops the logger: the queue is drained, a final shutdown line
// is written, and the writer goroutine is gone when Close returns.
// Safe to call more than once.
func (l *accessLogger) Close() {
	if l == nil {
		return
	}
	l.closed.Do(func() {
		close(l.ch)
		<-l.done
		l.mu.Lock()
		defer l.mu.Unlock()
		b, err := json.Marshal(shutdownEntry{
			Event:    "shutdown",
			Requests: l.written.Load(),
			Dropped:  l.dropped.Load(),
		})
		if err != nil {
			return
		}
		l.w.Write(append(b, '\n'))
	})
}
