package faults

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"simprof/internal/model"
	"simprof/internal/phase"
	"simprof/internal/sampling"
	"simprof/internal/stats"
	"simprof/internal/trace"
)

// buildTrace makes a valid multi-thread trace with two behaviours so
// phase formation has something to find: method A (CPI≈1) and method B
// (CPI≈3), alternating, across nThreads threads.
func buildTrace(nThreads, perThread int, seed uint64) *trace.Trace {
	tbl := model.NewTable()
	root := tbl.Intern("T", "run", model.KindFramework)
	a := tbl.Intern("A", "map", model.KindMap)
	b := tbl.Intern("B", "sort", model.KindSort)
	rng := stats.NewRNG(seed)
	tr := &trace.Trace{
		Benchmark: "synth", Framework: "spark",
		UnitInstr: 1000, SnapshotEvery: 100,
		Methods: tbl.Methods(),
	}
	var cycle uint64
	for th := 0; th < nThreads; th++ {
		for i := 0; i < perThread; i++ {
			m, cpi := a, 1.0+0.05*rng.Float64()
			if i%2 == 1 {
				m, cpi = b, 3.0+0.2*rng.Float64()
			}
			u := trace.Unit{
				ID: len(tr.Units), Thread: th, Index: i, StartCycle: cycle,
			}
			for s := 0; s < 10; s++ {
				u.Snapshots = append(u.Snapshots, model.Stack{root, m})
			}
			u.Counters = trace.Counters{Instructions: 1000, Cycles: uint64(1000 * cpi)}
			cycle += u.Counters.Cycles
			tr.Units = append(tr.Units, u)
		}
	}
	return tr
}

func TestConfigValidateAndParse(t *testing.T) {
	if err := (Config{CounterDrop: 1.5}).Validate(); err == nil {
		t.Fatal("rate >1 accepted")
	}
	if err := (Config{Reorder: -0.1}).Validate(); err == nil {
		t.Fatal("negative rate accepted")
	}
	c, err := ParseSpec("drop=0.1, mux=0.2, snap=0.05,crash=0.01,dup=0.02,reorder=0.03")
	if err != nil {
		t.Fatal(err)
	}
	if c.CounterDrop != 0.1 || c.Multiplex != 0.2 || c.SnapshotLoss != 0.05 ||
		c.Crash != 0.01 || c.Duplicate != 0.02 || c.Reorder != 0.03 {
		t.Fatalf("parsed %+v", c)
	}
	if c.MultiplexCoV != 0.05 {
		t.Fatalf("muxcov default not applied: %v", c.MultiplexCoV)
	}
	if u, err := ParseSpec("rate=0.1"); err != nil || !u.Enabled() || u.CounterDrop != 0.1 {
		t.Fatalf("rate shorthand: %+v err=%v", u, err)
	}
	if _, err := ParseSpec("bogus=1"); err == nil {
		t.Fatal("unknown key accepted")
	}
	if _, err := ParseSpec("drop"); err == nil {
		t.Fatal("missing value accepted")
	}
	if _, err := ParseSpec("drop=x"); err == nil {
		t.Fatal("non-numeric rate accepted")
	}
	if empty, err := ParseSpec("  "); err != nil || empty.Enabled() {
		t.Fatalf("blank spec: %+v err=%v", empty, err)
	}
	// Round trip through String.
	again, err := ParseSpec(c.String())
	if err != nil {
		t.Fatal(err)
	}
	if again != c {
		t.Fatalf("String round trip lost fields: %+v vs %+v", again, c)
	}
}

func TestApplyLeavesInputUntouched(t *testing.T) {
	tr := buildTrace(4, 40, 1)
	var before bytes.Buffer
	if err := tr.EncodeGob(&before); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Apply(tr, Uniform(0.3, 7)); err != nil {
		t.Fatal(err)
	}
	var after bytes.Buffer
	if err := tr.EncodeGob(&after); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before.Bytes(), after.Bytes()) {
		t.Fatal("Apply mutated its input trace")
	}
}

func TestApplyDeterministic(t *testing.T) {
	tr := buildTrace(4, 40, 1)
	a, repA, err := Apply(tr, Uniform(0.15, 99))
	if err != nil {
		t.Fatal(err)
	}
	b, repB, err := Apply(tr, Uniform(0.15, 99))
	if err != nil {
		t.Fatal(err)
	}
	if repA != repB {
		t.Fatalf("reports differ: %+v vs %+v", repA, repB)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	c, _, err := Apply(tr, Uniform(0.15, 100))
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical faults")
	}
}

// Channel isolation: enabling a second channel must not change the
// draws of the first. The units dropped by CounterDrop alone must be
// exactly the units dropped when snapshot loss also runs.
func TestChannelIsolation(t *testing.T) {
	tr := buildTrace(2, 60, 3)
	only, _, err := Apply(tr, Config{CounterDrop: 0.2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	both, _, err := Apply(tr, Config{CounterDrop: 0.2, SnapshotLoss: 0.3, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i := range only.Units {
		a := only.Units[i].Quality.Has(trace.CountersMissing)
		b := both.Units[i].Quality.Has(trace.CountersMissing)
		if a != b {
			t.Fatalf("unit %d: drop channel shifted by enabling snapshot loss (%v vs %v)", i, a, b)
		}
	}
}

func TestZeroConfigIsIdentity(t *testing.T) {
	tr := buildTrace(2, 20, 5)
	out, rep, err := Apply(tr, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if rep != (Report{}) {
		t.Fatalf("empty schedule injected something: %+v", rep)
	}
	if !reflect.DeepEqual(out.Units, tr.Units) {
		t.Fatal("empty schedule changed the units")
	}
}

func TestReportCounts(t *testing.T) {
	tr := buildTrace(4, 50, 2)
	faulty, rep, err := Apply(tr, Uniform(0.2, 17))
	if err != nil {
		t.Fatal(err)
	}
	if rep.CountersDropped == 0 || rep.SnapshotsLost == 0 || rep.Multiplexed == 0 {
		t.Fatalf("expected all collection channels to fire at 20%%: %+v", rep)
	}
	dropped := 0
	for i := range faulty.Units {
		if faulty.Units[i].Quality.Has(trace.CountersMissing) {
			dropped++
		}
	}
	// Duplication (which runs after the counter channel) may copy a
	// flagged unit, so the trace can hold slightly more flags than the
	// report counted — but never fewer, and never more than the copies
	// could add.
	if dropped < rep.CountersDropped || dropped > rep.CountersDropped+rep.Duplicated {
		t.Fatalf("report says %d dropped (+%d dups), trace has %d", rep.CountersDropped, rep.Duplicated, dropped)
	}
	if rep.UnitsLost > 0 && len(faulty.Units) >= len(tr.Units)+rep.Duplicated {
		t.Fatal("crash lost units but the trace did not shrink")
	}
	if got := rep.String(); got == "" {
		t.Fatal("empty report string")
	}
}

// The tentpole property: ANY seeded fault schedule, after Repair,
// yields a Validate-clean trace, and the downstream pipeline (phases +
// stratified sampling) is bit-identical at every worker count.
func TestApplyRepairProperty(t *testing.T) {
	tr := buildTrace(4, 40, 8)
	for _, rate := range []float64{0.02, 0.1, 0.25, 0.5} {
		for seed := uint64(0); seed < 8; seed++ {
			faulty, _, err := Apply(tr, Uniform(rate, seed))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := faulty.Repair(); err != nil {
				t.Fatalf("rate=%v seed=%d: repair failed: %v", rate, seed, err)
			}
			if err := faulty.Validate(); err != nil {
				t.Fatalf("rate=%v seed=%d: repaired trace invalid: %v", rate, seed, err)
			}
		}
	}
}

// pipelineResult summarizes everything downstream that must be
// worker-count invariant.
func pipelineResult(t *testing.T, tr *trace.Trace, workers int) string {
	t.Helper()
	ph, err := phase.Form(tr, phase.Options{Seed: 21, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sampling.SimProf(ph, 16, 77)
	if err != nil {
		t.Fatal(err)
	}
	ci := sp.BootstrapCI(0.99, 200, 5)
	return fmt.Sprintf("K=%d assign=%v ids=%v est=%x se=%x ci=%x/%x",
		ph.K, ph.Assign, sp.UnitIDs, sp.EstCPI, sp.SE, ci.Mean, ci.Margin)
}

func TestDegradedPipelineWorkerInvariance(t *testing.T) {
	base := buildTrace(4, 40, 13)
	faulty, _, err := Apply(base, Uniform(0.15, 5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := faulty.Repair(); err != nil {
		t.Fatal(err)
	}
	want := pipelineResult(t, faulty, 1)
	for _, workers := range []int{2, 8} {
		if got := pipelineResult(t, faulty, workers); got != want {
			t.Fatalf("workers=%d diverged:\n  %s\nvs\n  %s", workers, got, want)
		}
	}
	// And the whole chain replays bit-for-bit from the same fault seed.
	again, _, err := Apply(base, Uniform(0.15, 5))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := again.Repair(); err != nil {
		t.Fatal(err)
	}
	if got := pipelineResult(t, again, 4); got != want {
		t.Fatalf("replayed chain diverged:\n  %s\nvs\n  %s", got, want)
	}
}

func TestCorruptBytes(t *testing.T) {
	data := bytes.Repeat([]byte{0xAA}, 256)
	a := CorruptBytes(data, 16, 3)
	b := CorruptBytes(data, 16, 3)
	if !bytes.Equal(a, b) {
		t.Fatal("CorruptBytes not deterministic")
	}
	if bytes.Equal(a, data) {
		t.Fatal("no bits flipped")
	}
	if !bytes.Equal(data, bytes.Repeat([]byte{0xAA}, 256)) {
		t.Fatal("input mutated")
	}
	if out := CorruptBytes(nil, 5, 1); len(out) != 0 {
		t.Fatal("nil input should stay empty")
	}
}

// Corrupted encodings must decode to an error or a Validate-clean
// trace — never panic (the decode half of the byte-level channel).
func TestCorruptedDecodeNeverPanics(t *testing.T) {
	tr := buildTrace(2, 30, 4)
	var gob, js bytes.Buffer
	if err := tr.EncodeGob(&gob); err != nil {
		t.Fatal(err)
	}
	if err := tr.EncodeJSON(&js); err != nil {
		t.Fatal(err)
	}
	for seed := uint64(0); seed < 50; seed++ {
		for _, flips := range []int{1, 4, 64} {
			if got, err := trace.DecodeGob(bytes.NewReader(CorruptBytes(gob.Bytes(), flips, seed))); err == nil {
				if verr := got.Validate(); verr != nil {
					t.Fatalf("gob seed=%d flips=%d: decoded invalid trace: %v", seed, flips, verr)
				}
			}
			if got, err := trace.DecodeJSON(bytes.NewReader(CorruptBytes(js.Bytes(), flips, seed))); err == nil {
				if verr := got.Validate(); verr != nil {
					t.Fatalf("json seed=%d flips=%d: decoded invalid trace: %v", seed, flips, verr)
				}
			}
		}
	}
}
