// Package faults is a deterministic, seeded fault-injection subsystem
// that perturbs a profiling trace the way real collectors fail: perf
// multiplexing drops counter reads and scales the surviving ones with
// extrapolation error, JVMTI snapshot requests get lost under load,
// executors crash and truncate their thread streams, and retried
// uploads duplicate or reorder units. Injection happens on the trace —
// after collection, before any analysis — so every downstream layer
// (validation/repair, phase formation, sampling, sensitivity) can be
// exercised against degraded inputs.
//
// Determinism contract: Apply is a pure function of (trace, Config).
// Each fault channel draws from its own SplitSeed-derived RNG, so
// enabling one channel never shifts another's draws, and the same seed
// replays the same fault schedule bit for bit at any worker count.
package faults

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"simprof/internal/model"
	"simprof/internal/obs"
	"simprof/internal/stats"
	"simprof/internal/trace"
)

// Per-channel injection telemetry, one counter per fault class, so a
// run manifest can attribute degradation to its source.
var (
	obsApplies = obs.NewCounter("faults.applies",
		"fault schedules applied to a trace")
	obsDropped = obs.NewCounter("faults.counters_dropped",
		"units whose counters were zeroed by injection")
	obsMuxed = obs.NewCounter("faults.multiplexed",
		"units with multiplex-scaled counter readings")
	obsSnapsLost = obs.NewCounter("faults.snapshots_lost",
		"call-stack snapshots removed by injection")
	obsCrashes = obs.NewCounter("faults.crashed_threads",
		"thread streams truncated by injected crashes")
	obsUnitsLost = obs.NewCounter("faults.units_lost",
		"units removed by injected crashes")
	obsDuplicated = obs.NewCounter("faults.duplicated",
		"units duplicated by injected retry uploads")
	obsDisplaced = obs.NewCounter("faults.displaced",
		"units displaced by injected reordering")
)

// Config sets the per-channel fault rates. All rates are probabilities
// in [0,1]; the zero value injects nothing.
type Config struct {
	// CounterDrop is the per-unit probability that the hardware-counter
	// read was lost entirely (multiplexing dropout): counters are zeroed
	// and the unit is flagged CountersMissing.
	CounterDrop float64
	// Multiplex is the per-unit probability that the counters were
	// read under multiplexing and extrapolated: cycles are scaled by a
	// log-normal factor with coefficient of variation MultiplexCoV.
	// This error is invisible to the pipeline (no flag) — exactly like
	// real extrapolated perf counts.
	Multiplex float64
	// MultiplexCoV is the scaling-error CoV (default 0.05 when
	// Multiplex > 0).
	MultiplexCoV float64
	// SnapshotLoss is the per-snapshot probability that a call-stack
	// snapshot request was lost; affected units are flagged
	// SnapshotsPartial.
	SnapshotLoss float64
	// Crash is the per-thread probability that the executor crashed
	// mid-run, truncating the thread's unit stream at a uniform point.
	// The last surviving unit is flagged Truncated.
	Crash float64
	// Duplicate is the per-unit probability that the unit was uploaded
	// twice (retry after a timed-out ack); the copy keeps the original
	// id, producing the non-dense id streams Repair must collapse.
	Duplicate float64
	// Reorder is the per-unit probability that the unit was delivered
	// out of order; displaced units are permuted among themselves.
	Reorder float64

	// The I/O channels perturb byte streams rather than traces; they are
	// consumed by NewIO's Reader/Writer wrappers and ignored by Apply
	// (which operates on an already-decoded trace).

	// TornWrite is the per-Write probability that only a prefix of the
	// buffer reaches the destination before the write fails (power cut,
	// full disk, killed writer) — the wrapped writer persists the prefix
	// and returns ErrTornWrite.
	TornWrite float64
	// PartialRead is the per-Read probability that the source dies
	// mid-read: the wrapped reader delivers a prefix of what it got and
	// returns ErrPartialRead.
	PartialRead float64
	// IOLatencyMS injects that many milliseconds of delay (±50%,
	// seeded) into every wrapped Read and Write — slow disks, stalled
	// NFS, throttled clients. 0 injects none.
	IOLatencyMS float64

	// Seed drives every channel (via SplitSeed, one stream per channel).
	Seed uint64
}

// Channel seed labels, one per fault class.
const (
	seedDrop = iota + 0x7a11
	seedMux
	seedSnap
	seedCrash
	seedDup
	seedReorder
	seedCorrupt
	seedTorn
	seedPartial
	seedIOLat
)

// Validate checks that all rates are probabilities.
func (c Config) Validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"drop", c.CounterDrop}, {"mux", c.Multiplex}, {"muxcov", c.MultiplexCoV},
		{"snap", c.SnapshotLoss}, {"crash", c.Crash},
		{"dup", c.Duplicate}, {"reorder", c.Reorder},
		{"torn", c.TornWrite}, {"pread", c.PartialRead}, {"iolatms", c.IOLatencyMS},
	} {
		unbounded := r.name == "muxcov" || r.name == "iolatms"
		if r.v < 0 || (r.v > 1 && !unbounded) {
			return fmt.Errorf("faults: %s=%v out of [0,1]", r.name, r.v)
		}
	}
	return nil
}

// Enabled reports whether any trace channel has a non-zero rate. The
// I/O channels do not count — they act on byte streams via NewIO, not
// on the trace Apply perturbs.
func (c Config) Enabled() bool {
	return c.CounterDrop > 0 || c.Multiplex > 0 || c.SnapshotLoss > 0 ||
		c.Crash > 0 || c.Duplicate > 0 || c.Reorder > 0
}

// IOEnabled reports whether any I/O channel is active.
func (c Config) IOEnabled() bool {
	return c.TornWrite > 0 || c.PartialRead > 0 || c.IOLatencyMS > 0
}

// Uniform returns a schedule that stresses every channel at a single
// unit-level rate r — the dial the degradation ablation sweeps. Crash
// (a per-thread event) runs at half rate, duplication and reordering
// (transport faults, rarer than collection faults) at a quarter.
func Uniform(r float64, seed uint64) Config {
	return Config{
		CounterDrop:  r,
		Multiplex:    r,
		MultiplexCoV: 0.05,
		SnapshotLoss: r,
		Crash:        r / 2,
		Duplicate:    r / 4,
		Reorder:      r / 4,
		Seed:         seed,
	}
}

// String renders the schedule in ParseSpec syntax.
func (c Config) String() string {
	var parts []string
	add := func(k string, v float64) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", k, v))
		}
	}
	add("drop", c.CounterDrop)
	add("mux", c.Multiplex)
	add("muxcov", c.MultiplexCoV)
	add("snap", c.SnapshotLoss)
	add("crash", c.Crash)
	add("dup", c.Duplicate)
	add("reorder", c.Reorder)
	add("torn", c.TornWrite)
	add("pread", c.PartialRead)
	add("iolatms", c.IOLatencyMS)
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// ParseSpec parses a comma-separated fault schedule, e.g.
// "drop=0.05,mux=0.1,snap=0.1,crash=0.02,dup=0.01,reorder=0.02".
// Keys: drop, mux, muxcov, snap, crash, dup, reorder, the I/O channels
// torn, pread, iolatms, and rate=R as shorthand for the Uniform
// schedule at rate R (trace channels only).
func ParseSpec(spec string) (Config, error) {
	var c Config
	if strings.TrimSpace(spec) == "" {
		return c, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return c, fmt.Errorf("faults: bad spec entry %q (want key=rate)", kv)
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
		if err != nil {
			return c, fmt.Errorf("faults: bad rate in %q: %v", kv, err)
		}
		switch strings.TrimSpace(k) {
		case "rate":
			c = Uniform(f, c.Seed)
		case "drop":
			c.CounterDrop = f
		case "mux":
			c.Multiplex = f
		case "muxcov":
			c.MultiplexCoV = f
		case "snap":
			c.SnapshotLoss = f
		case "crash":
			c.Crash = f
		case "dup":
			c.Duplicate = f
		case "reorder":
			c.Reorder = f
		case "torn":
			c.TornWrite = f
		case "pread":
			c.PartialRead = f
		case "iolatms":
			c.IOLatencyMS = f
		default:
			return c, fmt.Errorf("faults: unknown fault channel %q", k)
		}
	}
	if c.Multiplex > 0 && c.MultiplexCoV == 0 {
		c.MultiplexCoV = 0.05
	}
	return c, c.Validate()
}

// Report tallies what Apply injected.
type Report struct {
	CountersDropped int // units whose counters were zeroed
	Multiplexed     int // units with scaled counter readings
	SnapshotsLost   int // individual snapshots removed
	CrashedThreads  int // threads truncated
	UnitsLost       int // units removed by crashes
	Duplicated      int // units uploaded twice
	Displaced       int // units delivered out of order
}

// String summarizes the injection.
func (r Report) String() string {
	return fmt.Sprintf(
		"dropped counters on %d units, multiplex-scaled %d, lost %d snapshots, crashed %d threads (-%d units), duplicated %d, displaced %d",
		r.CountersDropped, r.Multiplexed, r.SnapshotsLost, r.CrashedThreads, r.UnitsLost, r.Duplicated, r.Displaced)
}

// Apply injects the configured faults into a copy of tr; the input is
// never modified. The result is intentionally NOT guaranteed to pass
// trace.Validate — duplication, reordering and crashes produce exactly
// the structurally damaged streams real collectors emit; run
// (*trace.Trace).Repair to normalize and flag it.
func Apply(tr *trace.Trace, cfg Config) (*trace.Trace, Report, error) {
	var rep Report
	if err := cfg.Validate(); err != nil {
		return nil, rep, err
	}
	out := cloneTrace(tr)
	if !cfg.Enabled() {
		return out, rep, nil
	}

	applyCrashes(out, cfg, &rep)
	applyCounterFaults(out, cfg, &rep)
	applySnapshotLoss(out, cfg, &rep)
	applyDuplicates(out, cfg, &rep)
	applyReorder(out, cfg, &rep)
	rep.observe()
	return out, rep, nil
}

// observe mirrors the report into the per-channel counters.
func (r Report) observe() {
	obsApplies.Inc()
	obsDropped.Add(int64(r.CountersDropped))
	obsMuxed.Add(int64(r.Multiplexed))
	obsSnapsLost.Add(int64(r.SnapshotsLost))
	obsCrashes.Add(int64(r.CrashedThreads))
	obsUnitsLost.Add(int64(r.UnitsLost))
	obsDuplicated.Add(int64(r.Duplicated))
	obsDisplaced.Add(int64(r.Displaced))
}

// cloneTrace deep-copies the parts Apply may mutate (units and their
// snapshot lists; stacks themselves are immutable and stay shared).
func cloneTrace(tr *trace.Trace) *trace.Trace {
	out := *tr
	out.SetFreq(nil) // the copied frequency handle would go stale with the mutations
	out.Methods = append([]model.Method(nil), tr.Methods...)
	out.Units = append([]trace.Unit(nil), tr.Units...)
	for i := range out.Units {
		out.Units[i].Snapshots = append([]model.Stack(nil), out.Units[i].Snapshots...)
		out.Units[i].Stages = append([]int(nil), out.Units[i].Stages...)
	}
	return &out
}

// applyCrashes truncates thread streams: a crashed executor stops
// reporting mid-run, so the tail of its unit sequence never arrives.
func applyCrashes(tr *trace.Trace, cfg Config, rep *Report) {
	if cfg.Crash <= 0 {
		return
	}
	rng := stats.NewRNG(stats.SplitSeed(cfg.Seed, seedCrash))
	byThread := map[int][]int{} // thread → unit positions, stream order
	var threads []int
	for i, u := range tr.Units {
		if _, ok := byThread[u.Thread]; !ok {
			threads = append(threads, u.Thread)
		}
		byThread[u.Thread] = append(byThread[u.Thread], i)
	}
	sort.Ints(threads)
	drop := map[int]bool{}
	for _, th := range threads {
		units := byThread[th]
		if rng.Float64() >= cfg.Crash || len(units) < 2 {
			continue
		}
		// Keep a non-empty prefix; everything after the crash is lost.
		keep := 1 + rng.IntN(len(units)-1)
		rep.CrashedThreads++
		for _, pos := range units[keep:] {
			drop[pos] = true
			rep.UnitsLost++
		}
		last := &tr.Units[units[keep-1]]
		last.Quality |= trace.Truncated
	}
	if len(drop) == 0 {
		return
	}
	kept := tr.Units[:0]
	for i := range tr.Units {
		if !drop[i] {
			kept = append(kept, tr.Units[i])
		}
	}
	tr.Units = kept
}

// applyCounterFaults models perf_event multiplexing: full dropouts
// (counters zeroed, flagged) and extrapolation scaling error (cycles
// and miss counts scaled by a log-normal factor, unflagged — the
// profiler cannot tell an extrapolated read from an exact one).
func applyCounterFaults(tr *trace.Trace, cfg Config, rep *Report) {
	if cfg.CounterDrop <= 0 && cfg.Multiplex <= 0 {
		return
	}
	dropRNG := stats.NewRNG(stats.SplitSeed(cfg.Seed, seedDrop))
	muxRNG := stats.NewRNG(stats.SplitSeed(cfg.Seed, seedMux))
	for i := range tr.Units {
		u := &tr.Units[i]
		if cfg.CounterDrop > 0 && dropRNG.Float64() < cfg.CounterDrop {
			u.Counters = trace.Counters{}
			u.Quality |= trace.CountersMissing
			rep.CountersDropped++
			continue
		}
		if cfg.Multiplex > 0 && muxRNG.Float64() < cfg.Multiplex {
			f := stats.LogNormal(muxRNG, 1, cfg.MultiplexCoV)
			u.Counters.Cycles = uint64(float64(u.Counters.Cycles) * f)
			u.Counters.L1Misses = uint64(float64(u.Counters.L1Misses) * f)
			u.Counters.L2Misses = uint64(float64(u.Counters.L2Misses) * f)
			u.Counters.LLCMisses = uint64(float64(u.Counters.LLCMisses) * f)
			rep.Multiplexed++
		}
	}
}

// applySnapshotLoss drops individual call-stack snapshots (lost JVMTI
// requests) and flags the affected units.
func applySnapshotLoss(tr *trace.Trace, cfg Config, rep *Report) {
	if cfg.SnapshotLoss <= 0 {
		return
	}
	rng := stats.NewRNG(stats.SplitSeed(cfg.Seed, seedSnap))
	for i := range tr.Units {
		u := &tr.Units[i]
		kept := u.Snapshots[:0]
		for _, s := range u.Snapshots {
			if rng.Float64() < cfg.SnapshotLoss {
				rep.SnapshotsLost++
				continue
			}
			kept = append(kept, s)
		}
		if len(kept) < len(u.Snapshots) {
			u.Snapshots = kept
			u.Quality |= trace.SnapshotsPartial
		}
	}
}

// applyDuplicates re-uploads units (ack timeout → retry), appending
// copies that keep their original ids.
func applyDuplicates(tr *trace.Trace, cfg Config, rep *Report) {
	if cfg.Duplicate <= 0 {
		return
	}
	rng := stats.NewRNG(stats.SplitSeed(cfg.Seed, seedDup))
	n := len(tr.Units)
	for i := 0; i < n; i++ {
		if rng.Float64() < cfg.Duplicate {
			dup := tr.Units[i]
			dup.Snapshots = append([]model.Stack(nil), dup.Snapshots...)
			tr.Units = append(tr.Units, dup)
			rep.Duplicated++
		}
	}
}

// applyReorder permutes a random subset of unit positions (out-of-order
// delivery).
func applyReorder(tr *trace.Trace, cfg Config, rep *Report) {
	if cfg.Reorder <= 0 {
		return
	}
	rng := stats.NewRNG(stats.SplitSeed(cfg.Seed, seedReorder))
	var displaced []int
	for i := range tr.Units {
		if rng.Float64() < cfg.Reorder {
			displaced = append(displaced, i)
		}
	}
	if len(displaced) < 2 {
		return
	}
	perm := append([]int(nil), displaced...)
	rng.Shuffle(len(perm), func(a, b int) { perm[a], perm[b] = perm[b], perm[a] })
	orig := make([]trace.Unit, len(displaced))
	for k, pos := range displaced {
		orig[k] = tr.Units[pos]
	}
	moved := 0
	for k, pos := range displaced {
		if perm[k] != pos {
			moved++
		}
		tr.Units[pos] = orig[indexOf(displaced, perm[k])]
	}
	rep.Displaced += moved
}

func indexOf(xs []int, v int) int {
	for i, x := range xs {
		if x == v {
			return i
		}
	}
	return -1
}

// CorruptBytes flips `flips` pseudo-random bits of a copy of data —
// byte-level trace corruption (torn writes, bad sectors) for exercising
// the decode path. Deterministic in (len(data), flips, seed).
func CorruptBytes(data []byte, flips int, seed uint64) []byte {
	out := append([]byte(nil), data...)
	if len(out) == 0 || flips <= 0 {
		return out
	}
	rng := stats.NewRNG(stats.SplitSeed(seed, seedCorrupt))
	for i := 0; i < flips; i++ {
		pos := rng.IntN(len(out))
		bit := uint(rng.IntN(8))
		out[pos] ^= 1 << bit
	}
	return out
}
