package faults

import (
	"errors"
	"io"
	"math/rand/v2"
	"time"

	"simprof/internal/obs"
	"simprof/internal/stats"
)

var (
	obsTornWrites = obs.NewCounter("faults.torn_writes",
		"writes cut short by the injected torn-write channel")
	obsPartialReads = obs.NewCounter("faults.partial_reads",
		"reads cut short by the injected partial-read channel")
	obsIODelays = obs.NewCounter("faults.io_delays",
		"I/O operations delayed by the injected latency channel")
)

// Typed I/O fault errors. Wrappers return them (possibly wrapped with
// position detail), so consumers can errors.Is-classify an injected
// failure exactly like a real one.
var (
	// ErrTornWrite is returned by a faulty writer that persisted only a
	// prefix of the buffer — the on-disk state is the torn tail a crash
	// leaves behind.
	ErrTornWrite = errors.New("faults: torn write")
	// ErrPartialRead is returned by a faulty reader whose source died
	// mid-read after delivering a prefix.
	ErrPartialRead = errors.New("faults: partial read")
)

// IO injects the Config's I/O channels (TornWrite, PartialRead,
// IOLatencyMS) into byte streams. Each channel draws from its own
// SplitSeed-derived stream, mirroring the trace channels' determinism
// contract: the same seed yields the same fault schedule — the k-th
// write tears at the same point — independent of the other channels.
//
// An IO value is NOT safe for concurrent use (its RNG streams are
// stateful); wrap each stream with its own IO, seeded per stream.
type IO struct {
	cfg     Config
	tornRNG *rand.Rand
	readRNG *rand.Rand
	latRNG  *rand.Rand
	// Sleep is the injectable delay (default time.Sleep) so tests can
	// observe latency injection without waiting it out.
	Sleep func(time.Duration)
}

// NewIO builds an injector for the config's I/O channels.
func NewIO(cfg Config) *IO {
	return &IO{
		cfg:     cfg,
		tornRNG: stats.NewRNG(stats.SplitSeed(cfg.Seed, seedTorn)),
		readRNG: stats.NewRNG(stats.SplitSeed(cfg.Seed, seedPartial)),
		latRNG:  stats.NewRNG(stats.SplitSeed(cfg.Seed, seedIOLat)),
		Sleep:   time.Sleep,
	}
}

// delay injects the latency channel on one operation.
func (f *IO) delay() {
	if f.cfg.IOLatencyMS <= 0 {
		return
	}
	obsIODelays.Inc()
	ms := f.cfg.IOLatencyMS * (0.5 + f.latRNG.Float64())
	f.Sleep(time.Duration(ms * float64(time.Millisecond)))
}

// Writer wraps w with the write-side channels. A torn write persists a
// strict prefix (possibly empty) of the buffer and returns ErrTornWrite
// with the short count, exactly as a real short write surfaces.
func (f *IO) Writer(w io.Writer) io.Writer { return &faultWriter{f: f, w: w} }

type faultWriter struct {
	f *IO
	w io.Writer
}

func (fw *faultWriter) Write(p []byte) (int, error) {
	fw.f.delay()
	if fw.f.cfg.TornWrite > 0 && fw.f.tornRNG.Float64() < fw.f.cfg.TornWrite {
		keep := 0
		if len(p) > 1 {
			keep = fw.f.tornRNG.IntN(len(p))
		}
		n, err := fw.w.Write(p[:keep])
		obsTornWrites.Inc()
		if err != nil {
			return n, err
		}
		return n, ErrTornWrite
	}
	return fw.w.Write(p)
}

// Reader wraps r with the read-side channels. A partial read delivers a
// prefix of what the source returned and reports ErrPartialRead; a
// retrying consumer that treats it as transient re-reads from the
// source's new position, a strict one surfaces a typed failure.
func (f *IO) Reader(r io.Reader) io.Reader { return &faultReader{f: f, r: r} }

type faultReader struct {
	f *IO
	r io.Reader
}

func (fr *faultReader) Read(p []byte) (int, error) {
	fr.f.delay()
	n, err := fr.r.Read(p)
	if err == nil && n > 0 && fr.f.cfg.PartialRead > 0 &&
		fr.f.readRNG.Float64() < fr.f.cfg.PartialRead {
		obsPartialReads.Inc()
		return fr.f.readRNG.IntN(n), ErrPartialRead
	}
	return n, err
}
