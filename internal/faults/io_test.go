package faults

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

// TestIOTornWrite: a torn write persists a strict prefix and returns
// the typed error; the same seed tears at the same point.
func TestIOTornWrite(t *testing.T) {
	cfg := Config{TornWrite: 1, Seed: 11}
	run := func() (int, error, []byte) {
		var buf bytes.Buffer
		w := NewIO(cfg).Writer(&buf)
		n, err := w.Write([]byte("hello world"))
		return n, err, buf.Bytes()
	}
	n1, err1, b1 := run()
	if !errors.Is(err1, ErrTornWrite) {
		t.Fatalf("err = %v, want ErrTornWrite", err1)
	}
	if n1 >= len("hello world") {
		t.Fatalf("torn write persisted %d of %d bytes — not a strict prefix", n1, len("hello world"))
	}
	if n1 != len(b1) || !bytes.HasPrefix([]byte("hello world"), b1) {
		t.Fatalf("persisted %q (n=%d) is not the reported prefix", b1, n1)
	}
	n2, _, b2 := run()
	if n1 != n2 || !bytes.Equal(b1, b2) {
		t.Fatalf("same seed tore differently: %d/%q vs %d/%q", n1, b1, n2, b2)
	}
}

// TestIOTornWriteDisabled: rate 0 passes everything through untouched.
func TestIOTornWriteDisabled(t *testing.T) {
	var buf bytes.Buffer
	w := NewIO(Config{Seed: 1}).Writer(&buf)
	n, err := w.Write([]byte("abc"))
	if n != 3 || err != nil || buf.String() != "abc" {
		t.Fatalf("clean write perturbed: n=%d err=%v buf=%q", n, err, buf.String())
	}
}

// TestIOPartialRead: the reader delivers a prefix and the typed error.
func TestIOPartialRead(t *testing.T) {
	cfg := Config{PartialRead: 1, Seed: 3}
	r := NewIO(cfg).Reader(strings.NewReader("payload"))
	p := make([]byte, 16)
	n, err := r.Read(p)
	if !errors.Is(err, ErrPartialRead) {
		t.Fatalf("err = %v, want ErrPartialRead", err)
	}
	if n >= len("payload") {
		t.Fatalf("partial read delivered %d bytes — not partial", n)
	}
}

// TestIOLatency: the latency channel delays every op via the injectable
// sleep, scaled around the configured mean.
func TestIOLatency(t *testing.T) {
	cfg := Config{IOLatencyMS: 10, Seed: 5}
	f := NewIO(cfg)
	var slept []time.Duration
	f.Sleep = func(d time.Duration) { slept = append(slept, d) }
	var buf bytes.Buffer
	if _, err := f.Writer(&buf).Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Reader(strings.NewReader("y")).Read(make([]byte, 1)); err != nil && err != io.EOF {
		t.Fatal(err)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want one per op", len(slept))
	}
	for _, d := range slept {
		if d < 5*time.Millisecond || d > 15*time.Millisecond {
			t.Fatalf("delay %v outside mean±50%%", d)
		}
	}
}

// TestIOSpecRoundTrip: the I/O keys parse, validate and render.
func TestIOSpecRoundTrip(t *testing.T) {
	c, err := ParseSpec("torn=0.5,pread=0.25,iolatms=20")
	if err != nil {
		t.Fatal(err)
	}
	if c.TornWrite != 0.5 || c.PartialRead != 0.25 || c.IOLatencyMS != 20 {
		t.Fatalf("parsed %+v", c)
	}
	if !c.IOEnabled() {
		t.Fatal("IOEnabled false with channels set")
	}
	if c.Enabled() {
		t.Fatal("I/O channels must not enable the trace-level Apply")
	}
	c2, err := ParseSpec(c.String())
	if err != nil || c2 != c {
		t.Fatalf("round trip %q → %+v (err %v)", c.String(), c2, err)
	}
	if _, err := ParseSpec("torn=1.5"); err == nil {
		t.Fatal("torn=1.5 should fail validation")
	}
	if _, err := ParseSpec("iolatms=500"); err != nil {
		t.Fatalf("iolatms is a duration, not a probability: %v", err)
	}
}

// TestIOApplyIgnoresIOChannels: Apply on an I/O-only config is the
// identity (plus clone).
func TestIOApplyIgnoresIOChannels(t *testing.T) {
	cfg, err := ParseSpec("torn=1,pread=1,iolatms=5")
	if err != nil {
		t.Fatal(err)
	}
	tr := buildTrace(2, 10, 1)
	out, rep, err := Apply(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep != (Report{}) {
		t.Fatalf("I/O-only config injected trace faults: %+v", rep)
	}
	if len(out.Units) != len(tr.Units) {
		t.Fatal("trace mutated by I/O-only config")
	}
}
