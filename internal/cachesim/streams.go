package cachesim

import (
	"math/rand/v2"

	"simprof/internal/stats"
)

// Stream generates a memory address stream. Next returns the next byte
// address to access.
type Stream interface {
	Next() uint64
}

// SequentialStream walks a region linearly with a fixed stride,
// wrapping at the end — the pattern of a scan over an input split.
type SequentialStream struct {
	Base   uint64
	Size   uint64 // region size in bytes
	Stride uint64 // bytes per access (e.g. 8 for a word scan)
	pos    uint64
}

// Next returns the next sequential address.
func (s *SequentialStream) Next() uint64 {
	a := s.Base + s.pos
	s.pos += s.Stride
	if s.pos >= s.Size {
		s.pos = 0
	}
	return a
}

// RandomStream accesses uniformly random addresses within a working set —
// the pattern of hash-map probes in a reduce operation.
type RandomStream struct {
	Base uint64
	Size uint64
	rng  *rand.Rand
}

// NewRandomStream builds a random stream over [base, base+size).
func NewRandomStream(base, size uint64, seed uint64) *RandomStream {
	return &RandomStream{Base: base, Size: size, rng: stats.NewRNG(seed)}
}

// Next returns a uniformly random address in the working set.
func (s *RandomStream) Next() uint64 {
	return s.Base + uint64(s.rng.Int64N(int64(s.Size)))
}

// StridedStream accesses with a large fixed stride (column walks,
// pointer-chasing with regular layout).
type StridedStream struct {
	Base   uint64
	Size   uint64
	Stride uint64
	pos    uint64
}

// Next returns the next strided address.
func (s *StridedStream) Next() uint64 {
	a := s.Base + s.pos
	s.pos += s.Stride
	if s.pos >= s.Size {
		s.pos = (s.pos + 64) % s.Stride // shift phase each sweep
	}
	return a
}

// SawtoothStream models quicksort-like recursion. Quicksort touches all N
// elements once per recursion level, so execution time divides evenly
// across levels while the partition (working-set) size halves each level:
// the stream spends Size/Stride accesses per level, sweeping a region of
// Size>>level bytes repeatedly, then descends; below MinSize it restarts.
// The effective working set therefore oscillates between cache-resident
// and thrashing — the high intra-phase CPI variance the paper attributes
// to sorting (§III-B.1 "data access pattern").
type SawtoothStream struct {
	Base    uint64
	Size    uint64 // level-0 partition size (whole array)
	MinSize uint64 // smallest partition before restarting
	Stride  uint64
	level   uint64
	pos     uint64
	spent   uint64 // bytes swept at the current level
}

// Next returns the next address of the sawtooth sweep.
func (s *SawtoothStream) Next() uint64 {
	cur := s.Size >> s.level
	if cur < s.MinSize {
		s.level, s.pos, s.spent = 0, 0, 0
		cur = s.Size
	}
	a := s.Base + s.pos
	s.pos += s.Stride
	if s.pos >= cur {
		s.pos = 0
	}
	s.spent += s.Stride
	if s.spent >= s.Size {
		s.level++
		s.pos, s.spent = 0, 0
	}
	return a
}

// Drive pushes n accesses from the stream through the hierarchy and
// returns per-level miss counts (index i = level i misses; the last
// entry counts accesses that reached memory).
func Drive(h *Hierarchy, s Stream, n int) []uint64 {
	out := make([]uint64, len(h.Levels)+1)
	for i := 0; i < n; i++ {
		lvl := h.Access(s.Next())
		for l := 1; l <= lvl; l++ {
			out[l-1]++
		}
		if lvl == len(h.Levels) {
			out[len(h.Levels)]++
		}
	}
	return out
}
