package cachesim

import "testing"

// BenchmarkExactCacheAccess measures the per-access cost of the exact
// set-associative simulator — the reason internal/cpu uses an analytic
// model for whole-workload runs (ablation: exact simulation of a single
// 10M-instruction sampling unit at 0.3 refs/instr costs ~3M accesses).
func BenchmarkExactCacheAccess(b *testing.B) {
	c := New(Config{SizeBytes: 1 << 20, LineBytes: 64, Ways: 16})
	s := NewRandomStream(0, 8<<20, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(s.Next())
	}
}

func BenchmarkHierarchyAccess(b *testing.B) {
	h := NewHierarchy(
		Config{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8},
		Config{SizeBytes: 256 << 10, LineBytes: 64, Ways: 8},
		Config{SizeBytes: 8 << 20, LineBytes: 64, Ways: 16},
	)
	s := NewRandomStream(0, 32<<20, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(s.Next())
	}
}

func BenchmarkSequentialStream(b *testing.B) {
	s := &SequentialStream{Size: 1 << 24, Stride: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Next()
	}
}
