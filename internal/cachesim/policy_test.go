package cachesim

import (
	"testing"
	"testing/quick"
)

// mixedWorkload interleaves a small hot set (reused constantly) with a
// huge streaming scan — the access mix that distinguishes replacement
// policies.
func mixedWorkload(c *Cache, accesses int, seed uint64) (hotHits, hotRefs int) {
	hot := NewRandomStream(0, 128<<10, seed)                             // 128KB hot set
	scan := &SequentialStream{Base: 1 << 30, Size: 64 << 20, Stride: 64} // 64MB scan
	for i := 0; i < accesses; i++ {
		if i%4 == 0 {
			hotRefs++
			if c.Access(hot.Next()) {
				hotHits++
			}
		} else {
			c.Access(scan.Next())
		}
	}
	return
}

func TestPolicyString(t *testing.T) {
	for p, want := range map[Policy]string{LRU: "lru", FIFO: "fifo", RandomRepl: "random", SRRIP: "srrip"} {
		if p.String() != want {
			t.Errorf("%d.String()=%q", p, p.String())
		}
	}
	if Policy(99).String() == "" {
		t.Error("unknown policy should render something")
	}
}

func TestAllPoliciesBasicallyWork(t *testing.T) {
	for _, p := range []Policy{LRU, FIFO, RandomRepl, SRRIP} {
		c := New(Config{SizeBytes: 256 << 10, LineBytes: 64, Ways: 8, Policy: p})
		if c.Access(0x1000) {
			t.Fatalf("%v: cold hit", p)
		}
		if !c.Access(0x1000) {
			t.Fatalf("%v: warm miss", p)
		}
		// Resident working set eventually all hits.
		s := &SequentialStream{Size: 64 << 10, Stride: 64}
		for i := 0; i < 4096; i++ {
			c.Access(s.Next())
		}
		before := c.Stats().Misses
		for i := 0; i < 2048; i++ {
			c.Access(s.Next())
		}
		if c.Stats().Misses != before {
			t.Fatalf("%v: resident working set still missing", p)
		}
	}
}

// TestScanResistance is the design-decision check behind
// cpu.LLCFootprint: under a streaming scan, SRRIP protects the hot
// working set far better than LRU, which is why the analytic contention
// model lets scans demand only a residual LLC share.
func TestScanResistance(t *testing.T) {
	rate := func(p Policy) float64 {
		c := New(Config{SizeBytes: 256 << 10, LineBytes: 64, Ways: 16, Policy: p})
		// Warm the hot set first.
		hot := NewRandomStream(0, 128<<10, 7)
		for i := 0; i < 20000; i++ {
			c.Access(hot.Next())
		}
		hits, refs := mixedWorkload(c, 200000, 7)
		return float64(hits) / float64(refs)
	}
	lru, srrip := rate(LRU), rate(SRRIP)
	if srrip <= lru+0.05 {
		t.Fatalf("SRRIP hot-set hit rate %.3f not clearly above LRU %.3f under scan", srrip, lru)
	}
	if srrip < 0.9 {
		t.Fatalf("SRRIP should keep the hot set nearly resident, got %.3f", srrip)
	}
}

func TestFIFODiffersFromLRUOnPromotion(t *testing.T) {
	// Pattern: fill a set, keep re-touching the first line, then insert
	// a new line. LRU protects the re-touched line; FIFO evicts it
	// (it was inserted first).
	mk := func(p Policy) *Cache {
		return New(Config{SizeBytes: 256, LineBytes: 64, Ways: 2, Policy: p}) // 2 sets × 2 ways
	}
	// Set 0 receives lines at addresses 0, 128, 256 (stride sets×line=128).
	lru, fifo := mk(LRU), mk(FIFO)
	for _, c := range []*Cache{lru, fifo} {
		c.Access(0)
		c.Access(128)
		c.Access(0) // touch line 0 again
		c.Access(256)
	}
	if !lru.Access(0) {
		t.Fatal("LRU evicted the most-recently-used line")
	}
	if fifo.Access(0) {
		t.Fatal("FIFO kept the oldest-inserted line")
	}
}

func TestRandomReplIsDeterministicPerCache(t *testing.T) {
	run := func() uint64 {
		c := New(Config{SizeBytes: 4 << 10, LineBytes: 64, Ways: 4, Policy: RandomRepl})
		s := &SequentialStream{Size: 64 << 10, Stride: 64}
		for i := 0; i < 10000; i++ {
			c.Access(s.Next())
		}
		return c.Stats().Misses
	}
	if run() != run() {
		t.Fatal("random replacement not reproducible")
	}
}

func TestPoliciesPropertyBounded(t *testing.T) {
	f := func(seed uint64, polRaw uint8) bool {
		p := Policy(polRaw % 4)
		c := New(Config{SizeBytes: 8 << 10, LineBytes: 64, Ways: 4, Policy: p})
		s := NewRandomStream(0, 64<<10, seed)
		for i := 0; i < 3000; i++ {
			c.Access(s.Next())
		}
		st := c.Stats()
		return st.Accesses == 3000 && st.Misses <= st.Accesses && st.Misses > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// BenchmarkPolicies compares the policies' throughput and (via the
// reported hit-rate metric) their scan resistance.
func BenchmarkPolicies(b *testing.B) {
	for _, p := range []Policy{LRU, FIFO, RandomRepl, SRRIP} {
		b.Run(p.String(), func(b *testing.B) {
			c := New(Config{SizeBytes: 512 << 10, LineBytes: 64, Ways: 16, Policy: p})
			hits, refs := 0, 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				h, r := mixedWorkload(c, 1000, uint64(i))
				hits += h
				refs += r
			}
			b.ReportMetric(float64(hits)/float64(refs), "hot-hit-rate")
		})
	}
}
