package cachesim

import "fmt"

// Policy selects the replacement policy of a cache level. The analytic
// model in internal/cpu assumes modern LLCs are scan-resistant (a
// streaming sweep neither keeps nor meaningfully steals capacity); the
// SRRIP policy here demonstrates that behaviour against plain LRU — see
// TestScanResistance and BenchmarkPolicies.
type Policy uint8

// Replacement policies.
const (
	LRU Policy = iota
	FIFO
	RandomRepl
	SRRIP // 2-bit static re-reference interval prediction (Jaleel et al.)
)

var policyNames = [...]string{"lru", "fifo", "random", "srrip"}

// String returns the lower-case policy name.
func (p Policy) String() string {
	if int(p) < len(policyNames) {
		return policyNames[p]
	}
	return fmt.Sprintf("policy(%d)", uint8(p))
}

// srripMax is the 2-bit RRPV ceiling.
const srripMax = 3

// victimFor picks the way to evict within a set according to the
// configured policy; it also performs SRRIP's aging when needed.
func (c *Cache) victimFor(base int) int {
	switch c.cfg.Policy {
	case FIFO:
		victim, best := base, c.insert[base]
		for w := 1; w < c.cfg.Ways; w++ {
			if c.insert[base+w] < best {
				victim, best = base+w, c.insert[base+w]
			}
		}
		return victim
	case RandomRepl:
		c.rngState = c.rngState*6364136223846793005 + 1442695040888963407
		return base + int((c.rngState>>33)%uint64(c.cfg.Ways))
	case SRRIP:
		for {
			for w := 0; w < c.cfg.Ways; w++ {
				if c.rrpv[base+w] >= srripMax {
					return base + w
				}
			}
			for w := 0; w < c.cfg.Ways; w++ {
				c.rrpv[base+w]++
			}
		}
	default: // LRU
		victim, best := base, c.age[base]
		for w := 1; w < c.cfg.Ways; w++ {
			if c.age[base+w] < best {
				victim, best = base+w, c.age[base+w]
			}
		}
		return victim
	}
}

// touch updates per-line metadata on a hit.
func (c *Cache) touch(i int) {
	switch c.cfg.Policy {
	case SRRIP:
		c.rrpv[i] = 0
	case FIFO, RandomRepl:
		// no-op: neither promotes on hit
	default:
		c.age[i] = c.clock
	}
}

// install updates per-line metadata on a fill.
func (c *Cache) install(i int) {
	c.insert[i] = c.clock
	c.age[i] = c.clock
	if c.cfg.Policy == SRRIP {
		// Distant re-reference prediction on insertion (the BRRIP-
		// style scan-resistant variant): a line earns protection only
		// by being re-referenced, so streaming fills evict each other
		// instead of aging out the resident working set.
		c.rrpv[i] = srripMax
	}
}
