// Package cachesim implements a faithful set-associative LRU cache
// simulator and a small library of memory access-stream generators. It
// plays two roles in the SimProf reproduction:
//
//  1. it is the ground truth against which internal/cpu's fast analytic
//     miss-rate model is calibrated and tested, and
//  2. it backs the ablation benchmarks that quantify what the analytic
//     shortcut costs in fidelity.
package cachesim

import "fmt"

// Config describes one cache level.
type Config struct {
	SizeBytes int    // total capacity
	LineBytes int    // cache line size (power of two)
	Ways      int    // associativity
	Policy    Policy // replacement policy (default LRU)
}

// Validate checks structural invariants of the configuration.
func (c Config) Validate() error {
	if c.SizeBytes <= 0 || c.LineBytes <= 0 || c.Ways <= 0 {
		return fmt.Errorf("cachesim: non-positive geometry %+v", c)
	}
	if c.LineBytes&(c.LineBytes-1) != 0 {
		return fmt.Errorf("cachesim: line size %d not a power of two", c.LineBytes)
	}
	lines := c.SizeBytes / c.LineBytes
	if lines*c.LineBytes != c.SizeBytes {
		return fmt.Errorf("cachesim: size %d not a multiple of line %d", c.SizeBytes, c.LineBytes)
	}
	if lines%c.Ways != 0 {
		return fmt.Errorf("cachesim: %d lines not divisible by %d ways", lines, c.Ways)
	}
	return nil
}

// Sets returns the number of sets implied by the configuration.
func (c Config) Sets() int { return c.SizeBytes / c.LineBytes / c.Ways }

// Stats accumulates access outcomes.
type Stats struct {
	Accesses uint64
	Misses   uint64
}

// MissRate returns Misses/Accesses (0 for no accesses).
func (s Stats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a single set-associative cache level with a configurable
// replacement policy.
type Cache struct {
	cfg      Config
	sets     int
	setShift uint
	setMask  uint64
	tags     []uint64 // sets × ways
	valid    []bool
	age      []uint64 // LRU stamps
	insert   []uint64 // FIFO insertion stamps
	rrpv     []uint8  // SRRIP re-reference predictions
	rngState uint64   // RandomRepl state
	clock    uint64
	stats    Stats
}

// New builds a cache; it panics on an invalid configuration (a
// programming error in the caller).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	sets := cfg.Sets()
	shift := uint(0)
	for 1<<shift < cfg.LineBytes {
		shift++
	}
	c := &Cache{
		cfg:      cfg,
		sets:     sets,
		setShift: shift,
		setMask:  uint64(sets - 1),
		tags:     make([]uint64, sets*cfg.Ways),
		valid:    make([]bool, sets*cfg.Ways),
		age:      make([]uint64, sets*cfg.Ways),
		insert:   make([]uint64, sets*cfg.Ways),
		rrpv:     make([]uint8, sets*cfg.Ways),
		rngState: 0x853c49e6748fea9b,
	}
	if sets&(sets-1) != 0 {
		// Non-power-of-two set counts use modulo indexing instead of the
		// mask; flag with setMask = 0.
		c.setMask = 0
	}
	return c
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// Stats returns the access statistics so far.
func (c *Cache) Stats() Stats { return c.stats }

// Reset clears contents and statistics (a cold cache).
func (c *Cache) Reset() {
	for i := range c.valid {
		c.valid[i] = false
		c.age[i] = 0
		c.insert[i] = 0
		c.rrpv[i] = 0
		c.tags[i] = 0
	}
	c.clock = 0
	c.stats = Stats{}
}

// Access touches the byte address addr and reports whether it hit.
func (c *Cache) Access(addr uint64) bool {
	c.stats.Accesses++
	c.clock++
	line := addr >> c.setShift
	var set uint64
	if c.setMask != 0 {
		set = line & c.setMask
	} else {
		set = line % uint64(c.sets)
	}
	tag := line
	base := int(set) * c.cfg.Ways
	victim := -1
	for w := 0; w < c.cfg.Ways; w++ {
		i := base + w
		if c.valid[i] && c.tags[i] == tag {
			c.touch(i)
			return true
		}
		if !c.valid[i] && victim < 0 {
			victim = i
		}
	}
	c.stats.Misses++
	if victim < 0 {
		victim = c.victimFor(base)
	}
	c.valid[victim] = true
	c.tags[victim] = tag
	c.install(victim)
	return false
}

// Hierarchy chains cache levels: an access that misses level i is
// forwarded to level i+1.
type Hierarchy struct {
	Levels []*Cache
}

// NewHierarchy builds a hierarchy from level configs (L1 first).
func NewHierarchy(cfgs ...Config) *Hierarchy {
	h := &Hierarchy{}
	for _, cfg := range cfgs {
		h.Levels = append(h.Levels, New(cfg))
	}
	return h
}

// Access walks the hierarchy and returns the deepest level that was
// accessed (0-based); len(Levels) means the access missed everywhere
// (went to memory).
func (h *Hierarchy) Access(addr uint64) int {
	for i, c := range h.Levels {
		if c.Access(addr) {
			return i
		}
	}
	return len(h.Levels)
}

// Reset cold-starts every level.
func (h *Hierarchy) Reset() {
	for _, c := range h.Levels {
		c.Reset()
	}
}
