package cachesim

import (
	"testing"
	"testing/quick"
)

func l1() Config  { return Config{SizeBytes: 32 << 10, LineBytes: 64, Ways: 8} }
func llc() Config { return Config{SizeBytes: 1 << 20, LineBytes: 64, Ways: 16} }

func TestConfigValidate(t *testing.T) {
	if err := l1().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{SizeBytes: 0, LineBytes: 64, Ways: 8},
		{SizeBytes: 1024, LineBytes: 48, Ways: 2},   // non-pow2 line
		{SizeBytes: 1000, LineBytes: 64, Ways: 2},   // size not multiple of line
		{SizeBytes: 64 * 9, LineBytes: 64, Ways: 2}, // lines not divisible by ways
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated: %+v", i, c)
		}
	}
	if got := l1().Sets(); got != 64 {
		t.Fatalf("Sets=%d want 64", got)
	}
}

func TestColdMissesThenHits(t *testing.T) {
	c := New(l1())
	if c.Access(0x1000) {
		t.Fatal("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Fatal("second access missed")
	}
	if !c.Access(0x1000 + 63) {
		t.Fatal("same-line access missed")
	}
	if c.Access(0x1000 + 64) {
		t.Fatal("next line hit while cold")
	}
	st := c.Stats()
	if st.Accesses != 4 || st.Misses != 2 {
		t.Fatalf("stats=%+v", st)
	}
}

func TestLRUEviction(t *testing.T) {
	// Direct-mapped-ish: 2 ways, 2 sets, 64B lines → 256B cache.
	c := New(Config{SizeBytes: 256, LineBytes: 64, Ways: 2})
	// Three lines mapping to set 0: addresses 0, 128, 256 (stride = sets*line = 128).
	c.Access(0)
	c.Access(128)
	c.Access(0) // refresh 0 → LRU is 128
	c.Access(256)
	if !c.Access(0) {
		t.Fatal("line 0 should have survived (was MRU)")
	}
	if c.Access(128) {
		t.Fatal("line 128 should have been evicted (was LRU)")
	}
}

func TestWorkingSetFitsMeansNoCapacityMisses(t *testing.T) {
	c := New(l1())
	s := &SequentialStream{Size: 16 << 10, Stride: 64}
	// First sweep: compulsory misses only; later sweeps: all hits.
	for i := 0; i < 256; i++ {
		c.Access(s.Next())
	}
	before := c.Stats().Misses
	for sweep := 0; sweep < 4; sweep++ {
		for i := 0; i < 256; i++ {
			c.Access(s.Next())
		}
	}
	if c.Stats().Misses != before {
		t.Fatalf("resident working set still missing: %d → %d", before, c.Stats().Misses)
	}
}

func TestWorkingSetExceedsCapacityThrashes(t *testing.T) {
	c := New(l1())
	// 64KB working set in a 32KB cache with a sequential sweep → LRU
	// pathological: ~100% miss rate after warmup.
	s := &SequentialStream{Size: 64 << 10, Stride: 64}
	for i := 0; i < 1024; i++ {
		c.Access(s.Next()) // warm
	}
	warm := c.Stats()
	for i := 0; i < 4096; i++ {
		c.Access(s.Next())
	}
	st := c.Stats()
	missRate := float64(st.Misses-warm.Misses) / float64(st.Accesses-warm.Accesses)
	if missRate < 0.95 {
		t.Fatalf("cyclic over-capacity sweep miss rate=%v want ≈1", missRate)
	}
}

func TestRandomStreamMissRateTracksWorkingSet(t *testing.T) {
	small := New(llc())
	big := New(llc())
	// Working set half the LLC → low miss rate; 8× LLC → high.
	Drive(&Hierarchy{Levels: []*Cache{small}}, NewRandomStream(0, 512<<10, 1), 200000)
	Drive(&Hierarchy{Levels: []*Cache{big}}, NewRandomStream(0, 8<<20, 2), 200000)
	if small.Stats().MissRate() > 0.15 {
		t.Fatalf("fits-in-cache random miss rate=%v", small.Stats().MissRate())
	}
	if big.Stats().MissRate() < 0.75 {
		t.Fatalf("8x-capacity random miss rate=%v", big.Stats().MissRate())
	}
}

func TestHierarchyForwarding(t *testing.T) {
	h := NewHierarchy(l1(), llc())
	lvl := h.Access(0x40000)
	if lvl != 2 {
		t.Fatalf("cold access depth=%d want 2 (memory)", lvl)
	}
	if got := h.Access(0x40000); got != 0 {
		t.Fatalf("warm access depth=%d want 0 (L1 hit)", got)
	}
	h.Reset()
	if got := h.Access(0x40000); got != 2 {
		t.Fatalf("after reset depth=%d want 2", got)
	}
}

func TestDriveCounts(t *testing.T) {
	h := NewHierarchy(l1(), llc())
	s := &SequentialStream{Size: 4 << 10, Stride: 64}
	out := Drive(h, s, 1000)
	if len(out) != 3 {
		t.Fatalf("Drive output len=%d", len(out))
	}
	// 64 lines compulsory-missed in both levels, everything else L1 hits.
	if out[0] != 64 || out[1] != 64 || out[2] != 64 {
		t.Fatalf("Drive counts=%v want [64 64 64]", out)
	}
}

func TestSawtoothOscillates(t *testing.T) {
	s := &SawtoothStream{Size: 1 << 20, MinSize: 4 << 10, Stride: 64}
	c := New(l1())
	// The stream revisits small partitions (cache-resident → hits) and
	// large ones (thrash → misses); both regimes must appear.
	windowMisses := make([]float64, 0, 64)
	for w := 0; w < 64; w++ {
		before := c.Stats()
		for i := 0; i < 4096; i++ {
			c.Access(s.Next())
		}
		after := c.Stats()
		windowMisses = append(windowMisses,
			float64(after.Misses-before.Misses)/float64(after.Accesses-before.Accesses))
	}
	lo, hi := 1.0, 0.0
	for _, m := range windowMisses {
		if m < lo {
			lo = m
		}
		if m > hi {
			hi = m
		}
	}
	if hi-lo < 0.3 {
		t.Fatalf("sawtooth miss rate range [%v,%v] too narrow", lo, hi)
	}
}

func TestStridedStream(t *testing.T) {
	s := &StridedStream{Size: 1 << 16, Stride: 4096}
	seen := map[uint64]bool{}
	for i := 0; i < 16; i++ {
		seen[s.Next()] = true
	}
	if len(seen) != 16 {
		t.Fatalf("strided stream repeated addresses early: %d unique", len(seen))
	}
}

func TestCacheNeverNegativeAndBounded(t *testing.T) {
	f := func(seed uint64) bool {
		c := New(Config{SizeBytes: 4096, LineBytes: 64, Ways: 4})
		s := NewRandomStream(0, 1<<16, seed)
		for i := 0; i < 2000; i++ {
			c.Access(s.Next())
		}
		st := c.Stats()
		return st.Misses <= st.Accesses && st.Accesses == 2000
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNewPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New with bad config should panic")
		}
	}()
	New(Config{SizeBytes: -1, LineBytes: 64, Ways: 1})
}
