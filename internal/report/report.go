// Package report renders experiment results as aligned text tables and
// ASCII bar charts, the output format of cmd/expreport and the
// benchmark harness.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	Title  string
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// Row appends a row; values are formatted with %v.
func (t *Table) Row(cells ...any) *Table {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
	return t
}

// RowS appends a pre-formatted row.
func (t *Table) RowS(cells ...string) *Table {
	t.rows = append(t.rows, cells)
	return t
}

// Render writes the table.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "## %s\n\n", t.Title)
	}
	line := func(cells []string) {
		parts := make([]string, len(t.header))
		for i := range t.header {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.header)
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Bar renders value as a horizontal bar of at most width cells, scaled
// by max.
func Bar(value, max float64, width int) string {
	if max <= 0 || value < 0 {
		return ""
	}
	n := int(value / max * float64(width))
	if n > width {
		n = width
	}
	if n == 0 && value > 0 {
		n = 1
	}
	return strings.Repeat("█", n)
}

// BarChart renders labeled values as a bar chart.
func BarChart(w io.Writer, title string, labels []string, values []float64, format string) {
	if title != "" {
		fmt.Fprintf(w, "## %s\n\n", title)
	}
	max := 0.0
	wl := 0
	for i, v := range values {
		if v > max {
			max = v
		}
		if len(labels[i]) > wl {
			wl = len(labels[i])
		}
	}
	for i, v := range values {
		fmt.Fprintf(w, "%s  %s "+format+"\n", pad(labels[i], wl), pad(Bar(v, max, 40), 40), v)
	}
	fmt.Fprintln(w)
}
