package report

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// checkGolden compares got against testdata/<name>.golden, rewriting
// the file under -update.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run 'go test ./internal/report -update' to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s (re-run with -update after intentional changes)\n--- got ---\n%s\n--- want ---\n%s",
			path, got, want)
	}
}

// TestPhaseTableGolden locks in the exact rendering of the phase table
// that 'simprof phases' prints: column order, alignment, separator and
// trailing-whitespace rules.
func TestPhaseTableGolden(t *testing.T) {
	var buf bytes.Buffer
	tb := NewTable("", "Phase", "Units", "Weight", "Mean CPI", "CPI CoV", "LLC MPKI", "Type", "Dominant method")
	rows := []struct {
		units  int
		weight float64
		cpi    float64
		cov    float64
		mpki   float64
		kind   string
		method string
	}{
		{212, 0.930, 1.66, 0.173, 1.52, "map", "WordCount$Map.map"},
		{16, 0.070, 2.37, 0.134, 4.80, "sort", "TimSort.sort"},
		{3, 0.000, 0.98, 0.012, 0.11, "io", "DiskStore.write"},
	}
	for h, r := range rows {
		tb.RowS(fmt.Sprint(h), fmt.Sprint(r.units), fmt.Sprintf("%.1f%%", 100*r.weight),
			fmt.Sprintf("%.2f", r.cpi), fmt.Sprintf("%.3f", r.cov),
			fmt.Sprintf("%.2f", r.mpki), r.kind, r.method)
	}
	tb.Render(&buf)
	checkGolden(t, "phase_table", buf.Bytes())
}

// TestCompareTableGolden locks in the rendering of the four-approach
// comparison table that 'simprof compare' prints.
func TestCompareTableGolden(t *testing.T) {
	var buf bytes.Buffer
	tb := NewTable("wc_sp — CPI estimates (oracle 1.7905)",
		"Approach", "Points", "Est CPI", "Error")
	for _, r := range []struct {
		method string
		points int
		est    float64
		err    float64
	}{
		{"SECOND", 193, 1.7403, 0.0281},
		{"SRS", 20, 1.7146, 0.0424},
		{"CODE", 2, 1.5621, 0.1276},
		{"SimProf", 20, 1.7078, 0.0462},
	} {
		tb.RowS(r.method, fmt.Sprint(r.points), fmt.Sprintf("%.4f", r.est),
			fmt.Sprintf("%.2f%%", 100*r.err))
	}
	tb.Render(&buf)
	checkGolden(t, "compare_table", buf.Bytes())
}

// TestBarChartGolden locks in the bar-chart rendering used by the
// Fig. 9 phase-count chart.
func TestBarChartGolden(t *testing.T) {
	var buf bytes.Buffer
	BarChart(&buf, "Fig. 9 — number of phases",
		[]string{"wc_sp", "sort_hp", "cc_sp"}, []float64{4, 7, 2}, "%.0f")
	checkGolden(t, "bar_chart", buf.Bytes())
}
