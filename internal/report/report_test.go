package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	var buf bytes.Buffer
	tb := NewTable("My Table", "Name", "Value")
	tb.Row("alpha", 1.5)
	tb.Row("a-much-longer-name", 22)
	tb.RowS("pre", "formatted")
	tb.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "## My Table") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.500") {
		t.Fatalf("row content missing:\n%s", out)
	}
	lines := strings.Split(out, "\n")
	// Header and separator align to the widest cell.
	var headerLine, sepLine string
	for i, l := range lines {
		if strings.HasPrefix(l, "Name") {
			headerLine, sepLine = l, lines[i+1]
			break
		}
	}
	if headerLine == "" || !strings.HasPrefix(sepLine, "----") {
		t.Fatalf("header/separator not rendered:\n%s", out)
	}
	if !strings.Contains(headerLine, "Value") {
		t.Fatal("second column missing")
	}
}

func TestTableNoTitle(t *testing.T) {
	var buf bytes.Buffer
	NewTable("", "A").Row("x").Render(&buf)
	if strings.Contains(buf.String(), "##") {
		t.Fatal("empty title should not render a heading")
	}
}

func TestBar(t *testing.T) {
	if Bar(5, 10, 10) != strings.Repeat("█", 5) {
		t.Fatalf("Bar=%q", Bar(5, 10, 10))
	}
	if Bar(0.01, 10, 10) == "" {
		t.Fatal("tiny positive value should render one cell")
	}
	if Bar(20, 10, 10) != strings.Repeat("█", 10) {
		t.Fatal("bar should clamp at width")
	}
	if Bar(1, 0, 10) != "" || Bar(-1, 10, 10) != "" {
		t.Fatal("degenerate bars should be empty")
	}
}

func TestBarChart(t *testing.T) {
	var buf bytes.Buffer
	BarChart(&buf, "Phases", []string{"a", "bb"}, []float64{1, 4}, "%.0f")
	out := buf.String()
	if !strings.Contains(out, "## Phases") || !strings.Contains(out, "bb") {
		t.Fatalf("chart missing parts:\n%s", out)
	}
	if strings.Count(strings.Split(out, "\n")[2], "█") >= strings.Count(strings.Split(out, "\n")[3], "█") {
		t.Fatalf("bars not proportional:\n%s", out)
	}
}
