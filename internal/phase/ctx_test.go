package phase

import (
	"context"
	"errors"
	"testing"
)

// TestFormCtxCanceled: a dead context aborts formation with the context
// error instead of a partial result.
func TestFormCtxCanceled(t *testing.T) {
	tr := synthTrace(50, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ph, err := FormCtx(ctx, tr, Options{Seed: 3})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ph != nil {
		t.Fatal("canceled formation returned a partial Phases")
	}
}

// TestFormCtxMatchesForm: a live context changes nothing — the formed
// phases are identical to the context-free path.
func TestFormCtxMatchesForm(t *testing.T) {
	tr := synthTrace(50, 1)
	want, err := Form(synthTrace(50, 1), Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	got, err := FormCtx(context.Background(), tr, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got.K != want.K || got.Silhouette != want.Silhouette {
		t.Fatalf("FormCtx (K=%d, sil=%v) differs from Form (K=%d, sil=%v)",
			got.K, got.Silhouette, want.K, want.Silhouette)
	}
	for i := range want.Assign {
		if got.Assign[i] != want.Assign[i] {
			t.Fatalf("assignment %d differs: %d vs %d", i, got.Assign[i], want.Assign[i])
		}
	}
}
