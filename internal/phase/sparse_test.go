package phase

import (
	"reflect"
	"testing"

	"simprof/internal/matrix"
	"simprof/internal/parallel"
	"simprof/internal/trace"
)

// TestVectorizeSparseMatchesDense pins the CSR vectorization against the
// dense one cell for cell: same counts, everything else exactly zero.
func TestVectorizeSparseMatchesDense(t *testing.T) {
	tr := synthTrace(40, 3)
	fs := fullSpace(tr)
	dense := fs.vectorizeWith(parallel.New(1), tr)
	sp := fs.VectorizeSparse(tr)
	if sp.Rows() != len(dense) || sp.Cols() != fs.Dim() {
		t.Fatalf("dims %dx%d, want %dx%d", sp.Rows(), sp.Cols(), len(dense), fs.Dim())
	}
	back := matrix.DenseFromSparse(sp)
	for i, row := range dense {
		if !reflect.DeepEqual(back.Row(i), row) {
			t.Fatalf("unit %d: sparse %v dense %v", i, back.Row(i), row)
		}
	}
	if sp.NNZ() >= sp.Rows()*sp.Cols() {
		t.Fatalf("vectorization is not sparse: nnz=%d of %d cells",
			sp.NNZ(), sp.Rows()*sp.Cols())
	}
}

// TestVectorizeSparseSubsetSpace exercises a feature space that omits
// some of the trace's methods (the sensitivity path vectorizes reference
// traces in the training space).
func TestVectorizeSparseSubsetSpace(t *testing.T) {
	tr := synthTrace(10, 5)
	full := fullSpace(tr)
	sub := &FeatureSpace{
		Methods: full.Methods[:1],
		Kinds:   full.Kinds[:1],
	}
	dense := sub.vectorizeWith(parallel.New(1), tr)
	back := matrix.DenseFromSparse(sub.VectorizeSparse(tr))
	for i, row := range dense {
		if !reflect.DeepEqual(back.Row(i), row) {
			t.Fatalf("unit %d: %v vs %v", i, back.Row(i), row)
		}
	}
}

// TestPhaseIndexAccessors pins the cached per-phase index lists against
// the legacy full-assignment scans, both on a formed Phases (cache
// present) and on a hand-assembled one (cache absent), including after
// a post-formation quality change.
func TestPhaseIndexAccessors(t *testing.T) {
	tr := synthTrace(30, 9)
	p, err := Form(tr, Options{Seed: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Degrade a few units after formation: measured status must follow.
	for i := 0; i < len(tr.Units); i += 7 {
		tr.Units[i].Quality |= trace.CountersMissing
	}
	bare := &Phases{Trace: p.Trace, K: p.K, Assign: p.Assign, Degraded: p.Degraded}
	for h := -1; h <= p.K; h++ {
		if got, want := p.PhaseUnits(h), bare.PhaseUnits(h); !reflect.DeepEqual(got, want) {
			t.Fatalf("PhaseUnits(%d): %v vs %v", h, got, want)
		}
		if got, want := p.MeasuredPhaseUnits(h), bare.MeasuredPhaseUnits(h); !reflect.DeepEqual(got, want) {
			t.Fatalf("MeasuredPhaseUnits(%d): %v vs %v", h, got, want)
		}
		if got, want := p.PhaseCPIs(h), bare.PhaseCPIs(h); !reflect.DeepEqual(got, want) {
			t.Fatalf("PhaseCPIs(%d): %v vs %v", h, got, want)
		}
	}
	if got, want := p.Sizes(), bare.Sizes(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Sizes: %v vs %v", got, want)
	}
	if got, want := p.MeasuredSizes(), bare.MeasuredSizes(); !reflect.DeepEqual(got, want) {
		t.Fatalf("MeasuredSizes: %v vs %v", got, want)
	}
	// The cached lists must be insulated from caller mutation.
	u := p.PhaseUnits(0)
	if len(u) > 0 {
		u[0] = -999
		if p.PhaseUnits(0)[0] == -999 {
			t.Fatal("PhaseUnits exposed the internal cache")
		}
	}
}
