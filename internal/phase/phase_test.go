package phase

import (
	"testing"

	"simprof/internal/model"
	"simprof/internal/stats"
	"simprof/internal/trace"
)

// synthTrace builds a trace with nPerPhase units for each behaviour:
// phase a (method "A.map", CPI≈1), phase b (method "B.sort", CPI≈3).
// Units carry 10 snapshots each.
func synthTrace(nPerPhase int, seed uint64) *trace.Trace {
	tbl := model.NewTable()
	root := tbl.Intern("java.lang.Thread", "run", model.KindFramework)
	a := tbl.Intern("A", "map", model.KindMap)
	b := tbl.Intern("B", "sort", model.KindSort)
	rng := stats.NewRNG(seed)
	tr := &trace.Trace{
		Benchmark: "synth", Framework: "spark", UnitInstr: 100, SnapshotEvery: 10,
		Methods: tbl.Methods(),
	}
	add := func(m model.MethodID, cpi float64) {
		u := trace.Unit{ID: len(tr.Units)}
		for s := 0; s < 10; s++ {
			u.Snapshots = append(u.Snapshots, model.Stack{root, m})
		}
		u.Counters = trace.Counters{Instructions: 1000, Cycles: uint64(1000 * cpi)}
		tr.Units = append(tr.Units, u)
	}
	for i := 0; i < nPerPhase; i++ {
		add(a, 1.0+0.05*rng.Float64())
		add(b, 3.0+0.15*rng.Float64())
	}
	return tr
}

func TestFormRecoversTwoPhases(t *testing.T) {
	tr := synthTrace(50, 1)
	ph, err := Form(tr, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ph.K != 2 {
		t.Fatalf("K=%d want 2 (scores=%v)", ph.K, ph.KScores)
	}
	// Units alternate a,b — assignments must alternate too.
	for i := 2; i < len(ph.Assign); i++ {
		if ph.Assign[i] != ph.Assign[i-2] {
			t.Fatalf("unit %d phase %d != unit %d phase %d", i, ph.Assign[i], i-2, ph.Assign[i-2])
		}
	}
	if ph.Assign[0] == ph.Assign[1] {
		t.Fatal("distinct behaviours clustered together")
	}
	if len(ph.Vectors) != len(tr.Units) {
		t.Fatal("vector count mismatch")
	}
}

func TestFormEmptyTrace(t *testing.T) {
	if _, err := Form(&trace.Trace{}, Options{}); err == nil {
		t.Fatal("empty trace should fail")
	}
}

func TestWeightsAndSizes(t *testing.T) {
	tr := synthTrace(40, 2)
	ph, _ := Form(tr, Options{Seed: 1})
	sizes := ph.Sizes()
	weights := ph.Weights()
	totalW := 0.0
	totalS := 0
	for h := 0; h < ph.K; h++ {
		totalW += weights[h]
		totalS += sizes[h]
	}
	if totalS != len(tr.Units) {
		t.Fatalf("sizes sum %d", totalS)
	}
	if totalW < 0.999 || totalW > 1.001 {
		t.Fatalf("weights sum %v", totalW)
	}
	if len(ph.PhaseUnits(0)) != sizes[0] {
		t.Fatal("PhaseUnits inconsistent with Sizes")
	}
}

func TestCoVWeightedBelowPopulation(t *testing.T) {
	// Two well-separated CPI groups: population CoV high, within-phase
	// CoV low — the Fig. 6 property.
	tr := synthTrace(60, 4)
	ph, _ := Form(tr, Options{Seed: 1})
	rep := ph.CoV()
	if rep.Weighted >= rep.Population {
		t.Fatalf("weighted CoV %v not below population %v", rep.Weighted, rep.Population)
	}
	if rep.Max < rep.Weighted {
		t.Fatalf("max CoV %v below weighted %v", rep.Max, rep.Weighted)
	}
	if rep.Population < 0.3 {
		t.Fatalf("population CoV %v suspiciously low", rep.Population)
	}
	if rep.Weighted > 0.1 {
		t.Fatalf("weighted CoV %v suspiciously high", rep.Weighted)
	}
}

func TestDominantKindAndMethods(t *testing.T) {
	tr := synthTrace(30, 5)
	ph, _ := Form(tr, Options{Seed: 1})
	dist := ph.TypeDistribution()
	if w := dist[model.KindMap] + dist[model.KindSort]; w < 0.99 {
		t.Fatalf("map+sort weight %v want ≈1 (dist=%v)", w, dist)
	}
	// Each phase's dominant method must be A.map or B.sort, matching
	// its kind.
	for h := 0; h < ph.K; h++ {
		top := ph.DominantMethods(h, 1)
		if len(top) != 1 {
			t.Fatalf("phase %d no dominant method", h)
		}
		kind := ph.DominantKind(h)
		switch top[0] {
		case "A.map":
			if kind != model.KindMap {
				t.Fatalf("phase %d kind %v with dominant A.map", h, kind)
			}
		case "B.sort":
			if kind != model.KindSort {
				t.Fatalf("phase %d kind %v with dominant B.sort", h, kind)
			}
		default:
			t.Fatalf("unexpected dominant method %q", top[0])
		}
	}
}

func TestFeatureSelectionDropsConstantFrames(t *testing.T) {
	// The framework root frame appears in every snapshot; its
	// regression score is 0, so with TopK=1 only the discriminating
	// method survives... but TopK=1 keeps a single dim; verify root
	// scores below user methods instead.
	tr := synthTrace(30, 6)
	ph, err := Form(tr, Options{Seed: 1, TopK: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range ph.Space.Methods {
		if m == "java.lang.Thread.run" {
			t.Fatal("constant frame ranked in top-2 features")
		}
	}
}

func TestVectorizeByFQNAcrossTables(t *testing.T) {
	// A reference trace whose table interns methods in reverse order
	// must still vectorize correctly in the training space.
	train := synthTrace(10, 7)
	ph, _ := Form(train, Options{Seed: 1})

	tbl := model.NewTable()
	b := tbl.Intern("B", "sort", model.KindSort) // reversed order vs training
	root := tbl.Intern("java.lang.Thread", "run", model.KindFramework)
	ref := &trace.Trace{Methods: tbl.Methods()}
	u := trace.Unit{ID: 0, Counters: trace.Counters{Instructions: 1000, Cycles: 3000}}
	for s := 0; s < 10; s++ {
		u.Snapshots = append(u.Snapshots, model.Stack{root, b})
	}
	ref.Units = append(ref.Units, u)

	vecs := ph.Space.Vectorize(ref)
	if len(vecs) != 1 {
		t.Fatal("wrong vector count")
	}
	// The B.sort dimension must hold all 10 counts.
	found := false
	for j, name := range ph.Space.Methods {
		if name == "B.sort" {
			if vecs[0][j] != 10 {
				t.Fatalf("B.sort count=%v want 10", vecs[0][j])
			}
			found = true
		} else if name == "A.map" && vecs[0][j] != 0 {
			t.Fatalf("A.map count=%v want 0", vecs[0][j])
		}
	}
	if !found {
		t.Fatal("B.sort not a training feature")
	}
}

func TestSinglePhaseTrace(t *testing.T) {
	// All units identical → one phase (grep_sp behaviour).
	tbl := model.NewTable()
	root := tbl.Intern("T", "run", model.KindFramework)
	m := tbl.Intern("G", "filter", model.KindMap)
	tr := &trace.Trace{Methods: tbl.Methods()}
	for i := 0; i < 50; i++ {
		u := trace.Unit{ID: i, Counters: trace.Counters{Instructions: 1000, Cycles: 1500}}
		for s := 0; s < 10; s++ {
			u.Snapshots = append(u.Snapshots, model.Stack{root, m})
		}
		tr.Units = append(tr.Units, u)
	}
	ph, err := Form(tr, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ph.K != 1 {
		t.Fatalf("identical units K=%d want 1", ph.K)
	}
}

func TestFormSurvivesDegenerateUnits(t *testing.T) {
	// Units with no snapshots vectorize to zero; units with unknown
	// method ids are ignored; the pipeline must not panic and must
	// produce a usable (single-phase) clustering.
	tbl := model.NewTable()
	m := tbl.Intern("A", "op", model.KindMap)
	tr := &trace.Trace{Methods: tbl.Methods()}
	for i := 0; i < 40; i++ {
		u := trace.Unit{ID: i, Counters: trace.Counters{Instructions: 100, Cycles: 150}}
		if i%2 == 0 {
			u.Snapshots = []model.Stack{{m}}
		} // odd units: no snapshots at all
		tr.Units = append(tr.Units, u)
	}
	ph, err := Form(tr, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ph.K < 1 || ph.K > 2 {
		t.Fatalf("K=%d", ph.K)
	}
	if len(ph.Assign) != 40 {
		t.Fatal("assignment truncated")
	}
}

func TestFormConstantIPC(t *testing.T) {
	// All units identical CPI → every regression score is 0 → TopK
	// still returns dims and clustering still works.
	tbl := model.NewTable()
	a := tbl.Intern("A", "x", model.KindMap)
	b := tbl.Intern("B", "y", model.KindSort)
	tr := &trace.Trace{Methods: tbl.Methods()}
	for i := 0; i < 60; i++ {
		u := trace.Unit{ID: i, Counters: trace.Counters{Instructions: 100, Cycles: 200}}
		if i%2 == 0 {
			u.Snapshots = []model.Stack{{a}, {a}}
		} else {
			u.Snapshots = []model.Stack{{b}, {b}}
		}
		tr.Units = append(tr.Units, u)
	}
	ph, err := Form(tr, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Identical performance but distinct code: formation may merge or
	// split; either way the result must be internally consistent.
	if got := len(ph.PhaseUnits(0)); got == 0 {
		t.Fatal("empty phase 0")
	}
	rep := ph.CoV()
	if rep.Population != 0 {
		t.Fatalf("population CoV=%v want 0", rep.Population)
	}
}

func TestDominantMethodsOutOfRange(t *testing.T) {
	tr := synthTrace(10, 9)
	ph, _ := Form(tr, Options{Seed: 1})
	if ph.DominantMethods(-1, 3) != nil || ph.DominantMethods(99, 3) != nil {
		t.Fatal("out-of-range phase should return nil")
	}
}
