package phase

import (
	"reflect"
	"runtime"
	"testing"
)

// TestFormBitForBitAcrossWorkers asserts the end-to-end determinism
// contract of phase formation: the whole pipeline (vectorization,
// feature scoring, the parallel k sweep with parallel restarts and
// silhouette passes) produces bit-for-bit identical phases for every
// worker count.
func TestFormBitForBitAcrossWorkers(t *testing.T) {
	tr := synthTrace(150, 77) // 300 units
	base, err := Form(tr, Options{Seed: 21, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		got, err := Form(tr, Options{Seed: 21, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if got.K != base.K {
			t.Fatalf("workers=%d: K=%d want %d", w, got.K, base.K)
		}
		if !reflect.DeepEqual(got.Assign, base.Assign) {
			t.Fatalf("workers=%d: assignments diverged", w)
		}
		if !reflect.DeepEqual(got.Centers, base.Centers) {
			t.Fatalf("workers=%d: centers diverged", w)
		}
		if got.Silhouette != base.Silhouette {
			t.Fatalf("workers=%d: silhouette %.17g want %.17g", w, got.Silhouette, base.Silhouette)
		}
		if !reflect.DeepEqual(got.KScores, base.KScores) {
			t.Fatalf("workers=%d: k scores diverged\n%v\n%v", w, got.KScores, base.KScores)
		}
		if !reflect.DeepEqual(got.FScores, base.FScores) {
			t.Fatalf("workers=%d: feature scores diverged", w)
		}
		if !reflect.DeepEqual(got.Vectors, base.Vectors) {
			t.Fatalf("workers=%d: unit vectors diverged", w)
		}
		if !reflect.DeepEqual(got.Space, base.Space) {
			t.Fatalf("workers=%d: feature space diverged", w)
		}
	}
}

// TestFormStableUnderGOMAXPROCS repeats the check against the runtime's
// actual parallelism.
func TestFormStableUnderGOMAXPROCS(t *testing.T) {
	tr := synthTrace(120, 99)
	base, err := Form(tr, Options{Seed: 4, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	for _, procs := range []int{1, 2} {
		runtime.GOMAXPROCS(procs)
		got, err := Form(tr, Options{Seed: 4, Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if got.K != base.K || !reflect.DeepEqual(got.Assign, base.Assign) ||
			got.Silhouette != base.Silhouette || !reflect.DeepEqual(got.KScores, base.KScores) {
			t.Fatalf("GOMAXPROCS=%d: formed phases diverged", procs)
		}
	}
}
