package phase

import (
	"testing"

	"simprof/internal/model"
	"simprof/internal/trace"
)

func TestCounterProfile(t *testing.T) {
	tbl := model.NewTable()
	fast := tbl.Intern("A", "map", model.KindMap)
	slow := tbl.Intern("B", "reduce", model.KindReduce)
	tr := &trace.Trace{Methods: tbl.Methods()}
	add := func(m model.MethodID, cyc, llc uint64) {
		u := trace.Unit{ID: len(tr.Units)}
		for s := 0; s < 10; s++ {
			u.Snapshots = append(u.Snapshots, model.Stack{m})
		}
		u.Counters = trace.Counters{Instructions: 1000, Cycles: cyc, L1Misses: llc * 3, L2Misses: llc * 2, LLCMisses: llc}
		tr.Units = append(tr.Units, u)
	}
	for i := 0; i < 30; i++ {
		add(fast, 900, 0)
		add(slow, 2500, 40) // 40 LLC misses per kilo-instruction
	}
	ph, err := Form(tr, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if ph.K != 2 {
		t.Fatalf("K=%d", ph.K)
	}
	prof := ph.CounterProfile()
	// Identify phases by CPI.
	var fastP, slowP CounterStats
	if prof[0].CPI.Mean < prof[1].CPI.Mean {
		fastP, slowP = prof[0], prof[1]
	} else {
		fastP, slowP = prof[1], prof[0]
	}
	if slowP.LLCMPKI != 40 {
		t.Fatalf("slow phase LLC MPKI=%v want 40", slowP.LLCMPKI)
	}
	if fastP.LLCMPKI != 0 {
		t.Fatalf("fast phase LLC MPKI=%v want 0", fastP.LLCMPKI)
	}
	if fastP.IPCMean <= slowP.IPCMean {
		t.Fatal("fast phase should have higher IPC")
	}
	if fastP.Units+slowP.Units != len(tr.Units) {
		t.Fatal("unit counts lost")
	}
	// Hierarchy sanity: L1 ≥ L2 ≥ LLC misses.
	if slowP.L1MPKI < slowP.L2MPKI || slowP.L2MPKI < slowP.LLCMPKI {
		t.Fatalf("MPKI hierarchy violated: %+v", slowP)
	}
}
