package phase

import "testing"

// BenchmarkForm measures full phase formation (vectorization, feature
// selection, k sweep) on a synthetic 600-unit trace.
func BenchmarkForm(b *testing.B) {
	tr := synthTrace(300, 1) // 600 units
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Form(tr, Options{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVectorize(b *testing.B) {
	tr := synthTrace(300, 2)
	ph, err := Form(tr, Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ph.Space.Vectorize(tr)
	}
}
