package phase

import (
	"fmt"
	"testing"
)

// BenchmarkForm measures full phase formation (vectorization, feature
// selection, k sweep) on a synthetic 600-unit trace.
func BenchmarkForm(b *testing.B) {
	tr := synthTrace(300, 1) // 600 units
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Form(tr, Options{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFormPhases is phase formation across worker counts — the
// parallel-scaling view of BenchmarkForm (whose single-number result
// stays the perf-gate baseline).
func BenchmarkFormPhases(b *testing.B) {
	tr := synthTrace(300, 1)
	for _, w := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Form(tr, Options{Seed: uint64(i), Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkVectorizeSparse measures CSR vectorization of the full
// method space — the path Form runs, which never materializes the
// n×d dense matrix.
func BenchmarkVectorizeSparse(b *testing.B) {
	tr := synthTrace(300, 2)
	fs := fullSpace(tr)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs.VectorizeSparse(tr)
	}
}

func BenchmarkVectorize(b *testing.B) {
	tr := synthTrace(300, 2)
	ph, err := Form(tr, Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ph.Space.Vectorize(tr)
	}
}
