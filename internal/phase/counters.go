package phase

import "simprof/internal/stats"

// CounterStats is the per-phase hardware-counter view the paper argues
// method-level phases enable: once a phase is tied to its dominant
// methods, its miss rates tell the architect *why* it performs the way
// it does (§III-B.1's data-access discussion, and the wc anatomy of
// §IV-F).
type CounterStats struct {
	Phase   int
	Units   int
	CPI     stats.Summary
	L1MPKI  float64 // L1D misses per kilo-instruction, phase aggregate
	L2MPKI  float64
	LLCMPKI float64
	IPCMean float64
}

// CounterProfile aggregates the hardware counters of every phase.
func (p *Phases) CounterProfile() []CounterStats {
	out := make([]CounterStats, p.K)
	type agg struct {
		instr, cyc, l1, l2, llc uint64
	}
	sums := make([]agg, p.K)
	for i, a := range p.Assign {
		c := p.Trace.Units[i].Counters
		sums[a].instr += c.Instructions
		sums[a].cyc += c.Cycles
		sums[a].l1 += c.L1Misses
		sums[a].l2 += c.L2Misses
		sums[a].llc += c.LLCMisses
	}
	cpis := p.CPIStats()
	sizes := p.Sizes()
	for h := 0; h < p.K; h++ {
		out[h] = CounterStats{Phase: h, Units: sizes[h], CPI: cpis[h]}
		if sums[h].instr > 0 {
			ki := float64(sums[h].instr) / 1000
			out[h].L1MPKI = float64(sums[h].l1) / ki
			out[h].L2MPKI = float64(sums[h].l2) / ki
			out[h].LLCMPKI = float64(sums[h].llc) / ki
		}
		if sums[h].cyc > 0 {
			out[h].IPCMean = float64(sums[h].instr) / float64(sums[h].cyc)
		}
	}
	return out
}
