// Package phase implements SimProf's phase formation (§III-B): sampling
// units are vectorized into method-frequency feature vectors from their
// call-stack snapshots, the methods most correlated with IPC are
// selected with a univariate linear-regression test, and k-means with
// silhouette-based k selection groups the units into phases. The package
// also provides the homogeneity (CoV) analysis of §III-B.1 and the
// phase-type classification behind Fig. 10.
package phase

import (
	"context"
	"fmt"
	"math"
	"sort"

	"simprof/internal/cluster"
	"simprof/internal/matrix"
	"simprof/internal/model"
	"simprof/internal/obs"
	"simprof/internal/parallel"
	"simprof/internal/stats"
	"simprof/internal/trace"
)

// Phase-formation telemetry: stage spans cover the sequential pipeline
// stages; counters record how many units entered formation and how many
// were fenced out as degraded.
var (
	obsFormRuns = obs.NewCounter("phase.form_runs",
		"phase formations run")
	obsFormUnits = obs.NewCounter("phase.units",
		"sampling units entering phase formation")
	obsFormDegraded = obs.NewCounter("phase.degraded_units",
		"degraded units classified onto formed centers instead of trained on")
	obsVecNNZ = obs.NewCounter("phase.vectorize_nnz",
		"nonzero cells stored by sparse vectorization")
	obsVecCells = obs.NewCounter("phase.vectorize_cells",
		"full-space cells a dense vectorization would have materialized")
	obsFreqAdopted = obs.NewCounter("phase.freq_adopted",
		"formations that adopted a decoder-attached frequency matrix instead of vectorizing")
)

// Options controls phase formation. Zero values select the paper's
// parameters.
type Options struct {
	TopK                int     // methods kept by feature selection (paper: 100)
	MaxPhases           int     // k sweep upper bound (paper: 20)
	SilhouetteThreshold float64 // fraction of best silhouette accepted (default 0.93)
	Seed                uint64
	// Restarts and MaxIter bound the k-means work per swept k. Zero
	// selects the clustering defaults (4 restarts, 100 iterations),
	// which reproduce the paper's runs; interactive callers profiling
	// very large traces can trade refinement for latency here.
	Restarts int
	MaxIter  int
	// Workers bounds the concurrency of the whole formation pipeline
	// (vectorization, feature scoring, the k sweep and its restarts).
	// 0 selects GOMAXPROCS; 1 runs serially. The formed phases are
	// bit-for-bit identical for every setting.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.TopK <= 0 {
		o.TopK = 100
	}
	if o.MaxPhases <= 0 {
		o.MaxPhases = 20
	}
	if o.SilhouetteThreshold <= 0 {
		// Slightly above the paper's 90%: our simplified-silhouette
		// scores saturate for coarse splits, and 93% recovers the same
		// phase granularity the paper reports (see DESIGN.md).
		o.SilhouetteThreshold = 0.93
	}
	return o
}

// FeatureSpace is the selected method dimensions, identified by FQN so
// that traces from different runs (whose method tables may intern in a
// different order) can be vectorized consistently.
type FeatureSpace struct {
	Methods []string     // FQN per dimension
	Kinds   []model.Kind // kind per dimension
}

// Dim returns the dimensionality.
func (fs *FeatureSpace) Dim() int { return len(fs.Methods) }

// Vectorize converts every unit of the trace into this feature space:
// dimension j counts how many snapshot stack frames in the unit refer to
// method j. Units vectorize independently on the shared worker pool;
// each unit writes only its own row, so the output is identical for any
// worker count.
func (fs *FeatureSpace) Vectorize(tr *trace.Trace) [][]float64 {
	return fs.vectorizeWith(parallel.Default(), tr)
}

// unitChunk is the fixed per-chunk unit count of the vectorization and
// projection loops.
const unitChunk = 64

func (fs *FeatureSpace) vectorizeWith(eng *parallel.Engine, tr *trace.Trace) [][]float64 {
	dimOf := make(map[string]int, len(fs.Methods))
	for j, fqn := range fs.Methods {
		dimOf[fqn] = j
	}
	// Map the trace's method ids to dims once.
	idToDim := make([]int, len(tr.Methods))
	for i, m := range tr.Methods {
		if j, ok := dimOf[m.FQN()]; ok {
			idToDim[i] = j
		} else {
			idToDim[i] = -1
		}
	}
	out := make([][]float64, len(tr.Units))
	eng.ForEachChunk(len(tr.Units), unitChunk, func(_, lo, hi int) {
		for u := lo; u < hi; u++ {
			v := make([]float64, len(fs.Methods))
			for _, snap := range tr.Units[u].Snapshots {
				for _, id := range snap {
					if int(id) < len(idToDim) {
						if j := idToDim[id]; j >= 0 {
							v[j]++
						}
					}
				}
			}
			out[u] = v
		}
	})
	return out
}

// VectorizeSparse converts every unit of the trace into this feature
// space as a CSR matrix: row u holds the same counts Vectorize's row u
// would, but stores only the methods the unit actually touched — a
// handful of stack frames out of the whole interned table. Cell values
// are integer counts accumulated in the same snapshot order as
// Vectorize, so the stored numbers are bit-identical to the dense
// vectorization's nonzero cells.
func (fs *FeatureSpace) VectorizeSparse(tr *trace.Trace) *matrix.Sparse {
	dimOf := make(map[string]int, len(fs.Methods))
	for j, fqn := range fs.Methods {
		dimOf[fqn] = j
	}
	idToDim := make([]int, len(tr.Methods))
	for i, m := range tr.Methods {
		if j, ok := dimOf[m.FQN()]; ok {
			idToDim[i] = j
		} else {
			idToDim[i] = -1
		}
	}
	d := len(fs.Methods)
	b := matrix.NewSparseBuilder(d, len(tr.Units), 8*len(tr.Units))
	counts := make([]float64, d) // scratch: zero ⇔ untouched this unit
	touched := make([]int32, 0, 64)
	vals := make([]float64, 0, 64)
	for u := range tr.Units {
		touched = touched[:0]
		for _, snap := range tr.Units[u].Snapshots {
			for _, id := range snap {
				if int(id) < len(idToDim) {
					if j := idToDim[id]; j >= 0 {
						if counts[j] == 0 {
							touched = append(touched, int32(j))
						}
						counts[j]++
					}
				}
			}
		}
		sort.Slice(touched, func(a, b int) bool { return touched[a] < touched[b] })
		vals = vals[:0]
		for _, j := range touched {
			vals = append(vals, counts[j])
			counts[j] = 0
		}
		b.AppendRow(touched, vals)
	}
	return b.Build()
}

// fullFreqMatrix returns the trace's full-method-space frequency CSR,
// adopting the matrix a columnar decoder attached (tracebin stores it as
// three file sections, so "vectorizing" is free) whenever it provably
// equals what VectorizeSparse(fullSpace) would build: the dimensions
// must match the trace, and the method FQNs must be unique — the
// FQN-keyed vectorizer collapses duplicate FQNs onto one dimension,
// while the decoder's matrix is keyed by method id, so a table with
// duplicates must take the slow path to stay bit-identical.
func fullFreqMatrix(full *FeatureSpace, tr *trace.Trace) *matrix.Sparse {
	if sp := tr.Freq(); sp != nil &&
		sp.Rows() == len(tr.Units) && sp.Cols() == len(tr.Methods) &&
		uniqueStrings(full.Methods) {
		obsFreqAdopted.Inc()
		return sp
	}
	return full.VectorizeSparse(tr)
}

func uniqueStrings(ss []string) bool {
	seen := make(map[string]struct{}, len(ss))
	for _, s := range ss {
		if _, dup := seen[s]; dup {
			return false
		}
		seen[s] = struct{}{}
	}
	return true
}

// fullSpace builds the all-methods feature space of a trace.
func fullSpace(tr *trace.Trace) *FeatureSpace {
	fs := &FeatureSpace{
		Methods: make([]string, len(tr.Methods)),
		Kinds:   make([]model.Kind, len(tr.Methods)),
	}
	for i, m := range tr.Methods {
		fs.Methods[i] = m.FQN()
		fs.Kinds[i] = m.Kind
	}
	return fs
}

// Phases is the result of phase formation on a training trace.
type Phases struct {
	Trace   *trace.Trace
	Space   *FeatureSpace // selected feature space
	Vectors [][]float64   // unit vectors in the selected space
	K       int
	Assign  []int       // unit → phase
	Centers [][]float64 // phase centers in the selected space

	// Degraded marks units whose observation is incomplete (effective
	// quality flags set). Degraded units are excluded from feature
	// selection and clustering and classified onto the formed centers
	// afterwards; they keep a phase assignment (their instructions were
	// executed, so phase weights must count them) but contribute no CPI
	// to per-phase statistics.
	Degraded []bool

	Silhouette float64   // silhouette at the chosen k
	KScores    []float64 // silhouette per swept k (index 0 ↔ k=1)
	FScores    []float64 // regression score of each selected dimension

	// unitsByPhase is the per-phase unit index list, built once at Form
	// time so the per-phase accessors cost O(phase size) instead of
	// rescanning all N assignments on every call (formerly O(N·K) when
	// iterated over phases). Only the phase membership is cached —
	// measured status stays dynamic, because unit quality can legally
	// change after formation (tests degrade traces post-Form). A
	// zero-value Phases (hand-assembled in tests) leaves it nil and the
	// accessors fall back to the full scan.
	unitsByPhase [][]int
}

// buildIndex populates the per-phase unit lists from Assign: one
// counting pass sizes every list exactly, so no list is append-grown
// through log₂(N) reallocations on large traces.
func (p *Phases) buildIndex() {
	sizes := make([]int, p.K)
	for _, a := range p.Assign {
		sizes[a]++
	}
	p.unitsByPhase = make([][]int, p.K)
	for h, s := range sizes {
		p.unitsByPhase[h] = make([]int, 0, s)
	}
	for i, a := range p.Assign {
		p.unitsByPhase[a] = append(p.unitsByPhase[a], i)
	}
}

// Form runs the full phase-formation pipeline on a trace. Degraded
// units (lost counters, partial snapshots, truncated streams) are fenced
// out of the training statistics: features are selected and clusters
// formed on fully observed units only, then every degraded unit is
// classified onto the nearest resulting center. On a pristine trace
// this is bit-for-bit the historical pipeline.
func Form(tr *trace.Trace, opts Options) (*Phases, error) {
	return FormCtx(context.Background(), tr, opts)
}

// FormCtx is Form under a context: when ctx ends mid-formation the
// pipeline stops claiming new work (vectorization chunks, sweep tasks,
// restart passes), lets in-flight chunks finish, and returns the
// context error — an abandoned request stops burning CPU instead of
// running phase formation to completion for nobody. A successful
// FormCtx is bit-for-bit Form: cancellation either aborts the run with
// an error or changes nothing.
func FormCtx(ctx context.Context, tr *trace.Trace, opts Options) (*Phases, error) {
	o := opts.withDefaults()
	if len(tr.Units) == 0 {
		return nil, fmt.Errorf("phase: trace has no sampling units")
	}
	formSpan := obs.StartSpan("phase.form")
	defer formSpan.End()
	obsFormRuns.Inc()
	obsFormUnits.Add(int64(len(tr.Units)))
	eng := parallel.New(o.Workers).WithContext(ctx)

	degraded := make([]bool, len(tr.Units))
	clean := make([]int, 0, len(tr.Units))
	for i := range tr.Units {
		if tr.EffectiveQuality(i).Degraded() {
			degraded[i] = true
		} else {
			clean = append(clean, i)
		}
	}
	if len(clean) == 0 {
		return nil, fmt.Errorf("phase: no fully observed sampling units (all %d degraded)", len(tr.Units))
	}

	// The full method space is vectorized sparse: a unit's snapshots
	// touch a handful of methods out of the whole interned table, so the
	// CSR form stores orders of magnitude fewer cells than the n×d dense
	// matrix the pipeline used to materialize here.
	vecSpan := obs.StartSpan("phase.vectorize")
	full := fullSpace(tr)
	sp := fullFreqMatrix(full, tr)
	obsVecNNZ.Add(int64(sp.NNZ()))
	obsVecCells.Add(int64(sp.Rows()) * int64(sp.Cols()))
	vecSpan.End()
	// Univariate linear-regression feature selection against IPC, on
	// fully observed units only (a dropped counter is not IPC 0). The
	// sparse scorer walks stored nonzeros, never the full method space.
	selSpan := obs.StartSpan("phase.feature_select")
	cleanIPC := make([]float64, len(clean))
	for k, i := range clean {
		cleanIPC[k] = tr.Units[i].Counters.IPC()
	}
	scores := stats.FRegressionSparseWith(eng, sp, clean, cleanIPC)
	if err := eng.Err(); err != nil {
		return nil, fmt.Errorf("phase: feature selection: %w", err)
	}
	top := stats.TopK(scores, o.TopK)
	space := &FeatureSpace{
		Methods: make([]string, len(top)),
		Kinds:   make([]model.Kind, len(top)),
	}
	fscores := make([]float64, len(top))
	for j, dim := range top {
		space.Methods[j] = full.Methods[dim]
		space.Kinds[j] = full.Kinds[dim]
		fscores[j] = scores[dim]
	}
	// Projection onto the selected dimensions goes straight from CSR to
	// a flat Dense the clustering kernels run on. Chunks of rows project
	// independently (each cell is written by exactly one chunk, no
	// reductions), so the result is bit-for-bit GatherColumnsDense at
	// every worker count.
	selected := matrix.NewDense(sp.Rows(), len(top))
	if len(top) > 0 {
		colMap := sp.ColMap(top)
		eng.ForEachChunk(sp.Rows(), unitChunk, func(_, lo, hi int) {
			sp.GatherColumnsInto(selected, colMap, lo, hi)
		})
		if err := eng.Err(); err != nil {
			return nil, fmt.Errorf("phase: projection: %w", err)
		}
	}
	// On a pristine trace every row trains, so the projection itself is
	// the training matrix — skip the 12MB-at-100k-units identity copy.
	cleanSelected := selected
	if len(clean) < len(tr.Units) {
		cleanSelected = selected.GatherRows(clean)
	}
	selSpan.End()
	clusterSpan := obs.StartSpan("phase.cluster")
	sel, err := cluster.ChooseKDense(cleanSelected, cluster.ChooseKOptions{
		MaxK:      o.MaxPhases,
		Threshold: o.SilhouetteThreshold,
		KMeans:    cluster.Options{Seed: o.Seed, Restarts: o.Restarts, MaxIter: o.MaxIter},
		Workers:   o.Workers,
		Ctx:       ctx,
	})
	clusterSpan.End()
	if err != nil {
		return nil, fmt.Errorf("phase: clustering: %w", err)
	}
	assign := make([]int, len(tr.Units))
	for k, i := range clean {
		assign[i] = sel.Best.Assign[k]
	}
	// Classify degraded units onto the formed centers so they keep a
	// phase (and so phase weights reflect the whole execution). The
	// NearestSet shares one norm cache across every degraded unit and
	// matches NearestCenter bit-for-bit.
	obsFormDegraded.Add(int64(len(tr.Units) - len(clean)))
	if len(clean) < len(tr.Units) {
		ns := cluster.NewNearestSet(sel.Best.Centers)
		for i := range tr.Units {
			if degraded[i] {
				c, _ := ns.Nearest(selected.Row(i))
				assign[i] = c
			}
		}
	}
	p := &Phases{
		Trace:      tr,
		Space:      space,
		Vectors:    selected.RowViews(),
		K:          sel.K,
		Assign:     assign,
		Centers:    sel.Best.Centers,
		Degraded:   degraded,
		Silhouette: sel.ChosenScore,
		KScores:    sel.Scores,
		FScores:    fscores,
	}
	p.buildIndex()
	return p, nil
}

// PhaseUnits returns the unit indices of phase h.
func (p *Phases) PhaseUnits(h int) []int {
	if p.unitsByPhase != nil && h >= 0 && h < len(p.unitsByPhase) {
		return append([]int(nil), p.unitsByPhase[h]...)
	}
	var out []int
	for i, a := range p.Assign {
		if a == h {
			out = append(out, i)
		}
	}
	return out
}

// Sizes returns the unit count per phase.
func (p *Phases) Sizes() []int {
	out := make([]int, p.K)
	if p.unitsByPhase != nil {
		for h := range out {
			out[h] = len(p.unitsByPhase[h])
		}
		return out
	}
	for _, a := range p.Assign {
		out[a]++
	}
	return out
}

// Weights returns each phase's fraction of all sampling units.
func (p *Phases) Weights() []float64 {
	sizes := p.Sizes()
	out := make([]float64, p.K)
	n := float64(len(p.Assign))
	for h, s := range sizes {
		out[h] = float64(s) / n
	}
	return out
}

// PhaseCPIs returns the CPIs of the measured units in phase h. Units
// whose counters were lost contribute nothing — including them as CPI 0
// would crater the phase mean and inflate σ, which feeds Neyman
// allocation (Eq. 1) and the stratified SE (Eq. 4–5).
func (p *Phases) PhaseCPIs(h int) []float64 {
	if p.unitsByPhase != nil && h >= 0 && h < len(p.unitsByPhase) {
		out := make([]float64, 0, len(p.unitsByPhase[h]))
		for _, i := range p.unitsByPhase[h] {
			if p.UnitMeasured(i) {
				out = append(out, p.Trace.Units[i].CPI())
			}
		}
		return out
	}
	var out []float64
	for i, a := range p.Assign {
		if a == h && p.UnitMeasured(i) {
			out = append(out, p.Trace.Units[i].CPI())
		}
	}
	return out
}

// UnitMeasured reports whether unit i carries a usable CPI measurement:
// not flagged degraded at formation time and holding valid counters.
func (p *Phases) UnitMeasured(i int) bool {
	if p.Degraded != nil && p.Degraded[i] {
		return false
	}
	return p.Trace.Units[i].CPIValid()
}

// MeasuredPhaseUnits returns the unit indices of phase h that carry a
// usable CPI — the frame stratified sampling may draw from.
func (p *Phases) MeasuredPhaseUnits(h int) []int {
	if p.unitsByPhase != nil && h >= 0 && h < len(p.unitsByPhase) {
		out := make([]int, 0, len(p.unitsByPhase[h]))
		for _, i := range p.unitsByPhase[h] {
			if p.UnitMeasured(i) {
				out = append(out, i)
			}
		}
		return out
	}
	var out []int
	for i, a := range p.Assign {
		if a == h && p.UnitMeasured(i) {
			out = append(out, i)
		}
	}
	return out
}

// MeasuredSizes returns the usable unit count per phase.
func (p *Phases) MeasuredSizes() []int {
	out := make([]int, p.K)
	if p.unitsByPhase != nil {
		for h := range out {
			for _, i := range p.unitsByPhase[h] {
				if p.UnitMeasured(i) {
					out[h]++
				}
			}
		}
		return out
	}
	for i, a := range p.Assign {
		if p.UnitMeasured(i) {
			out[a]++
		}
	}
	return out
}

// DegradedFraction is the fraction of units excluded from phase
// statistics.
func (p *Phases) DegradedFraction() float64 {
	if len(p.Assign) == 0 {
		return 0
	}
	n := 0
	for i := range p.Assign {
		if !p.UnitMeasured(i) {
			n++
		}
	}
	return float64(n) / float64(len(p.Assign))
}

// CPIStats summarizes CPI per phase.
func (p *Phases) CPIStats() []stats.Summary {
	out := make([]stats.Summary, p.K)
	for h := 0; h < p.K; h++ {
		out[h] = stats.Summarize(p.PhaseCPIs(h))
	}
	return out
}

// CoVReport is the homogeneity analysis of Fig. 6.
type CoVReport struct {
	Population float64 // CoV of all units' CPIs
	Weighted   float64 // per-phase CoV weighted by phase size
	Max        float64 // worst phase
}

// CoV computes the Fig. 6 homogeneity metrics.
func (p *Phases) CoV() CoVReport {
	rep := CoVReport{Population: stats.CoV(p.Trace.CPIs())}
	weights := p.Weights()
	for h := 0; h < p.K; h++ {
		c := stats.CoV(p.PhaseCPIs(h))
		rep.Weighted += weights[h] * c
		if c > rep.Max {
			rep.Max = c
		}
	}
	return rep
}

// DominantMethods returns the n feature methods with the highest center
// weight in phase h — the paper's way of tracing a phase back to code
// ("the method most commonly seen in this phase"). Framework frames
// (thread entry points, task runners), which appear in every snapshot,
// are skipped; they only surface if a phase contains nothing else.
func (p *Phases) DominantMethods(h, n int) []string {
	if h < 0 || h >= p.K {
		return nil
	}
	idx := stats.TopK(p.Centers[h], len(p.Centers[h]))
	out := make([]string, 0, n)
	for _, j := range idx {
		if len(out) == n || p.Centers[h][j] <= 0 {
			break
		}
		if k := p.Space.Kinds[j]; k == model.KindFramework {
			continue
		}
		out = append(out, p.Space.Methods[j])
	}
	if len(out) == 0 {
		for _, j := range idx[:min(n, len(idx))] {
			if p.Centers[h][j] > 0 {
				out = append(out, p.Space.Methods[j])
			}
		}
	}
	return out
}

// DominantKind classifies phase h by the operation kind carrying the
// most center weight (map/reduce/sort/IO); framework and other frames
// are ignored unless nothing else appears.
func (p *Phases) DominantKind(h int) model.Kind {
	weights := make([]float64, model.NumKinds)
	for j, w := range p.Centers[h] {
		weights[p.Space.Kinds[j]] += w
	}
	best, bestW := model.KindOther, math.Inf(-1)
	for _, k := range []model.Kind{model.KindMap, model.KindReduce, model.KindSort, model.KindIO} {
		if weights[k] > bestW && weights[k] > 0 {
			best, bestW = k, weights[k]
		}
	}
	if math.IsInf(bestW, -1) {
		return model.KindOther
	}
	return best
}

// TypeDistribution returns the fraction of sampling units whose phase
// is dominated by each kind — Fig. 10's breakdown.
func (p *Phases) TypeDistribution() map[model.Kind]float64 {
	out := map[model.Kind]float64{}
	weights := p.Weights()
	for h := 0; h < p.K; h++ {
		out[p.DominantKind(h)] += weights[h]
	}
	return out
}
