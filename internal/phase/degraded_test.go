package phase

import (
	"reflect"
	"testing"

	"simprof/internal/trace"
)

// degradeUnits flags every nth unit CountersMissing (zeroing counters)
// and returns the degraded copy's indices.
func degradeEveryNth(tr *trace.Trace, n int) []int {
	var degraded []int
	for i := range tr.Units {
		if i%n == 0 {
			tr.Units[i].Counters = trace.Counters{}
			tr.Units[i].Quality |= trace.CountersMissing
			degraded = append(degraded, i)
		}
	}
	return degraded
}

func TestFormCleanPathUnchangedByHardening(t *testing.T) {
	// A pristine trace must produce no degraded mask and measured
	// helpers that match the plain ones exactly.
	tr := synthTrace(40, 6)
	ph, err := Form(tr, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range ph.Degraded {
		if d {
			t.Fatalf("clean unit %d marked degraded", i)
		}
	}
	if ph.DegradedFraction() != 0 {
		t.Fatalf("DegradedFraction=%v", ph.DegradedFraction())
	}
	for h := 0; h < ph.K; h++ {
		if !reflect.DeepEqual(ph.MeasuredPhaseUnits(h), ph.PhaseUnits(h)) {
			t.Fatalf("phase %d: measured != all on a clean trace", h)
		}
	}
	if !reflect.DeepEqual(ph.MeasuredSizes(), ph.Sizes()) {
		t.Fatal("MeasuredSizes != Sizes on a clean trace")
	}
}

func TestFormWithDegradedUnits(t *testing.T) {
	tr := synthTrace(40, 6)
	degraded := degradeEveryNth(tr, 5)
	ph, err := Form(tr, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ph.K != 2 {
		t.Fatalf("K=%d want 2", ph.K)
	}
	// Every unit — including degraded ones — is assigned a phase, so
	// phase weights still count all executed instructions.
	if len(ph.Assign) != len(tr.Units) {
		t.Fatalf("assign len %d != units %d", len(ph.Assign), len(tr.Units))
	}
	for _, i := range degraded {
		if !ph.Degraded[i] {
			t.Fatalf("unit %d not marked degraded", i)
		}
		if ph.Assign[i] < 0 || ph.Assign[i] >= ph.K {
			t.Fatalf("degraded unit %d unassigned: %d", i, ph.Assign[i])
		}
		if ph.UnitMeasured(i) {
			t.Fatalf("degraded unit %d counted as measured", i)
		}
	}
	// Degraded units are excluded from the CPI statistics.
	for h := 0; h < ph.K; h++ {
		for _, cpi := range ph.PhaseCPIs(h) {
			if cpi == 0 {
				t.Fatal("zero CPI leaked into phase statistics")
			}
		}
		if len(ph.MeasuredPhaseUnits(h)) >= len(ph.PhaseUnits(h)) &&
			len(ph.PhaseUnits(h)) > 0 && h == ph.Assign[degraded[0]] {
			t.Fatalf("phase %d: measured count not reduced", h)
		}
	}
	sizes, msizes := ph.Sizes(), ph.MeasuredSizes()
	total, mtotal := 0, 0
	for h := 0; h < ph.K; h++ {
		total += sizes[h]
		mtotal += msizes[h]
	}
	if total != len(tr.Units) {
		t.Fatalf("sizes sum %d", total)
	}
	if mtotal != len(tr.Units)-len(degraded) {
		t.Fatalf("measured sum %d want %d", mtotal, len(tr.Units)-len(degraded))
	}
	if got := ph.DegradedFraction(); got == 0 {
		t.Fatal("DegradedFraction 0 on a degraded trace")
	}
}

func TestFormDegradedClassification(t *testing.T) {
	// Degraded units keep informative snapshots (counters lost, stacks
	// fine) — classification must put them in the behaviourally right
	// phase via nearest-center, not a catch-all.
	tr := synthTrace(40, 6)
	tr.Units[0].Counters = trace.Counters{} // an "A.map" unit
	tr.Units[1].Counters = trace.Counters{} // a "B.sort" unit
	ph, err := Form(tr, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Units alternate a,b: unit 0 must follow unit 2's phase, unit 1
	// unit 3's.
	if ph.Assign[0] != ph.Assign[2] {
		t.Fatalf("degraded map unit classified into phase %d, clean map units in %d",
			ph.Assign[0], ph.Assign[2])
	}
	if ph.Assign[1] != ph.Assign[3] {
		t.Fatalf("degraded sort unit classified into phase %d, clean sort units in %d",
			ph.Assign[1], ph.Assign[3])
	}
}

func TestFormAllDegradedFails(t *testing.T) {
	tr := synthTrace(10, 2)
	for i := range tr.Units {
		tr.Units[i].Counters = trace.Counters{}
	}
	if _, err := Form(tr, Options{Seed: 1}); err == nil {
		t.Fatal("all-degraded trace should not form phases")
	}
}
