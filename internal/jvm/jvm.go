// Package jvm simulates the managed-runtime layer the paper profiles
// through JVMTI. A VM owns a method table and a set of executor threads;
// engines drive a ThreadBuilder exactly like Java code runs — pushing and
// popping stack frames and retiring instructions inside them — and the
// resulting segments carry the full call stack that a JVMTI
// GetStackTrace snapshot would observe at that point.
package jvm

import (
	"fmt"

	"simprof/internal/cpu"
	"simprof/internal/model"
)

// VM is one simulated Java virtual machine (one Spark executor process
// or one Hadoop task container host).
type VM struct {
	Table   *model.Table
	threads []*cpu.Thread
	nextID  int
}

// NewVM creates a VM with a fresh method table.
func NewVM() *VM { return &VM{Table: model.NewTable()} }

// NewVMWithTable creates a VM sharing an existing method table, so that
// several VMs (e.g. one per Hadoop task wave) produce comparable traces.
func NewVMWithTable(t *model.Table) *VM { return &VM{Table: t} }

// Threads returns the executor threads spawned so far, in spawn order.
func (vm *VM) Threads() []*cpu.Thread { return vm.threads }

// ThreadBuilder assembles one executor thread frame-by-frame.
type ThreadBuilder struct {
	vm     *VM
	thread *cpu.Thread
	stack  model.Stack
	task   int
	stage  int
}

// SpawnThread starts a new executor thread with the given name.
func (vm *VM) SpawnThread(name string) *ThreadBuilder {
	t := &cpu.Thread{ID: vm.nextID, Name: name}
	vm.nextID++
	vm.threads = append(vm.threads, t)
	return &ThreadBuilder{vm: vm, thread: t, stage: -1, task: -1}
}

// Push enters a method frame.
func (b *ThreadBuilder) Push(m model.MethodID) *ThreadBuilder {
	b.stack = append(b.stack, m)
	return b
}

// PushM interns class.name with the kind and enters it.
func (b *ThreadBuilder) PushM(class, name string, kind model.Kind) *ThreadBuilder {
	return b.Push(b.vm.Table.Intern(class, name, kind))
}

// Pop leaves the innermost frame. It panics on an empty stack, which is
// always an engine bug.
func (b *ThreadBuilder) Pop() *ThreadBuilder {
	if len(b.stack) == 0 {
		panic("jvm: Pop on empty stack")
	}
	b.stack = b.stack[:len(b.stack)-1]
	return b
}

// PopN pops n frames.
func (b *ThreadBuilder) PopN(n int) *ThreadBuilder {
	for i := 0; i < n; i++ {
		b.Pop()
	}
	return b
}

// Depth returns the current stack depth.
func (b *ThreadBuilder) Depth() int { return len(b.stack) }

// SetTask tags subsequent segments with an engine task id.
func (b *ThreadBuilder) SetTask(task, stage int) *ThreadBuilder {
	b.task, b.stage = task, stage
	return b
}

// Exec retires instr instructions under the current stack.
func (b *ThreadBuilder) Exec(instr uint64, baseCPI float64, access cpu.Access) *ThreadBuilder {
	if instr == 0 {
		return b
	}
	if len(b.stack) == 0 {
		panic(fmt.Sprintf("jvm: Exec with empty stack on thread %q", b.thread.Name))
	}
	b.thread.Segments = append(b.thread.Segments, cpu.Segment{
		Stack:   b.stack.Clone(),
		Instr:   instr,
		BaseCPI: baseCPI,
		Access:  access,
		TaskID:  b.task,
		StageID: b.stage,
	})
	return b
}

// Call is Push+Exec+Pop in one step: a leaf call that retires instr
// instructions.
func (b *ThreadBuilder) Call(m model.MethodID, instr uint64, baseCPI float64, access cpu.Access) *ThreadBuilder {
	return b.Push(m).Exec(instr, baseCPI, access).Pop()
}

// Thread finishes the builder and returns the thread. The stack need not
// be empty (a thread can be profiled mid-flight), but engines normally
// unwind fully.
func (b *ThreadBuilder) Thread() *cpu.Thread { return b.thread }
