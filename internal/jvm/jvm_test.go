package jvm

import (
	"testing"

	"simprof/internal/cpu"
	"simprof/internal/model"
)

func TestBuilderStacksAreSnapshotted(t *testing.T) {
	vm := NewVM()
	b := vm.SpawnThread("Executor task launch worker-0")
	b.PushM("java.lang.Thread", "run", model.KindFramework)
	b.PushM("org.apache.spark.executor.Executor$TaskRunner", "run", model.KindFramework)
	b.Exec(1000, 0.5, cpu.Access{})
	b.PushM("org.apache.spark.scheduler.ResultTask", "runTask", model.KindFramework)
	b.Exec(2000, 0.6, cpu.Access{})
	b.Pop()
	b.Exec(500, 0.5, cpu.Access{})
	th := b.Thread()
	if len(th.Segments) != 3 {
		t.Fatalf("segments=%d want 3", len(th.Segments))
	}
	if len(th.Segments[0].Stack) != 2 || len(th.Segments[1].Stack) != 3 || len(th.Segments[2].Stack) != 2 {
		t.Fatalf("stack depths wrong: %d %d %d",
			len(th.Segments[0].Stack), len(th.Segments[1].Stack), len(th.Segments[2].Stack))
	}
	// Stacks must be snapshots, not aliases of the builder's stack.
	if &th.Segments[0].Stack[0] == &th.Segments[2].Stack[0] {
		t.Fatal("segments alias the same stack storage")
	}
	if th.Segments[1].Stack.Leaf() == th.Segments[0].Stack.Leaf() {
		t.Fatal("push did not change leaf")
	}
	if th.Instructions() != 3500 {
		t.Fatalf("Instructions=%d want 3500", th.Instructions())
	}
}

func TestCallShorthand(t *testing.T) {
	vm := NewVM()
	b := vm.SpawnThread("w")
	root := vm.Table.Intern("T", "run", model.KindFramework)
	leaf := vm.Table.Intern("M", "map", model.KindMap)
	b.Push(root).Call(leaf, 100, 0.5, cpu.Access{})
	if b.Depth() != 1 {
		t.Fatalf("Call should restore depth, got %d", b.Depth())
	}
	seg := b.Thread().Segments[0]
	if seg.Stack.Leaf() != leaf || len(seg.Stack) != 2 {
		t.Fatalf("Call stack wrong: %v", seg.Stack)
	}
}

func TestTaskTagging(t *testing.T) {
	vm := NewVM()
	b := vm.SpawnThread("w").PushM("T", "run", model.KindFramework)
	b.SetTask(7, 2).Exec(10, 0.5, cpu.Access{})
	seg := b.Thread().Segments[0]
	if seg.TaskID != 7 || seg.StageID != 2 {
		t.Fatalf("task tags=%d/%d", seg.TaskID, seg.StageID)
	}
}

func TestExecZeroInstrNoop(t *testing.T) {
	vm := NewVM()
	b := vm.SpawnThread("w").PushM("T", "run", model.KindFramework)
	b.Exec(0, 0.5, cpu.Access{})
	if len(b.Thread().Segments) != 0 {
		t.Fatal("zero-instruction Exec emitted a segment")
	}
}

func TestPopEmptyPanics(t *testing.T) {
	vm := NewVM()
	b := vm.SpawnThread("w")
	defer func() {
		if recover() == nil {
			t.Fatal("Pop on empty stack should panic")
		}
	}()
	b.Pop()
}

func TestExecEmptyStackPanics(t *testing.T) {
	vm := NewVM()
	b := vm.SpawnThread("w")
	defer func() {
		if recover() == nil {
			t.Fatal("Exec with empty stack should panic")
		}
	}()
	b.Exec(10, 0.5, cpu.Access{})
}

func TestSharedTableAcrossVMs(t *testing.T) {
	tbl := model.NewTable()
	vm1, vm2 := NewVMWithTable(tbl), NewVMWithTable(tbl)
	a := vm1.SpawnThread("a").PushM("C", "m", model.KindMap)
	bb := vm2.SpawnThread("b").PushM("C", "m", model.KindMap)
	a.Exec(1, 0.5, cpu.Access{})
	bb.Exec(1, 0.5, cpu.Access{})
	if a.Thread().Segments[0].Stack[0] != bb.Thread().Segments[0].Stack[0] {
		t.Fatal("shared table produced different ids for the same method")
	}
	if len(vm1.Threads()) != 1 || len(vm2.Threads()) != 1 {
		t.Fatal("thread registries mixed up")
	}
	if tbl.Len() != 1 {
		t.Fatalf("table has %d methods want 1", tbl.Len())
	}
}

func TestPopN(t *testing.T) {
	vm := NewVM()
	b := vm.SpawnThread("w")
	b.PushM("A", "a", model.KindOther).PushM("B", "b", model.KindOther).PushM("C", "c", model.KindOther)
	b.PopN(2)
	if b.Depth() != 1 {
		t.Fatalf("depth=%d want 1", b.Depth())
	}
}
