package resilience

import (
	"context"
	"fmt"
	"time"

	"simprof/internal/obs"
	"simprof/internal/stats"
)

var (
	obsRetries = obs.NewCounter("resilience.retries",
		"operation attempts re-run after a transient failure")
	obsRetryExhausted = obs.NewCounter("resilience.retry_exhausted",
		"operations that failed every allowed attempt")
	obsRetryOutcomes = obs.NewCounterVec("resilience.retry_outcomes",
		"terminal Retry.Do outcomes by resilience class", "class")
)

// Retry is an exponential-backoff retry policy with seeded jitter.
// The zero value is usable: it means one attempt, i.e. no retrying.
type Retry struct {
	// Attempts is the total number of tries (first call included).
	// Values < 1 behave as 1.
	Attempts int
	// Base is the delay before the first retry; each further retry
	// multiplies it by Multiplier up to Max. Base <= 0 selects 10ms.
	Base time.Duration
	// Max caps the per-retry delay. <= 0 selects 1s.
	Max time.Duration
	// Multiplier grows the delay between retries. < 1 selects 2.
	Multiplier float64
	// Jitter spreads each delay uniformly over
	// [delay*(1-Jitter), delay*(1+Jitter)] so synchronized clients
	// don't retry in lockstep. Negative behaves as 0; values are
	// clamped to 1. Zero means deterministic full delays.
	Jitter float64
	// Seed drives the jitter stream (stats.SplitSeed-derived), making a
	// retry schedule reproducible for a given policy.
	Seed uint64

	// Sleep is the injectable wait. nil selects a timer that aborts
	// early (returning ctx.Err()) when the context ends.
	Sleep func(ctx context.Context, d time.Duration) error
}

func (r Retry) withDefaults() Retry {
	if r.Attempts < 1 {
		r.Attempts = 1
	}
	if r.Base <= 0 {
		r.Base = 10 * time.Millisecond
	}
	if r.Max <= 0 {
		r.Max = time.Second
	}
	if r.Multiplier < 1 {
		r.Multiplier = 2
	}
	if r.Jitter < 0 {
		r.Jitter = 0
	}
	if r.Jitter > 1 {
		r.Jitter = 1
	}
	if r.Sleep == nil {
		r.Sleep = sleepCtx
	}
	return r
}

// sleepCtx waits d or until the context ends, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Delays returns the backoff schedule the policy would use between
// attempts (len = Attempts-1), jitter applied. Exposed so tests and
// capacity planning can inspect a schedule without running anything.
func (r Retry) Delays() []time.Duration {
	p := r.withDefaults()
	if p.Attempts <= 1 {
		return nil
	}
	rng := stats.NewRNG(stats.SplitSeed(p.Seed, 0x9e77))
	out := make([]time.Duration, 0, p.Attempts-1)
	d := float64(p.Base)
	for i := 1; i < p.Attempts; i++ {
		v := d
		if p.Jitter > 0 {
			v = d * (1 - p.Jitter + 2*p.Jitter*rng.Float64())
		}
		if v > float64(p.Max) {
			v = float64(p.Max)
		}
		out = append(out, time.Duration(v))
		d *= p.Multiplier
		if d > float64(p.Max) {
			d = float64(p.Max)
		}
	}
	return out
}

// Do runs fn up to Attempts times, backing off between tries. A retry
// happens only when retryable(err) is true (nil retryable selects the
// package Retryable). Context cancellation or expiry stops the loop
// immediately — during a backoff sleep too — and the context error
// wraps the last attempt's error so both classification (timeout /
// canceled) and the root cause survive.
func (r Retry) Do(ctx context.Context, retryable func(error) bool, fn func(ctx context.Context) error) (err error) {
	defer func() { obsRetryOutcomes.With(Classify(err).String()).Inc() }()
	p := r.withDefaults()
	if retryable == nil {
		retryable = Retryable
	}
	delays := p.Delays()
	var last error
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if last != nil {
				return fmt.Errorf("%w (after %d attempts, last: %w)", err, attempt, last)
			}
			return err
		}
		last = fn(ctx)
		if last == nil {
			return nil
		}
		if attempt >= len(delays) || !retryable(last) {
			if attempt > 0 {
				obsRetryExhausted.Inc()
			}
			return last
		}
		obsRetries.Inc()
		if err := p.Sleep(ctx, delays[attempt]); err != nil {
			return fmt.Errorf("%w (after %d attempts, last: %w)", err, attempt+1, last)
		}
	}
}
