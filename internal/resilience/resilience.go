// Package resilience is the substrate simprofd (and any long-running
// SimProf consumer) degrades gracefully on: a uniform error taxonomy
// with HTTP-status and CLI-exit-code mappings, bounded-queue admission
// with backpressure, retry with exponential backoff and seeded jitter,
// a circuit breaker for repeatedly failing dependencies, and a drain
// controller for graceful shutdown.
//
// The design rule throughout: every refusal is *typed*. A request that
// cannot run fails with a sentinel the caller can classify — timeout,
// overload, unavailable, bad input — never a bare string, so servers
// pick the right status code (429 vs 503 vs 504), clients know whether
// retrying can help, and the chaos harness can assert the exact failure
// mode an injected fault must produce.
//
// Determinism contract: like the rest of the repository, nothing here
// draws from the global RNG. Retry jitter comes from a seeded
// SplitSeed-derived stream, so a retry schedule replays bit-for-bit;
// breakers and drains take an injectable clock for the same reason.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Class partitions every pipeline and service error into the buckets
// the taxonomy maps to statuses and exit codes. The zero value is
// ClassOK.
type Class int

const (
	// ClassOK: no error.
	ClassOK Class = iota
	// ClassInternal: an unexpected failure in our own code or state —
	// the residual bucket every unclassified error lands in.
	ClassInternal
	// ClassBadInput: the caller's payload is at fault (malformed trace,
	// invalid parameters). Retrying the same input cannot succeed.
	ClassBadInput
	// ClassTimeout: the work exceeded its deadline
	// (context.DeadlineExceeded anywhere in the chain).
	ClassTimeout
	// ClassOverload: admission refused the work because the queue was
	// full. Retrying after backoff is expected to succeed.
	ClassOverload
	// ClassUnavailable: the service is refusing work for its own health
	// (circuit open, draining for shutdown). Retry later.
	ClassUnavailable
	// ClassCanceled: the caller abandoned the work
	// (context.Canceled anywhere in the chain).
	ClassCanceled
)

// String names the class for logs and JSON error bodies.
func (c Class) String() string {
	switch c {
	case ClassOK:
		return "ok"
	case ClassBadInput:
		return "bad_input"
	case ClassTimeout:
		return "timeout"
	case ClassOverload:
		return "overload"
	case ClassUnavailable:
		return "unavailable"
	case ClassCanceled:
		return "canceled"
	default:
		return "internal"
	}
}

// Sentinel errors of the taxonomy. Components wrap these (never return
// them bare when context helps) so errors.Is classification survives
// any number of fmt.Errorf("...: %w") layers.
var (
	// ErrOverload: a bounded queue was full — backpressure, not failure.
	ErrOverload = errors.New("resilience: overloaded, queue full")
	// ErrBreakerOpen: the circuit breaker is open; the dependency it
	// guards has been failing and calls are refused during cooldown.
	ErrBreakerOpen = errors.New("resilience: circuit breaker open")
	// ErrDraining: the service is shutting down and not accepting work.
	ErrDraining = errors.New("resilience: draining for shutdown")
	// ErrBadInput marks caller-at-fault errors; wrap with BadInput.
	ErrBadInput = errors.New("resilience: bad input")
	// ErrUnavailable marks a dependency that cannot be reached at all
	// (connection refused, DNS failure); wrap with Unavailable.
	ErrUnavailable = errors.New("resilience: unavailable")
)

// BadInput marks err as caller-at-fault: Classify returns ClassBadInput
// for the result (and anything wrapping it). A nil err stays nil.
func BadInput(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrBadInput, err)
}

// Unavailable marks err as a dependency being unreachable: Classify
// returns ClassUnavailable. A nil err stays nil.
func Unavailable(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrUnavailable, err)
}

// Classify maps any error to its taxonomy class. Wrapped sentinels are
// found with errors.Is, so classification is stable across "%w" chains.
// Order matters only for errors carrying several marks, which the
// components never produce.
func Classify(err error) Class {
	switch {
	case err == nil:
		return ClassOK
	case errors.Is(err, ErrBadInput):
		return ClassBadInput
	case errors.Is(err, ErrOverload):
		return ClassOverload
	case errors.Is(err, ErrBreakerOpen), errors.Is(err, ErrDraining),
		errors.Is(err, ErrUnavailable):
		return ClassUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return ClassTimeout
	case errors.Is(err, context.Canceled):
		return ClassCanceled
	default:
		return ClassInternal
	}
}

// HTTPStatus maps a class to the status code simprofd answers with.
// 429 and 503 responses should carry a Retry-After header; 499 is the
// de-facto "client closed request" code (the client is gone, the code
// only shows in logs).
func (c Class) HTTPStatus() int {
	switch c {
	case ClassOK:
		return 200
	case ClassBadInput:
		return 400
	case ClassTimeout:
		return 504
	case ClassOverload:
		return 429
	case ClassUnavailable:
		return 503
	case ClassCanceled:
		return 499
	default:
		return 500
	}
}

// ExitCode maps a class to the uniform CLI exit code. 2 is reserved
// for usage errors (flag parsing), which the cmd layer detects before
// classification.
func (c Class) ExitCode() int {
	switch c {
	case ClassOK:
		return 0
	case ClassBadInput:
		return 3
	case ClassTimeout:
		return 4
	case ClassOverload:
		return 5
	case ClassUnavailable:
		return 6
	case ClassCanceled:
		return 7
	default:
		return 1
	}
}

// Retryable reports whether a retry of the same operation can
// plausibly succeed: transient classes (internal, overload,
// unavailable) are retryable; bad input never is, and deadline/cancel
// belong to the caller, who decides for itself.
func Retryable(err error) bool {
	switch Classify(err) {
	case ClassInternal, ClassOverload, ClassUnavailable:
		return true
	default:
		return false
	}
}

// clock is the injectable time source breakers and drains use so the
// chaos suite can step time deterministically.
type clock func() time.Time

func (c clock) now() time.Time {
	if c == nil {
		return time.Now()
	}
	return c()
}
