package resilience

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

// TestClassify pins the taxonomy: every sentinel (bare and wrapped)
// maps to its class, HTTP status and exit code.
func TestClassify(t *testing.T) {
	wrap := func(err error) error { return fmt.Errorf("layer2: %w", fmt.Errorf("layer1: %w", err)) }
	cases := []struct {
		name string
		err  error
		want Class
		http int
		exit int
	}{
		{"nil", nil, ClassOK, 200, 0},
		{"overload", ErrOverload, ClassOverload, 429, 5},
		{"overload-wrapped", wrap(ErrOverload), ClassOverload, 429, 5},
		{"breaker", ErrBreakerOpen, ClassUnavailable, 503, 6},
		{"draining", wrap(ErrDraining), ClassUnavailable, 503, 6},
		{"deadline", context.DeadlineExceeded, ClassTimeout, 504, 4},
		{"deadline-wrapped", wrap(context.DeadlineExceeded), ClassTimeout, 504, 4},
		{"canceled", wrap(context.Canceled), ClassCanceled, 499, 7},
		{"bad-input", BadInput(errors.New("bogus trace")), ClassBadInput, 400, 3},
		{"bad-input-wrapped", wrap(BadInput(errors.New("x"))), ClassBadInput, 400, 3},
		{"internal", errors.New("disk on fire"), ClassInternal, 500, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Classify(tc.err)
			if got != tc.want {
				t.Fatalf("Classify = %v, want %v", got, tc.want)
			}
			if s := got.HTTPStatus(); s != tc.http {
				t.Fatalf("HTTPStatus = %d, want %d", s, tc.http)
			}
			if c := got.ExitCode(); c != tc.exit {
				t.Fatalf("ExitCode = %d, want %d", c, tc.exit)
			}
		})
	}
}

func TestBadInputNil(t *testing.T) {
	if BadInput(nil) != nil {
		t.Fatal("BadInput(nil) must stay nil")
	}
}

func TestRetryable(t *testing.T) {
	if Retryable(BadInput(errors.New("x"))) {
		t.Fatal("bad input must not be retryable")
	}
	if Retryable(context.Canceled) {
		t.Fatal("cancellation must not be retryable")
	}
	if !Retryable(errors.New("flaky disk")) || !Retryable(ErrOverload) {
		t.Fatal("internal/overload errors must be retryable")
	}
}

// TestRetrySucceedsAfterTransient: a fn that fails twice then succeeds
// is retried to success, with the seeded backoff schedule applied.
func TestRetrySucceedsAfterTransient(t *testing.T) {
	var slept []time.Duration
	p := Retry{
		Attempts: 5, Base: 10 * time.Millisecond, Max: time.Second, Jitter: 0.2, Seed: 42,
		Sleep: func(_ context.Context, d time.Duration) error { slept = append(slept, d); return nil },
	}
	calls := 0
	err := p.Do(context.Background(), nil, func(context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("fn ran %d times, want 3", calls)
	}
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2", len(slept))
	}
	want := p.Delays()
	for i, d := range slept {
		if d != want[i] {
			t.Fatalf("sleep %d = %v, want schedule %v", i, d, want)
		}
	}
}

// TestRetryScheduleDeterministic: same policy, same jittered delays.
func TestRetryScheduleDeterministic(t *testing.T) {
	p := Retry{Attempts: 6, Base: 5 * time.Millisecond, Max: 100 * time.Millisecond, Jitter: 0.5, Seed: 7}
	a, b := p.Delays(), p.Delays()
	if len(a) != 5 {
		t.Fatalf("len(Delays) = %d, want 5", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedule not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
		if a[i] <= 0 || a[i] > 100*time.Millisecond {
			t.Fatalf("delay %d = %v out of (0, Max]", i, a[i])
		}
	}
	// A different seed moves the jitter.
	p2 := p
	p2.Seed = 8
	c := p2.Delays()
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced an identical jitter schedule")
	}
}

// TestRetryStopsOnNonRetryable: bad input is never retried.
func TestRetryStopsOnNonRetryable(t *testing.T) {
	p := Retry{Attempts: 5, Sleep: func(context.Context, time.Duration) error { return nil }}
	calls := 0
	bad := BadInput(errors.New("malformed"))
	err := p.Do(context.Background(), nil, func(context.Context) error { calls++; return bad })
	if calls != 1 {
		t.Fatalf("non-retryable error retried: %d calls", calls)
	}
	if Classify(err) != ClassBadInput {
		t.Fatalf("class = %v, want bad input", Classify(err))
	}
}

// TestRetryExhausted: the last error surfaces after all attempts.
func TestRetryExhausted(t *testing.T) {
	p := Retry{Attempts: 3, Sleep: func(context.Context, time.Duration) error { return nil }}
	calls := 0
	err := p.Do(context.Background(), nil, func(context.Context) error {
		calls++
		return fmt.Errorf("boom %d", calls)
	})
	if calls != 3 {
		t.Fatalf("fn ran %d times, want 3", calls)
	}
	if err == nil || err.Error() != "boom 3" {
		t.Fatalf("err = %v, want the last attempt's error", err)
	}
}

// TestRetryCanceledMidBackoff: a context that ends during the backoff
// sleep aborts the loop with a timeout/cancel classification that
// still carries the root cause.
func TestRetryCanceledMidBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Retry{
		Attempts: 5,
		Sleep: func(ctx context.Context, _ time.Duration) error {
			cancel()
			return ctx.Err()
		},
	}
	root := errors.New("flaky")
	err := p.Do(ctx, nil, func(context.Context) error { return root })
	if Classify(err) != ClassCanceled {
		t.Fatalf("class = %v, want canceled", Classify(err))
	}
	if !errors.Is(err, root) {
		t.Fatalf("root cause lost: %v", err)
	}
}

// TestBreakerLifecycle drives closed → open → half-open → closed with
// a stepped clock.
func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(1000, 0)
	b := NewBreaker(BreakerConfig{Threshold: 3, Cooldown: time.Minute, Probes: 2,
		Now: func() time.Time { return now }})

	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker refused: %v", err)
		}
		b.Record(true)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v before threshold, want closed", b.State())
	}
	b.Record(true) // third consecutive failure
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after threshold, want open", b.State())
	}
	err := b.Allow()
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker returned %v, want ErrBreakerOpen", err)
	}
	if Classify(err) != ClassUnavailable {
		t.Fatalf("class = %v, want unavailable", Classify(err))
	}
	if ra := b.RetryAfter(); ra != time.Minute {
		t.Fatalf("RetryAfter = %v, want full cooldown", ra)
	}

	// Cooldown elapses → half-open, admitting exactly Probes calls.
	now = now.Add(time.Minute)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v after cooldown, want half-open", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open probe 1 refused: %v", err)
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open probe 2 refused: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("probe 3 should be refused, got %v", err)
	}
	b.Record(false)
	b.Record(false)
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v after successful probes, want closed", b.State())
	}

	// A half-open failure re-opens immediately.
	for i := 0; i < 3; i++ {
		b.Record(true)
	}
	now = now.Add(time.Minute)
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open probe refused: %v", err)
	}
	b.Record(true)
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after failed probe, want open", b.State())
	}
}

// TestAdmissionBackpressure: workers=1, queue=1 — the third concurrent
// caller is refused with ErrOverload, a queued caller gets the slot
// when released, and a queued caller whose context ends leaves cleanly.
func TestAdmissionBackpressure(t *testing.T) {
	a := NewAdmission(1, 1)
	rel1, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("first acquire: %v", err)
	}

	// Second caller queues in the background.
	got2 := make(chan error, 1)
	var rel2 func()
	go func() {
		r, err := a.Acquire(context.Background())
		rel2 = r
		got2 <- err
	}()
	waitDepth(t, a, 1, 1)

	// Third caller: queue full → immediate typed refusal.
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrOverload) {
		t.Fatalf("overload acquire returned %v, want ErrOverload", err)
	}

	// Releasing the slot admits the queued caller.
	rel1()
	if err := <-got2; err != nil {
		t.Fatalf("queued acquire: %v", err)
	}
	waitDepth(t, a, 1, 0)

	// A queued caller whose context is canceled leaves the queue.
	ctx, cancel := context.WithCancel(context.Background())
	got3 := make(chan error, 1)
	go func() { _, err := a.Acquire(ctx); got3 <- err }()
	waitDepth(t, a, 1, 1)
	cancel()
	if err := <-got3; !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled acquire returned %v, want context.Canceled", err)
	}
	waitDepth(t, a, 1, 0)
	rel2()
	waitDepth(t, a, 0, 0)

	// Double release must not free two slots.
	rel2()
	if active, _ := a.Depth(); active != 0 {
		t.Fatalf("double release drove active to %d", active)
	}
}

// waitDepth polls Depth until it matches (the queued goroutine races
// the assertion) with a deadline.
func waitDepth(t *testing.T, a *Admission, active, waiting int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		ac, wa := a.Depth()
		if ac == active && wa == waiting {
			return
		}
		time.Sleep(time.Millisecond)
	}
	ac, wa := a.Depth()
	t.Fatalf("depth = (%d,%d), want (%d,%d)", ac, wa, active, waiting)
}

// TestDrain: begin refuses new entrants, in-flight work finishes, Wait
// unblocks, and an expired budget reports the context error.
func TestDrain(t *testing.T) {
	d := NewDrain()
	exit, err := d.Enter()
	if err != nil {
		t.Fatalf("Enter: %v", err)
	}
	d.Begin()
	if _, err := d.Enter(); !errors.Is(err, ErrDraining) {
		t.Fatalf("Enter while draining returned %v, want ErrDraining", err)
	}
	if Classify(ErrDraining) != ClassUnavailable {
		t.Fatal("draining must classify unavailable")
	}

	// Budget expires with work still in flight.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := d.Wait(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Wait with in-flight work = %v, want deadline", err)
	}

	exit()
	exit() // idempotent
	ctx2, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := d.Wait(ctx2); err != nil {
		t.Fatalf("Wait after exit: %v", err)
	}
	if d.InFlight() != 0 {
		t.Fatalf("InFlight = %d after drain", d.InFlight())
	}
	d.Begin() // idempotent
}
