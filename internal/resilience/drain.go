package resilience

import (
	"context"
	"sync"

	"simprof/internal/obs"
)

var (
	obsDrainBegins = obs.NewCounter("resilience.drain_begins",
		"graceful drains initiated")
	obsDrainRejected = obs.NewCounter("resilience.drain_rejected",
		"requests refused because the service was draining")
)

// Drain is the graceful-shutdown state machine: running → draining →
// drained. While running, Enter admits work and counts it in flight;
// Begin flips to draining, after which Enter refuses with ErrDraining
// and Wait blocks until the last in-flight piece of work exits (or the
// caller's drain budget expires). Safe for concurrent use.
type Drain struct {
	mu       sync.Mutex
	draining bool
	inflight int
	idle     chan struct{} // closed when draining && inflight == 0
}

// NewDrain builds a drain controller in the running state.
func NewDrain() *Drain {
	return &Drain{idle: make(chan struct{})}
}

// Enter registers one unit of in-flight work. It returns a one-shot
// exit function, or ErrDraining once Begin has been called.
func (d *Drain) Enter() (exit func(), err error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.draining {
		obsDrainRejected.Inc()
		return nil, ErrDraining
	}
	d.inflight++
	var once sync.Once
	return func() {
		once.Do(func() {
			d.mu.Lock()
			d.inflight--
			if d.draining && d.inflight == 0 {
				close(d.idle)
			}
			d.mu.Unlock()
		})
	}, nil
}

// Begin flips the controller to draining: subsequent Enter calls fail
// with ErrDraining, in-flight work keeps running. Idempotent.
func (d *Drain) Begin() {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.draining {
		return
	}
	d.draining = true
	obsDrainBegins.Inc()
	if d.inflight == 0 {
		close(d.idle)
	}
}

// Draining reports whether Begin has been called.
func (d *Drain) Draining() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.draining
}

// InFlight reports the currently registered work count.
func (d *Drain) InFlight() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.inflight
}

// Wait blocks until every in-flight piece of work has exited after a
// Begin, or until ctx ends (the drain budget). Returns nil on a clean
// drain, the context error when the budget expired with work still
// running.
func (d *Drain) Wait(ctx context.Context) error {
	d.mu.Lock()
	idle := d.idle
	d.mu.Unlock()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
