package resilience

import (
	"context"
	"fmt"
	"sync"

	"simprof/internal/obs"
)

var (
	obsAdmitted = obs.NewCounter("resilience.admitted",
		"requests admitted to a bounded queue (running immediately or queued)")
	obsAdmitRejected = obs.NewCounter("resilience.admit_rejected",
		"requests refused with backpressure because the queue was full")
	obsAdmitAbandoned = obs.NewCounter("resilience.admit_abandoned",
		"queued requests whose caller gave up (deadline/cancel) before a slot freed")
	obsQueueDepth = obs.NewGauge("resilience.queue_depth",
		"requests currently waiting for an execution slot")
)

// Admission is bounded-queue admission control: at most `workers`
// callers hold execution slots at once, at most `queue` more wait for
// one, and everything beyond that is refused immediately with
// ErrOverload — backpressure instead of unbounded latency. Waiting
// callers leave (without leaking their place) when their context ends.
type Admission struct {
	mu      sync.Mutex
	cond    *sync.Cond
	workers int
	queue   int
	active  int
	waiting int
}

// NewAdmission builds an admission controller with the given execution
// and queue capacities. workers < 1 behaves as 1; queue < 0 as 0.
func NewAdmission(workers, queue int) *Admission {
	if workers < 1 {
		workers = 1
	}
	if queue < 0 {
		queue = 0
	}
	a := &Admission{workers: workers, queue: queue}
	a.cond = sync.NewCond(&a.mu)
	return a
}

// Acquire claims an execution slot, waiting in the bounded queue when
// all slots are busy. It returns a release function that MUST be
// called exactly once, or a typed refusal: ErrOverload when the queue
// is full, the context error when the caller's deadline/cancel fires
// while queued. The wait is condition-variable based; a context that
// ends wakes the waiter via an AfterFunc-style watcher goroutine that
// always terminates when Acquire returns.
func (a *Admission) Acquire(ctx context.Context) (release func(), err error) {
	a.mu.Lock()
	if a.active < a.workers {
		a.active++
		a.mu.Unlock()
		obsAdmitted.Inc()
		return a.releaseFn(), nil
	}
	if a.waiting >= a.queue {
		a.mu.Unlock()
		obsAdmitRejected.Inc()
		return nil, fmt.Errorf("%w (%d running, %d queued)", ErrOverload, a.workers, a.queue)
	}
	a.waiting++
	obsQueueDepth.Set(float64(a.waiting))
	obsAdmitted.Inc()

	// Wake this waiter when the context ends. The watcher exits as soon
	// as stop is closed, so Acquire never leaks a goroutine past its
	// own return.
	stop := make(chan struct{})
	done := ctx.Done()
	if done != nil {
		go func() {
			select {
			case <-done:
				a.mu.Lock()
				a.cond.Broadcast()
				a.mu.Unlock()
			case <-stop:
			}
		}()
	}
	defer close(stop)

	for a.active >= a.workers {
		if err := ctx.Err(); err != nil {
			a.waiting--
			obsQueueDepth.Set(float64(a.waiting))
			a.mu.Unlock()
			obsAdmitAbandoned.Inc()
			return nil, err
		}
		a.cond.Wait()
	}
	a.waiting--
	obsQueueDepth.Set(float64(a.waiting))
	a.active++
	a.mu.Unlock()
	return a.releaseFn(), nil
}

// releaseFn builds the one-shot slot release.
func (a *Admission) releaseFn() func() {
	var once sync.Once
	return func() {
		once.Do(func() {
			a.mu.Lock()
			a.active--
			a.cond.Broadcast()
			a.mu.Unlock()
		})
	}
}

// Ticket is two-phase admission for batched execution: Enqueue claims
// capacity without blocking (the refusal — 429 — happens at enqueue
// time), Start blocks until an execution slot frees (the batch flush
// promotes queued items as slots open), Done releases whatever the
// ticket holds. The accounting is exactly Acquire's: at most `workers`
// tickets are started at once, at most `queue` more sit enqueued, and
// Enqueue beyond that refuses with ErrOverload immediately.
type Ticket struct {
	a     *Admission
	mu    sync.Mutex
	state int // ticketQueued | ticketActive | ticketDone
}

const (
	ticketQueued = iota
	ticketActive
	ticketDone
)

// Enqueue claims admission capacity without blocking: an execution
// slot when one is free, else a bounded queue position, else an
// immediate ErrOverload. The returned ticket must be Done exactly once
// (Start in between is optional but required before doing the work it
// gates).
func (a *Admission) Enqueue() (*Ticket, error) {
	a.mu.Lock()
	if a.active < a.workers {
		a.active++
		a.mu.Unlock()
		obsAdmitted.Inc()
		return &Ticket{a: a, state: ticketActive}, nil
	}
	if a.waiting >= a.queue {
		a.mu.Unlock()
		obsAdmitRejected.Inc()
		return nil, fmt.Errorf("%w (%d running, %d queued)", ErrOverload, a.workers, a.queue)
	}
	a.waiting++
	obsQueueDepth.Set(float64(a.waiting))
	a.mu.Unlock()
	obsAdmitted.Inc()
	return &Ticket{a: a, state: ticketQueued}, nil
}

// Start blocks until the ticket holds an execution slot, or until ctx
// ends — in which case the ticket's queue position is released and the
// context error returned (the ticket is then spent; Done is a no-op).
// A ticket that claimed a slot at Enqueue time returns immediately.
func (t *Ticket) Start(ctx context.Context) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.state != ticketQueued {
		return nil
	}
	a := t.a
	a.mu.Lock()

	// Wake this waiter when the context ends, exactly as Acquire does.
	stop := make(chan struct{})
	if done := ctx.Done(); done != nil {
		go func() {
			select {
			case <-done:
				a.mu.Lock()
				a.cond.Broadcast()
				a.mu.Unlock()
			case <-stop:
			}
		}()
	}
	defer close(stop)

	for a.active >= a.workers {
		if err := ctx.Err(); err != nil {
			a.waiting--
			obsQueueDepth.Set(float64(a.waiting))
			a.mu.Unlock()
			obsAdmitAbandoned.Inc()
			t.state = ticketDone
			return err
		}
		a.cond.Wait()
	}
	a.waiting--
	obsQueueDepth.Set(float64(a.waiting))
	a.active++
	a.mu.Unlock()
	t.state = ticketActive
	return nil
}

// Done releases the ticket's slot or queue position. Idempotent.
func (t *Ticket) Done() {
	t.mu.Lock()
	defer t.mu.Unlock()
	a := t.a
	switch t.state {
	case ticketActive:
		a.mu.Lock()
		a.active--
		a.cond.Broadcast()
		a.mu.Unlock()
	case ticketQueued:
		a.mu.Lock()
		a.waiting--
		obsQueueDepth.Set(float64(a.waiting))
		a.cond.Broadcast()
		a.mu.Unlock()
	}
	t.state = ticketDone
}

// Depth reports (active, waiting) for health endpoints and tests.
func (a *Admission) Depth() (active, waiting int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.active, a.waiting
}
