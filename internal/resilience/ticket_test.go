package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestTicketEnqueueOverload(t *testing.T) {
	a := NewAdmission(1, 1)
	t1, err := a.Enqueue() // takes the slot
	if err != nil {
		t.Fatalf("first Enqueue: %v", err)
	}
	t2, err := a.Enqueue() // takes the queue position
	if err != nil {
		t.Fatalf("second Enqueue: %v", err)
	}
	if _, err := a.Enqueue(); !errors.Is(err, ErrOverload) {
		t.Fatalf("third Enqueue err = %v, want ErrOverload", err)
	}
	t1.Done()
	t2.Done()
	if act, wait := a.Depth(); act != 0 || wait != 0 {
		t.Fatalf("Depth after Done = (%d, %d), want (0, 0)", act, wait)
	}
}

func TestTicketStartBlocksUntilSlotFrees(t *testing.T) {
	a := NewAdmission(1, 1)
	t1, err := a.Enqueue()
	if err != nil {
		t.Fatalf("first Enqueue: %v", err)
	}
	t2, err := a.Enqueue()
	if err != nil {
		t.Fatalf("second Enqueue: %v", err)
	}
	started := make(chan error, 1)
	go func() { started <- t2.Start(context.Background()) }()
	select {
	case err := <-started:
		t.Fatalf("Start returned %v before the slot freed", err)
	case <-time.After(20 * time.Millisecond):
	}
	t1.Done()
	select {
	case err := <-started:
		if err != nil {
			t.Fatalf("Start after slot freed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Start never unblocked after Done")
	}
	t2.Done()
	if act, wait := a.Depth(); act != 0 || wait != 0 {
		t.Fatalf("Depth = (%d, %d), want (0, 0)", act, wait)
	}
}

func TestTicketStartCanceledReleasesQueuePosition(t *testing.T) {
	a := NewAdmission(1, 1)
	t1, _ := a.Enqueue()
	t2, err := a.Enqueue()
	if err != nil {
		t.Fatalf("second Enqueue: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := t2.Start(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("Start err = %v, want context.Canceled", err)
	}
	// The abandoned ticket's queue position must be free again...
	if _, wait := a.Depth(); wait != 0 {
		t.Fatalf("waiting = %d after abandoned Start, want 0", wait)
	}
	// ...and Done on the spent ticket must not double-release.
	t2.Done()
	t2.Done()
	if act, _ := a.Depth(); act != 1 {
		t.Fatalf("active = %d, want 1 (only the first ticket)", act)
	}
	t1.Done()
	if act, wait := a.Depth(); act != 0 || wait != 0 {
		t.Fatalf("Depth = (%d, %d), want (0, 0)", act, wait)
	}
}

func TestTicketStartImmediateWhenSlotHeld(t *testing.T) {
	a := NewAdmission(2, 0)
	tk, err := a.Enqueue()
	if err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	if err := tk.Start(context.Background()); err != nil {
		t.Fatalf("Start on an active ticket: %v", err)
	}
	tk.Done()
	tk.Done() // idempotent
	if act, wait := a.Depth(); act != 0 || wait != 0 {
		t.Fatalf("Depth = (%d, %d), want (0, 0)", act, wait)
	}
}

func TestTicketInteroperatesWithAcquire(t *testing.T) {
	a := NewAdmission(1, 0)
	tk, err := a.Enqueue()
	if err != nil {
		t.Fatalf("Enqueue: %v", err)
	}
	// The ticket holds the only slot, so Acquire must refuse.
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrOverload) {
		t.Fatalf("Acquire err = %v, want ErrOverload while ticket holds the slot", err)
	}
	tk.Done()
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire after ticket Done: %v", err)
	}
	release()
}
