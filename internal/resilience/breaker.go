package resilience

import (
	"fmt"
	"sync"
	"time"

	"simprof/internal/obs"
)

var (
	obsBreakerOpens = obs.NewCounter("resilience.breaker_opens",
		"circuit breaker transitions into the open state")
	obsBreakerRejects = obs.NewCounter("resilience.breaker_rejects",
		"calls refused by an open circuit breaker")
	obsBreakerCloses = obs.NewCounter("resilience.breaker_closes",
		"circuit breaker recoveries back to closed")
	obsBreakerVerdicts = obs.NewCounterVec("resilience.breaker_verdicts",
		"outcomes fed to the breaker, by verdict and the state receiving it",
		"verdict", "state")
)

// BreakerState is the classic three-state circuit.
type BreakerState int

const (
	// BreakerClosed: calls flow; consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: calls are refused until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: a limited number of probe calls test recovery.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerConfig tunes a Breaker. The zero value selects the defaults
// noted per field.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that opens the
	// circuit (default 5).
	Threshold int
	// Cooldown is how long the circuit stays open before allowing
	// half-open probes (default 5s).
	Cooldown time.Duration
	// Probes is how many consecutive half-open successes close the
	// circuit again (default 1). Any half-open failure re-opens it.
	Probes int
	// Now is the injectable clock (default time.Now) so tests step
	// time instead of sleeping.
	Now func() time.Time
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Threshold <= 0 {
		c.Threshold = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5 * time.Second
	}
	if c.Probes <= 0 {
		c.Probes = 1
	}
	return c
}

// Breaker is a circuit breaker around one dependency (simprofd wraps
// the profile worker pool with one): repeated failures open the
// circuit so a struggling dependency stops receiving load, a cooldown
// later a bounded number of probes test recovery, and sustained
// success closes it. Safe for concurrent use.
//
// The breaker does not decide what counts as a failure — callers feed
// it verdicts via Record, typically counting ClassInternal and
// ClassTimeout but not the caller-at-fault classes (a flood of
// malformed uploads must not take the service down for everyone).
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    BreakerState
	failures int       // consecutive failures (closed) / probe failures (half-open)
	probeOK  int       // consecutive half-open successes
	inFlight int       // admitted half-open probes not yet recorded
	openedAt time.Time // when the circuit last opened
}

// NewBreaker builds a breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return &Breaker{cfg: cfg.withDefaults()}
}

// State returns the current state, advancing open → half-open when the
// cooldown has elapsed.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advance()
	return b.state
}

// advance moves open → half-open once the cooldown elapses. Callers
// hold b.mu.
func (b *Breaker) advance() {
	if b.state == BreakerOpen && clock(b.cfg.Now).now().Sub(b.openedAt) >= b.cfg.Cooldown {
		b.state = BreakerHalfOpen
		b.probeOK = 0
		b.inFlight = 0
	}
}

// Allow asks whether a call may proceed. Open circuits refuse with
// ErrBreakerOpen wrapped with the remaining cooldown; half-open
// circuits admit at most Probes concurrent probe calls and refuse the
// rest. Every admitted call must be matched by exactly one Record.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advance()
	switch b.state {
	case BreakerOpen:
		obsBreakerRejects.Inc()
		left := b.cfg.Cooldown - clock(b.cfg.Now).now().Sub(b.openedAt)
		return fmt.Errorf("%w (retry in %v)", ErrBreakerOpen, left.Round(time.Millisecond))
	case BreakerHalfOpen:
		if b.inFlight >= b.cfg.Probes {
			obsBreakerRejects.Inc()
			return fmt.Errorf("%w (half-open, probes in flight)", ErrBreakerOpen)
		}
		b.inFlight++
	}
	return nil
}

// Record reports the outcome of an allowed call. failure=true counts
// toward opening (or re-opening) the circuit; failure=false resets the
// failure streak and, in half-open, counts toward closing.
func (b *Breaker) Record(failure bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advance()
	verdict := "success"
	if failure {
		verdict = "failure"
	}
	obsBreakerVerdicts.With(verdict, b.state.String()).Inc()
	switch b.state {
	case BreakerClosed:
		if !failure {
			b.failures = 0
			return
		}
		b.failures++
		if b.failures >= b.cfg.Threshold {
			b.open()
		}
	case BreakerHalfOpen:
		if b.inFlight > 0 {
			b.inFlight--
		}
		if failure {
			b.open()
			return
		}
		b.probeOK++
		if b.probeOK >= b.cfg.Probes {
			b.state = BreakerClosed
			b.failures = 0
			obsBreakerCloses.Inc()
		}
	case BreakerOpen:
		// A straggler finishing after the circuit re-opened: outcome is
		// stale, ignore it.
	}
}

// open transitions to the open state. Callers hold b.mu.
func (b *Breaker) open() {
	b.state = BreakerOpen
	b.openedAt = clock(b.cfg.Now).now()
	b.failures = 0
	b.probeOK = 0
	b.inFlight = 0
	obsBreakerOpens.Inc()
}

// RetryAfter returns how long callers should wait before retrying: the
// remaining cooldown when open, zero otherwise.
func (b *Breaker) RetryAfter() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.advance()
	if b.state != BreakerOpen {
		return 0
	}
	left := b.cfg.Cooldown - clock(b.cfg.Now).now().Sub(b.openedAt)
	if left < 0 {
		left = 0
	}
	return left
}
