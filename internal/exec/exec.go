// Package exec is the shared operation-cost layer between the Spark and
// Hadoop engines: it describes what a user/framework function costs per
// record (instructions, base CPI, memory-access shape) and emits the
// corresponding instruction segments onto a jvm.ThreadBuilder, chunked
// so that profiler snapshots observe the operation many times per
// sampling unit. The working-set rules are where input characteristics
// (size, key cardinality, skew) become cache behaviour — the causal link
// behind the paper's input-sensitivity analysis.
package exec

import (
	"fmt"
	"math/rand/v2"

	"simprof/internal/cpu"
	"simprof/internal/jvm"
	"simprof/internal/model"
	"simprof/internal/stats"
)

// PartStats describes the data flowing through one partition of one
// operation.
type PartStats struct {
	Records      int64
	Bytes        int64
	DistinctKeys int64
	Skew         float64 // key-popularity skew (0 = uniform)
}

// AvgRecordBytes returns the mean record size.
func (p PartStats) AvgRecordBytes() float64 {
	if p.Records == 0 {
		return 0
	}
	return float64(p.Bytes) / float64(p.Records)
}

// WSKind selects how an operation's working set is derived.
type WSKind uint8

// Working-set rules.
const (
	WSFixed          WSKind = iota // Fixed bytes, independent of data
	WSPartitionBytes               // the partition's bytes (scans, sorts)
	WSDistinctKeys                 // BytesPerKey × distinct keys (hash maps)
	WSRecord                       // a single record (pure streaming)
)

// WorkingSet resolves an operation's working set from partition stats.
type WorkingSet struct {
	Kind        WSKind
	Fixed       uint64  // WSFixed: bytes
	Scale       float64 // multiplier (default 1)
	BytesPerKey uint64  // WSDistinctKeys: bytes per entry (default 64)
	// SkewShrink, when positive, shrinks the working set as key skew
	// grows: hot keys concentrate accesses, improving locality. The
	// working set is divided by (1 + SkewShrink·skew).
	SkewShrink float64
}

// Resolve computes the working set in bytes.
func (w WorkingSet) Resolve(p PartStats) uint64 {
	scale := w.Scale
	if scale == 0 {
		scale = 1
	}
	var ws float64
	switch w.Kind {
	case WSFixed:
		ws = float64(w.Fixed)
	case WSPartitionBytes:
		ws = float64(p.Bytes)
	case WSDistinctKeys:
		bpk := w.BytesPerKey
		if bpk == 0 {
			bpk = 64
		}
		ws = float64(p.DistinctKeys) * float64(bpk)
	case WSRecord:
		ws = p.AvgRecordBytes()
	default:
		panic(fmt.Sprintf("exec: unknown WSKind %d", w.Kind))
	}
	ws *= scale
	if w.SkewShrink > 0 && p.Skew > 0 {
		ws /= 1 + w.SkewShrink*p.Skew
	}
	if ws < 1024 {
		ws = 1024
	}
	return uint64(ws)
}

// FuncSpec is the cost descriptor of one operation (a user lambda or a
// framework routine). Class/Method become the stack frame the profiler
// observes; Kind feeds phase-type classification.
type FuncSpec struct {
	Class  string
	Method string
	Kind   model.Kind

	InstrPerRec float64 // instructions per input record
	BaseCPI     float64 // CPI with a quiet memory system
	Pattern     cpu.PatternKind
	WS          WorkingSet
	Refs        float64 // memory refs per instruction (default 0.3)

	// Dataflow shape: output records per input record and output record
	// size (0 keeps the input's average record size).
	Fanout      float64
	OutRecBytes float64
	// OutDistinct overrides the output distinct-key count (0 keeps the
	// input's, clamped to output records).
	OutDistinct int64
	// Selectivity scales output records for filters (applied after
	// Fanout; default 1).
	Selectivity float64
	// Materialize marks operations that fully build their output before
	// anything downstream iterates it (GraphX vertex ops, cached RDDs):
	// the Spark engine emits them as their own block instead of
	// pipelining them into the surrounding iterator chain, so they form
	// their own phase.
	Materialize bool
}

func (f FuncSpec) refs() float64 {
	if f.Refs == 0 {
		return 0.3
	}
	return f.Refs
}

// Out propagates partition statistics through the operation.
func (f FuncSpec) Out(in PartStats) PartStats {
	fanout := f.Fanout
	if fanout == 0 {
		fanout = 1
	}
	sel := f.Selectivity
	if sel == 0 {
		sel = 1
	}
	out := PartStats{Skew: in.Skew}
	out.Records = int64(float64(in.Records) * fanout * sel)
	recBytes := f.OutRecBytes
	if recBytes == 0 {
		recBytes = in.AvgRecordBytes()
	}
	out.Bytes = int64(float64(out.Records) * recBytes)
	out.DistinctKeys = in.DistinctKeys
	if f.OutDistinct > 0 {
		out.DistinctKeys = f.OutDistinct
	}
	if out.DistinctKeys > out.Records {
		out.DistinctKeys = out.Records
	}
	return out
}

// GCConfig models the managed runtime's garbage collector: executor
// threads allocate as they run, and every YoungGenBytes of allocation
// triggers a collection pause whose work appears in the profile under
// GC frames. The paper profiles JVM workloads, where GC is a visible
// part of every phase's snapshot mix; the model is opt-in because the
// baseline evaluation (EXPERIMENTS.md) is calibrated without it.
type GCConfig struct {
	Enabled bool
	// AllocBytesPerInstr is the allocation rate (≈0.2–0.4 B/instr for
	// typical JVM analytics code). Default 0.25.
	AllocBytesPerInstr float64
	// YoungGenBytes is the young-generation size; a minor collection
	// runs each time this much has been allocated. Default 256MB.
	YoungGenBytes int64
	// PauseInstr is the work of one collection, in instructions
	// attributed to the profiled thread. Default 4M.
	PauseInstr uint64
}

func (g GCConfig) withDefaults() GCConfig {
	if g.AllocBytesPerInstr <= 0 {
		g.AllocBytesPerInstr = 0.25
	}
	if g.YoungGenBytes <= 0 {
		g.YoungGenBytes = 256 << 20
	}
	if g.PauseInstr == 0 {
		g.PauseInstr = 4_000_000
	}
	return g
}

// Emitter chunks operations into segments on a thread builder. One
// Emitter per engine run; it owns the jitter RNG so that "executed code
// difference" variance is deterministic per seed.
type Emitter struct {
	rng *rand.Rand
	// ChunkInstr is the target segment length; operations are split
	// into segments of roughly this size (paper-scale: a few million
	// instructions, several per snapshot period).
	ChunkInstr uint64
	// Jitter is the multiplicative spread applied to per-chunk working
	// sets and instruction counts (default 0.15).
	Jitter float64
	// GC, when enabled, injects collection pauses driven by the
	// allocation volume of the emitted work.
	GC        GCConfig
	allocated int64
}

// NewEmitter builds an emitter.
func NewEmitter(seed uint64, chunkInstr uint64) *Emitter {
	if chunkInstr == 0 {
		chunkInstr = 1_000_000
	}
	return &Emitter{rng: stats.NewRNG(seed), ChunkInstr: chunkInstr, Jitter: 0.05}
}

// EmitOp runs the operation over a partition as its own (non-pipelined)
// block and returns the output stats. A zero instruction cost emits
// nothing but still propagates stats.
func (e *Emitter) EmitOp(b *jvm.ThreadBuilder, vm *jvm.VM, f FuncSpec, in PartStats) PartStats {
	e.EmitGroup(b, vm, []OpRun{{Spec: f, Stats: in}}, false)
	return f.Out(in)
}

// EmitOpNested is EmitOp with extra inner frames below the op frame
// (e.g. Aggregator.combineValuesByKey → ExternalAppendOnlyMap.insertAll):
// the innermost frame does the work.
func (e *Emitter) EmitOpNested(b *jvm.ThreadBuilder, vm *jvm.VM, f FuncSpec, inner []FuncSpec, in PartStats) PartStats {
	e.EmitGroup(b, vm, []OpRun{{Spec: f, Inner: inner, Stats: in}}, false)
	return f.Out(in)
}

// OpRun is one operation inside an interleaved pipeline group.
type OpRun struct {
	Spec  FuncSpec
	Inner []FuncSpec // nested frames under Spec's frame (innermost last)
	// Total overrides the instruction count (0 → InstrPerRec×Stats.Records).
	Total uint64
	Stats PartStats
}

func (r OpRun) total() uint64 {
	if r.Total > 0 {
		return r.Total
	}
	return uint64(r.Spec.InstrPerRec * float64(r.Stats.Records))
}

// EmitGroup emits a group of operations *interleaved*, the way record-
// at-a-time loops execute: chunks of the member operations alternate in
// proportion to their total cost, so a profiler snapshot window over the
// group observes all of their stacks mixed. This is what makes a
// pipelined stage form a single mixed phase (the paper's wc_sp anatomy,
// Fig. 14) instead of one phase per operation.
//
// With nested=true the group models Spark's iterator chain, where the
// consumer's frames are live above the producer's whenever the producer
// runs (the action pulls the final RDD, which pulls its parent, ...):
// a chunk of member i carries the frames of members i..n-1 with the
// consumers outermost. Later list members are therefore the consumers.
// With nested=false members are independent leaves under the caller's
// current stack (Hadoop's Mapper.run calling reader/map/collect in
// turn). Sawtooth depth advances per member chunk as usual.
func (e *Emitter) EmitGroup(b *jvm.ThreadBuilder, vm *jvm.VM, runs []OpRun, nested bool) {
	type state struct {
		run      OpRun
		frames   []model.MethodID
		total    uint64
		chunks   int
		emitted  int // chunks emitted
		emittedI uint64
		baseWS   uint64
	}
	var sts []*state
	for _, r := range runs {
		total := r.total()
		if total == 0 {
			continue
		}
		st := &state{run: r, total: total, baseWS: r.Spec.WS.Resolve(r.Stats)}
		st.chunks = int(total / e.ChunkInstr)
		if st.chunks < 1 {
			st.chunks = 1
		}
		st.frames = append(st.frames, vm.Table.Intern(r.Spec.Class, r.Spec.Method, r.Spec.Kind))
		for _, in := range r.Inner {
			st.frames = append(st.frames, vm.Table.Intern(in.Class, in.Method, in.Kind))
		}
		sts = append(sts, st)
	}
	if nested {
		// Prepend every consumer's frames (later members) above each
		// member's own frames, outermost consumer first.
		own := make([][]model.MethodID, len(sts))
		for i, st := range sts {
			own[i] = st.frames
		}
		for i := range sts {
			var frames []model.MethodID
			for j := len(sts) - 1; j >= i; j-- {
				frames = append(frames, own[j]...)
			}
			sts[i].frames = frames
		}
	}
	for {
		// Pick the member furthest behind in fractional progress.
		var next *state
		best := 2.0
		for _, st := range sts {
			if st.emitted >= st.chunks {
				continue
			}
			if p := float64(st.emitted) / float64(st.chunks); p < best {
				best = p
				next = st
			}
		}
		if next == nil {
			return
		}
		e.emitChunkOf(b, vm, next.run.Spec, next.baseWS, next.emitted, next.chunks, next.total, &next.emittedI, next.frames)
		next.emitted++
	}
}

// helperLeaves are the low-level JVM callees an operation of each kind
// spends its leaf time in. Real profiles are full of them (string
// splitting, hash-map probing, checksumming, comparator calls), and they
// matter statistically: they diversify the snapshot-count feature
// vectors so that units of one behaviour form a continuous cloud rather
// than a handful of identical lattice points that k-means would
// "perfectly" split into spurious phases.
var helperLeaves = map[model.Kind][][2]string{
	model.KindMap: {
		{"java.lang.String", "split"},
		{"java.lang.String", "hashCode"},
		{"scala.collection.Iterator$$anon$11", "next"},
		{"java.lang.Character", "isWhitespace"},
	},
	model.KindReduce: {
		{"java.util.HashMap", "getNode"},
		{"org.apache.spark.util.collection.AppendOnlyMap", "changeValue"},
		{"java.lang.Long", "equals"},
		{"scala.Function2", "apply"},
	},
	model.KindSort: {
		{"org.apache.hadoop.util.IndexedSortable", "compare"},
		{"org.apache.hadoop.util.IndexedSortable", "swap"},
		{"java.util.Arrays", "copyOfRange"},
	},
	model.KindIO: {
		{"java.io.FilterInputStream", "read"},
		{"org.apache.hadoop.util.DataChecksum", "update"},
		{"java.io.DataOutputStream", "write"},
		{"java.util.zip.Deflater", "deflate"},
	},
	model.KindFramework: {
		{"java.lang.Object", "hashCode"},
		{"sun.misc.Unsafe", "copyMemory"},
	},
	model.KindOther: {
		{"java.lang.Object", "hashCode"},
	},
}

// helperChance is the fraction of chunks that are snapshotted inside a
// helper callee rather than in the operation's own frame.
const helperChance = 0.7

// emitChunkOf emits chunk idx of an operation split into chunks pieces.
func (e *Emitter) emitChunkOf(b *jvm.ThreadBuilder, vm *jvm.VM, f FuncSpec, baseWS uint64, idx, chunks int, total uint64, emitted *uint64, frames []model.MethodID) {
	per := total / uint64(chunks)
	instr := per
	if idx == chunks-1 {
		instr = total - *emitted
	} else if e.Jitter > 0 {
		instr = uint64(float64(per) * (1 - e.Jitter + 2*e.Jitter*e.rng.Float64()))
		if *emitted+instr > total {
			instr = total - *emitted
		}
	}
	if instr == 0 {
		return
	}
	ws := baseWS
	if e.Jitter > 0 {
		ws = uint64(float64(ws) * (1 - e.Jitter + 2*e.Jitter*e.rng.Float64()))
		if ws < 1024 {
			ws = 1024
		}
	}
	access := cpu.Access{Kind: f.Pattern, WorkingSet: ws, Refs: f.refs()}
	if f.Pattern == cpu.PatternSawtooth && chunks > 1 {
		access.Depth = float64(idx) / float64(chunks-1)
	}
	depth := len(frames)
	for _, fr := range frames {
		b.Push(fr)
	}
	if hs := helperLeaves[f.Kind]; len(hs) > 0 && e.rng.Float64() < helperChance {
		h := hs[e.rng.IntN(len(hs))]
		b.Push(vm.Table.Intern(h[0], h[1], f.Kind))
		depth++
	}
	b.Exec(instr, f.BaseCPI, access)
	b.PopN(depth)
	*emitted += instr

	if e.GC.Enabled {
		gc := e.GC.withDefaults()
		e.allocated += int64(float64(instr) * gc.AllocBytesPerInstr)
		if e.allocated >= gc.YoungGenBytes {
			e.allocated -= gc.YoungGenBytes
			e.emitGC(b, vm, gc)
		}
	}
}

// emitGC injects one minor-collection pause at the current stack
// position: the collector's frames go on top (what a profiler snapshot
// observes during the pause), and the evacuation sweep touches the
// young generation sequentially.
func (e *Emitter) emitGC(b *jvm.ThreadBuilder, vm *jvm.VM, gc GCConfig) {
	b.Push(vm.Table.Intern("sun.jvm.GCTaskThread", "run", model.KindOther))
	b.Push(vm.Table.Intern("sun.jvm.G1ParEvacuateFollowersClosure", "do_void", model.KindOther))
	b.Exec(gc.PauseInstr, 0.9, cpu.Access{
		Kind:       cpu.PatternSequential,
		WorkingSet: uint64(gc.YoungGenBytes),
		Refs:       0.35,
	})
	b.PopN(2)
}

// EmitRaw emits exactly total instructions of the operation, regardless
// of its per-record cost — used for IO and framework routines whose cost
// is derived from byte volume rather than record count. in drives the
// working-set resolution only.
func (e *Emitter) EmitRaw(b *jvm.ThreadBuilder, vm *jvm.VM, f FuncSpec, total uint64, in PartStats) {
	e.EmitGroup(b, vm, []OpRun{{Spec: f, Total: total, Stats: in}}, false)
}
