package exec

import (
	"testing"

	"simprof/internal/cpu"
	"simprof/internal/jvm"
	"simprof/internal/model"
)

func part(records, bytes, distinct int64, skew float64) PartStats {
	return PartStats{Records: records, Bytes: bytes, DistinctKeys: distinct, Skew: skew}
}

func TestWorkingSetResolve(t *testing.T) {
	p := part(1000, 1<<20, 100, 0)
	cases := []struct {
		ws   WorkingSet
		want uint64
	}{
		{WorkingSet{Kind: WSFixed, Fixed: 4096}, 4096},
		{WorkingSet{Kind: WSPartitionBytes}, 1 << 20},
		{WorkingSet{Kind: WSPartitionBytes, Scale: 0.5}, 1 << 19},
		{WorkingSet{Kind: WSDistinctKeys}, 6400}, // 100 × default 64
		{WorkingSet{Kind: WSDistinctKeys, BytesPerKey: 100}, 10000},
		{WorkingSet{Kind: WSRecord}, 1048}, // avg record ≈ 1048B
	}
	for i, c := range cases {
		if got := c.ws.Resolve(p); got != c.want {
			t.Errorf("case %d: Resolve=%d want %d", i, got, c.want)
		}
	}
	// Floor at 1KB.
	if got := (WorkingSet{Kind: WSFixed, Fixed: 10}).Resolve(p); got != 1024 {
		t.Errorf("floor: %d", got)
	}
}

func TestWorkingSetSkewShrink(t *testing.T) {
	ws := WorkingSet{Kind: WSDistinctKeys, BytesPerKey: 64, SkewShrink: 0.5}
	uniform := ws.Resolve(part(1000, 0, 1000, 0))
	skewed := ws.Resolve(part(1000, 0, 1000, 2.0))
	if skewed >= uniform {
		t.Fatalf("skew should shrink working set: %d vs %d", skewed, uniform)
	}
	if skewed != uint64(float64(uniform)/2) {
		t.Fatalf("shrink factor wrong: %d vs %d", skewed, uniform)
	}
}

func TestFuncSpecOut(t *testing.T) {
	in := part(1000, 100000, 500, 1.0)
	f := FuncSpec{Fanout: 3, OutRecBytes: 10}
	out := f.Out(in)
	if out.Records != 3000 || out.Bytes != 30000 {
		t.Fatalf("fanout out=%+v", out)
	}
	if out.Skew != in.Skew || out.DistinctKeys != 500 {
		t.Fatalf("propagation wrong: %+v", out)
	}
	sel := FuncSpec{Selectivity: 0.01}
	o2 := sel.Out(in)
	if o2.Records != 10 {
		t.Fatalf("selectivity out=%d", o2.Records)
	}
	if o2.DistinctKeys != 10 { // clamped to records
		t.Fatalf("distinct not clamped: %d", o2.DistinctKeys)
	}
	ov := FuncSpec{OutDistinct: 42}
	if got := ov.Out(in).DistinctKeys; got != 42 {
		t.Fatalf("OutDistinct=%d", got)
	}
}

func buildOne(t *testing.T, f FuncSpec, in PartStats, chunk uint64) []cpu.Segment {
	t.Helper()
	vm := jvm.NewVM()
	b := vm.SpawnThread("w").PushM("T", "run", model.KindFramework)
	em := NewEmitter(1, chunk)
	em.EmitOp(b, vm, f, in)
	return b.Thread().Segments
}

func TestEmitOpTotalInstrPreserved(t *testing.T) {
	f := FuncSpec{
		Class: "C", Method: "m", Kind: model.KindMap,
		InstrPerRec: 100, BaseCPI: 0.5,
		Pattern: cpu.PatternSequential,
		WS:      WorkingSet{Kind: WSFixed, Fixed: 1 << 20},
	}
	in := part(100000, 1<<20, 100, 0)
	segs := buildOne(t, f, in, 1_000_000)
	var total uint64
	for _, s := range segs {
		total += s.Instr
		// Thread root + op frame, optionally a helper leaf below.
		if s.Stack.Leaf() == model.NoMethod || len(s.Stack) < 2 || len(s.Stack) > 3 {
			t.Fatalf("bad stack %v", s.Stack)
		}
	}
	if total != 10_000_000 {
		t.Fatalf("total instr=%d want 10M", total)
	}
	if len(segs) != 10 {
		t.Fatalf("chunks=%d want 10", len(segs))
	}
}

func TestEmitOpJitterVariesChunks(t *testing.T) {
	f := FuncSpec{
		Class: "C", Method: "m", Kind: model.KindMap,
		InstrPerRec: 100, BaseCPI: 0.5,
		Pattern: cpu.PatternRandom,
		WS:      WorkingSet{Kind: WSFixed, Fixed: 1 << 20},
	}
	segs := buildOne(t, f, part(100000, 1<<20, 100, 0), 1_000_000)
	sawDifferentWS := false
	for _, s := range segs[1:] {
		if s.Access.WorkingSet != segs[0].Access.WorkingSet {
			sawDifferentWS = true
		}
	}
	if !sawDifferentWS {
		t.Fatal("jitter did not vary working sets")
	}
}

func TestEmitOpSawtoothDepthRamps(t *testing.T) {
	f := FuncSpec{
		Class: "Q", Method: "sort", Kind: model.KindSort,
		InstrPerRec: 100, BaseCPI: 0.6,
		Pattern: cpu.PatternSawtooth,
		WS:      WorkingSet{Kind: WSPartitionBytes},
	}
	segs := buildOne(t, f, part(100000, 64<<20, 100, 0), 1_000_000)
	if len(segs) < 5 {
		t.Fatalf("chunks=%d", len(segs))
	}
	if segs[0].Access.Depth != 0 {
		t.Fatalf("first depth=%v", segs[0].Access.Depth)
	}
	if segs[len(segs)-1].Access.Depth != 1 {
		t.Fatalf("last depth=%v", segs[len(segs)-1].Access.Depth)
	}
	for i := 1; i < len(segs); i++ {
		if segs[i].Access.Depth < segs[i-1].Access.Depth {
			t.Fatal("depth not monotone")
		}
	}
}

func TestEmitOpZeroCost(t *testing.T) {
	vm := jvm.NewVM()
	b := vm.SpawnThread("w").PushM("T", "run", model.KindFramework)
	em := NewEmitter(1, 0)
	out := em.EmitOp(b, vm, FuncSpec{Class: "C", Method: "m", Fanout: 2}, part(10, 100, 5, 0))
	if len(b.Thread().Segments) != 0 {
		t.Fatal("zero-cost op emitted segments")
	}
	if out.Records != 20 {
		t.Fatal("stats not propagated for zero-cost op")
	}
}

func TestEmitOpNestedFrames(t *testing.T) {
	vm := jvm.NewVM()
	b := vm.SpawnThread("w").PushM("T", "run", model.KindFramework)
	em := NewEmitter(1, 1_000_000)
	outer := FuncSpec{Class: "Agg", Method: "combine", Kind: model.KindReduce,
		InstrPerRec: 10, BaseCPI: 0.6, Pattern: cpu.PatternRandom,
		WS: WorkingSet{Kind: WSFixed, Fixed: 1 << 20}}
	inner := []FuncSpec{{Class: "Map", Method: "insertAll", Kind: model.KindReduce}}
	em.EmitOpNested(b, vm, outer, inner, part(100000, 1<<20, 100, 0))
	segs := b.Thread().Segments
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	// Every segment must have the nested frames (thread, Agg, Map);
	// some segments additionally carry a helper leaf.
	sawBare := false
	for _, seg := range segs {
		if len(seg.Stack) < 3 || len(seg.Stack) > 4 {
			t.Fatalf("stack depth=%d want 3-4", len(seg.Stack))
		}
		if got := vm.Table.FQN(seg.Stack[1]); got != "Agg.combine" {
			t.Fatalf("frame 1 = %s", got)
		}
		if got := vm.Table.FQN(seg.Stack[2]); got != "Map.insertAll" {
			t.Fatalf("frame 2 = %s", got)
		}
		if len(seg.Stack) == 3 {
			sawBare = true
		}
	}
	if !sawBare {
		t.Fatal("no segment snapshotted in the op frame itself")
	}
	if b.Depth() != 1 {
		t.Fatalf("frames not popped: depth=%d", b.Depth())
	}
}

func TestEmitRaw(t *testing.T) {
	vm := jvm.NewVM()
	b := vm.SpawnThread("w").PushM("T", "run", model.KindFramework)
	em := NewEmitter(1, 500_000)
	f := FuncSpec{Class: "IO", Method: "read", Kind: model.KindIO, BaseCPI: 1.0,
		Pattern: cpu.PatternSequential, WS: WorkingSet{Kind: WSFixed, Fixed: 4 << 20}}
	em.EmitRaw(b, vm, f, 2_000_000, part(1, 1, 1, 0))
	var total uint64
	for _, s := range b.Thread().Segments {
		total += s.Instr
	}
	if total != 2_000_000 {
		t.Fatalf("EmitRaw total=%d", total)
	}
	em.EmitRaw(b, vm, f, 0, part(1, 1, 1, 0))
	if b.Depth() != 1 {
		t.Fatal("EmitRaw(0) should be a no-op")
	}
}

func TestEmitterDeterminism(t *testing.T) {
	f := FuncSpec{Class: "C", Method: "m", Kind: model.KindMap,
		InstrPerRec: 37, BaseCPI: 0.5, Pattern: cpu.PatternRandom,
		WS: WorkingSet{Kind: WSPartitionBytes}}
	a := buildOne(t, f, part(123456, 5<<20, 77, 0.5), 400_000)
	b := buildOne(t, f, part(123456, 5<<20, 77, 0.5), 400_000)
	if len(a) != len(b) {
		t.Fatal("nondeterministic chunk count")
	}
	for i := range a {
		if a[i].Instr != b[i].Instr || a[i].Access.WorkingSet != b[i].Access.WorkingSet {
			t.Fatal("nondeterministic emission")
		}
	}
}

func TestAvgRecordBytes(t *testing.T) {
	if part(0, 100, 0, 0).AvgRecordBytes() != 0 {
		t.Fatal("zero records should give 0")
	}
	if part(10, 100, 0, 0).AvgRecordBytes() != 10 {
		t.Fatal("avg record bytes wrong")
	}
}
