package exec

import (
	"testing"

	"simprof/internal/cpu"
	"simprof/internal/jvm"
	"simprof/internal/model"
)

func gcRun(t *testing.T, gc GCConfig) (*jvm.VM, []cpu.Segment) {
	t.Helper()
	vm := jvm.NewVM()
	b := vm.SpawnThread("w").PushM("T", "run", model.KindFramework)
	em := NewEmitter(1, 1_000_000)
	em.GC = gc
	f := FuncSpec{
		Class: "W", Method: "map", Kind: model.KindMap,
		InstrPerRec: 100, BaseCPI: 0.5,
		Pattern: cpu.PatternSequential,
		WS:      WorkingSet{Kind: WSFixed, Fixed: 1 << 20},
	}
	// 500M instructions × 0.25 B/instr = 125MB allocated.
	em.EmitOp(b, vm, f, PartStats{Records: 5_000_000, Bytes: 1 << 20, DistinctKeys: 10})
	return vm, b.Thread().Segments
}

func countGC(vm *jvm.VM, segs []cpu.Segment) int {
	id, ok := vm.Table.Lookup("sun.jvm.GCTaskThread", "run")
	if !ok {
		return 0
	}
	n := 0
	for _, s := range segs {
		for _, fr := range s.Stack {
			if fr == id {
				n++
				break
			}
		}
	}
	return n
}

func TestGCDisabledByDefault(t *testing.T) {
	vm, segs := gcRun(t, GCConfig{})
	if countGC(vm, segs) != 0 {
		t.Fatal("GC segments emitted while disabled")
	}
}

func TestGCPausesTrackAllocation(t *testing.T) {
	// 125MB allocated with a 32MB young gen → 3 collections.
	vm, segs := gcRun(t, GCConfig{Enabled: true, YoungGenBytes: 32 << 20})
	got := countGC(vm, segs)
	if got < 3 || got > 4 {
		t.Fatalf("GC pauses=%d want ≈3 (125MB / 32MB)", got)
	}
	// A bigger young gen collects less often.
	vm2, segs2 := gcRun(t, GCConfig{Enabled: true, YoungGenBytes: 96 << 20})
	if g2 := countGC(vm2, segs2); g2 >= got {
		t.Fatalf("bigger young gen should collect less: %d vs %d", g2, got)
	}
}

func TestGCStackShape(t *testing.T) {
	vm, segs := gcRun(t, GCConfig{Enabled: true, YoungGenBytes: 16 << 20})
	id, _ := vm.Table.Lookup("sun.jvm.GCTaskThread", "run")
	for _, s := range segs {
		for i, fr := range s.Stack {
			if fr == id {
				// The GC frames sit on top of the mutator stack.
				if i == 0 {
					t.Fatal("GC frame at stack root")
				}
				if vm.Table.FQN(s.Stack.Leaf()) != "sun.jvm.G1ParEvacuateFollowersClosure.do_void" {
					t.Fatalf("GC leaf=%s", vm.Table.FQN(s.Stack.Leaf()))
				}
			}
		}
	}
}

func TestGCInstructionAccounting(t *testing.T) {
	// GC pauses add instructions beyond the operation's own cost.
	_, plain := gcRun(t, GCConfig{})
	_, withGC := gcRun(t, GCConfig{Enabled: true, YoungGenBytes: 16 << 20, PauseInstr: 2_000_000})
	var a, b uint64
	for _, s := range plain {
		a += s.Instr
	}
	for _, s := range withGC {
		b += s.Instr
	}
	if b <= a {
		t.Fatalf("GC added no instructions: %d vs %d", b, a)
	}
}
