// Package calibrate validates the fast analytic cache model in
// internal/cpu against the exact set-associative simulator in
// internal/cachesim, and provides the fitting routines used to choose
// the analytic constants. The machine model's credibility rests on this
// agreement: every engine segment is priced by the analytic curves, so
// their deviation from exact simulation bounds the whole substrate's
// cache-behaviour error.
package calibrate

import (
	"fmt"
	"math"

	"simprof/internal/cachesim"
	"simprof/internal/cpu"
)

// Point is one (pattern, working set) comparison between the exact and
// the analytic miss rates.
type Point struct {
	Pattern    cpu.PatternKind
	WorkingSet uint64
	Exact      float64
	Analytic   float64
}

// AbsErr returns |Exact − Analytic|.
func (p Point) AbsErr() float64 { return math.Abs(p.Exact - p.Analytic) }

// Report summarizes a validation sweep.
type Report struct {
	Points     []Point
	MeanAbsErr float64
	MaxAbsErr  float64
}

// Options sizes the validation sweep.
type Options struct {
	// Accesses per measurement after warm-up (default 200k).
	Accesses int
	// Warmup accesses before measuring (default 60k).
	Warmup int
	// WorkingSets to sweep; default covers 1/8× to 16× the cache.
	WorkingSets []uint64
	Seed        uint64
}

func (o Options) withDefaults(capacity uint64) Options {
	if o.Accesses <= 0 {
		o.Accesses = 200_000
	}
	if o.Warmup <= 0 {
		o.Warmup = 60_000
	}
	if len(o.WorkingSets) == 0 {
		for f := capacity / 8; f <= capacity*16; f *= 2 {
			o.WorkingSets = append(o.WorkingSets, f)
		}
	}
	return o
}

// streamFor builds the exact-simulator stream matching a pattern.
func streamFor(p cpu.PatternKind, ws uint64, seed uint64) (cachesim.Stream, error) {
	switch p {
	case cpu.PatternSequential:
		return &cachesim.SequentialStream{Size: ws, Stride: 8}, nil
	case cpu.PatternRandom:
		return cachesim.NewRandomStream(0, ws, seed), nil
	case cpu.PatternStrided:
		return &cachesim.StridedStream{Size: ws, Stride: 4096}, nil
	default:
		return nil, fmt.Errorf("calibrate: no stream for pattern %v", p)
	}
}

// measureExact runs the stream through a fresh exact cache and returns
// the steady-state miss rate.
func measureExact(cfg cachesim.Config, s cachesim.Stream, o Options) float64 {
	c := cachesim.New(cfg)
	for i := 0; i < o.Warmup; i++ {
		c.Access(s.Next())
	}
	warm := c.Stats()
	for i := 0; i < o.Accesses; i++ {
		c.Access(s.Next())
	}
	st := c.Stats()
	return float64(st.Misses-warm.Misses) / float64(st.Accesses-warm.Accesses)
}

// ValidateMissModel sweeps the given patterns and working sets and
// compares the analytic model of spec against exact simulation of the
// equivalent geometry.
func ValidateMissModel(spec cpu.CacheSpec, ways int, patterns []cpu.PatternKind, opts Options) (Report, error) {
	o := opts.withDefaults(spec.SizeBytes)
	csCfg := cachesim.Config{
		SizeBytes: int(spec.SizeBytes),
		LineBytes: int(spec.LineBytes),
		Ways:      ways,
	}
	if err := csCfg.Validate(); err != nil {
		return Report{}, err
	}
	var rep Report
	for _, p := range patterns {
		for i, ws := range o.WorkingSets {
			s, err := streamFor(p, ws, o.Seed+uint64(i))
			if err != nil {
				return Report{}, err
			}
			pt := Point{
				Pattern:    p,
				WorkingSet: ws,
				Exact:      measureExact(csCfg, s, o),
				Analytic:   spec.MissRate(cpu.Access{Kind: p, WorkingSet: ws, Refs: 0.3}),
			}
			rep.Points = append(rep.Points, pt)
		}
	}
	for _, pt := range rep.Points {
		rep.MeanAbsErr += pt.AbsErr() / float64(len(rep.Points))
		if e := pt.AbsErr(); e > rep.MaxAbsErr {
			rep.MaxAbsErr = e
		}
	}
	return rep, nil
}

// FitSequentialStride recovers the element stride that best explains an
// exact cache's miss rate under an over-capacity sequential sweep — the
// constant the analytic model hard-codes as 8 bytes (miss rate =
// stride/line for cyclic LRU thrashing). Grid search over candidate
// strides, least squares across working sets.
func FitSequentialStride(cfg cachesim.Config, trueStride uint64, opts Options) (uint64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	o := opts.withDefaults(uint64(cfg.SizeBytes))
	// Measure exact miss rates with the true stride on over-capacity sweeps.
	var measured []float64
	var sweeps []uint64
	for _, ws := range o.WorkingSets {
		if ws <= uint64(cfg.SizeBytes)*2 {
			continue // only the thrashing regime identifies the stride
		}
		s := &cachesim.SequentialStream{Size: ws, Stride: trueStride}
		measured = append(measured, measureExact(cfg, s, o))
		sweeps = append(sweeps, ws)
	}
	if len(measured) == 0 {
		return 0, fmt.Errorf("calibrate: no over-capacity working sets in sweep")
	}
	best, bestErr := uint64(0), math.Inf(1)
	for stride := uint64(1); stride <= uint64(cfg.LineBytes); stride *= 2 {
		var sse float64
		predicted := float64(stride) / float64(cfg.LineBytes)
		for _, m := range measured {
			d := m - predicted
			sse += d * d
		}
		if sse < bestErr {
			best, bestErr = stride, sse
		}
	}
	return best, nil
}

// FitResidual measures the true resident-working-set miss rate of the
// exact simulator (conflict misses under random probing at a given
// occupancy) — the basis of the analytic model's occupancy-scaled
// residual term.
func FitResidual(cfg cachesim.Config, occupancy float64, opts Options) (float64, error) {
	if err := cfg.Validate(); err != nil {
		return 0, err
	}
	if occupancy <= 0 || occupancy > 1 {
		return 0, fmt.Errorf("calibrate: occupancy %v out of (0,1]", occupancy)
	}
	o := opts.withDefaults(uint64(cfg.SizeBytes))
	ws := uint64(float64(cfg.SizeBytes) * occupancy)
	s := cachesim.NewRandomStream(0, ws, o.Seed+1)
	return measureExact(cfg, s, o), nil
}
