package calibrate

import (
	"testing"

	"simprof/internal/cachesim"
	"simprof/internal/cpu"
)

func TestValidateMissModelAgreement(t *testing.T) {
	spec := cpu.CacheSpec{SizeBytes: 256 << 10, LineBytes: 64}
	rep, err := ValidateMissModel(spec, 8,
		[]cpu.PatternKind{cpu.PatternSequential, cpu.PatternRandom}, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Points) == 0 {
		t.Fatal("no sweep points")
	}
	// The analytic curves must track the exact simulator closely: this
	// bound is what DESIGN.md's "calibrated against the exact
	// simulator" means quantitatively.
	if rep.MeanAbsErr > 0.04 {
		t.Fatalf("mean abs miss-rate error %.4f too high", rep.MeanAbsErr)
	}
	if rep.MaxAbsErr > 0.12 {
		t.Fatalf("max abs miss-rate error %.4f too high", rep.MaxAbsErr)
	}
	for _, p := range rep.Points {
		if p.Exact < 0 || p.Exact > 1 || p.Analytic < 0 || p.Analytic > 1 {
			t.Fatalf("rates out of range: %+v", p)
		}
	}
}

func TestValidateStridedPattern(t *testing.T) {
	spec := cpu.CacheSpec{SizeBytes: 64 << 10, LineBytes: 64}
	rep, err := ValidateMissModel(spec, 4, []cpu.PatternKind{cpu.PatternStrided}, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Strided over-capacity: both must be ≈1.
	for _, p := range rep.Points {
		if p.WorkingSet > 2*spec.SizeBytes && p.Exact < 0.9 {
			t.Fatalf("exact strided miss %.3f at ws=%d; expected ≈1", p.Exact, p.WorkingSet)
		}
	}
}

func TestValidateUnknownPattern(t *testing.T) {
	spec := cpu.CacheSpec{SizeBytes: 64 << 10, LineBytes: 64}
	if _, err := ValidateMissModel(spec, 4, []cpu.PatternKind{cpu.PatternSawtooth}, Options{}); err == nil {
		t.Fatal("sawtooth has no direct stream; should error")
	}
}

func TestFitSequentialStrideRecoversTruth(t *testing.T) {
	cfg := cachesim.Config{SizeBytes: 64 << 10, LineBytes: 64, Ways: 8}
	for _, truth := range []uint64{4, 8, 16, 32} {
		got, err := FitSequentialStride(cfg, truth, Options{Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		if got != truth {
			t.Errorf("stride %d: fitted %d", truth, got)
		}
	}
}

func TestFitResidualGrowsWithOccupancy(t *testing.T) {
	cfg := cachesim.Config{SizeBytes: 128 << 10, LineBytes: 64, Ways: 8}
	low, err := FitResidual(cfg, 0.25, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	high, err := FitResidual(cfg, 0.95, Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if low > high {
		t.Fatalf("residual should grow with occupancy: %.4f vs %.4f", low, high)
	}
	if high > 0.05 {
		t.Fatalf("resident residual %.4f implausibly high", high)
	}
	if _, err := FitResidual(cfg, 1.5, Options{}); err == nil {
		t.Fatal("occupancy > 1 should fail")
	}
}

func BenchmarkValidateMissModel(b *testing.B) {
	spec := cpu.CacheSpec{SizeBytes: 256 << 10, LineBytes: 64}
	for i := 0; i < b.N; i++ {
		if _, err := ValidateMissModel(spec, 8,
			[]cpu.PatternKind{cpu.PatternSequential, cpu.PatternRandom},
			Options{Accesses: 50_000, Warmup: 20_000, Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
