package history

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// BenchResult is one parsed benchmark result line.
type BenchResult struct {
	Pkg  string `json:"pkg,omitempty"`
	Name string `json:"name"` // as printed, e.g. "BenchmarkForm-8"
	// Iters is the b.N the result was measured over.
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	MBPerS      float64 `json:"mb_per_s,omitempty"`
}

// BaseName strips the trailing GOMAXPROCS suffix ("-8") so results
// from machines with different core counts compare under one name.
func (b BenchResult) BaseName() string { return normalizeBenchName(b.Name) }

func normalizeBenchName(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 {
		return name
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return name
	}
	return name[:i]
}

// testEvent is the subset of a test2json event the parser needs.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// ParseTestJSON extracts benchmark results from a `go test -json`
// (test2json) stream. test2json may split one benchmark's name and its
// result across several Output events, so the parser reassembles the
// raw output per package before scanning lines — the same reassembly
// scripts/bench.sh performs with awk. Lines that are not valid JSON
// events are scanned as raw benchmark output, so plain `go test
// -bench` output parses too. The parser never fails on malformed
// input; it returns whatever results it could extract.
func ParseTestJSON(r io.Reader) ([]BenchResult, error) {
	perPkg := map[string]*strings.Builder{}
	var pkgOrder []string
	raw := &strings.Builder{}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if trimmed == "" {
			continue
		}
		var ev testEvent
		if strings.HasPrefix(trimmed, "{") && json.Unmarshal([]byte(trimmed), &ev) == nil {
			if ev.Action != "output" || ev.Output == "" {
				continue
			}
			b, ok := perPkg[ev.Package]
			if !ok {
				b = &strings.Builder{}
				perPkg[ev.Package] = b
				pkgOrder = append(pkgOrder, ev.Package)
			}
			b.WriteString(ev.Output)
			continue
		}
		// Not a JSON event: treat as raw benchmark output.
		raw.WriteString(line)
		raw.WriteByte('\n')
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("history: read bench stream: %w", err)
	}

	var out []BenchResult
	for _, pkg := range pkgOrder {
		out = append(out, scanBenchLines(pkg, perPkg[pkg].String())...)
	}
	out = append(out, scanBenchLines("", raw.String())...)
	sort.SliceStable(out, func(a, b int) bool {
		if out[a].Pkg != out[b].Pkg {
			return out[a].Pkg < out[b].Pkg
		}
		return false // keep file order within a package
	})
	return out, nil
}

// scanBenchLines scans reassembled test output for benchmark result
// lines.
func scanBenchLines(pkg, text string) []BenchResult {
	var out []BenchResult
	for _, line := range strings.Split(text, "\n") {
		if r, ok := parseBenchLine(pkg, line); ok {
			out = append(out, r)
		}
	}
	return out
}

// parseBenchLine parses one classic benchmark result line:
//
//	BenchmarkForm-8   100   13055718 ns/op   1197135 B/op   6180 allocs/op
//
// The grammar is: name, iteration count, then (value, unit) pairs.
// Lines without an ns/op pair are not results (e.g. "BenchmarkX" name
// echoes from -v runs) and are skipped.
func parseBenchLine(pkg, line string) (BenchResult, bool) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") || len(fields[0]) <= len("Benchmark") {
		return BenchResult{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil || iters <= 0 {
		return BenchResult{}, false
	}
	r := BenchResult{Pkg: pkg, Name: fields[0], Iters: iters}
	sawNs := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil || v < 0 {
			return BenchResult{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
			sawNs = true
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		case "MB/s":
			r.MBPerS = v
		}
	}
	return r, sawNs
}
