package history

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"simprof/internal/obs"
)

var (
	obsFsyncs = obs.NewCounter("history.fsyncs",
		"appends flushed to stable storage before acknowledging")
	obsTailRecovered = obs.NewCounter("history.tail_recoveries",
		"stores opened with a torn tail truncated away")
	obsTailBytes = obs.NewCounter("history.tail_bytes_dropped",
		"bytes of torn/corrupt tail removed by recovery")
)

// OpenDurable returns a handle on the store at path whose appends are
// fsynced before they are acknowledged: once Append returns, the record
// survives a process kill or power loss. Plain Open leaves the flush to
// the OS — right for CLI runs where the shell outlives the write, wrong
// for a service that acknowledges uploads. The file format is
// identical; the two handles can share a store.
func OpenDurable(path string) *Store { return &Store{path: path, durable: true} }

// RecoverTail truncates away a torn tail left by a writer that died
// mid-append: trailing bytes with no newline, and any trailing run of
// newline-terminated lines that do not parse as JSON. Interior records
// are never touched — O_APPEND writes mean a crash can only damage the
// end of the file. It returns the number of bytes removed (0 when the
// store is clean or absent). The truncation is flushed before
// returning, so a recovery immediately followed by a crash cannot
// resurrect the torn tail.
func (s *Store) RecoverTail() (dropped int64, err error) {
	data, err := os.ReadFile(s.path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("history: recover %s: %w", s.path, err)
	}
	good := validPrefix(data)
	if good == int64(len(data)) {
		return 0, nil
	}
	f, err := os.OpenFile(s.path, os.O_WRONLY, 0o644)
	if err != nil {
		return 0, fmt.Errorf("history: recover %s: %w", s.path, err)
	}
	defer f.Close()
	if err := f.Truncate(good); err != nil {
		return 0, fmt.Errorf("history: truncate %s to %d: %w", s.path, good, err)
	}
	if err := f.Sync(); err != nil {
		return 0, fmt.Errorf("history: sync %s: %w", s.path, err)
	}
	dropped = int64(len(data)) - good
	obsTailRecovered.Inc()
	obsTailBytes.Add(dropped)
	return dropped, f.Close()
}

// validPrefix returns the length of the longest prefix of data that
// ends after a committed record: every byte past it belongs to the torn
// tail. A line counts as committed when it is newline-terminated and
// either blank or valid JSON (json.Marshal never emits raw newlines, so
// a committed record is always exactly one line).
func validPrefix(data []byte) int64 {
	var good int64
	for off := int64(0); off < int64(len(data)); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // unterminated tail
		}
		line := bytes.TrimSpace(data[off : off+int64(nl)])
		end := off + int64(nl) + 1
		if len(line) == 0 || json.Valid(line) {
			good = end
		}
		off = end
	}
	return good
}
