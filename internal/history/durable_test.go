package history

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// seedStore appends n small records durably and returns the store path
// plus the committed file bytes.
func seedStore(t *testing.T, n int) (string, []byte) {
	t.Helper()
	path := filepath.Join(t.TempDir(), "history.jsonl")
	st := OpenDurable(path)
	for i := 0; i < n; i++ {
		if _, err := st.Append(&Record{Key: "k", Note: strings.Repeat("x", i%7), Time: "t"}); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, data
}

// TestRecoverTailEveryTruncation is the crash-recovery property test:
// a store truncated at EVERY byte offset — every possible point a
// kill-during-append could leave the file at — recovers to a clean
// prefix of the committed records. After RecoverTail, Records reports
// zero skipped lines and the surviving records are exactly records
// 1..k in order for some k, with k covering all committed records
// whenever the truncation point sits at a record boundary.
func TestRecoverTailEveryTruncation(t *testing.T) {
	_, data := seedStore(t, 6)
	full := OpenDurable(filepath.Join(t.TempDir(), "ref.jsonl"))
	if err := os.WriteFile(full.Path(), data, 0o644); err != nil {
		t.Fatal(err)
	}
	committed, _, err := full.Records()
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	for cut := 0; cut <= len(data); cut++ {
		path := filepath.Join(dir, "cut.jsonl")
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		st := OpenDurable(path)
		dropped, err := st.RecoverTail()
		if err != nil {
			t.Fatalf("cut=%d: RecoverTail: %v", cut, err)
		}
		recs, skipped, err := st.Records()
		if err != nil {
			t.Fatalf("cut=%d: Records after recovery: %v", cut, err)
		}
		if skipped != 0 {
			t.Fatalf("cut=%d: %d corrupt lines survived recovery", cut, skipped)
		}
		for i, r := range recs {
			if r.Seq != committed[i].Seq || r.Note != committed[i].Note {
				t.Fatalf("cut=%d: record %d = seq %d note %q, want seq %d note %q",
					cut, i, r.Seq, r.Note, committed[i].Seq, committed[i].Note)
			}
		}
		// A cut on a record boundary loses nothing.
		if dropped == 0 && len(recs) != lineCount(data[:cut]) {
			t.Fatalf("cut=%d: clean file but %d records for %d lines", cut, len(recs), lineCount(data[:cut]))
		}
		// Recovery is idempotent.
		if d2, err := st.RecoverTail(); err != nil || d2 != 0 {
			t.Fatalf("cut=%d: second RecoverTail = (%d, %v), want (0, nil)", cut, d2, err)
		}
	}
}

func lineCount(b []byte) int { return strings.Count(string(b), "\n") }

// TestRecoverTailCorruptLastLine: a tail whose final line is complete
// but scribbled (torn write flushed garbage) is dropped too.
func TestRecoverTailCorruptLastLine(t *testing.T) {
	path, data := seedStore(t, 3)
	if err := os.WriteFile(path, append(data, []byte("{\"seq\": garbage}\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	st := OpenDurable(path)
	dropped, err := st.RecoverTail()
	if err != nil {
		t.Fatal(err)
	}
	if dropped == 0 {
		t.Fatal("corrupt final line not dropped")
	}
	recs, skipped, err := st.Records()
	if err != nil || skipped != 0 || len(recs) != 3 {
		t.Fatalf("after recovery: %d records, %d skipped, err=%v; want 3, 0, nil", len(recs), skipped, err)
	}
}

// TestRecoverTailMissingStore: recovering a store that was never
// written is a no-op, not an error.
func TestRecoverTailMissingStore(t *testing.T) {
	st := OpenDurable(filepath.Join(t.TempDir(), "absent.jsonl"))
	if dropped, err := st.RecoverTail(); err != nil || dropped != 0 {
		t.Fatalf("RecoverTail on missing store = (%d, %v)", dropped, err)
	}
}

// TestDurableAppendThenRead: records appended durably read back with
// sequential seqs; durable and plain handles interoperate on one file.
func TestDurableAppendThenRead(t *testing.T) {
	path, _ := seedStore(t, 2)
	if _, err := Open(path).Append(&Record{Key: "k2"}); err != nil {
		t.Fatal(err)
	}
	recs, skipped, err := OpenDurable(path).Records()
	if err != nil || skipped != 0 {
		t.Fatalf("Records: skipped=%d err=%v", skipped, err)
	}
	if len(recs) != 3 || recs[2].Seq != 3 {
		t.Fatalf("got %d records, last seq %d; want 3 records ending at seq 3", len(recs), recs[len(recs)-1].Seq)
	}
}
