// Package history is SimProf's cross-run observability store: an
// append-only JSONL file of run records, each holding the telemetry
// manifest of one pipeline run and/or one parsed benchmark snapshot,
// keyed by the binary's VCS stamp plus the workload and seeds that
// ran. On top of the store sit the two consumers that connect runs
// over time: Diff (stage-level span deltas, metric deltas and
// estimate/SE/CI drift between any two runs) and Gate (a noise-aware
// perf-regression check over bench snapshots).
//
// The store format is one JSON object per line. Appends never rewrite
// existing bytes, so a crashed writer can at worst leave a truncated
// final line — readers skip it and report how many lines they skipped
// instead of failing the whole store.
package history

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"simprof/internal/obs"
)

// Record is one line of the history store.
type Record struct {
	// Seq is the 1-based position in the store, assigned at append time.
	Seq int `json:"seq"`
	// Time is the wall-clock append time, RFC3339 UTC.
	Time string `json:"time,omitempty"`
	// Key groups comparable runs: VCS revision + tool + workload + seed.
	Key string `json:"key"`
	// Revision/Modified mirror the manifest's build stamp so `history
	// list` can render provenance without unpacking the manifest.
	Revision string `json:"revision,omitempty"`
	Modified bool   `json:"modified,omitempty"`
	Tool     string `json:"tool,omitempty"`
	Note     string `json:"note,omitempty"`

	Manifest *obs.Manifest `json:"manifest,omitempty"`
	Bench    []BenchResult `json:"bench,omitempty"`
}

// Key derives the record grouping key from a manifest: the VCS
// revision (short), the tool, the workload identity and its seed.
// Sections a manifest does not carry contribute "-" so keys stay
// comparable across tools.
func Key(m *obs.Manifest) string {
	if m == nil {
		return "-/-/-/-"
	}
	rev := m.Build.Revision
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if rev == "" {
		rev = "-"
	}
	tool := m.Tool
	if tool == "" {
		tool = "-"
	}
	wl, seed := "-", "-"
	if w := m.Workload; w != nil {
		wl = w.Benchmark + "_" + w.Framework
		seed = fmt.Sprintf("seed=%d", w.Seed)
	}
	return strings.Join([]string{rev, tool, wl, seed}, "/")
}

// FromManifest builds a record shell for a manifest: key, build
// provenance and the manifest itself. The caller appends it (which
// assigns Seq and Time) and may attach Bench results first.
func FromManifest(m *obs.Manifest) *Record {
	r := &Record{Key: Key(m), Manifest: m}
	if m != nil {
		r.Revision = m.Build.Revision
		r.Modified = m.Build.Modified
		r.Tool = m.Tool
	}
	return r
}

// Store is a handle on a JSONL history file. The zero value is not
// usable; construct with Open (or OpenDurable for fsync-on-commit
// appends). Opening does not touch the filesystem — a store that was
// never appended to reads as empty.
type Store struct {
	path    string
	durable bool // Append fsyncs before acknowledging
}

// Open returns a handle on the store at path.
func Open(path string) *Store { return &Store{path: path} }

// Path returns the store's file path.
func (s *Store) Path() string { return s.path }

// Records reads every parseable record in append order and the number
// of corrupt/truncated lines skipped (non-zero only after a torn write
// or manual editing; the data that is there still loads).
func (s *Store) Records() (recs []*Record, skipped int, err error) {
	f, err := os.Open(s.path)
	if os.IsNotExist(err) {
		return nil, 0, nil
	}
	if err != nil {
		return nil, 0, fmt.Errorf("history: open %s: %w", s.path, err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var r Record
		if json.Unmarshal([]byte(line), &r) != nil {
			skipped++
			continue
		}
		recs = append(recs, &r)
	}
	if err := sc.Err(); err != nil {
		return nil, 0, fmt.Errorf("history: read %s: %w", s.path, err)
	}
	return recs, skipped, nil
}

// Get returns the record with the given Seq, or the last record when
// seq is 0. Negative seq counts from the end (-1 = last, -2 = one
// before it).
func (s *Store) Get(seq int) (*Record, error) {
	recs, _, err := s.Records()
	if err != nil {
		return nil, err
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("history: store %s is empty", s.path)
	}
	if seq == 0 {
		seq = -1
	}
	if seq < 0 {
		i := len(recs) + seq
		if i < 0 {
			return nil, fmt.Errorf("history: store has %d records, no record %d from the end", len(recs), -seq)
		}
		return recs[i], nil
	}
	for _, r := range recs {
		if r.Seq == seq {
			return r, nil
		}
	}
	return nil, fmt.Errorf("history: no record with seq %d (store has %d records)", seq, len(recs))
}

// Append assigns the record's Seq (and Time, if unset) and appends it
// as one JSON line. The record is returned for convenience.
func (s *Store) Append(r *Record) (*Record, error) {
	recs, _, err := s.Records()
	if err != nil {
		return nil, err
	}
	maxSeq := 0
	for _, old := range recs {
		if old.Seq > maxSeq {
			maxSeq = old.Seq
		}
	}
	r.Seq = maxSeq + 1
	if r.Time == "" {
		r.Time = time.Now().UTC().Format(time.RFC3339)
	}
	line, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("history: marshal record: %w", err)
	}
	f, err := os.OpenFile(s.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("history: append %s: %w", s.path, err)
	}
	defer f.Close()
	if _, err := f.Write(append(line, '\n')); err != nil {
		return nil, fmt.Errorf("history: append %s: %w", s.path, err)
	}
	if s.durable {
		if err := f.Sync(); err != nil {
			return nil, fmt.Errorf("history: sync %s: %w", s.path, err)
		}
		obsFsyncs.Inc()
	}
	return r, f.Close()
}
