package history

import (
	"bytes"
	"testing"
)

// FuzzParseTestJSON asserts the bench parser never panics or errors on
// arbitrary byte streams — it sits on the same trust boundary as the
// trace decoders: CI artifacts that may be truncated, interleaved or
// corrupted. (Errors are reserved for I/O failures, which a byte
// reader cannot produce aside from pathological line lengths.)
func FuzzParseTestJSON(f *testing.F) {
	f.Add([]byte(`{"Action":"output","Package":"p","Output":"BenchmarkX"}` + "\n" +
		`{"Action":"output","Package":"p","Output":" \t10\t5 ns/op\n"}`))
	f.Add([]byte("BenchmarkY-8\t100\t42 ns/op\t0 B/op\t0 allocs/op\n"))
	f.Add([]byte(`{"Action":"output"`)) // truncated JSON
	f.Add([]byte("Benchmark\t\x00\xff\t-1 ns/op"))
	f.Add([]byte("{}\n{}\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		rs, err := ParseTestJSON(bytes.NewReader(data))
		if err != nil {
			// Only the scanner's line-length limit may error; that is
			// fine, but it must not coexist with results.
			return
		}
		for _, r := range rs {
			if r.Name == "" || r.Iters <= 0 || r.NsPerOp < 0 {
				t.Fatalf("parser accepted invalid result %+v from %q", r, data)
			}
		}
	})
}
