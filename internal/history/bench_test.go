package history

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestParseTestJSONSplitOutput parses the golden test2json fixture in
// which benchmark names and their result fields arrive in separate
// Output events (the same splitting scripts/bench.sh reassembles with
// awk), across several packages.
func TestParseTestJSONSplitOutput(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "bench_split.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	rs, err := ParseTestJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 4 {
		t.Fatalf("parsed %d results, want 4: %+v", len(rs), rs)
	}
	byName := map[string][]BenchResult{}
	for _, r := range rs {
		byName[r.BaseName()] = append(byName[r.BaseName()], r)
	}

	choose := byName["BenchmarkChooseKParallel"]
	if len(choose) != 2 {
		t.Fatalf("ChooseKParallel has %d samples, want 2", len(choose))
	}
	if choose[0].NsPerOp != 248626610 || choose[1].NsPerOp != 251110042 {
		t.Errorf("ChooseKParallel ns/op = %v, %v", choose[0].NsPerOp, choose[1].NsPerOp)
	}
	if choose[0].Pkg != "simprof/internal/cluster" {
		t.Errorf("ChooseKParallel pkg = %q", choose[0].Pkg)
	}
	if choose[0].Iters != 100 || choose[0].BytesPerOp != 5832864 || choose[0].AllocsPerOp != 5100 {
		t.Errorf("ChooseKParallel fields: %+v", choose[0])
	}

	form := byName["BenchmarkForm"]
	if len(form) != 1 || form[0].NsPerOp != 13055718 || form[0].AllocsPerOp != 6180 {
		t.Fatalf("Form (split across three events) parsed wrong: %+v", form)
	}

	tel := byName["BenchmarkTelemetryDisabled/counter"]
	if len(tel) != 1 || tel[0].NsPerOp != 2.1 || tel[0].AllocsPerOp != 0 {
		t.Fatalf("sub-benchmark with -8 suffix parsed wrong: %+v", tel)
	}
	if tel[0].Name != "BenchmarkTelemetryDisabled/counter-8" {
		t.Errorf("full name not preserved: %q", tel[0].Name)
	}
}

// TestParseRawBenchOutput checks that plain `go test -bench` text (no
// JSON framing) parses too, and that non-result lines are skipped.
func TestParseRawBenchOutput(t *testing.T) {
	raw := `goos: linux
BenchmarkForm-8   	     100	  13055718 ns/op	 1197135 B/op	    6180 allocs/op
BenchmarkEncode   	  50	  200.5 ns/op	 512.0 MB/s
PASS
ok  	simprof/internal/phase	1.5s
Benchmark
BenchmarkNoResultLine
BenchmarkBadIters	abc	5 ns/op
`
	rs, err := ParseTestJSON(strings.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 2 {
		t.Fatalf("parsed %d results, want 2: %+v", len(rs), rs)
	}
	if rs[0].Name != "BenchmarkForm-8" || rs[0].BaseName() != "BenchmarkForm" {
		t.Errorf("name/base = %q/%q", rs[0].Name, rs[0].BaseName())
	}
	if rs[1].MBPerS != 512 || rs[1].NsPerOp != 200.5 {
		t.Errorf("MB/s pair parsed wrong: %+v", rs[1])
	}
}

func TestNormalizeBenchName(t *testing.T) {
	cases := map[string]string{
		"BenchmarkForm-8":          "BenchmarkForm",
		"BenchmarkForm":            "BenchmarkForm",
		"BenchmarkA/sub-case-16":   "BenchmarkA/sub-case",
		"BenchmarkTrailing-dash-x": "BenchmarkTrailing-dash-x",
	}
	for in, want := range cases {
		if got := normalizeBenchName(in); got != want {
			t.Errorf("normalize(%q) = %q, want %q", in, got, want)
		}
	}
}
