package history

import (
	"fmt"
	"sort"

	"simprof/internal/obs"
)

// SpanDelta is one stage's duration in two runs, addressed by its path
// in the span tree ("root/phase.form/phase.cluster"). A stage present
// in only one run has the other duration < 0.
type SpanDelta struct {
	Path         string
	ADurNS       int64 // -1 when the stage is absent in A
	BDurNS       int64 // -1 when absent in B
	DeltaNS      int64 // B - A, when both present
	Ratio        float64
	ASelf, BSelf int64
}

// MetricDelta is one metric's value in two runs (histograms compare
// observation count, sum and mean).
type MetricDelta struct {
	Name   string
	Kind   string
	A, B   float64 // counter/gauge value, histogram count
	Delta  float64
	AMean  float64 // histograms only
	BMean  float64
	OnlyIn string // "a" or "b" when the metric exists in one run
}

// SamplingDelta is the estimate-quality drift between two runs.
type SamplingDelta struct {
	A, B     *obs.SamplingInfo
	EstDrift float64 // B.EstCPI - A.EstCPI
	SERatio  float64 // B.SE / A.SE (Inf if A.SE == 0 and B.SE > 0)
	CIWidthA float64
	CIWidthB float64
	RelErrA  float64
	RelErrB  float64
}

// BenchDelta compares one benchmark's median ns/op across two runs.
type BenchDelta struct {
	Name         string
	ANs, BNs     float64 // medians; -1 when absent
	Ratio        float64 // BNs / ANs
	ASamples     int
	BSamples     int
	AAllocsPerOp float64
	BAllocsPerOp float64
}

// Diff is the full cross-run comparison of two records.
type Diff struct {
	A, B     *Record
	Spans    []SpanDelta
	Metrics  []MetricDelta
	Sampling *SamplingDelta
	Bench    []BenchDelta
}

// Compute diffs record a against record b (b is "current", a is the
// reference). Sections missing on both sides yield empty slices / nil.
func Compute(a, b *Record) *Diff {
	d := &Diff{A: a, B: b}
	var am, bm *obs.Manifest
	if a != nil {
		am = a.Manifest
	}
	if b != nil {
		bm = b.Manifest
	}
	d.Spans = spanDeltas(am, bm)
	d.Metrics = metricDeltas(am, bm)
	d.Sampling = samplingDelta(am, bm)
	var ab, bb []BenchResult
	if a != nil {
		ab = a.Bench
	}
	if b != nil {
		bb = b.Bench
	}
	d.Bench = benchDeltas(ab, bb)
	return d
}

// flattenSpans walks the tree into path → (total, self) duration rows,
// disambiguating repeated sibling names with a #n suffix.
func flattenSpans(root *obs.Span) (order []string, total, self map[string]int64) {
	total = map[string]int64{}
	self = map[string]int64{}
	if root == nil {
		return nil, total, self
	}
	var walk func(sp *obs.Span, prefix string)
	walk = func(sp *obs.Span, prefix string) {
		path := sp.Name
		if prefix != "" {
			path = prefix + "/" + sp.Name
		}
		if _, dup := total[path]; dup {
			for n := 2; ; n++ {
				cand := fmt.Sprintf("%s#%d", path, n)
				if _, dup := total[cand]; !dup {
					path = cand
					break
				}
			}
		}
		order = append(order, path)
		total[path] = sp.DurNS
		self[path] = sp.SelfDuration().Nanoseconds()
		for _, c := range sp.Children {
			walk(c, path)
		}
	}
	walk(root, "")
	return order, total, self
}

func spanDeltas(am, bm *obs.Manifest) []SpanDelta {
	var aroot, broot *obs.Span
	if am != nil {
		aroot = am.Spans
	}
	if bm != nil {
		broot = bm.Spans
	}
	aorder, atot, aself := flattenSpans(aroot)
	border, btot, bself := flattenSpans(broot)

	var out []SpanDelta
	seen := map[string]bool{}
	add := func(path string) {
		if seen[path] {
			return
		}
		seen[path] = true
		sd := SpanDelta{Path: path, ADurNS: -1, BDurNS: -1}
		if v, ok := atot[path]; ok {
			sd.ADurNS, sd.ASelf = v, aself[path]
		}
		if v, ok := btot[path]; ok {
			sd.BDurNS, sd.BSelf = v, bself[path]
		}
		if sd.ADurNS >= 0 && sd.BDurNS >= 0 {
			sd.DeltaNS = sd.BDurNS - sd.ADurNS
			if sd.ADurNS > 0 {
				sd.Ratio = float64(sd.BDurNS) / float64(sd.ADurNS)
			}
		}
		out = append(out, sd)
	}
	for _, p := range aorder {
		add(p)
	}
	for _, p := range border {
		add(p)
	}
	return out
}

func metricDeltas(am, bm *obs.Manifest) []MetricDelta {
	type key struct{ name, kind, labels string }
	var amx, bmx []obs.Metric
	if am != nil {
		amx = am.Metrics
	}
	if bm != nil {
		bmx = bm.Metrics
	}
	bIdx := map[key]obs.Metric{}
	for _, m := range bmx {
		bIdx[key{m.Name, m.Kind, m.LabelsKey()}] = m
	}
	aIdx := map[key]obs.Metric{}
	var out []MetricDelta
	mean := func(m obs.Metric) float64 {
		if m.Kind == "histogram" && m.Value > 0 {
			return m.Sum / m.Value
		}
		return 0
	}
	for _, m := range amx {
		k := key{m.Name, m.Kind, m.LabelsKey()}
		aIdx[k] = m
		md := MetricDelta{Name: deltaName(m), Kind: m.Kind, A: m.Value, AMean: mean(m)}
		if bmv, ok := bIdx[k]; ok {
			md.B = bmv.Value
			md.BMean = mean(bmv)
			md.Delta = md.B - md.A
		} else {
			md.OnlyIn = "a"
		}
		out = append(out, md)
	}
	var bOnly []MetricDelta
	for _, m := range bmx {
		if _, ok := aIdx[key{m.Name, m.Kind, m.LabelsKey()}]; !ok {
			bOnly = append(bOnly, MetricDelta{Name: deltaName(m), Kind: m.Kind, B: m.Value, BMean: mean(m), Delta: m.Value, OnlyIn: "b"})
		}
	}
	sort.Slice(bOnly, func(i, j int) bool { return bOnly[i].Name < bOnly[j].Name })
	return append(out, bOnly...)
}

// deltaName renders a metric's diff identity: the bare name for scalar
// metrics, name{k=v,...} for children of labeled families, so two
// children of one family never collide in a diff.
func deltaName(m obs.Metric) string {
	if lk := m.LabelsKey(); lk != "" {
		return m.Name + "{" + lk + "}"
	}
	return m.Name
}

func samplingDelta(am, bm *obs.Manifest) *SamplingDelta {
	var as, bs *obs.SamplingInfo
	if am != nil {
		as = am.Sampling
	}
	if bm != nil {
		bs = bm.Sampling
	}
	if as == nil && bs == nil {
		return nil
	}
	sd := &SamplingDelta{A: as, B: bs}
	if as != nil {
		sd.CIWidthA = as.CIHi - as.CILo
		sd.RelErrA = as.RelErr
	}
	if bs != nil {
		sd.CIWidthB = bs.CIHi - bs.CILo
		sd.RelErrB = bs.RelErr
	}
	if as != nil && bs != nil {
		sd.EstDrift = bs.EstCPI - as.EstCPI
		if as.SE > 0 {
			sd.SERatio = bs.SE / as.SE
		}
	}
	return sd
}

// groupBench collects each benchmark's ns/op samples (and last
// allocs/op) under its normalized name, remembering first-seen order.
func groupBench(rs []BenchResult) (order []string, ns map[string][]float64, allocs map[string]float64) {
	ns = map[string][]float64{}
	allocs = map[string]float64{}
	for _, r := range rs {
		name := r.BaseName()
		if _, ok := ns[name]; !ok {
			order = append(order, name)
		}
		ns[name] = append(ns[name], r.NsPerOp)
		allocs[name] = r.AllocsPerOp
	}
	return order, ns, allocs
}

func benchDeltas(a, b []BenchResult) []BenchDelta {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	aorder, ans, aal := groupBench(a)
	border, bns, bal := groupBench(b)
	var out []BenchDelta
	seen := map[string]bool{}
	add := func(name string) {
		if seen[name] {
			return
		}
		seen[name] = true
		bd := BenchDelta{Name: name, ANs: -1, BNs: -1}
		if s := ans[name]; len(s) > 0 {
			bd.ANs, bd.ASamples, bd.AAllocsPerOp = Median(s), len(s), aal[name]
		}
		if s := bns[name]; len(s) > 0 {
			bd.BNs, bd.BSamples, bd.BAllocsPerOp = Median(s), len(s), bal[name]
		}
		if bd.ANs > 0 && bd.BNs >= 0 {
			bd.Ratio = bd.BNs / bd.ANs
		}
		out = append(out, bd)
	}
	for _, n := range aorder {
		add(n)
	}
	for _, n := range border {
		add(n)
	}
	return out
}
