package history

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"simprof/internal/obs"
)

// Median returns the median of vs (NaN for an empty slice). The input
// is not modified.
func Median(vs []float64) float64 {
	if len(vs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// MAD returns the median absolute deviation of vs around its median —
// the robust noise scale the gate threshold derives from. 0 for fewer
// than two samples.
func MAD(vs []float64) float64 {
	if len(vs) < 2 {
		return 0
	}
	med := Median(vs)
	devs := make([]float64, len(vs))
	for i, v := range vs {
		devs[i] = math.Abs(v - med)
	}
	return Median(devs)
}

// GateOptions tunes the regression gate.
type GateOptions struct {
	// MaxSlowdown is the minimum allowed slowdown fraction before a
	// benchmark fails (0.25 = +25%). The per-benchmark threshold is
	// max(MaxSlowdown, MADK·MAD/median) over the baseline samples, so a
	// benchmark whose baseline is noisy gets proportionally more
	// headroom than a stable one.
	MaxSlowdown float64
	// MADK scales the baseline noise into headroom.
	MADK float64
	// PerBench overrides MaxSlowdown for specific benchmarks, keyed by
	// normalized name (no -8 suffix).
	PerBench map[string]float64
	// MaxSEInflation, when > 0, fails the SE gate if the current
	// manifest's standard error exceeds baseline·(1+MaxSEInflation).
	MaxSEInflation float64
}

// DefaultGateOptions returns the thresholds the CI stage runs with.
func DefaultGateOptions() GateOptions {
	return GateOptions{MaxSlowdown: 0.25, MADK: 4}
}

// ParsePerBench parses "name=pct[,name=pct...]" per-benchmark
// overrides, pct as a fraction (0.5 = +50%).
func ParsePerBench(spec string) (map[string]float64, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	out := map[string]float64{}
	for _, part := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("history: bad per-bench override %q (want name=fraction)", part)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f < 0 {
			return nil, fmt.Errorf("history: bad per-bench fraction %q for %s", val, name)
		}
		out[name] = f
	}
	return out, nil
}

// Gate statuses.
const (
	GateOK        = "ok"
	GateRegressed = "regressed"
	GateMissing   = "missing" // in baseline, absent from current run
	GateNew       = "new"     // in current run, absent from baseline
)

// GateRow is one benchmark's verdict.
type GateRow struct {
	Name      string
	BaseNs    float64 // baseline median ns/op (-1 when absent)
	CurNs     float64 // current median ns/op (-1 when absent)
	Ratio     float64 // cur/base
	Threshold float64 // allowed slowdown fraction for this benchmark
	Noise     float64 // baseline MAD/median
	Samples   int     // baseline sample count
	Status    string
}

// SEGateRow is the estimate-quality verdict between two manifests.
type SEGateRow struct {
	BaseSE       float64
	CurSE        float64
	Inflation    float64 // CurSE/BaseSE - 1
	MaxInflation float64
	Regressed    bool
}

// GateReport is the gate's full result. Failed is true if any tracked
// benchmark regressed past its threshold or the SE gate tripped;
// missing and new benchmarks are reported but do not fail the gate.
type GateReport struct {
	Rows   []GateRow
	SE     *SEGateRow
	Failed bool
}

// Gate compares current benchmark results against a baseline with a
// noise-aware threshold: per benchmark, the medians of all samples are
// compared and the allowed slowdown is the larger of opts.MaxSlowdown
// and opts.MADK times the baseline's relative MAD (a benchmark whose
// baseline run already wobbled ±10% is not failed for a 12% delta).
func Gate(baseline, current []BenchResult, opts GateOptions) *GateReport {
	if opts.MaxSlowdown <= 0 {
		opts.MaxSlowdown = DefaultGateOptions().MaxSlowdown
	}
	if opts.MADK <= 0 {
		opts.MADK = DefaultGateOptions().MADK
	}
	border, bns, _ := groupBench(baseline)
	corder, cns, _ := groupBench(current)

	rep := &GateReport{}
	for _, name := range border {
		base := bns[name]
		row := GateRow{Name: name, BaseNs: Median(base), CurNs: -1, Samples: len(base)}
		if row.BaseNs > 0 {
			row.Noise = MAD(base) / row.BaseNs
		}
		row.Threshold = opts.MaxSlowdown
		if t := opts.MADK * row.Noise; t > row.Threshold {
			row.Threshold = t
		}
		if t, ok := opts.PerBench[name]; ok {
			row.Threshold = t
		}
		cur, ok := cns[name]
		if !ok {
			row.Status = GateMissing
			rep.Rows = append(rep.Rows, row)
			continue
		}
		row.CurNs = Median(cur)
		if row.BaseNs > 0 {
			row.Ratio = row.CurNs / row.BaseNs
		}
		row.Status = GateOK
		if row.Ratio > 1+row.Threshold {
			row.Status = GateRegressed
			rep.Failed = true
		}
		rep.Rows = append(rep.Rows, row)
	}
	for _, name := range corder {
		if _, ok := bns[name]; !ok {
			rep.Rows = append(rep.Rows, GateRow{
				Name: name, BaseNs: -1, CurNs: Median(cns[name]), Status: GateNew,
			})
		}
	}
	return rep
}

// GateSE compares estimate quality between two manifests: the current
// run's standard error may not inflate past baseline·(1+maxInflation).
// Manifests without sampling sections (or a zero baseline SE) pass
// vacuously with a nil row.
func GateSE(base, cur *obs.Manifest, maxInflation float64) *SEGateRow {
	if base == nil || cur == nil || base.Sampling == nil || cur.Sampling == nil {
		return nil
	}
	if base.Sampling.SE <= 0 {
		return nil
	}
	row := &SEGateRow{
		BaseSE:       base.Sampling.SE,
		CurSE:        cur.Sampling.SE,
		MaxInflation: maxInflation,
	}
	row.Inflation = row.CurSE/row.BaseSE - 1
	row.Regressed = maxInflation > 0 && row.Inflation > maxInflation
	return row
}
