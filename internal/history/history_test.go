package history

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"simprof/internal/obs"
)

func testManifest(tool string, seed uint64, se float64) *obs.Manifest {
	m := obs.NewManifest(tool, nil)
	m.Workload = &obs.WorkloadInfo{Benchmark: "wc", Framework: "spark", Seed: seed, Units: 100}
	m.Sampling = &obs.SamplingInfo{Method: "SimProf", N: 20, EstCPI: 1.5, SE: se, CILo: 1.5 - 3*se, CIHi: 1.5 + 3*se, RelErr: 0.01}
	m.Spans = &obs.Span{
		Name: tool, DurNS: 1000, GID: 1,
		Children: []*obs.Span{
			{Name: "phase.form", StartNS: 10, DurNS: 600, GID: 1,
				Children: []*obs.Span{{Name: "phase.cluster", StartNS: 20, DurNS: 400, GID: 1}}},
		},
	}
	m.Metrics = []obs.Metric{
		{Name: "cluster.choosek_sweeps", Kind: "counter", Value: 1},
		{Name: "parallel.chunks", Kind: "counter", Value: 40},
	}
	return m
}

func TestStoreAppendReadGet(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.jsonl")
	s := Open(path)

	// Empty store: reads as empty, Get errors.
	recs, skipped, err := s.Records()
	if err != nil || len(recs) != 0 || skipped != 0 {
		t.Fatalf("empty store: recs=%d skipped=%d err=%v", len(recs), skipped, err)
	}
	if _, err := s.Get(0); err == nil {
		t.Fatal("Get on empty store did not error")
	}

	m1 := testManifest("simprof compare", 7, 0.02)
	r1, err := s.Append(FromManifest(m1))
	if err != nil {
		t.Fatal(err)
	}
	if r1.Seq != 1 || r1.Time == "" {
		t.Fatalf("first append: seq=%d time=%q", r1.Seq, r1.Time)
	}
	if !strings.Contains(r1.Key, "wc_spark") || !strings.Contains(r1.Key, "seed=7") {
		t.Errorf("key %q missing workload/seed", r1.Key)
	}

	r2 := FromManifest(testManifest("simprof compare", 7, 0.03))
	r2.Bench = []BenchResult{{Name: "BenchmarkForm-8", Iters: 100, NsPerOp: 5000}}
	if _, err := s.Append(r2); err != nil {
		t.Fatal(err)
	}

	recs, skipped, err = s.Records()
	if err != nil || skipped != 0 {
		t.Fatalf("read back: skipped=%d err=%v", skipped, err)
	}
	if len(recs) != 2 || recs[0].Seq != 1 || recs[1].Seq != 2 {
		t.Fatalf("read back %d records: %+v", len(recs), recs)
	}
	if recs[1].Bench[0].NsPerOp != 5000 {
		t.Errorf("bench results did not round trip: %+v", recs[1].Bench)
	}
	if recs[0].Manifest == nil || recs[0].Manifest.Sampling.SE != 0.02 {
		t.Errorf("manifest did not round trip")
	}

	// Get by seq, last, and from the end.
	if r, err := s.Get(2); err != nil || r.Seq != 2 {
		t.Errorf("Get(2): %v %v", r, err)
	}
	if r, err := s.Get(0); err != nil || r.Seq != 2 {
		t.Errorf("Get(0) last: %v %v", r, err)
	}
	if r, err := s.Get(-2); err != nil || r.Seq != 1 {
		t.Errorf("Get(-2): %v %v", r, err)
	}
	if _, err := s.Get(99); err == nil {
		t.Error("Get(99) did not error")
	}
}

// TestStoreTornWrite checks the append-only robustness contract: a
// truncated final line (crashed writer) is skipped and counted, and
// appends still work afterwards.
func TestStoreTornWrite(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.jsonl")
	s := Open(path)
	if _, err := s.Append(FromManifest(testManifest("simprof compare", 7, 0.02))); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"seq":2,"key":"trunc`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	recs, skipped, err := s.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || skipped != 1 {
		t.Fatalf("torn store: recs=%d skipped=%d", len(recs), skipped)
	}
	r3, err := s.Append(FromManifest(testManifest("simprof compare", 8, 0.02)))
	if err != nil {
		t.Fatal(err)
	}
	if r3.Seq != 2 {
		t.Errorf("append after torn write got seq %d", r3.Seq)
	}
}

func TestKeyDegenerate(t *testing.T) {
	if k := Key(nil); k != "-/-/-/-" {
		t.Errorf("nil manifest key = %q", k)
	}
	m := &obs.Manifest{Tool: "expreport"}
	if k := Key(m); !strings.Contains(k, "expreport") || !strings.HasSuffix(k, "-/-") {
		t.Errorf("workload-less key = %q", k)
	}
}

func TestDiff(t *testing.T) {
	a := FromManifest(testManifest("simprof compare", 7, 0.020))
	b := FromManifest(testManifest("simprof compare", 7, 0.030))
	// Make run B slower in one stage, missing another, with one new
	// metric and one changed counter.
	b.Manifest.Spans.Children[0].DurNS = 1200
	b.Manifest.Spans.Children[0].Children = nil // phase.cluster absent in B
	b.Manifest.Metrics = []obs.Metric{
		{Name: "cluster.choosek_sweeps", Kind: "counter", Value: 3},
		{Name: "sampling.simprof_runs", Kind: "counter", Value: 1},
	}
	a.Bench = []BenchResult{
		{Name: "BenchmarkForm-8", Iters: 100, NsPerOp: 1000},
		{Name: "BenchmarkForm-8", Iters: 100, NsPerOp: 1200},
		{Name: "BenchmarkForm-8", Iters: 100, NsPerOp: 1100},
	}
	b.Bench = []BenchResult{{Name: "BenchmarkForm-8", Iters: 100, NsPerOp: 2200}}

	d := Compute(a, b)

	spans := map[string]SpanDelta{}
	for _, sd := range d.Spans {
		spans[sd.Path] = sd
	}
	form := spans["simprof compare/phase.form"]
	if form.DeltaNS != 600 || math.Abs(form.Ratio-2.0) > 1e-9 {
		t.Errorf("phase.form delta: %+v", form)
	}
	cl := spans["simprof compare/phase.form/phase.cluster"]
	if cl.ADurNS != 400 || cl.BDurNS != -1 {
		t.Errorf("stage absent in B not flagged: %+v", cl)
	}

	metrics := map[string]MetricDelta{}
	for _, md := range d.Metrics {
		metrics[md.Name] = md
	}
	if md := metrics["cluster.choosek_sweeps"]; md.Delta != 2 {
		t.Errorf("counter delta: %+v", md)
	}
	if md := metrics["parallel.chunks"]; md.OnlyIn != "a" {
		t.Errorf("metric only in A not flagged: %+v", md)
	}
	if md := metrics["sampling.simprof_runs"]; md.OnlyIn != "b" {
		t.Errorf("metric only in B not flagged: %+v", md)
	}

	if d.Sampling == nil {
		t.Fatal("no sampling delta")
	}
	if math.Abs(d.Sampling.SERatio-1.5) > 1e-9 {
		t.Errorf("SE ratio = %v, want 1.5", d.Sampling.SERatio)
	}
	if math.Abs(d.Sampling.CIWidthB-6*0.03) > 1e-9 {
		t.Errorf("CI width B = %v", d.Sampling.CIWidthB)
	}

	if len(d.Bench) != 1 {
		t.Fatalf("bench deltas: %+v", d.Bench)
	}
	bd := d.Bench[0]
	if bd.ANs != 1100 || bd.BNs != 2200 || math.Abs(bd.Ratio-2.0) > 1e-9 || bd.ASamples != 3 {
		t.Errorf("bench delta median-of-3: %+v", bd)
	}
}

func benchSamples(name string, ns ...float64) []BenchResult {
	var out []BenchResult
	for _, v := range ns {
		out = append(out, BenchResult{Name: name, Iters: 100, NsPerOp: v})
	}
	return out
}

func TestGate(t *testing.T) {
	base := append(benchSamples("BenchmarkForm-8", 1000, 1020, 980),
		append(benchSamples("BenchmarkChooseK-8", 5000, 5100, 4900),
			benchSamples("BenchmarkGone-8", 10)...)...)

	t.Run("identical-baseline-passes", func(t *testing.T) {
		rep := Gate(base, base, DefaultGateOptions())
		if rep.Failed {
			t.Fatalf("gate failed on its own baseline: %+v", rep.Rows)
		}
		for _, row := range rep.Rows {
			if row.Status != GateOK {
				t.Errorf("row %s status %s", row.Name, row.Status)
			}
		}
	})

	t.Run("synthetic-slowdown-fails", func(t *testing.T) {
		cur := append(benchSamples("BenchmarkForm-8", 2000, 2040), // 2× slower
			benchSamples("BenchmarkChooseK-8", 5050)...)
		rep := Gate(base, cur, DefaultGateOptions())
		if !rep.Failed {
			t.Fatal("gate passed a 2× slowdown")
		}
		var form, choose, gone GateRow
		for _, row := range rep.Rows {
			switch row.Name {
			case "BenchmarkForm":
				form = row
			case "BenchmarkChooseK":
				choose = row
			case "BenchmarkGone":
				gone = row
			}
		}
		if form.Status != GateRegressed || math.Abs(form.Ratio-2.02) > 0.01 {
			t.Errorf("Form row: %+v", form)
		}
		if choose.Status != GateOK {
			t.Errorf("ChooseK within noise flagged: %+v", choose)
		}
		if gone.Status != GateMissing {
			t.Errorf("missing benchmark: %+v", gone)
		}
	})

	t.Run("noisy-baseline-gets-headroom", func(t *testing.T) {
		// Baseline wobbles ±40%: MAD/median = 400/1000; MADK=4 allows
		// +160%, so a +50% "regression" stays within noise.
		noisy := benchSamples("BenchmarkJitter-8", 600, 1000, 1400)
		cur := benchSamples("BenchmarkJitter-8", 1500)
		rep := Gate(noisy, cur, DefaultGateOptions())
		if rep.Failed {
			t.Fatalf("gate failed inside the noise band: %+v", rep.Rows)
		}
		if rep.Rows[0].Threshold <= 0.25 {
			t.Errorf("MAD did not widen the threshold: %+v", rep.Rows[0])
		}
	})

	t.Run("per-bench-override", func(t *testing.T) {
		cur := benchSamples("BenchmarkForm-8", 1300) // +30%
		opts := DefaultGateOptions()
		rep := Gate(base, cur, opts)
		if !rep.Failed {
			t.Fatal("+30% passed the default 25% threshold")
		}
		opts.PerBench = map[string]float64{"BenchmarkForm": 0.5}
		rep = Gate(base, cur, opts)
		for _, row := range rep.Rows {
			if row.Name == "BenchmarkForm" && row.Status != GateOK {
				t.Fatalf("override ignored: %+v", row)
			}
		}
	})

	t.Run("new-benchmark-reported-not-failed", func(t *testing.T) {
		cur := append(benchSamples("BenchmarkForm-8", 1000), benchSamples("BenchmarkFresh-8", 7)...)
		rep := Gate(base, cur, DefaultGateOptions())
		var fresh GateRow
		for _, row := range rep.Rows {
			if row.Name == "BenchmarkFresh" {
				fresh = row
			}
		}
		if fresh.Status != GateNew {
			t.Errorf("new benchmark: %+v", fresh)
		}
	})
}

func TestParsePerBench(t *testing.T) {
	m, err := ParsePerBench("BenchmarkForm=0.5, BenchmarkX=1.25")
	if err != nil || m["BenchmarkForm"] != 0.5 || m["BenchmarkX"] != 1.25 {
		t.Fatalf("parse: %v %v", m, err)
	}
	if m, err := ParsePerBench(""); err != nil || m != nil {
		t.Fatalf("empty spec: %v %v", m, err)
	}
	for _, bad := range []string{"NoEquals", "X=", "X=abc", "X=-1", "=0.5"} {
		if _, err := ParsePerBench(bad); err == nil {
			t.Errorf("%q parsed without error", bad)
		}
	}
}

func TestGateSE(t *testing.T) {
	base := testManifest("simprof compare", 7, 0.020)
	cur := testManifest("simprof compare", 7, 0.030) // +50% SE

	row := GateSE(base, cur, 0.2)
	if row == nil || !row.Regressed {
		t.Fatalf("50%% SE inflation passed a 20%% gate: %+v", row)
	}
	if math.Abs(row.Inflation-0.5) > 1e-9 {
		t.Errorf("inflation = %v, want 0.5", row.Inflation)
	}
	if row := GateSE(base, cur, 0.6); row == nil || row.Regressed {
		t.Errorf("within-budget inflation failed: %+v", row)
	}
	if row := GateSE(base, base, 0.2); row == nil || row.Regressed {
		t.Errorf("identical manifests failed the SE gate: %+v", row)
	}
	// Vacuous passes: no sampling sections or zero baseline SE.
	if row := GateSE(nil, cur, 0.2); row != nil {
		t.Errorf("nil baseline produced a row: %+v", row)
	}
	noSE := testManifest("simprof compare", 7, 0)
	if row := GateSE(noSE, cur, 0.2); row != nil {
		t.Errorf("zero baseline SE produced a row: %+v", row)
	}
}

func TestMedianMAD(t *testing.T) {
	if !math.IsNaN(Median(nil)) {
		t.Error("median of empty is not NaN")
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Error("odd median")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Error("even median")
	}
	if MAD([]float64{5}) != 0 {
		t.Error("single-sample MAD should be 0")
	}
	if MAD([]float64{1, 1, 1, 9}) != 0 {
		t.Error("MAD should be robust to one outlier")
	}
	if MAD([]float64{600, 1000, 1400}) != 400 {
		t.Error("MAD of symmetric spread")
	}
}
