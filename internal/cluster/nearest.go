package cluster

import "math"

// NearestSet is a fixed set of centers prepared for repeated
// nearest-center queries: the squared norm and the norm of every center
// are cached once, so each query can skip candidates whose norm bound
// (‖p‖−‖c‖)² proves them strictly worse than the current best without
// touching the center's coordinates. Phase formation uses it to classify
// degraded units against the chosen centroids, and sensitivity analysis
// to classify every unit of a reference-input trace.
type NearestSet struct {
	centers  [][]float64
	cn2, cnr []float64
}

// NewNearestSet caches the norms of centers. The centers are aliased,
// not copied; they must not be mutated while the set is in use.
func NewNearestSet(centers [][]float64) *NearestSet {
	s := &NearestSet{
		centers: centers,
		cn2:     make([]float64, len(centers)),
		cnr:     make([]float64, len(centers)),
	}
	for c, center := range centers {
		var s2 float64
		for _, v := range center {
			s2 += v * v
		}
		s.cn2[c] = s2
		s.cnr[c] = math.Sqrt(s2)
	}
	return s
}

// Nearest returns NearestCenter(p, centers) bit-for-bit: the index of
// the closest center and the squared distance to it. A candidate is
// skipped only when its norm bound shows — with the normSlack safety
// margin — that its distance strictly exceeds the current best, which
// under NearestCenter's strict-< scan means it could never have been
// selected.
func (s *NearestSet) Nearest(p []float64) (int, float64) {
	var pn2 float64
	for _, v := range p {
		pn2 += v * v
	}
	pnr := math.Sqrt(pn2)
	best, bestD := -1, math.Inf(1)
	for c, center := range s.centers {
		df := pnr - s.cnr[c]
		nb := df * df
		if nb > bestD && nb-bestD > normSlack*(nb+pn2+s.cn2[c]) {
			continue
		}
		if d := SqDist(p, center); d < bestD {
			best, bestD = c, d
		}
	}
	return best, bestD
}
