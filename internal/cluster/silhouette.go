package cluster

import (
	"math"

	"simprof/internal/matrix"
	"simprof/internal/parallel"
)

// silhouetteChunk is the chunk size of the exact silhouette's outer
// loop. Each outer point costs O(n·d), so chunks are kept small to
// spread the quadratic work evenly across workers; like pointChunk it
// is fixed so the reduction order never depends on the worker count.
const silhouetteChunk = 32

// Silhouette returns the exact mean silhouette coefficient of the
// clustering: for each point, a = mean distance to its own cluster's
// other members, b = lowest mean distance to another cluster, and
// s = (b-a)/max(a,b). Points in singleton clusters contribute 0 (the
// sklearn convention). The result is in [-1, 1]; it is 0 when every
// cluster is a singleton and NaN-free by construction. O(n²·d): use
// SimplifiedSilhouette for large inputs. The pairwise pass runs on the
// shared parallel engine; use SilhouetteWith to bound its concurrency.
func Silhouette(points [][]float64, assign []int, k int) float64 {
	return SilhouetteWith(parallel.Default(), points, assign, k)
}

// SilhouetteWith is Silhouette on a caller-supplied engine. The result
// is bit-for-bit identical for every worker count: per-point terms are
// summed within fixed chunks and chunk partials merge in index order.
func SilhouetteWith(eng *parallel.Engine, points [][]float64, assign []int, k int) float64 {
	n := len(points)
	if n == 0 || k < 2 {
		return 0
	}
	sizes := make([]int, k)
	for _, c := range assign {
		sizes[c]++
	}
	total := parallel.MapReduce(eng, n, silhouetteChunk,
		func(_, lo, hi int) float64 {
			return silhouetteRange(points, assign, sizes, k, lo, hi)
		},
		func(a, b float64) float64 { return a + b })
	return total / float64(n)
}

// silhouetteRange sums the silhouette terms of points [lo, hi). Kept as
// a top-level function (not a closure) so the O(n·d)-per-point inner
// loop compiles to the same code the serial implementation had.
func silhouetteRange(points [][]float64, assign []int, sizes []int, k, lo, hi int) float64 {
	sum := make([]float64, k) // per-chunk scratch: cluster → Σ dist
	var part float64
	for i := lo; i < hi; i++ {
		p := points[i]
		for c := range sum {
			sum[c] = 0
		}
		for j, q := range points {
			if i == j {
				continue
			}
			sum[assign[j]] += Dist(p, q)
		}
		ci := assign[i]
		if sizes[ci] <= 1 {
			continue // silhouette of a singleton is defined as 0
		}
		a := sum[ci] / float64(sizes[ci]-1)
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == ci || sizes[c] == 0 {
				continue
			}
			if m := sum[c] / float64(sizes[c]); m < b {
				b = m
			}
		}
		if math.IsInf(b, 1) {
			continue
		}
		if m := math.Max(a, b); m > 0 {
			part += (b - a) / m
		}
	}
	return part
}

// SimplifiedSilhouette is the centroid-based silhouette: a = distance to
// the assigned centroid, b = distance to the nearest other centroid.
// It tracks the exact silhouette closely for compact clusters and runs in
// O(n·k·d), which keeps the k-sweep over thousands of 100-dimensional
// sampling units cheap. Degenerate clusterings (all points on their
// centroid, no second centroid) score 0.
func SimplifiedSilhouette(points [][]float64, centers [][]float64, assign []int) float64 {
	return SimplifiedSilhouetteWith(parallel.Default(), points, centers, assign)
}

// SimplifiedSilhouetteWith is SimplifiedSilhouette on a caller-supplied
// engine, with the same worker-count-independent result guarantee as
// SilhouetteWith.
func SimplifiedSilhouetteWith(eng *parallel.Engine, points [][]float64, centers [][]float64, assign []int) float64 {
	n := len(points)
	k := len(centers)
	if n == 0 || k < 2 {
		return 0
	}
	total := parallel.MapReduce(eng, n, pointChunk,
		func(_, lo, hi int) float64 {
			var part float64
			for i := lo; i < hi; i++ {
				p := points[i]
				a := Dist(p, centers[assign[i]])
				b := math.Inf(1)
				for c := range centers {
					if c == assign[i] {
						continue
					}
					if d := Dist(p, centers[c]); d < b {
						b = d
					}
				}
				if math.IsInf(b, 1) {
					continue
				}
				if m := math.Max(a, b); m > 0 {
					part += (b - a) / m
				}
			}
			return part
		},
		func(a, b float64) float64 { return a + b })
	return total / float64(n)
}

// simplifiedSilhouetteDense is the flat-matrix simplified silhouette the
// k sweep runs: same score bit-for-bit as SimplifiedSilhouetteWith. The
// minimum over the other centroids is taken in the squared domain (the
// correctly-rounded sqrt is monotone, so √min(d²) equals min(√d²)
// exactly) and candidates whose cached-norm bound proves them strictly
// worse than the running minimum are skipped without touching their
// coordinates.
func simplifiedSilhouetteDense(eng *parallel.Engine, pts *matrix.Dense,
	pn2, pnr []float64, centers [][]float64, assign []int) float64 {
	n := pts.Rows()
	k := len(centers)
	if n == 0 || k < 2 {
		return 0
	}
	// The skip chains only pay for themselves when a distance costs
	// more than the handful of flops each test burns; below the gate
	// the scan runs lean (same gate, and same results-unchanged
	// argument, as the Lloyd kernel's).
	useSkips := pts.Cols() >= scanSkipMinDim
	var cn2, cnr, ccd []float64
	if useSkips {
		cn2 = make([]float64, k)
		cnr = make([]float64, k)
		for c, center := range centers {
			var s2 float64
			for _, v := range center {
				s2 += v * v
			}
			cn2[c] = s2
			cnr[c] = math.Sqrt(s2)
		}
		// Inter-centroid distances for the triangle-inequality skip
		// d(p,c) ≥ d(own,c) − d(p,own).
		ccd = make([]float64, k*k)
		for a := 0; a < k; a++ {
			for b := a + 1; b < k; b++ {
				dd := Dist(centers[a], centers[b])
				ccd[a*k+b] = dd
				ccd[b*k+a] = dd
			}
		}
	}
	total := parallel.MapReduce(eng, n, pointChunk,
		func(_, lo, hi int) float64 {
			var part float64
			for i := lo; i < hi; i++ {
				p := pts.Row(i)
				own := assign[i]
				a := math.Sqrt(SqDist(p, centers[own]))
				bsq := math.Inf(1)
				for c := range centers {
					if c == own {
						continue
					}
					if useSkips {
						cb := ccd[own*k+c]
						if g := cb - a; g > elkanGuard*(cb+a) {
							if gg := g * g; gg-bsq > elkanSlack*(gg+bsq) {
								continue
							}
						}
						df := pnr[i] - cnr[c]
						nb := df * df
						if nb > bsq && nb-bsq > normSlack*(nb+pn2[i]+cn2[c]) {
							continue
						}
					}
					if d := SqDist(p, centers[c]); d < bsq {
						bsq = d
					}
				}
				if math.IsInf(bsq, 1) {
					continue
				}
				b := math.Sqrt(bsq)
				if m := math.Max(a, b); m > 0 {
					part += (b - a) / m
				}
			}
			return part
		},
		func(a, b float64) float64 { return a + b })
	return total / float64(n)
}
