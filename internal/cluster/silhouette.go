package cluster

import "math"

// Silhouette returns the exact mean silhouette coefficient of the
// clustering: for each point, a = mean distance to its own cluster's
// other members, b = lowest mean distance to another cluster, and
// s = (b-a)/max(a,b). Points in singleton clusters contribute 0 (the
// sklearn convention). The result is in [-1, 1]; it is 0 when every
// cluster is a singleton and NaN-free by construction. O(n²·d): use
// SimplifiedSilhouette for large inputs.
func Silhouette(points [][]float64, assign []int, k int) float64 {
	n := len(points)
	if n == 0 || k < 2 {
		return 0
	}
	sizes := make([]int, k)
	for _, c := range assign {
		sizes[c]++
	}
	var total float64
	sum := make([]float64, k)
	for i, p := range points {
		for c := range sum {
			sum[c] = 0
		}
		for j, q := range points {
			if i == j {
				continue
			}
			sum[assign[j]] += Dist(p, q)
		}
		ci := assign[i]
		if sizes[ci] <= 1 {
			continue // silhouette of a singleton is defined as 0
		}
		a := sum[ci] / float64(sizes[ci]-1)
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == ci || sizes[c] == 0 {
				continue
			}
			if m := sum[c] / float64(sizes[c]); m < b {
				b = m
			}
		}
		if math.IsInf(b, 1) {
			continue
		}
		if m := math.Max(a, b); m > 0 {
			total += (b - a) / m
		}
	}
	return total / float64(n)
}

// SimplifiedSilhouette is the centroid-based silhouette: a = distance to
// the assigned centroid, b = distance to the nearest other centroid.
// It tracks the exact silhouette closely for compact clusters and runs in
// O(n·k·d), which keeps the k-sweep over thousands of 100-dimensional
// sampling units cheap. Degenerate clusterings (all points on their
// centroid, no second centroid) score 0.
func SimplifiedSilhouette(points [][]float64, centers [][]float64, assign []int) float64 {
	n := len(points)
	k := len(centers)
	if n == 0 || k < 2 {
		return 0
	}
	var total float64
	for i, p := range points {
		a := Dist(p, centers[assign[i]])
		b := math.Inf(1)
		for c := range centers {
			if c == assign[i] {
				continue
			}
			if d := Dist(p, centers[c]); d < b {
				b = d
			}
		}
		if math.IsInf(b, 1) {
			continue
		}
		if m := math.Max(a, b); m > 0 {
			total += (b - a) / m
		}
	}
	return total / float64(n)
}
