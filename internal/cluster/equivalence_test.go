package cluster

import (
	"math"
	"reflect"
	"testing"
	"testing/quick"

	"simprof/internal/matrix"
	"simprof/internal/obs"
	"simprof/internal/parallel"
	"simprof/internal/stats"
)

// The bound-pruned Lloyd kernel's contract is bit-for-bit equivalence
// with the retained naive kernel: same centers, same assignments, same
// inertia floats, for every worker count, telemetry on or off. These
// tests are the enforcement (scripts/check.sh runs them as the
// kernel-equivalence stage with -count=2).

func runBoth(t *testing.T, pts [][]float64, k int, opts Options) (naive, pruned Result) {
	t.Helper()
	naiveOpts := opts
	naiveOpts.naive = true
	naive, err := KMeans(pts, k, naiveOpts)
	if err != nil {
		t.Fatal(err)
	}
	pruned, err = KMeans(pts, k, opts)
	if err != nil {
		t.Fatal(err)
	}
	return naive, pruned
}

func TestPrunedMatchesNaiveBitForBit(t *testing.T) {
	for _, tc := range []struct {
		name string
		pts  [][]float64
		k    int
		seed uint64
	}{
		{"blobs", benchPoints(400, 24, 5, 17), 5, 9},
		{"more-clusters-than-structure", benchPoints(120, 8, 2, 3), 7, 4},
		{"k1", benchPoints(100, 12, 3, 5), 1, 2},
		{"high-dim", benchPoints(150, 64, 4, 11), 4, 8},
		{"k-equals-n-ish", benchPoints(24, 4, 3, 13), 20, 6},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, w := range workerSweep {
				naive, pruned := runBoth(t, tc.pts, tc.k, Options{Seed: tc.seed, Workers: w})
				if !reflect.DeepEqual(naive, pruned) {
					t.Fatalf("workers=%d: pruned diverged from naive\nnaive:  inertia=%.17g iters=%d sizes=%v\npruned: inertia=%.17g iters=%d sizes=%v",
						w, naive.Inertia, naive.Iters, naive.Sizes,
						pruned.Inertia, pruned.Iters, pruned.Sizes)
				}
			}
		})
	}
}

// TestPrunedMatchesNaiveProperty fuzzes the equivalence over random
// clustering problems: random sizes, dimensions, cluster counts, k and
// worker counts — including adversarial duplicate points (tie-heavy
// inputs are where a sloppy pruning rule would diverge first).
func TestPrunedMatchesNaiveProperty(t *testing.T) {
	prop := func(seed uint64, kRaw, wRaw, dRaw uint8) bool {
		n := 30 + int(seed%300)
		d := 2 + int(dRaw%12)
		k := int(kRaw%8) + 1
		workers := []int{1, 2, 8}[int(wRaw)%3]
		pts := benchPoints(n, d, 3, seed)
		// Duplicate a slice of points to force exact distance ties.
		for i := 0; i < n/8; i++ {
			copy(pts[n-1-i], pts[i])
		}
		opts := Options{Seed: seed, Workers: workers}
		naiveOpts := opts
		naiveOpts.naive = true
		naive, errA := KMeans(pts, k, naiveOpts)
		pruned, errB := KMeans(pts, k, opts)
		if (errA == nil) != (errB == nil) {
			return false
		}
		return reflect.DeepEqual(naive, pruned)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPrunedMatchesNaiveWithTelemetry pins the telemetry-independence
// half of the acceptance contract: enabling obs must not perturb a
// single float of either kernel.
func TestPrunedMatchesNaiveWithTelemetry(t *testing.T) {
	pts := benchPoints(300, 16, 4, 19)
	offNaive, offPruned := runBoth(t, pts, 4, Options{Seed: 7})
	obs.Enable()
	defer obs.Disable()
	onNaive, onPruned := runBoth(t, pts, 4, Options{Seed: 7})
	if !reflect.DeepEqual(offNaive, onNaive) {
		t.Fatal("telemetry changed the naive kernel result")
	}
	if !reflect.DeepEqual(offPruned, onPruned) {
		t.Fatal("telemetry changed the pruned kernel result")
	}
	if !reflect.DeepEqual(onNaive, onPruned) {
		t.Fatal("pruned diverged from naive with telemetry enabled")
	}
}

func TestChooseKPrunedMatchesNaive(t *testing.T) {
	pts := benchPoints(600, 32, 4, 23)
	for _, w := range workerSweep {
		naiveSel, err := ChooseK(pts, ChooseKOptions{MaxK: 10,
			KMeans: Options{Seed: 5, naive: true}, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		prunedSel, err := ChooseK(pts, ChooseKOptions{MaxK: 10,
			KMeans: Options{Seed: 5}, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(naiveSel, prunedSel) {
			t.Fatalf("workers=%d: ChooseK diverged (k=%d scores=%v vs k=%d scores=%v)",
				w, naiveSel.K, naiveSel.Scores, prunedSel.K, prunedSel.Scores)
		}
	}
}

// TestPruningEffectiveness asserts the kernel actually prunes: on
// clustered synthetic data most of the naive kernel's distance
// computations must be skipped, otherwise the bounds machinery is dead
// weight.
func TestPruningEffectiveness(t *testing.T) {
	pts := matrix.FromRows(benchPoints(2000, 24, 6, 31))
	pn2, pnr := pointNorms(pts)
	_, st, err := kMeansDenseWith(parallel.New(1), pts, pn2, pnr, 6, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st.equivalent == 0 || st.computed == 0 {
		t.Fatalf("missing distance accounting: %+v", st)
	}
	frac := float64(st.equivalent-st.computed) / float64(st.equivalent)
	if frac <= 0.5 {
		t.Fatalf("pruned only %.1f%% of %d distance computations, want >50%%",
			frac*100, st.equivalent)
	}
	t.Logf("pruned %.1f%% (%d of %d distance computations)",
		frac*100, st.equivalent-st.computed, st.equivalent)
}

// TestDrawWeightedMatchesLinear pins satellite semantics: the chunked
// weighted draw must return exactly the sequential scan's index for any
// weights and any u — including u at 0, at the total, and beyond it.
func TestDrawWeightedMatchesLinear(t *testing.T) {
	prop := func(seed uint64, uRaw uint16) bool {
		rng := stats.NewRNG(seed)
		n := 1 + int(seed%2000)
		w := make([]float64, n)
		for i := range w {
			switch rng.IntN(4) {
			case 0:
				w[i] = 0 // exact-zero weights stress the ≥ boundary
			case 1:
				w[i] = rng.Float64() * 1e-12
			default:
				w[i] = rng.Float64() * 100
			}
		}
		chunks := parallel.Chunks(n, pointChunk)
		partial := make([]float64, chunks)
		var total float64
		for c := 0; c < chunks; c++ {
			lo, hi := c*pointChunk, (c+1)*pointChunk
			if hi > n {
				hi = n
			}
			var sum float64
			for i := lo; i < hi; i++ {
				sum += w[i]
			}
			partial[c] = sum
			total += sum
		}
		if total == 0 {
			return true // the seeding draws uniformly in this case
		}
		u := float64(uRaw) / math.MaxUint16 * total * 1.001
		return drawWeighted(w, partial, total, u) == drawLinear(w, u)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestSeedingPickSequencePreserved asserts the dense seeding consumes
// the RNG identically to the reference seeding and picks the same
// centers (satellite: same RNG consumption, same chosen indices).
func TestSeedingPickSequencePreserved(t *testing.T) {
	prop := func(seed uint64, kRaw uint8) bool {
		n := 40 + int(seed%400)
		k := int(kRaw%10) + 1
		rows := benchPoints(n, 6, 3, seed)
		// Duplicates create zero weights in the D² distribution.
		for i := 0; i < n/6; i++ {
			copy(rows[n-1-i], rows[i])
		}
		pts := matrix.FromRows(rows)
		pn2, pnr := pointNorms(pts)
		eng := parallel.New(1)
		rngA := stats.NewRNG(seed)
		refCenters := seedPlusPlus(rows, k, rngA, eng)
		rngB := stats.NewRNG(seed)
		sc := newLloydScratch(n, k, 6)
		var st distStats
		denseCenters := seedPlusPlusDense(pts, pn2, pnr, k, rngB, eng, sc, &st)
		for c := range refCenters {
			if !reflect.DeepEqual(refCenters[c], denseCenters.Row(c)) {
				return false
			}
		}
		// Identical residual RNG state ⇒ identical consumption.
		return rngA.Uint64() == rngB.Uint64()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestNearestSetMatchesNearestCenter pins the cached-norm classifier
// against the plain scan, including empty center sets.
func TestNearestSetMatchesNearestCenter(t *testing.T) {
	prop := func(seed uint64, kRaw uint8) bool {
		rng := stats.NewRNG(seed)
		k := int(kRaw % 8) // 0 centers allowed
		d := 3 + int(seed%9)
		centers := make([][]float64, k)
		for c := range centers {
			centers[c] = make([]float64, d)
			for j := range centers[c] {
				centers[c][j] = rng.Float64() * 50
			}
		}
		set := NewNearestSet(centers)
		for trial := 0; trial < 20; trial++ {
			p := make([]float64, d)
			for j := range p {
				p[j] = rng.Float64() * 50
			}
			if trial%5 == 0 && k > 0 {
				copy(p, centers[rng.IntN(k)]) // exact hits
			}
			wantC, wantD := NearestCenter(p, centers)
			gotC, gotD := set.Nearest(p)
			if wantC != gotC || wantD != gotD {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestSimplifiedSilhouetteDenseMatches pins the squared-domain,
// norm-pruned silhouette against the reference implementation.
func TestSimplifiedSilhouetteDenseMatches(t *testing.T) {
	prop := func(seed uint64, kRaw uint8) bool {
		n := 30 + int(seed%300)
		k := int(kRaw%6) + 2
		rows := benchPoints(n, 10, k, seed)
		pts := matrix.FromRows(rows)
		pn2, pnr := pointNorms(pts)
		res, err := KMeans(rows, k, Options{Seed: seed})
		if err != nil {
			return false
		}
		eng := parallel.New(1)
		want := SimplifiedSilhouetteWith(eng, rows, res.Centers, res.Assign)
		got := simplifiedSilhouetteDense(eng, pts, pn2, pnr, res.Centers, res.Assign)
		return want == got
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
