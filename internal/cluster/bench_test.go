package cluster

import (
	"testing"

	"simprof/internal/matrix"
	"simprof/internal/parallel"
	"simprof/internal/stats"
)

// benchPoints builds n points in d dimensions around k true centers —
// the shape of phase-formation inputs (N sampling units × top-K method
// dimensions).
func benchPoints(n, d, k int, seed uint64) [][]float64 {
	rng := stats.NewRNG(seed)
	centers := make([][]float64, k)
	for c := range centers {
		centers[c] = make([]float64, d)
		for j := range centers[c] {
			centers[c][j] = rng.Float64() * 20
		}
	}
	pts := make([][]float64, n)
	for i := range pts {
		c := centers[i%k]
		p := make([]float64, d)
		for j := range p {
			p[j] = c[j] + rng.NormFloat64()
		}
		pts[i] = p
	}
	return pts
}

func BenchmarkKMeans_1000x100(b *testing.B) {
	pts := benchPoints(1000, 100, 6, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KMeans(pts, 6, Options{Seed: uint64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKMeansDense pits the retained naive Lloyd kernel against the
// production bound-pruned one on the same flat matrix, shared norms and
// engine — the speedup ratio is the pruning machinery's net win at the
// phase-formation problem shape.
func BenchmarkKMeansDense(b *testing.B) {
	pts := matrix.FromRows(benchPoints(1000, 100, 6, 1))
	pn2, pnr := pointNorms(pts)
	eng := parallel.New(1)
	for _, bc := range []struct {
		name  string
		naive bool
	}{{"Naive", true}, {"Pruned", false}} {
		b.Run(bc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := Options{Seed: uint64(i), naive: bc.naive}
				if _, _, err := kMeansDenseWith(eng, pts, pn2, pnr, 6, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkChooseK is the full phase-formation k sweep (k ∈ [1,20] with
// the silhouette scoring), the dominant cost of SimProf's analysis.
// The serial variant pins Workers=1 (the baseline the determinism suite
// compares against); the parallel variant runs the default pool.
func benchChooseK(b *testing.B, workers int) {
	pts := benchPoints(1000, 100, 6, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opts := ChooseKOptions{KMeans: Options{Seed: uint64(i)}, Workers: workers}
		if _, err := ChooseK(pts, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChooseKSerial_1000x100(b *testing.B)   { benchChooseK(b, 1) }
func BenchmarkChooseKParallel_1000x100(b *testing.B) { benchChooseK(b, 0) }

// BenchmarkChooseKParallel is the acceptance benchmark: the Fig 9-scale
// k sweep on the GOMAXPROCS-sized pool.
func BenchmarkChooseKParallel(b *testing.B) { benchChooseK(b, 0) }

// BenchmarkSilhouetteExactVsSimplified quantifies why phase formation
// uses the centroid-based silhouette: the exact form is O(n²·d).
func BenchmarkSilhouetteExact(b *testing.B) {
	pts := benchPoints(500, 100, 4, 3)
	res, _ := KMeans(pts, 4, Options{Seed: 1})
	eng := parallel.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SilhouetteWith(eng, pts, res.Assign, 4)
	}
}

// BenchmarkSilhouetteParallel is the acceptance benchmark for the O(n²)
// exact silhouette on the GOMAXPROCS-sized pool.
func BenchmarkSilhouetteParallel(b *testing.B) {
	pts := benchPoints(500, 100, 4, 3)
	res, _ := KMeans(pts, 4, Options{Seed: 1})
	eng := parallel.New(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SilhouetteWith(eng, pts, res.Assign, 4)
	}
}

func BenchmarkSilhouetteSimplified(b *testing.B) {
	pts := benchPoints(500, 100, 4, 3)
	res, _ := KMeans(pts, 4, Options{Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SimplifiedSilhouette(pts, res.Centers, res.Assign)
	}
}
