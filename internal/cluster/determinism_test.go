package cluster

import (
	"reflect"
	"runtime"
	"testing"
	"testing/quick"

	"simprof/internal/parallel"
	"simprof/internal/stats"
)

// workerSweep is the cross-cutting determinism contract of the parallel
// rewrite: every worker count must reproduce the serial baseline
// bit-for-bit (same floats, same assignments, same chosen k).
var workerSweep = []int{1, 2, 8}

func TestKMeansBitForBitAcrossWorkers(t *testing.T) {
	pts := benchPoints(400, 24, 5, 17)
	base, err := KMeans(pts, 5, Options{Seed: 9, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerSweep[1:] {
		got, err := KMeans(pts, 5, Options{Seed: 9, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d: KMeans result diverged from serial baseline\nserial: inertia=%.17g sizes=%v\ngot:    inertia=%.17g sizes=%v",
				w, base.Inertia, base.Sizes, got.Inertia, got.Sizes)
		}
	}
}

func TestChooseKBitForBitAcrossWorkers(t *testing.T) {
	pts := benchPoints(600, 32, 4, 23)
	base, err := ChooseK(pts, ChooseKOptions{MaxK: 12, KMeans: Options{Seed: 5}, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range workerSweep[1:] {
		got, err := ChooseK(pts, ChooseKOptions{MaxK: 12, KMeans: Options{Seed: 5}, Workers: w})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("workers=%d: KSelection diverged from serial baseline\nserial: k=%d scores=%v\ngot:    k=%d scores=%v",
				w, base.K, base.Scores, got.K, got.Scores)
		}
	}
}

func TestSilhouettesBitForBitAcrossWorkers(t *testing.T) {
	pts := benchPoints(500, 16, 4, 29)
	res, err := KMeans(pts, 4, Options{Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	exactBase := SilhouetteWith(parallel.New(1), pts, res.Assign, 4)
	simpBase := SimplifiedSilhouetteWith(parallel.New(1), pts, res.Centers, res.Assign)
	for _, w := range workerSweep[1:] {
		eng := parallel.New(w)
		if got := SilhouetteWith(eng, pts, res.Assign, 4); got != exactBase {
			t.Fatalf("workers=%d: exact silhouette %.17g != serial %.17g", w, got, exactBase)
		}
		if got := SimplifiedSilhouetteWith(eng, pts, res.Centers, res.Assign); got != simpBase {
			t.Fatalf("workers=%d: simplified silhouette %.17g != serial %.17g", w, got, simpBase)
		}
	}
}

// TestChooseKStableUnderGOMAXPROCS pins the output against the actual
// parallelism of the runtime, not just the engine's worker cap: the
// chunk grid and merge order must make scheduling invisible.
func TestChooseKStableUnderGOMAXPROCS(t *testing.T) {
	pts := benchPoints(400, 16, 3, 31)
	opts := ChooseKOptions{MaxK: 8, KMeans: Options{Seed: 13}, Workers: 8}
	base, err := ChooseK(pts, opts)
	if err != nil {
		t.Fatal(err)
	}
	old := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(old)
	for _, procs := range []int{1, 2, 4} {
		runtime.GOMAXPROCS(procs)
		got, err := ChooseK(pts, opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("GOMAXPROCS=%d: KSelection diverged (k=%d vs %d)", procs, got.K, base.K)
		}
	}
}

// TestKMeansWorkerInvarianceProperty fuzzes the contract over random
// small inputs: any clustering problem, any worker count, identical
// result structs.
func TestKMeansWorkerInvarianceProperty(t *testing.T) {
	prop := func(seed uint64, kRaw, wRaw uint8) bool {
		n := 30 + int(seed%200)
		k := int(kRaw%6) + 1
		workers := int(wRaw%7) + 2
		pts := benchPoints(n, 8, 3, seed)
		a, errA := KMeans(pts, k, Options{Seed: seed, Workers: 1})
		b, errB := KMeans(pts, k, Options{Seed: seed, Workers: workers})
		if (errA == nil) != (errB == nil) {
			return false
		}
		return reflect.DeepEqual(a, b)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestAssignPartialSumMergeProperty is the kernel-level version of the
// chunked-merge property: the fused assignment pass (per-chunk sizes,
// centroid sums and inertia merged in chunk index order) must agree
// exactly with a plain serial accumulator on the integer outputs, and
// bit-for-bit with its own workers=1 execution on the float outputs.
func TestAssignPartialSumMergeProperty(t *testing.T) {
	prop := func(seed uint64, wRaw uint8) bool {
		n := 50 + int(seed%400)
		workers := int(wRaw%7) + 2
		pts := benchPoints(n, 6, 4, seed)
		rng := stats.NewRNG(seed)
		centers := make([][]float64, 4)
		for c := range centers {
			centers[c] = make([]float64, 6)
			for j := range centers[c] {
				centers[c][j] = rng.Float64() * 20
			}
		}
		run := func(w int) ([]int, []int, float64) {
			assign := make([]int, n)
			sizes := make([]int, 4)
			sc := newLloydScratch(n, 4, 6)
			inertia := assignPoints(parallel.New(w), pts, centers, assign, sizes, sc, true)
			return assign, sizes, inertia
		}
		assign1, sizes1, in1 := run(1)
		assignW, sizesW, inW := run(workers)
		// Serial reference accumulator for the integer outputs.
		refSizes := make([]int, 4)
		for _, p := range pts {
			c, _ := NearestCenter(p, centers)
			refSizes[c]++
		}
		return reflect.DeepEqual(assign1, assignW) &&
			reflect.DeepEqual(sizes1, sizesW) &&
			reflect.DeepEqual(sizes1, refSizes) &&
			in1 == inW
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
