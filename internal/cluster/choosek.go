package cluster

import (
	"context"
	"fmt"

	"simprof/internal/matrix"
	"simprof/internal/obs"
	"simprof/internal/parallel"
)

// Sweep telemetry: how long each k of the silhouette sweep costs and
// how many sweeps ran. Per-k timings use a histogram (not spans)
// because the sweep tasks run concurrently on the worker pool.
var (
	obsSweeps = obs.NewCounter("cluster.choosek_sweeps",
		"ChooseK sweeps run")
	obsSweepK = obs.NewCounter("cluster.choosek_ks",
		"k values swept (clustering + silhouette each)")
	obsSweepSeconds = obs.NewHistogram("cluster.choosek_k_seconds",
		"wall seconds per swept k (k-means restarts + silhouette)",
		0.001, 0.01, 0.1, 1, 10)
)

// KSelection records the outcome of the k sweep used by phase formation.
type KSelection struct {
	K           int       // chosen number of clusters
	Best        Result    // clustering at the chosen k
	Scores      []float64 // silhouette score per k (index 0 ↔ k=1)
	BestScore   float64   // highest silhouette over the sweep
	ChosenScore float64   // silhouette at the chosen k
}

// ChooseKOptions configures ChooseK.
type ChooseKOptions struct {
	MaxK      int     // upper bound of the sweep (paper: 20)
	Threshold float64 // fraction of the best score that still qualifies (default 0.93; paper: 0.90)
	MinScore  float64 // below this best score the data has no cluster structure → k=1 (default 0.20)
	KMeans    Options
	// Workers bounds the concurrency of the whole sweep: the per-k
	// tasks, their k-means restarts and the chunked point passes all
	// share this one budget, so a parallel sweep never oversubscribes.
	// 0 selects GOMAXPROCS; 1 reproduces the serial baseline. The
	// selection is bit-for-bit identical for every setting.
	Workers int
	// Ctx, when non-nil, lets a caller abandon the sweep: once it ends,
	// in-flight chunks finish, no new work starts, and ChooseK returns
	// the context error. A nil Ctx never cancels.
	Ctx context.Context
}

func (o ChooseKOptions) withDefaults() ChooseKOptions {
	if o.MaxK <= 0 {
		o.MaxK = 20
	}
	if o.Threshold <= 0 {
		o.Threshold = 0.93
	}
	if o.MinScore <= 0 {
		o.MinScore = 0.20
	}
	if o.Workers == 0 {
		o.Workers = o.KMeans.Workers
	}
	return o
}

// ChooseK scores every k in [1, MaxK] with the simplified silhouette and
// returns the smallest k whose score is at least Threshold × the best
// score (the paper's rule). k=1 is the degenerate "single phase" answer:
// it is chosen when the best silhouette over k ≥ 2 is below MinScore,
// i.e. when the units do not separate (e.g. grep on Spark, which runs a
// single filter stage).
func ChooseK(points [][]float64, opts ChooseKOptions) (KSelection, error) {
	if len(points) == 0 {
		return KSelection{}, fmt.Errorf("cluster: ChooseK with no points")
	}
	d := len(points[0])
	for i, p := range points {
		if len(p) != d {
			return KSelection{}, fmt.Errorf("cluster: point %d has dim %d, want %d", i, len(p), d)
		}
	}
	return ChooseKDense(matrix.FromRows(points), opts)
}

// ChooseKDense is ChooseK on a flat matrix — the entry phase formation
// uses once its projected vectors already live in a Dense. Point norms
// are computed once and shared by every k of the sweep, every restart's
// seeding and assignment passes, and every silhouette scoring pass.
//
// Every k of the sweep is an independent task (its k-means seed is
// pre-derived from the base seed, its result lands in its own slot), so
// the sweep fans out across the worker pool while remaining
// deterministic.
func ChooseKDense(pts *matrix.Dense, opts ChooseKOptions) (KSelection, error) {
	o := opts.withDefaults()
	n := pts.Rows()
	if n == 0 {
		return KSelection{}, fmt.Errorf("cluster: ChooseK with no points")
	}
	maxK := o.MaxK
	// Small populations cannot support many clusters: below ~20 points
	// per cluster the silhouette sweep overfits sampling noise, so the
	// sweep is capped accordingly.
	if kCap := n / 20; maxK > kCap {
		maxK = kCap
	}
	if maxK < 2 {
		maxK = 2
	}
	if maxK > n {
		maxK = n
	}
	eng := parallel.New(o.Workers).WithContext(o.Ctx)
	pn2, pnr := pointNorms(pts)
	var rows [][]float64
	if o.KMeans.naive {
		rows = pts.RowViews()
	}
	sel := KSelection{Scores: make([]float64, maxK)}
	results := make([]Result, maxK+1)
	kstats := make([]distStats, maxK+1)
	// k = 1 scores 0 by definition (silhouette undefined).
	sel.Scores[0] = 0
	obsSweeps.Inc()
	err := eng.ForEachIndexErr(maxK-1, func(i int) error {
		k := i + 2
		t := obs.StartTimer()
		kmOpts := o.KMeans
		kmOpts.Seed = o.KMeans.Seed + uint64(k)*101
		res, st, err := kMeansDenseWith(eng, pts, pn2, pnr, k, kmOpts)
		if err != nil {
			return err
		}
		results[k] = res
		kstats[k] = st
		if o.KMeans.naive {
			sel.Scores[k-1] = SimplifiedSilhouetteWith(eng, rows, res.Centers, res.Assign)
		} else {
			sel.Scores[k-1] = simplifiedSilhouetteDense(eng, pts, pn2, pnr, res.Centers, res.Assign)
		}
		obsSweepK.Inc()
		obsSweepSeconds.ObserveTimer(t)
		return nil
	})
	if err != nil {
		return KSelection{}, err
	}
	var st distStats
	for _, s := range kstats {
		st.computed += s.computed
		st.equivalent += s.equivalent
	}
	st.record()
	best := 0.0
	for _, s := range sel.Scores {
		if s > best {
			best = s
		}
	}
	sel.BestScore = best
	if best < o.MinScore {
		// No cluster structure: one phase covering everything.
		one, st1, err := kMeansDenseWith(eng, pts, pn2, pnr, 1, o.KMeans)
		if err != nil {
			return KSelection{}, err
		}
		if err := eng.Err(); err != nil {
			// Canceled mid-run: the result may cover a partial grid.
			return KSelection{}, err
		}
		st1.record()
		sel.K, sel.Best, sel.ChosenScore = 1, one, 0
		return sel, nil
	}
	for k := 2; k <= maxK; k++ {
		if sel.Scores[k-1] >= o.Threshold*best {
			sel.K = k
			sel.Best = results[k]
			sel.ChosenScore = sel.Scores[k-1]
			return sel, nil
		}
	}
	// Unreachable: the argmax always satisfies the threshold.
	return sel, fmt.Errorf("cluster: no k satisfied threshold")
}
