package cluster

import "fmt"

// KSelection records the outcome of the k sweep used by phase formation.
type KSelection struct {
	K          int       // chosen number of clusters
	Best       Result    // clustering at the chosen k
	Scores     []float64 // silhouette score per k (index 0 ↔ k=1)
	BestScore  float64   // highest silhouette over the sweep
	ChosenScor float64   // silhouette at the chosen k
}

// ChooseKOptions configures ChooseK.
type ChooseKOptions struct {
	MaxK      int     // upper bound of the sweep (paper: 20)
	Threshold float64 // fraction of the best score that still qualifies (default 0.93; paper: 0.90)
	MinScore  float64 // below this best score the data has no cluster structure → k=1 (default 0.20)
	KMeans    Options
}

func (o ChooseKOptions) withDefaults() ChooseKOptions {
	if o.MaxK <= 0 {
		o.MaxK = 20
	}
	if o.Threshold <= 0 {
		o.Threshold = 0.93
	}
	if o.MinScore <= 0 {
		o.MinScore = 0.20
	}
	return o
}

// ChooseK scores every k in [1, MaxK] with the simplified silhouette and
// returns the smallest k whose score is at least Threshold × the best
// score (the paper's rule). k=1 is the degenerate "single phase" answer:
// it is chosen when the best silhouette over k ≥ 2 is below MinScore,
// i.e. when the units do not separate (e.g. grep on Spark, which runs a
// single filter stage).
func ChooseK(points [][]float64, opts ChooseKOptions) (KSelection, error) {
	o := opts.withDefaults()
	n := len(points)
	if n == 0 {
		return KSelection{}, fmt.Errorf("cluster: ChooseK with no points")
	}
	maxK := o.MaxK
	// Small populations cannot support many clusters: below ~20 points
	// per cluster the silhouette sweep overfits sampling noise, so the
	// sweep is capped accordingly.
	if cap := n / 20; maxK > cap {
		maxK = cap
	}
	if maxK < 2 {
		maxK = 2
	}
	if maxK > n {
		maxK = n
	}
	sel := KSelection{Scores: make([]float64, maxK)}
	results := make([]Result, maxK+1)
	// k = 1 scores 0 by definition (silhouette undefined).
	sel.Scores[0] = 0
	for k := 2; k <= maxK; k++ {
		kmOpts := o.KMeans
		kmOpts.Seed = o.KMeans.Seed + uint64(k)*101
		res, err := KMeans(points, k, kmOpts)
		if err != nil {
			return KSelection{}, err
		}
		results[k] = res
		sel.Scores[k-1] = SimplifiedSilhouette(points, res.Centers, res.Assign)
	}
	best := 0.0
	for _, s := range sel.Scores {
		if s > best {
			best = s
		}
	}
	sel.BestScore = best
	if best < o.MinScore {
		// No cluster structure: one phase covering everything.
		one, err := KMeans(points, 1, o.KMeans)
		if err != nil {
			return KSelection{}, err
		}
		sel.K, sel.Best, sel.ChosenScor = 1, one, 0
		return sel, nil
	}
	for k := 2; k <= maxK; k++ {
		if sel.Scores[k-1] >= o.Threshold*best {
			sel.K = k
			sel.Best = results[k]
			sel.ChosenScor = sel.Scores[k-1]
			return sel, nil
		}
	}
	// Unreachable: the argmax always satisfies the threshold.
	return sel, fmt.Errorf("cluster: no k satisfied threshold")
}
