// Package cluster implements the clustering layer of SimProf's phase
// formation: k-means with k-means++ seeding, silhouette scoring (both the
// exact pairwise form and the centroid-based simplified form), and the
// paper's k-selection rule (smallest k within 90% of the best silhouette
// among k ∈ [1, 20]).
//
// Every kernel runs on the shared internal/parallel engine. Results are
// bit-for-bit identical for any worker count: point loops run over a
// fixed chunk grid with per-chunk partial sums merged in chunk index
// order, restarts draw from pre-derived PCG seeds and are compared in
// restart index order, and the k sweep writes each k's outcome into its
// own slot.
package cluster

import (
	"fmt"
	"math"
	"math/rand/v2"

	"simprof/internal/obs"
	"simprof/internal/parallel"
	"simprof/internal/stats"
)

// Clustering telemetry: per-restart convergence behaviour and the cost
// of the k sweep. Recorded only while obs is enabled.
var (
	obsRestarts = obs.NewCounter("cluster.restarts",
		"independent k-means restarts run")
	obsLloydIters = obs.NewHistogram("cluster.lloyd_iters",
		"Lloyd iterations per restart until convergence",
		1, 2, 4, 8, 16, 32, 64)
	obsConvergenceDelta = obs.NewHistogram("cluster.convergence_delta",
		"final |Δinertia| of each restart (absolute, pre-tolerance scale)",
		1e-12, 1e-9, 1e-6, 1e-3, 1, 1e3)
	obsEmptyReseeds = obs.NewCounter("cluster.empty_reseeds",
		"empty clusters re-seeded at the farthest point")
)

// pointChunk is the fixed chunk size for loops over points. It is part
// of the determinism contract: the chunk grid (and therefore the order
// of floating-point merges) depends on it and on the input size only,
// never on the worker count.
const pointChunk = 256

// Result is the outcome of one k-means run.
type Result struct {
	K       int
	Centers [][]float64 // K × D centroids
	Assign  []int       // per-point cluster index
	Sizes   []int       // points per cluster
	Inertia float64     // Σ squared distance to assigned center
	Iters   int
}

// Options controls KMeans.
type Options struct {
	MaxIter  int    // maximum Lloyd iterations (default 100)
	Restarts int    // independent restarts, best inertia wins (default 4)
	Seed     uint64 // RNG seed (deterministic)
	Tol      float64
	// Workers bounds the concurrency of the run (restarts and the
	// chunked Lloyd passes). 0 selects GOMAXPROCS; 1 runs serially.
	// The result is identical for every setting.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
	if o.Restarts <= 0 {
		o.Restarts = 4
	}
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	return o
}

// SqDist returns the squared Euclidean distance between two vectors.
func SqDist(a, b []float64) float64 {
	var s float64
	for i, av := range a {
		d := av - b[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between two vectors.
func Dist(a, b []float64) float64 { return math.Sqrt(SqDist(a, b)) }

// NearestCenter returns the index of the center closest to p and the
// squared distance to it.
func NearestCenter(p []float64, centers [][]float64) (int, float64) {
	best, bestD := -1, math.Inf(1)
	for c, center := range centers {
		if d := SqDist(p, center); d < bestD {
			best, bestD = c, d
		}
	}
	return best, bestD
}

// KMeans clusters points (N × D, row-major) into k clusters using Lloyd's
// algorithm with k-means++ seeding. It returns an error for invalid
// input; k larger than N is clamped to N.
func KMeans(points [][]float64, k int, opts Options) (Result, error) {
	return kMeansWith(parallel.New(opts.Workers), points, k, opts)
}

// kMeansWith is KMeans on a caller-supplied engine, so that an already
// parallel caller (the ChooseK sweep) shares one concurrency budget with
// the restarts and Lloyd passes it spawns.
func kMeansWith(eng *parallel.Engine, points [][]float64, k int, opts Options) (Result, error) {
	n := len(points)
	if n == 0 {
		return Result{}, fmt.Errorf("cluster: no points")
	}
	if k <= 0 {
		return Result{}, fmt.Errorf("cluster: k=%d must be positive", k)
	}
	d := len(points[0])
	for i, p := range points {
		if len(p) != d {
			return Result{}, fmt.Errorf("cluster: point %d has dim %d, want %d", i, len(p), d)
		}
	}
	if k > n {
		k = n
	}
	o := opts.withDefaults()

	// Each restart derives its own PCG seed up front, runs independently
	// and lands in its own slot; the winner is picked by scanning slots
	// in restart index order (strict <, so ties keep the lowest index —
	// exactly the serial semantics).
	results := make([]Result, o.Restarts)
	eng.ForEachIndex(o.Restarts, func(r int) {
		rng := stats.NewRNG(stats.SplitSeed(o.Seed, uint64(r)))
		results[r] = lloyd(points, k, rng, o, eng)
	})
	best := Result{Inertia: math.Inf(1)}
	for _, res := range results {
		if res.Inertia < best.Inertia {
			best = res
		}
	}
	return best, nil
}

// lloydScratch holds the per-chunk accumulators of one Lloyd run. They
// are allocated once per run and reused across iterations, which
// removes the per-iteration allocation churn of the assignment loop.
type lloydScratch struct {
	chunks  int
	sizes   [][]int     // chunk → cluster → count
	sums    [][]float64 // chunk → k*d flattened partial centroid sums
	inertia []float64   // chunk → partial inertia
}

func newLloydScratch(n, k, d int) *lloydScratch {
	s := &lloydScratch{chunks: parallel.Chunks(n, pointChunk)}
	s.sizes = make([][]int, s.chunks)
	s.sums = make([][]float64, s.chunks)
	s.inertia = make([]float64, s.chunks)
	for c := 0; c < s.chunks; c++ {
		s.sizes[c] = make([]int, k)
		s.sums[c] = make([]float64, k*d)
	}
	return s
}

// assignPoints runs one chunked assignment pass against centers: it
// fills assign, merges per-chunk cluster sizes into sizes (chunk index
// order) and returns the inertia. When accumulate is true it also
// gathers per-chunk centroid partial sums for the update step.
func assignPoints(eng *parallel.Engine, points [][]float64, centers [][]float64,
	assign []int, sizes []int, sc *lloydScratch, accumulate bool) float64 {
	n := len(points)
	d := len(points[0])
	eng.ForEachChunk(n, pointChunk, func(c, lo, hi int) {
		szs := sc.sizes[c]
		for i := range szs {
			szs[i] = 0
		}
		var sums []float64
		if accumulate {
			sums = sc.sums[c]
			for i := range sums {
				sums[i] = 0
			}
		}
		var inertia float64
		for i := lo; i < hi; i++ {
			p := points[i]
			ci, dist := NearestCenter(p, centers)
			assign[i] = ci
			szs[ci]++
			inertia += dist
			if accumulate {
				row := sums[ci*d : ci*d+d]
				for j, v := range p {
					row[j] += v
				}
			}
		}
		sc.inertia[c] = inertia
	})
	for i := range sizes {
		sizes[i] = 0
	}
	var inertia float64
	for c := 0; c < sc.chunks; c++ {
		for i, s := range sc.sizes[c] {
			sizes[i] += s
		}
		inertia += sc.inertia[c]
	}
	return inertia
}

func lloyd(points [][]float64, k int, rng *rand.Rand, o Options, eng *parallel.Engine) Result {
	n, d := len(points), len(points[0])
	centers := seedPlusPlus(points, k, rng, eng)
	assign := make([]int, n)
	sizes := make([]int, k)
	sc := newLloydScratch(n, k, d)
	// Double-buffered centroids: next is rebuilt from the merged chunk
	// sums every iteration, then swapped with centers.
	next := make([][]float64, k)
	for c := range next {
		next[c] = make([]float64, d)
	}
	prev := math.Inf(1)
	var inertia float64
	var iter int
	for iter = 0; iter < o.MaxIter; iter++ {
		// Fused assignment + partial-sum pass.
		inertia = assignPoints(eng, points, centers, assign, sizes, sc, true)
		// Update step: merge the per-chunk partial sums in chunk index
		// order, then normalize.
		for c := range next {
			row := next[c]
			for j := range row {
				row[j] = 0
			}
		}
		for c := 0; c < sc.chunks; c++ {
			sums := sc.sums[c]
			for cl := 0; cl < k; cl++ {
				row := next[cl]
				part := sums[cl*d : cl*d+d]
				for j, v := range part {
					row[j] += v
				}
			}
		}
		for c := range next {
			if sizes[c] == 0 {
				obsEmptyReseeds.Inc()
				// Re-seed an empty cluster at the point farthest from
				// its center — standard k-means repair.
				far, farD := 0, -1.0
				for i, p := range points {
					if dd := SqDist(p, centers[assign[i]]); dd > farD {
						far, farD = i, dd
					}
				}
				copy(next[c], points[far])
				continue
			}
			inv := 1 / float64(sizes[c])
			for j := range next[c] {
				next[c][j] *= inv
			}
		}
		centers, next = next, centers
		if math.Abs(prev-inertia) <= o.Tol*(1+prev) {
			break
		}
		prev = inertia
	}
	// Final assignment pass so Assign/Sizes/Inertia are consistent with
	// the returned (post-update) centers.
	inertia = assignPoints(eng, points, centers, assign, sizes, sc, false)
	obsRestarts.Inc()
	obsLloydIters.Observe(float64(iter + 1))
	if !math.IsInf(prev, 1) {
		obsConvergenceDelta.Observe(math.Abs(prev - inertia))
	}
	return Result{K: k, Centers: centers, Assign: assign, Sizes: sizes, Inertia: inertia, Iters: iter + 1}
}

// seedPlusPlus picks k initial centers with the k-means++ D² weighting.
// The squared distance to the nearest chosen center is maintained
// incrementally (each new center can only lower it), which turns the
// O(n·k²·d) recompute-everything seeding into O(n·k·d). The distance
// update is chunked on the engine; the weighted draw itself stays
// sequential because each pick feeds the next.
func seedPlusPlus(points [][]float64, k int, rng *rand.Rand, eng *parallel.Engine) [][]float64 {
	n := len(points)
	centers := make([][]float64, 0, k)
	first := rng.IntN(n)
	centers = append(centers, append([]float64(nil), points[first]...))
	d2 := make([]float64, n)
	chunks := parallel.Chunks(n, pointChunk)
	partial := make([]float64, chunks)
	relax := func(center []float64) float64 {
		eng.ForEachChunk(n, pointChunk, func(c, lo, hi int) {
			var sum float64
			for i := lo; i < hi; i++ {
				if dd := SqDist(points[i], center); dd < d2[i] {
					d2[i] = dd
				}
				sum += d2[i]
			}
			partial[c] = sum
		})
		var total float64
		for _, p := range partial {
			total += p
		}
		return total
	}
	for i := range d2 {
		d2[i] = math.Inf(1)
	}
	total := relax(centers[0])
	for len(centers) < k {
		var pick int
		if total == 0 {
			pick = rng.IntN(n) // all points identical to some center
		} else {
			u := rng.Float64() * total
			var acc float64
			pick = n - 1
			for i, w := range d2 {
				acc += w
				if acc >= u {
					pick = i
					break
				}
			}
		}
		centers = append(centers, append([]float64(nil), points[pick]...))
		if len(centers) < k {
			total = relax(centers[len(centers)-1])
		}
	}
	return centers
}
