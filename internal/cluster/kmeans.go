// Package cluster implements the clustering layer of SimProf's phase
// formation: k-means with k-means++ seeding, silhouette scoring (both the
// exact pairwise form and the centroid-based simplified form), and the
// paper's k-selection rule (smallest k within 90% of the best silhouette
// among k ∈ [1, 20]).
package cluster

import (
	"fmt"
	"math"
	"math/rand/v2"

	"simprof/internal/stats"
)

// Result is the outcome of one k-means run.
type Result struct {
	K       int
	Centers [][]float64 // K × D centroids
	Assign  []int       // per-point cluster index
	Sizes   []int       // points per cluster
	Inertia float64     // Σ squared distance to assigned center
	Iters   int
}

// Options controls KMeans.
type Options struct {
	MaxIter  int    // maximum Lloyd iterations (default 100)
	Restarts int    // independent restarts, best inertia wins (default 4)
	Seed     uint64 // RNG seed (deterministic)
	Tol      float64
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
	if o.Restarts <= 0 {
		o.Restarts = 4
	}
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	return o
}

// SqDist returns the squared Euclidean distance between two vectors.
func SqDist(a, b []float64) float64 {
	var s float64
	for i, av := range a {
		d := av - b[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between two vectors.
func Dist(a, b []float64) float64 { return math.Sqrt(SqDist(a, b)) }

// NearestCenter returns the index of the center closest to p and the
// squared distance to it.
func NearestCenter(p []float64, centers [][]float64) (int, float64) {
	best, bestD := -1, math.Inf(1)
	for c, center := range centers {
		if d := SqDist(p, center); d < bestD {
			best, bestD = c, d
		}
	}
	return best, bestD
}

// KMeans clusters points (N × D, row-major) into k clusters using Lloyd's
// algorithm with k-means++ seeding. It returns an error for invalid
// input; k larger than N is clamped to N.
func KMeans(points [][]float64, k int, opts Options) (Result, error) {
	n := len(points)
	if n == 0 {
		return Result{}, fmt.Errorf("cluster: no points")
	}
	if k <= 0 {
		return Result{}, fmt.Errorf("cluster: k=%d must be positive", k)
	}
	d := len(points[0])
	for i, p := range points {
		if len(p) != d {
			return Result{}, fmt.Errorf("cluster: point %d has dim %d, want %d", i, len(p), d)
		}
	}
	if k > n {
		k = n
	}
	o := opts.withDefaults()

	best := Result{Inertia: math.Inf(1)}
	for r := 0; r < o.Restarts; r++ {
		rng := stats.NewRNG(stats.SplitSeed(o.Seed, uint64(r)))
		res := lloyd(points, k, rng, o)
		if res.Inertia < best.Inertia {
			best = res
		}
	}
	return best, nil
}

func lloyd(points [][]float64, k int, rng *rand.Rand, o Options) Result {
	n, d := len(points), len(points[0])
	centers := seedPlusPlus(points, k, rng)
	assign := make([]int, n)
	sizes := make([]int, k)
	prev := math.Inf(1)
	var inertia float64
	var iter int
	for iter = 0; iter < o.MaxIter; iter++ {
		// Assignment step.
		inertia = 0
		for i := range sizes {
			sizes[i] = 0
		}
		for i, p := range points {
			c, dist := NearestCenter(p, centers)
			assign[i] = c
			sizes[c]++
			inertia += dist
		}
		// Update step.
		next := make([][]float64, k)
		for c := range next {
			next[c] = make([]float64, d)
		}
		for i, p := range points {
			c := assign[i]
			for j, v := range p {
				next[c][j] += v
			}
		}
		for c := range next {
			if sizes[c] == 0 {
				// Re-seed an empty cluster at the point farthest from
				// its center — standard k-means repair.
				far, farD := 0, -1.0
				for i, p := range points {
					if dd := SqDist(p, centers[assign[i]]); dd > farD {
						far, farD = i, dd
					}
				}
				copy(next[c], points[far])
				continue
			}
			inv := 1 / float64(sizes[c])
			for j := range next[c] {
				next[c][j] *= inv
			}
		}
		centers = next
		if math.Abs(prev-inertia) <= o.Tol*(1+prev) {
			break
		}
		prev = inertia
	}
	// Final assignment pass so Assign/Sizes/Inertia are consistent with
	// the returned (post-update) centers.
	inertia = 0
	for i := range sizes {
		sizes[i] = 0
	}
	for i, p := range points {
		c, dist := NearestCenter(p, centers)
		assign[i] = c
		sizes[c]++
		inertia += dist
	}
	return Result{K: k, Centers: centers, Assign: assign, Sizes: sizes, Inertia: inertia, Iters: iter + 1}
}

// seedPlusPlus picks k initial centers with the k-means++ D² weighting.
func seedPlusPlus(points [][]float64, k int, rng *rand.Rand) [][]float64 {
	n := len(points)
	centers := make([][]float64, 0, k)
	first := rng.IntN(n)
	centers = append(centers, append([]float64(nil), points[first]...))
	d2 := make([]float64, n)
	for len(centers) < k {
		var total float64
		for i, p := range points {
			_, dd := NearestCenter(p, centers)
			d2[i] = dd
			total += dd
		}
		var pick int
		if total == 0 {
			pick = rng.IntN(n) // all points identical to some center
		} else {
			u := rng.Float64() * total
			var acc float64
			pick = n - 1
			for i, w := range d2 {
				acc += w
				if acc >= u {
					pick = i
					break
				}
			}
		}
		centers = append(centers, append([]float64(nil), points[pick]...))
	}
	return centers
}
