// Package cluster implements the clustering layer of SimProf's phase
// formation: k-means with k-means++ seeding, silhouette scoring (both the
// exact pairwise form and the centroid-based simplified form), and the
// paper's k-selection rule (smallest k within 90% of the best silhouette
// among k ∈ [1, 20]).
//
// The production kernels run on flat matrix.Dense inputs with a
// Hamerly-style bound-pruned Lloyd pass: per-point lower bounds on the
// second-closest center plus per-center drift skip most SqDist calls,
// and cached squared norms prune the full scans that remain. Every
// distance that is computed uses the same SqDist kernel in the same
// order as the naive pass, and every pruning test carries a float-safety
// margin that only ever forces extra work, so results are bit-for-bit
// identical to the retained naive reference kernel (see DESIGN.md §12).
//
// Every kernel runs on the shared internal/parallel engine. Results are
// bit-for-bit identical for any worker count: point loops run over a
// fixed chunk grid with per-chunk partial sums merged in chunk index
// order, restarts draw from pre-derived PCG seeds and are compared in
// restart index order, and the k sweep writes each k's outcome into its
// own slot.
package cluster

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sync"

	"simprof/internal/matrix"
	"simprof/internal/obs"
	"simprof/internal/parallel"
	"simprof/internal/stats"
)

// Clustering telemetry: per-restart convergence behaviour, the cost of
// the k sweep, and how much work the bound-pruned kernel avoided.
// Recorded only while obs is enabled.
var (
	obsRestarts = obs.NewCounter("cluster.restarts",
		"independent k-means restarts run")
	obsLloydIters = obs.NewHistogram("cluster.lloyd_iters",
		"Lloyd iterations per restart until convergence",
		1, 2, 4, 8, 16, 32, 64)
	obsConvergenceDelta = obs.NewHistogram("cluster.convergence_delta",
		"final |Δinertia| of each restart (absolute, pre-tolerance scale)",
		1e-12, 1e-9, 1e-6, 1e-3, 1, 1e3)
	obsEmptyReseeds = obs.NewCounter("cluster.empty_reseeds",
		"empty clusters re-seeded at the farthest point")
	obsDistComputed = obs.NewCounter("cluster.distances_computed",
		"point–center distance evaluations executed by the pruned kernel")
	obsDistPruned = obs.NewCounter("cluster.distances_pruned",
		"distance evaluations skipped by Hamerly bounds and cached-norm tests")
)

// pointChunk is the fixed chunk size for loops over points. It is part
// of the determinism contract: the chunk grid (and therefore the order
// of floating-point merges) depends on it and on the input size only,
// never on the worker count.
const pointChunk = 256

// Float-safety margins of the pruning tests. Both are relative slacks
// around 1e-9 — five orders of magnitude above the ~1e-14 relative error
// a chunk-length dot product or a triangle-inequality subtraction can
// accumulate — so a pruning test can only ever fail toward computing the
// distance, never toward skipping one that could win. Bit-for-bit
// equivalence with the naive kernel rests on these being conservative,
// not on them being tight.
const (
	// boundSlack shrinks the second-closest lower bound every time it is
	// set or decayed by center drift.
	boundSlack = 1e-9
	// normSlack pads the cached-norm test (‖p‖−‖c‖)² > current-best
	// before a candidate center is skipped.
	normSlack = 1e-9
	// elkanGuard/elkanSlack are the margins of the triangle-inequality
	// skip d(p,c) ≥ d(b,c) − d(p,b): the gap g must exceed elkanGuard ×
	// the magnitudes entering the subtraction (so cancellation cannot
	// have eaten it), and g² must clear the squared threshold by a
	// relative elkanSlack. Both sit orders of magnitude above the
	// ~1e-14 relative error of the distances involved.
	elkanGuard = 1e-7
	elkanSlack = 1e-6
)

// scanSkipMinDim gates the per-candidate skip chains (Elkan triangle
// inequality, cached-norm test) inside full scans. Each skip test costs
// a handful of flops; below this dimensionality a SqDist is about as
// cheap, so the chains are pure overhead and the scan runs lean. The
// gate depends only on the input dimensionality — never on workers or
// telemetry — and skipping less is always valid, so results are
// unchanged either way.
const scanSkipMinDim = 6

// Result is the outcome of one k-means run.
type Result struct {
	K       int
	Centers [][]float64 // K × D centroids
	Assign  []int       // per-point cluster index
	Sizes   []int       // points per cluster
	Inertia float64     // Σ squared distance to assigned center
	Iters   int
}

// Options controls KMeans.
type Options struct {
	MaxIter  int    // maximum Lloyd iterations (default 100)
	Restarts int    // independent restarts, best inertia wins (default 4)
	Seed     uint64 // RNG seed (deterministic)
	Tol      float64
	// Workers bounds the concurrency of the run (restarts and the
	// chunked Lloyd passes). 0 selects GOMAXPROCS; 1 runs serially.
	// The result is identical for every setting.
	Workers int
	// naive selects the retained reference kernel (plain Lloyd over
	// [][]float64 rows, no pruning). It exists for the equivalence suite
	// and the naive-vs-pruned benchmarks; the pruned kernel is the
	// production path and returns bit-identical results.
	naive bool
}

func (o Options) withDefaults() Options {
	if o.MaxIter <= 0 {
		o.MaxIter = 100
	}
	if o.Restarts <= 0 {
		o.Restarts = 4
	}
	if o.Tol <= 0 {
		o.Tol = 1e-9
	}
	return o
}

// SqDist returns the squared Euclidean distance between two vectors.
func SqDist(a, b []float64) float64 {
	b = b[:len(a)] // bounds-check elimination for the loop below
	var s float64
	for i, av := range a {
		d := av - b[i]
		s += d * d
	}
	return s
}

// Dist returns the Euclidean distance between two vectors.
func Dist(a, b []float64) float64 { return math.Sqrt(SqDist(a, b)) }

// NearestCenter returns the index of the center closest to p and the
// squared distance to it.
func NearestCenter(p []float64, centers [][]float64) (int, float64) {
	best, bestD := -1, math.Inf(1)
	for c, center := range centers {
		if d := SqDist(p, center); d < bestD {
			best, bestD = c, d
		}
	}
	return best, bestD
}

// distStats counts the distance evaluations of one pruned run: computed
// is the number of SqDist calls actually executed, equivalent is what
// the naive kernel would have executed for the same passes. The
// difference is the pruned count reported to telemetry.
type distStats struct {
	computed   int64
	equivalent int64
}

func (s distStats) record() {
	if s.equivalent == 0 {
		return
	}
	obsDistComputed.Add(s.computed)
	obsDistPruned.Add(s.equivalent - s.computed)
}

// KMeans clusters points (N × D, row-major) into k clusters using Lloyd's
// algorithm with k-means++ seeding. It returns an error for invalid
// input; k larger than N is clamped to N.
func KMeans(points [][]float64, k int, opts Options) (Result, error) {
	if len(points) == 0 {
		return Result{}, fmt.Errorf("cluster: no points")
	}
	if k <= 0 {
		return Result{}, fmt.Errorf("cluster: k=%d must be positive", k)
	}
	d := len(points[0])
	for i, p := range points {
		if len(p) != d {
			return Result{}, fmt.Errorf("cluster: point %d has dim %d, want %d", i, len(p), d)
		}
	}
	return KMeansDense(matrix.FromRows(points), k, opts)
}

// KMeansDense is KMeans on a flat matrix (no copy, no per-row pointer
// chasing). This is the entry the phase-formation pipeline uses once its
// vectors already live in a Dense.
func KMeansDense(pts *matrix.Dense, k int, opts Options) (Result, error) {
	eng := parallel.New(opts.Workers)
	pn2, pnr := pointNorms(pts)
	res, st, err := kMeansDenseWith(eng, pts, pn2, pnr, k, opts)
	st.record()
	return res, err
}

// pointNorms returns the squared and plain Euclidean norms of every row.
// Both are cached once per clustering problem and shared across restarts
// and the whole k sweep.
func pointNorms(pts *matrix.Dense) (pn2, pnr []float64) {
	pn2 = pts.RowNorms2(nil)
	pnr = make([]float64, len(pn2))
	for i, v := range pn2 {
		pnr[i] = math.Sqrt(v)
	}
	return pn2, pnr
}

// kMeansDenseWith is KMeansDense on a caller-supplied engine and
// pre-computed point norms, so that an already parallel caller (the
// ChooseK sweep) shares one concurrency budget — and one norm cache —
// with the restarts and Lloyd passes it spawns.
func kMeansDenseWith(eng *parallel.Engine, pts *matrix.Dense, pn2, pnr []float64,
	k int, opts Options) (Result, distStats, error) {
	n := pts.Rows()
	if n == 0 {
		return Result{}, distStats{}, fmt.Errorf("cluster: no points")
	}
	if k <= 0 {
		return Result{}, distStats{}, fmt.Errorf("cluster: k=%d must be positive", k)
	}
	if k > n {
		k = n
	}
	o := opts.withDefaults()

	// Each restart derives its own PCG seed up front, runs independently
	// and lands in its own slot; the winner is picked by scanning slots
	// in restart index order (strict <, so ties keep the lowest index —
	// exactly the serial semantics).
	results := make([]Result, o.Restarts)
	rstats := make([]distStats, o.Restarts)
	var rows [][]float64
	if o.naive {
		rows = pts.RowViews()
	}
	eng.ForEachIndex(o.Restarts, func(r int) {
		rng := stats.NewRNG(stats.SplitSeed(o.Seed, uint64(r)))
		if o.naive {
			results[r] = lloyd(rows, k, rng, o, eng)
		} else {
			results[r] = lloydPruned(pts, pn2, pnr, k, rng, o, eng, &rstats[r])
		}
	})
	best := Result{Inertia: math.Inf(1)}
	for _, res := range results {
		if res.Inertia < best.Inertia {
			best = res
		}
	}
	var st distStats
	for _, s := range rstats {
		st.computed += s.computed
		st.equivalent += s.equivalent
	}
	return best, st, nil
}

// lloydScratch holds the per-chunk accumulators and per-point state of
// one Lloyd run. Runs borrow it from a pool (getScratch/putScratch), so
// the 4-restart × 19-k sweep of phase formation reuses a handful of
// buffers instead of reallocating per restart.
type lloydScratch struct {
	chunks   int
	sizes    [][]int     // chunk → cluster → count
	sums     [][]float64 // chunk → k*d flattened partial centroid sums
	inertia  []float64   // chunk → partial inertia
	computed []int64     // chunk → SqDist calls executed (pruned kernel)
	partial  []float64   // chunk → seeding D² partial sums
	lb2      []float64   // point → squared lower bound on dist to 2nd-closest center
	dist2    []float64   // point → squared dist to assigned center (this pass)
	d2       []float64   // point → seeding D² weight
	seedArg  []int32     // point → chosen center achieving d2 (seeding)
	sq2      []float64   // point → squared lower bound on 2nd-nearest (seeding)
	cn2      []float64   // center → squared norm
	cnr      []float64   // center → norm
	ccd      []float64   // k×k inter-center distances (Elkan skip)
	qcc      []float64   // k×k squared half inter-center distances (compare-means skip)
	dup      []int32     // center → first earlier identical center (class root), or −1
	reps     []int32     // distinct-center representatives (class roots), in index order
	mult     []int32     // class root → number of identical centers in its class
	touched  []int32     // seeding: class → epoch of last sq2 touch-up
	dPrev    []float64   // seeding: dist from earlier chosen centers to the newest
	qSkip    []float64   // seeding: per-class squared fast-skip threshold
	qB       []float64   // seeding: per-class sq2 bound when fast-skipped
}

// ensure (re)sizes the scratch for an n×? problem with k clusters in d
// dims, reusing existing capacity. lb2 is zeroed: a fresh run must start
// with no pruning information.
func (s *lloydScratch) ensure(n, k, d int) {
	chunks := parallel.Chunks(n, pointChunk)
	s.chunks = chunks
	if cap(s.inertia) < chunks {
		s.inertia = make([]float64, chunks)
		s.computed = make([]int64, chunks)
		s.partial = make([]float64, chunks)
	}
	s.inertia = s.inertia[:chunks]
	s.computed = s.computed[:chunks]
	s.partial = s.partial[:chunks]
	if cap(s.sizes) < chunks {
		sizes := make([][]int, chunks)
		copy(sizes, s.sizes)
		s.sizes = sizes
		sums := make([][]float64, chunks)
		copy(sums, s.sums)
		s.sums = sums
	}
	s.sizes = s.sizes[:chunks]
	s.sums = s.sums[:chunks]
	for c := 0; c < chunks; c++ {
		if cap(s.sizes[c]) < k {
			s.sizes[c] = make([]int, k)
		}
		s.sizes[c] = s.sizes[c][:k]
		if cap(s.sums[c]) < k*d {
			s.sums[c] = make([]float64, k*d)
		}
		s.sums[c] = s.sums[c][:k*d]
	}
	if cap(s.lb2) < n {
		s.lb2 = make([]float64, n)
		s.dist2 = make([]float64, n)
		s.d2 = make([]float64, n)
		s.seedArg = make([]int32, n)
		s.sq2 = make([]float64, n)
	}
	s.lb2 = s.lb2[:n]
	s.dist2 = s.dist2[:n]
	s.d2 = s.d2[:n]
	s.seedArg = s.seedArg[:n]
	s.sq2 = s.sq2[:n]
	for i := range s.lb2 {
		s.lb2[i] = 0
	}
	if cap(s.cn2) < k {
		s.cn2 = make([]float64, k)
		s.cnr = make([]float64, k)
		s.dPrev = make([]float64, k)
		s.qSkip = make([]float64, k)
		s.qB = make([]float64, k)
		s.dup = make([]int32, k)
		s.reps = make([]int32, k)
		s.mult = make([]int32, k)
		s.touched = make([]int32, k)
	}
	s.cn2 = s.cn2[:k]
	s.cnr = s.cnr[:k]
	s.dPrev = s.dPrev[:k]
	s.qSkip = s.qSkip[:k]
	s.qB = s.qB[:k]
	s.dup = s.dup[:k]
	s.reps = s.reps[:k]
	s.mult = s.mult[:k]
	s.touched = s.touched[:k]
	if cap(s.ccd) < k*k {
		s.ccd = make([]float64, k*k)
		s.qcc = make([]float64, k*k)
	}
	s.ccd = s.ccd[:k*k]
	s.qcc = s.qcc[:k*k]
}

func newLloydScratch(n, k, d int) *lloydScratch {
	s := new(lloydScratch)
	s.ensure(n, k, d)
	return s
}

var scratchPool = sync.Pool{New: func() any { return new(lloydScratch) }}

func getScratch(n, k, d int) *lloydScratch {
	s := scratchPool.Get().(*lloydScratch)
	s.ensure(n, k, d)
	return s
}

func putScratch(s *lloydScratch) { scratchPool.Put(s) }

// assignPoints runs one chunked assignment pass against centers: it
// fills assign, merges per-chunk cluster sizes into sizes (chunk index
// order) and returns the inertia. When accumulate is true it also
// gathers per-chunk centroid partial sums for the update step. This is
// the naive reference pass; the production path is lloydPruned.
func assignPoints(eng *parallel.Engine, points [][]float64, centers [][]float64,
	assign []int, sizes []int, sc *lloydScratch, accumulate bool) float64 {
	n := len(points)
	d := len(points[0])
	eng.ForEachChunk(n, pointChunk, func(c, lo, hi int) {
		szs := sc.sizes[c]
		for i := range szs {
			szs[i] = 0
		}
		var sums []float64
		if accumulate {
			sums = sc.sums[c]
			for i := range sums {
				sums[i] = 0
			}
		}
		var inertia float64
		for i := lo; i < hi; i++ {
			p := points[i]
			ci, dist := NearestCenter(p, centers)
			assign[i] = ci
			szs[ci]++
			inertia += dist
			if accumulate {
				row := sums[ci*d : ci*d+d]
				for j, v := range p {
					row[j] += v
				}
			}
		}
		sc.inertia[c] = inertia
	})
	for i := range sizes {
		sizes[i] = 0
	}
	var inertia float64
	for c := 0; c < sc.chunks; c++ {
		for i, s := range sc.sizes[c] {
			sizes[i] += s
		}
		inertia += sc.inertia[c]
	}
	return inertia
}

// lloyd is the retained naive reference kernel: plain Lloyd over
// [][]float64 rows, every point–center distance computed every pass.
// The equivalence suite asserts lloydPruned reproduces it bit-for-bit.
func lloyd(points [][]float64, k int, rng *rand.Rand, o Options, eng *parallel.Engine) Result {
	n, d := len(points), len(points[0])
	centers := seedPlusPlus(points, k, rng, eng)
	assign := make([]int, n)
	sizes := make([]int, k)
	sc := newLloydScratch(n, k, d)
	// Double-buffered centroids: next is rebuilt from the merged chunk
	// sums every iteration, then swapped with centers.
	next := make([][]float64, k)
	for c := range next {
		next[c] = make([]float64, d)
	}
	prev := math.Inf(1)
	var inertia float64
	var iter int
	for iter = 0; iter < o.MaxIter; iter++ {
		// Fused assignment + partial-sum pass.
		inertia = assignPoints(eng, points, centers, assign, sizes, sc, true)
		// Update step: merge the per-chunk partial sums in chunk index
		// order, then normalize.
		for c := range next {
			row := next[c]
			for j := range row {
				row[j] = 0
			}
		}
		for c := 0; c < sc.chunks; c++ {
			sums := sc.sums[c]
			for cl := 0; cl < k; cl++ {
				row := next[cl]
				part := sums[cl*d : cl*d+d]
				for j, v := range part {
					row[j] += v
				}
			}
		}
		for c := range next {
			if sizes[c] == 0 {
				obsEmptyReseeds.Inc()
				// Re-seed an empty cluster at the point farthest from
				// its center — standard k-means repair.
				far, farD := 0, -1.0
				for i, p := range points {
					if dd := SqDist(p, centers[assign[i]]); dd > farD {
						far, farD = i, dd
					}
				}
				copy(next[c], points[far])
				continue
			}
			inv := 1 / float64(sizes[c])
			for j := range next[c] {
				next[c][j] *= inv
			}
		}
		centers, next = next, centers
		if math.Abs(prev-inertia) <= o.Tol*(1+prev) {
			break
		}
		prev = inertia
	}
	// Final assignment pass so Assign/Sizes/Inertia are consistent with
	// the returned (post-update) centers.
	inertia = assignPoints(eng, points, centers, assign, sizes, sc, false)
	obsRestarts.Inc()
	obsLloydIters.Observe(float64(iter + 1))
	if !math.IsInf(prev, 1) {
		obsConvergenceDelta.Observe(math.Abs(prev - inertia))
	}
	return Result{K: k, Centers: centers, Assign: assign, Sizes: sizes, Inertia: inertia, Iters: iter + 1}
}

// lloydPruned is the production Lloyd kernel on the flat matrix. It
// maintains, per point, a squared lower bound lb2 on the distance to the
// second-closest center. Each pass computes the one distance to the
// point's current center (which the naive kernel needs for the inertia
// anyway); when that distance is strictly below the bound — tested in
// the squared domain, paying a sqrt only for points the cheap prefilter
// deems plausibly prunable — the other k−1 distances are skipped: the
// assignment provably cannot change, and strictness means the naive
// scan would have kept the same index even under ties. Otherwise it
// falls back to a full scan that replicates NearestCenter's order and
// tie-breaking exactly. The scan skips candidates the compare-means
// test excludes (d2a < (d(a,cc)/2)² proves cc strictly farther than the
// assigned center; the threshold then folds into lb2 so the bound stays
// valid) and, above the dimensionality gate, candidates excluded by the
// Elkan triangle inequality or the cached-norm bound. Bounds decay by
// the per-center drift between passes (triangle inequality), with
// boundSlack margins absorbing float rounding. See DESIGN.md §12 for
// the invariant and the equivalence argument.
func lloydPruned(pts *matrix.Dense, pn2, pnr []float64, k int, rng *rand.Rand,
	o Options, eng *parallel.Engine, st *distStats) Result {
	n, d := pts.Rows(), pts.Cols()
	sc := getScratch(n, k, d)
	defer putScratch(sc)
	centers := seedPlusPlusDense(pts, pn2, pnr, k, rng, eng, sc, st)
	next := matrix.NewDense(k, d)
	assign := make([]int, n)
	sizes := make([]int, k)
	lb2, dist2 := sc.lb2, sc.dist2
	cn2, cnr, ccd, qcc := sc.cn2, sc.cnr, sc.ccd, sc.qcc
	useScanSkips := d >= scanSkipMinDim
	// centerGeometry refreshes the k×k compare-means threshold table
	// qcc[a·k+cc] = (d(a,cc)/2)² (with margin, sqrt-free — it is a
	// quarter of the squared distance) and, above the dimensionality
	// gate, the per-center norm cache and inter-center distance table
	// for the Elkan-style scan skip. O(k²·d), negligible next to the
	// O(n·k·d) pass it prunes.
	dup, reps, mult := sc.dup, sc.reps, sc.mult
	nreps := 0
	centerGeometry := func(ctr *matrix.Dense) {
		cd := ctr.Data()
		for a := 0; a < k; a++ {
			dup[a] = -1
			qcc[a*k+a] = 0
			ra := cd[a*d : a*d+d]
			for b := a + 1; b < k; b++ {
				q := SqDist(ra, cd[b*d:b*d+d]) * 0.25 * (1 - 1e-7)
				qcc[a*k+b] = q
				qcc[b*k+a] = q
			}
		}
		// Duplicate centers (exactly equal coordinate vectors — frequent
		// when k exceeds the number of distinct behaviours) yield
		// bit-identical SqDist results, so the scan visits only one
		// representative per identity class: the class root (lowest
		// index), which under strict-< is exactly the index the naive
		// lowest-index tie-break would keep. SqDist(a,b) == 0 iff every
		// coordinate is numerically equal, and the first identical
		// earlier center is transitively the root.
		nreps = 0
		for b := 0; b < k; b++ {
			dup[b] = -1
			for a := 0; a < b; a++ {
				if qcc[a*k+b] == 0 {
					dup[b] = int32(a)
					break
				}
			}
			if dup[b] < 0 {
				mult[b] = 1
				reps[nreps] = int32(b)
				nreps++
			} else {
				mult[dup[b]]++
			}
		}
		if !useScanSkips {
			return
		}
		for c := 0; c < k; c++ {
			var s2 float64
			for _, v := range ctr.Row(c) {
				s2 += v * v
			}
			cn2[c] = s2
			cnr[c] = math.Sqrt(s2)
		}
		for a := 0; a < k; a++ {
			ccd[a*k+a] = 0
			for b := a + 1; b < k; b++ {
				dd := Dist(ctr.Row(a), ctr.Row(b))
				ccd[a*k+b] = dd
				ccd[b*k+a] = dd
			}
		}
	}
	centerGeometry(centers)

	// Handover from seeding: the relax passes already computed every
	// point's nearest seeded center (with NearestCenter's exact
	// lowest-index tie-breaking), its squared distance, and a valid
	// lower bound on the second-nearest. The first Lloyd pass therefore
	// runs in reuse mode — pure bookkeeping, zero distance computations
	// — and still produces bit-identical assignment, sizes, partial
	// sums and inertia.
	for i := 0; i < n; i++ {
		assign[i] = int(sc.seedArg[i])
	}
	copy(dist2, sc.d2)
	for i := 0; i < n; i++ {
		lb2[i] = sc.sq2[i] * ((1 - boundSlack) * (1 - boundSlack))
	}

	// Pending center drift from the previous update step, folded into
	// every lb exactly once at the start of the next pass. driftArg is
	// the center that moved farthest; points assigned to it decay by the
	// second-largest drift instead (their own center's motion cannot
	// bring other centers closer).
	driftMax, driftSecond := 0.0, 0.0
	driftArg := -1

	pass := func(accumulate, reuse bool) float64 {
		dMax, dSec, dArg := driftMax, driftSecond, driftArg
		pdata := pts.Data()
		cdata := centers.Data()
		eng.ForEachChunk(n, pointChunk, func(c, lo, hi int) {
			szs := sc.sizes[c]
			for i := range szs {
				szs[i] = 0
			}
			var sums []float64
			if accumulate {
				sums = sc.sums[c]
				for i := range sums {
					sums[i] = 0
				}
			}
			var inertia float64
			var comp int64
			for i := lo; i < hi; i++ {
				if reuse {
					ci := assign[i]
					szs[ci]++
					inertia += dist2[i]
					if accumulate {
						p := pdata[i*d : i*d+d]
						row := sums[ci*d : ci*d+d]
						for j, v := range p {
							row[j] += v
						}
					}
					continue
				}
				p := pdata[i*d : i*d+d]
				a := assign[i]
				d2a := SqDist(p, cdata[a*d:a*d+d])
				comp++
				// Prune prefilter in the squared domain: the stored
				// (undecayed) bound only shrinks under drift decay, so
				// d2a ≥ lb2 already rules the prune out without a sqrt.
				// Only plausible candidates pay the sqrt for the exact
				// drift-decayed test; either way the decay is folded
				// exactly once, because a failed prune falls through to
				// the scan, which rewrites lb2 against the current
				// (post-drift) centers.
				pruned := false
				if bq := lb2[i]; bq > 0 && d2a < bq {
					delta := dMax
					if a == dArg {
						delta = dSec
					}
					bv := (math.Sqrt(bq)-delta)*(1-boundSlack) - delta*boundSlack
					if bv > 0 && d2a < bv*bv*(1-boundSlack) {
						// The current center is strictly closer than any
						// other can be: assignment unchanged, scan
						// skipped; the decayed bound persists.
						dist2[i] = d2a
						lb2[i] = bv * bv
						pruned = true
					}
				}
				if !pruned {
					// The scan visits only representative centers: a
					// duplicate can never win under strict <, and its
					// contribution to the second-best is folded back in
					// below via the class multiplicity.
					best, bestD, secD := -1, math.Inf(1), math.Inf(1)
					bestR := -1.0 // √bestD, computed lazily per best
					minSkipQ := math.Inf(1)
					qrow := qcc[a*k : a*k+k]
					for ri := 0; ri < nreps; ri++ {
						cc := int(reps[ri])
						var dd float64
						if cc == a {
							dd = d2a
						} else {
							if q := qrow[cc]; d2a < q {
								// Compare-means: d(p,a) < d(a,cc)/2 puts
								// cc strictly farther than a, so cc can
								// affect neither the best nor the bound
								// — provided its threshold, itself a
								// valid lower bound on d(p,cc)², is
								// folded into lb2 below.
								if q < minSkipQ {
									minSkipQ = q
								}
								continue
							}
							if useScanSkips {
								if best >= 0 {
									// Triangle inequality against the current
									// best: d(p,cc) ≥ d(best,cc) − d(p,best).
									if bestR < 0 {
										bestR = math.Sqrt(bestD)
									}
									cb := ccd[best*k+cc]
									if g := cb - bestR; g > elkanGuard*(cb+bestR) {
										if gg := g * g; gg-secD > elkanSlack*(gg+secD) {
											// Provably ≥ the current second-
											// best: cannot affect best, bestD
											// or secD.
											continue
										}
									}
								}
								df := pnr[i] - cnr[cc]
								if nb := df * df; nb > secD && nb-secD > normSlack*(nb+pn2[i]+cn2[cc]) {
									continue
								}
							}
							dd = SqDist(p, cdata[cc*d:cc*d+d])
							comp++
						}
						if dd < bestD {
							secD = bestD
							best, bestD = cc, dd
							bestR = -1
						} else if dd < secD {
							secD = dd
						}
					}
					if mult[best] > 1 {
						// A duplicate of the winner sits at exactly
						// bestD, so the true second-best distance is
						// bestD itself.
						secD = bestD
					}
					assign[i] = best
					dist2[i] = bestD
					l2 := secD * ((1 - boundSlack) * (1 - boundSlack))
					if minSkipQ < l2 {
						l2 = minSkipQ
					}
					lb2[i] = l2
				}
				ci := assign[i]
				szs[ci]++
				inertia += dist2[i]
				if accumulate {
					row := sums[ci*d : ci*d+d]
					for j, v := range p {
						row[j] += v
					}
				}
			}
			sc.inertia[c] = inertia
			sc.computed[c] = comp
		})
		for i := range sizes {
			sizes[i] = 0
		}
		var inertia float64
		for c := 0; c < sc.chunks; c++ {
			for i, s := range sc.sizes[c] {
				sizes[i] += s
			}
			inertia += sc.inertia[c]
			st.computed += sc.computed[c]
		}
		st.equivalent += int64(n) * int64(k)
		return inertia
	}

	prev := math.Inf(1)
	var inertia float64
	var iter int
	for iter = 0; iter < o.MaxIter; iter++ {
		inertia = pass(true, iter == 0)
		// Update step: merge the per-chunk partial sums in chunk index
		// order, then normalize — identical arithmetic to the naive
		// kernel.
		nd := next.Data()
		for j := range nd {
			nd[j] = 0
		}
		for c := 0; c < sc.chunks; c++ {
			sums := sc.sums[c]
			for j, v := range sums {
				nd[j] += v
			}
		}
		for c := 0; c < k; c++ {
			if sizes[c] == 0 {
				obsEmptyReseeds.Inc()
				// Re-seed an empty cluster at the point farthest from
				// its center. dist2 caches exactly the SqDist the naive
				// kernel recomputes here.
				far, farD := 0, -1.0
				for i := 0; i < n; i++ {
					if dist2[i] > farD {
						far, farD = i, dist2[i]
					}
				}
				copy(next.Row(c), pts.Row(far))
				continue
			}
			inv := 1 / float64(sizes[c])
			row := next.Row(c)
			for j := range row {
				row[j] *= inv
			}
		}
		// Per-center drift for the next pass's bound decay.
		driftMax, driftSecond, driftArg = 0, 0, -1
		for c := 0; c < k; c++ {
			dd := Dist(centers.Row(c), next.Row(c))
			if dd > driftMax {
				driftSecond = driftMax
				driftMax, driftArg = dd, c
			} else if dd > driftSecond {
				driftSecond = dd
			}
		}
		centers, next = next, centers
		centerGeometry(centers)
		if math.Abs(prev-inertia) <= o.Tol*(1+prev) {
			break
		}
		prev = inertia
	}
	// Final assignment pass so Assign/Sizes/Inertia are consistent with
	// the returned (post-update) centers.
	inertia = pass(false, false)
	obsRestarts.Inc()
	obsLloydIters.Observe(float64(iter + 1))
	if !math.IsInf(prev, 1) {
		obsConvergenceDelta.Observe(math.Abs(prev - inertia))
	}
	return Result{K: k, Centers: centers.RowViews(), Assign: assign, Sizes: sizes,
		Inertia: inertia, Iters: iter + 1}
}

// seedPlusPlus picks k initial centers with the k-means++ D² weighting.
// The squared distance to the nearest chosen center is maintained
// incrementally (each new center can only lower it), which turns the
// O(n·k²·d) recompute-everything seeding into O(n·k·d). The distance
// update is chunked on the engine; the weighted draw itself stays
// sequential because each pick feeds the next. This is the naive
// reference; the production path is seedPlusPlusDense.
func seedPlusPlus(points [][]float64, k int, rng *rand.Rand, eng *parallel.Engine) [][]float64 {
	n := len(points)
	centers := make([][]float64, 0, k)
	first := rng.IntN(n)
	centers = append(centers, append([]float64(nil), points[first]...))
	d2 := make([]float64, n)
	chunks := parallel.Chunks(n, pointChunk)
	partial := make([]float64, chunks)
	relax := func(center []float64) float64 {
		eng.ForEachChunk(n, pointChunk, func(c, lo, hi int) {
			var sum float64
			for i := lo; i < hi; i++ {
				if dd := SqDist(points[i], center); dd < d2[i] {
					d2[i] = dd
				}
				sum += d2[i]
			}
			partial[c] = sum
		})
		var total float64
		for _, p := range partial {
			total += p
		}
		return total
	}
	for i := range d2 {
		d2[i] = math.Inf(1)
	}
	total := relax(centers[0])
	for len(centers) < k {
		var pick int
		if total == 0 {
			pick = rng.IntN(n) // all points identical to some center
		} else {
			pick = drawLinear(d2, rng.Float64()*total)
		}
		centers = append(centers, append([]float64(nil), points[pick]...))
		if len(centers) < k {
			total = relax(centers[len(centers)-1])
		}
	}
	return centers
}

// seedPlusPlusDense is the production k-means++ seeding on the flat
// matrix. Same draw sequence as seedPlusPlus — the RNG consumption and
// the picked indices are bit-identical — but the relax pass skips
// points whose cached-norm bound proves the new center cannot lower
// their D² weight, and each draw resolves through the chunk partial
// sums instead of a full O(n) scan.
func seedPlusPlusDense(pts *matrix.Dense, pn2, pnr []float64, k int, rng *rand.Rand,
	eng *parallel.Engine, sc *lloydScratch, st *distStats) *matrix.Dense {
	n, d := pts.Rows(), pts.Cols()
	centers := matrix.NewDense(k, d)
	first := rng.IntN(n)
	copy(centers.Row(0), pts.Row(first))
	d2, partial := sc.d2, sc.partial
	seedArg, sq2 := sc.seedArg, sc.sq2
	pdata := pts.Data()
	useNorm := d >= scanSkipMinDim
	// Touch-up dedup: a duplicate pick's sq2 touch-up (below) is
	// idempotent while d2 and seedArg are unchanged, i.e. until the next
	// full relax pass. touched[j] records the epoch of the last touch-up
	// against chosen center j, so repeated duplicate picks of the same
	// value — the common case once k exceeds the number of distinct
	// points — cost O(1) instead of O(n).
	touched := sc.touched[:k]
	for j := range touched {
		touched[j] = -1
	}
	epoch := int32(0)
	// relax folds chosen center m into the D² weights. Two exact skips
	// avoid most SqDist calls. The main one is a per-class threshold in
	// the squared domain: a point whose weight is achieved by chosen
	// center a has √d2[i] exactly its distance to a, so the triangle
	// inequality d(p,cₘ) ≥ d(cₐ,cₘ) − d(p,cₐ) proves the new center
	// cannot lower the weight whenever d(p,cₐ) < d(cₐ,cₘ)/2 — i.e.
	// whenever d2[i] < qSkip[a], one comparison against a threshold
	// precomputed per (a, m) pair with a 1e-7 relative margin. The
	// second is the cached-norm bound (‖p‖−‖cₘ‖)², kept only at
	// dimensionalities where it beats just computing the distance. Both
	// only ever skip when the new center provably cannot lower d2[i],
	// so the weight vector — and therefore the draw sequence — is
	// bit-identical to the reference seeding.
	//
	// Alongside the exact minimum, relax maintains sq2: a conservative
	// squared lower bound on the distance to the *second*-nearest
	// chosen center (exact distances when they were computed, the skip
	// bounds shrunk by a safety factor when they were not; qB[a] is the
	// fast path's bound d(cₐ,cₘ)²/4). After the last center is relaxed,
	// (seedArg, d2, sq2) hand the first Lloyd pass its assignment,
	// inertia and Hamerly bounds for free.
	relax := func(m int, prev float64) float64 {
		center := centers.Row(m)
		var cs float64
		for _, v := range center {
			cs += v * v
		}
		cn2m, cnrm := cs, math.Sqrt(cs)
		dPrev := sc.dPrev[:m]
		qSkip, qB := sc.qSkip[:m], sc.qB[:m]
		dupJ := -1
		for j := 0; j < m; j++ {
			pa := Dist(centers.Row(j), center)
			dPrev[j] = pa
			if pa == 0 && dupJ < 0 {
				dupJ = j
			}
			half := 0.5 * pa * (1 - 1e-7)
			qSkip[j] = half * half * (1 - 1e-7)
			qB[j] = qSkip[j] * (1 - 1e-6)
		}
		if dupJ >= 0 {
			// The new center is coordinate-identical to chosen center
			// dupJ (a duplicate pick — routine once k exceeds the number
			// of distinct points). SqDist against it returns the same
			// bits relax dupJ already folded in, so no weight can drop:
			// d2, the partial sums and the total are all unchanged, and
			// the whole pass is skipped. Only sq2 needs a touch-up: for
			// points whose minimum is achieved by dupJ, the duplicate
			// sits at the minimum distance itself, capping the
			// second-nearest bound at d2 (with margin).
			if touched[dupJ] != epoch {
				touched[dupJ] = epoch
				for i := 0; i < n; i++ {
					if int(seedArg[i]) == dupJ {
						if b := d2[i] * (1 - 1e-6); b < sq2[i] {
							sq2[i] = b
						}
					}
				}
			}
			if m+1 < k {
				st.equivalent += int64(n)
			}
			return prev
		}
		eng.ForEachChunk(n, pointChunk, func(c, lo, hi int) {
			var sum float64
			var comp int64
			for i := lo; i < hi; i++ {
				cur := d2[i]
				if m > 0 {
					if a := seedArg[i]; cur < qSkip[a] {
						if b := qB[a]; b < sq2[i] {
							sq2[i] = b
						}
						sum += cur
						continue
					}
					if useNorm {
						df := pnr[i] - cnrm
						if nb := df * df; nb > cur && nb-cur > normSlack*(nb+pn2[i]+cn2m) {
							if b := nb * (1 - 1e-6); b < sq2[i] {
								sq2[i] = b
							}
							sum += cur
							continue
						}
					}
				}
				dd := SqDist(pdata[i*d:i*d+d], center)
				comp++
				if dd < cur {
					if cur < sq2[i] {
						sq2[i] = cur // the old minimum is now second
					}
					d2[i] = dd
					seedArg[i] = int32(m)
					cur = dd
				} else if dd < sq2[i] {
					sq2[i] = dd
				}
				sum += cur
			}
			partial[c] = sum
			sc.computed[c] = comp
		})
		var total float64
		for c := 0; c < sc.chunks; c++ {
			total += partial[c]
			st.computed += sc.computed[c]
		}
		if m+1 < k {
			// The naive seeding relaxes centers 0..k−2; the extra relax
			// of the last center (which feeds the Lloyd handover) is not
			// part of the naive-equivalent workload.
			st.equivalent += int64(n)
		}
		epoch++
		return total
	}
	for i := range d2 {
		d2[i] = math.Inf(1)
		sq2[i] = math.Inf(1)
	}
	total := relax(0, 0)
	for count := 1; count < k; count++ {
		var pick int
		if total == 0 {
			pick = rng.IntN(n) // all points identical to some center
		} else {
			pick = drawWeighted(d2, partial, total, rng.Float64()*total)
		}
		copy(centers.Row(count), pts.Row(pick))
		// The naive seeding stops relaxing after the second-to-last
		// pick (the weights are never drawn from again); relaxing the
		// last center too completes the handover state. Draws and RNG
		// consumption are unaffected.
		total = relax(count, total)
	}
	return centers
}

// drawLinear is the sequential weighted draw: the smallest index i with
// w[0]+…+w[i] ≥ u under strict left-to-right accumulation, or the last
// index when the running sum never reaches u. It is both the reference
// semantics of the k-means++ draw and the fallback drawWeighted resolves
// through whenever float re-association makes the fast path ambiguous.
func drawLinear(w []float64, u float64) int {
	var acc float64
	for i, v := range w {
		acc += v
		if acc >= u {
			return i
		}
	}
	return len(w) - 1
}

// drawWeighted returns exactly drawLinear(w, u), using the per-chunk
// partial sums over the pointChunk grid (the relax pass already produces
// them) to locate the crossing chunk first, so a draw costs
// O(n/pointChunk + pointChunk) instead of O(n). The composed chunk
// prefix differs from the sequential prefix only by float
// re-association, which is bounded well below guard; any accumulator
// that lands inside the ±guard ambiguity band falls back to drawLinear,
// so the returned index — and therefore the seeding's RNG consumption
// and pick sequence — is always exactly the sequential one.
func drawWeighted(w, partial []float64, total, u float64) int {
	n := len(w)
	guard := total * (1e-12 + float64(n)*1e-15)
	acc := 0.0
	chunk := -1
	for c, ps := range partial {
		if acc+ps >= u-guard {
			chunk = c
			break
		}
		acc += ps
	}
	if chunk < 0 {
		// Even with the guard the sum never reaches u: the sequential
		// scan cannot reach it either.
		return n - 1
	}
	lo := chunk * pointChunk
	hi := lo + pointChunk
	if hi > n {
		hi = n
	}
	for i := lo; i < hi; i++ {
		acc += w[i]
		if acc >= u+guard {
			return i // clear crossing: every earlier prefix was < u−guard
		}
		if acc >= u-guard {
			return drawLinear(w, u) // ambiguous: resolve exactly
		}
	}
	// The chunk's composed end cleared u−guard but the re-accumulated
	// prefix did not: boundary noise, resolve exactly.
	return drawLinear(w, u)
}
