package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"simprof/internal/stats"
)

// threeBlobs returns well-separated clusters around (0,0), (10,0), (0,10).
func threeBlobs(perBlob int, seed uint64) ([][]float64, []int) {
	rng := stats.NewRNG(seed)
	centers := [][2]float64{{0, 0}, {10, 0}, {0, 10}}
	var pts [][]float64
	var truth []int
	for c, ctr := range centers {
		for i := 0; i < perBlob; i++ {
			pts = append(pts, []float64{ctr[0] + rng.NormFloat64()*0.5, ctr[1] + rng.NormFloat64()*0.5})
			truth = append(truth, c)
		}
	}
	return pts, truth
}

func TestKMeansRecoversBlobs(t *testing.T) {
	pts, truth := threeBlobs(40, 3)
	res, err := KMeans(pts, 3, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Clustering should be a relabeling of the truth: same-blob points
	// share an assignment, different blobs differ.
	label := map[int]int{}
	for i, c := range res.Assign {
		if prev, ok := label[truth[i]]; ok {
			if prev != c {
				t.Fatalf("blob %d split across clusters", truth[i])
			}
		} else {
			label[truth[i]] = c
		}
	}
	if len(label) != 3 {
		t.Fatalf("blobs merged: %v", label)
	}
}

func TestKMeansInvariants(t *testing.T) {
	pts, _ := threeBlobs(30, 11)
	res, err := KMeans(pts, 4, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 4 || len(res.Centers) != 4 || len(res.Assign) != len(pts) {
		t.Fatalf("shape wrong: %+v", res)
	}
	total := 0
	for _, s := range res.Sizes {
		total += s
	}
	if total != len(pts) {
		t.Fatalf("sizes sum %d want %d", total, len(pts))
	}
	// Every point is assigned to its nearest center.
	for i, p := range pts {
		c, _ := NearestCenter(p, res.Centers)
		if c != res.Assign[i] {
			t.Fatalf("point %d assigned %d but nearest is %d", i, res.Assign[i], c)
		}
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	if _, err := KMeans(nil, 3, Options{}); err == nil {
		t.Fatal("no points should error")
	}
	if _, err := KMeans([][]float64{{1}}, 0, Options{}); err == nil {
		t.Fatal("k=0 should error")
	}
	if _, err := KMeans([][]float64{{1, 2}, {1}}, 1, Options{}); err == nil {
		t.Fatal("ragged dims should error")
	}
	// k > n clamps.
	res, err := KMeans([][]float64{{1}, {2}}, 5, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 2 {
		t.Fatalf("K=%d want clamp to 2", res.K)
	}
	// Identical points: inertia 0, single effective center value.
	same := [][]float64{{3, 3}, {3, 3}, {3, 3}, {3, 3}}
	res, err = KMeans(same, 2, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia != 0 {
		t.Fatalf("identical points inertia=%v", res.Inertia)
	}
}

func TestKMeansDeterministic(t *testing.T) {
	pts, _ := threeBlobs(25, 7)
	a, _ := KMeans(pts, 3, Options{Seed: 99})
	b, _ := KMeans(pts, 3, Options{Seed: 99})
	if a.Inertia != b.Inertia {
		t.Fatal("same seed, different inertia")
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed, different assignment")
		}
	}
}

func TestSilhouetteSeparatedVsOverlapping(t *testing.T) {
	pts, _ := threeBlobs(20, 13)
	res, _ := KMeans(pts, 3, Options{Seed: 2})
	sep := Silhouette(pts, res.Assign, 3)
	if sep < 0.7 {
		t.Fatalf("separated blobs silhouette=%v want >0.7", sep)
	}
	simp := SimplifiedSilhouette(pts, res.Centers, res.Assign)
	if math.Abs(simp-sep) > 0.15 {
		t.Fatalf("simplified %v far from exact %v", simp, sep)
	}
	// Random labels on one blob: silhouette near or below 0.
	rng := stats.NewRNG(4)
	var blob [][]float64
	for i := 0; i < 60; i++ {
		blob = append(blob, []float64{rng.NormFloat64(), rng.NormFloat64()})
	}
	assign := make([]int, len(blob))
	for i := range assign {
		assign[i] = rng.IntN(3)
	}
	if s := Silhouette(blob, assign, 3); s > 0.2 {
		t.Fatalf("random labels silhouette=%v want ≤0.2", s)
	}
}

func TestSilhouetteBounds(t *testing.T) {
	f := func(seed uint64, kRaw uint8) bool {
		rng := stats.NewRNG(seed)
		n := 20 + int(seed%30)
		k := int(kRaw%4) + 2
		pts := make([][]float64, n)
		assign := make([]int, n)
		for i := range pts {
			pts[i] = []float64{rng.Float64() * 10, rng.Float64() * 10}
			assign[i] = rng.IntN(k)
		}
		s := Silhouette(pts, assign, k)
		return s >= -1.0000001 && s <= 1.0000001
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSilhouetteDegenerate(t *testing.T) {
	if s := Silhouette(nil, nil, 3); s != 0 {
		t.Fatalf("empty silhouette=%v", s)
	}
	if s := Silhouette([][]float64{{1}, {2}}, []int{0, 0}, 1); s != 0 {
		t.Fatalf("k=1 silhouette=%v", s)
	}
	// All identical points → 0 contributions.
	pts := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	if s := Silhouette(pts, []int{0, 0, 1, 1}, 2); s != 0 {
		t.Fatalf("identical points silhouette=%v", s)
	}
}

func TestChooseKFindsThreeBlobs(t *testing.T) {
	pts, _ := threeBlobs(30, 21)
	sel, err := ChooseK(pts, ChooseKOptions{MaxK: 8, KMeans: Options{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if sel.K != 3 {
		t.Fatalf("ChooseK=%d want 3 (scores=%v)", sel.K, sel.Scores)
	}
	if sel.Best.K != 3 || len(sel.Best.Assign) != len(pts) {
		t.Fatalf("Best result inconsistent: %+v", sel.Best)
	}
}

func TestChooseKNoStructureGivesOne(t *testing.T) {
	// Identical points: no structure at all → k=1 (grep_sp behaviour).
	pts := make([][]float64, 50)
	for i := range pts {
		pts[i] = []float64{5, 5, 5}
	}
	sel, err := ChooseK(pts, ChooseKOptions{MaxK: 6, KMeans: Options{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if sel.K != 1 {
		t.Fatalf("identical points ChooseK=%d want 1", sel.K)
	}
}

func TestChooseKPrefersSmallestWithinThreshold(t *testing.T) {
	// Two blobs: k=2 is best; any k' > 2 within 90% must not be chosen
	// because 2 comes first.
	rng := stats.NewRNG(31)
	var pts [][]float64
	for i := 0; i < 40; i++ {
		pts = append(pts, []float64{rng.NormFloat64() * 0.3, 0})
		pts = append(pts, []float64{20 + rng.NormFloat64()*0.3, 0})
	}
	sel, err := ChooseK(pts, ChooseKOptions{MaxK: 10, KMeans: Options{Seed: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if sel.K != 2 {
		t.Fatalf("ChooseK=%d want 2", sel.K)
	}
}

func TestChooseKEmpty(t *testing.T) {
	if _, err := ChooseK(nil, ChooseKOptions{}); err == nil {
		t.Fatal("empty ChooseK should error")
	}
}

func TestNearestCenter(t *testing.T) {
	centers := [][]float64{{0, 0}, {10, 10}}
	c, d := NearestCenter([]float64{1, 1}, centers)
	if c != 0 || d != 2 {
		t.Fatalf("NearestCenter=(%d,%v)", c, d)
	}
}
