// Package profiler is SimProf's thread-profiling frontend (§III-A): it
// carves each executor thread's execution into fixed-size sampling
// units, takes periodic call-stack snapshots inside each unit (the
// JVMTI-style collector) and attaches per-unit hardware counters (the
// perf_event-style collector). For Hadoop, whose executor threads live
// only as long as one task, it first merges the threads that ran on the
// same core to mimic a long-running Spark executor thread.
package profiler

import (
	"fmt"
	"sort"

	"simprof/internal/cpu"
	"simprof/internal/model"
	"simprof/internal/trace"
)

// Config controls the sampling manager.
type Config struct {
	UnitInstr     uint64 // sampling unit size in instructions (paper: 100M)
	SnapshotEvery uint64 // call-stack snapshot cadence (paper: 10M)
	MergePerCore  bool   // Hadoop mode: merge task threads per core
}

// DefaultConfig returns the paper's parameters.
func DefaultConfig() Config {
	return Config{UnitInstr: 100_000_000, SnapshotEvery: 10_000_000}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.UnitInstr == 0 {
		return fmt.Errorf("profiler: UnitInstr must be positive")
	}
	if c.SnapshotEvery == 0 || c.SnapshotEvery > c.UnitInstr {
		return fmt.Errorf("profiler: SnapshotEvery=%d must be in (0, UnitInstr=%d]",
			c.SnapshotEvery, c.UnitInstr)
	}
	return nil
}

// Collect builds a trace from a machine run. The returned trace has no
// Benchmark/Framework/Input metadata; callers fill those in.
func Collect(res cpu.Result, table *model.Table, cfg Config) (*trace.Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	streams := buildStreams(res, cfg.MergePerCore)
	t := &trace.Trace{
		UnitInstr:     cfg.UnitInstr,
		SnapshotEvery: cfg.SnapshotEvery,
		Methods:       table.Methods(),
	}
	for ti, recs := range streams {
		units := sliceUnits(recs, cfg)
		for i := range units {
			units[i].Thread = ti
			units[i].Index = i
			units[i].ID = len(t.Units)
			t.Units = append(t.Units, units[i])
		}
	}
	return t, nil
}

// buildStreams turns the machine result into the profiled execution
// streams: one per executor thread (Spark) or one per core (Hadoop).
func buildStreams(res cpu.Result, mergePerCore bool) [][]cpu.SegExec {
	if !mergePerCore {
		out := make([][]cpu.SegExec, 0, len(res.Threads))
		for _, te := range res.Threads {
			out = append(out, te.Exec)
		}
		return out
	}
	byCore := map[int][]cpu.ThreadExec{}
	for _, te := range res.Threads {
		byCore[te.Core] = append(byCore[te.Core], te)
	}
	coreIDs := make([]int, 0, len(byCore))
	for c := range byCore {
		coreIDs = append(coreIDs, c)
	}
	sort.Ints(coreIDs)
	var out [][]cpu.SegExec
	for _, c := range coreIDs {
		tes := byCore[c]
		// Order the core's task threads by when they started running.
		sort.SliceStable(tes, func(i, j int) bool {
			return firstStart(tes[i]) < firstStart(tes[j])
		})
		var merged []cpu.SegExec
		for _, te := range tes {
			merged = append(merged, te.Exec...)
		}
		out = append(out, merged)
	}
	return out
}

func firstStart(te cpu.ThreadExec) uint64 {
	if len(te.Exec) == 0 {
		return ^uint64(0)
	}
	return te.Exec[0].StartCycle
}

// sliceUnits carves one execution stream into sampling units. Counters
// of segments spanning a unit boundary are prorated by instruction
// count; the trailing partial unit is discarded (the paper uses
// fixed-size units only).
func sliceUnits(recs []cpu.SegExec, cfg Config) []trace.Unit {
	var units []trace.Unit
	var cur trace.Unit
	var curInstr uint64                 // instructions in the current unit
	var fCycles, fL1, fL2, fLLC float64 // prorated counter accumulators
	var threadInstr uint64              // absolute instructions on this stream
	nextSnap := cfg.SnapshotEvery       // absolute instr position of next snapshot
	started := false

	flush := func() {
		cur.Counters = trace.Counters{
			Instructions: curInstr,
			Cycles:       uint64(fCycles),
			L1Misses:     uint64(fL1),
			L2Misses:     uint64(fL2),
			LLCMisses:    uint64(fLLC),
		}
		sort.Ints(cur.Stages)
		cur.Stages = dedupInts(cur.Stages)
		units = append(units, cur)
		cur = trace.Unit{}
		curInstr, fCycles, fL1, fL2, fLLC = 0, 0, 0, 0, 0
		started = false
	}

	for _, rec := range recs {
		segLeft := rec.Seg.Instr
		for segLeft > 0 {
			if !started {
				frac := float64(rec.Seg.Instr-segLeft) / float64(rec.Seg.Instr)
				cur.StartCycle = rec.StartCycle + uint64(frac*float64(rec.Cycles))
				started = true
			}
			take := cfg.UnitInstr - curInstr
			if segLeft < take {
				take = segLeft
			}
			frac := float64(take) / float64(rec.Seg.Instr)
			fCycles += frac * float64(rec.Cycles)
			fL1 += frac * float64(rec.L1Misses)
			fL2 += frac * float64(rec.L2Misses)
			fLLC += frac * float64(rec.LLCMisses)
			if !containsInt(cur.Stages, rec.Seg.StageID) {
				cur.Stages = append(cur.Stages, rec.Seg.StageID)
			}

			// Snapshots that land inside this span observe this
			// segment's stack.
			spanEnd := threadInstr + take
			for nextSnap <= spanEnd {
				cur.Snapshots = append(cur.Snapshots, rec.Seg.Stack)
				nextSnap += cfg.SnapshotEvery
			}

			threadInstr = spanEnd
			curInstr += take
			segLeft -= take
			if curInstr == cfg.UnitInstr {
				flush()
			}
		}
	}
	return units
}

func containsInt(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func dedupInts(xs []int) []int {
	if len(xs) < 2 {
		return xs
	}
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
