package profiler

import (
	"testing"

	"simprof/internal/cpu"
	"simprof/internal/jvm"
	"simprof/internal/model"
)

// runSimple executes nSeg segments of segInstr instructions each on one
// thread and collects with the given profiler config.
func runSimple(t *testing.T, nSeg int, segInstr uint64, cfg Config) (*jvm.VM, *cpu.Result, *Config) {
	t.Helper()
	vm := jvm.NewVM()
	b := vm.SpawnThread("exec-0").PushM("java.lang.Thread", "run", model.KindFramework)
	for i := 0; i < nSeg; i++ {
		b.SetTask(i, i%2)
		b.PushM("W", "op"+string(rune('a'+i%3)), model.KindMap)
		b.Exec(segInstr, 0.5, cpu.Access{Kind: cpu.PatternSequential, WorkingSet: 4 << 10, Refs: 0.3})
		b.Pop()
	}
	mcfg := cpu.DefaultConfig()
	mcfg.Cores = 1
	mcfg.MigrationRate, mcfg.NoiseCoV = 0, 0
	m, err := cpu.NewMachine(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(vm.Threads())
	if err != nil {
		t.Fatal(err)
	}
	return vm, &res, &cfg
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		{UnitInstr: 0, SnapshotEvery: 10},
		{UnitInstr: 100, SnapshotEvery: 0},
		{UnitInstr: 100, SnapshotEvery: 200},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d validated", i)
		}
	}
}

func TestUnitsHaveExactSizeAndSnapshotCount(t *testing.T) {
	cfg := Config{UnitInstr: 1000, SnapshotEvery: 100}
	vm, res, _ := runSimple(t, 25, 200, cfg) // 5000 instr → 5 units
	tr, err := Collect(*res, vm.Table, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Units) != 5 {
		t.Fatalf("units=%d want 5", len(tr.Units))
	}
	for i, u := range tr.Units {
		if u.Counters.Instructions != 1000 {
			t.Fatalf("unit %d instr=%d", i, u.Counters.Instructions)
		}
		if len(u.Snapshots) != 10 {
			t.Fatalf("unit %d snapshots=%d want 10", i, len(u.Snapshots))
		}
		if u.ID != i || u.Index != i || u.Thread != 0 {
			t.Fatalf("unit %d ids wrong: %+v", i, u)
		}
		if u.CPI() <= 0 {
			t.Fatalf("unit %d cpi=%v", i, u.CPI())
		}
	}
}

func TestTrailingPartialUnitDropped(t *testing.T) {
	cfg := Config{UnitInstr: 1000, SnapshotEvery: 100}
	vm, res, _ := runSimple(t, 7, 200, cfg) // 1400 instr → 1 unit + 400 dropped
	tr, err := Collect(*res, vm.Table, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Units) != 1 {
		t.Fatalf("units=%d want 1", len(tr.Units))
	}
}

func TestSegmentSpanningUnitsProrated(t *testing.T) {
	// One huge segment split over 4 units: each unit gets 1/4 of its
	// cycles/misses.
	vm := jvm.NewVM()
	b := vm.SpawnThread("exec").PushM("T", "run", model.KindFramework)
	b.PushM("W", "scan", model.KindMap)
	b.Exec(4000, 0.5, cpu.Access{Kind: cpu.PatternRandom, WorkingSet: 64 << 20, Refs: 0.3})
	mcfg := cpu.DefaultConfig()
	mcfg.Cores, mcfg.MigrationRate, mcfg.NoiseCoV = 1, 0, 0
	m, _ := cpu.NewMachine(mcfg)
	res, _ := m.Run(vm.Threads())
	cfg := Config{UnitInstr: 1000, SnapshotEvery: 500}
	tr, err := Collect(res, vm.Table, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Units) != 4 {
		t.Fatalf("units=%d want 4", len(tr.Units))
	}
	c0 := tr.Units[0].Counters
	for i, u := range tr.Units {
		if d := int64(u.Counters.Cycles) - int64(c0.Cycles); d > 1 || d < -1 {
			t.Fatalf("unit %d cycles %d != %d", i, u.Counters.Cycles, c0.Cycles)
		}
		if d := int64(u.Counters.LLCMisses) - int64(c0.LLCMisses); d > 1 || d < -1 {
			t.Fatalf("unit %d llc misses %d != %d", i, u.Counters.LLCMisses, c0.LLCMisses)
		}
	}
}

func TestStagesRecorded(t *testing.T) {
	cfg := Config{UnitInstr: 1000, SnapshotEvery: 100}
	vm, res, _ := runSimple(t, 25, 200, cfg)
	tr, _ := Collect(*res, vm.Table, cfg)
	for _, u := range tr.Units {
		if len(u.Stages) == 0 {
			t.Fatal("unit lost stage tags")
		}
		for i := 1; i < len(u.Stages); i++ {
			if u.Stages[i] <= u.Stages[i-1] {
				t.Fatalf("stages not sorted/unique: %v", u.Stages)
			}
		}
	}
}

func TestMergePerCore(t *testing.T) {
	// 6 short-lived "task" threads on 2 cores (Hadoop style): merged
	// into 2 profiled streams, so unit count reflects per-core totals.
	vm := jvm.NewVM()
	for i := 0; i < 6; i++ {
		b := vm.SpawnThread("task").PushM("org.apache.hadoop.mapred.YarnChild", "main", model.KindFramework)
		b.SetTask(i, 0)
		b.PushM("M", "map", model.KindMap)
		b.Exec(900, 0.5, cpu.Access{Kind: cpu.PatternSequential, WorkingSet: 4 << 10, Refs: 0.3})
		b.Pop()
	}
	mcfg := cpu.DefaultConfig()
	mcfg.Cores, mcfg.MigrationRate, mcfg.NoiseCoV = 2, 0, 0
	m, _ := cpu.NewMachine(mcfg)
	res, _ := m.Run(vm.Threads())

	merged, err := Collect(res, vm.Table, Config{UnitInstr: 1000, SnapshotEvery: 100, MergePerCore: true})
	if err != nil {
		t.Fatal(err)
	}
	// 3 tasks × 900 = 2700 instr per core → 2 units per core → 4 total.
	if len(merged.Units) != 4 {
		t.Fatalf("merged units=%d want 4", len(merged.Units))
	}
	threads := map[int]bool{}
	for _, u := range merged.Units {
		threads[u.Thread] = true
	}
	if len(threads) != 2 {
		t.Fatalf("merged streams=%d want 2 (one per core)", len(threads))
	}

	// Without merging, every 900-instruction task thread is below the
	// unit size, so no units survive.
	plain, _ := Collect(res, vm.Table, Config{UnitInstr: 1000, SnapshotEvery: 100})
	if len(plain.Units) != 0 {
		t.Fatalf("unmerged short threads yielded %d units", len(plain.Units))
	}
}

func TestSnapshotsObserveActiveStack(t *testing.T) {
	vm := jvm.NewVM()
	b := vm.SpawnThread("exec").PushM("T", "run", model.KindFramework)
	mapID := vm.Table.Intern("W", "map", model.KindMap)
	sortID := vm.Table.Intern("W", "sort", model.KindSort)
	b.Push(mapID).Exec(500, 0.5, cpu.Access{}).Pop()
	b.Push(sortID).Exec(500, 0.5, cpu.Access{}).Pop()
	mcfg := cpu.DefaultConfig()
	mcfg.Cores, mcfg.MigrationRate, mcfg.NoiseCoV = 1, 0, 0
	m, _ := cpu.NewMachine(mcfg)
	res, _ := m.Run(vm.Threads())
	tr, _ := Collect(res, vm.Table, Config{UnitInstr: 1000, SnapshotEvery: 100})
	if len(tr.Units) != 1 {
		t.Fatalf("units=%d", len(tr.Units))
	}
	snaps := tr.Units[0].Snapshots
	if len(snaps) != 10 {
		t.Fatalf("snapshots=%d", len(snaps))
	}
	for i := 0; i < 5; i++ {
		if snaps[i].Leaf() != mapID {
			t.Fatalf("snapshot %d leaf=%v want map", i, snaps[i].Leaf())
		}
	}
	for i := 5; i < 10; i++ {
		if snaps[i].Leaf() != sortID {
			t.Fatalf("snapshot %d leaf=%v want sort", i, snaps[i].Leaf())
		}
	}
}

func TestCollectInvalidConfig(t *testing.T) {
	if _, err := Collect(cpu.Result{}, model.NewTable(), Config{}); err == nil {
		t.Fatal("invalid config should fail")
	}
}

func TestMergeOrderFollowsStartCycles(t *testing.T) {
	// Two task threads on one core: the merged stream must order their
	// units by when the tasks actually ran.
	vm := jvm.NewVM()
	first := vm.Table.Intern("T1", "map", model.KindMap)
	second := vm.Table.Intern("T2", "map", model.KindMap)
	for i, m := range []model.MethodID{first, second} {
		b := vm.SpawnThread("task").PushM("org.apache.hadoop.mapred.YarnChild", "main", model.KindFramework)
		b.SetTask(i, 0)
		b.Push(m)
		b.Exec(2000, 0.5, cpu.Access{Kind: cpu.PatternSequential, WorkingSet: 4 << 10, Refs: 0.3})
		b.Pop()
	}
	mcfg := cpu.DefaultConfig()
	mcfg.Cores, mcfg.MigrationRate, mcfg.NoiseCoV = 1, 0, 0
	m, _ := cpu.NewMachine(mcfg)
	res, _ := m.Run(vm.Threads())
	tr, err := Collect(res, vm.Table, Config{UnitInstr: 1000, SnapshotEvery: 100, MergePerCore: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Units) != 4 {
		t.Fatalf("units=%d want 4", len(tr.Units))
	}
	// First two units belong to the first-run task, last two to the
	// second (FIFO core scheduling runs them in spawn order).
	if tr.Units[0].Snapshots[0].Leaf() != first || tr.Units[3].Snapshots[0].Leaf() != second {
		t.Fatal("merged stream not ordered by task start")
	}
	// Start cycles are monotone within the merged stream.
	for i := 1; i < len(tr.Units); i++ {
		if tr.Units[i].StartCycle < tr.Units[i-1].StartCycle {
			t.Fatal("merged start cycles not monotone")
		}
	}
}
