package parallel

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestWithContextCompletesWhenLive: a live context changes nothing —
// every chunk runs and Err is nil.
func TestWithContextCompletesWhenLive(t *testing.T) {
	eng := New(4).WithContext(context.Background())
	var ran atomic.Int64
	eng.ForEachChunk(1000, 7, func(_, lo, hi int) { ran.Add(int64(hi - lo)) })
	if ran.Load() != 1000 {
		t.Fatalf("ran %d elements, want 1000", ran.Load())
	}
	if err := eng.Err(); err != nil {
		t.Fatalf("Err = %v on live context", err)
	}
}

// TestWithContextNil: a nil context is a no-op wrapper.
func TestWithContextNil(t *testing.T) {
	eng := New(2)
	if eng.WithContext(nil) != eng {
		t.Fatal("WithContext(nil) should return the receiver")
	}
}

// TestCancelStopsClaiming: cancelling mid-loop stops new chunks from
// being claimed; started chunks finish (no mid-write kills); the loop
// returns instead of hanging, and Err reports the cancellation.
func TestCancelStopsClaiming(t *testing.T) {
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		eng := New(workers).WithContext(ctx)
		var ran atomic.Int64
		const chunks = 10000
		eng.ForEachChunk(chunks, 1, func(c, _, _ int) {
			if c == 0 {
				cancel()
			}
			ran.Add(1)
		})
		if err := eng.Err(); err != context.Canceled {
			t.Fatalf("workers=%d: Err = %v, want Canceled", workers, err)
		}
		// The cancel lands while early chunks are in flight; with chunk 0
		// cancelling, at most workers chunks were already claimed plus a
		// small race window. Anything close to the full grid means the
		// cancellation was ignored.
		if n := ran.Load(); n >= chunks/2 {
			t.Fatalf("workers=%d: %d of %d chunks ran after cancel", workers, n, chunks)
		}
		cancel()
	}
}

// TestCancelForEachIndexErr: cancellation surfaces as the context error
// even when indices also fail, and does so deterministically.
func TestCancelForEachIndexErr(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already dead before the loop starts
	eng := New(4).WithContext(ctx)
	var ran atomic.Int64
	err := eng.ForEachIndexErr(100, func(i int) error { ran.Add(1); return nil })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d indices ran on a dead context", ran.Load())
	}
}

// TestCancelNoGoroutineLeak: a canceled loop leaves no helper
// goroutines behind.
func TestCancelNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		eng := New(8).WithContext(ctx)
		eng.ForEachChunk(1000, 1, func(c, _, _ int) {
			if c == 3 {
				cancel()
			}
		})
		cancel()
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutines grew from %d to %d after canceled loops", before, runtime.NumGoroutine())
}

// TestDeterminismUnchangedByContext: a context-bound engine that never
// cancels produces bit-identical MapReduce results to a context-free
// one at every worker count.
func TestDeterminismUnchangedByContext(t *testing.T) {
	n := 10_000
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = float64(i%97) * 1.0000001
	}
	sum := func(e *Engine) float64 {
		return MapReduce(e, n, 64, func(_, lo, hi int) float64 {
			s := 0.0
			for i := lo; i < hi; i++ {
				s += vals[i]
			}
			return s
		}, func(a, b float64) float64 { return a + b })
	}
	want := sum(New(1))
	for _, workers := range []int{2, 8} {
		if got := sum(New(workers).WithContext(context.Background())); got != want {
			t.Fatalf("workers=%d with ctx: sum %v != serial %v", workers, got, want)
		}
	}
}
