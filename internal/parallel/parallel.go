// Package parallel is SimProf's shared execution engine: a bounded,
// nesting-safe worker pool that the compute kernels (k-means restarts,
// the ChooseK sweep, the silhouette passes, feature scoring and the
// experiment driver) all run on.
//
// Two properties drive the design:
//
//  1. Determinism. Work is split over a fixed chunk grid that depends
//     only on the input size and the chunk size — never on the worker
//     count or on scheduling. Per-chunk partial results are merged in
//     chunk index order, so floating-point reductions are bit-for-bit
//     identical for 1, 2 or 64 workers. A caller that needs a serial
//     baseline just runs the same code with workers=1.
//
//  2. Bounded nesting. An Engine carries its own helper budget
//     (workers-1 helper goroutines across *all* simultaneous loops on
//     that engine), and every helper additionally needs a token from a
//     process-wide pool sized from GOMAXPROCS. A parallel k-sweep whose
//     tasks run parallel restarts therefore degrades gracefully to
//     serial execution instead of oversubscribing the machine: the
//     calling goroutine always participates, so forward progress never
//     waits on a token.
//
// Panics inside loop bodies are captured and re-raised on the calling
// goroutine after all workers have drained, so a panicking task can
// never deadlock a sibling or leak a goroutine.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"simprof/internal/obs"
)

// Pool-utilization telemetry (recorded only while obs is enabled; the
// disabled path is a single atomic load per loop, not per chunk).
var (
	obsLoops = obs.NewCounter("parallel.loops",
		"parallel loops issued on any engine")
	obsLoopsSerial = obs.NewCounter("parallel.loops_serial",
		"loops that ran inline on the caller (single chunk or workers=1)")
	obsChunks = obs.NewCounter("parallel.chunks",
		"chunks processed across all loops")
	obsHelpers = obs.NewCounter("parallel.helpers",
		"helper goroutines launched")
	obsHelperDenied = obs.NewCounter("parallel.helper_denied",
		"helper launches denied by an exhausted engine or token budget")
	obsLoopsCanceled = obs.NewCounter("parallel.ctx_canceled_loops",
		"loops halted early because the engine's context ended")
	obsChunksAbandoned = obs.NewCounter("parallel.chunks_abandoned",
		"grid chunks never run because the engine's context ended")
)

// tokens is the process-wide helper budget. Helpers (extra goroutines
// beyond the calling one) each hold one token for their lifetime, which
// bounds the total number of running workers across arbitrarily nested
// engines to roughly GOMAXPROCS + nesting depth.
var tokens chan struct{}

func init() {
	n := runtime.GOMAXPROCS(0)
	tokens = make(chan struct{}, n)
	for i := 0; i < n; i++ {
		tokens <- struct{}{}
	}
}

// Engine is a bounded execution engine. The zero value is not usable;
// construct one with New or share the process-wide Default.
type Engine struct {
	workers int
	helpers chan struct{} // per-engine helper budget (workers-1 slots)
	ctx     context.Context
}

// New returns an engine that runs at most workers goroutines at once
// across all loops issued on it (the caller counts as one). workers <= 0
// selects GOMAXPROCS. workers == 1 is the serial engine: loop bodies run
// inline on the calling goroutine, in chunk index order.
func New(workers int) *Engine {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	e := &Engine{workers: workers}
	if workers > 1 {
		e.helpers = make(chan struct{}, workers-1)
		for i := 0; i < workers-1; i++ {
			e.helpers <- struct{}{}
		}
	}
	return e
}

var (
	defaultOnce   sync.Once
	defaultEngine *Engine
)

// Default returns the shared process-wide engine, sized from GOMAXPROCS
// at first use.
func Default() *Engine {
	defaultOnce.Do(func() { defaultEngine = New(0) })
	return defaultEngine
}

// Workers reports the engine's concurrency bound.
func (e *Engine) Workers() int { return e.workers }

// WithContext returns an engine that shares this engine's worker and
// helper budgets but observes ctx: once ctx ends, loops issued on the
// returned engine stop claiming new chunks and return early (chunks
// already started run to completion — loop bodies are never killed
// mid-write). A loop cut short leaves its output partially written, so
// callers MUST check Err after each loop (ForEachIndexErr does it for
// them) and discard the partial result on cancellation. Kernel results
// therefore remain bit-for-bit deterministic: a loop either completes
// every chunk or reports the context error.
//
// A nil ctx returns the receiver unchanged.
func (e *Engine) WithContext(ctx context.Context) *Engine {
	if ctx == nil {
		return e
	}
	return &Engine{workers: e.workers, helpers: e.helpers, ctx: ctx}
}

// Err reports the engine context's error: non-nil once the context has
// ended. Callers of ForEachChunk / MapReduce on a context-bound engine
// check it after the loop to learn whether the grid completed.
func (e *Engine) Err() error {
	if e.ctx == nil {
		return nil
	}
	return e.ctx.Err()
}

// canceled is the per-chunk cancellation probe: a nil check on a
// context-free engine, a ctx.Err call otherwise.
func (e *Engine) canceled() bool {
	return e.ctx != nil && e.ctx.Err() != nil
}

// Chunks returns the number of chunks the grid [0,n) splits into at the
// given chunk size. The grid is a pure function of n and chunkSize, so
// per-chunk accumulators indexed by it merge identically regardless of
// how many workers processed them.
func Chunks(n, chunkSize int) int {
	if n <= 0 {
		return 0
	}
	if chunkSize <= 0 {
		chunkSize = 1
	}
	return (n + chunkSize - 1) / chunkSize
}

// panicBox records the panic from the lowest-indexed chunk so the value
// re-raised on the caller is deterministic even if several workers
// panic in the same loop.
type panicBox struct {
	mu    sync.Mutex
	set   bool
	chunk int
	val   any
}

func (p *panicBox) record(chunk int, val any) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.set || chunk < p.chunk {
		p.set, p.chunk, p.val = true, chunk, val
	}
}

func (p *panicBox) rethrow() {
	if p.set {
		panic(fmt.Sprintf("parallel: chunk %d panicked: %v", p.chunk, p.val))
	}
}

// ForEachChunk invokes fn(chunk, lo, hi) for every chunk of the fixed
// grid over [0,n). Chunks are claimed dynamically by up to Workers()
// goroutines (the caller included); fn must therefore be safe to call
// concurrently for distinct chunks, and must confine its writes to
// chunk-indexed or element-indexed state. The call returns when every
// chunk has completed. If any fn panics, remaining chunks are abandoned
// and the panic is re-raised here after all workers stop.
func (e *Engine) ForEachChunk(n, chunkSize int, fn func(chunk, lo, hi int)) {
	chunks := Chunks(n, chunkSize)
	if chunks == 0 {
		return
	}
	if chunkSize <= 0 {
		chunkSize = 1
	}
	run := func(c int) {
		lo := c * chunkSize
		hi := lo + chunkSize
		if hi > n {
			hi = n
		}
		fn(c, lo, hi)
	}
	obsLoops.Inc()
	obsChunks.Add(int64(chunks))
	if chunks == 1 || e.workers <= 1 {
		obsLoopsSerial.Inc()
		for c := 0; c < chunks; c++ {
			if e.canceled() {
				obsLoopsCanceled.Inc()
				obsChunksAbandoned.Add(int64(chunks - c))
				return
			}
			run(c)
		}
		return
	}

	var (
		next atomic.Int64
		stop atomic.Bool
		box  panicBox
	)
	worker := func() {
		for !stop.Load() {
			if e.canceled() {
				stop.Store(true)
				return
			}
			c := int(next.Add(1) - 1)
			if c >= chunks {
				return
			}
			func() {
				defer func() {
					if r := recover(); r != nil {
						box.record(c, r)
						stop.Store(true)
					}
				}()
				run(c)
			}()
		}
	}

	var wg sync.WaitGroup
	maxHelpers := chunks - 1
	if m := e.workers - 1; m < maxHelpers {
		maxHelpers = m
	}
	for h := 0; h < maxHelpers; h++ {
		if !e.acquireHelper() {
			break // budget exhausted: the caller and existing helpers finish the grid
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer e.releaseHelper()
			worker()
		}()
	}
	worker()
	wg.Wait()
	box.rethrow()
	if e.canceled() {
		if claimed := int(next.Load()); claimed < chunks {
			obsLoopsCanceled.Inc()
			obsChunksAbandoned.Add(int64(chunks - claimed))
		}
	}
}

// acquireHelper takes one slot from the engine budget and one from the
// process-wide pool, without blocking. Either being empty means the
// machine (or this engine) is saturated and the work runs on the
// goroutines already going.
func (e *Engine) acquireHelper() bool {
	select {
	case <-e.helpers:
	default:
		obsHelperDenied.Inc()
		return false
	}
	select {
	case <-tokens:
		obsHelpers.Inc()
		return true
	default:
		e.helpers <- struct{}{}
		obsHelperDenied.Inc()
		return false
	}
}

func (e *Engine) releaseHelper() {
	tokens <- struct{}{}
	e.helpers <- struct{}{}
}

// ForEachIndex invokes fn(i) for every i in [0,n), one index per chunk.
// Use it for coarse-grained independent tasks (a k-sweep, k-means
// restarts, one workload per index) where each task writes only to its
// own result slot.
func (e *Engine) ForEachIndex(n int, fn func(i int)) {
	e.ForEachChunk(n, 1, func(_, lo, _ int) { fn(lo) })
}

// ForEachIndexErr runs fn(i) for every i in [0,n) and returns the error
// of the lowest failing index (deterministic regardless of scheduling),
// or nil. All indices run even if an early one fails; a panicking index
// propagates as a panic, never as a deadlock. On a context-bound engine
// whose context ends mid-loop, the context error is returned (also
// deterministic: cancellation always wins over per-index errors, since
// an abandoned loop has an incomplete error set).
func (e *Engine) ForEachIndexErr(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	e.ForEachChunk(n, 1, func(_, lo, _ int) { errs[lo] = fn(lo) })
	if err := e.Err(); err != nil {
		return err
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// MapReduce computes a per-chunk partial with mapFn over the fixed grid
// and folds the partials in chunk index order with merge. Because the
// grid and the merge order are worker-independent, floating-point
// reductions come out bit-for-bit identical for every worker count.
// The zero value of T seeds the fold: acc = merge(acc, part_c) for
// c = 0..chunks-1. On a context-bound engine the fold still runs over
// whatever partials completed; callers must check e.Err() and discard
// the value when it is non-nil.
func MapReduce[T any](e *Engine, n, chunkSize int, mapFn func(chunk, lo, hi int) T, merge func(acc, part T) T) T {
	var acc T
	chunks := Chunks(n, chunkSize)
	if chunks == 0 {
		return acc
	}
	parts := make([]T, chunks)
	e.ForEachChunk(n, chunkSize, func(c, lo, hi int) { parts[c] = mapFn(c, lo, hi) })
	for _, p := range parts {
		acc = merge(acc, p)
	}
	return acc
}
