package parallel

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestChunksGrid(t *testing.T) {
	cases := []struct{ n, size, want int }{
		{0, 10, 0}, {-3, 10, 0}, {1, 10, 1}, {10, 10, 1},
		{11, 10, 2}, {100, 7, 15}, {5, 0, 5}, {5, -1, 5},
	}
	for _, c := range cases {
		if got := Chunks(c.n, c.size); got != c.want {
			t.Errorf("Chunks(%d,%d)=%d want %d", c.n, c.size, got, c.want)
		}
	}
}

func TestForEachChunkCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		e := New(workers)
		const n = 1037
		hits := make([]int32, n)
		e.ForEachChunk(n, 64, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestSerialEngineRunsInChunkOrder(t *testing.T) {
	e := New(1)
	var order []int
	e.ForEachChunk(100, 16, func(c, _, _ int) { order = append(order, c) })
	for i, c := range order {
		if c != i {
			t.Fatalf("serial chunk order %v", order)
		}
	}
}

func TestWorkersBound(t *testing.T) {
	e := New(2)
	var cur, peak atomic.Int32
	e.ForEachChunk(64, 1, func(_, _, _ int) {
		if c := cur.Add(1); c > peak.Load() {
			peak.Store(c)
		}
		for i := 0; i < 2000; i++ {
			_ = i * i
		}
		cur.Add(-1)
	})
	if p := peak.Load(); p > 2 {
		t.Fatalf("peak concurrency %d with 2 workers", p)
	}
}

func TestForEachIndexErrReturnsLowestIndexError(t *testing.T) {
	e := New(8)
	errA := errors.New("a")
	err := e.ForEachIndexErr(20, func(i int) error {
		switch i {
		case 3:
			return errA
		case 11:
			return errors.New("b")
		}
		return nil
	})
	if err != errA {
		t.Fatalf("got %v want the index-3 error", err)
	}
	if err := e.ForEachIndexErr(20, func(int) error { return nil }); err != nil {
		t.Fatalf("unexpected error %v", err)
	}
}

func TestPanicPropagatesWithoutDeadlock(t *testing.T) {
	for _, workers := range []int{1, 4} {
		e := New(workers)
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic swallowed", workers)
				}
				if !strings.Contains(fmt.Sprint(r), "boom") {
					t.Fatalf("workers=%d: panic %v lost its cause", workers, r)
				}
			}()
			e.ForEachIndex(50, func(i int) {
				if i == 7 {
					panic("boom")
				}
			})
		}()
		// The engine must remain usable afterwards (budget restored).
		var ran atomic.Int32
		e.ForEachIndex(10, func(int) { ran.Add(1) })
		if ran.Load() != 10 {
			t.Fatalf("workers=%d: engine broken after panic (%d/10)", workers, ran.Load())
		}
	}
}

func TestNestedLoopsComplete(t *testing.T) {
	e := New(runtime.GOMAXPROCS(0) + 2)
	var total atomic.Int64
	e.ForEachIndex(6, func(int) {
		e.ForEachChunk(100, 8, func(_, lo, hi int) {
			total.Add(int64(hi - lo))
		})
	})
	if total.Load() != 600 {
		t.Fatalf("nested total=%d want 600", total.Load())
	}
}

// TestMapReduceMatchesSerialAccumulator is the chunked-merge property:
// for integer payloads, per-chunk partial sums merged in chunk index
// order equal the plain serial accumulator exactly, for any input and
// any chunk size.
func TestMapReduceMatchesSerialAccumulator(t *testing.T) {
	e := New(8)
	prop := func(vals []int32, sizeRaw uint8) bool {
		chunkSize := int(sizeRaw%37) + 1
		var want int64
		for _, v := range vals {
			want += int64(v)
		}
		got := MapReduce(e, len(vals), chunkSize,
			func(_, lo, hi int) int64 {
				var s int64
				for i := lo; i < hi; i++ {
					s += int64(vals[i])
				}
				return s
			},
			func(a, b int64) int64 { return a + b })
		return got == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestMapReduceFloatBitForBitAcrossWorkers pins the determinism
// contract for floating point: the chunk grid and merge order are fixed,
// so the reduction is bit-for-bit identical for every worker count.
func TestMapReduceFloatBitForBitAcrossWorkers(t *testing.T) {
	prop := func(seedRaw uint32, sizeRaw uint8) bool {
		n := int(seedRaw%700) + 50
		chunkSize := int(sizeRaw%61) + 1
		vals := make([]float64, n)
		x := uint64(seedRaw) + 1
		for i := range vals {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			vals[i] = float64(x%1_000_003) / 997.0
		}
		sum := func(workers int) float64 {
			return MapReduce(New(workers), n, chunkSize,
				func(_, lo, hi int) float64 {
					var s float64
					for i := lo; i < hi; i++ {
						s += vals[i]
					}
					return s
				},
				func(a, b float64) float64 { return a + b })
		}
		base := sum(1)
		return sum(2) == base && sum(8) == base
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultEngineSharedAndSized(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default must return the shared engine")
	}
	if w := Default().Workers(); w < 1 {
		t.Fatalf("default workers=%d", w)
	}
	if w := New(0).Workers(); w != runtime.GOMAXPROCS(0) {
		t.Fatalf("New(0).Workers()=%d want GOMAXPROCS", w)
	}
}
