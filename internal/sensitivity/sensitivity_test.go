package sensitivity

import (
	"testing"

	"simprof/internal/model"
	"simprof/internal/phase"
	"simprof/internal/stats"
	"simprof/internal/trace"
)

// twoPhaseTrace builds a trace with a "scan" phase at scanCPI and an
// "agg" phase at aggCPI (with aggStd spread), 10 snapshots per unit.
func twoPhaseTrace(n int, scanCPI, aggCPI, aggStd float64, seed uint64) *trace.Trace {
	tbl := model.NewTable()
	root := tbl.Intern("T", "run", model.KindFramework)
	scan := tbl.Intern("S", "scan", model.KindMap)
	agg := tbl.Intern("A", "aggregate", model.KindReduce)
	rng := stats.NewRNG(seed)
	tr := &trace.Trace{Input: "in", Methods: tbl.Methods()}
	add := func(m model.MethodID, cpi float64) {
		u := trace.Unit{ID: len(tr.Units)}
		for s := 0; s < 10; s++ {
			u.Snapshots = append(u.Snapshots, model.Stack{root, m})
		}
		if cpi < 0.1 {
			cpi = 0.1
		}
		u.Counters = trace.Counters{Instructions: 1000, Cycles: uint64(1000 * cpi)}
		tr.Units = append(tr.Units, u)
	}
	for i := 0; i < n; i++ {
		add(scan, scanCPI+0.02*rng.NormFloat64())
		add(agg, aggCPI+aggStd*rng.NormFloat64())
	}
	return tr
}

func form(t *testing.T, tr *trace.Trace) *phase.Phases {
	t.Helper()
	ph, err := phase.Form(tr, phase.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if ph.K != 2 {
		t.Fatalf("expected 2 phases, got %d", ph.K)
	}
	return ph
}

func TestClassifyMapsUnitsToMatchingPhases(t *testing.T) {
	train := twoPhaseTrace(200, 1.0, 2.5, 0.1, 1)
	ph := form(t, train)
	ref := twoPhaseTrace(30, 1.0, 2.5, 0.1, 2)
	assign := Classify(ph, ref)
	if len(assign) != len(ref.Units) {
		t.Fatal("assignment length mismatch")
	}
	// Alternating scan/agg units must map to alternating phases, and
	// a ref scan unit must share its phase with a train scan unit.
	if assign[0] == assign[1] {
		t.Fatal("distinct behaviours classified to one phase")
	}
	if assign[0] != ph.Assign[0] {
		t.Fatal("ref scan unit not in training scan phase")
	}
	for i := 2; i < len(assign); i++ {
		if assign[i] != assign[i-2] {
			t.Fatal("classification not consistent across identical units")
		}
	}
}

func TestInsensitiveWhenInputsMatch(t *testing.T) {
	train := twoPhaseTrace(200, 1.0, 2.5, 0.1, 1)
	ph := form(t, train)
	refs := []*trace.Trace{
		twoPhaseTrace(200, 1.0, 2.5, 0.1, 7),
		twoPhaseTrace(200, 1.0, 2.5, 0.1, 8),
	}
	rep, err := Test(ph, refs, DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	sens, insens := rep.Counts()
	if sens != 0 || insens != 2 {
		t.Fatalf("identical inputs: sensitive=%d insensitive=%d", sens, insens)
	}
}

func TestSensitiveMeanShift(t *testing.T) {
	train := twoPhaseTrace(200, 1.0, 2.5, 0.1, 1)
	ph := form(t, train)
	// Reference input shifts only the aggregate phase's mean by 40%.
	ref := twoPhaseTrace(200, 1.0, 3.5, 0.1, 9)
	rep, err := Test(ph, []*trace.Trace{ref}, DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	sens, insens := rep.Counts()
	if sens != 1 || insens != 1 {
		t.Fatalf("sensitive=%d insensitive=%d want 1/1", sens, insens)
	}
	// The sensitive phase must be the aggregate one (unit 1's phase).
	aggPhase := ph.Assign[1]
	if !rep.Sensitive[aggPhase] {
		t.Fatal("aggregate phase not marked sensitive")
	}
}

func TestSensitiveStdShift(t *testing.T) {
	train := twoPhaseTrace(200, 1.0, 2.5, 0.1, 1)
	ph := form(t, train)
	// Same means, but the aggregate phase becomes much noisier.
	ref := twoPhaseTrace(200, 1.0, 2.5, 0.5, 3)
	rep, err := Test(ph, []*trace.Trace{ref}, DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	aggPhase := ph.Assign[1]
	if !rep.Sensitive[aggPhase] {
		t.Fatal("σ shift not detected (Eq. 6 second clause)")
	}
	scanPhase := ph.Assign[0]
	if rep.Sensitive[scanPhase] {
		t.Fatal("scan phase should stay insensitive")
	}
}

func TestAnyInputTriggers(t *testing.T) {
	train := twoPhaseTrace(200, 1.0, 2.5, 0.1, 1)
	ph := form(t, train)
	refs := []*trace.Trace{
		twoPhaseTrace(200, 1.0, 2.5, 0.1, 4), // identical
		twoPhaseTrace(200, 1.0, 4.0, 0.1, 5), // shifted agg
	}
	rep, _ := Test(ph, refs, DefaultThreshold)
	aggPhase := ph.Assign[1]
	if !rep.Sensitive[aggPhase] {
		t.Fatal("one deviating input should mark the phase sensitive")
	}
	if !rep.Inputs[1].Sensitive[aggPhase] || rep.Inputs[0].Sensitive[aggPhase] {
		t.Fatal("per-input attribution wrong")
	}
}

func TestSensitivePointFraction(t *testing.T) {
	train := twoPhaseTrace(200, 1.0, 2.5, 0.1, 1)
	ph := form(t, train)
	ref := twoPhaseTrace(200, 1.0, 4.0, 0.1, 5)
	rep, _ := Test(ph, []*trace.Trace{ref}, DefaultThreshold)
	// Points: one in each phase → fraction 0.5.
	scanUnit := ph.Trace.Units[0].ID
	aggUnit := ph.Trace.Units[1].ID
	frac := rep.SensitivePointFraction(ph, []int{scanUnit, aggUnit})
	if frac != 0.5 {
		t.Fatalf("fraction=%v want 0.5", frac)
	}
	if rep.SensitivePointFraction(ph, nil) != 0 {
		t.Fatal("empty points should give 0")
	}
}

func TestTestErrors(t *testing.T) {
	if _, err := Test(&phase.Phases{}, nil, 0.1); err == nil {
		t.Fatal("no phases should fail")
	}
}

func TestPhaseSensitiveEdgeCases(t *testing.T) {
	train := PhaseStats{Mean: []float64{2}, Std: []float64{0}, Count: []int{10}}
	refEmpty := PhaseStats{Mean: []float64{0}, Std: []float64{0}, Count: []int{0}}
	if PhaseSensitive(train, refEmpty, 0, 0.1) {
		t.Fatal("unvisited phase cannot be sensitive")
	}
	// Zero training σ, large ref spread → sensitive.
	refNoisy := PhaseStats{Mean: []float64{2}, Std: []float64{1}, Count: []int{10}}
	if !PhaseSensitive(train, refNoisy, 0, 0.1) {
		t.Fatal("spread under zero-σ training should be sensitive")
	}
}
