package sensitivity

import (
	"testing"

	"simprof/internal/trace"
)

// Degraded reference units must be classified but not enter the Eq. 6
// CPI statistics: a dropped counter is not a CPI-0 observation, and a
// trace with many dropouts must not flag phases sensitive for purely
// mechanical reasons.
func TestStatsForSkipsDegradedUnits(t *testing.T) {
	train := twoPhaseTrace(200, 1.0, 2.5, 0.1, 1)
	ph := form(t, train)

	// Reference with the SAME behaviour, but a third of its units lose
	// their counters.
	ref := twoPhaseTrace(60, 1.0, 2.5, 0.1, 2)
	for i := 0; i < len(ref.Units); i += 3 {
		ref.Units[i].Counters = trace.Counters{}
		ref.Units[i].Quality |= trace.CountersMissing
	}
	rep, err := Test(ph, []*trace.Trace{ref}, DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	for h, s := range rep.Sensitive {
		if s {
			t.Fatalf("phase %d flagged sensitive by counter dropouts alone", h)
		}
	}
	// The degraded units still got classified (assignment covers all).
	if got := len(rep.Inputs[0].Assign); got != len(ref.Units) {
		t.Fatalf("assign len %d want %d", got, len(ref.Units))
	}
	// But the per-phase counts only cover the measured units.
	counted := 0
	for _, c := range rep.Inputs[0].Stats.Count {
		counted += c
	}
	degraded := (len(ref.Units) + 2) / 3
	if counted != len(ref.Units)-degraded {
		t.Fatalf("counted %d units, want %d measured", counted, len(ref.Units)-degraded)
	}
}

// A genuinely shifted reference must still be detected even when some
// of its units are degraded.
func TestSensitivityDetectsShiftThroughDegradation(t *testing.T) {
	train := twoPhaseTrace(200, 1.0, 2.5, 0.1, 1)
	ph := form(t, train)
	ref := twoPhaseTrace(60, 1.0, 4.0, 0.1, 2) // agg phase CPI 2.5 → 4.0
	for i := 0; i < len(ref.Units); i += 4 {
		ref.Units[i].Counters = trace.Counters{}
		ref.Units[i].Quality |= trace.CountersMissing
	}
	rep, err := Test(ph, []*trace.Trace{ref}, DefaultThreshold)
	if err != nil {
		t.Fatal(err)
	}
	any := false
	for _, s := range rep.Sensitive {
		any = any || s
	}
	if !any {
		t.Fatal("large CPI shift missed on a partially degraded reference")
	}
}
