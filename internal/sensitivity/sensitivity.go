// Package sensitivity implements the paper's input sensitivity test
// (§III-D): sampling units of each reference input are classified onto
// the training input's phase centers (unit classification), and a phase
// is declared input sensitive if its CPI mean or standard deviation
// under any reference input deviates from the training input by more
// than a threshold (Eq. 6, 10%). Input-insensitive phases can then be
// skipped when simulating further inputs, which is the sample-size
// reduction Fig. 12 reports.
package sensitivity

import (
	"fmt"
	"math"

	"simprof/internal/cluster"
	"simprof/internal/parallel"
	"simprof/internal/phase"
	"simprof/internal/stats"
	"simprof/internal/trace"
)

// DefaultThreshold is the paper's 10%.
const DefaultThreshold = 0.10

// Classify assigns every unit of a reference trace to the nearest
// training phase center, vectorizing the reference units in the
// training feature space (methods are matched by fully qualified name,
// so the reference run may intern methods in a different order). The
// center norms are cached once and shared by every query, and units
// classify in fixed chunks on the worker pool — each unit writes only
// its own slot, so the assignment matches a serial NearestCenter scan
// bit-for-bit at every worker count.
func Classify(ph *phase.Phases, ref *trace.Trace) []int {
	vectors := ph.Space.Vectorize(ref)
	set := cluster.NewNearestSet(ph.Centers)
	out := make([]int, len(vectors))
	parallel.Default().ForEachChunk(len(vectors), 256, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			c, _ := set.Nearest(vectors[i])
			out[i] = c
		}
	})
	return out
}

// PhaseStats holds the per-phase CPI mean/stddev of one input.
type PhaseStats struct {
	Mean  []float64
	Std   []float64
	Count []int
}

// statsFor summarizes CPI per phase given an assignment. Degraded units
// (lost counters, truncated streams) are classified but contribute no
// observation: comparing a fabricated zero CPI against the training
// distribution would flag phases as sensitive for purely mechanical
// reasons.
func statsFor(k int, tr *trace.Trace, assign []int) PhaseStats {
	ps := PhaseStats{
		Mean:  make([]float64, k),
		Std:   make([]float64, k),
		Count: make([]int, k),
	}
	buckets := make([][]float64, k)
	for i, a := range assign {
		if tr.EffectiveQuality(i).Degraded() || !tr.Units[i].CPIValid() {
			continue
		}
		buckets[a] = append(buckets[a], tr.Units[i].CPI())
	}
	for h, b := range buckets {
		ps.Mean[h] = stats.Mean(b)
		ps.Std[h] = stats.StdDev(b)
		ps.Count[h] = len(b)
	}
	return ps
}

// PhaseSensitive applies Eq. 6 to one phase: the phase passes (is
// sensitive to this reference input) when the relative deviation of the
// mean or of the standard deviation exceeds the threshold. A phase the
// reference input never enters is not evidence of sensitivity.
func PhaseSensitive(train, ref PhaseStats, h int, threshold float64) bool {
	if ref.Count[h] == 0 || train.Count[h] == 0 {
		return false
	}
	if train.Mean[h] != 0 &&
		math.Abs(train.Mean[h]-ref.Mean[h])/train.Mean[h] > threshold {
		return true
	}
	// σ clause. The literal |σ_t-σ_r|/σ_t ratio of Eq. 6 fires on
	// estimator noise whenever σ_t is small relative to the phase mean
	// (with a few dozen units per phase the σ estimate itself wobbles
	// by >10%), so the deviation is measured against the phase's mean
	// CPI instead: the spread must shift by more than threshold×μ_t to
	// count. This keeps the test's intent — "does the shape of the
	// phase's performance distribution change with the input?" — while
	// making it robust at realistic per-phase unit counts.
	if train.Mean[h] == 0 {
		return ref.Std[h] > 0
	}
	return math.Abs(train.Std[h]-ref.Std[h])/train.Mean[h] > threshold
}

// InputResult records one reference input's test outcome.
type InputResult struct {
	Input     string
	Assign    []int // unit classification of the reference trace
	Stats     PhaseStats
	Sensitive []bool // per phase, Eq. 6 outcome against training
}

// Report is the full input-sensitivity analysis of one workload.
type Report struct {
	Train     PhaseStats
	Inputs    []InputResult
	Sensitive []bool // per phase: sensitive to ANY reference input
	Threshold float64
}

// Test runs Algorithm 1: classify each reference input's units into the
// training phases and mark the phases whose performance shifts.
func Test(ph *phase.Phases, refs []*trace.Trace, threshold float64) (*Report, error) {
	if ph.K == 0 {
		return nil, fmt.Errorf("sensitivity: no phases")
	}
	if threshold <= 0 {
		threshold = DefaultThreshold
	}
	rep := &Report{
		Train:     statsFor(ph.K, ph.Trace, ph.Assign),
		Sensitive: make([]bool, ph.K),
		Threshold: threshold,
	}
	for _, ref := range refs {
		assign := Classify(ph, ref)
		ir := InputResult{
			Input:     ref.Input,
			Assign:    assign,
			Stats:     statsFor(ph.K, ref, assign),
			Sensitive: make([]bool, ph.K),
		}
		for h := 0; h < ph.K; h++ {
			if PhaseSensitive(rep.Train, ir.Stats, h, threshold) {
				ir.Sensitive[h] = true
				rep.Sensitive[h] = true
			}
		}
		rep.Inputs = append(rep.Inputs, ir)
	}
	return rep, nil
}

// Counts returns (sensitive, insensitive) phase counts — Fig. 13.
func (r *Report) Counts() (sensitive, insensitive int) {
	for _, s := range r.Sensitive {
		if s {
			sensitive++
		} else {
			insensitive++
		}
	}
	return
}

// SensitivePointFraction returns the fraction of the given simulation
// points that fall in input-sensitive phases — the per-reference-input
// sample size of Fig. 12 (points in insensitive phases are skipped).
func (r *Report) SensitivePointFraction(ph *phase.Phases, unitIDs []int) float64 {
	if len(unitIDs) == 0 {
		return 0
	}
	byID := make(map[int]int, len(ph.Trace.Units))
	for i, u := range ph.Trace.Units {
		byID[u.ID] = i
	}
	kept := 0
	for _, id := range unitIDs {
		if i, ok := byID[id]; ok && r.Sensitive[ph.Assign[i]] {
			kept++
		}
	}
	return float64(kept) / float64(len(unitIDs))
}
