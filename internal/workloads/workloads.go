// Package workloads implements the paper's Table I benchmark suite —
// Sort, WordCount, Grep (microbenchmarks), NaiveBayes (machine
// learning), Connected Components and PageRank (graph analytics) — each
// on both the Spark and Hadoop execution engines, with per-operation
// cost models shaped after the behaviours the paper reports (map-side
// reduce in wc_sp, quicksort phases in wc_hp, GraphX operator phases in
// cc_sp, ...).
package workloads

import (
	"fmt"

	"simprof/internal/cpu"
	"simprof/internal/exec"
	"simprof/internal/graphx"
	"simprof/internal/hadoop"
	"simprof/internal/model"
	"simprof/internal/spark"
	"simprof/internal/synth"
)

// Benchmarks lists the Table I benchmark names in paper order.
func Benchmarks() []string { return []string{"sort", "wc", "grep", "bayes", "cc", "rank"} }

// Frameworks lists the evaluated frameworks.
func Frameworks() []string { return []string{"hadoop", "spark"} }

// Options sizes a run. Zero values select defaults tuned so that every
// workload produces a few hundred to ~1500 sampling units at the
// experiment unit size — the same regime as the paper's populations.
type Options struct {
	Cores      int
	Seed       uint64
	ChunkInstr uint64

	TextBytes        int64   // corpus size for wc/grep/bayes (default 256MB)
	SortBytes        int64   // data size for sort (default 512MB)
	GraphScale       int     // Kronecker scale for cc/rank (default 19)
	GraphEdgeFactor  float64 // edges per vertex (default 20)
	SparkIterations  int     // graph supersteps on Spark (default 8)
	HadoopIterations int     // MapReduce iterations for cc/rank (default 3)
	Partitions       int     // spark partitions per stage (default 4×cores)
	// GC enables the JVM garbage-collection model (exec.GCConfig
	// defaults) on both engines.
	GC exec.GCConfig
}

// WithDefaults fills in unset fields.
func (o Options) WithDefaults() Options {
	if o.Cores <= 0 {
		o.Cores = 4
	}
	if o.TextBytes <= 0 {
		o.TextBytes = 256 << 20
	}
	if o.SortBytes <= 0 {
		o.SortBytes = 512 << 20
	}
	if o.GraphScale <= 0 {
		o.GraphScale = 19
	}
	if o.GraphEdgeFactor <= 0 {
		o.GraphEdgeFactor = 20
	}
	if o.SparkIterations <= 0 {
		o.SparkIterations = 8
	}
	if o.HadoopIterations <= 0 {
		o.HadoopIterations = 3
	}
	if o.Partitions <= 0 {
		o.Partitions = o.Cores * 4
	}
	return o
}

// DefaultInput synthesizes the standard input of a benchmark (the
// paper's "10G text / 2^24-node graph", scaled).
func DefaultInput(bench string, o Options) (synth.InputStats, error) {
	o = o.WithDefaults()
	switch bench {
	case "wc", "grep", "bayes":
		return synth.DefaultText("text", o.TextBytes, o.Seed+11).Stats(), nil
	case "sort":
		return synth.KVSpec{
			Name: "kv", Records: o.SortBytes / 100, KeyBytes: 10, ValBytes: 90,
			Seed: o.Seed + 13,
		}.Stats(), nil
	case "cc", "rank":
		spec := synth.KroneckerSpec{
			Name: "graph", Scale: o.GraphScale, EdgeFactor: o.GraphEdgeFactor,
			A: 0.57, B: 0.19, C: 0.19, D: 0.05, // web-graph initiator (the training input)
			Seed: o.Seed + 17,
		}
		return spec.Stats(), nil
	default:
		return synth.InputStats{}, fmt.Errorf("workloads: unknown benchmark %q", bench)
	}
}

// Build compiles a benchmark on a framework into executor threads ready
// for cpu.Machine.Run, plus the method table describing their stacks.
func Build(bench, framework string, in synth.InputStats, o Options) ([]*cpu.Thread, *model.Table, error) {
	o = o.WithDefaults()
	switch framework {
	case "spark":
		return buildSpark(bench, in, o)
	case "hadoop":
		return buildHadoop(bench, in, o)
	default:
		return nil, nil, fmt.Errorf("workloads: unknown framework %q", framework)
	}
}

// ---------------------------------------------------------------------
// Spark implementations
// ---------------------------------------------------------------------

func buildSpark(bench string, in synth.InputStats, o Options) ([]*cpu.Thread, *model.Table, error) {
	ctx, err := spark.NewContext(bench, spark.Config{
		Cores: o.Cores, Seed: o.Seed, ChunkInstr: o.ChunkInstr, GC: o.GC,
	})
	if err != nil {
		return nil, nil, err
	}
	switch bench {
	case "wc":
		buildWordCountSpark(ctx, in, o)
	case "grep":
		buildGrepSpark(ctx, in, o)
	case "sort":
		buildSortSpark(ctx, in, o)
	case "bayes":
		buildBayesSpark(ctx, in, o)
	case "cc":
		if err := buildCCSpark(ctx, in, o); err != nil {
			return nil, nil, err
		}
	case "rank":
		if err := buildRankSpark(ctx, in, o); err != nil {
			return nil, nil, err
		}
	default:
		return nil, nil, fmt.Errorf("workloads: unknown benchmark %q", bench)
	}
	threads, err := ctx.Run()
	if err != nil {
		return nil, nil, err
	}
	return threads, ctx.VM().Table, nil
}

// sumAggregator is the reduce-side merge of wordcount-style sums:
// random probes into the per-partition hash map.
func sumAggregator(instr float64, bytesPerKey uint64) exec.FuncSpec {
	return exec.FuncSpec{
		Class: "org.apache.spark.Aggregator", Method: "combineCombinersByKey",
		Kind: model.KindReduce, InstrPerRec: instr, BaseCPI: 0.65,
		Pattern: cpu.PatternRandom,
		// Zipf-skewed keys concentrate probes on the hot head of the
		// map, so the effective working set shrinks with skew.
		WS:   exec.WorkingSet{Kind: exec.WSDistinctKeys, BytesPerKey: bytesPerKey, SkewShrink: 2.0},
		Refs: 0.04,
	}
}

func buildWordCountSpark(ctx *spark.Context, in synth.InputStats, o Options) {
	lines := ctx.TextFile(in, o.Partitions)
	tokenize := exec.FuncSpec{
		Class: "io.bigdatabench.spark.WordCount$$anonfun$1", Method: "apply",
		Kind: model.KindMap, InstrPerRec: 90, BaseCPI: 0.55,
		Pattern: cpu.PatternSequential,
		WS:      exec.WorkingSet{Kind: exec.WSPartitionBytes},
		Refs:    0.3,
	}
	pair := exec.FuncSpec{
		Class: "io.bigdatabench.spark.WordCount$$anonfun$2", Method: "apply",
		Kind: model.KindMap, InstrPerRec: 55, BaseCPI: 0.55,
		Pattern:     cpu.PatternSequential,
		WS:          exec.WorkingSet{Kind: exec.WSRecord},
		Refs:        0.3,
		OutRecBytes: 16,
	}
	words := lines.FlatMap(tokenize)
	pairs := words.Map(pair)
	counts := pairs.ReduceByKey(sumAggregator(50, 56), o.Partitions)
	counts.SaveAsTextFile("hdfs://out/wc")
}

func buildGrepSpark(ctx *spark.Context, in synth.InputStats, o Options) {
	lines := ctx.TextFile(in, o.Partitions)
	match := exec.FuncSpec{
		Class: "io.bigdatabench.spark.Grep$$anonfun$1", Method: "apply",
		Kind: model.KindMap, InstrPerRec: 75, BaseCPI: 0.55,
		Pattern:     cpu.PatternSequential,
		WS:          exec.WorkingSet{Kind: exec.WSPartitionBytes},
		Refs:        0.3,
		Selectivity: 0.001,
	}
	lines.Filter(match).Count() // single stage, single phase
}

func buildSortSpark(ctx *spark.Context, in synth.InputStats, o Options) {
	records := ctx.TextFile(in, o.Partitions)
	parse := exec.FuncSpec{
		Class: "io.bigdatabench.spark.Sort$$anonfun$1", Method: "apply",
		Kind: model.KindMap, InstrPerRec: 45, BaseCPI: 0.55,
		Pattern: cpu.PatternSequential,
		WS:      exec.WorkingSet{Kind: exec.WSPartitionBytes},
		Refs:    0.3,
	}
	sorted := records.Map(parse).SortByKey(o.Partitions)
	sorted.SaveAsTextFile("hdfs://out/sort")
}

func buildBayesSpark(ctx *spark.Context, in synth.InputStats, o Options) {
	docs := ctx.TextFile(in, o.Partitions)
	featurize := exec.FuncSpec{
		Class: "io.bigdatabench.spark.NaiveBayes$$anonfun$train$1", Method: "apply",
		Kind: model.KindMap, InstrPerRec: 140, BaseCPI: 0.6,
		Pattern: cpu.PatternRandom,
		WS:      exec.WorkingSet{Kind: exec.WSFixed, Fixed: 3 << 20}, // model weights
		Refs:    0.04,
		// MLlib scores the cached feature matrix as its own stage.
		Materialize: true,
	}
	emit := exec.FuncSpec{
		Class: "io.bigdatabench.spark.NaiveBayes$$anonfun$train$2", Method: "apply",
		Kind: model.KindMap, InstrPerRec: 40, BaseCPI: 0.55,
		Pattern:     cpu.PatternSequential,
		WS:          exec.WorkingSet{Kind: exec.WSRecord},
		Refs:        0.3,
		OutRecBytes: 20,
	}
	features := docs.Map(featurize).Map(emit)
	modelRDD := features.ReduceByKey(sumAggregator(45, 48), o.Partitions)
	modelRDD.Collect()
}

func buildCCSpark(ctx *spark.Context, in synth.InputStats, o Options) error {
	// Graph stages use one partition per core (Spark's default
	// parallelism): tasks must span many sampling units for the GraphX
	// operator blocks to be visible as phases.
	g, err := graphx.Load(ctx, in, o.Cores)
	if err != nil {
		return err
	}
	graphx.ConnectedComponents(g, o.SparkIterations+2).Count()
	return nil
}

func buildRankSpark(ctx *spark.Context, in synth.InputStats, o Options) error {
	g, err := graphx.Load(ctx, in, o.Cores)
	if err != nil {
		return err
	}
	graphx.PageRank(g, o.SparkIterations).SaveAsTextFile("hdfs://out/rank")
	return nil
}

// ---------------------------------------------------------------------
// Hadoop implementations
// ---------------------------------------------------------------------

func buildHadoop(bench string, in synth.InputStats, o Options) ([]*cpu.Thread, *model.Table, error) {
	cfg := hadoop.DefaultConfig()
	cfg.Cores = o.Cores
	cfg.Seed = o.Seed
	cfg.ChunkInstr = o.ChunkInstr
	cfg.GC = o.GC
	d, err := hadoop.NewDriver(cfg)
	if err != nil {
		return nil, nil, err
	}
	var jobs []*hadoop.Job
	switch bench {
	case "wc":
		jobs = []*hadoop.Job{wordCountHadoop(in, o)}
	case "grep":
		jobs = []*hadoop.Job{grepHadoop(in, o)}
	case "sort":
		jobs = []*hadoop.Job{sortHadoop(in, o)}
	case "bayes":
		jobs = []*hadoop.Job{bayesHadoop(in, o)}
	case "cc":
		jobs = graphHadoop("cc", in, o, 42, 40)
	case "rank":
		jobs = graphHadoop("rank", in, o, 48, 45)
	default:
		return nil, nil, fmt.Errorf("workloads: unknown benchmark %q", bench)
	}
	threads, err := d.Run(jobs...)
	if err != nil {
		return nil, nil, err
	}
	return threads, d.VM().Table, nil
}

func splitBytesFor(in synth.InputStats, o Options) int64 {
	// Aim for ~4 map waves over the cores so that per-core merged
	// streams are long.
	waves := int64(4 * o.Cores)
	split := in.Bytes / waves
	if split < 8<<20 {
		split = 8 << 20
	}
	return split
}

func wordCountHadoop(in synth.InputStats, o Options) *hadoop.Job {
	sum := exec.FuncSpec{
		Class: "org.apache.hadoop.examples.WordCount$IntSumReducer", Method: "reduce",
		Kind: model.KindReduce, InstrPerRec: 45, BaseCPI: 0.65,
		Pattern: cpu.PatternRandom,
		WS:      exec.WorkingSet{Kind: exec.WSDistinctKeys, BytesPerKey: 48, SkewShrink: 2.0},
		Refs:    0.04,
	}
	return &hadoop.Job{
		Name: "wc", Input: in, SplitBytes: splitBytesFor(in, o),
		Mapper: exec.FuncSpec{
			Class: "org.apache.hadoop.examples.WordCount$TokenizerMapper", Method: "map",
			Kind: model.KindMap, InstrPerRec: 110, BaseCPI: 0.52,
			Pattern:     cpu.PatternSequential,
			WS:          exec.WorkingSet{Kind: exec.WSPartitionBytes},
			Refs:        0.3,
			OutRecBytes: 16,
		},
		Combiner:    &sum,
		Reducer:     sum,
		NumReducers: o.Cores,
	}
}

func grepHadoop(in synth.InputStats, o Options) *hadoop.Job {
	sum := exec.FuncSpec{
		Class: "org.apache.hadoop.mapreduce.lib.reduce.LongSumReducer", Method: "reduce",
		Kind: model.KindReduce, InstrPerRec: 35, BaseCPI: 0.62,
		Pattern: cpu.PatternRandom,
		WS:      exec.WorkingSet{Kind: exec.WSDistinctKeys, BytesPerKey: 48, SkewShrink: 2.0},
		Refs:    0.04,
	}
	return &hadoop.Job{
		Name: "grep", Input: in, SplitBytes: splitBytesFor(in, o),
		Mapper: exec.FuncSpec{
			Class: "org.apache.hadoop.mapreduce.lib.map.RegexMapper", Method: "map",
			Kind: model.KindMap, InstrPerRec: 130, BaseCPI: 0.53,
			Pattern:     cpu.PatternSequential,
			WS:          exec.WorkingSet{Kind: exec.WSPartitionBytes},
			Refs:        0.3,
			Selectivity: 0.001,
		},
		Combiner:    &sum,
		Reducer:     sum,
		NumReducers: 1,
	}
}

func sortHadoop(in synth.InputStats, o Options) *hadoop.Job {
	return &hadoop.Job{
		Name: "sort", Input: in, SplitBytes: splitBytesFor(in, o),
		Mapper: exec.FuncSpec{
			Class: "org.apache.hadoop.examples.Sort$IdentityMapper", Method: "map",
			Kind: model.KindMap, InstrPerRec: 25, BaseCPI: 0.55,
			Pattern: cpu.PatternSequential,
			WS:      exec.WorkingSet{Kind: exec.WSPartitionBytes},
			Refs:    0.3,
		},
		Reducer: exec.FuncSpec{
			Class: "org.apache.hadoop.examples.Sort$IdentityReducer", Method: "reduce",
			Kind: model.KindReduce, InstrPerRec: 22, BaseCPI: 0.6,
			Pattern: cpu.PatternSequential,
			WS:      exec.WorkingSet{Kind: exec.WSPartitionBytes},
			Refs:    0.3,
		},
		NumReducers: o.Cores,
	}
}

func bayesHadoop(in synth.InputStats, o Options) *hadoop.Job {
	sum := exec.FuncSpec{
		Class: "io.bigdatabench.hadoop.NaiveBayes$WeightSumReducer", Method: "reduce",
		Kind: model.KindReduce, InstrPerRec: 50, BaseCPI: 0.66,
		Pattern: cpu.PatternRandom,
		WS:      exec.WorkingSet{Kind: exec.WSDistinctKeys, BytesPerKey: 48, SkewShrink: 2.0},
		Refs:    0.04,
	}
	return &hadoop.Job{
		Name: "bayes", Input: in, SplitBytes: splitBytesFor(in, o),
		Mapper: exec.FuncSpec{
			Class: "io.bigdatabench.hadoop.NaiveBayes$FeatureMapper", Method: "map",
			Kind: model.KindMap, InstrPerRec: 160, BaseCPI: 0.6,
			Pattern:     cpu.PatternRandom,
			WS:          exec.WorkingSet{Kind: exec.WSFixed, Fixed: 3 << 20},
			Refs:        0.05,
			OutRecBytes: 20,
		},
		Combiner:    &sum,
		Reducer:     sum,
		NumReducers: o.Cores,
	}
}

// graphHadoop builds the iterative MapReduce implementation of cc/rank:
// one job per iteration, mapping over edges and reducing per vertex
// (the Pegasus formulation).
func graphHadoop(name string, in synth.InputStats, o Options, mapInstr, redInstr float64) []*hadoop.Job {
	var jobs []*hadoop.Job
	for i := 0; i < o.HadoopIterations; i++ {
		jobs = append(jobs, &hadoop.Job{
			Name: fmt.Sprintf("%s-iter%d", name, i), Input: in,
			SplitBytes: splitBytesFor(in, o),
			Mapper: exec.FuncSpec{
				Class: "io.bigdatabench.hadoop." + name + ".MessageMapper", Method: "map",
				Kind: model.KindMap, InstrPerRec: mapInstr, BaseCPI: 0.58,
				Pattern:     cpu.PatternSequential,
				WS:          exec.WorkingSet{Kind: exec.WSPartitionBytes},
				Refs:        0.3,
				OutRecBytes: 12,
			},
			Reducer: exec.FuncSpec{
				Class: "io.bigdatabench.hadoop." + name + ".VertexReducer", Method: "reduce",
				Kind: model.KindReduce, InstrPerRec: redInstr, BaseCPI: 0.64,
				Pattern: cpu.PatternRandom,
				WS: exec.WorkingSet{
					// Vertex state plus the per-key message list the
					// reducer walks.
					Kind: exec.WSDistinctKeys, BytesPerKey: 96, SkewShrink: 0.5,
				},
				Refs: 0.05,
			},
			NumReducers: o.Cores,
		})
	}
	return jobs
}
