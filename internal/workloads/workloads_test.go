package workloads

import (
	"testing"

	"simprof/internal/cpu"
	"simprof/internal/exec"
	"simprof/internal/profiler"
	"simprof/internal/synth"
)

// smallOpts keeps workload tests fast.
func smallOpts() Options {
	return Options{
		Cores: 4, Seed: 7, ChunkInstr: 1_000_000,
		TextBytes: 32 << 20, SortBytes: 48 << 20,
		GraphScale: 15, GraphEdgeFactor: 12,
		SparkIterations: 4, HadoopIterations: 2,
	}
}

func TestDefaultInputs(t *testing.T) {
	o := smallOpts()
	for _, bench := range Benchmarks() {
		in, err := DefaultInput(bench, o)
		if err != nil {
			t.Fatalf("%s: %v", bench, err)
		}
		if in.Records <= 0 || in.Bytes <= 0 || in.DistinctKeys <= 0 {
			t.Fatalf("%s: degenerate input %+v", bench, in)
		}
		if (bench == "cc" || bench == "rank") && in.Vertices == 0 {
			t.Fatalf("%s: graph input without vertices", bench)
		}
	}
	if _, err := DefaultInput("nope", o); err == nil {
		t.Fatal("unknown benchmark should fail")
	}
}

func TestBuildAllTwelveWorkloads(t *testing.T) {
	o := smallOpts()
	for _, fw := range Frameworks() {
		for _, bench := range Benchmarks() {
			in, err := DefaultInput(bench, o)
			if err != nil {
				t.Fatal(err)
			}
			threads, table, err := Build(bench, fw, in, o)
			if err != nil {
				t.Fatalf("%s_%s: %v", bench, fw, err)
			}
			if len(threads) == 0 || table == nil || table.Len() == 0 {
				t.Fatalf("%s_%s: empty build", bench, fw)
			}
			var instr uint64
			for _, th := range threads {
				instr += th.Instructions()
			}
			if instr < 100_000_000 {
				t.Fatalf("%s_%s: only %d instructions", bench, fw, instr)
			}
		}
	}
}

func TestBuildErrors(t *testing.T) {
	o := smallOpts()
	in, _ := DefaultInput("wc", o)
	if _, _, err := Build("nope", "spark", in, o); err == nil {
		t.Fatal("unknown benchmark should fail")
	}
	if _, _, err := Build("wc", "flink", in, o); err == nil {
		t.Fatal("unknown framework should fail")
	}
	if _, _, err := Build("cc", "spark", in, o); err == nil {
		t.Fatal("cc on non-graph input should fail")
	}
}

// runPipeline executes a workload through machine and profiler.
func runPipeline(t *testing.T, bench, fw string) int {
	t.Helper()
	o := smallOpts()
	in, err := DefaultInput(bench, o)
	if err != nil {
		t.Fatal(err)
	}
	threads, table, err := Build(bench, fw, in, o)
	if err != nil {
		t.Fatal(err)
	}
	mcfg := cpu.DefaultConfig()
	mcfg.Seed = o.Seed
	m, err := cpu.NewMachine(mcfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(threads)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := profiler.Collect(res, table, profiler.Config{
		UnitInstr: 10_000_000, SnapshotEvery: 1_000_000, MergePerCore: fw == "hadoop",
	})
	if err != nil {
		t.Fatal(err)
	}
	return len(tr.Units)
}

func TestPipelineProducesUnits(t *testing.T) {
	for _, c := range []struct {
		bench, fw string
		minUnits  int
	}{
		{"wc", "spark", 50},
		{"wc", "hadoop", 50},
		{"grep", "spark", 20},
		{"cc", "spark", 20},
		{"rank", "hadoop", 25},
	} {
		units := runPipeline(t, c.bench, c.fw)
		if units < c.minUnits {
			t.Errorf("%s_%s: %d units want ≥%d", c.bench, c.fw, units, c.minUnits)
		}
	}
}

func TestGrepSparkIsSingleStage(t *testing.T) {
	o := smallOpts()
	in, _ := DefaultInput("grep", o)
	threads, _, err := Build("grep", "spark", in, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, th := range threads {
		for _, seg := range th.Segments {
			if seg.StageID != 0 {
				t.Fatalf("grep_sp has stage %d; want single stage", seg.StageID)
			}
		}
	}
}

func TestGraphWorkloadsSensitiveToInput(t *testing.T) {
	// Different Table II inputs must change the instruction volume of
	// cc (frontier decay depends on skew).
	o := smallOpts()
	inputs := synth.TableIIStats(14, 3)
	var google, road synth.InputStats
	for _, in := range inputs {
		switch in.Name {
		case "google":
			google = in
		case "road":
			road = in
		}
	}
	total := func(in synth.InputStats) uint64 {
		threads, _, err := Build("cc", "spark", in, o)
		if err != nil {
			t.Fatal(err)
		}
		var n uint64
		for _, th := range threads {
			n += th.Instructions()
		}
		return n
	}
	g, r := total(google), total(road)
	// Road networks converge slowly → more active messages → more work
	// per vertex... but google has far more edges; normalize by edges.
	gPer := float64(g) / float64(google.Records)
	rPer := float64(r) / float64(road.Records)
	if rPer <= gPer {
		t.Fatalf("slow-converging road should do more work per edge: %v vs %v", rPer, gPer)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.WithDefaults()
	if o.Cores <= 0 || o.TextBytes <= 0 || o.GraphScale <= 0 || o.Partitions <= 0 {
		t.Fatalf("defaults not filled: %+v", o)
	}
}

func TestGCOptionPropagates(t *testing.T) {
	o := smallOpts()
	o.GC = exec.GCConfig{Enabled: true, YoungGenBytes: 16 << 20}
	for _, fw := range Frameworks() {
		in, _ := DefaultInput("wc", o)
		_, table, err := Build("wc", fw, in, o)
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := table.Lookup("sun.jvm.GCTaskThread", "run"); !ok {
			t.Fatalf("%s: GC frames absent despite Options.GC", fw)
		}
	}
}
