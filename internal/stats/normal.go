package stats

import (
	"fmt"
	"math"
)

// NormalCDF returns Φ(x), the standard normal cumulative distribution.
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalQuantile returns Φ⁻¹(p) for p in (0,1) using Acklam's rational
// approximation refined by one Halley step; absolute error is below 1e-9
// over the full domain. It panics outside (0,1).
func NormalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: NormalQuantile p=%v out of (0,1)", p))
	}
	// Coefficients for Acklam's algorithm.
	a := [...]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [...]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [...]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [...]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const pLow, pHigh = 0.02425, 1 - 0.02425
	var x float64
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= pHigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := NormalCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}

// ZForConfidence returns the two-sided z score for confidence level
// (1-α), e.g. 0.95 → 1.96, 0.997 → 3.0 (the "3 sigma" level used by the
// paper's Fig. 8). It panics for levels outside (0,1).
func ZForConfidence(level float64) float64 {
	if level <= 0 || level >= 1 {
		panic(fmt.Sprintf("stats: confidence level %v out of (0,1)", level))
	}
	return NormalQuantile(0.5 + level/2)
}

// Interval is a symmetric confidence interval around a point estimate.
type Interval struct {
	Mean   float64
	Margin float64 // z · SE, the margin of error (Eq. 3)
	Level  float64 // confidence level, e.g. 0.997
}

// Lo returns the lower bound of the interval.
func (ci Interval) Lo() float64 { return ci.Mean - ci.Margin }

// Hi returns the upper bound of the interval.
func (ci Interval) Hi() float64 { return ci.Mean + ci.Margin }

// Contains reports whether v lies inside the interval.
func (ci Interval) Contains(v float64) bool { return v >= ci.Lo() && v <= ci.Hi() }

// String renders the interval as "mean ± margin (level)".
func (ci Interval) String() string {
	return fmt.Sprintf("%.4f ± %.4f (%.1f%%)", ci.Mean, ci.Margin, ci.Level*100)
}

// ConfidenceInterval builds the interval mean ± z·se at the given
// confidence level (Eq. 2–3 of the paper).
func ConfidenceInterval(mean, se, level float64) Interval {
	return Interval{Mean: mean, Margin: ZForConfidence(level) * se, Level: level}
}
