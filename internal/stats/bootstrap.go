package stats

import "sort"

// Bootstrap computes a percentile-bootstrap confidence interval for the
// mean of xs: resample with replacement B times, take the empirical
// quantiles of the resampled means. It needs no normality assumption —
// a useful cross-check of the CLT-based intervals the paper uses
// (Eq. 2–3), especially for the small per-phase sample sizes optimal
// allocation produces.
func Bootstrap(xs []float64, level float64, rounds int, seed uint64) Interval {
	n := len(xs)
	mean := Mean(xs)
	if n < 2 || rounds < 2 {
		return Interval{Mean: mean, Level: level}
	}
	rng := NewRNG(seed)
	means := make([]float64, rounds)
	for r := 0; r < rounds; r++ {
		var s float64
		for i := 0; i < n; i++ {
			s += xs[rng.IntN(n)]
		}
		means[r] = s / float64(n)
	}
	sort.Float64s(means)
	alpha := (1 - level) / 2
	lo := means[quantileIndex(rounds, alpha)]
	hi := means[quantileIndex(rounds, 1-alpha)]
	// Represent as a symmetric-ish interval around the point estimate;
	// Margin is half the percentile width so Lo/Hi reproduce it.
	return Interval{Mean: (lo + hi) / 2, Margin: (hi - lo) / 2, Level: level}
}

func quantileIndex(n int, q float64) int {
	i := int(q * float64(n))
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

// BootstrapStratified bootstraps the stratified estimator: each stratum
// is resampled independently and the weighted means are combined, giving
// a distribution-free interval for SimProf's CPI estimate.
func BootstrapStratified(strata [][]float64, weights []float64, level float64, rounds int, seed uint64) Interval {
	if len(strata) != len(weights) {
		panic("stats: BootstrapStratified strata/weights mismatch")
	}
	rng := NewRNG(seed)
	var point float64
	for h, s := range strata {
		point += weights[h] * Mean(s)
	}
	if rounds < 2 {
		return Interval{Mean: point, Level: level}
	}
	means := make([]float64, rounds)
	for r := 0; r < rounds; r++ {
		var est float64
		for h, s := range strata {
			n := len(s)
			if n == 0 {
				continue
			}
			var sum float64
			for i := 0; i < n; i++ {
				sum += s[rng.IntN(n)]
			}
			est += weights[h] * sum / float64(n)
		}
		means[r] = est
	}
	sort.Float64s(means)
	alpha := (1 - level) / 2
	lo := means[quantileIndex(rounds, alpha)]
	hi := means[quantileIndex(rounds, 1-alpha)]
	return Interval{Mean: (lo + hi) / 2, Margin: (hi - lo) / 2, Level: level}
}
