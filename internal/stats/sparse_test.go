package stats

import (
	"math"
	"testing"

	"simprof/internal/matrix"
	"simprof/internal/parallel"
)

// sparseProblem builds a random CSR matrix with count-like entries (the
// shape of vectorized sampling units) plus its dense mirror.
func sparseProblem(seed uint64, n, d int) (*matrix.Sparse, [][]float64, []float64) {
	rng := NewRNG(seed)
	b := matrix.NewSparseBuilder(d, n, 0)
	dense := make([][]float64, n)
	target := make([]float64, n)
	for i := 0; i < n; i++ {
		row := make([]float64, d)
		var cols []int32
		var vals []float64
		for j := 0; j < d; j++ {
			if rng.Float64() < 0.15 { // ~85% zeros
				v := float64(1 + rng.IntN(20))
				row[j] = v
				cols = append(cols, int32(j))
				vals = append(vals, v)
			}
		}
		b.AppendRow(cols, vals)
		dense[i] = row
		target[i] = rng.NormFloat64() + row[0]*0.3 // feature 0 informative
	}
	return b.Build(), dense, target
}

func TestFRegressionSparseMatchesDense(t *testing.T) {
	eng := parallel.New(1)
	for _, seed := range []uint64{1, 7, 42} {
		sp, dense, target := sparseProblem(seed, 120, 40)
		rows := make([]int, len(dense))
		for i := range rows {
			rows[i] = i
		}
		want := FRegressionWith(eng, dense, target)
		got := FRegressionSparseWith(eng, sp, rows, target)
		if len(got) != len(want) {
			t.Fatalf("len %d want %d", len(got), len(want))
		}
		for j := range want {
			if math.IsInf(want[j], 1) {
				if !math.IsInf(got[j], 1) {
					t.Fatalf("seed %d col %d: got %v want +Inf", seed, j, got[j])
				}
				continue
			}
			diff := math.Abs(got[j] - want[j])
			if diff > 1e-9*(1+math.Abs(want[j])) {
				t.Fatalf("seed %d col %d: got %v want %v", seed, j, got[j], want[j])
			}
		}
	}
}

// TestFRegressionSparseRowSubset pins the subset semantics: scoring a
// row subset must match a dense scoring of just those rows.
func TestFRegressionSparseRowSubset(t *testing.T) {
	eng := parallel.New(1)
	sp, dense, target := sparseProblem(11, 90, 25)
	var rows []int
	var subDense [][]float64
	var subTarget []float64
	for i := 0; i < len(dense); i += 3 {
		rows = append(rows, i)
		subDense = append(subDense, dense[i])
		subTarget = append(subTarget, target[i])
	}
	want := FRegressionWith(eng, subDense, subTarget)
	got := FRegressionSparseWith(eng, sp, rows, subTarget)
	for j := range want {
		if math.Abs(got[j]-want[j]) > 1e-9*(1+math.Abs(want[j])) {
			t.Fatalf("col %d: got %v want %v", j, got[j], want[j])
		}
	}
}

// TestFRegressionSparseWorkerInvariant asserts bit-identical scores for
// every worker count (the scoring fan-out writes disjoint slots).
func TestFRegressionSparseWorkerInvariant(t *testing.T) {
	sp, dense, target := sparseProblem(23, 150, 60)
	rows := make([]int, len(dense))
	for i := range rows {
		rows[i] = i
	}
	base := FRegressionSparseWith(parallel.New(1), sp, rows, target)
	for _, w := range []int{2, 8} {
		got := FRegressionSparseWith(parallel.New(w), sp, rows, target)
		for j := range base {
			if base[j] != got[j] {
				t.Fatalf("workers=%d col %d: %v vs %v", w, j, got[j], base[j])
			}
		}
	}
}

func TestFRegressionSparseDegenerate(t *testing.T) {
	// Fewer than 3 observations → all-zero scores, no panic.
	b := matrix.NewSparseBuilder(3, 2, 0)
	b.AppendRow([]int32{0}, []float64{1})
	b.AppendRow([]int32{1}, []float64{2})
	got := FRegressionSparseWith(parallel.New(1), b.Build(), []int{0, 1}, []float64{1, 2})
	for j, s := range got {
		if s != 0 {
			t.Fatalf("col %d: %v, want 0", j, s)
		}
	}
}
