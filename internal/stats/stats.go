// Package stats provides the statistical machinery SimProf builds on:
// descriptive statistics (mean, variance, coefficient of variation),
// normal quantiles and confidence intervals, Pearson correlation and the
// univariate linear-regression feature score (f_regression) used for
// method selection, and seeded RNG constructors so that every experiment
// is reproducible.
package stats

import (
	"errors"
	"math"
	"sort"

	"simprof/internal/matrix"
	"simprof/internal/parallel"
)

// ErrEmpty is returned by estimators that need at least one observation.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance (divisor n-1).
// It returns 0 for samples with fewer than two observations.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// PopVariance returns the population variance (divisor n).
func PopVariance(xs []float64) float64 {
	n := len(xs)
	if n == 0 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CoV returns the coefficient of variation (sample stddev over mean).
// It returns 0 when the mean is 0.
func CoV(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / math.Abs(m)
}

// Summary holds the descriptive statistics of one sample.
type Summary struct {
	N      int
	Mean   float64
	Var    float64 // unbiased sample variance
	Std    float64
	CoV    float64
	Min    float64
	Max    float64
	Median float64
}

// Summarize computes a Summary of xs. A zero Summary is returned for an
// empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Mean: Mean(xs), Var: Variance(xs)}
	s.Std = math.Sqrt(s.Var)
	if s.Mean != 0 {
		s.CoV = s.Std / math.Abs(s.Mean)
	}
	s.Min, s.Max = xs[0], xs[0]
	for _, x := range xs {
		s.Min = math.Min(s.Min, x)
		s.Max = math.Max(s.Max, x)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	mid := len(sorted) / 2
	if len(sorted)%2 == 1 {
		s.Median = sorted[mid]
	} else {
		s.Median = (sorted[mid-1] + sorted[mid]) / 2
	}
	return s
}

// WeightedMean returns Σ w_i x_i / Σ w_i. Weights must be non-negative;
// it returns 0 when the total weight is 0.
func WeightedMean(xs, ws []float64) float64 {
	if len(xs) != len(ws) {
		panic("stats: WeightedMean length mismatch")
	}
	var sw, sx float64
	for i, x := range xs {
		sw += ws[i]
		sx += ws[i] * x
	}
	if sw == 0 {
		return 0
	}
	return sx / sw
}

// Pearson returns the Pearson correlation coefficient of (xs, ys).
// It returns 0 when either sample is constant.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Pearson length mismatch")
	}
	n := len(xs)
	if n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// FScore converts a Pearson correlation r over n observations into the
// univariate linear-regression F statistic used by f_regression:
//
//	F = r²/(1-r²) · (n-2)
//
// A perfectly correlated feature gets +Inf.
func FScore(r float64, n int) float64 {
	if n < 3 {
		return 0
	}
	r2 := r * r
	if r2 >= 1 {
		return math.Inf(1)
	}
	return r2 / (1 - r2) * float64(n-2)
}

// FRegression scores each feature column against the target with the
// univariate linear-regression test. features is row-major: features[i]
// is observation i with d dimensions; target has one entry per row. The
// returned slice has one F score per feature dimension. Columns are
// independent, so the scoring fans out over the shared worker pool;
// each column's score lands in its own slot, keeping the result
// identical for any worker count.
func FRegression(features [][]float64, target []float64) []float64 {
	return FRegressionWith(parallel.Default(), features, target)
}

// featureChunk is the fixed per-chunk column count of FRegression.
const featureChunk = 32

// FRegressionWith is FRegression on a caller-supplied engine.
func FRegressionWith(eng *parallel.Engine, features [][]float64, target []float64) []float64 {
	n := len(features)
	if n == 0 {
		return nil
	}
	if n != len(target) {
		panic("stats: FRegression rows/target mismatch")
	}
	d := len(features[0])
	scores := make([]float64, d)
	eng.ForEachChunk(d, featureChunk, func(_, lo, hi int) {
		col := make([]float64, n) // per-chunk scratch
		for j := lo; j < hi; j++ {
			for i := 0; i < n; i++ {
				col[i] = features[i][j]
			}
			scores[j] = FScore(Pearson(col, target), n)
		}
	})
	return scores
}

// FRegressionSparseWith scores each feature column of a CSR matrix
// against the target without ever materializing the dense feature
// space. X holds one row per observation over the full feature space;
// rows selects the observations to score (e.g. the fully observed
// sampling units) and target is aligned with rows. The per-column sums
// visit only stored nonzeros — O(nnz) instead of O(n·d) — and each
// column's zero entries contribute their closed form: a zero deviates
// from the column mean by exactly −mx, so the n−nnz zero terms add
// (n−nnz)·mx² to Σ(x−mx)² and −mx·Σ_{zeros}(y−my) to Σ(x−mx)(y−my).
// The column sum Σx (and so the mean) is bit-identical to the dense
// scan's: skipped zeros add exactly nothing to a non-negative
// accumulator. The centered second-order sums accumulate in a different
// order than the dense row scan, so scores agree with FRegressionWith
// to float rounding, not bit-for-bit; columns with identical content
// still get identical scores, keeping TopK ties deterministic.
func FRegressionSparseWith(eng *parallel.Engine, X *matrix.Sparse, rows []int, target []float64) []float64 {
	n := len(rows)
	if n != len(target) {
		panic("stats: FRegression rows/target mismatch")
	}
	d := X.Cols()
	scores := make([]float64, d)
	if n < 3 {
		return scores // FScore is 0 below 3 observations
	}
	my := Mean(target)
	var syy, sydev float64
	ydev := make([]float64, n)
	for i, y := range target {
		dy := y - my
		ydev[i] = dy
		syy += dy * dy
		sydev += dy
	}
	// Pass 1: column sums and nonzero counts, rows in the given order
	// (matching the dense column scan's row order over its nonzeros).
	sx := make([]float64, d)
	nnz := make([]int32, d)
	for _, r := range rows {
		cs, vs := X.Row(r)
		for k, c := range cs {
			sx[c] += vs[k]
			nnz[c]++
		}
	}
	mx := make([]float64, d)
	for j := range mx {
		mx[j] = sx[j] / float64(n)
	}
	// Pass 2: centered second-order sums over the nonzeros.
	sxx := make([]float64, d)
	sxy := make([]float64, d)
	synz := make([]float64, d) // Σ ydev over rows where the column is nonzero
	for i, r := range rows {
		cs, vs := X.Row(r)
		dy := ydev[i]
		for k, c := range cs {
			dx := vs[k] - mx[c]
			sxx[c] += dx * dx
			sxy[c] += dx * dy
			synz[c] += dy
		}
	}
	// Fold the zero entries' closed form and score; columns are
	// independent, so this fans out like FRegressionWith.
	eng.ForEachChunk(d, featureChunk, func(_, lo, hi int) {
		for j := lo; j < hi; j++ {
			zeros := float64(n - int(nnz[j]))
			vxx := sxx[j] + zeros*mx[j]*mx[j]
			vxy := sxy[j] - mx[j]*(sydev-synz[j])
			if vxx == 0 || syy == 0 {
				scores[j] = 0 // constant column or constant target
				continue
			}
			scores[j] = FScore(vxy/math.Sqrt(vxx*syy), n)
		}
	})
	return scores
}

// TopK returns the indices of the k largest scores, in descending score
// order (ties broken by lower index). NaN scores rank last. If k exceeds
// the number of scores, all indices are returned.
func TopK(scores []float64, k int) []int {
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		sa, sb := scores[idx[a]], scores[idx[b]]
		if math.IsNaN(sa) {
			return false
		}
		if math.IsNaN(sb) {
			return true
		}
		return sa > sb
	})
	if k < len(idx) {
		idx = idx[:k]
	}
	return idx
}

// RelErr returns |got-want|/|want|, or 0 when both are zero. It is the
// error metric used throughout the evaluation (predicted vs oracle CPI).
func RelErr(got, want float64) float64 {
	if want == 0 {
		if got == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(got-want) / math.Abs(want)
}
