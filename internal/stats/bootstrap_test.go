package stats

import (
	"math"
	"testing"
)

func TestBootstrapCoversTrueMean(t *testing.T) {
	rng := NewRNG(3)
	misses := 0
	const reps = 40
	for r := 0; r < reps; r++ {
		xs := make([]float64, 60)
		for i := range xs {
			xs[i] = 2 + 0.4*rng.NormFloat64()
		}
		ci := Bootstrap(xs, 0.95, 600, uint64(r))
		if !ci.Contains(2) {
			misses++
		}
	}
	// 95% interval should miss ~2 of 40; allow slack.
	if misses > 7 {
		t.Fatalf("bootstrap CI missed true mean %d/%d times", misses, reps)
	}
}

func TestBootstrapMatchesNormalTheoryOnGaussian(t *testing.T) {
	rng := NewRNG(5)
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = 10 + rng.NormFloat64()
	}
	boot := Bootstrap(xs, 0.95, 2000, 9)
	se := StdDev(xs) / math.Sqrt(float64(len(xs)))
	norm := ConfidenceInterval(Mean(xs), se, 0.95)
	if math.Abs(boot.Margin-norm.Margin) > 0.4*norm.Margin {
		t.Fatalf("bootstrap margin %v far from normal-theory %v", boot.Margin, norm.Margin)
	}
}

func TestBootstrapDegenerate(t *testing.T) {
	ci := Bootstrap([]float64{5}, 0.95, 100, 1)
	if ci.Mean != 5 || ci.Margin != 0 {
		t.Fatalf("single sample CI %v", ci)
	}
	ci = Bootstrap(nil, 0.95, 100, 1)
	if ci.Margin != 0 {
		t.Fatal("empty sample should have zero margin")
	}
}

func TestBootstrapStratified(t *testing.T) {
	rng := NewRNG(7)
	strata := [][]float64{make([]float64, 40), make([]float64, 40)}
	for i := range strata[0] {
		strata[0][i] = 1 + 0.05*rng.NormFloat64()
		strata[1][i] = 3 + 0.2*rng.NormFloat64()
	}
	weights := []float64{0.7, 0.3}
	ci := BootstrapStratified(strata, weights, 0.95, 1000, 11)
	want := 0.7*1 + 0.3*3
	if math.Abs(ci.Mean-want) > 0.1 {
		t.Fatalf("stratified bootstrap mean %v want ≈%v", ci.Mean, want)
	}
	if ci.Margin <= 0 || ci.Margin > 0.2 {
		t.Fatalf("margin %v implausible", ci.Margin)
	}
	// Empty stratum tolerated.
	ci2 := BootstrapStratified([][]float64{{1, 2}, {}}, []float64{1, 0}, 0.95, 200, 3)
	if math.IsNaN(ci2.Mean) {
		t.Fatal("NaN with empty stratum")
	}
}
