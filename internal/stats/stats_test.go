package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeanVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("Mean=%v want 5", got)
	}
	if got := PopVariance(xs); got != 4 {
		t.Fatalf("PopVariance=%v want 4", got)
	}
	if got := Variance(xs); !almost(got, 32.0/7.0, 1e-12) {
		t.Fatalf("Variance=%v want %v", got, 32.0/7.0)
	}
	if got := StdDev(xs); !almost(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Fatalf("StdDev=%v", got)
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || CoV(nil) != 0 {
		t.Fatal("empty-sample estimators should be 0")
	}
	if Variance([]float64{3}) != 0 {
		t.Fatal("single observation variance should be 0")
	}
	if CoV([]float64{0, 0, 0}) != 0 {
		t.Fatal("zero-mean CoV should be 0")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 || s.Median != 2.5 {
		t.Fatalf("Summarize=%+v", s)
	}
	odd := Summarize([]float64{5, 1, 3})
	if odd.Median != 3 {
		t.Fatalf("odd median=%v want 3", odd.Median)
	}
	if z := Summarize(nil); z.N != 0 {
		t.Fatalf("empty Summarize=%+v", z)
	}
}

func TestWeightedMean(t *testing.T) {
	if got := WeightedMean([]float64{1, 10}, []float64{3, 1}); !almost(got, 13.0/4.0, 1e-12) {
		t.Fatalf("WeightedMean=%v", got)
	}
	if WeightedMean(nil, nil) != 0 {
		t.Fatal("empty WeightedMean should be 0")
	}
}

func TestPearsonAndFScore(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if r := Pearson(xs, ys); !almost(r, 1, 1e-12) {
		t.Fatalf("perfect correlation r=%v", r)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if r := Pearson(xs, neg); !almost(r, -1, 1e-12) {
		t.Fatalf("perfect anti-correlation r=%v", r)
	}
	if r := Pearson(xs, []float64{7, 7, 7, 7, 7}); r != 0 {
		t.Fatalf("constant target r=%v want 0", r)
	}
	if f := FScore(1, 10); !math.IsInf(f, 1) {
		t.Fatalf("FScore(r=1) = %v want +Inf", f)
	}
	if f := FScore(0, 10); f != 0 {
		t.Fatalf("FScore(r=0) = %v want 0", f)
	}
	// F = r²/(1-r²)(n-2): r=0.5, n=10 → 0.25/0.75*8 = 8/3.
	if f := FScore(0.5, 10); !almost(f, 8.0/3.0, 1e-12) {
		t.Fatalf("FScore=%v want %v", f, 8.0/3.0)
	}
}

func TestFRegressionRanksInformativeFeature(t *testing.T) {
	// Feature 0 = noise-free linear signal, feature 1 = constant,
	// feature 2 = weakly related.
	target := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	rows := make([][]float64, len(target))
	rng := NewRNG(7)
	for i := range rows {
		rows[i] = []float64{2 * target[i], 5, target[i] + 4*rng.Float64()}
	}
	scores := FRegression(rows, target)
	if len(scores) != 3 {
		t.Fatalf("len(scores)=%d", len(scores))
	}
	top := TopK(scores, 2)
	if top[0] != 0 {
		t.Fatalf("TopK first=%d want 0 (scores=%v)", top[0], scores)
	}
	if scores[1] != 0 {
		t.Fatalf("constant feature score=%v want 0", scores[1])
	}
}

func TestTopK(t *testing.T) {
	scores := []float64{1, math.NaN(), 5, 5, 2}
	got := TopK(scores, 3)
	if len(got) != 3 || got[0] != 2 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("TopK=%v", got)
	}
	if got := TopK(scores, 99); len(got) != 5 {
		t.Fatalf("TopK overflow len=%d", len(got))
	}
	if got[len(got)-1] == 1 {
		t.Fatal("NaN should rank last") // index 1 is the NaN
	}
}

func TestRelErr(t *testing.T) {
	if RelErr(1.1, 1.0) != 0.10000000000000009 && !almost(RelErr(1.1, 1.0), 0.1, 1e-12) {
		t.Fatalf("RelErr=%v", RelErr(1.1, 1.0))
	}
	if RelErr(0, 0) != 0 {
		t.Fatal("RelErr(0,0) should be 0")
	}
	if !math.IsInf(RelErr(1, 0), 1) {
		t.Fatal("RelErr(x,0) should be +Inf")
	}
}

func TestNormalQuantileKnownValues(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959963984540054},
		{0.9985, 2.967737925342168},
		{0.025, -1.959963984540054},
		{0.0001, -3.719016485455709},
	}
	for _, c := range cases {
		if got := NormalQuantile(c.p); !almost(got, c.want, 1e-6) {
			t.Errorf("NormalQuantile(%v)=%v want %v", c.p, got, c.want)
		}
	}
}

func TestNormalQuantileInvertsCDF(t *testing.T) {
	f := func(u float64) bool {
		p := math.Mod(math.Abs(u), 0.98) + 0.01 // p in [0.01, 0.99]
		x := NormalQuantile(p)
		return almost(NormalCDF(x), p, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestZForConfidence(t *testing.T) {
	if z := ZForConfidence(0.95); !almost(z, 1.96, 1e-3) {
		t.Fatalf("z(0.95)=%v", z)
	}
	if z := ZForConfidence(0.997); !almost(z, 2.9677, 1e-3) {
		t.Fatalf("z(0.997)=%v", z)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("ZForConfidence(1.5) should panic")
		}
	}()
	ZForConfidence(1.5)
}

func TestConfidenceInterval(t *testing.T) {
	ci := ConfidenceInterval(10, 0.5, 0.95)
	if !almost(ci.Margin, 1.96*0.5, 1e-3) {
		t.Fatalf("margin=%v", ci.Margin)
	}
	if !ci.Contains(10) || !ci.Contains(ci.Lo()) || ci.Contains(ci.Hi()+0.01) {
		t.Fatal("Contains misbehaves")
	}
	if ci.String() == "" {
		t.Fatal("empty String")
	}
}
