package stats

import (
	"math"
	"math/rand/v2"
)

// NewRNG returns a deterministic PCG-backed generator for the given seed.
// Every stochastic component of the simulator owns one of these so whole
// experiments replay bit-for-bit from a single top-level seed.
func NewRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// SplitSeed derives a child seed from a parent seed and a stream label,
// using a SplitMix64 finalizer so sibling components are decorrelated.
func SplitSeed(seed uint64, stream uint64) uint64 {
	z := seed + 0x9e3779b97f4a7c15*(stream+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// LogNormal draws from a log-normal distribution with the given mean and
// coefficient of variation of the *resulting* distribution (not of the
// underlying normal). A cov of 0 returns mean exactly. This is the noise
// shape used by the CPI model: strictly positive with occasional
// right-tail excursions, like real machine CPI jitter.
func LogNormal(r *rand.Rand, mean, cov float64) float64 {
	if mean <= 0 || cov <= 0 {
		return mean
	}
	sigma2 := math.Log(1 + cov*cov)
	mu := math.Log(mean) - sigma2/2
	return math.Exp(mu + math.Sqrt(sigma2)*r.NormFloat64())
}

// SampleWithoutReplacement returns k distinct indices drawn uniformly
// from [0,n) using Floyd's algorithm; the result is in random order.
// If k >= n all indices are returned (shuffled).
func SampleWithoutReplacement(r *rand.Rand, n, k int) []int {
	if k >= n {
		out := r.Perm(n)
		return out
	}
	chosen := make(map[int]struct{}, k)
	out := make([]int, 0, k)
	for j := n - k; j < n; j++ {
		t := r.IntN(j + 1)
		if _, dup := chosen[t]; dup {
			t = j
		}
		chosen[t] = struct{}{}
		out = append(out, t)
	}
	r.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// Zipf draws ranks in [0, n) with probability ∝ 1/(rank+1)^s. It wraps
// math/rand/v2's Zipf with the parameterization used by the text
// synthesizer (s>1 handled natively, s<=1 via a bounded rejection walk).
type Zipf struct {
	n   int
	s   float64
	r   *rand.Rand
	cum []float64 // cumulative weights, lazily built for small n
}

// NewZipf builds a Zipf sampler over n ranks with exponent s (>0).
func NewZipf(r *rand.Rand, n int, s float64) *Zipf {
	z := &Zipf{n: n, s: s, r: r}
	// For realistic vocabulary sizes an explicit CDF is fine and exact.
	z.cum = make([]float64, n)
	var total float64
	for i := 0; i < n; i++ {
		total += math.Pow(float64(i+1), -s)
		z.cum[i] = total
	}
	for i := range z.cum {
		z.cum[i] /= total
	}
	return z
}

// Next draws one rank in [0, n).
func (z *Zipf) Next() int {
	u := z.r.Float64()
	lo, hi := 0, z.n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
