package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestSplitSeedDecorrelates(t *testing.T) {
	seen := map[uint64]bool{}
	for s := uint64(0); s < 1000; s++ {
		v := SplitSeed(7, s)
		if seen[v] {
			t.Fatalf("SplitSeed collision at stream %d", s)
		}
		seen[v] = true
	}
	if SplitSeed(7, 0) == SplitSeed(8, 0) {
		t.Fatal("different parents, same child")
	}
}

func TestLogNormalMoments(t *testing.T) {
	rng := NewRNG(1)
	const n = 200000
	mean, cov := 1.5, 0.3
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = LogNormal(rng, mean, cov)
		if xs[i] <= 0 {
			t.Fatal("LogNormal produced non-positive value")
		}
	}
	s := Summarize(xs)
	if math.Abs(s.Mean-mean) > 0.02 {
		t.Fatalf("LogNormal mean=%v want≈%v", s.Mean, mean)
	}
	if math.Abs(s.CoV-cov) > 0.02 {
		t.Fatalf("LogNormal cov=%v want≈%v", s.CoV, cov)
	}
	if LogNormal(rng, 2.0, 0) != 2.0 {
		t.Fatal("cov=0 should return mean exactly")
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	rng := NewRNG(9)
	got := SampleWithoutReplacement(rng, 100, 20)
	if len(got) != 20 {
		t.Fatalf("len=%d want 20", len(got))
	}
	seen := map[int]bool{}
	for _, i := range got {
		if i < 0 || i >= 100 {
			t.Fatalf("index %d out of range", i)
		}
		if seen[i] {
			t.Fatalf("duplicate index %d", i)
		}
		seen[i] = true
	}
	all := SampleWithoutReplacement(rng, 5, 10)
	if len(all) != 5 {
		t.Fatalf("k>n should return n indices, got %d", len(all))
	}
}

func TestSampleWithoutReplacementProperty(t *testing.T) {
	rng := NewRNG(11)
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw%50) + 1
		k := int(kRaw % 60)
		got := SampleWithoutReplacement(rng, n, k)
		want := k
		if k > n {
			want = n
		}
		if len(got) != want {
			return false
		}
		seen := map[int]bool{}
		for _, i := range got {
			if i < 0 || i >= n || seen[i] {
				return false
			}
			seen[i] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSkew(t *testing.T) {
	rng := NewRNG(5)
	z := NewZipf(rng, 1000, 1.1)
	counts := make([]int, 1000)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[10] || counts[10] <= counts[500] {
		t.Fatalf("Zipf not monotone: c0=%d c10=%d c500=%d", counts[0], counts[10], counts[500])
	}
	// Rank 0 should dominate: with s=1.1 over 1000 ranks it holds >10%.
	if float64(counts[0])/n < 0.08 {
		t.Fatalf("rank-0 share %v too small for s=1.1", float64(counts[0])/n)
	}
}
