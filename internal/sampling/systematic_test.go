package sampling

import (
	"math"
	"testing"

	"simprof/internal/trace"
)

func TestSystematicStride(t *testing.T) {
	tr := mixedTrace(100, 21)
	s, err := Systematic(tr, 20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() == 0 || s.Size() > 20 {
		t.Fatalf("size=%d", s.Size())
	}
	// Selected ids are equally spaced.
	stride := s.UnitIDs[1] - s.UnitIDs[0]
	for i := 1; i < len(s.UnitIDs); i++ {
		if s.UnitIDs[i]-s.UnitIDs[i-1] != stride {
			t.Fatalf("uneven stride: %v", s.UnitIDs)
		}
	}
	if s.Err(tr) > 0.6 {
		t.Fatalf("error %v implausible", s.Err(tr))
	}
	if s.SE <= 0 {
		t.Fatal("SE missing")
	}
}

func TestSystematicCoversStages(t *testing.T) {
	// Unlike SECOND, a systematic sample spans the whole execution: the
	// first and last selected units are near the trace's ends.
	tr := mixedTrace(200, 22)
	s, _ := Systematic(tr, 25, 5)
	if s.UnitIDs[0] >= 50 {
		t.Fatalf("first point %d too late", s.UnitIDs[0])
	}
	if s.UnitIDs[len(s.UnitIDs)-1] < len(tr.Units)-60 {
		t.Fatalf("last point %d too early", s.UnitIDs[len(s.UnitIDs)-1])
	}
}

func TestSystematicErrors(t *testing.T) {
	tr := mixedTrace(10, 23)
	if _, err := Systematic(tr, 0, 1); err == nil {
		t.Fatal("n=0 should fail")
	}
	if _, err := Systematic(&trace.Trace{}, 5, 1); err == nil {
		t.Fatal("empty trace should fail")
	}
	// n ≥ N clamps.
	s, err := Systematic(tr, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() > len(tr.Units) {
		t.Fatal("oversampled")
	}
}

func TestSimProfSystematicTradeoff(t *testing.T) {
	tr := mixedTrace(150, 24)
	ph := formed(t, tr)
	full, err := SimProfSystematic(ph, CombinedConfig{Points: 20, SubUnitFraction: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	quarter, err := SimProfSystematic(ph, CombinedConfig{Points: 20, SubUnitFraction: 0.25, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if full.DetailInstructions != full.FullInstructions {
		t.Fatal("fraction 1 should keep the full budget")
	}
	if quarter.DetailInstructions != full.FullInstructions/4 {
		t.Fatalf("budget=%d want quarter of %d", quarter.DetailInstructions, full.FullInstructions)
	}
	if math.Abs(quarter.ExtraSEFactor-2) > 1e-9 {
		t.Fatalf("SE factor=%v want 2", quarter.ExtraSEFactor)
	}
	if quarter.SE <= full.SE {
		t.Fatal("cheaper detail budget must widen the error bound")
	}
	// The point selection itself is the same stratified sample.
	if len(quarter.UnitIDs) != len(full.UnitIDs) {
		t.Fatal("point sets differ")
	}
	if _, err := SimProfSystematic(ph, CombinedConfig{Points: 20, SubUnitFraction: 0}); err == nil {
		t.Fatal("fraction 0 should fail")
	}
}

func TestEstimateOnTraceTracksTarget(t *testing.T) {
	// Profiled machine: mixedTrace(seed A). "Design": same structure
	// with all CPIs scaled 1.5× (unit ids align by construction).
	tr := mixedTrace(150, 30)
	ph := formed(t, tr)
	sp, err := SimProf(ph, 25, 9)
	if err != nil {
		t.Fatal(err)
	}
	target := mixedTrace(150, 30)
	for i := range target.Units {
		target.Units[i].Counters.Cycles = target.Units[i].Counters.Cycles * 3 / 2
	}
	est, err := EstimateOnTrace(ph, sp, target)
	if err != nil {
		t.Fatal(err)
	}
	if est.Err(target) > 0.12 {
		t.Fatalf("design estimate error %v too high", est.Err(target))
	}
	// Mismatched builds are rejected.
	short := mixedTrace(10, 31)
	if _, err := EstimateOnTrace(ph, sp, short); err == nil {
		t.Fatal("mismatched unit counts should fail")
	}
}
