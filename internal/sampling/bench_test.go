package sampling

import (
	"testing"

	"simprof/internal/phase"
)

func benchPhases(b *testing.B) (*phase.Phases, int) {
	b.Helper()
	tr := mixedTrace(500, 1)
	ph, err := phase.Form(tr, phase.Options{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return ph, len(tr.Units)
}

func BenchmarkSimProfSelection(b *testing.B) {
	ph, _ := benchPhases(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimProf(ph, 20, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSRSSelection(b *testing.B) {
	ph, _ := benchPhases(b)
	tr := ph.Trace
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SRS(tr, 20, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRequiredSampleSize(b *testing.B) {
	ph, _ := benchPhases(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RequiredSampleSize(ph, 0.02, 0.997); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_StratifiedVsSRS reports the mean relative error of
// SimProf and SRS at n=20 over many draws — the ablation behind the
// paper's headline claim, expressed as custom benchmark metrics.
func BenchmarkAblation_StratifiedVsSRS(b *testing.B) {
	ph, _ := benchPhases(b)
	tr := ph.Trace
	var spErr, srsErr float64
	draws := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp, err := SimProf(ph, 20, uint64(i))
		if err != nil {
			b.Fatal(err)
		}
		srs, err := SRS(tr, 20, uint64(i)+7777)
		if err != nil {
			b.Fatal(err)
		}
		spErr += sp.Err(tr)
		srsErr += srs.Err(tr)
		draws++
	}
	b.ReportMetric(100*spErr/float64(draws), "simprof-err-%")
	b.ReportMetric(100*srsErr/float64(draws), "srs-err-%")
}
