package sampling

import (
	"fmt"

	"simprof/internal/phase"
	"simprof/internal/trace"
)

// EstimateOnTrace re-uses a stratified sample chosen on the *profiled*
// machine to estimate the mean CPI of the same workload on a different
// target (a candidate design): only the selected units' CPIs are read
// from the target trace — exactly what "simulate only the simulation
// points on the new design" means. This works because sampling-unit
// boundaries are instruction counts, which do not depend on the
// machine's timing, so unit IDs align between the profiling run and any
// detailed-simulation run of the same workload build.
//
// (For Hadoop traces the per-core merge order can differ between
// machines with very different timing; the design-exploration workflow
// is therefore validated on Spark workloads, whose executor threads are
// fixed.)
func EstimateOnTrace(ph *phase.Phases, sp Stratified, target *trace.Trace) (Sample, error) {
	if len(target.Units) != len(ph.Trace.Units) {
		return Sample{}, fmt.Errorf(
			"sampling: target trace has %d units, profiling trace has %d — not the same workload build",
			len(target.Units), len(ph.Trace.Units))
	}
	// Unit ids are dense on every validated trace, making the id→index
	// map the identity; the map is only built for hand-assembled traces
	// that renumbered units.
	dense := true
	for i, u := range ph.Trace.Units {
		if u.ID != i {
			dense = false
			break
		}
	}
	var byID map[int]int
	if !dense {
		byID = make(map[int]int, len(ph.Trace.Units))
		for i, u := range ph.Trace.Units {
			byID[u.ID] = i
		}
	}
	// Per-phase means of the selected points, evaluated on the target.
	sums := make([]float64, ph.K)
	counts := make([]int, ph.K)
	for _, id := range sp.UnitIDs {
		var i int
		if dense {
			if id < 0 || id >= len(ph.Trace.Units) {
				return Sample{}, fmt.Errorf("sampling: point %d not in profiling trace", id)
			}
			i = id
		} else {
			var ok bool
			i, ok = byID[id]
			if !ok {
				return Sample{}, fmt.Errorf("sampling: point %d not in profiling trace", id)
			}
		}
		h := ph.Assign[i]
		sums[h] += target.Units[i].CPI()
		counts[h]++
	}
	out := Sample{Method: "SimProf(design)", UnitIDs: sp.UnitIDs}
	for h := 0; h < ph.K; h++ {
		if counts[h] == 0 {
			continue
		}
		out.EstCPI += sp.Weights[h] * sums[h] / float64(counts[h])
	}
	return out, nil
}
