package sampling

import (
	"math"
	"testing"
	"testing/quick"

	"simprof/internal/model"
	"simprof/internal/phase"
	"simprof/internal/stats"
	"simprof/internal/trace"
)

// mixedTrace builds a trace with three behaviours of configurable CPI
// spread: low-variance map units, high-variance sort units and mid IO.
func mixedTrace(n int, seed uint64) *trace.Trace {
	tbl := model.NewTable()
	root := tbl.Intern("T", "run", model.KindFramework)
	mMap := tbl.Intern("W", "map", model.KindMap)
	mSort := tbl.Intern("Q", "sort", model.KindSort)
	mIO := tbl.Intern("H", "write", model.KindIO)
	rng := stats.NewRNG(seed)
	tr := &trace.Trace{Benchmark: "mix", Framework: "spark", Methods: tbl.Methods()}
	var cycle uint64
	add := func(m model.MethodID, cpi float64) {
		u := trace.Unit{ID: len(tr.Units), StartCycle: cycle}
		for s := 0; s < 10; s++ {
			u.Snapshots = append(u.Snapshots, model.Stack{root, m})
		}
		u.Counters = trace.Counters{Instructions: 1000, Cycles: uint64(1000 * cpi)}
		cycle += u.Counters.Cycles
		tr.Units = append(tr.Units, u)
	}
	for i := 0; i < n; i++ {
		add(mMap, 0.9+0.05*rng.Float64())
		add(mSort, 2.0+2.0*rng.Float64()) // heterogeneous
		if i%4 == 0 {
			add(mIO, 1.5+0.4*rng.Float64())
		}
	}
	return tr
}

func formed(t *testing.T, tr *trace.Trace) *phase.Phases {
	t.Helper()
	ph, err := phase.Form(tr, phase.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return ph
}

func TestNeymanAllocationBasics(t *testing.T) {
	alloc, err := NeymanAllocation([]int{100, 100}, []float64{1, 3}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if alloc[0]+alloc[1] != 20 {
		t.Fatalf("alloc sum=%d", alloc[0]+alloc[1])
	}
	if alloc[1] <= alloc[0] {
		t.Fatalf("higher-σ stratum got fewer points: %v", alloc)
	}
	// σ ratio 3:1 with equal N → roughly 5:15.
	if alloc[1] < 12 {
		t.Fatalf("allocation not ∝ Nσ: %v", alloc)
	}
}

func TestNeymanAllocationGuarantees(t *testing.T) {
	// Every non-empty stratum gets ≥1; capacity respected; zero-σ
	// strata still covered.
	alloc, err := NeymanAllocation([]int{5, 1000, 3, 0}, []float64{0, 2, 0.1, 0}, 30)
	if err != nil {
		t.Fatal(err)
	}
	if alloc[0] < 1 || alloc[2] < 1 {
		t.Fatalf("non-empty strata unallocated: %v", alloc)
	}
	if alloc[3] != 0 {
		t.Fatalf("empty stratum allocated: %v", alloc)
	}
	total := 0
	for h, a := range alloc {
		if a > []int{5, 1000, 3, 0}[h] {
			t.Fatalf("over-allocated stratum %d: %v", h, alloc)
		}
		total += a
	}
	if total != 30 {
		t.Fatalf("total=%d", total)
	}
}

func TestNeymanAllocationProperty(t *testing.T) {
	f := func(seed uint64, nRaw uint16) bool {
		rng := stats.NewRNG(seed)
		k := 1 + rng.IntN(8)
		Nh := make([]int, k)
		sigma := make([]float64, k)
		total := 0
		for h := range Nh {
			Nh[h] = rng.IntN(200)
			sigma[h] = rng.Float64() * 3
			total += Nh[h]
		}
		n := int(nRaw % 500)
		alloc, err := NeymanAllocation(Nh, sigma, n)
		if err != nil {
			return false
		}
		sum := 0
		for h, a := range alloc {
			if a < 0 || a > Nh[h] {
				return false
			}
			sum += a
		}
		want := n
		if want > total {
			want = total
		}
		return sum == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestNeymanAllocationErrors(t *testing.T) {
	if _, err := NeymanAllocation(nil, nil, 5); err == nil {
		t.Fatal("no strata should fail")
	}
	if _, err := NeymanAllocation([]int{1}, []float64{1, 2}, 5); err == nil {
		t.Fatal("length mismatch should fail")
	}
	if _, err := NeymanAllocation([]int{-1}, []float64{1}, 5); err == nil {
		t.Fatal("negative N should fail")
	}
}

func TestSRS(t *testing.T) {
	tr := mixedTrace(100, 1)
	s, err := SRS(tr, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != 30 || s.Method != "SRS" {
		t.Fatalf("sample %+v", s)
	}
	if s.SE <= 0 {
		t.Fatal("SRS SE not computed")
	}
	if s.Err(tr) > 0.5 {
		t.Fatalf("SRS error %v implausible", s.Err(tr))
	}
	// n > N clamps to census → exact estimate.
	all, _ := SRS(tr, 10_000, 7)
	if all.Size() != len(tr.Units) {
		t.Fatal("census size wrong")
	}
	if math.Abs(all.EstCPI-tr.OracleCPI()) > 1e-9 {
		t.Fatal("census should be exact")
	}
	if _, err := SRS(&trace.Trace{}, 5, 1); err == nil {
		t.Fatal("empty trace should fail")
	}
	if _, err := SRS(tr, 0, 1); err == nil {
		t.Fatal("n=0 should fail")
	}
}

func TestSecondContiguousWindow(t *testing.T) {
	tr := mixedTrace(200, 2)
	cfg := SecondConfig{Seconds: 1, ClockHz: 50_000, StartFraction: 0.2}
	s, err := Second(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() == 0 {
		t.Fatal("empty SECOND sample")
	}
	// All units in the window are contiguous in start-cycle order.
	byID := map[int]trace.Unit{}
	for _, u := range tr.Units {
		byID[u.ID] = u
	}
	var lo, hi uint64 = math.MaxUint64, 0
	for _, id := range s.UnitIDs {
		sc := byID[id].StartCycle
		if sc < lo {
			lo = sc
		}
		if sc > hi {
			hi = sc
		}
	}
	for _, u := range tr.Units {
		if u.StartCycle > lo && u.StartCycle < hi {
			found := false
			for _, id := range s.UnitIDs {
				if id == u.ID {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("unit %d inside window but not sampled", u.ID)
			}
		}
	}
}

func TestSecondPastEndFallsBack(t *testing.T) {
	tr := mixedTrace(10, 3)
	cfg := SecondConfig{Seconds: 1, ClockHz: 1, StartFraction: 0.999999}
	s, err := Second(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() < 1 {
		t.Fatal("SECOND should fall back to at least one unit")
	}
}

func TestCodeOnePointPerPhase(t *testing.T) {
	tr := mixedTrace(80, 4)
	ph := formed(t, tr)
	s, err := Code(ph)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() != ph.K {
		t.Fatalf("CODE picked %d points for %d phases", s.Size(), ph.K)
	}
	if s.Err(tr) > 0.6 {
		t.Fatalf("CODE error %v implausible", s.Err(tr))
	}
}

func TestSimProfStratified(t *testing.T) {
	tr := mixedTrace(100, 5)
	ph := formed(t, tr)
	sp, err := SimProf(ph, 20, 11)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Size() != 20 {
		t.Fatalf("size=%d", sp.Size())
	}
	if sp.SE <= 0 {
		t.Fatal("SE not computed")
	}
	ci := sp.CI(0.997)
	if !ci.Contains(sp.EstCPI) || ci.Margin <= 0 {
		t.Fatalf("bad CI %v", ci)
	}
	// Allocation favours the heterogeneous sort phase.
	covs := ph.CPIStats()
	sizes := ph.Sizes()
	bestSigmaN, bestAlloc := -1.0, -1
	for h := 0; h < ph.K; h++ {
		if v := covs[h].Std * float64(sizes[h]); v > bestSigmaN {
			bestSigmaN = v
			bestAlloc = sp.Alloc[h]
		}
	}
	for h := 0; h < ph.K; h++ {
		if sp.Alloc[h] > bestAlloc {
			t.Fatalf("highest-Nσ phase not favoured: alloc=%v", sp.Alloc)
		}
	}
}

func TestSimProfBeatsSRSOnAverage(t *testing.T) {
	tr := mixedTrace(150, 6)
	ph := formed(t, tr)
	var srsErr, spErr float64
	const reps = 30
	for r := 0; r < reps; r++ {
		s, err := SRS(tr, 20, uint64(100+r))
		if err != nil {
			t.Fatal(err)
		}
		srsErr += s.Err(tr)
		sp, err := SimProf(ph, 20, uint64(200+r))
		if err != nil {
			t.Fatal(err)
		}
		spErr += sp.Err(tr)
	}
	if spErr >= srsErr {
		t.Fatalf("SimProf mean error %v not below SRS %v", spErr/reps, srsErr/reps)
	}
}

func TestCIIsCalibratedAgainstOracle(t *testing.T) {
	// The 99.7% CI should contain the oracle in (nearly) all repeated
	// draws.
	tr := mixedTrace(150, 8)
	ph := formed(t, tr)
	oracle := tr.OracleCPI()
	misses := 0
	const reps = 50
	for r := 0; r < reps; r++ {
		sp, err := SimProf(ph, 25, uint64(500+r))
		if err != nil {
			t.Fatal(err)
		}
		if !sp.CI(0.997).Contains(oracle) {
			misses++
		}
	}
	if misses > 3 {
		t.Fatalf("99.7%% CI missed oracle %d/%d times", misses, reps)
	}
}

func TestPlanSEDecreasesWithN(t *testing.T) {
	tr := mixedTrace(100, 9)
	ph := formed(t, tr)
	prev := math.Inf(1)
	for _, n := range []int{5, 10, 20, 40, 80} {
		se, err := PlanSE(ph, n)
		if err != nil {
			t.Fatal(err)
		}
		if se > prev+1e-12 {
			t.Fatalf("SE increased at n=%d: %v > %v", n, se, prev)
		}
		prev = se
	}
}

func TestRequiredSampleSize(t *testing.T) {
	tr := mixedTrace(150, 10)
	ph := formed(t, tr)
	n5, err := RequiredSampleSize(ph, 0.05, 0.997)
	if err != nil {
		t.Fatal(err)
	}
	n2, err := RequiredSampleSize(ph, 0.02, 0.997)
	if err != nil {
		t.Fatal(err)
	}
	if n2 <= n5 {
		t.Fatalf("tighter error needs more points: n5=%d n2=%d", n5, n2)
	}
	// The returned size must actually achieve the target.
	se, _ := PlanSE(ph, n5)
	z := stats.ZForConfidence(0.997)
	if z*se > 0.05*tr.OracleCPI()*1.01 {
		t.Fatalf("n5=%d margin %v exceeds 5%% of %v", n5, z*se, tr.OracleCPI())
	}
	if _, err := RequiredSampleSize(ph, 0, 0.997); err == nil {
		t.Fatal("relErr=0 should fail")
	}
}

func TestSampleErrHelper(t *testing.T) {
	tr := mixedTrace(20, 11)
	s := Sample{EstCPI: tr.OracleCPI()}
	if s.Err(tr) != 0 {
		t.Fatal("exact estimate should have 0 error")
	}
}

func TestStratifiedBootstrapCIAgreesWithCLT(t *testing.T) {
	tr := mixedTrace(200, 40)
	ph := formed(t, tr)
	sp, err := SimProf(ph, 60, 13)
	if err != nil {
		t.Fatal(err)
	}
	clt := sp.CI(0.95)
	boot := sp.BootstrapCI(0.95, 2000, 17)
	if boot.Margin <= 0 {
		t.Fatal("bootstrap margin missing")
	}
	// Same order of magnitude as the CLT interval.
	if boot.Margin > 3*clt.Margin || clt.Margin > 3*boot.Margin {
		t.Fatalf("bootstrap %v vs CLT %v disagree wildly", boot.Margin, clt.Margin)
	}
	if !boot.Contains(tr.OracleCPI()) && !clt.Contains(tr.OracleCPI()) {
		t.Fatal("both intervals miss the oracle")
	}
}

// TestNeymanAllocationCapacityExported: the exported capacity-aware
// entry point matches the uncapped allocator when capacities equal the
// populations, honors tighter caps, and validates its inputs.
func TestNeymanAllocationCapacityExported(t *testing.T) {
	Nh := []int{100, 50, 10}
	sigma := []float64{2, 1, 0.5}

	uncapped, err := NeymanAllocation(Nh, sigma, 30)
	if err != nil {
		t.Fatal(err)
	}
	same, err := NeymanAllocationCapacity(Nh, Nh, sigma, 30)
	if err != nil {
		t.Fatal(err)
	}
	for h := range uncapped {
		if same[h] != uncapped[h] {
			t.Fatalf("capacity=Nh alloc %v != uncapped %v", same, uncapped)
		}
	}

	capped, err := NeymanAllocationCapacity(Nh, []int{5, 50, 10}, sigma, 30)
	if err != nil {
		t.Fatal(err)
	}
	if capped[0] > 5 {
		t.Fatalf("stratum 0 alloc %d exceeds capacity 5 (%v)", capped[0], capped)
	}
	sum := 0
	for _, a := range capped {
		sum += a
	}
	if sum != 30 {
		t.Fatalf("capped alloc sums to %d, want 30: %v", sum, capped)
	}

	if _, err := NeymanAllocationCapacity(Nh, []int{5, 50}, sigma, 30); err == nil {
		t.Fatal("mismatched capacity length must error")
	}
	if _, err := NeymanAllocationCapacity(Nh, []int{500, 50, 10}, sigma, 30); err == nil {
		t.Fatal("capacity above stratum size must error")
	}
}
