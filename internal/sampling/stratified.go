package sampling

import (
	"fmt"
	"math"
	"sort"

	"simprof/internal/phase"
	"simprof/internal/stats"
)

// NeymanAllocation distributes the overall sample size n across strata
// proportionally to N_h·σ_h (Eq. 1), with two practical guarantees: no
// stratum is allocated more units than it has, and every non-empty
// stratum gets at least one unit when n allows (a stratum with zero
// sample could not contribute its mean to the stratified estimator).
// Rounding uses largest remainders so that Σ n_h == min(n, ΣN_h).
func NeymanAllocation(Nh []int, sigma []float64, n int) ([]int, error) {
	if len(Nh) != len(sigma) {
		return nil, fmt.Errorf("sampling: %d strata sizes but %d sigmas", len(Nh), len(sigma))
	}
	k := len(Nh)
	if k == 0 {
		return nil, fmt.Errorf("sampling: no strata")
	}
	total := 0
	for h, N := range Nh {
		if N < 0 || sigma[h] < 0 {
			return nil, fmt.Errorf("sampling: negative stratum size or sigma at %d", h)
		}
		total += N
	}
	if n > total {
		n = total
	}
	alloc := make([]int, k)
	if n <= 0 {
		return alloc, nil
	}

	// Reserve one unit per non-empty stratum first.
	reserved := 0
	for h, N := range Nh {
		if N > 0 && reserved < n {
			alloc[h] = 1
			reserved++
		}
	}
	rest := n - reserved

	// Distribute the remainder ∝ N_h·σ_h with largest-remainder rounding.
	var denom float64
	for h := range Nh {
		denom += float64(Nh[h]) * sigma[h]
	}
	type frac struct {
		h int
		f float64
	}
	var fracs []frac
	if denom > 0 && rest > 0 {
		given := 0
		for h := range Nh {
			share := float64(rest) * float64(Nh[h]) * sigma[h] / denom
			whole := int(share)
			// Respect capacity.
			if alloc[h]+whole > Nh[h] {
				whole = Nh[h] - alloc[h]
			}
			alloc[h] += whole
			given += whole
			fracs = append(fracs, frac{h, share - float64(int(share))})
		}
		sort.Slice(fracs, func(a, b int) bool { return fracs[a].f > fracs[b].f })
		for _, fr := range fracs {
			if given >= rest {
				break
			}
			if alloc[fr.h] < Nh[fr.h] {
				alloc[fr.h]++
				given++
			}
		}
		// Any slack left (capacity limits): spill to strata with room.
		for h := range Nh {
			for given < rest && alloc[h] < Nh[h] {
				alloc[h]++
				given++
			}
		}
	} else if rest > 0 {
		// All sigmas zero: fall back to proportional allocation.
		given := 0
		for h := range Nh {
			share := rest * Nh[h] / total
			if alloc[h]+share > Nh[h] {
				share = Nh[h] - alloc[h]
			}
			alloc[h] += share
			given += share
		}
		for h := 0; given < rest && h < k; h++ {
			for given < rest && alloc[h] < Nh[h] {
				alloc[h]++
				given++
			}
		}
	}
	return alloc, nil
}

// Stratified is a SimProf sample: stratified random selection with the
// allocation that produced it.
type Stratified struct {
	Sample
	Alloc        []int       // sample size per phase
	PhaseMean    []float64   // sampled mean CPI per phase
	PhaseSamples [][]float64 // sampled CPIs per phase (for bootstrap CIs)
	Weights      []float64   // N_h/N
}

// SimProf draws the stratified random sample of total size n from the
// phases (Eq. 1), estimates CPI as Σ W_h·ȳ_h, and computes the
// stratified standard error (Eq. 4) from the sampled per-phase standard
// deviations (Eq. 5).
func SimProf(ph *phase.Phases, n int, seed uint64) (Stratified, error) {
	if ph.K == 0 || len(ph.Assign) == 0 {
		return Stratified{}, fmt.Errorf("sampling: no phases")
	}
	Nh := ph.Sizes()
	sigma := make([]float64, ph.K)
	for h := 0; h < ph.K; h++ {
		sigma[h] = stats.StdDev(ph.PhaseCPIs(h))
	}
	alloc, err := NeymanAllocation(Nh, sigma, n)
	if err != nil {
		return Stratified{}, err
	}
	rng := stats.NewRNG(seed)
	out := Stratified{
		Sample:       Sample{Method: "SimProf"},
		Alloc:        alloc,
		PhaseMean:    make([]float64, ph.K),
		PhaseSamples: make([][]float64, ph.K),
		Weights:      ph.Weights(),
	}
	N := float64(len(ph.Assign))
	var variance float64
	for h := 0; h < ph.K; h++ {
		if alloc[h] == 0 {
			continue
		}
		units := ph.PhaseUnits(h)
		pick := stats.SampleWithoutReplacement(rng, len(units), alloc[h])
		cpis := make([]float64, 0, alloc[h])
		for _, j := range pick {
			u := units[j]
			out.UnitIDs = append(out.UnitIDs, ph.Trace.Units[u].ID)
			cpis = append(cpis, ph.Trace.Units[u].CPI())
		}
		mean := stats.Mean(cpis)
		out.PhaseMean[h] = mean
		out.PhaseSamples[h] = cpis
		out.EstCPI += out.Weights[h] * mean
		// Eq. 4 term: N_h²·(1-n_h/N_h)·s_h²/n_h. The sampled s_h is
		// undefined for n_h==1; fall back to the profiled σ_h.
		sh := sigma[h]
		if len(cpis) > 1 {
			sh = stats.StdDev(cpis)
		}
		nh := float64(alloc[h])
		NhF := float64(Nh[h])
		variance += NhF * NhF * (1 - nh/NhF) * sh * sh / nh
	}
	out.SE = math.Sqrt(variance) / N
	return out, nil
}

// CI returns the confidence interval of the estimate at the given level
// (Eq. 2–3).
func (s Stratified) CI(level float64) stats.Interval {
	return stats.ConfidenceInterval(s.EstCPI, s.SE, level)
}

// BootstrapCI returns a distribution-free percentile-bootstrap interval
// for the stratified estimate — a cross-check of the CLT interval that
// Eq. 2–3 assume, useful when optimal allocation leaves some phases
// with only a handful of points.
func (s Stratified) BootstrapCI(level float64, rounds int, seed uint64) stats.Interval {
	return stats.BootstrapStratified(s.PhaseSamples, s.Weights, level, rounds, seed)
}

// PlanSE predicts the stratified standard error a sample of size n
// would achieve, using the profiled per-phase σ (available for free from
// the hardware counters) — the planning loop of §III-C.
func PlanSE(ph *phase.Phases, n int) (float64, error) {
	Nh := ph.Sizes()
	sigma := make([]float64, ph.K)
	for h := 0; h < ph.K; h++ {
		sigma[h] = stats.StdDev(ph.PhaseCPIs(h))
	}
	alloc, err := NeymanAllocation(Nh, sigma, n)
	if err != nil {
		return 0, err
	}
	var variance float64
	for h := 0; h < ph.K; h++ {
		if alloc[h] == 0 || Nh[h] == 0 {
			continue
		}
		nh, NhF := float64(alloc[h]), float64(Nh[h])
		variance += NhF * NhF * (1 - nh/NhF) * sigma[h] * sigma[h] / nh
	}
	return math.Sqrt(variance) / float64(len(ph.Assign)), nil
}

// RequiredSampleSize returns the smallest overall sample size whose
// predicted margin of error (z·SE) is at most relErr × the oracle CPI at
// the given confidence level — the quantity Fig. 8 reports for 5% and 2%
// errors at 99.7% confidence. It binary-searches n (the margin is
// monotone non-increasing in n).
func RequiredSampleSize(ph *phase.Phases, relErr, level float64) (int, error) {
	if relErr <= 0 {
		return 0, fmt.Errorf("sampling: relErr=%v must be positive", relErr)
	}
	target := relErr * ph.Trace.OracleCPI()
	z := stats.ZForConfidence(level)
	N := len(ph.Assign)
	ok := func(n int) bool {
		se, err := PlanSE(ph, n)
		if err != nil {
			return false
		}
		return z*se <= target
	}
	if !ok(N) {
		return N, nil // even a census can't beat the target (shouldn't happen: SE(N)=0)
	}
	lo, hi := 1, N
	for lo < hi {
		mid := (lo + hi) / 2
		if ok(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}
