package sampling

import (
	"context"
	"fmt"
	"math"
	"sort"

	"simprof/internal/obs"
	"simprof/internal/phase"
	"simprof/internal/stats"
)

// Allocation telemetry: how the Neyman allocator behaved and how much
// imputation widened the reported uncertainty.
var (
	obsDraws = obs.NewCounter("sampling.draws",
		"simulation points drawn by stratified sampling")
	obsImputedStrata = obs.NewCounter("sampling.imputed_strata",
		"strata with no measurable unit, mean-imputed into the estimate")
	obsSEInflation = obs.NewGauge("sampling.se_inflation",
		"latest SE inflation factor charged for imputation (≥1)")
	obsSigmaFallbacks = obs.NewCounter("sampling.sigma_fallbacks",
		"degraded strata whose zero sampled s_h fell back to the pooled spread")
)

// NeymanAllocation distributes the overall sample size n across strata
// proportionally to N_h·σ_h (Eq. 1), with two practical guarantees: no
// stratum is allocated more units than it has, and every non-empty
// stratum gets at least one unit when n allows (a stratum with zero
// sample could not contribute its mean to the stratified estimator).
// Rounding uses largest remainders so that Σ n_h == min(n, ΣN_h).
func NeymanAllocation(Nh []int, sigma []float64, n int) ([]int, error) {
	return neymanAllocation(Nh, Nh, sigma, n)
}

// NeymanAllocationCapacity is NeymanAllocation with a separate
// per-stratum capacity bound: allocation shares stay proportional to
// the population N_h·σ_h, but no stratum is given more than capacity[h]
// units. Beyond degraded-trace sampling (stratum importance from all
// executed units, the drawable frame only from the measured ones), this
// is the entry point for reusing the allocator on other stratified
// budgets — the trace-retention engine splits its keep budget across
// (route, status, latency) strata with it, capped by what each stratum
// has actually seen.
func NeymanAllocationCapacity(Nh, capacity []int, sigma []float64, n int) ([]int, error) {
	return neymanAllocation(Nh, capacity, sigma, n)
}

// neymanAllocation is NeymanAllocation with a separate per-stratum
// capacity: allocation shares stay proportional to the population
// N_h·σ_h, but no stratum is given more than capacity[h] units. This is
// how degraded traces sample — stratum importance comes from all
// executed units, the drawable frame only from the measured ones.
func neymanAllocation(Nh, capacity []int, sigma []float64, n int) ([]int, error) {
	if len(Nh) != len(sigma) {
		return nil, fmt.Errorf("sampling: %d strata sizes but %d sigmas", len(Nh), len(sigma))
	}
	if len(Nh) != len(capacity) {
		return nil, fmt.Errorf("sampling: %d strata sizes but %d capacities", len(Nh), len(capacity))
	}
	k := len(Nh)
	if k == 0 {
		return nil, fmt.Errorf("sampling: no strata")
	}
	total, totalCap := 0, 0
	for h, N := range Nh {
		if N < 0 || sigma[h] < 0 || capacity[h] < 0 {
			return nil, fmt.Errorf("sampling: negative stratum size, capacity or sigma at %d", h)
		}
		if capacity[h] > N {
			return nil, fmt.Errorf("sampling: capacity %d exceeds stratum size %d at %d", capacity[h], N, h)
		}
		total += N
		totalCap += capacity[h]
	}
	if n > totalCap {
		n = totalCap
	}
	alloc := make([]int, k)
	if n <= 0 {
		return alloc, nil
	}

	// Reserve one unit per drawable stratum first.
	reserved := 0
	for h := range Nh {
		if capacity[h] > 0 && reserved < n {
			alloc[h] = 1
			reserved++
		}
	}
	rest := n - reserved

	// Distribute the remainder ∝ N_h·σ_h with largest-remainder rounding.
	var denom float64
	for h := range Nh {
		if capacity[h] > 0 {
			denom += float64(Nh[h]) * sigma[h]
		}
	}
	type frac struct {
		h int
		f float64
	}
	var fracs []frac
	if denom > 0 && rest > 0 {
		given := 0
		for h := range Nh {
			if capacity[h] == 0 {
				continue
			}
			share := float64(rest) * float64(Nh[h]) * sigma[h] / denom
			whole := int(share)
			// Respect capacity.
			if alloc[h]+whole > capacity[h] {
				whole = capacity[h] - alloc[h]
			}
			alloc[h] += whole
			given += whole
			fracs = append(fracs, frac{h, share - float64(int(share))})
		}
		sort.Slice(fracs, func(a, b int) bool { return fracs[a].f > fracs[b].f })
		for _, fr := range fracs {
			if given >= rest {
				break
			}
			if alloc[fr.h] < capacity[fr.h] {
				alloc[fr.h]++
				given++
			}
		}
		// Any slack left (capacity limits): spill to strata with room.
		for h := range Nh {
			for given < rest && alloc[h] < capacity[h] {
				alloc[h]++
				given++
			}
		}
	} else if rest > 0 {
		// All sigmas zero: fall back to proportional allocation.
		given := 0
		for h := range Nh {
			share := rest * Nh[h] / total
			if alloc[h]+share > capacity[h] {
				share = capacity[h] - alloc[h]
			}
			alloc[h] += share
			given += share
		}
		for h := 0; given < rest && h < k; h++ {
			for given < rest && alloc[h] < capacity[h] {
				alloc[h]++
				given++
			}
		}
	}
	return alloc, nil
}

// Stratified is a SimProf sample: stratified random selection with the
// allocation that produced it.
type Stratified struct {
	Sample
	Alloc        []int       // sample size per phase
	PhaseMean    []float64   // sampled mean CPI per phase
	PhaseSamples [][]float64 // sampled CPIs per phase (for bootstrap CIs)
	Weights      []float64   // N_h/N
	Imputed      []bool      // phases with no measurable units: mean imputed
	DegradedFrac float64     // fraction of population units that were degraded
	SEInflation  float64     // ≥1; how much imputation uncertainty widens the SE
}

// SimProf draws the stratified random sample of total size n from the
// phases (Eq. 1), estimates CPI as Σ W_h·ȳ_h, and computes the
// stratified standard error (Eq. 4) from the sampled per-phase standard
// deviations (Eq. 5).
//
// On degraded traces the sampling frame of each stratum is restricted to
// its measured units (quality-clean, valid counters): allocation weights
// still follow the population N_h·σ_h, but draws never land on a unit
// whose CPI would be fabricated. A stratum with no measured units at all
// is mean-imputed from the sampled strata — equivalent to renormalizing
// weights over the observed strata — and charged a conservative
// N_h²·s_pool² variance term so the reported CI widens instead of
// pretending the missing phase was measured.
func SimProf(ph *phase.Phases, n int, seed uint64) (Stratified, error) {
	return SimProfCtx(context.Background(), ph, n, seed)
}

// SimProfCtx is SimProf under a context: cancellation is checked at
// entry and between strata, so an abandoned request stops scanning and
// drawing. A successful SimProfCtx is bit-for-bit SimProf — the context
// either aborts the draw with its error or changes nothing.
func SimProfCtx(ctx context.Context, ph *phase.Phases, n int, seed uint64) (Stratified, error) {
	span := obs.StartSpan("sampling.simprof")
	defer span.End()
	if err := ctx.Err(); err != nil {
		return Stratified{}, err
	}
	if ph.K == 0 || len(ph.Assign) == 0 {
		return Stratified{}, fmt.Errorf("sampling: no phases")
	}
	Nh := ph.Sizes()
	capacity := ph.MeasuredSizes()
	totalCap := 0
	for _, c := range capacity {
		totalCap += c
	}
	if totalCap == 0 {
		return Stratified{}, fmt.Errorf("sampling: no measurable units in any phase")
	}
	sigma := make([]float64, ph.K)
	for h := 0; h < ph.K; h++ {
		sigma[h] = stats.StdDev(ph.PhaseCPIs(h))
	}
	alloc, err := neymanAllocation(Nh, capacity, sigma, n)
	if err != nil {
		return Stratified{}, err
	}
	rng := stats.NewRNG(seed)
	out := Stratified{
		Sample:       Sample{Method: "SimProf"},
		Alloc:        alloc,
		PhaseMean:    make([]float64, ph.K),
		PhaseSamples: make([][]float64, ph.K),
		Weights:      ph.Weights(),
		Imputed:      make([]bool, ph.K),
		DegradedFrac: ph.DegradedFraction(),
		SEInflation:  1,
	}
	N := float64(len(ph.Assign))
	var variance float64
	var pooled []float64 // all sampled CPIs, for imputation fallback
	for h := 0; h < ph.K; h++ {
		if err := ctx.Err(); err != nil {
			return Stratified{}, err
		}
		if alloc[h] == 0 {
			continue
		}
		units := ph.MeasuredPhaseUnits(h)
		pick := stats.SampleWithoutReplacement(rng, len(units), alloc[h])
		cpis := make([]float64, 0, alloc[h])
		for _, j := range pick {
			u := units[j]
			out.UnitIDs = append(out.UnitIDs, ph.Trace.Units[u].ID)
			cpis = append(cpis, ph.Trace.Units[u].CPI())
		}
		mean := stats.Mean(cpis)
		out.PhaseMean[h] = mean
		out.PhaseSamples[h] = cpis
		out.EstCPI += out.Weights[h] * mean
		pooled = append(pooled, cpis...)
		// Eq. 4 term: N_h²·(1-n_h/N_h)·s_h²/n_h. The sampled s_h is
		// undefined for n_h==1; fall back to the profiled σ_h.
		sh := sigma[h]
		if len(cpis) > 1 {
			sh = stats.StdDev(cpis)
		}
		// A degraded stratum can leave only a unit or two measurable;
		// when those happen to agree, sh==0 would claim certainty about
		// units whose counters were never observed. Substitute the
		// pooled clean spread instead. Fully-measured strata (the clean
		// path) never take this branch.
		if sh == 0 && capacity[h] < Nh[h] {
			obsSigmaFallbacks.Inc()
			var clean []float64
			for g := 0; g < ph.K; g++ {
				clean = append(clean, ph.PhaseCPIs(g)...)
			}
			sh = stats.StdDev(clean)
		}
		nh := float64(alloc[h])
		NhF := float64(Nh[h])
		variance += NhF * NhF * (1 - nh/NhF) * sh * sh / nh
	}
	measuredVariance := variance

	// Mean-impute strata that exist in the population but have no
	// measurable unit to draw from.
	var sampledWeight, weightedMean float64
	for h := 0; h < ph.K; h++ {
		if alloc[h] > 0 {
			sampledWeight += out.Weights[h]
			weightedMean += out.Weights[h] * out.PhaseMean[h]
		}
	}
	if sampledWeight > 0 {
		pooledMean := weightedMean / sampledWeight
		sPool := stats.StdDev(pooled)
		for h := 0; h < ph.K; h++ {
			if alloc[h] > 0 || Nh[h] == 0 || capacity[h] > 0 {
				continue
			}
			out.Imputed[h] = true
			obsImputedStrata.Inc()
			out.PhaseMean[h] = pooledMean
			out.EstCPI += out.Weights[h] * pooledMean
			NhF := float64(Nh[h])
			variance += NhF * NhF * sPool * sPool
		}
	}
	out.SE = math.Sqrt(variance) / N
	if measuredVariance > 0 && variance > measuredVariance {
		out.SEInflation = math.Sqrt(variance / measuredVariance)
	}
	obsDraws.Add(int64(len(out.UnitIDs)))
	obsSEInflation.Set(out.SEInflation)
	return out, nil
}

// CI returns the confidence interval of the estimate at the given level
// (Eq. 2–3).
func (s Stratified) CI(level float64) stats.Interval {
	return stats.ConfidenceInterval(s.EstCPI, s.SE, level)
}

// BootstrapCI returns a distribution-free percentile-bootstrap interval
// for the stratified estimate — a cross-check of the CLT interval that
// Eq. 2–3 assume, useful when optimal allocation leaves some phases
// with only a handful of points. Weights are renormalized over the
// strata that actually hold samples (mean imputation is exactly this
// renormalization), and the margin is widened by the imputation
// SE-inflation factor so degraded traces report honest uncertainty.
func (s Stratified) BootstrapCI(level float64, rounds int, seed uint64) stats.Interval {
	weights := s.Weights
	var present float64
	empty := false
	for h, samp := range s.PhaseSamples {
		if len(samp) > 0 {
			present += s.Weights[h]
		} else if s.Weights[h] > 0 {
			empty = true
		}
	}
	if empty && present > 0 {
		weights = make([]float64, len(s.Weights))
		for h, samp := range s.PhaseSamples {
			if len(samp) > 0 {
				weights[h] = s.Weights[h] / present
			}
		}
	}
	iv := stats.BootstrapStratified(s.PhaseSamples, weights, level, rounds, seed)
	if s.SEInflation > 1 {
		iv.Margin *= s.SEInflation
	}
	// Degenerate bootstrap (each stratum holds a single value, or all
	// values coincide) collapses to a zero-width interval even when the
	// analytic SE knows better — fall back to the CLT interval instead
	// of reporting impossible precision.
	if iv.Margin == 0 && s.SE > 0 {
		return stats.ConfidenceInterval(s.EstCPI, s.SE, level)
	}
	return iv
}

// PlanSE predicts the stratified standard error a sample of size n
// would achieve, using the profiled per-phase σ (available for free from
// the hardware counters) — the planning loop of §III-C.
func PlanSE(ph *phase.Phases, n int) (float64, error) {
	Nh := ph.Sizes()
	capacity := ph.MeasuredSizes()
	sigma := make([]float64, ph.K)
	var clean []float64
	for h := 0; h < ph.K; h++ {
		cpis := ph.PhaseCPIs(h)
		sigma[h] = stats.StdDev(cpis)
		clean = append(clean, cpis...)
	}
	alloc, err := neymanAllocation(Nh, capacity, sigma, n)
	if err != nil {
		return 0, err
	}
	sPool := stats.StdDev(clean)
	var variance float64
	for h := 0; h < ph.K; h++ {
		if Nh[h] == 0 {
			continue
		}
		NhF := float64(Nh[h])
		if alloc[h] == 0 {
			// A phase the plan cannot reach (no measurable units) will be
			// imputed at estimation time; budget its uncertainty now.
			if capacity[h] == 0 {
				variance += NhF * NhF * sPool * sPool
			}
			continue
		}
		nh := float64(alloc[h])
		variance += NhF * NhF * (1 - nh/NhF) * sigma[h] * sigma[h] / nh
	}
	return math.Sqrt(variance) / float64(len(ph.Assign)), nil
}

// RequiredSampleSize returns the smallest overall sample size whose
// predicted margin of error (z·SE) is at most relErr × the oracle CPI at
// the given confidence level — the quantity Fig. 8 reports for 5% and 2%
// errors at 99.7% confidence. It binary-searches n (the margin is
// monotone non-increasing in n).
func RequiredSampleSize(ph *phase.Phases, relErr, level float64) (int, error) {
	if relErr <= 0 {
		return 0, fmt.Errorf("sampling: relErr=%v must be positive", relErr)
	}
	target := relErr * ph.Trace.OracleCPI()
	z := stats.ZForConfidence(level)
	// The drawable population is the measured units; asking for more
	// cannot shrink the SE further (degraded strata keep their
	// imputation-variance floor no matter the budget).
	N := 0
	for _, c := range ph.MeasuredSizes() {
		N += c
	}
	if N == 0 {
		return 0, fmt.Errorf("sampling: no measurable units to size a sample from")
	}
	ok := func(n int) bool {
		se, err := PlanSE(ph, n)
		if err != nil {
			return false
		}
		return z*se <= target
	}
	if !ok(N) {
		return N, nil // even a census can't beat the target (shouldn't happen: SE(N)=0)
	}
	lo, hi := 1, N
	for lo < hi {
		mid := (lo + hi) / 2
		if ok(mid) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}
