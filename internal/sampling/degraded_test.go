package sampling

import (
	"reflect"
	"testing"

	"simprof/internal/phase"
	"simprof/internal/trace"
)

// degradeCounters flags the given unit indices CountersMissing.
func degradeCounters(tr *trace.Trace, idx ...int) {
	for _, i := range idx {
		tr.Units[i].Counters = trace.Counters{}
		tr.Units[i].Quality |= trace.CountersMissing
	}
}

func TestNeymanCapacityAware(t *testing.T) {
	// Stratum 0 has 100 population units but only 3 measurable; the
	// allocation must respect the capacity and spill to stratum 1.
	alloc, err := neymanAllocation([]int{100, 100}, []int{3, 100}, []float64{2, 1}, 20)
	if err != nil {
		t.Fatal(err)
	}
	if alloc[0] > 3 {
		t.Fatalf("alloc %v exceeds capacity 3", alloc)
	}
	if alloc[0]+alloc[1] != 20 {
		t.Fatalf("alloc %v does not sum to 20", alloc)
	}
	// A zero-capacity stratum gets nothing even with huge σ.
	alloc, err = neymanAllocation([]int{50, 50}, []int{0, 50}, []float64{100, 1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if alloc[0] != 0 || alloc[1] != 10 {
		t.Fatalf("alloc %v want [0 10]", alloc)
	}
	// Capacity above the stratum size is a caller bug.
	if _, err := neymanAllocation([]int{5}, []int{6}, []float64{1}, 3); err == nil {
		t.Fatal("capacity > Nh accepted")
	}
	// The public entry point is the capacity==Nh special case.
	a, err := NeymanAllocation([]int{40, 60}, []float64{1, 2}, 12)
	if err != nil {
		t.Fatal(err)
	}
	b, err := neymanAllocation([]int{40, 60}, []int{40, 60}, []float64{1, 2}, 12)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("NeymanAllocation %v != capacity-aware with full capacity %v", a, b)
	}
}

func TestSimProfCleanPathBitIdentical(t *testing.T) {
	// On a pristine trace the degraded-aware SimProf must make exactly
	// the same draws and report the same numbers as before hardening:
	// the measured frame IS the population frame.
	tr := mixedTrace(60, 9)
	ph := formed(t, tr)
	sp, err := SimProf(ph, 24, 123)
	if err != nil {
		t.Fatal(err)
	}
	if sp.DegradedFrac != 0 {
		t.Fatalf("DegradedFrac=%v on clean trace", sp.DegradedFrac)
	}
	if sp.SEInflation != 1 {
		t.Fatalf("SEInflation=%v on clean trace", sp.SEInflation)
	}
	for h, imp := range sp.Imputed {
		if imp {
			t.Fatalf("phase %d imputed on clean trace", h)
		}
	}
}

func TestSimProfSkipsDegradedUnits(t *testing.T) {
	tr := mixedTrace(60, 9)
	// Degrade a third of the units.
	var idx []int
	for i := 0; i < len(tr.Units); i += 3 {
		idx = append(idx, i)
	}
	degradeCounters(tr, idx...)
	ph := formed(t, tr)
	sp, err := SimProf(ph, 24, 123)
	if err != nil {
		t.Fatal(err)
	}
	if sp.DegradedFrac == 0 {
		t.Fatal("DegradedFrac not reported")
	}
	bad := map[int]bool{}
	for _, i := range idx {
		bad[tr.Units[i].ID] = true
	}
	for _, id := range sp.UnitIDs {
		if bad[id] {
			t.Fatalf("degraded unit %d drawn as a simulation point", id)
		}
	}
	// The estimate is built from real CPIs only, so it stays near the
	// oracle of the valid units instead of being dragged toward zero.
	oracle := tr.OracleCPI()
	if sp.EstCPI < 0.5*oracle || sp.EstCPI > 1.5*oracle {
		t.Fatalf("estimate %v far from oracle %v", sp.EstCPI, oracle)
	}
}

func TestSimProfImputesEmptyStratum(t *testing.T) {
	tr := mixedTrace(40, 9)
	ph := formed(t, tr)
	if ph.K < 2 {
		t.Skip("need at least 2 phases")
	}
	// Degrade EVERY unit of phase 0: nothing left to draw there.
	var idx []int
	for i, a := range ph.Assign {
		if a == 0 {
			idx = append(idx, i)
		}
	}
	degradeCounters(tr, idx...)
	// Re-form on the degraded trace (phase structure may shift; find a
	// fully-degraded stratum, if any survived re-clustering).
	ph2 := formed(t, tr)
	sp, err := SimProf(ph2, 16, 55)
	if err != nil {
		t.Fatal(err)
	}
	msizes := ph2.MeasuredSizes()
	sizes := ph2.Sizes()
	for h := 0; h < ph2.K; h++ {
		if sizes[h] > 0 && msizes[h] == 0 {
			if !sp.Imputed[h] {
				t.Fatalf("phase %d has no measurable units but was not imputed", h)
			}
			if sp.PhaseMean[h] == 0 {
				t.Fatalf("imputed phase %d carries no mean", h)
			}
			if sp.SEInflation <= 1 {
				t.Fatalf("imputation did not widen the SE: inflation %v", sp.SEInflation)
			}
		}
	}
	// The bootstrap CI must stay usable (weights renormalized).
	ci := sp.BootstrapCI(0.99, 500, 3)
	if ci.Margin < 0 {
		t.Fatalf("bootstrap margin %v", ci.Margin)
	}
}

func TestSimProfAllDegradedFails(t *testing.T) {
	tr := mixedTrace(20, 4)
	ph := formed(t, tr)
	for i := range tr.Units {
		tr.Units[i].Quality |= trace.CountersMissing
	}
	if _, err := SimProf(ph, 10, 1); err == nil {
		t.Fatal("no measurable units should be an error")
	}
}

func TestSRSAndSystematicSkipDegraded(t *testing.T) {
	tr := mixedTrace(50, 7)
	// Degrade every 5th unit — coprime with Systematic's stride so the
	// pass cannot land exclusively on degraded units.
	var idx []int
	for i := 0; i < len(tr.Units); i += 5 {
		idx = append(idx, i)
	}
	degradeCounters(tr, idx...)
	bad := map[int]bool{}
	for _, i := range idx {
		bad[tr.Units[i].ID] = true
	}
	srs, err := SRS(tr, 25, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range srs.UnitIDs {
		if bad[id] {
			t.Fatalf("SRS drew degraded unit %d", id)
		}
	}
	sys, err := Systematic(tr, 25, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range sys.UnitIDs {
		if bad[id] {
			t.Fatalf("Systematic kept degraded unit %d", id)
		}
	}
	if srs.EstCPI == 0 || sys.EstCPI == 0 {
		t.Fatal("estimates collapsed to zero")
	}
	sec, err := Second(tr, DefaultSecond())
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range sec.UnitIDs {
		if bad[id] {
			t.Fatalf("Second kept degraded unit %d", id)
		}
	}
}

func TestCodeSkipsDegradedRepresentatives(t *testing.T) {
	tr := mixedTrace(50, 7)
	// Degrade half of each phase.
	var idx []int
	for i := range tr.Units {
		if i%2 == 0 {
			idx = append(idx, i)
		}
	}
	degradeCounters(tr, idx...)
	ph2, err := phase.Form(tr, phase.Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	code, err := Code(ph2)
	if err != nil {
		t.Fatal(err)
	}
	bad := map[int]bool{}
	for _, i := range idx {
		bad[tr.Units[i].ID] = true
	}
	for _, id := range code.UnitIDs {
		if bad[id] {
			t.Fatalf("CODE picked degraded representative %d", id)
		}
	}
	if code.EstCPI == 0 {
		t.Fatal("estimate collapsed to zero")
	}
}

func TestRequiredSampleSizeDegraded(t *testing.T) {
	tr := mixedTrace(60, 11)
	var idx []int
	for i := 0; i < len(tr.Units); i += 2 {
		idx = append(idx, i)
	}
	degradeCounters(tr, idx...)
	ph := formed(t, tr)
	n, err := RequiredSampleSize(ph, 0.10, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	measured := 0
	for _, c := range ph.MeasuredSizes() {
		measured += c
	}
	if n > measured {
		t.Fatalf("required %d exceeds the %d measurable units", n, measured)
	}
}
