// Package sampling implements the four simulation-point selection
// approaches the paper evaluates (§IV-B): the single contiguous interval
// (SECOND), simple random sampling (SRS), the SimPoint-like single point
// per phase (CODE), and SimProf's stratified random sampling with
// optimal (Neyman) allocation, including the stratified standard error
// and confidence-interval machinery of Eq. 1–5.
package sampling

import (
	"fmt"
	"math"
	"sort"

	"simprof/internal/cluster"
	"simprof/internal/phase"
	"simprof/internal/stats"
	"simprof/internal/trace"
)

// Sample is a set of selected simulation points and the CPI estimate
// they produce.
type Sample struct {
	Method  string
	UnitIDs []int   // selected sampling-unit ids
	EstCPI  float64 // estimated mean CPI of the whole execution
	SE      float64 // standard error of the estimate (0 if not defined)
}

// Size returns the number of simulation points.
func (s Sample) Size() int { return len(s.UnitIDs) }

// Err returns the relative error of the estimate against the trace's
// oracle CPI (the paper's accuracy metric).
func (s Sample) Err(tr *trace.Trace) float64 {
	return stats.RelErr(s.EstCPI, tr.OracleCPI())
}

// ---------------------------------------------------------------------
// SECOND: one contiguous N-second interval
// ---------------------------------------------------------------------

// SecondConfig configures the SECOND baseline. The machine clock runs at
// ClockHz; the approach simulates all sampling units whose start cycle
// falls within a window of Seconds, beginning at StartFraction of the
// total execution.
type SecondConfig struct {
	Seconds       float64
	ClockHz       float64
	StartFraction float64 // 0 = beginning; the paper's practice is mid-run
}

// DefaultSecond is the paper's 10-second interval on a 3GHz-class
// machine, scaled 1:20 so that the window covers a realistic fraction of
// the scaled-down executions (the relative comparison with SimProf's
// sample sizes is what matters).
func DefaultSecond() SecondConfig {
	return SecondConfig{Seconds: 10, ClockHz: 450e6, StartFraction: 0.1}
}

// WindowCycles returns the interval length in cycles.
func (c SecondConfig) WindowCycles() uint64 {
	return uint64(c.Seconds * c.ClockHz)
}

// Second selects the contiguous interval and estimates CPI as the mean
// over the units inside it. Units whose counters were lost (no valid
// CPI) are skipped rather than averaged in as zeros.
func Second(tr *trace.Trace, cfg SecondConfig) (Sample, error) {
	if len(tr.Units) == 0 {
		return Sample{}, fmt.Errorf("sampling: empty trace")
	}
	order := make([]int, 0, len(tr.Units))
	for i := range tr.Units {
		if tr.Units[i].CPIValid() {
			order = append(order, i)
		}
	}
	if len(order) == 0 {
		return Sample{}, fmt.Errorf("sampling: no units with valid counters")
	}
	sort.Slice(order, func(a, b int) bool {
		return tr.Units[order[a]].StartCycle < tr.Units[order[b]].StartCycle
	})
	first := tr.Units[order[0]].StartCycle
	last := tr.Units[order[len(order)-1]].StartCycle
	span := last - first
	t0 := first + uint64(cfg.StartFraction*float64(span))
	t1 := t0 + cfg.WindowCycles()
	s := Sample{Method: "SECOND"}
	var sum float64
	for _, i := range order {
		sc := tr.Units[i].StartCycle
		if sc < t0 || sc >= t1 {
			continue
		}
		s.UnitIDs = append(s.UnitIDs, tr.Units[i].ID)
		sum += tr.Units[i].CPI()
	}
	if len(s.UnitIDs) == 0 {
		// Window fell past the end; take the last measurable unit.
		i := order[len(order)-1]
		s.UnitIDs = []int{tr.Units[i].ID}
		sum = tr.Units[i].CPI()
	}
	s.EstCPI = sum / float64(len(s.UnitIDs))
	return s, nil
}

// ---------------------------------------------------------------------
// SRS: simple random sampling
// ---------------------------------------------------------------------

// SRS selects n units uniformly without replacement from the units with
// valid counters. The SE includes the finite-population correction.
func SRS(tr *trace.Trace, n int, seed uint64) (Sample, error) {
	if len(tr.Units) == 0 {
		return Sample{}, fmt.Errorf("sampling: empty trace")
	}
	frame := make([]int, 0, len(tr.Units))
	for i := range tr.Units {
		if tr.Units[i].CPIValid() {
			frame = append(frame, i)
		}
	}
	N := len(frame)
	if N == 0 {
		return Sample{}, fmt.Errorf("sampling: no units with valid counters")
	}
	if n <= 0 {
		return Sample{}, fmt.Errorf("sampling: n=%d must be positive", n)
	}
	if n > N {
		n = N
	}
	rng := stats.NewRNG(seed)
	idx := stats.SampleWithoutReplacement(rng, N, n)
	s := Sample{Method: "SRS"}
	cpis := make([]float64, 0, n)
	for _, j := range idx {
		i := frame[j]
		s.UnitIDs = append(s.UnitIDs, tr.Units[i].ID)
		cpis = append(cpis, tr.Units[i].CPI())
	}
	s.EstCPI = stats.Mean(cpis)
	if n > 1 {
		fpc := 1 - float64(n)/float64(N)
		s.SE = math.Sqrt(stats.Variance(cpis) / float64(n) * fpc)
	}
	return s, nil
}

// ---------------------------------------------------------------------
// CODE: one simulation point per phase (SimPoint-like)
// ---------------------------------------------------------------------

// Code picks, for each phase, the unit whose feature vector is nearest
// the cluster center, and estimates CPI as the phase-weighted mean of
// those points — exactly SimPoint's strategy applied to call-stack
// phases. Call-stack vectors tie far more often than SimPoint's basic
// block vectors (every quicksort unit has an identical stack), so ties
// are broken by a deterministic pseudo-random draw rather than scan
// order, which would systematically favour the earliest unit of a phase.
func Code(ph *phase.Phases) (Sample, error) {
	if ph.K == 0 {
		return Sample{}, fmt.Errorf("sampling: no phases")
	}
	s := Sample{Method: "CODE"}
	weights := ph.Weights()
	rng := stats.NewRNG(uint64(len(ph.Assign))*0x9e3779b9 + uint64(ph.K))
	const tieTol = 1e-9
	skipped := false
	var covered float64
	for h := 0; h < ph.K; h++ {
		var ties []int
		bestD := math.Inf(1)
		for i, a := range ph.Assign {
			if a != h || !ph.UnitMeasured(i) {
				continue
			}
			d := cluster.SqDist(ph.Vectors[i], ph.Centers[h])
			switch {
			case d < bestD-tieTol:
				bestD = d
				ties = ties[:0]
				ties = append(ties, i)
			case d <= bestD+tieTol:
				ties = append(ties, i)
			}
		}
		if len(ties) == 0 {
			// Empty phase, or one with no measurable representative.
			if weights[h] > 0 {
				skipped = true
			}
			continue
		}
		best := ties[rng.IntN(len(ties))]
		s.UnitIDs = append(s.UnitIDs, ph.Trace.Units[best].ID)
		s.EstCPI += weights[h] * ph.Trace.Units[best].CPI()
		covered += weights[h]
	}
	if len(s.UnitIDs) == 0 {
		return Sample{}, fmt.Errorf("sampling: no phase has a measurable representative")
	}
	// If a phase had to be skipped, renormalize over the covered weight
	// so the estimate is a proper mean, not one missing a phase's share.
	// Fully-covered runs keep the exact original arithmetic.
	if skipped && covered > 0 {
		s.EstCPI /= covered
	}
	return s, nil
}
