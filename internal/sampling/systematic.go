package sampling

import (
	"fmt"
	"math"

	"simprof/internal/phase"
	"simprof/internal/stats"
	"simprof/internal/trace"
)

// Systematic implements SMARTS-style systematic sampling (Wunderlich et
// al., ISCA'03): every k-th sampling unit is selected, with a random
// starting offset. The paper discusses it as the main alternative to
// phase-based selection — cheap to set up (no profiling of the executed
// code is needed) but blind to what each unit executes.
func Systematic(tr *trace.Trace, n int, seed uint64) (Sample, error) {
	N := len(tr.Units)
	if N == 0 {
		return Sample{}, fmt.Errorf("sampling: empty trace")
	}
	if n <= 0 {
		return Sample{}, fmt.Errorf("sampling: n=%d must be positive", n)
	}
	if n > N {
		n = N
	}
	stride := N / n
	if stride < 1 {
		stride = 1
	}
	rng := stats.NewRNG(seed)
	start := rng.IntN(stride)
	s := Sample{Method: "SYSTEMATIC"}
	var cpis []float64
	for i := start; i < N && len(s.UnitIDs) < n; i += stride {
		// Systematic sampling keeps its fixed stride on degraded traces;
		// a selected unit whose counters were lost simply contributes no
		// observation (it cannot be re-drawn without biasing the design).
		if !tr.Units[i].CPIValid() {
			continue
		}
		s.UnitIDs = append(s.UnitIDs, tr.Units[i].ID)
		cpis = append(cpis, tr.Units[i].CPI())
	}
	if len(cpis) == 0 {
		return Sample{}, fmt.Errorf("sampling: systematic pass hit no units with valid counters")
	}
	s.EstCPI = stats.Mean(cpis)
	if len(cpis) > 1 {
		// SRS-style SE is the standard (slightly conservative)
		// approximation for systematic samples.
		fpc := 1 - float64(len(cpis))/float64(N)
		s.SE = math.Sqrt(stats.Variance(cpis) / float64(len(cpis)) * fpc)
	}
	return s, nil
}

// CombinedConfig parameterizes SimProfSystematic.
type CombinedConfig struct {
	Points int // simulation points selected by SimProf (stratified)
	// SubUnitFraction is the fraction of each selected unit that is
	// simulated in detail; the rest is fast-forwarded functionally.
	// The paper proposes exactly this combination as future work
	// (§III-C: "users can combine other sampling approaches, e.g.,
	// systematic sampling, to reduce the simulation time of each
	// simulation point").
	SubUnitFraction float64
	Seed            uint64
}

// CombinedResult is the outcome of the combined scheme.
type CombinedResult struct {
	Stratified
	// DetailInstructions is the total detailed-simulation budget, in
	// instructions, after sub-unit systematic sampling.
	DetailInstructions uint64
	// FullInstructions is the budget without sub-unit sampling.
	FullInstructions uint64
	// ExtraSEFactor inflates the stratified SE to account for the
	// within-unit sampling noise (CLT across sub-samples).
	ExtraSEFactor float64
}

// SimProfSystematic selects simulation points with SimProf's stratified
// sampling and then systematically samples *within* each selected unit,
// simulating only SubUnitFraction of its instructions in detail. The
// CPI estimate is unchanged in expectation; the standard error grows by
// ~1/sqrt(fraction) per unit while the detailed-simulation budget
// shrinks by the same fraction — the speed/accuracy dial the paper
// leaves as future work.
func SimProfSystematic(ph *phase.Phases, cfg CombinedConfig) (CombinedResult, error) {
	if cfg.SubUnitFraction <= 0 || cfg.SubUnitFraction > 1 {
		return CombinedResult{}, fmt.Errorf("sampling: SubUnitFraction=%v out of (0,1]", cfg.SubUnitFraction)
	}
	sp, err := SimProf(ph, cfg.Points, cfg.Seed)
	if err != nil {
		return CombinedResult{}, err
	}
	out := CombinedResult{Stratified: sp}
	out.FullInstructions = uint64(len(sp.UnitIDs)) * ph.Trace.UnitInstr
	out.DetailInstructions = uint64(float64(out.FullInstructions) * cfg.SubUnitFraction)
	out.ExtraSEFactor = 1 / math.Sqrt(cfg.SubUnitFraction)
	out.SE *= out.ExtraSEFactor
	return out, nil
}
