// Package matrix provides the flat numeric containers SimProf's compute
// kernels run on: a row-major Dense matrix backed by one contiguous
// allocation (so point loops walk linear memory instead of chasing
// [][]float64 row pointers), and a CSR-style Sparse matrix for the
// method-frequency vectors of phase formation, which are overwhelmingly
// zero (a sampling unit touches a handful of methods out of the whole
// interned table).
//
// Both types are plain data: they carry no concurrency of their own and
// are safe for concurrent readers. The kernels in internal/cluster,
// internal/stats and internal/phase own the parallel loops.
package matrix

import "fmt"

// Dense is a row-major rows×cols matrix with a contiguous backing array.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns a zeroed rows×cols matrix. Negative dimensions panic;
// zero dimensions are allowed (an empty matrix).
func NewDense(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("matrix: NewDense(%d, %d)", rows, cols))
	}
	return &Dense{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// FromRows copies a [][]float64 into a Dense. All rows must share the
// first row's length.
func FromRows(rows [][]float64) *Dense {
	if len(rows) == 0 {
		return NewDense(0, 0)
	}
	d := NewDense(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != d.cols {
			panic(fmt.Sprintf("matrix: FromRows row %d has %d cols, want %d", i, len(r), d.cols))
		}
		copy(d.data[i*d.cols:(i+1)*d.cols], r)
	}
	return d
}

// Rows returns the row count.
func (d *Dense) Rows() int { return d.rows }

// Cols returns the column count.
func (d *Dense) Cols() int { return d.cols }

// Row returns row i as a slice view into the backing array. The view's
// capacity is clipped to the row, so an append can never bleed into the
// next row.
func (d *Dense) Row(i int) []float64 {
	lo := i * d.cols
	return d.data[lo : lo+d.cols : lo+d.cols]
}

// Data returns the backing array (rows*cols, row-major).
func (d *Dense) Data() []float64 { return d.data }

// RowViews returns every row as a view. The result aliases the matrix;
// it exists so flat-backed kernels can keep feeding the historical
// [][]float64 APIs without copying.
func (d *Dense) RowViews() [][]float64 {
	out := make([][]float64, d.rows)
	for i := range out {
		out[i] = d.Row(i)
	}
	return out
}

// GatherRows copies the given rows (in order) into a new Dense.
func (d *Dense) GatherRows(idx []int) *Dense {
	out := NewDense(len(idx), d.cols)
	for k, i := range idx {
		copy(out.Row(k), d.Row(i))
	}
	return out
}

// Clone returns a deep copy.
func (d *Dense) Clone() *Dense {
	out := NewDense(d.rows, d.cols)
	copy(out.data, d.data)
	return out
}

// RowNorms2 writes the squared Euclidean norm of every row into dst
// (allocated when nil or too short) and returns it. The per-row sum runs
// in index order, so the result is deterministic.
func (d *Dense) RowNorms2(dst []float64) []float64 {
	if cap(dst) < d.rows {
		dst = make([]float64, d.rows)
	}
	dst = dst[:d.rows]
	for i := 0; i < d.rows; i++ {
		var s float64
		for _, v := range d.Row(i) {
			s += v * v
		}
		dst[i] = s
	}
	return dst
}

// Sparse is a CSR (compressed sparse row) matrix: row i's nonzero
// entries are Col[RowPtr[i]:RowPtr[i+1]] / Val[RowPtr[i]:RowPtr[i+1]],
// with column indices strictly ascending within each row.
type Sparse struct {
	rows, cols int
	RowPtr     []int
	Col        []int32
	Val        []float64
}

// Rows returns the row count.
func (s *Sparse) Rows() int { return s.rows }

// Cols returns the column count.
func (s *Sparse) Cols() int { return s.cols }

// NNZ returns the number of stored nonzeros.
func (s *Sparse) NNZ() int { return len(s.Val) }

// Row returns views of row i's column indices and values.
func (s *Sparse) Row(i int) ([]int32, []float64) {
	lo, hi := s.RowPtr[i], s.RowPtr[i+1]
	return s.Col[lo:hi], s.Val[lo:hi]
}

// SparseBuilder assembles a Sparse from per-row (column, value) pairs.
// Rows are appended in order; columns within a row must be strictly
// ascending (the vectorizer emits them sorted).
type SparseBuilder struct {
	cols   int
	rowPtr []int
	col    []int32
	val    []float64
}

// NewSparseBuilder starts a builder for matrices with the given column
// count. rowsHint/nnzHint presize the backing slices (0 is fine).
func NewSparseBuilder(cols, rowsHint, nnzHint int) *SparseBuilder {
	b := &SparseBuilder{cols: cols}
	b.rowPtr = make([]int, 1, rowsHint+1)
	b.col = make([]int32, 0, nnzHint)
	b.val = make([]float64, 0, nnzHint)
	return b
}

// AppendRow adds the next row. cols must be strictly ascending and in
// range; vals must be the same length.
func (b *SparseBuilder) AppendRow(cols []int32, vals []float64) {
	if len(cols) != len(vals) {
		panic("matrix: AppendRow cols/vals length mismatch")
	}
	prev := int32(-1)
	for _, c := range cols {
		if c <= prev || int(c) >= b.cols {
			panic(fmt.Sprintf("matrix: AppendRow column %d out of order or range (cols=%d)", c, b.cols))
		}
		prev = c
	}
	b.col = append(b.col, cols...)
	b.val = append(b.val, vals...)
	b.rowPtr = append(b.rowPtr, len(b.col))
}

// Build finalizes the matrix. The builder must not be reused.
func (b *SparseBuilder) Build() *Sparse {
	return &Sparse{
		rows:   len(b.rowPtr) - 1,
		cols:   b.cols,
		RowPtr: b.rowPtr,
		Col:    b.col,
		Val:    b.val,
	}
}

// NewSparseCSR adopts pre-built CSR arrays without copying them — the
// zero-copy entry used by the tracebin decoder, whose column sections
// already hold exactly this layout. The arrays are validated (monotone
// row pointers covering all of col/val, strictly ascending in-range
// columns per row) so that adopted data upholds the same invariants
// SparseBuilder enforces; the caller keeps ownership of the slices and
// must not mutate them afterwards.
func NewSparseCSR(rows, cols int, rowPtr []int, col []int32, val []float64) (*Sparse, error) {
	if rows < 0 || cols < 0 {
		return nil, fmt.Errorf("matrix: NewSparseCSR(%d, %d)", rows, cols)
	}
	if len(rowPtr) != rows+1 {
		return nil, fmt.Errorf("matrix: NewSparseCSR row pointers: %d entries, want %d", len(rowPtr), rows+1)
	}
	if len(col) != len(val) {
		return nil, fmt.Errorf("matrix: NewSparseCSR col/val length mismatch (%d != %d)", len(col), len(val))
	}
	if rowPtr[0] != 0 || rowPtr[rows] != len(col) {
		return nil, fmt.Errorf("matrix: NewSparseCSR row pointers span [%d, %d], want [0, %d]",
			rowPtr[0], rowPtr[rows], len(col))
	}
	for i := 0; i < rows; i++ {
		lo, hi := rowPtr[i], rowPtr[i+1]
		if lo > hi || hi > len(col) {
			return nil, fmt.Errorf("matrix: NewSparseCSR row %d pointers not monotone (%d > %d)", i, lo, hi)
		}
		prev := int32(-1)
		for _, c := range col[lo:hi] {
			if c <= prev || int(c) >= cols {
				return nil, fmt.Errorf("matrix: NewSparseCSR row %d column %d out of order or range (cols=%d)", i, c, cols)
			}
			prev = c
		}
	}
	return &Sparse{rows: rows, cols: cols, RowPtr: rowPtr, Col: col, Val: val}, nil
}

// ColMap inverts a projected column list: the result maps every
// full-space column to its projected dimension, or -1 when the column is
// not selected. It panics on an out-of-range column, matching
// GatherColumnsDense.
func (s *Sparse) ColMap(cols []int) []int32 {
	colMap := make([]int32, s.cols)
	for i := range colMap {
		colMap[i] = -1
	}
	for j, c := range cols {
		if c < 0 || c >= s.cols {
			panic(fmt.Sprintf("matrix: ColMap column %d out of range (cols=%d)", c, s.cols))
		}
		colMap[c] = int32(j)
	}
	return colMap
}

// GatherColumnsInto projects rows [lo, hi) onto the dimensions selected
// by colMap (built with ColMap), writing into the matching rows of out.
// Each call touches only its own row range of out, so disjoint ranges
// may run concurrently — the parallel projection in phase formation
// drives this over a fixed chunk grid and the result is bit-for-bit the
// serial GatherColumnsDense (each cell is written by exactly one copy,
// no reductions are involved).
func (s *Sparse) GatherColumnsInto(out *Dense, colMap []int32, lo, hi int) {
	if out.rows != s.rows {
		panic(fmt.Sprintf("matrix: GatherColumnsInto rows %d != %d", out.rows, s.rows))
	}
	for i := lo; i < hi; i++ {
		cs, vs := s.Row(i)
		row := out.Row(i)
		for k, c := range cs {
			if j := colMap[c]; j >= 0 {
				row[j] = vs[k]
			}
		}
	}
}

// GatherColumnsDense projects the matrix onto the given columns: the
// result is a dense Rows()×len(cols) matrix with out[i][j] =
// s[i][cols[j]]. Columns absent from a row read as 0. This is the
// feature-space projection of phase formation: it touches only stored
// nonzeros, never materializing the full method space.
func (s *Sparse) GatherColumnsDense(cols []int) *Dense {
	out := NewDense(s.rows, len(cols))
	if len(cols) == 0 {
		return out
	}
	s.GatherColumnsInto(out, s.ColMap(cols), 0, s.rows)
	return out
}

// DenseFromSparse materializes the full dense form (tests and small
// matrices only).
func DenseFromSparse(s *Sparse) *Dense {
	out := NewDense(s.rows, s.cols)
	for i := 0; i < s.rows; i++ {
		cs, vs := s.Row(i)
		row := out.Row(i)
		for k, c := range cs {
			row[c] = vs[k]
		}
	}
	return out
}
