package matrix

import (
	"reflect"
	"testing"
)

func TestDenseRoundTrip(t *testing.T) {
	rows := [][]float64{{1, 2, 3}, {4, 5, 6}}
	d := FromRows(rows)
	if d.Rows() != 2 || d.Cols() != 3 {
		t.Fatalf("dims %dx%d", d.Rows(), d.Cols())
	}
	if !reflect.DeepEqual(d.RowViews(), rows) {
		t.Fatalf("round trip: %v", d.RowViews())
	}
	// Row views alias the backing store; FromRows must have copied.
	d.Row(0)[0] = 99
	if rows[0][0] != 1 {
		t.Fatal("FromRows aliased the input")
	}
	if d.Data()[0] != 99 {
		t.Fatal("Row is not a view")
	}
}

func TestDenseRowCapacityClipped(t *testing.T) {
	d := FromRows([][]float64{{1, 2}, {3, 4}})
	r := d.Row(0)
	if cap(r) != 2 {
		t.Fatalf("row capacity %d, want clipped to 2", cap(r))
	}
	_ = append(r, 7) // must reallocate, not clobber row 1
	if d.Row(1)[0] != 3 {
		t.Fatal("append bled into the next row")
	}
}

func TestDenseGatherRowsAndClone(t *testing.T) {
	d := FromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	g := d.GatherRows([]int{2, 0})
	want := [][]float64{{5, 6}, {1, 2}}
	if !reflect.DeepEqual(g.RowViews(), want) {
		t.Fatalf("gather: %v", g.RowViews())
	}
	c := d.Clone()
	c.Row(0)[0] = -1
	if d.Row(0)[0] != 1 {
		t.Fatal("Clone shares backing store")
	}
}

func TestDenseRowNorms2(t *testing.T) {
	d := FromRows([][]float64{{3, 4}, {0, 0}})
	n2 := d.RowNorms2(nil)
	if n2[0] != 25 || n2[1] != 0 {
		t.Fatalf("norms %v", n2)
	}
	// Reuses a caller buffer when large enough.
	buf := make([]float64, 8)
	out := d.RowNorms2(buf)
	if &out[0] != &buf[0] || len(out) != 2 {
		t.Fatal("RowNorms2 did not reuse the buffer")
	}
}

func buildSparse(t *testing.T) *Sparse {
	t.Helper()
	b := NewSparseBuilder(6, 3, 4)
	b.AppendRow([]int32{1, 4}, []float64{2, 7})
	b.AppendRow(nil, nil) // all-zero row
	b.AppendRow([]int32{0, 1, 5}, []float64{1, 3, 9})
	return b.Build()
}

func TestSparseBuilderAndDensify(t *testing.T) {
	s := buildSparse(t)
	if s.Rows() != 3 || s.Cols() != 6 || s.NNZ() != 5 {
		t.Fatalf("dims %dx%d nnz=%d", s.Rows(), s.Cols(), s.NNZ())
	}
	cs, vs := s.Row(2)
	if !reflect.DeepEqual(cs, []int32{0, 1, 5}) || !reflect.DeepEqual(vs, []float64{1, 3, 9}) {
		t.Fatalf("row 2: %v %v", cs, vs)
	}
	want := [][]float64{
		{0, 2, 0, 0, 7, 0},
		{0, 0, 0, 0, 0, 0},
		{1, 3, 0, 0, 0, 9},
	}
	if !reflect.DeepEqual(DenseFromSparse(s).RowViews(), want) {
		t.Fatalf("densify: %v", DenseFromSparse(s).RowViews())
	}
}

func TestSparseBuilderRejectsBadColumns(t *testing.T) {
	for name, cols := range map[string][]int32{
		"descending":   {3, 1},
		"duplicate":    {2, 2},
		"out-of-range": {0, 6},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatal("want panic")
				}
			}()
			b := NewSparseBuilder(6, 1, 2)
			b.AppendRow(cols, make([]float64, len(cols)))
		})
	}
}

func TestGatherColumnsDense(t *testing.T) {
	s := buildSparse(t)
	// Projection must equal densify-then-select, including absent
	// columns reading as zero and repeated columns.
	cols := []int{4, 0, 1}
	got := s.GatherColumnsDense(cols)
	full := DenseFromSparse(s)
	for i := 0; i < s.Rows(); i++ {
		for j, c := range cols {
			if got.Row(i)[j] != full.Row(i)[c] {
				t.Fatalf("[%d][%d] = %v, want %v", i, j, got.Row(i)[j], full.Row(i)[c])
			}
		}
	}
	if e := s.GatherColumnsDense(nil); e.Rows() != 3 || e.Cols() != 0 {
		t.Fatalf("empty projection dims %dx%d", e.Rows(), e.Cols())
	}
}
