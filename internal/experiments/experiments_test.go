package experiments

import (
	"math"
	"testing"

	"simprof/internal/model"
)

// suite is shared across tests in this package: the Quick configuration
// still profiles real workloads, so reuse matters.
var testSuite = NewSuite(Quick())

func TestWorkloadsList(t *testing.T) {
	ws := testSuite.Workloads()
	if len(ws) != 12 {
		t.Fatalf("workloads=%d want 12", len(ws))
	}
	if ws[0] != "sort_hp" || ws[11] != "rank_sp" {
		t.Fatalf("order wrong: %v", ws)
	}
}

func TestTraceCachedAndNamed(t *testing.T) {
	a, err := testSuite.Trace("grep_sp")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := testSuite.Trace("grep_sp")
	if a != b {
		t.Fatal("trace not cached")
	}
	if a.Name() != "grep_sp" {
		t.Fatalf("Name=%q", a.Name())
	}
	if _, err := testSuite.Trace("nope_sp"); err == nil {
		t.Fatal("unknown workload should fail")
	}
}

func TestFig6Shape(t *testing.T) {
	rows, err := testSuite.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 12 {
		t.Fatalf("rows=%d", len(rows))
	}
	for _, r := range rows {
		// Weighted CoV below population CoV is the paper's Fig. 6
		// claim. It is not a strict mathematical identity (per-phase
		// means renormalize each term), so allow a 2% cushion for
		// workloads that are already near-homogeneous.
		if r.Weighted > r.Population*1.02+1e-9 {
			t.Errorf("%s: weighted CoV %v above population %v", r.Workload, r.Weighted, r.Population)
		}
		if r.Max+1e-9 < r.Weighted {
			t.Errorf("%s: max CoV below weighted", r.Workload)
		}
	}
}

func TestFig7OrderingHolds(t *testing.T) {
	rows, err := testSuite.Fig7()
	if err != nil {
		t.Fatal(err)
	}
	avg := Averages(rows)
	// The paper's headline: SimProf is the most accurate approach.
	if avg.SimProf >= avg.SRS {
		t.Errorf("SimProf avg %v not below SRS %v", avg.SimProf, avg.SRS)
	}
	if avg.SimProf >= avg.Second {
		t.Errorf("SimProf avg %v not below SECOND %v", avg.SimProf, avg.Second)
	}
	if avg.SimProf >= avg.Code {
		t.Errorf("SimProf avg %v not below CODE %v", avg.SimProf, avg.Code)
	}
	if avg.SimProf > 0.10 {
		t.Errorf("SimProf avg error %v implausibly high", avg.SimProf)
	}
}

func TestFig8SampleSizes(t *testing.T) {
	rows, err := testSuite.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.SimProf2 < r.SimProf5 {
			t.Errorf("%s: n2=%d below n5=%d", r.Workload, r.SimProf2, r.SimProf5)
		}
		if r.SimProf5 <= 0 || r.SecondUnits <= 0 {
			t.Errorf("%s: degenerate sizes %+v", r.Workload, r)
		}
	}
}

func TestFig9GrepFewestPhases(t *testing.T) {
	rows, err := testSuite.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	minP, maxP := math.MaxInt, 0
	for _, r := range rows {
		counts[r.Workload] = r.Phases
		if r.Phases < minP {
			minP = r.Phases
		}
		if r.Phases > maxP {
			maxP = r.Phases
		}
	}
	if counts["grep_sp"] > minP+1 {
		t.Errorf("grep_sp has %d phases; should be among the fewest (min %d)", counts["grep_sp"], minP)
	}
	if maxP < 3 {
		t.Errorf("max phases %d suspiciously low", maxP)
	}
}

func TestFig10SortOnlyInHadoop(t *testing.T) {
	rows, err := testSuite.Fig10()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		total := 0.0
		for _, v := range r.Share {
			total += v
		}
		if total < 0.999 || total > 1.001 {
			t.Errorf("%s: type shares sum to %v", r.Workload, total)
		}
		// Spark defaults don't map-side sort; wc/grep/bayes/cc/rank on
		// spark must have no sort-dominated phase (sort_sp legitimately
		// sorts).
		if r.Workload != "sort_sp" && r.Workload[len(r.Workload)-2:] == "sp" {
			if r.Share[model.KindSort] > 0.01 {
				t.Errorf("%s: sort share %v on spark", r.Workload, r.Share[model.KindSort])
			}
		}
	}
}

func TestFig11AllocationFollowsVarianceAndWeight(t *testing.T) {
	rows, err := testSuite.Fig11()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("cc_sp has %d phases", len(rows))
	}
	var totalW, totalR float64
	for _, r := range rows {
		totalW += r.Weight
		totalR += r.SampleRatio
	}
	if math.Abs(totalW-1) > 0.01 || math.Abs(totalR-1) > 0.01 {
		t.Fatalf("weights/ratios don't sum to 1: %v %v", totalW, totalR)
	}
	// Sorted by weight.
	for i := 1; i < len(rows); i++ {
		if rows[i].Weight > rows[i-1].Weight+1e-9 {
			t.Fatal("rows not sorted by weight")
		}
	}
}

func TestTableIIList(t *testing.T) {
	inputs := testSuite.TableII()
	if len(inputs) != 8 {
		t.Fatalf("inputs=%d", len(inputs))
	}
	if !inputs[0].Training || inputs[0].Spec.Name != "google" {
		t.Fatal("google must be the training input")
	}
}

func TestSensitivityFigures(t *testing.T) {
	rows12, err := testSuite.Fig12()
	if err != nil {
		t.Fatal(err)
	}
	rows13, err := testSuite.Fig13()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows12) != 4 || len(rows13) != 4 {
		t.Fatalf("rows: %d/%d", len(rows12), len(rows13))
	}
	for i, r := range rows12 {
		if r.SensitiveFraction < 0 || r.SensitiveFraction > 1 {
			t.Errorf("%s: fraction %v", r.Workload, r.SensitiveFraction)
		}
		if rows13[i].Sensitive+rows13[i].Insensitive <= 0 {
			t.Errorf("%s: no phases", rows13[i].Workload)
		}
	}
	if _, _, err := testSuite.Sensitivity("wc_sp"); err == nil {
		t.Fatal("sensitivity on non-graph workload should fail")
	}
}

func TestWordCountAnatomy(t *testing.T) {
	a, err := testSuite.WordCountAnatomy("hadoop")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.CPIs) != len(a.PhaseIDs) || len(a.CPIs) == 0 {
		t.Fatal("anatomy series empty or mismatched")
	}
	// Sorted by phase id.
	for i := 1; i < len(a.PhaseIDs); i++ {
		if a.PhaseIDs[i] < a.PhaseIDs[i-1] {
			t.Fatal("units not sorted by phase")
		}
	}
	var w float64
	for _, p := range a.Phases {
		w += p.Weight
	}
	if math.Abs(w-1) > 0.01 {
		t.Fatalf("phase weights sum to %v", w)
	}
}

func TestAblationUnitSize(t *testing.T) {
	rows, err := testSuite.AblationUnitSize()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows=%d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].UnitInstr <= rows[i-1].UnitInstr {
			t.Fatal("sweep not increasing")
		}
		if rows[i].Units >= rows[i-1].Units {
			t.Fatal("bigger units must mean fewer of them")
		}
	}
	for _, r := range rows {
		if r.Phases <= 0 || r.SimProfErr < 0 {
			t.Fatalf("degenerate row %+v", r)
		}
	}
}

func TestAblationSnapshotRate(t *testing.T) {
	rows, err := testSuite.AblationSnapshotRate()
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Snapshots <= rows[i-1].Snapshots {
			t.Fatal("sweep not increasing in snapshots/unit")
		}
	}
}

func TestAblationCombined(t *testing.T) {
	rows, err := testSuite.AblationCombined()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].DetailInstr >= rows[i-1].DetailInstr {
			t.Fatal("detail budget should shrink")
		}
		if rows[i].MarginOfErr <= rows[i-1].MarginOfErr {
			t.Fatal("margin should widen as budget shrinks")
		}
		if rows[i].SpeedupVsAll <= rows[i-1].SpeedupVsAll {
			t.Fatal("speedup should grow")
		}
	}
}

func TestAblationGC(t *testing.T) {
	rows, err := testSuite.AblationGC()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	if rows[0].GCShare != 0 {
		t.Fatalf("GC-off run has GC snapshots: %v", rows[0].GCShare)
	}
	if rows[2].GCShare <= rows[1].GCShare {
		t.Fatalf("smaller young gen should raise GC share: %v vs %v",
			rows[2].GCShare, rows[1].GCShare)
	}
	if rows[1].GCShare <= 0 {
		t.Fatal("GC-on run shows no GC snapshots")
	}
}

func TestPreloadConcurrent(t *testing.T) {
	s := NewSuite(Quick())
	if err := s.Preload(); err != nil {
		t.Fatal(err)
	}
	// Everything is cached afterwards: Trace must return instantly with
	// identical pointers across calls.
	for _, k := range s.Workloads() {
		a, err := s.Trace(k)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := s.Trace(k)
		if a != b {
			t.Fatalf("%s: not cached after preload", k)
		}
	}
}

func TestDesignExploration(t *testing.T) {
	rows, err := testSuite.DesignExploration()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows=%d", len(rows))
	}
	// Shrinking the LLC must raise the oracle CPI; growing it must
	// lower it; and every point estimate should track its oracle.
	var base, half, double DesignRow
	for _, r := range rows {
		switch {
		case r.Design[:4] == "base":
			base = r
		case r.Design[:4] == "half":
			half = r
		case r.Design[:6] == "double":
			double = r
		}
		if r.Err > 0.15 {
			t.Errorf("%s: estimate error %v too high", r.Design, r.Err)
		}
	}
	if half.OracleCPI <= base.OracleCPI || double.OracleCPI >= base.OracleCPI {
		t.Fatalf("LLC sweep shape wrong: half=%v base=%v double=%v",
			half.OracleCPI, base.OracleCPI, double.OracleCPI)
	}
	// The estimates must preserve the design ranking.
	if half.EstCPI <= base.EstCPI || double.EstCPI >= base.EstCPI {
		t.Fatalf("estimates don't rank designs: half=%v base=%v double=%v",
			half.EstCPI, base.EstCPI, double.EstCPI)
	}
}

func TestAblationColdStart(t *testing.T) {
	rows, err := testSuite.AblationColdStart()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 5 {
		t.Fatalf("rows=%d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].UnitInstr <= rows[i-1].UnitInstr {
			t.Fatal("sweep not increasing")
		}
		if rows[i].RelativeBias >= rows[i-1].RelativeBias {
			t.Fatal("bigger units must shrink cold-start bias")
		}
	}
	last := rows[len(rows)-1]
	if last.UnitInstr != 100_000_000 {
		t.Fatalf("sweep should end at the paper's 100M, got %d", last.UnitInstr)
	}
	if last.RelativeBias > 0.25 {
		t.Fatalf("100M-unit bias %v should be modest", last.RelativeBias)
	}
}

func TestAblationNodes(t *testing.T) {
	rows, err := testSuite.AblationNodes()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows=%d", len(rows))
	}
	// More nodes → fewer LLC co-runners → oracle CPI must not rise.
	for i := 1; i < len(rows); i++ {
		if rows[i].Nodes <= rows[i-1].Nodes {
			t.Fatal("sweep not increasing")
		}
		if rows[i].OracleCPI > rows[i-1].OracleCPI*1.02 {
			t.Fatalf("CPI rose with more nodes: %v → %v", rows[i-1].OracleCPI, rows[i].OracleCPI)
		}
	}
}
