// Package experiments regenerates every table and figure of the paper's
// evaluation (§IV) from the simulated substrate: the benchmark suite of
// Table I, the accuracy and sample-size comparisons of Figs. 7–8, the
// phase analyses of Figs. 6 and 9–11, and the input-sensitivity study of
// Table II and Figs. 12–13, plus the wc phase anatomies of Figs. 14–15.
// cmd/expreport renders the results; bench_test.go measures their
// regeneration cost.
package experiments

import (
	"fmt"
	"sync"

	"simprof/internal/core"
	"simprof/internal/model"
	"simprof/internal/parallel"
	"simprof/internal/phase"
	"simprof/internal/sampling"
	"simprof/internal/sensitivity"
	"simprof/internal/synth"
	"simprof/internal/trace"
	"simprof/internal/workloads"
)

// Config sizes the experiment suite.
type Config struct {
	Seed       uint64
	Opts       workloads.Options // workload scale
	Core       core.Config
	SampleSize int     // simulation points for Fig. 7 (paper: 20)
	Repeats    int     // draws averaged for the randomized methods
	Confidence float64 // for Fig. 8 (paper: 0.997)
	ErrTargets []float64
	// GraphScale for the Table II inputs of the sensitivity study.
	SensitivityScale int
}

// Default returns the standard experiment configuration (scaled-down
// inputs; see DESIGN.md §2 for the scaling rationale).
func Default() Config {
	return Config{
		Seed:             42,
		Opts:             workloads.Options{}.WithDefaults(),
		Core:             core.DefaultConfig(),
		SampleSize:       20,
		Repeats:          5,
		Confidence:       0.997,
		ErrTargets:       []float64{0.05, 0.02},
		SensitivityScale: 19,
	}
}

// Quick returns a configuration small enough for unit tests and smoke
// runs.
func Quick() Config {
	c := Default()
	c.Opts = workloads.Options{
		Cores: 4, TextBytes: 48 << 20, SortBytes: 64 << 20,
		GraphScale: 15, GraphEdgeFactor: 12,
		SparkIterations: 5, HadoopIterations: 2,
	}.WithDefaults()
	c.Repeats = 3
	c.SensitivityScale = 14
	return c
}

// Suite caches profiled traces and formed phases per workload so that
// every figure can reuse them.
type Suite struct {
	cfg Config

	mu     sync.Mutex
	traces map[string]*trace.Trace
	phases map[string]*phase.Phases
	sens   map[string]*sensitivity.Report
}

// NewSuite builds an empty suite.
func NewSuite(cfg Config) *Suite {
	c := cfg
	c.Core.Seed = cfg.Seed
	return &Suite{
		cfg:    c,
		traces: map[string]*trace.Trace{},
		phases: map[string]*phase.Phases{},
		sens:   map[string]*sensitivity.Report{},
	}
}

// Config returns the suite configuration.
func (s *Suite) Config() Config { return s.cfg }

// Workloads lists the 12 workload keys in presentation order
// ("sort_hp", ..., "rank_sp"), Hadoop first like the paper's figures.
func (s *Suite) Workloads() []string {
	var out []string
	for _, fw := range []string{"hadoop", "spark"} {
		for _, b := range workloads.Benchmarks() {
			out = append(out, key(b, fw))
		}
	}
	return out
}

func key(bench, fw string) string {
	suffix := map[string]string{"hadoop": "hp", "spark": "sp"}[fw]
	return bench + "_" + suffix
}

func splitKey(k string) (bench, fw string, err error) {
	for _, b := range workloads.Benchmarks() {
		if k == b+"_hp" {
			return b, "hadoop", nil
		}
		if k == b+"_sp" {
			return b, "spark", nil
		}
	}
	return "", "", fmt.Errorf("experiments: unknown workload %q", k)
}

// Trace profiles (or returns the cached profile of) one workload on its
// default input. The computation runs outside the suite lock, so
// distinct workloads can be profiled concurrently (see Preload).
func (s *Suite) Trace(k string) (*trace.Trace, error) {
	s.mu.Lock()
	if tr, ok := s.traces[k]; ok {
		s.mu.Unlock()
		return tr, nil
	}
	s.mu.Unlock()

	bench, fw, err := splitKey(k)
	if err != nil {
		return nil, err
	}
	in, err := workloads.DefaultInput(bench, s.cfg.Opts)
	if err != nil {
		return nil, err
	}
	tr, err := core.ProfileWorkload(bench, fw, in, s.cfg.Opts, s.cfg.Core)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cached, ok := s.traces[k]; ok { // lost a race; keep the first
		return cached, nil
	}
	s.traces[k] = tr
	return tr, nil
}

// Phases forms (or returns the cached) phases of one workload.
func (s *Suite) Phases(k string) (*phase.Phases, error) {
	s.mu.Lock()
	if ph, ok := s.phases[k]; ok {
		s.mu.Unlock()
		return ph, nil
	}
	s.mu.Unlock()

	tr, err := s.Trace(k)
	if err != nil {
		return nil, err
	}
	ph, err := core.FormPhases(tr, s.cfg.Core)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if cached, ok := s.phases[k]; ok {
		return cached, nil
	}
	s.phases[k] = ph
	return ph, nil
}

// Preload profiles and phase-forms all 12 workloads on the shared
// worker pool (bounded by Config.Core.Workers, defaulting to
// GOMAXPROCS) — the whole default-scale evaluation fits in a couple of
// seconds of wall clock on a multicore host. If several workloads fail,
// the error of the earliest one in Workloads() order is returned,
// regardless of scheduling; a panic inside one workload propagates as a
// panic instead of deadlocking its siblings.
func (s *Suite) Preload() error {
	ws := s.Workloads()
	eng := parallel.New(s.cfg.Core.Workers)
	return eng.ForEachIndexErr(len(ws), func(i int) error {
		_, err := s.Phases(ws[i])
		return err
	})
}

// ---------------------------------------------------------------------
// Table I
// ---------------------------------------------------------------------

// TableIRow describes one benchmark of Table I, extended with the
// measured population size.
type TableIRow struct {
	Benchmark string
	Abbrev    string
	Type      string
	Input     string
	Units     map[string]int // framework suffix → sampling units
}

// TableI regenerates Table I, profiling every workload.
func (s *Suite) TableI() ([]TableIRow, error) {
	meta := map[string][2]string{
		"sort":  {"Sort", "Microbench"},
		"wc":    {"WordCount", "Microbench"},
		"grep":  {"Grep", "Microbench"},
		"bayes": {"NaiveBayes", "Machine Learning"},
		"cc":    {"Connected Components", "Graph Analytics"},
		"rank":  {"PageRank", "Graph Analytics"},
	}
	var rows []TableIRow
	for _, b := range workloads.Benchmarks() {
		in, err := workloads.DefaultInput(b, s.cfg.Opts)
		if err != nil {
			return nil, err
		}
		row := TableIRow{
			Benchmark: meta[b][0],
			Abbrev:    b,
			Type:      meta[b][1],
			Input:     fmt.Sprintf("%s (%d records, %dMB)", in.Name, in.Records, in.Bytes>>20),
			Units:     map[string]int{},
		}
		for _, fw := range []string{"hadoop", "spark"} {
			tr, err := s.Trace(key(b, fw))
			if err != nil {
				return nil, err
			}
			row.Units[fw] = len(tr.Units)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// ---------------------------------------------------------------------
// Fig. 6 — CoV of CPIs
// ---------------------------------------------------------------------

// Fig6Row is one workload's homogeneity metrics.
type Fig6Row struct {
	Workload string
	phase.CoVReport
}

// Fig6 regenerates the CoV analysis.
func (s *Suite) Fig6() ([]Fig6Row, error) {
	var rows []Fig6Row
	for _, k := range s.Workloads() {
		ph, err := s.Phases(k)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig6Row{Workload: k, CoVReport: ph.CoV()})
	}
	return rows, nil
}

// ---------------------------------------------------------------------
// Fig. 7 — sampling errors of the four approaches
// ---------------------------------------------------------------------

// Fig7Row is one workload's CPI sampling error per approach (fractions,
// not percent). The randomized approaches (SRS, SimProf) report the
// mean error over Config.Repeats independent draws.
type Fig7Row struct {
	Workload string
	Second   float64
	SRS      float64
	Code     float64
	SimProf  float64
}

// Fig7 regenerates the accuracy comparison.
func (s *Suite) Fig7() ([]Fig7Row, error) {
	var rows []Fig7Row
	for _, k := range s.Workloads() {
		tr, err := s.Trace(k)
		if err != nil {
			return nil, err
		}
		ph, err := s.Phases(k)
		if err != nil {
			return nil, err
		}
		row := Fig7Row{Workload: k}
		sec, err := sampling.Second(tr, sampling.DefaultSecond())
		if err != nil {
			return nil, err
		}
		row.Second = sec.Err(tr)
		code, err := sampling.Code(ph)
		if err != nil {
			return nil, err
		}
		row.Code = code.Err(tr)
		for r := 0; r < s.cfg.Repeats; r++ {
			srs, err := sampling.SRS(tr, s.cfg.SampleSize, s.cfg.Seed+uint64(1000+r))
			if err != nil {
				return nil, err
			}
			row.SRS += srs.Err(tr) / float64(s.cfg.Repeats)
			sp, err := sampling.SimProf(ph, s.cfg.SampleSize, s.cfg.Seed+uint64(2000+r))
			if err != nil {
				return nil, err
			}
			row.SimProf += sp.Err(tr) / float64(s.cfg.Repeats)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Averages reduces Fig7 rows to the per-approach means.
func Averages(rows []Fig7Row) Fig7Row {
	avg := Fig7Row{Workload: "average"}
	n := float64(len(rows))
	for _, r := range rows {
		avg.Second += r.Second / n
		avg.SRS += r.SRS / n
		avg.Code += r.Code / n
		avg.SimProf += r.SimProf / n
	}
	return avg
}

// ---------------------------------------------------------------------
// Fig. 8 — required sample sizes
// ---------------------------------------------------------------------

// Fig8Row compares SimProf's required sample sizes against SECOND's
// unit count.
type Fig8Row struct {
	Workload    string
	SimProf5    int // 5% error at 99.7% confidence
	SimProf2    int // 2% error
	SecondUnits int
}

// Fig8 regenerates the sample-size comparison.
func (s *Suite) Fig8() ([]Fig8Row, error) {
	var rows []Fig8Row
	for _, k := range s.Workloads() {
		tr, err := s.Trace(k)
		if err != nil {
			return nil, err
		}
		ph, err := s.Phases(k)
		if err != nil {
			return nil, err
		}
		n5, err := sampling.RequiredSampleSize(ph, s.cfg.ErrTargets[0], s.cfg.Confidence)
		if err != nil {
			return nil, err
		}
		n2, err := sampling.RequiredSampleSize(ph, s.cfg.ErrTargets[1], s.cfg.Confidence)
		if err != nil {
			return nil, err
		}
		sec, err := sampling.Second(tr, sampling.DefaultSecond())
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig8Row{Workload: k, SimProf5: n5, SimProf2: n2, SecondUnits: sec.Size()})
	}
	return rows, nil
}

// ---------------------------------------------------------------------
// Fig. 9 — number of phases
// ---------------------------------------------------------------------

// Fig9Row is one workload's phase count.
type Fig9Row struct {
	Workload string
	Phases   int
}

// Fig9 regenerates the phase-count comparison.
func (s *Suite) Fig9() ([]Fig9Row, error) {
	var rows []Fig9Row
	for _, k := range s.Workloads() {
		ph, err := s.Phases(k)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig9Row{Workload: k, Phases: ph.K})
	}
	return rows, nil
}

// ---------------------------------------------------------------------
// Fig. 10 — phase type distribution
// ---------------------------------------------------------------------

// Fig10Row is one workload's unit-weighted phase-type breakdown.
type Fig10Row struct {
	Workload string
	Share    map[model.Kind]float64
}

// Fig10 regenerates the phase-type distribution.
func (s *Suite) Fig10() ([]Fig10Row, error) {
	var rows []Fig10Row
	for _, k := range s.Workloads() {
		ph, err := s.Phases(k)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig10Row{Workload: k, Share: ph.TypeDistribution()})
	}
	return rows, nil
}

// ---------------------------------------------------------------------
// Fig. 11 — optimal allocation on cc_sp
// ---------------------------------------------------------------------

// Fig11Row is one cc_sp phase: its weight, CPI CoV and the share of the
// simulation points the optimal allocation assigns it.
type Fig11Row struct {
	Phase        int
	Weight       float64
	CPICoV       float64
	SampleRatio  float64
	DominantName string
}

// Fig11 regenerates the per-phase allocation study (phases sorted by
// weight, as in the paper).
func (s *Suite) Fig11() ([]Fig11Row, error) {
	ph, err := s.Phases("cc_sp")
	if err != nil {
		return nil, err
	}
	sp, err := sampling.SimProf(ph, s.cfg.SampleSize*2, s.cfg.Seed+7)
	if err != nil {
		return nil, err
	}
	weights := ph.Weights()
	cpis := ph.CPIStats()
	total := 0
	for _, a := range sp.Alloc {
		total += a
	}
	rows := make([]Fig11Row, ph.K)
	for h := 0; h < ph.K; h++ {
		name := ""
		if dom := ph.DominantMethods(h, 1); len(dom) > 0 {
			name = dom[0]
		}
		rows[h] = Fig11Row{
			Phase:        h,
			Weight:       weights[h],
			CPICoV:       cpis[h].CoV,
			SampleRatio:  float64(sp.Alloc[h]) / float64(total),
			DominantName: name,
		}
	}
	// Sort by weight descending.
	for i := 0; i < len(rows); i++ {
		for j := i + 1; j < len(rows); j++ {
			if rows[j].Weight > rows[i].Weight {
				rows[i], rows[j] = rows[j], rows[i]
			}
		}
	}
	return rows, nil
}

// ---------------------------------------------------------------------
// Table II + Figs. 12–13 — input sensitivity
// ---------------------------------------------------------------------

// GraphWorkloads are the workloads of the sensitivity study.
func GraphWorkloads() []string { return []string{"cc_hp", "cc_sp", "rank_hp", "rank_sp"} }

// TableII returns the evaluated inputs.
func (s *Suite) TableII() []synth.TableIIInput {
	return synth.TableII(s.cfg.SensitivityScale, s.cfg.Seed+99)
}

// Sensitivity runs (or returns the cached) input-sensitivity analysis
// of one graph workload: train on the google input, test the seven
// reference inputs.
func (s *Suite) Sensitivity(k string) (*sensitivity.Report, *phase.Phases, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	bench, fw, err := splitKey(k)
	if err != nil {
		return nil, nil, err
	}
	if bench != "cc" && bench != "rank" {
		return nil, nil, fmt.Errorf("experiments: %q is not a graph workload", k)
	}
	inputs := synth.TableIIStats(s.cfg.SensitivityScale, s.cfg.Seed+99)
	train, refs := inputs[0], inputs[1:]

	if rep, ok := s.sens[k]; ok {
		return rep, s.phases["sens/"+k], nil
	}
	trainTrace, err := core.ProfileWorkload(bench, fw, train, s.cfg.Opts, s.cfg.Core)
	if err != nil {
		return nil, nil, err
	}
	ph, err := core.FormPhases(trainTrace, s.cfg.Core)
	if err != nil {
		return nil, nil, err
	}
	var refTraces []*trace.Trace
	for _, in := range refs {
		rt, err := core.ProfileWorkload(bench, fw, in, s.cfg.Opts, s.cfg.Core)
		if err != nil {
			return nil, nil, err
		}
		refTraces = append(refTraces, rt)
	}
	rep, err := sensitivity.Test(ph, refTraces, sensitivity.DefaultThreshold)
	if err != nil {
		return nil, nil, err
	}
	s.sens[k] = rep
	s.phases["sens/"+k] = ph
	return rep, ph, nil
}

// Fig12Row is one workload's fraction of simulation points in
// input-sensitive phases (the per-reference-input sample size).
type Fig12Row struct {
	Workload          string
	SensitiveFraction float64
}

// Fig12 regenerates the sample-size reduction analysis.
func (s *Suite) Fig12() ([]Fig12Row, error) {
	var rows []Fig12Row
	for _, k := range GraphWorkloads() {
		rep, ph, err := s.Sensitivity(k)
		if err != nil {
			return nil, err
		}
		sp, err := sampling.SimProf(ph, s.cfg.SampleSize, s.cfg.Seed+11)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig12Row{
			Workload:          k,
			SensitiveFraction: rep.SensitivePointFraction(ph, sp.UnitIDs),
		})
	}
	return rows, nil
}

// Fig13Row is one workload's sensitive/insensitive phase counts.
type Fig13Row struct {
	Workload    string
	Sensitive   int
	Insensitive int
}

// Fig13 regenerates the phase-count breakdown.
func (s *Suite) Fig13() ([]Fig13Row, error) {
	var rows []Fig13Row
	for _, k := range GraphWorkloads() {
		rep, _, err := s.Sensitivity(k)
		if err != nil {
			return nil, err
		}
		sens, insens := rep.Counts()
		rows = append(rows, Fig13Row{Workload: k, Sensitive: sens, Insensitive: insens})
	}
	return rows, nil
}

// ---------------------------------------------------------------------
// Figs. 14–15 — WordCount anatomy
// ---------------------------------------------------------------------

// AnatomyPhase summarizes one phase of the wc anatomy plots.
type AnatomyPhase struct {
	Phase    int
	Weight   float64
	MeanCPI  float64
	CoV      float64
	Dominant []string
}

// Anatomy is the data behind Figs. 14/15: per-unit CPI sorted by phase
// id plus per-phase summaries.
type Anatomy struct {
	Workload string
	CPIs     []float64 // unit CPIs, sorted by phase id (paper's x-axis)
	PhaseIDs []int
	Phases   []AnatomyPhase
}

// WordCountAnatomy regenerates Fig. 14 (framework "spark") or Fig. 15
// (framework "hadoop").
func (s *Suite) WordCountAnatomy(fw string) (*Anatomy, error) {
	k := key("wc", fw)
	tr, err := s.Trace(k)
	if err != nil {
		return nil, err
	}
	ph, err := s.Phases(k)
	if err != nil {
		return nil, err
	}
	a := &Anatomy{Workload: k}
	// Sort unit indices by phase, stable in unit order.
	for h := 0; h < ph.K; h++ {
		for i, p := range ph.Assign {
			if p == h {
				a.CPIs = append(a.CPIs, tr.Units[i].CPI())
				a.PhaseIDs = append(a.PhaseIDs, h)
			}
		}
		st := ph.CPIStats()[h]
		a.Phases = append(a.Phases, AnatomyPhase{
			Phase:    h,
			Weight:   ph.Weights()[h],
			MeanCPI:  st.Mean,
			CoV:      st.CoV,
			Dominant: ph.DominantMethods(h, 3),
		})
	}
	return a, nil
}
