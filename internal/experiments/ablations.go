package experiments

import (
	"strings"

	"simprof/internal/core"
	"simprof/internal/exec"
	"simprof/internal/sampling"
	"simprof/internal/stats"
	"simprof/internal/workloads"
)

// The paper leaves the sampling-unit size and snapshot cadence as user
// tunables ("The sampling unit size and the frequency of a snapshot can
// be tuned based on the users' need", §III-A) and proposes combining
// SimProf with systematic sub-unit sampling as future work (§III-C).
// The ablations here quantify those dials on one workload.

// AblationRow is one sweep point of a profiling-parameter ablation.
type AblationRow struct {
	Label       string
	UnitInstr   uint64
	Snapshots   int // snapshots per unit
	Units       int
	Phases      int
	WeightedCoV float64
	SimProfErr  float64 // mean over Repeats draws, n = SampleSize
}

// ablationProfile profiles the workload at a given profiler setting and
// evaluates phase formation + SimProf accuracy.
func (s *Suite) ablationProfile(k string, unitInstr, snapEvery uint64) (AblationRow, error) {
	bench, fw, err := splitKey(k)
	if err != nil {
		return AblationRow{}, err
	}
	in, err := workloads.DefaultInput(bench, s.cfg.Opts)
	if err != nil {
		return AblationRow{}, err
	}
	cfg := s.cfg.Core
	cfg.Profiler.UnitInstr = unitInstr
	cfg.Profiler.SnapshotEvery = snapEvery
	tr, err := core.ProfileWorkload(bench, fw, in, s.cfg.Opts, cfg)
	if err != nil {
		return AblationRow{}, err
	}
	ph, err := core.FormPhases(tr, cfg)
	if err != nil {
		return AblationRow{}, err
	}
	row := AblationRow{
		UnitInstr: unitInstr,
		Snapshots: int(unitInstr / snapEvery),
		Units:     len(tr.Units),
		Phases:    ph.K,
	}
	row.WeightedCoV = ph.CoV().Weighted
	for r := 0; r < s.cfg.Repeats; r++ {
		sp, err := sampling.SimProf(ph, s.cfg.SampleSize, s.cfg.Seed+uint64(5000+r))
		if err != nil {
			return AblationRow{}, err
		}
		row.SimProfErr += sp.Err(tr) / float64(s.cfg.Repeats)
	}
	return row, nil
}

// AblationUnitSize sweeps the sampling-unit size on wc_hp. Smaller
// units mean more of them (finer coverage, more simulation overhead per
// retained instruction) and shorter snapshots windows; the paper uses
// 100M to amortize simulator warm-up.
func (s *Suite) AblationUnitSize() ([]AblationRow, error) {
	var rows []AblationRow
	for _, unit := range []uint64{2_000_000, 5_000_000, 10_000_000, 20_000_000, 50_000_000} {
		row, err := s.ablationProfile("wc_hp", unit, unit/10) // paper's 10 snapshots/unit
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// AblationSnapshotRate sweeps the snapshot cadence at a fixed 10M unit:
// too few snapshots miss short-lived call stacks and degrade phase
// separability; too many only add profiling overhead.
func (s *Suite) AblationSnapshotRate() ([]AblationRow, error) {
	const unit = 10_000_000
	var rows []AblationRow
	for _, every := range []uint64{5_000_000, 2_000_000, 1_000_000, 500_000, 250_000} {
		row, err := s.ablationProfile("wc_hp", unit, every)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// NodesRow is one sweep point of the cluster-topology ablation.
type NodesRow struct {
	Nodes       int
	OracleCPI   float64
	WeightedCoV float64
	Phases      int
}

// AblationNodes profiles wc_sp on the same 4 cores arranged as 1, 2 and
// 4 cluster nodes. More nodes mean fewer co-runners per shared LLC, so
// the contention component of both the mean CPI and the within-phase
// variance shrinks — the scale-out deployment effect on profile shape.
func (s *Suite) AblationNodes() ([]NodesRow, error) {
	in, err := workloads.DefaultInput("wc", s.cfg.Opts)
	if err != nil {
		return nil, err
	}
	var rows []NodesRow
	for _, nodes := range []int{1, 2, 4} {
		cfg := s.cfg.Core
		cfg.Machine.Nodes = nodes
		tr, err := core.ProfileWorkload("wc", "spark", in, s.cfg.Opts, cfg)
		if err != nil {
			return nil, err
		}
		ph, err := core.FormPhases(tr, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, NodesRow{
			Nodes:       nodes,
			OracleCPI:   tr.OracleCPI(),
			WeightedCoV: ph.CoV().Weighted,
			Phases:      ph.K,
		})
	}
	return rows, nil
}

// ColdStartRow is one sweep point of the simulation-warmup ablation.
type ColdStartRow struct {
	UnitInstr    uint64
	WarmupFrac   float64 // fraction of the unit spent refilling caches
	BiasedCPI    float64 // estimate a cold-started detailed simulator reports
	TrueCPI      float64
	RelativeBias float64
}

// AblationColdStart quantifies the paper's §III-A rationale for large
// (100M-instruction) sampling units: a detailed simulator starts each
// selected unit with cold caches, and the refill cost biases the
// measured CPI by warmup/unit — negligible at 100M, severe at 1M. The
// warmup model: the unit's working set must be refetched once (one miss
// per line at full memory latency), which costs roughly
// ws/line × penalty cycles spread over the unit.
func (s *Suite) AblationColdStart() ([]ColdStartRow, error) {
	ph, err := s.Phases("wc_sp")
	if err != nil {
		return nil, err
	}
	tr := ph.Trace
	trueCPI := tr.OracleCPI()
	hier := s.cfg.Core.Machine.Hier

	// Average working set to refill ≈ the LLC-resident footprint the
	// dominant phases keep live (one miss per line); prefetchers cover
	// most of the sequential refill, hence the 0.3 exposure factor.
	const prefetchExposure = 0.3
	refillCycles := float64(hier.LLC.SizeBytes/hier.LLC.LineBytes) * hier.PenaltyMem * prefetchExposure
	var rows []ColdStartRow
	for _, unit := range []uint64{1_000_000, 2_000_000, 5_000_000, 10_000_000,
		20_000_000, 50_000_000, 100_000_000} {
		warmInstr := refillCycles / trueCPI // instructions worth of refill stall
		frac := warmInstr / float64(unit)
		biased := trueCPI * (1 + frac)
		rows = append(rows, ColdStartRow{
			UnitInstr:    unit,
			WarmupFrac:   frac,
			BiasedCPI:    biased,
			TrueCPI:      trueCPI,
			RelativeBias: (biased - trueCPI) / trueCPI,
		})
	}
	return rows, nil
}

// DesignRow is one candidate machine design in the design-space
// exploration demo.
type DesignRow struct {
	Design    string
	OracleCPI float64 // full run of the workload on the design
	EstCPI    float64 // estimate from the profiled machine's 20 points
	Err       float64
}

// DesignExploration is the end use-case of SimProf: pick simulation
// points once on the profiled baseline machine, then evaluate candidate
// designs by detail-simulating *only those points* and reading the
// stratified estimate. The rows compare that estimate against the
// (normally unaffordable) full-run oracle on each design.
func (s *Suite) DesignExploration() ([]DesignRow, error) {
	const k = "wc_sp"
	ph, err := s.Phases(k)
	if err != nil {
		return nil, err
	}
	sp, err := sampling.SimProf(ph, s.cfg.SampleSize, s.cfg.Seed+77)
	if err != nil {
		return nil, err
	}
	bench, fw, err := splitKey(k)
	if err != nil {
		return nil, err
	}
	in, err := workloads.DefaultInput(bench, s.cfg.Opts)
	if err != nil {
		return nil, err
	}

	baseline := s.cfg.Core
	designs := []struct {
		label  string
		mutate func(*core.Config)
	}{
		{"baseline (10MB LLC, 220cy mem)", func(c *core.Config) {}},
		{"half LLC (5MB)", func(c *core.Config) { c.Machine.Hier.LLC.SizeBytes = 5 << 20 }},
		{"double LLC (20MB)", func(c *core.Config) { c.Machine.Hier.LLC.SizeBytes = 20 << 20 }},
		{"slow memory (330cy)", func(c *core.Config) { c.Machine.Hier.PenaltyMem = 330 }},
		{"fast memory (140cy)", func(c *core.Config) { c.Machine.Hier.PenaltyMem = 140 }},
	}
	var rows []DesignRow
	for _, d := range designs {
		cfg := baseline
		d.mutate(&cfg)
		target, err := core.ProfileWorkload(bench, fw, in, s.cfg.Opts, cfg)
		if err != nil {
			return nil, err
		}
		est, err := sampling.EstimateOnTrace(ph, sp, target)
		if err != nil {
			return nil, err
		}
		rows = append(rows, DesignRow{
			Design:    d.label,
			OracleCPI: target.OracleCPI(),
			EstCPI:    est.EstCPI,
			Err:       est.Err(target),
		})
	}
	return rows, nil
}

// GCRow is one sweep point of the garbage-collection ablation.
type GCRow struct {
	Label     string
	Phases    int
	OracleCPI float64
	// GCShare is the fraction of call-stack snapshots taken inside the
	// collector.
	GCShare float64
}

// AblationGC profiles wc_sp with the JVM garbage-collection model off
// and on at two young-generation sizes — the managed-runtime visibility
// the paper motivates SimProf's method-level phases with.
func (s *Suite) AblationGC() ([]GCRow, error) {
	configs := []struct {
		label string
		gc    exec.GCConfig
	}{
		{"GC off", exec.GCConfig{}},
		{"GC, 256MB young gen", exec.GCConfig{Enabled: true, YoungGenBytes: 256 << 20}},
		{"GC, 64MB young gen", exec.GCConfig{Enabled: true, YoungGenBytes: 64 << 20}},
	}
	in, err := workloads.DefaultInput("wc", s.cfg.Opts)
	if err != nil {
		return nil, err
	}
	var rows []GCRow
	for _, c := range configs {
		opts := s.cfg.Opts
		opts.GC = c.gc
		tr, err := core.ProfileWorkload("wc", "spark", in, opts, s.cfg.Core)
		if err != nil {
			return nil, err
		}
		ph, err := core.FormPhases(tr, s.cfg.Core)
		if err != nil {
			return nil, err
		}
		row := GCRow{Label: c.label, Phases: ph.K, OracleCPI: tr.OracleCPI()}
		// Fraction of snapshots inside the collector.
		gcFrames := map[int32]bool{}
		for _, m := range tr.Methods {
			if strings.HasPrefix(m.Class, "sun.jvm.") {
				gcFrames[int32(m.ID)] = true
			}
		}
		total, gc := 0, 0
		for _, u := range tr.Units {
			for _, snap := range u.Snapshots {
				total++
				for _, id := range snap {
					if gcFrames[int32(id)] {
						gc++
						break
					}
				}
			}
		}
		if total > 0 {
			row.GCShare = float64(gc) / float64(total)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// CombinedRow is one sweep point of the SimProf+systematic ablation.
type CombinedRow struct {
	Fraction     float64
	DetailInstr  uint64
	MarginOfErr  float64 // z·SE at the suite confidence
	SpeedupVsAll float64 // population instructions / detailed instructions
}

// AblationCombined sweeps the sub-unit systematic-sampling fraction on
// wc_hp — the paper's future-work dial trading detailed-simulation
// budget against the width of the confidence interval.
func (s *Suite) AblationCombined() ([]CombinedRow, error) {
	ph, err := s.Phases("wc_hp")
	if err != nil {
		return nil, err
	}
	popInstr := uint64(len(ph.Trace.Units)) * ph.Trace.UnitInstr
	z := stats.ZForConfidence(s.cfg.Confidence)
	var rows []CombinedRow
	for _, frac := range []float64{1, 0.5, 0.25, 0.1} {
		res, err := sampling.SimProfSystematic(ph, sampling.CombinedConfig{
			Points: s.cfg.SampleSize, SubUnitFraction: frac, Seed: s.cfg.Seed + 31,
		})
		if err != nil {
			return nil, err
		}
		rows = append(rows, CombinedRow{
			Fraction:     frac,
			DetailInstr:  res.DetailInstructions,
			MarginOfErr:  z * res.SE,
			SpeedupVsAll: float64(popInstr) / float64(res.DetailInstructions),
		})
	}
	return rows, nil
}
