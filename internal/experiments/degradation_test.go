package experiments

import (
	"testing"
)

// One workload point of the degradation curve, exercised at the clean
// and the 10% rate: the acceptance envelope is that a repaired trace at
// ≤10% faults keeps the stratified error within 2× the clean error
// (with an absolute floor — tiny quick-scale traces can have a clean
// error of ~0) and the CI still covers the clean oracle.
func TestDegradationPointAccuracyEnvelope(t *testing.T) {
	clean, err := testSuite.Trace("wc_sp")
	if err != nil {
		t.Fatal(err)
	}
	oracle := clean.OracleCPI()
	base, err := testSuite.degradationPoint("wc_sp", clean, oracle, 0)
	if err != nil {
		t.Fatal(err)
	}
	faulted, err := testSuite.degradationPoint("wc_sp", clean, oracle, 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if base.DegradedFrac != 0 {
		t.Fatalf("clean point reports %v degraded", base.DegradedFrac)
	}
	if faulted.DegradedFrac == 0 {
		t.Fatal("10%% point reports no degradation")
	}
	limit := 2 * base.SimProfErr
	if limit < 0.05 {
		limit = 0.05
	}
	if faulted.SimProfErr > limit {
		t.Fatalf("error at 10%% faults %.3f exceeds envelope %.3f (clean %.3f)",
			faulted.SimProfErr, limit, base.SimProfErr)
	}
	if faulted.CICoverage < 0.5 {
		t.Fatalf("CI coverage %.2f at 10%% faults", faulted.CICoverage)
	}
	if faulted.MeanSE < base.MeanSE {
		t.Fatalf("reported SE shrank under faults: %.4f < %.4f — fabricated precision",
			faulted.MeanSE, base.MeanSE)
	}
}

// The curve is a pure function of the seed: same suite config, same
// rows, bit for bit.
func TestDegradationPointDeterministic(t *testing.T) {
	clean, err := testSuite.Trace("sort_sp")
	if err != nil {
		t.Fatal(err)
	}
	oracle := clean.OracleCPI()
	a, err := testSuite.degradationPoint("sort_sp", clean, oracle, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	b, err := testSuite.degradationPoint("sort_sp", clean, oracle, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("degradation point not deterministic:\n%+v\n%+v", a, b)
	}
}
