package experiments

import (
	"fmt"

	"simprof/internal/core"
	"simprof/internal/faults"
	"simprof/internal/sampling"
	"simprof/internal/stats"
	"simprof/internal/trace"
)

// The profiler that feeds SimProf is itself a measurement system, and
// real deployments of it fail in well-documented ways: multiplexed PMU
// counters drop or scale readings, agent snapshots get lost under load,
// and executor crashes truncate thread streams (see DESIGN.md §9). The
// degradation ablation injects those faults at increasing rates and
// re-runs the full phases → stratified-sampling pipeline on the
// repaired trace, measuring how much estimation accuracy survives and
// whether the reported confidence intervals stay honest.

// DegradationRow is one (workload, fault-rate) point of the curve.
type DegradationRow struct {
	Workload     string
	FaultRate    float64 // faults.Uniform rate fed to the injector
	DegradedFrac float64 // fraction of units carrying a quality flag
	Units        int     // units surviving repair
	Phases       int
	SimProfErr   float64 // mean |est-oracle|/oracle over Repeats draws
	MeanSE       float64 // mean reported stratified SE
	CICoverage   float64 // fraction of draws whose bootstrap CI covers the clean oracle
	SEInflation  float64 // mean imputation widening factor (1 = none)
}

// DegradationRates is the fault-rate sweep of the ablation.
var DegradationRates = []float64{0, 0.05, 0.10, 0.20}

// degradationWorkloads are the three workloads the curve is reported
// on: a shuffle-light scan (wc), a shuffle-heavy sort, and an iterative
// graph workload (cc).
var degradationWorkloads = []string{"wc_sp", "sort_sp", "cc_sp"}

// AblationDegradation sweeps fault rates over wc/sort/cc. Every rate
// reuses the same clean profiled trace; the injected faults, the repair
// and the downstream pipeline are all seeded, so the curve is
// bit-reproducible at any worker count.
func (s *Suite) AblationDegradation() ([]DegradationRow, error) {
	var rows []DegradationRow
	for _, k := range degradationWorkloads {
		clean, err := s.Trace(k)
		if err != nil {
			return nil, err
		}
		oracle := clean.OracleCPI()
		for _, rate := range DegradationRates {
			row, err := s.degradationPoint(k, clean, oracle, rate)
			if err != nil {
				return nil, fmt.Errorf("experiments: degradation %s@%.2f: %w", k, rate, err)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// degradationPoint injects faults at one rate, repairs, re-forms phases
// and draws Repeats stratified samples.
func (s *Suite) degradationPoint(k string, clean *trace.Trace, oracle, rate float64) (DegradationRow, error) {
	tr := clean
	if rate > 0 {
		fcfg := faults.Uniform(rate, stats.SplitSeed(s.cfg.Seed, 0xfa))
		faulty, _, err := faults.Apply(clean, fcfg)
		if err != nil {
			return DegradationRow{}, err
		}
		if _, err := faulty.Repair(); err != nil {
			return DegradationRow{}, err
		}
		tr = faulty
	}
	ph, err := core.FormPhases(tr, s.cfg.Core)
	if err != nil {
		return DegradationRow{}, err
	}
	row := DegradationRow{
		Workload:     k,
		FaultRate:    rate,
		DegradedFrac: ph.DegradedFraction(),
		Units:        len(tr.Units),
		Phases:       ph.K,
	}
	reps := float64(s.cfg.Repeats)
	for r := 0; r < s.cfg.Repeats; r++ {
		sp, err := sampling.SimProf(ph, s.cfg.SampleSize, s.cfg.Seed+uint64(7000+r))
		if err != nil {
			return DegradationRow{}, err
		}
		row.SimProfErr += stats.RelErr(sp.EstCPI, oracle) / reps
		row.MeanSE += sp.SE / reps
		row.SEInflation += sp.SEInflation / reps
		ci := sp.BootstrapCI(s.cfg.Confidence, 1000, s.cfg.Seed+uint64(8000+r))
		if ci.Contains(oracle) {
			row.CICoverage += 1 / reps
		}
	}
	return row, nil
}
