package batch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatalf("timed out waiting for %s", msg)
}

func TestIdleFastPathExecutesImmediately(t *testing.T) {
	g := NewGroup(Config[string, int, int]{
		MaxWait: time.Hour, // the idle fast path must not wait for this
		Exec: func(ctx context.Context, key string, p int) (int, error) {
			return p * 2, nil
		},
	})
	defer g.Stop()
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, res, err := g.Do(context.Background(), "k", 21)
		if err != nil || v != 42 {
			t.Errorf("Do = (%d, %v), want (42, nil)", v, err)
		}
		if res.Source != Miss {
			t.Errorf("Source = %v, want Miss", res.Source)
		}
		if res.BatchSize != 1 {
			t.Errorf("BatchSize = %d, want 1", res.BatchSize)
		}
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("idle Do did not complete promptly despite MaxWait=1h")
	}
}

func TestCoalesceSharesOneExec(t *testing.T) {
	var execs atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	g := NewGroup(Config[string, int, int]{
		Exec: func(ctx context.Context, key string, p int) (int, error) {
			execs.Add(1)
			close(started)
			<-release
			return p + 1, nil
		},
	})
	defer g.Stop()

	results := make(chan Source, 3)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, res, err := g.Do(context.Background(), "k", 1)
		if err != nil {
			t.Errorf("leader Do: %v", err)
		}
		results <- res.Source
	}()
	<-started
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, res, err := g.Do(context.Background(), "k", 1)
			if err != nil || v != 2 {
				t.Errorf("follower Do = (%d, %v), want (2, nil)", v, err)
			}
			results <- res.Source
		}()
	}
	waitFor(t, 2*time.Second, func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		return g.flights["k"] != nil && g.flights["k"].refs == 3
	}, "followers to join the flight")
	close(release)
	wg.Wait()

	if n := execs.Load(); n != 1 {
		t.Fatalf("exec ran %d times, want 1", n)
	}
	srcs := map[Source]int{}
	for i := 0; i < 3; i++ {
		srcs[<-results]++
	}
	if srcs[Miss] != 1 || srcs[Coalesced] != 2 {
		t.Fatalf("sources = %v, want 1 Miss + 2 Coalesced", srcs)
	}
}

func TestLeaderCancelHandsOffToFollower(t *testing.T) {
	started := make(chan struct{})
	release := make(chan struct{})
	var execCtx context.Context
	g := NewGroup(Config[string, int, int]{
		Exec: func(ctx context.Context, key string, p int) (int, error) {
			execCtx = ctx
			close(started)
			select {
			case <-release:
				return 7, nil
			case <-ctx.Done():
				return 0, ctx.Err()
			}
		},
	})
	defer g.Stop()

	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, _, err := g.Do(leaderCtx, "k", 0)
		leaderDone <- err
	}()
	<-started

	followerDone := make(chan error, 1)
	var followerRes Result
	go func() {
		_, res, err := g.Do(context.Background(), "k", 0)
		followerRes = res
		followerDone <- err
	}()
	waitFor(t, 2*time.Second, func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		return g.flights["k"] != nil && g.flights["k"].refs == 2
	}, "follower to join the flight")

	// Cancel the leader: it must return its own context error, and the
	// execution must keep running for the follower.
	cancelLeader()
	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader err = %v, want context.Canceled", err)
	}
	select {
	case <-execCtx.Done():
		t.Fatal("flight context canceled while a follower still waits")
	case <-time.After(20 * time.Millisecond):
	}

	close(release)
	if err := <-followerDone; err != nil {
		t.Fatalf("follower err = %v, want nil (handed-off result)", err)
	}
	if followerRes.Source != Coalesced {
		t.Fatalf("follower Source = %v, want Coalesced", followerRes.Source)
	}
}

func TestAllWaitersGoneCancelsFlight(t *testing.T) {
	started := make(chan struct{})
	execDone := make(chan error, 1)
	g := NewGroup(Config[string, int, int]{
		Exec: func(ctx context.Context, key string, p int) (int, error) {
			close(started)
			<-ctx.Done()
			execDone <- ctx.Err()
			return 0, ctx.Err()
		},
	})
	defer g.Stop()

	ctx, cancel := context.WithCancel(context.Background())
	go g.Do(ctx, "k", 0)
	<-started
	cancel()
	select {
	case err := <-execDone:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("exec ctx err = %v, want Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("flight context never canceled after the last waiter left")
	}
}

func TestCacheHitSkipsExec(t *testing.T) {
	var execs atomic.Int64
	g := NewGroup(Config[string, int, string]{
		Cache: NewCache[string, string](8, 1<<20),
		Size:  func(v string) int64 { return int64(len(v)) },
		Exec: func(ctx context.Context, key string, p int) (string, error) {
			execs.Add(1)
			return fmt.Sprintf("v%d", p), nil
		},
	})
	defer g.Stop()

	v1, res1, err := g.Do(context.Background(), "k", 5)
	if err != nil || res1.Source != Miss {
		t.Fatalf("first Do = (%q, %v, %v), want miss", v1, res1.Source, err)
	}
	v2, res2, err := g.Do(context.Background(), "k", 5)
	if err != nil || v2 != v1 {
		t.Fatalf("second Do = (%q, %v), want (%q, nil)", v2, err, v1)
	}
	if res2.Source != Hit {
		t.Fatalf("second Source = %v, want Hit", res2.Source)
	}
	if n := execs.Load(); n != 1 {
		t.Fatalf("exec ran %d times, want 1", n)
	}
}

func TestErrorsAreNotCached(t *testing.T) {
	var execs atomic.Int64
	boom := errors.New("boom")
	g := NewGroup(Config[string, int, int]{
		Cache: NewCache[string, int](8, 1<<20),
		Exec: func(ctx context.Context, key string, p int) (int, error) {
			if execs.Add(1) == 1 {
				return 0, boom
			}
			return 9, nil
		},
	})
	defer g.Stop()

	if _, _, err := g.Do(context.Background(), "k", 0); !errors.Is(err, boom) {
		t.Fatalf("first Do err = %v, want boom", err)
	}
	v, _, err := g.Do(context.Background(), "k", 0)
	if err != nil || v != 9 {
		t.Fatalf("second Do = (%d, %v), want (9, nil): error was cached", v, err)
	}
}

func TestSizeFlushAtMaxBatch(t *testing.T) {
	block := make(chan struct{})
	var execs atomic.Int64
	g := NewGroup(Config[int, int, int]{
		MaxBatch: 2,
		MaxWait:  time.Hour,
		Exec: func(ctx context.Context, key int, p int) (int, error) {
			execs.Add(1)
			if key == 0 { // the blocker that keeps the group busy
				<-block
			}
			return key, nil
		},
	})
	defer g.Stop()

	// Occupy the group so later enqueues batch instead of fast-pathing.
	go g.Do(context.Background(), 0, 0)
	waitFor(t, 2*time.Second, func() bool { return execs.Load() == 1 }, "blocker to start")

	var wg sync.WaitGroup
	sizes := make(chan int, 2)
	for k := 1; k <= 2; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			_, res, err := g.Do(context.Background(), k, 0)
			if err != nil {
				t.Errorf("Do(%d): %v", k, err)
			}
			sizes <- res.BatchSize
		}(k)
	}
	// With MaxWait=1h the only way these complete is the size flush.
	wg.Wait()
	close(block)
	for i := 0; i < 2; i++ {
		if s := <-sizes; s != 2 {
			t.Fatalf("BatchSize = %d, want 2 (size-triggered flush)", s)
		}
	}
}

func TestMaxWaitFlush(t *testing.T) {
	block := make(chan struct{})
	var execs atomic.Int64
	g := NewGroup(Config[int, int, int]{
		MaxBatch: 64,
		MaxWait:  5 * time.Millisecond,
		Exec: func(ctx context.Context, key int, p int) (int, error) {
			execs.Add(1)
			if key == 0 {
				<-block
			}
			return key, nil
		},
	})
	defer g.Stop()

	go g.Do(context.Background(), 0, 0)
	waitFor(t, 2*time.Second, func() bool { return execs.Load() == 1 }, "blocker to start")

	start := time.Now()
	_, res, err := g.Do(context.Background(), 1, 0)
	close(block)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if res.BatchSize != 1 {
		t.Fatalf("BatchSize = %d, want 1 (deadline flush of a lone item)", res.BatchSize)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline flush took %v", elapsed)
	}
}

// fakeTicket counts Start/Done to check batch items hold admission
// for exactly the execution.
type fakeTicket struct {
	started atomic.Int64
	done    atomic.Int64
}

func (t *fakeTicket) Start(ctx context.Context) error { t.started.Add(1); return nil }
func (t *fakeTicket) Done()                           { t.done.Add(1) }

func TestAdmitRefusalAtEnqueue(t *testing.T) {
	overload := errors.New("overloaded")
	var admitted atomic.Int64
	tk := &fakeTicket{}
	g := NewGroup(Config[int, int, int]{
		Admit: func() (Ticket, error) {
			if admitted.Add(1) > 1 {
				return nil, overload
			}
			return tk, nil
		},
		Exec: func(ctx context.Context, key int, p int) (int, error) {
			time.Sleep(5 * time.Millisecond)
			return key, nil
		},
	})
	defer g.Stop()

	done := make(chan error, 1)
	go func() {
		_, _, err := g.Do(context.Background(), 1, 0)
		done <- err
	}()
	waitFor(t, 2*time.Second, func() bool { return admitted.Load() == 1 }, "first admit")

	// Distinct key while the first runs: refused at enqueue, verbatim.
	_, _, err := g.Do(context.Background(), 2, 0)
	if !errors.Is(err, overload) {
		t.Fatalf("second Do err = %v, want the Admit error verbatim", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("first Do err = %v", err)
	}
	if tk.started.Load() != 1 || tk.done.Load() != 1 {
		t.Fatalf("ticket Start/Done = %d/%d, want 1/1", tk.started.Load(), tk.done.Load())
	}
}

func TestStopFlushesPending(t *testing.T) {
	block := make(chan struct{})
	var execs atomic.Int64
	g := NewGroup(Config[int, int, int]{
		MaxBatch: 64,
		MaxWait:  time.Hour,
		Exec: func(ctx context.Context, key int, p int) (int, error) {
			execs.Add(1)
			if key == 0 {
				<-block
			}
			return key, nil
		},
	})

	go g.Do(context.Background(), 0, 0)
	waitFor(t, 2*time.Second, func() bool { return execs.Load() == 1 }, "blocker to start")

	done := make(chan error, 1)
	go func() {
		_, _, err := g.Do(context.Background(), 1, 0)
		done <- err
	}()
	waitFor(t, 2*time.Second, func() bool {
		g.mu.Lock()
		defer g.mu.Unlock()
		return len(g.pending) == 1
	}, "item to pend")

	g.Stop()
	if err := <-done; err != nil {
		t.Fatalf("pending Do after Stop: %v", err)
	}
	close(block)
}

func TestCacheEntryBound(t *testing.T) {
	c := NewCache[int, int](2, 1<<20)
	c.Put(1, 1, 1)
	c.Put(2, 2, 1)
	c.Put(3, 3, 1)
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if _, ok := c.Get(1); ok {
		t.Fatal("oldest entry survived the entry bound")
	}
	for _, k := range []int{2, 3} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("entry %d missing", k)
		}
	}
}

func TestCacheByteBound(t *testing.T) {
	c := NewCache[string, string](100, 100)
	c.Put("a", "a", 60)
	c.Put("b", "b", 30)
	if got := c.Bytes(); got != 90 {
		t.Fatalf("Bytes = %d, want 90", got)
	}
	// 40 more breaches the 100-byte budget: "a" (cold end) must go.
	c.Put("c", "c", 40)
	if _, ok := c.Get("a"); ok {
		t.Fatal("cold entry survived the byte bound")
	}
	if got := c.Bytes(); got != 70 {
		t.Fatalf("Bytes after eviction = %d, want 70", got)
	}
	// Recency: touch "b", then overflow — "c" should be the victim.
	c.Get("b")
	c.Put("d", "d", 50)
	if _, ok := c.Get("c"); ok {
		t.Fatal("LRU order ignored recency refresh")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("recently used entry evicted")
	}
}

func TestCacheOversizeValueNotAdmitted(t *testing.T) {
	c := NewCache[string, string](10, 100)
	c.Put("small", "s", 10)
	c.Put("huge", "h", 101)
	if _, ok := c.Get("huge"); ok {
		t.Fatal("value larger than the whole byte budget was admitted")
	}
	if _, ok := c.Get("small"); !ok {
		t.Fatal("oversize Put evicted resident entries")
	}
}

func TestCacheUpdateInPlace(t *testing.T) {
	c := NewCache[string, string](10, 100)
	c.Put("k", "old", 40)
	c.Put("k", "new", 60)
	if v, ok := c.Get("k"); !ok || v != "new" {
		t.Fatalf("Get = (%q, %v), want updated value", v, ok)
	}
	if c.Len() != 1 || c.Bytes() != 60 {
		t.Fatalf("Len/Bytes = %d/%d, want 1/60", c.Len(), c.Bytes())
	}
}
