// Package batch is simprofd's high-throughput request path: a
// content-keyed result cache, singleflight coalescing of identical
// in-flight requests, and a bounded batcher that flushes enqueued
// distinct requests into a single worker-pool pass.
//
// The observation driving it is the paper's own: analytic workloads
// are massively redundant, so at fleet scale most profile uploads are
// byte-identical to one the service has already processed. The three
// layers exploit that redundancy at three timescales:
//
//   - the Cache answers repeats of *completed* work in microseconds
//     (bounded by entries and resident bytes, LRU beyond that);
//   - a flight deduplicates *concurrent* identical work: one
//     execution, every waiter shares the result. Each waiter keeps its
//     own context — a canceled leader hands the flight off to the
//     surviving followers, and the flight's execution context cancels
//     only when the last waiter has left;
//   - the Batcher absorbs *bursts* of distinct work: items flush as
//     one pass when the batch fills (MaxBatch), when the oldest item
//     has waited MaxWait, or immediately when the group is idle (no
//     batching latency on an unloaded service).
//
// Admission composes at enqueue: Config.Admit runs before an item can
// sit in a batch, so an overloaded service refuses (429) immediately
// instead of timing requests out mid-flush.
//
// Determinism contract: batching and caching change *when and how
// often* Exec runs, never what it returns — callers get bit-identical
// results batched or unbatched, cached or computed, which the server's
// determinism suite enforces.
package batch

import (
	"context"
	"sync"
	"time"

	"simprof/internal/obs"
)

var (
	obsCacheHits = obs.NewCounter("batch.cache_hits",
		"requests served from the dedup result cache")
	obsCacheMisses = obs.NewCounter("batch.cache_misses",
		"requests that missed the dedup result cache")
	obsCoalesced = obs.NewCounter("batch.coalesced",
		"requests that joined an identical in-flight execution")
	obsFlights = obs.NewCounter("batch.flights",
		"deduplicated executions started (one per distinct in-flight key)")
	obsFlushes = obs.NewCounter("batch.flushes",
		"batch flush passes")
	obsFlushSize = obs.NewHistogram("batch.flush_size",
		"items per flush pass", 1, 2, 4, 8, 16, 32, 64)
	obsStageSeconds = obs.NewHistogramVec("batch.stage_seconds",
		"batching stage timings: enqueue_wait (enqueue to flush), exec (pipeline execution), commit (flush to completed result)",
		[]string{"stage"},
		0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5)
)

// Source says how a request's result was produced, and is surfaced to
// clients as the X-Simprof-Cache response header.
type Source int

const (
	// Miss: this request's own flight executed the work.
	Miss Source = iota
	// Hit: served from the result cache, no execution.
	Hit
	// Coalesced: shared an identical concurrent request's execution.
	Coalesced
)

// String renders the source as the response-header token.
func (s Source) String() string {
	switch s {
	case Hit:
		return "hit"
	case Coalesced:
		return "coalesced"
	default:
		return "miss"
	}
}

// Result is the per-request bookkeeping Do returns beside the value:
// where the result came from and, for executed flights, the batching
// timeline (enqueue→flush wait, execution time, flush→commit total,
// and how many items shared the flush pass).
type Result struct {
	Source      Source
	EnqueueWait time.Duration // enqueue → flush (zero for cache hits)
	Exec        time.Duration // Exec call duration
	Commit      time.Duration // flush → result committed
	BatchSize   int           // items in the flush pass (0 for cache hits)
}

// Ticket is the admission handle an item holds from enqueue to
// completion. resilience.Admission's *Ticket satisfies it: Start
// blocks until an execution slot frees, Done releases it.
type Ticket interface {
	Start(ctx context.Context) error
	Done()
}

// Config tunes a Group.
type Config[K comparable, P, V any] struct {
	// MaxBatch flushes a batch when it holds this many distinct items
	// (default 8).
	MaxBatch int
	// MaxWait flushes a non-empty batch this long after its first item
	// enqueued (default 2ms). The wait only applies under load: an
	// idle group flushes immediately.
	MaxWait time.Duration
	// Exec runs one item. ctx is the flight context: it cancels only
	// when every request waiting on the item has left, so a canceled
	// leader with live followers does not abort the work.
	Exec func(ctx context.Context, key K, payload P) (V, error)
	// Size estimates a successful result's resident bytes for the
	// cache budget (nil charges 1 per entry).
	Size func(V) int64
	// Cache, when non-nil, memoizes successful results by key. Errors
	// are never cached.
	Cache *Cache[K, V]
	// Admit gates enqueue: it must claim capacity without blocking or
	// refuse with a typed error that Do returns verbatim. nil admits
	// everything.
	Admit func() (Ticket, error)
	// Clock stamps the batching timeline (injectable for tests). The
	// MaxWait flush itself rides a real timer regardless.
	Clock func() time.Time
}

// item is one enqueued distinct request.
type item[K comparable, P, V any] struct {
	key       K
	payload   P
	fl        *flight[V]
	ticket    Ticket
	enqueued  time.Time
	flushed   time.Time
	batchSize int
}

// Group composes the cache, the flights and the batcher over one Exec.
type Group[K comparable, P, V any] struct {
	cfg Config[K, P, V]

	mu      sync.Mutex
	flights map[K]*flight[V]
	pending []*item[K, P, V]
	timer   *time.Timer
	running int // items currently executing (flushed, not yet committed)
	stopped bool
}

// NewGroup builds a Group. Exec is required.
func NewGroup[K comparable, P, V any](cfg Config[K, P, V]) *Group[K, P, V] {
	if cfg.Exec == nil {
		panic("batch: Config.Exec is required")
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 8
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = 2 * time.Millisecond
	}
	return &Group[K, P, V]{cfg: cfg, flights: map[K]*flight[V]{}}
}

func (g *Group[K, P, V]) now() time.Time {
	if g.cfg.Clock != nil {
		return g.cfg.Clock()
	}
	return time.Now()
}

// Do resolves one request: cache hit, join of an identical in-flight
// request, or a new admitted-batched-executed flight. ctx bounds only
// this caller's wait — abandoning a shared flight leaves it running
// for the other waiters.
func (g *Group[K, P, V]) Do(ctx context.Context, key K, payload P) (V, Result, error) {
	var zero V
	if g.cfg.Cache != nil {
		if v, ok := g.cfg.Cache.Get(key); ok {
			obsCacheHits.Inc()
			return v, Result{Source: Hit}, nil
		}
	}
	obsCacheMisses.Inc()

	g.mu.Lock()
	if fl, ok := g.flights[key]; ok {
		fl.refs++
		g.mu.Unlock()
		obsCoalesced.Inc()
		return g.wait(ctx, fl, Coalesced)
	}
	// Re-check the cache under the group lock: a flight for this key
	// may have committed between the lock-free probe above and here.
	if g.cfg.Cache != nil {
		if v, ok := g.cfg.Cache.Get(key); ok {
			g.mu.Unlock()
			obsCacheHits.Inc()
			return v, Result{Source: Hit}, nil
		}
	}

	// New flight. Admission happens now — at enqueue — so overload is
	// refused before the item can sit in a batch.
	var ticket Ticket
	if g.cfg.Admit != nil {
		t, err := g.cfg.Admit()
		if err != nil {
			g.mu.Unlock()
			return zero, Result{Source: Miss}, err
		}
		ticket = t
	}
	fctx, cancel := context.WithCancel(context.Background())
	fl := &flight[V]{done: make(chan struct{}), ctx: fctx, cancel: cancel, refs: 1}
	g.flights[key] = fl
	it := &item[K, P, V]{key: key, payload: payload, fl: fl, ticket: ticket, enqueued: g.now()}
	g.enqueueLocked(it)
	g.mu.Unlock()
	obsFlights.Inc()
	return g.wait(ctx, fl, Miss)
}

// enqueueLocked appends the item and applies the flush rules: size
// (MaxBatch), deadline (MaxWait from the first pending item), and the
// idle fast path (nothing executing → flush now; waiting could not
// improve batching and would only add latency).
func (g *Group[K, P, V]) enqueueLocked(it *item[K, P, V]) {
	g.pending = append(g.pending, it)
	switch {
	case len(g.pending) >= g.cfg.MaxBatch || g.stopped:
		g.flushLocked()
	case len(g.pending) == 1:
		if g.running == 0 {
			g.flushLocked()
		} else {
			g.timer = time.AfterFunc(g.cfg.MaxWait, g.flushTimer)
		}
	}
}

// flushTimer is the MaxWait deadline firing.
func (g *Group[K, P, V]) flushTimer() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.flushLocked()
}

// flushLocked dispatches the pending batch as one pass: every item
// gets a goroutine whose execution slot comes from its admission
// ticket, so the pass's concurrency is bounded by the admission gate's
// workers while queued items drain as slots free.
func (g *Group[K, P, V]) flushLocked() {
	if g.timer != nil {
		g.timer.Stop()
		g.timer = nil
	}
	batch := g.pending
	g.pending = nil
	if len(batch) == 0 {
		return
	}
	g.running += len(batch)
	obsFlushes.Inc()
	obsFlushSize.Observe(float64(len(batch)))
	now := g.now()
	for _, it := range batch {
		it.flushed = now
		it.batchSize = len(batch)
		go g.runItem(it)
	}
}

// runItem executes one flushed item and commits its flight.
func (g *Group[K, P, V]) runItem(it *item[K, P, V]) {
	fl := it.fl
	res := Result{
		Source:      Miss,
		EnqueueWait: it.flushed.Sub(it.enqueued),
		BatchSize:   it.batchSize,
	}
	obsStageSeconds.With("enqueue_wait").Observe(res.EnqueueWait.Seconds())

	var v V
	var err error
	if it.ticket != nil {
		err = it.ticket.Start(fl.ctx)
	}
	if err == nil {
		execStart := g.now()
		v, err = g.cfg.Exec(fl.ctx, it.key, it.payload)
		res.Exec = g.now().Sub(execStart)
		obsStageSeconds.With("exec").Observe(res.Exec.Seconds())
	}
	if it.ticket != nil {
		it.ticket.Done()
	}
	if err == nil && g.cfg.Cache != nil {
		g.cfg.Cache.Put(it.key, v, g.sizeOf(v))
	}
	res.Commit = g.now().Sub(it.flushed)
	obsStageSeconds.With("commit").Observe(res.Commit.Seconds())

	g.mu.Lock()
	g.running--
	if g.flights[it.key] == fl {
		delete(g.flights, it.key)
	}
	g.mu.Unlock()
	fl.commit(v, err, res)
}

func (g *Group[K, P, V]) sizeOf(v V) int64 {
	if g.cfg.Size == nil {
		return 1
	}
	return g.cfg.Size(v)
}

// wait blocks until the flight commits or this caller's ctx ends.
func (g *Group[K, P, V]) wait(ctx context.Context, fl *flight[V], src Source) (V, Result, error) {
	select {
	case <-fl.done:
		res := fl.res
		res.Source = src
		return fl.v, res, fl.err
	case <-ctx.Done():
		g.leave(fl)
		var zero V
		return zero, Result{Source: src}, ctx.Err()
	}
}

// leave records one waiter abandoning the flight; the last one out
// cancels the flight context, aborting the execution.
func (g *Group[K, P, V]) leave(fl *flight[V]) {
	g.mu.Lock()
	fl.refs--
	last := fl.refs == 0
	g.mu.Unlock()
	if last {
		fl.cancel()
	}
}

// Stats reports the group's live state: distinct in-flight keys, the
// total requests waiting on them, items pending flush, and items
// executing. For health endpoints and tests.
func (g *Group[K, P, V]) Stats() (flights, waiters, pending, running int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, fl := range g.flights {
		waiters += fl.refs
	}
	return len(g.flights), waiters, len(g.pending), g.running
}

// Stop flushes any pending batch immediately and puts the group in
// flush-through mode (every later enqueue dispatches at once), so no
// waiter can hang on a timer that will never matter again. In-flight
// executions finish normally. Safe to call more than once.
func (g *Group[K, P, V]) Stop() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.stopped = true
	g.flushLocked()
}
