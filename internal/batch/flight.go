package batch

import "context"

// flight is one deduplicated execution: the first request for a key
// creates it, identical concurrent requests join it, and everyone
// shares the committed result. refs counts the waiters (guarded by the
// group lock); the flight context cancels only when refs hits zero, so
// a canceled leader hands the work off to its followers instead of
// killing it, and a canceled follower takes nothing down with it.
type flight[V any] struct {
	done   chan struct{}
	ctx    context.Context
	cancel context.CancelFunc
	refs   int

	// Set by commit before done closes; immutable afterwards.
	v   V
	err error
	res Result
}

// commit publishes the result and releases the flight's context.
func (f *flight[V]) commit(v V, err error, res Result) {
	f.v, f.err, f.res = v, err, res
	close(f.done)
	f.cancel()
}
