package batch

import (
	"container/list"
	"sync"

	"simprof/internal/obs"
)

var (
	obsCacheEvictions = obs.NewCounter("batch.cache_evictions",
		"entries evicted from the dedup result cache (entry or byte bound)")
	obsCacheBytes = obs.NewGauge("batch.cache_bytes",
		"resident bytes charged to the dedup result cache")
	obsCacheEntries = obs.NewGauge("batch.cache_entries",
		"entries resident in the dedup result cache")
)

// Cache is an LRU result cache bounded two ways at once: at most
// maxEntries values, charging at most maxBytes of resident size (per
// Config.Size estimates). Whichever bound trips first evicts from the
// cold end. Both bounds matter because profile responses vary by
// orders of magnitude: a byte budget alone admits millions of tiny
// entries (map overhead unaccounted), an entry budget alone lets a few
// huge manifests pin the heap.
type Cache[K comparable, V any] struct {
	mu         sync.Mutex
	maxEntries int
	maxBytes   int64
	bytes      int64
	ll         *list.List // front = most recent
	m          map[K]*list.Element
}

// entry is one resident value with its charged size.
type entry[K comparable, V any] struct {
	key  K
	v    V
	size int64
}

// NewCache builds a cache holding at most maxEntries values and
// maxBytes of charged size. maxEntries < 1 behaves as 512; maxBytes
// < 1 as 64 MiB.
func NewCache[K comparable, V any](maxEntries int, maxBytes int64) *Cache[K, V] {
	if maxEntries < 1 {
		maxEntries = 512
	}
	if maxBytes < 1 {
		maxBytes = 64 << 20
	}
	return &Cache[K, V]{
		maxEntries: maxEntries,
		maxBytes:   maxBytes,
		ll:         list.New(),
		m:          make(map[K]*list.Element),
	}
}

// Get returns the cached value for key, refreshing its recency.
func (c *Cache[K, V]) Get(key K) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		c.ll.MoveToFront(el)
		return el.Value.(*entry[K, V]).v, true
	}
	var zero V
	return zero, false
}

// Put inserts or refreshes key with the given charged size. size < 1
// charges 1 (every entry costs something); a value bigger than the
// whole byte budget is not admitted at all — caching it would evict
// everything else for a single entry with near-zero reuse odds.
func (c *Cache[K, V]) Put(key K, v V, size int64) {
	if size < 1 {
		size = 1
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if size > c.maxBytes {
		return
	}
	if el, ok := c.m[key]; ok {
		e := el.Value.(*entry[K, V])
		c.bytes += size - e.size
		e.v, e.size = v, size
		c.ll.MoveToFront(el)
	} else {
		c.m[key] = c.ll.PushFront(&entry[K, V]{key: key, v: v, size: size})
		c.bytes += size
	}
	for c.ll.Len() > c.maxEntries || c.bytes > c.maxBytes {
		c.evictOldestLocked()
	}
	obsCacheBytes.Set(float64(c.bytes))
	obsCacheEntries.Set(float64(c.ll.Len()))
}

// evictOldestLocked drops the least recently used entry.
func (c *Cache[K, V]) evictOldestLocked() {
	el := c.ll.Back()
	if el == nil {
		return
	}
	e := el.Value.(*entry[K, V])
	c.ll.Remove(el)
	delete(c.m, e.key)
	c.bytes -= e.size
	obsCacheEvictions.Inc()
}

// Len reports the resident entry count.
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes reports the charged resident size.
func (c *Cache[K, V]) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}
