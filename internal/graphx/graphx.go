// Package graphx is a GraphX-lite layer over the Spark engine: graphs
// loaded from edge lists, and Pregel-style iterative algorithms
// (connected components, PageRank) expressed as chains of edge scans,
// aggregateUsingIndex shuffles and vertex joins. These are exactly the
// operations the paper singles out in cc_sp's phase anatomy (Fig. 11):
// mapPartitionsWithIndex sequentially parsing input (low CPI variance)
// versus aggregateUsingIndex's random vertex-index access (high, and
// input-sensitive, variance).
package graphx

import (
	"fmt"
	"math"

	"simprof/internal/cpu"
	"simprof/internal/exec"
	"simprof/internal/model"
	"simprof/internal/spark"
	"simprof/internal/synth"
)

// Graph wraps the RDD lineage of a property graph.
type Graph struct {
	ctx   *spark.Context
	input synth.InputStats
	edges *spark.RDD // edge-scale RDD after loading
	parts int
}

// Load parses an edge-list input into edge partitions. The parse phase
// is the sequential mapPartitionsWithIndex scan the paper describes as
// cc_sp's low-variance phase.
func Load(ctx *spark.Context, in synth.InputStats, parts int) (*Graph, error) {
	if in.Vertices <= 0 {
		return nil, fmt.Errorf("graphx: input %q is not a graph (no vertices)", in.Name)
	}
	lines := ctx.TextFile(in, parts)
	parse := exec.FuncSpec{
		Class: "org.apache.spark.graphx.GraphLoader$$anonfun$1", Method: "apply",
		Kind: model.KindMap, InstrPerRec: 60, BaseCPI: 0.55,
		Pattern: cpu.PatternSequential,
		WS:      exec.WorkingSet{Kind: exec.WSPartitionBytes},
		Refs:    0.3,
	}
	parsed := lines.MapPartitionsWithIndex(parse)
	build := exec.FuncSpec{
		Class: "org.apache.spark.graphx.impl.EdgePartitionBuilder", Method: "toEdgePartition",
		Kind: model.KindMap, InstrPerRec: 35, BaseCPI: 0.6,
		Pattern: cpu.PatternSequential,
		WS:      exec.WorkingSet{Kind: exec.WSPartitionBytes},
		Refs:    0.3,
	}
	edges := parsed.MapPartitionsWithIndex(build)
	return &Graph{ctx: ctx, input: in, edges: edges, parts: parts}, nil
}

// Edges returns the edge RDD.
func (g *Graph) Edges() *spark.RDD { return g.edges }

// vertexBytes is the per-vertex footprint of the vertex index
// (id, attribute, hash-map slot).
const vertexBytes = 32

// aggSpec builds the aggregateUsingIndex reduce-side spec: random
// probes over the vertex index, whose effective size shrinks when the
// degree distribution is skewed (hub vertices concentrate messages) and
// when only a frontier fraction of vertices is active.
func (g *Graph) aggSpec(instrPerRec float64, activeFrac float64) exec.FuncSpec {
	scale := activeFrac
	if scale <= 0 {
		scale = 1e-3
	}
	return exec.FuncSpec{
		Class: "org.apache.spark.graphx.impl.VertexPartitionBaseOps", Method: "aggregateUsingIndex",
		Kind: model.KindReduce, InstrPerRec: instrPerRec, BaseCPI: 0.65,
		Pattern: cpu.PatternRandom,
		WS: exec.WorkingSet{
			Kind:        exec.WSDistinctKeys,
			BytesPerKey: vertexBytes,
			Scale:       scale,
			SkewShrink:  0.5,
		},
		Refs: 0.05,
	}
}

// iteration appends one Pregel superstep to the lineage: scan edges to
// generate messages (narrow, edge-scale), aggregate them into the
// vertex index (shuffle), and join the results back into the vertex
// attributes (narrow, vertex-scale). activeFrac scales the message
// volume; cur must be vertex-scale (the previous iteration's output).
func (g *Graph) iteration(cur *spark.RDD, activeFrac float64, aggInstr float64) *spark.RDD {
	edgesPerVertex := float64(g.input.Records) / float64(g.input.Vertices)
	// The scan walks the active edges, so its per-input-record (vertex)
	// cost is the per-message cost times the messages it generates.
	scan := exec.FuncSpec{
		Class: "org.apache.spark.graphx.impl.ReplicatedVertexView", Method: "upgrade",
		Kind: model.KindMap, InstrPerRec: 30 * edgesPerVertex * activeFrac, BaseCPI: 0.6,
		Pattern:     cpu.PatternSequential,
		WS:          exec.WorkingSet{Kind: exec.WSPartitionBytes, Scale: activeFrac},
		Refs:        0.3,
		Fanout:      edgesPerVertex * activeFrac, // messages per vertex this superstep
		Materialize: true,                        // ships replicated vertex views before the scan
	}
	msgs := cur.MapPartitionsWithIndex(scan)
	agged := msgs.AggregateUsingIndex(g.aggSpec(aggInstr, math.Max(activeFrac, 0.05)), g.parts)
	join := exec.FuncSpec{
		Class: "org.apache.spark.graphx.impl.VertexPartitionBaseOps", Method: "innerJoinKeepLeft",
		Kind: model.KindMap, InstrPerRec: 38, BaseCPI: 0.62,
		Pattern: cpu.PatternRandom,
		WS: exec.WorkingSet{
			Kind:        exec.WSDistinctKeys,
			BytesPerKey: vertexBytes,
			SkewShrink:  0.5,
		},
		Refs:        0.05,
		Materialize: true, // VertexRDDs materialize between supersteps
	}
	return agged.Map(join)
}

// vertices seeds a vertex-scale RDD from the edge RDD (the initial
// vertex attribute construction).
func (g *Graph) vertices() *spark.RDD {
	toVerts := exec.FuncSpec{
		Class: "org.apache.spark.graphx.impl.VertexRDDImpl", Method: "mapVertexPartitions",
		Kind: model.KindMap, InstrPerRec: 20, BaseCPI: 0.6,
		Pattern:     cpu.PatternSequential,
		WS:          exec.WorkingSet{Kind: exec.WSPartitionBytes},
		Refs:        0.3,
		Fanout:      float64(g.input.Vertices) / float64(g.input.Records),
		OutDistinct: g.input.Vertices,
		OutRecBytes: vertexBytes,
	}
	return g.edges.Map(toVerts)
}

// ConvergenceTau returns the frontier-decay constant of label
// propagation on this graph: skewed (web/social) graphs have short
// effective diameters and converge fast; near-uniform (road) graphs
// converge slowly. This is the primary input-sensitivity mechanism of
// cc: both phase *durations* and working sets track the input.
func ConvergenceTau(in synth.InputStats) float64 {
	return 0.9 + 2.4/(1+in.Skew)
}

// ConnectedComponents appends a label-propagation run and returns the
// final vertex-scale RDD. iterations is the superstep count.
func ConnectedComponents(g *Graph, iterations int) *spark.RDD {
	cur := g.vertices()
	tau := ConvergenceTau(g.input)
	for i := 0; i < iterations; i++ {
		active := math.Exp(-float64(i) / tau)
		cur = g.iteration(cur, active, 45)
	}
	return cur
}

// PageRank appends a PageRank run: every vertex stays active in every
// superstep (messages do not decay), so phase weights are
// input-independent while vertex-index locality still tracks skew.
func PageRank(g *Graph, iterations int) *spark.RDD {
	cur := g.vertices()
	for i := 0; i < iterations; i++ {
		cur = g.iteration(cur, 1.0, 52)
	}
	return cur
}
