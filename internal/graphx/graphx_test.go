package graphx

import (
	"testing"

	"simprof/internal/exec"
	"simprof/internal/spark"
	"simprof/internal/synth"
)

func toPart(in synth.InputStats) exec.PartStats {
	return exec.PartStats{Records: in.Records, Bytes: in.Bytes, DistinctKeys: in.DistinctKeys, Skew: in.Skew}
}

func graphInput(skew float64) synth.InputStats {
	return synth.InputStats{
		Name: "g", Records: 4_000_000, Bytes: 64 << 20,
		DistinctKeys: 262_144, Vertices: 262_144, Skew: skew,
	}
}

func newCtx(t *testing.T) *spark.Context {
	t.Helper()
	ctx, err := spark.NewContext("g", spark.Config{Cores: 4, Seed: 1, ChunkInstr: 500_000})
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func TestLoadRejectsNonGraph(t *testing.T) {
	ctx := newCtx(t)
	in := graphInput(1)
	in.Vertices = 0
	if _, err := Load(ctx, in, 8); err == nil {
		t.Fatal("Load should reject inputs without vertices")
	}
}

func TestConnectedComponentsRuns(t *testing.T) {
	ctx := newCtx(t)
	g, err := Load(ctx, graphInput(2.0), 8)
	if err != nil {
		t.Fatal(err)
	}
	ConnectedComponents(g, 6).Count()
	threads, err := ctx.Run()
	if err != nil {
		t.Fatal(err)
	}
	leaves := map[string]bool{}
	stages := map[int]bool{}
	for _, th := range threads {
		for _, seg := range th.Segments {
			leaves[ctx.VM().Table.FQN(seg.Stack.Leaf())] = true
			stages[seg.StageID] = true
		}
	}
	for _, want := range []string{
		"org.apache.spark.graphx.GraphLoader$$anonfun$1.apply",
		"org.apache.spark.graphx.impl.EdgePartitionBuilder.toEdgePartition",
		"org.apache.spark.graphx.impl.VertexPartitionBaseOps.aggregateUsingIndex",
		"org.apache.spark.graphx.impl.VertexPartitionBaseOps.innerJoinKeepLeft",
	} {
		if !leaves[want] {
			t.Errorf("missing leaf %s", want)
		}
	}
	// 6 supersteps → 6 shuffles → 7 stages.
	if len(stages) != 7 {
		t.Fatalf("stages=%d want 7", len(stages))
	}
}

func TestPageRankConstantActivity(t *testing.T) {
	// PageRank supersteps should all cost roughly the same, while cc's
	// shrink as the frontier decays.
	instrPerStage := func(alg func(*Graph, int) *spark.RDD) map[int]uint64 {
		ctx := newCtx(t)
		g, err := Load(ctx, graphInput(2.0), 8)
		if err != nil {
			t.Fatal(err)
		}
		alg(g, 5).Count()
		threads, err := ctx.Run()
		if err != nil {
			t.Fatal(err)
		}
		out := map[int]uint64{}
		for _, th := range threads {
			for _, seg := range th.Segments {
				out[seg.StageID] += seg.Instr
			}
		}
		return out
	}
	pr := instrPerStage(PageRank)
	cc := instrPerStage(ConnectedComponents)
	// Stage 0 contains the graph load; compare steady supersteps
	// (stages 2 and 4).
	if float64(pr[4]) < 0.7*float64(pr[2]) {
		t.Fatalf("PageRank stage cost decayed: %v vs %v", pr[4], pr[2])
	}
	if float64(cc[4]) > 0.7*float64(cc[2]) {
		t.Fatalf("cc stage cost did not decay: %v vs %v", cc[4], cc[2])
	}
}

func TestConvergenceTauOrdering(t *testing.T) {
	web := ConvergenceTau(graphInput(2.2))
	road := ConvergenceTau(graphInput(0.1))
	if web >= road {
		t.Fatalf("web tau %v should be below road tau %v (faster convergence)", web, road)
	}
}

func TestSkewShrinksAggregateWorkingSet(t *testing.T) {
	ctx := newCtx(t)
	gWeb, _ := Load(ctx, graphInput(2.2), 8)
	gRoad, _ := Load(newCtx(t), graphInput(0.0), 8)
	wsWeb := gWeb.aggSpec(45, 1).WS.Resolve(toPart(graphInput(2.2)))
	wsRoad := gRoad.aggSpec(45, 1).WS.Resolve(toPart(graphInput(0.0)))
	if wsWeb >= wsRoad {
		t.Fatalf("skewed graph working set %d should be below uniform %d", wsWeb, wsRoad)
	}
}

func TestEdgesAccessor(t *testing.T) {
	ctx := newCtx(t)
	g, _ := Load(ctx, graphInput(1.0), 8)
	if g.Edges() == nil {
		t.Fatal("Edges() nil")
	}
}
