package hadoop

import (
	"strings"
	"testing"

	"simprof/internal/cpu"
	"simprof/internal/exec"
	"simprof/internal/model"
	"simprof/internal/synth"
)

func textInput() synth.InputStats {
	return synth.InputStats{Name: "t", Records: 2_000_000, Bytes: 64 << 20, DistinctKeys: 20_000, Skew: 1.1}
}

func mapper() exec.FuncSpec {
	return exec.FuncSpec{
		Class: "app.TokenizerMapper", Method: "map", Kind: model.KindMap,
		InstrPerRec: 100, BaseCPI: 0.55,
		Pattern: cpu.PatternSequential,
		WS:      exec.WorkingSet{Kind: exec.WSPartitionBytes},
	}
}

func reducer() exec.FuncSpec {
	return exec.FuncSpec{
		Class: "app.IntSumReducer", Method: "reduce", Kind: model.KindReduce,
		InstrPerRec: 45, BaseCPI: 0.65,
		Pattern: cpu.PatternRandom,
		WS:      exec.WorkingSet{Kind: exec.WSDistinctKeys},
	}
}

func wcJob() *Job {
	r := reducer()
	return &Job{
		Name: "wc", Input: textInput(), SplitBytes: 8 << 20,
		Mapper: mapper(), Combiner: &r, Reducer: r, NumReducers: 4,
	}
}

func newDriver(t *testing.T) *Driver {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Seed = 1
	cfg.ChunkInstr = 500_000
	d, err := NewDriver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestDriverValidation(t *testing.T) {
	if _, err := NewDriver(Config{Cores: 0}); err == nil {
		t.Fatal("Cores=0 should fail")
	}
	d := newDriver(t)
	if _, err := d.Run(); err == nil {
		t.Fatal("no jobs should fail")
	}
	bad := wcJob()
	bad.Mapper.InstrPerRec = 0
	if _, err := d.Run(bad); err == nil {
		t.Fatal("zero-cost mapper should fail validation")
	}
	bad2 := wcJob()
	bad2.Input = synth.InputStats{}
	if _, err := d.Run(bad2); err == nil {
		t.Fatal("empty input should fail validation")
	}
}

func TestTaskThreadsPerTask(t *testing.T) {
	d := newDriver(t)
	j := wcJob()
	threads, err := d.Run(j)
	if err != nil {
		t.Fatal(err)
	}
	// 64MB / 8MB splits = 8 map tasks + 4 reduce tasks.
	if len(threads) != 12 {
		t.Fatalf("threads=%d want 12", len(threads))
	}
	maps, reduces := 0, 0
	for _, th := range threads {
		switch {
		case strings.Contains(th.Name, "-map-"):
			maps++
		case strings.Contains(th.Name, "-reduce-"):
			reduces++
		}
		if len(th.Segments) == 0 {
			t.Fatalf("empty task thread %s", th.Name)
		}
	}
	if maps != 8 || reduces != 4 {
		t.Fatalf("maps=%d reduces=%d", maps, reduces)
	}
}

func TestStageIDs(t *testing.T) {
	d := newDriver(t)
	threads, err := d.Run(wcJob(), wcJob())
	if err != nil {
		t.Fatal(err)
	}
	stages := map[int]bool{}
	for _, th := range threads {
		for _, seg := range th.Segments {
			stages[seg.StageID] = true
		}
	}
	for want := 0; want < 4; want++ { // 2 jobs × (map, reduce)
		if !stages[want] {
			t.Fatalf("stage %d missing (have %v)", want, stages)
		}
	}
}

func leafSet(d *Driver, threads []*cpu.Thread) map[string]bool {
	out := map[string]bool{}
	for _, th := range threads {
		for _, seg := range th.Segments {
			out[d.VM().Table.FQN(seg.Stack.Leaf())] = true
		}
	}
	return out
}

func TestMapTaskAnatomy(t *testing.T) {
	d := newDriver(t)
	threads, _ := d.Run(wcJob())
	leaves := leafSet(d, threads)
	for _, want := range []string{
		"org.apache.hadoop.mapreduce.lib.input.LineRecordReader.nextKeyValue",
		"app.TokenizerMapper.map",
		"org.apache.hadoop.mapred.MapTask$MapOutputBuffer.collect",
		"org.apache.hadoop.util.QuickSort.sort",
		"org.apache.hadoop.mapred.Task$NewCombinerRunner.combine",
		"org.apache.hadoop.mapred.IFile$Writer.append",
		"org.apache.hadoop.mapreduce.task.reduce.Fetcher.copyFromHost",
		"org.apache.hadoop.mapred.Merger$MergeQueue.next",
		"app.IntSumReducer.reduce",
		"org.apache.hadoop.hdfs.DFSOutputStream.write",
	} {
		if !leaves[want] {
			t.Errorf("missing leaf %s", want)
		}
	}
}

func TestCombinerRenamed(t *testing.T) {
	// The combiner runs under NewCombinerRunner.combine, not under the
	// user reducer's own frame (matching Fig. 15's phase anatomy).
	d := newDriver(t)
	threads, _ := d.Run(wcJob())
	combineSegs, reduceSegs := 0, 0
	for _, th := range threads {
		isMap := strings.Contains(th.Name, "-map-")
		for _, seg := range th.Segments {
			fqn := d.VM().Table.FQN(seg.Stack.Leaf())
			if fqn == "org.apache.hadoop.mapred.Task$NewCombinerRunner.combine" {
				if !isMap {
					t.Fatal("combine segment on a reduce task")
				}
				combineSegs++
			}
			if fqn == "app.IntSumReducer.reduce" {
				if isMap {
					t.Fatal("user reduce segment on a map task")
				}
				reduceSegs++
			}
		}
	}
	if combineSegs == 0 || reduceSegs == 0 {
		t.Fatalf("combine=%d reduce=%d segments", combineSegs, reduceSegs)
	}
}

func TestSpillsScaleWithBuffer(t *testing.T) {
	small := DefaultConfig()
	small.Seed = 1
	small.SortBufferBytes = 1 << 20 // 1MB buffer → many spills per 8MB split
	ds, _ := NewDriver(small)
	threadsSmall, _ := ds.Run(wcJob())

	big := DefaultConfig()
	big.Seed = 1
	db, _ := NewDriver(big)
	threadsBig, _ := db.Run(wcJob())

	count := func(d *Driver, threads []*cpu.Thread, fqn string) int {
		n := 0
		for _, th := range threads {
			for _, seg := range th.Segments {
				for _, id := range seg.Stack {
					if d.VM().Table.FQN(id) == fqn {
						n++
						break
					}
				}
			}
		}
		return n
	}
	spillsSmall := count(ds, threadsSmall, "org.apache.hadoop.mapred.MapTask$MapOutputBuffer.sortAndSpill")
	spillsBig := count(db, threadsBig, "org.apache.hadoop.mapred.MapTask$MapOutputBuffer.sortAndSpill")
	if spillsSmall <= spillsBig {
		t.Fatalf("small buffer should spill more: %d vs %d", spillsSmall, spillsBig)
	}
	// Small buffers also trigger the final merge.
	if count(ds, threadsSmall, "org.apache.hadoop.mapred.Merger.merge") == 0 {
		t.Fatal("multi-spill task should merge")
	}
}

func TestMapOnlyJob(t *testing.T) {
	d := newDriver(t)
	j := wcJob()
	j.NumReducers = 0
	j.Combiner = nil
	threads, err := d.Run(j)
	if err != nil {
		t.Fatal(err)
	}
	for _, th := range threads {
		if strings.Contains(th.Name, "-reduce-") {
			t.Fatal("map-only job spawned reduce tasks")
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() uint64 {
		d := newDriver(t)
		threads, err := d.Run(wcJob())
		if err != nil {
			t.Fatal(err)
		}
		var total uint64
		for _, th := range threads {
			total += th.Instructions()
		}
		return total
	}
	if run() != run() {
		t.Fatal("hadoop emission not deterministic")
	}
}

func TestMapTasksCount(t *testing.T) {
	j := wcJob()
	if j.MapTasks() != 8 {
		t.Fatalf("MapTasks=%d", j.MapTasks())
	}
	j.SplitBytes = 0 // default 64MB
	if j.MapTasks() != 1 {
		t.Fatalf("MapTasks=%d want 1", j.MapTasks())
	}
}
