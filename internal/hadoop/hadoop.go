// Package hadoop simulates the Hadoop MapReduce execution model of the
// paper's "_hp" workloads: map tasks that read an HDFS split, run the
// user mapper into a memory buffer, quick-sort and combine the buffer on
// overflow and spill compressed runs to disk (the paper's optimized
// configuration), followed by reduce tasks that shuffle, merge-sort and
// reduce into HDFS. Every task is its own short-lived executor thread —
// the profiler's per-core merging (§III-A) reassembles them into
// Spark-like long streams.
package hadoop

import (
	"fmt"

	"simprof/internal/cpu"
	"simprof/internal/exec"
	"simprof/internal/hdfs"
	"simprof/internal/jvm"
	"simprof/internal/model"
	"simprof/internal/stats"
	"simprof/internal/synth"
)

// Config parameterizes the driver.
type Config struct {
	Cores      int
	Seed       uint64
	ChunkInstr uint64
	Table      *model.Table
	IOCost     hdfs.CostModel

	// SortBufferBytes is the mapper's in-memory sort buffer
	// (mapreduce.task.io.sort.mb). The paper enlarges it as one of its
	// "common optimizations"; smaller buffers mean more spills.
	SortBufferBytes int64
	// CompressMapOutput mirrors the paper's second optimization.
	CompressMapOutput bool
	// GC is the opt-in JVM garbage-collection model.
	GC exec.GCConfig
}

// DefaultConfig returns the paper's optimized Hadoop setup.
func DefaultConfig() Config {
	return Config{
		Cores:             4,
		SortBufferBytes:   256 << 20,
		CompressMapOutput: true,
	}
}

// Job is one MapReduce job.
type Job struct {
	Name        string
	Input       synth.InputStats
	SplitBytes  int64 // map input split size (defaults to 64MB)
	Mapper      exec.FuncSpec
	Combiner    *exec.FuncSpec // optional map-side combine
	Reducer     exec.FuncSpec
	NumReducers int  // 0 disables the reduce phase (map-only job)
	SkipSort    bool // identity-sort jobs keep the sort; others may skip (rare)
}

// Validate checks the job.
func (j *Job) Validate() error {
	if j.Input.Records <= 0 || j.Input.Bytes <= 0 {
		return fmt.Errorf("hadoop: job %q has empty input", j.Name)
	}
	if j.Mapper.InstrPerRec <= 0 {
		return fmt.Errorf("hadoop: job %q mapper has no cost", j.Name)
	}
	if j.NumReducers > 0 && j.Reducer.InstrPerRec <= 0 {
		return fmt.Errorf("hadoop: job %q reducer has no cost", j.Name)
	}
	return nil
}

// MapTasks returns the number of map tasks (splits).
func (j *Job) MapTasks() int {
	split := j.SplitBytes
	if split <= 0 {
		split = 64 << 20
	}
	n := int((j.Input.Bytes + split - 1) / split)
	if n < 1 {
		n = 1
	}
	return n
}

// Driver compiles jobs into task threads.
type Driver struct {
	cfg     Config
	vm      *jvm.VM
	emitter *exec.Emitter
}

// NewDriver builds a driver.
func NewDriver(cfg Config) (*Driver, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("hadoop: Cores=%d must be positive", cfg.Cores)
	}
	if cfg.SortBufferBytes <= 0 {
		cfg.SortBufferBytes = 256 << 20
	}
	if cfg.IOCost == (hdfs.CostModel{}) {
		cfg.IOCost = hdfs.DefaultCostModel()
	}
	vm := jvm.NewVM()
	if cfg.Table != nil {
		vm = jvm.NewVMWithTable(cfg.Table)
	}
	em := exec.NewEmitter(stats.SplitSeed(cfg.Seed, 0x4ad0), cfg.ChunkInstr)
	em.GC = cfg.GC
	return &Driver{
		cfg:     cfg,
		vm:      vm,
		emitter: em,
	}, nil
}

// VM exposes the simulated JVM.
func (d *Driver) VM() *jvm.VM { return d.vm }

// Run executes the jobs in order and returns all task threads, map
// tasks before reduce tasks per job. Stage ids are jobIndex*2 for map
// and jobIndex*2+1 for reduce.
func (d *Driver) Run(jobs ...*Job) ([]*cpu.Thread, error) {
	if len(jobs) == 0 {
		return nil, fmt.Errorf("hadoop: no jobs")
	}
	taskID := 0
	for ji, j := range jobs {
		if err := j.Validate(); err != nil {
			return nil, err
		}
		mapStage, reduceStage := ji*2, ji*2+1
		maps := j.MapTasks()
		perSplit := exec.PartStats{
			Records:      j.Input.Records / int64(maps),
			Bytes:        j.Input.Bytes / int64(maps),
			DistinctKeys: j.Input.DistinctKeys,
			Skew:         j.Input.Skew,
		}
		if perSplit.Records == 0 {
			perSplit.Records = 1
		}
		var mapOut exec.PartStats // per-map-task output (post combine)
		for t := 0; t < maps; t++ {
			mapOut = d.emitMapTask(j, perSplit, taskID, mapStage)
			taskID++
		}
		if j.NumReducers > 0 {
			totalOut := mapOut
			totalOut.Records *= int64(maps)
			totalOut.Bytes *= int64(maps)
			for t := 0; t < j.NumReducers; t++ {
				d.emitReduceTask(j, totalOut, taskID, reduceStage)
				taskID++
			}
		}
	}
	return d.vm.Threads(), nil
}

// frame helpers ------------------------------------------------------

func (d *Driver) frame(class, method string, kind model.Kind) model.MethodID {
	return d.vm.Table.Intern(class, method, kind)
}

// emitMapTask builds one map-task thread and returns its output stats
// (after combine), per task.
func (d *Driver) emitMapTask(j *Job, split exec.PartStats, taskID, stageID int) exec.PartStats {
	em := d.emitter
	b := d.vm.SpawnThread(fmt.Sprintf("%s-map-%d", j.Name, taskID))
	b.Push(d.frame("java.lang.Thread", "run", model.KindFramework))
	b.Push(d.frame("org.apache.hadoop.mapred.YarnChild", "main", model.KindFramework))
	b.Push(d.frame("org.apache.hadoop.mapred.MapTask", "run", model.KindFramework))
	b.SetTask(taskID, stageID)

	// 1. Read the split.
	read := exec.FuncSpec{
		Class: "org.apache.hadoop.mapreduce.lib.input.LineRecordReader", Method: "nextKeyValue",
		Kind: model.KindIO, BaseCPI: 0.9,
		Pattern: cpu.PatternSequential,
		WS:      exec.WorkingSet{Kind: exec.WSFixed, Fixed: d.cfg.IOCost.BufferBytes},
		Refs:    0.35,
	}
	// The record reader, the user map function and the output-buffer
	// collect run as one record-at-a-time loop, so their stacks
	// interleave within sampling units (unlike sort/spill, which only
	// run at buffer overflow and form their own phases — Fig. 15).
	b.Push(d.frame("org.apache.hadoop.mapreduce.Mapper", "run", model.KindFramework))
	cur := j.Mapper.Out(split)
	collect := exec.FuncSpec{
		Class: "org.apache.hadoop.mapred.MapTask$MapOutputBuffer", Method: "collect",
		Kind: model.KindFramework, InstrPerRec: 12, BaseCPI: 0.55,
		Pattern: cpu.PatternSequential,
		WS:      exec.WorkingSet{Kind: exec.WSFixed, Fixed: uint64(d.cfg.SortBufferBytes)},
		Refs:    0.3,
	}
	em.EmitGroup(b, d.vm, []exec.OpRun{
		{Spec: read, Total: d.cfg.IOCost.ReadInstr(split.Bytes), Stats: split},
		{Spec: j.Mapper, Stats: split},
		{Spec: collect, Stats: cur},
	}, false)
	b.Pop()

	// 3. Sort/combine/spill. One spill per sort-buffer overflow plus
	// the final one.
	spills := int(cur.Bytes/d.cfg.SortBufferBytes) + 1
	perSpill := cur
	perSpill.Records /= int64(spills)
	perSpill.Bytes /= int64(spills)
	if perSpill.Records == 0 {
		perSpill.Records = 1
	}
	if perSpill.DistinctKeys > perSpill.Records {
		perSpill.DistinctKeys = perSpill.Records
	}
	var spillOut exec.PartStats
	for s := 0; s < spills; s++ {
		b.Push(d.frame("org.apache.hadoop.mapred.MapTask$MapOutputBuffer", "sortAndSpill", model.KindFramework))
		if !j.SkipSort {
			sorter := exec.FuncSpec{
				Class: "org.apache.hadoop.util.QuickSort", Method: "sort",
				Kind: model.KindSort, InstrPerRec: 95, BaseCPI: 0.7,
				Pattern: cpu.PatternSawtooth,
				WS:      exec.WorkingSet{Kind: exec.WSPartitionBytes},
				Refs:    0.32,
			}
			em.EmitOp(b, d.vm, sorter, perSpill)
		}
		spillOut = perSpill
		if j.Combiner != nil {
			comb := *j.Combiner
			comb.Class = "org.apache.hadoop.mapred.Task$NewCombinerRunner"
			comb.Method = "combine"
			comb.Kind = model.KindReduce
			spillOut = em.EmitOp(b, d.vm, comb, perSpill)
			spillOut.Records = minI64(perSpill.Records, perSpill.DistinctKeys)
			spillOut.Bytes = int64(float64(spillOut.Records) * perSpill.AvgRecordBytes())
		}
		writer := exec.FuncSpec{
			Class: "org.apache.hadoop.mapred.IFile$Writer", Method: "append",
			Kind: model.KindIO, BaseCPI: 1.0,
			Pattern: cpu.PatternSequential,
			WS:      exec.WorkingSet{Kind: exec.WSFixed, Fixed: 1 << 20},
			Refs:    0.35,
		}
		em.EmitRaw(b, d.vm, writer, d.cfg.IOCost.WriteInstr(spillOut.Bytes, d.cfg.CompressMapOutput), spillOut)
		b.Pop()
	}
	out := spillOut
	out.Records *= int64(spills)
	out.Bytes *= int64(spills)
	if spills > 1 {
		// Final on-disk merge of the spill runs.
		merge := exec.FuncSpec{
			Class: "org.apache.hadoop.mapred.Merger", Method: "merge",
			Kind: model.KindIO, BaseCPI: 0.95,
			Pattern: cpu.PatternSequential,
			WS:      exec.WorkingSet{Kind: exec.WSFixed, Fixed: 8 << 20},
			Refs:    0.34,
		}
		em.EmitRaw(b, d.vm, merge, d.cfg.IOCost.ReadInstr(out.Bytes)+d.cfg.IOCost.WriteInstr(out.Bytes, d.cfg.CompressMapOutput), out)
	}
	b.PopN(3)
	return out
}

// emitReduceTask builds one reduce-task thread. totalMapOut is the
// whole-job map output.
func (d *Driver) emitReduceTask(j *Job, totalMapOut exec.PartStats, taskID, stageID int) {
	em := d.emitter
	b := d.vm.SpawnThread(fmt.Sprintf("%s-reduce-%d", j.Name, taskID))
	b.Push(d.frame("java.lang.Thread", "run", model.KindFramework))
	b.Push(d.frame("org.apache.hadoop.mapred.YarnChild", "main", model.KindFramework))
	b.Push(d.frame("org.apache.hadoop.mapred.ReduceTask", "run", model.KindFramework))
	b.SetTask(taskID, stageID)

	part := totalMapOut
	part.Records /= int64(j.NumReducers)
	part.Bytes /= int64(j.NumReducers)
	part.DistinctKeys /= int64(j.NumReducers)
	if part.Records == 0 {
		part.Records = 1
	}
	if part.DistinctKeys < 1 {
		part.DistinctKeys = 1
	}

	// 1. Shuffle: fetch map outputs over the network.
	fetch := exec.FuncSpec{
		Class: "org.apache.hadoop.mapreduce.task.reduce.Fetcher", Method: "copyFromHost",
		Kind: model.KindIO, BaseCPI: 1.05,
		Pattern: cpu.PatternSequential,
		WS:      exec.WorkingSet{Kind: exec.WSFixed, Fixed: 2 << 20},
		Refs:    0.35,
	}
	em.EmitRaw(b, d.vm, fetch, d.cfg.IOCost.ReadInstr(part.Bytes), part)

	// 2. Merge-sort the fetched runs (the initial merge passes run
	// before the reduce loop can stream, so this is its own phase —
	// the sort-dominated phases Fig. 10 reports for Hadoop).
	merge := exec.FuncSpec{
		Class: "org.apache.hadoop.mapred.Merger$MergeQueue", Method: "next",
		Kind: model.KindSort, InstrPerRec: 70, BaseCPI: 0.75,
		Pattern: cpu.PatternSawtooth,
		WS:      exec.WorkingSet{Kind: exec.WSPartitionBytes},
		Refs:    0.32,
	}
	em.EmitOp(b, d.vm, merge, part)

	// 3+4. The user reduce function streams straight into the HDFS
	// writer, so the two interleave.
	b.Push(d.frame("org.apache.hadoop.mapreduce.Reducer", "run", model.KindFramework))
	out := j.Reducer.Out(part)
	write := exec.FuncSpec{
		Class: "org.apache.hadoop.hdfs.DFSOutputStream", Method: "write",
		Kind: model.KindIO, BaseCPI: 1.1,
		Pattern: cpu.PatternRandom,
		WS:      exec.WorkingSet{Kind: exec.WSFixed, Fixed: 24 << 20},
		Refs:    0.03,
	}
	em.EmitGroup(b, d.vm, []exec.OpRun{
		{Spec: j.Reducer, Stats: part},
		{Spec: write, Total: d.cfg.IOCost.WriteInstr(out.Bytes, false), Stats: out},
	}, false)
	b.PopN(4)
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
