package synth

import (
	"fmt"

	"simprof/internal/model"
	"simprof/internal/stats"
	"simprof/internal/trace"
)

// TraceSpec describes a synthetic profiling trace with planted phase
// structure: units cycle through a configurable number of latent phases,
// each phase executing its own disjoint hot set of methods at its own
// characteristic CPI. The result is a valid trace (it passes
// trace.Validate with every unit fully observed) whose phases are
// recoverable by phase formation — the workload shape the paper's
// pipeline expects, without running an engine simulation. datagen uses
// it to materialize format-conversion fixtures, and the tracebin
// benchmarks use it to build 100k-unit inputs deterministically.
type TraceSpec struct {
	Benchmark string
	Framework string // "spark" or "hadoop"
	Input     string
	Units     int
	Methods   int // interned table size
	Phases    int // latent phases planted in the unit sequence
	Depth     int // frames per snapshot
	Snapshots int // snapshots per unit (sets the cadence)
	UnitInstr uint64
	Seed      uint64
}

// DefaultTrace returns a spec sized like the paper's workloads scaled to
// the unit count: a few hundred methods, four phases, moderate stacks.
func DefaultTrace(units int, seed uint64) TraceSpec {
	return TraceSpec{
		Benchmark: "synth",
		Framework: "spark",
		Input:     "synthetic",
		Units:     units,
		Methods:   256,
		Phases:    4,
		Depth:     8,
		Snapshots: 10,
		UnitInstr: 100_000_000,
		Seed:      seed,
	}
}

// Validate checks the spec.
func (s TraceSpec) Validate() error {
	if s.Units <= 0 {
		return fmt.Errorf("synth: Units=%d must be positive", s.Units)
	}
	if s.Phases <= 0 || s.Phases > s.Units {
		return fmt.Errorf("synth: Phases=%d must be in [1, Units=%d]", s.Phases, s.Units)
	}
	if s.Depth <= 0 {
		return fmt.Errorf("synth: Depth=%d must be positive", s.Depth)
	}
	if s.Snapshots <= 0 || uint64(s.Snapshots) > s.UnitInstr {
		return fmt.Errorf("synth: Snapshots=%d must be in [1, UnitInstr=%d]", s.Snapshots, s.UnitInstr)
	}
	if s.UnitInstr == 0 {
		return fmt.Errorf("synth: UnitInstr must be positive")
	}
	// Each phase needs at least one hot method beyond the shared stack
	// prefix, and the prefix itself needs Depth-1 methods.
	if s.Methods < s.Depth-1+s.Phases {
		return fmt.Errorf("synth: Methods=%d too small for Depth=%d and Phases=%d", s.Methods, s.Depth, s.Phases)
	}
	return nil
}

// Generate materializes the trace. Output is deterministic for a spec.
func (s TraceSpec) Generate() (*trace.Trace, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(stats.SplitSeed(s.Seed, 0xbead))

	t := &trace.Trace{
		Benchmark:     s.Benchmark,
		Framework:     s.Framework,
		Input:         s.Input,
		Seed:          s.Seed,
		UnitInstr:     s.UnitInstr,
		SnapshotEvery: s.UnitInstr / uint64(s.Snapshots),
	}

	// Method table: the first Depth-1 ids are the shared framework prefix
	// every stack walks through (think scheduler → executor → task); the
	// rest are partitioned cyclically into per-phase hot sets.
	t.Methods = make([]model.Method, s.Methods)
	for i := range t.Methods {
		role := "work"
		if i < s.Depth-1 {
			role = "frame"
		}
		t.Methods[i] = model.Method{
			ID:    model.MethodID(i),
			Class: fmt.Sprintf("synth.%s.C%03d", role, i/16),
			Name:  fmt.Sprintf("m%04d", i),
			Kind:  model.Kind(i % model.NumKinds),
		}
	}
	prefix := s.Depth - 1
	hot := make([][]model.MethodID, s.Phases)
	for id := prefix; id < s.Methods; id++ {
		p := (id - prefix) % s.Phases
		hot[p] = append(hot[p], model.MethodID(id))
	}

	perUnit := t.ExpectedSnapshots()
	nFrames := s.Units * perUnit * s.Depth
	frames := make([]model.MethodID, 0, nFrames)
	stacks := make([]model.Stack, 0, s.Units*perUnit)
	stages := make([]int, 0, s.Units)

	t.Units = make([]trace.Unit, s.Units)
	var startCycle uint64
	for i := range t.Units {
		u := &t.Units[i]
		phase := i * s.Phases / s.Units
		u.ID = i
		u.Thread = 0
		u.Index = i

		// Counters: each phase runs at its own CPI with mild log-normal
		// jitter, and miss rates scale with how memory-bound the phase is.
		cpi := stats.LogNormal(rng, 0.7+0.45*float64(phase), 0.06)
		u.Counters.Instructions = s.UnitInstr
		u.Counters.Cycles = uint64(cpi * float64(s.UnitInstr))
		u.Counters.L1Misses = uint64(float64(s.UnitInstr) * 0.02 * cpi)
		u.Counters.L2Misses = u.Counters.L1Misses / 4
		u.Counters.LLCMisses = u.Counters.L2Misses / 8
		u.StartCycle = startCycle
		startCycle += u.Counters.Cycles

		// Snapshots: shared prefix + a skewed draw from the phase's hot
		// set (squaring the uniform biases toward the set's head, giving
		// each phase a stable dominant method mix).
		s0 := len(stacks)
		hs := hot[phase]
		for k := 0; k < perUnit; k++ {
			f0 := len(frames)
			for d := 0; d < prefix; d++ {
				frames = append(frames, model.MethodID(d))
			}
			r := rng.Float64()
			frames = append(frames, hs[int(r*r*float64(len(hs)))])
			stacks = append(stacks, frames[f0:len(frames):len(frames)])
		}
		u.Snapshots = stacks[s0:len(stacks):len(stacks)]

		g0 := len(stages)
		stages = append(stages, phase)
		u.Stages = stages[g0:len(stages):len(stages)]
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("synth: generated trace invalid: %w", err)
	}
	return t, nil
}
