package synth

import (
	"bytes"
	"strings"
	"testing"
)

func TestTextSpecValidate(t *testing.T) {
	if err := DefaultText("t", 1<<20, 1).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []TextSpec{
		{SizeBytes: 0, Vocab: 10, ZipfS: 1, AvgWordLen: 5},
		{SizeBytes: 10, Vocab: 0, ZipfS: 1, AvgWordLen: 5},
		{SizeBytes: 10, Vocab: 10, ZipfS: 0, AvgWordLen: 5},
		{SizeBytes: 10, Vocab: 10, ZipfS: 1, AvgWordLen: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d validated", i)
		}
	}
}

func TestTextGenerate(t *testing.T) {
	spec := TextSpec{Name: "t", SizeBytes: 64 << 10, Vocab: 1000, ZipfS: 1.1, AvgWordLen: 6, Seed: 3}
	var buf bytes.Buffer
	n, words, err := spec.Generate(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n < spec.SizeBytes || int64(buf.Len()) != n {
		t.Fatalf("bytes=%d want ≥%d", n, spec.SizeBytes)
	}
	if words <= 0 {
		t.Fatal("no words")
	}
	// Skew: the most frequent word should dominate.
	counts := map[string]int{}
	for _, w := range strings.Fields(buf.String()) {
		counts[w]++
	}
	max, total := 0, 0
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	if float64(max)/float64(total) < 0.05 {
		t.Fatalf("top word share %v too small for Zipf 1.1", float64(max)/float64(total))
	}
	// Determinism.
	var buf2 bytes.Buffer
	spec.Generate(&buf2)
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("text generation not deterministic")
	}
}

func TestTextStats(t *testing.T) {
	spec := DefaultText("corpus", 70<<20, 1)
	st := spec.Stats()
	if st.Records != spec.Words() || st.Bytes != spec.SizeBytes {
		t.Fatalf("stats=%+v", st)
	}
	if st.DistinctKeys != int64(spec.Vocab) {
		t.Fatalf("distinct=%d want vocab", st.DistinctKeys)
	}
	// Tiny corpus: distinct clamps to word count.
	tiny := TextSpec{Name: "tiny", SizeBytes: 70, Vocab: 100000, ZipfS: 1.1, AvgWordLen: 6}
	if s := tiny.Stats(); s.DistinctKeys != s.Records {
		t.Fatalf("tiny distinct=%d records=%d", s.DistinctKeys, s.Records)
	}
	if st.RecordBytes() <= 0 {
		t.Fatal("RecordBytes should be positive")
	}
}

func TestKVGenerate(t *testing.T) {
	spec := KVSpec{Name: "kv", Records: 500, KeyBytes: 10, ValBytes: 90, Seed: 7}
	var buf bytes.Buffer
	n, err := spec.Generate(&buf)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != 500 {
		t.Fatalf("lines=%d", len(lines))
	}
	if n != int64(500*(10+90+2)) {
		t.Fatalf("bytes=%d", n)
	}
	for _, l := range lines[:5] {
		parts := strings.Split(l, "\t")
		if len(parts) != 2 || len(parts[0]) != 10 || len(parts[1]) != 90 {
			t.Fatalf("malformed record %q", l)
		}
	}
	if _, err := (KVSpec{Records: 0, KeyBytes: 1}).Generate(&buf); err == nil {
		t.Fatal("invalid KVSpec should fail")
	}
}

func TestKVStats(t *testing.T) {
	s := KVSpec{Name: "kv", Records: 1000, KeyBytes: 10, ValBytes: 90}
	st := s.Stats()
	if st.DistinctKeys != 1000 {
		t.Fatalf("all-unique distinct=%d", st.DistinctKeys)
	}
	s.Distinct = 50
	if s.Stats().DistinctKeys != 50 {
		t.Fatal("explicit distinct ignored")
	}
	s.Distinct = 99999
	if s.Stats().DistinctKeys != 1000 {
		t.Fatal("distinct should clamp to records")
	}
}

func TestKroneckerValidate(t *testing.T) {
	good := KroneckerSpec{Name: "g", Scale: 10, EdgeFactor: 8, A: 0.57, B: 0.19, C: 0.19, D: 0.05}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.A = 0.9 // sums > 1
	if err := bad.Validate(); err == nil {
		t.Fatal("non-stochastic initiator validated")
	}
	bad = good
	bad.Scale = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("scale 0 validated")
	}
}

func TestKroneckerGenerate(t *testing.T) {
	spec := KroneckerSpec{Name: "g", Scale: 12, EdgeFactor: 8, A: 0.57, B: 0.19, C: 0.19, D: 0.05, Seed: 5}
	g, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	if g.N != 4096 || int64(len(g.Edges)) != spec.Edges() {
		t.Fatalf("graph shape: n=%d e=%d", g.N, len(g.Edges))
	}
	for _, e := range g.Edges[:100] {
		if e[0] < 0 || int64(e[0]) >= g.N || e[1] < 0 || int64(e[1]) >= g.N {
			t.Fatalf("edge out of range: %v", e)
		}
	}
	if g.MaxDeg <= 8 {
		t.Fatalf("skewed graph max degree %d suspiciously low", g.MaxDeg)
	}
}

func TestKroneckerSkewOrdering(t *testing.T) {
	// A web graph (imbalanced initiator) must be more skewed than a
	// road network (near-uniform initiator), both in the measured
	// degree CoV and in the analytic Stats summary.
	web := KroneckerSpec{Name: "web", Scale: 13, EdgeFactor: 8, A: 0.57, B: 0.19, C: 0.19, D: 0.05, Seed: 1}
	road := KroneckerSpec{Name: "road", Scale: 13, EdgeFactor: 8, A: 0.26, B: 0.25, C: 0.25, D: 0.24, Seed: 2}
	gw, _ := web.Generate()
	gr, _ := road.Generate()
	if gw.DegreeCoV() <= gr.DegreeCoV() {
		t.Fatalf("web CoV %v not above road CoV %v", gw.DegreeCoV(), gr.DegreeCoV())
	}
	if web.Stats().Skew <= road.Stats().Skew {
		t.Fatalf("analytic skew ordering wrong: %v vs %v", web.Stats().Skew, road.Stats().Skew)
	}
}

func TestKroneckerDeterminism(t *testing.T) {
	spec := KroneckerSpec{Name: "g", Scale: 10, EdgeFactor: 4, A: 0.45, B: 0.22, C: 0.22, D: 0.11, Seed: 9}
	a, _ := spec.Generate()
	b, _ := spec.Generate()
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatal("generation not deterministic")
		}
	}
}

func TestTableII(t *testing.T) {
	inputs := TableII(14, 1)
	if len(inputs) != 8 {
		t.Fatalf("TableII has %d inputs want 8", len(inputs))
	}
	training := 0
	names := map[string]bool{}
	for _, in := range inputs {
		if err := in.Spec.Validate(); err != nil {
			t.Fatalf("%s: %v", in.Spec.Name, err)
		}
		if in.Training {
			training++
		}
		if names[in.Spec.Name] {
			t.Fatalf("duplicate input %s", in.Spec.Name)
		}
		names[in.Spec.Name] = true
	}
	if training != 1 {
		t.Fatalf("training inputs=%d want 1 (google)", training)
	}
	st := TableIIStats(14, 1)
	if st[0].Name != "google" {
		t.Fatalf("training input first, got %s", st[0].Name)
	}
	// The road network must be the least skewed of the set.
	var road, maxOther float64
	for _, s := range st {
		if s.Name == "road" {
			road = s.Skew
		} else if s.Skew > maxOther {
			maxOther = s.Skew
		}
	}
	if road >= maxOther {
		t.Fatalf("road skew %v should be minimal (max other %v)", road, maxOther)
	}
}

func TestZipfExpectedTopShare(t *testing.T) {
	// Harmonic series over 10 ranks at s=1: top share = 1/H(10) ≈ 0.3414.
	got := ZipfExpectedTopShare(10, 1)
	if got < 0.33 || got > 0.35 {
		t.Fatalf("top share=%v", got)
	}
}
