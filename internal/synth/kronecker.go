package synth

import (
	"fmt"
	"sort"

	"simprof/internal/stats"
)

// KroneckerSpec parameterizes a stochastic Kronecker (R-MAT) graph
// generator, the same family the paper uses to scale the SNAP seed
// graphs to 2^20–2^24 nodes while preserving their connectivity
// structure. The 2×2 initiator matrix (A B; C D) controls the degree
// skew and community structure.
type KroneckerSpec struct {
	Name       string
	Scale      int     // 2^Scale vertices
	EdgeFactor float64 // edges per vertex
	A, B, C, D float64 // initiator probabilities, A+B+C+D == 1
	Seed       uint64
}

// Validate checks the spec.
func (s KroneckerSpec) Validate() error {
	if s.Scale <= 0 || s.Scale > 30 {
		return fmt.Errorf("synth: Scale=%d out of (0,30]", s.Scale)
	}
	if s.EdgeFactor <= 0 {
		return fmt.Errorf("synth: EdgeFactor=%v must be positive", s.EdgeFactor)
	}
	sum := s.A + s.B + s.C + s.D
	if sum < 0.999 || sum > 1.001 {
		return fmt.Errorf("synth: initiator sums to %v, want 1", sum)
	}
	if s.A < 0 || s.B < 0 || s.C < 0 || s.D < 0 {
		return fmt.Errorf("synth: negative initiator entry")
	}
	return nil
}

// Vertices returns 2^Scale.
func (s KroneckerSpec) Vertices() int64 { return 1 << s.Scale }

// Edges returns the number of edges to sample.
func (s KroneckerSpec) Edges() int64 {
	return int64(float64(s.Vertices()) * s.EdgeFactor)
}

// Graph is an in-memory directed graph in CSR-like form.
type Graph struct {
	Name   string
	N      int64      // vertices
	Edges  [][2]int32 // edge list (src, dst)
	OutDeg []int32
	MaxDeg int64
}

// Generate samples the graph. Self-loops are permitted (they occur in
// R-MAT output and are harmless to the workloads); duplicate edges are
// kept, as in the reference generator.
func (s KroneckerSpec) Generate() (*Graph, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(s.Seed)
	n := s.Vertices()
	e := s.Edges()
	g := &Graph{Name: s.Name, N: n, Edges: make([][2]int32, 0, e), OutDeg: make([]int32, n)}
	for i := int64(0); i < e; i++ {
		var src, dst int64
		for level := 0; level < s.Scale; level++ {
			u := rng.Float64()
			var bitS, bitD int64
			switch {
			case u < s.A:
				// top-left quadrant: both bits 0
			case u < s.A+s.B:
				bitD = 1
			case u < s.A+s.B+s.C:
				bitS = 1
			default:
				bitS, bitD = 1, 1
			}
			src = src<<1 | bitS
			dst = dst<<1 | bitD
		}
		g.Edges = append(g.Edges, [2]int32{int32(src), int32(dst)})
		g.OutDeg[src]++
	}
	for _, d := range g.OutDeg {
		if int64(d) > g.MaxDeg {
			g.MaxDeg = int64(d)
		}
	}
	return g, nil
}

// DegreeCoV returns the coefficient of variation of the out-degree
// distribution — the skew signal the engines use to size reduce-side
// working sets (a skewed graph concentrates messages on hub vertices).
func (g *Graph) DegreeCoV() float64 {
	xs := make([]float64, len(g.OutDeg))
	for i, d := range g.OutDeg {
		xs[i] = float64(d)
	}
	return stats.CoV(xs)
}

// Stats summarizes the graph as engine input: records are edges, keys
// are vertices.
func (s KroneckerSpec) Stats() InputStats {
	// Analytic summary without materializing the graph: degree skew of
	// an R-MAT graph grows with the imbalance of the initiator matrix.
	// We use (A+B)/(C+D) row imbalance mapped onto a [0,2.5] skew scale,
	// which tracks the measured DegreeCoV well (see kronecker_test.go).
	rowMax := s.A + s.B
	if s.C+s.D > rowMax {
		rowMax = s.C + s.D
	}
	colMax := s.A + s.C
	if s.B+s.D > colMax {
		colMax = s.B + s.D
	}
	imbalance := (rowMax + colMax) - 1 // 0 (uniform) .. 1 (degenerate)
	edges := s.Edges()
	const edgeBytes = 16 // two ids + payload
	return InputStats{
		Name:         s.Name,
		Records:      edges,
		Bytes:        edges * edgeBytes,
		DistinctKeys: s.Vertices(),
		Skew:         imbalance * 2.5,
		Vertices:     s.Vertices(),
		MaxDegree:    int64(float64(edges) * (0.02 + 0.3*imbalance)), // hub estimate
	}
}

// TableIIInput is one row of the paper's Table II: a named graph input
// with its role in the input-sensitivity study.
type TableIIInput struct {
	Spec     KroneckerSpec
	Kind     string // "Web graph", "Social Network", ...
	Training bool
}

// TableII returns the eight graph inputs of the paper's Table II as
// Kronecker parameterizations with distinct connectivity: web graphs are
// highly skewed, social networks moderately, road networks nearly
// uniform. scale is the Kronecker scale to synthesize at (the paper uses
// 20–24; tests and the default experiments use smaller scales — the
// *relative* structure between inputs is what matters).
func TableII(scale int, seed uint64) []TableIIInput {
	stream := uint64(0)
	mk := func(name string, a, b, c, d, ef float64) KroneckerSpec {
		stream++
		return KroneckerSpec{
			Name: name, Scale: scale, EdgeFactor: ef,
			A: a, B: b, C: c, D: d,
			Seed: stats.SplitSeed(seed, stream),
		}
	}
	// Edge factors are kept within ~30% of each other so the inputs are
	// volume-comparable and the sensitivity analysis isolates
	// *structural* diversity (degree skew, community mixing), which is
	// what the initiator matrices vary. The paper likewise synthesizes
	// size-comparable Kronecker versions of the SNAP seeds.
	return []TableIIInput{
		{Spec: mk("google", 0.57, 0.19, 0.19, 0.05, 16), Kind: "Web graph", Training: true},
		{Spec: mk("facebook", 0.45, 0.22, 0.22, 0.11, 16), Kind: "Social Network"},
		{Spec: mk("flickr", 0.48, 0.25, 0.20, 0.07, 15), Kind: "Online communities"},
		{Spec: mk("wikipedia", 0.52, 0.23, 0.18, 0.07, 15), Kind: "Online encyclopedia"},
		{Spec: mk("dblp", 0.40, 0.25, 0.25, 0.10, 14), Kind: "CS bibliography"},
		{Spec: mk("stanford", 0.59, 0.18, 0.18, 0.05, 16), Kind: "Web graph"},
		{Spec: mk("amazon", 0.42, 0.23, 0.23, 0.12, 13), Kind: "Co-purchasing network"},
		{Spec: mk("road", 0.26, 0.25, 0.25, 0.24, 12), Kind: "Road network"},
	}
}

// TableIIStats returns the InputStats of every Table II input, training
// input first (the order the sensitivity analysis expects).
func TableIIStats(scale int, seed uint64) []InputStats {
	inputs := TableII(scale, seed)
	sort.SliceStable(inputs, func(i, j int) bool { return inputs[i].Training && !inputs[j].Training })
	out := make([]InputStats, len(inputs))
	for i, in := range inputs {
		out[i] = in.Spec.Stats()
	}
	return out
}
