// Package synth provides the data synthesizers the paper relies on
// (BigDataBench's text generator and the Kronecker graph generator used
// to scale the SNAP seed graphs of Table II). Each synthesizer can both
// materialize actual data (for the datagen CLI and tests) and summarize
// itself into the statistics the execution engines consume: record
// counts, distinct-key cardinalities and skew, which drive working-set
// sizes and therefore cache behaviour.
package synth

import (
	"fmt"
	"io"
	"math"

	"simprof/internal/stats"
)

// TextSpec describes a synthetic text corpus with a Zipfian word
// distribution, the standard model for natural-language word frequency.
type TextSpec struct {
	Name       string
	SizeBytes  int64
	Vocab      int     // distinct words
	ZipfS      float64 // Zipf exponent (≈1.1 for natural text)
	AvgWordLen int     // bytes per word, excluding the separator
	Seed       uint64
}

// Validate checks the spec.
func (s TextSpec) Validate() error {
	if s.SizeBytes <= 0 {
		return fmt.Errorf("synth: SizeBytes=%d must be positive", s.SizeBytes)
	}
	if s.Vocab <= 0 {
		return fmt.Errorf("synth: Vocab=%d must be positive", s.Vocab)
	}
	if s.ZipfS <= 0 {
		return fmt.Errorf("synth: ZipfS=%v must be positive", s.ZipfS)
	}
	if s.AvgWordLen <= 0 {
		return fmt.Errorf("synth: AvgWordLen=%d must be positive", s.AvgWordLen)
	}
	return nil
}

// DefaultText returns the microbenchmark input: a scaled-down stand-in
// for the paper's 10GB text corpus (sizes are parameters; the default
// keeps laptop runs fast while preserving the skew structure).
func DefaultText(name string, size int64, seed uint64) TextSpec {
	return TextSpec{Name: name, SizeBytes: size, Vocab: 600_000, ZipfS: 1.1, AvgWordLen: 6, Seed: seed}
}

// Words estimates the number of word records in the corpus.
func (s TextSpec) Words() int64 {
	return s.SizeBytes / int64(s.AvgWordLen+1) // +1 for the separator
}

// Stats summarizes the corpus for the engines.
func (s TextSpec) Stats() InputStats {
	words := s.Words()
	distinct := int64(s.Vocab)
	if words < distinct {
		distinct = words
	}
	return InputStats{
		Name:         s.Name,
		Records:      words,
		Bytes:        s.SizeBytes,
		DistinctKeys: distinct,
		Skew:         s.ZipfS,
	}
}

// vocabulary deterministically names word rank r.
func vocabWord(r int, avgLen int) string {
	const letters = "abcdefghijklmnopqrstuvwxyz"
	buf := make([]byte, 0, avgLen+4)
	v := r + 1
	for v > 0 {
		buf = append(buf, letters[v%26])
		v /= 26
	}
	for len(buf) < avgLen {
		buf = append(buf, letters[(r*7+len(buf))%26])
	}
	return string(buf)
}

// Generate writes the synthetic corpus to w, up to SizeBytes. It returns
// the number of bytes and words written. The output is lines of
// space-separated words, ~80 bytes per line.
func (s TextSpec) Generate(w io.Writer) (bytes int64, words int64, err error) {
	if err := s.Validate(); err != nil {
		return 0, 0, err
	}
	rng := stats.NewRNG(s.Seed)
	z := stats.NewZipf(rng, s.Vocab, s.ZipfS)
	line := make([]byte, 0, 96)
	for bytes < s.SizeBytes {
		line = line[:0]
		for len(line) < 80 {
			word := vocabWord(z.Next(), s.AvgWordLen)
			if len(line) > 0 {
				line = append(line, ' ')
			}
			line = append(line, word...)
			words++
		}
		line = append(line, '\n')
		n, werr := w.Write(line)
		bytes += int64(n)
		if werr != nil {
			return bytes, words, fmt.Errorf("synth: generate text: %w", werr)
		}
	}
	return bytes, words, nil
}

// InputStats is the statistics summary of an input that the execution
// engines consume. It is the common currency between synthesizers and
// workloads.
type InputStats struct {
	Name         string
	Records      int64   // logical records (words, key-value pairs, edges)
	Bytes        int64   // raw size
	DistinctKeys int64   // key cardinality (vocabulary, vertices, ...)
	Skew         float64 // skew parameter of the key distribution
	Vertices     int64   // graphs only
	MaxDegree    int64   // graphs only
}

// RecordBytes returns the average record size.
func (s InputStats) RecordBytes() float64 {
	if s.Records == 0 {
		return 0
	}
	return float64(s.Bytes) / float64(s.Records)
}

// KVSpec describes a synthetic key-value data set (the Sort
// microbenchmark input).
type KVSpec struct {
	Name     string
	Records  int64
	KeyBytes int
	ValBytes int
	Distinct int64 // distinct keys; 0 means all unique
	Seed     uint64
}

// Stats summarizes the data set.
func (s KVSpec) Stats() InputStats {
	distinct := s.Distinct
	if distinct == 0 || distinct > s.Records {
		distinct = s.Records
	}
	return InputStats{
		Name:         s.Name,
		Records:      s.Records,
		Bytes:        s.Records * int64(s.KeyBytes+s.ValBytes),
		DistinctKeys: distinct,
		Skew:         0,
	}
}

// Generate writes records as "key\tvalue\n" lines.
func (s KVSpec) Generate(w io.Writer) (int64, error) {
	if s.Records <= 0 || s.KeyBytes <= 0 {
		return 0, fmt.Errorf("synth: invalid KVSpec %+v", s)
	}
	rng := stats.NewRNG(s.Seed)
	var written int64
	buf := make([]byte, 0, s.KeyBytes+s.ValBytes+2)
	const hexdigits = "0123456789abcdef"
	for i := int64(0); i < s.Records; i++ {
		buf = buf[:0]
		for j := 0; j < s.KeyBytes; j++ {
			buf = append(buf, hexdigits[rng.IntN(16)])
		}
		buf = append(buf, '\t')
		for j := 0; j < s.ValBytes; j++ {
			buf = append(buf, hexdigits[rng.IntN(16)])
		}
		buf = append(buf, '\n')
		n, err := w.Write(buf)
		written += int64(n)
		if err != nil {
			return written, fmt.Errorf("synth: generate kv: %w", err)
		}
	}
	return written, nil
}

// ZipfExpectedTopShare returns the expected share of occurrences of the
// most frequent key under Zipf(s) over n ranks — used by tests and by
// the engines to size per-key value lists.
func ZipfExpectedTopShare(n int, s float64) float64 {
	var total float64
	for i := 1; i <= n; i++ {
		total += math.Pow(float64(i), -s)
	}
	return 1 / total
}
