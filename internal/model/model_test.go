package model

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestInternReturnsStableIDs(t *testing.T) {
	tbl := NewTable()
	a := tbl.Intern("org.example.Foo", "bar", KindMap)
	b := tbl.Intern("org.example.Foo", "baz", KindReduce)
	if a == b {
		t.Fatalf("distinct methods share id %d", a)
	}
	if got := tbl.Intern("org.example.Foo", "bar", KindIO); got != a {
		t.Fatalf("re-intern changed id: got %d want %d", got, a)
	}
	// First interning's kind wins.
	if k := tbl.Kind(a); k != KindMap {
		t.Fatalf("kind changed on re-intern: got %v want %v", k, KindMap)
	}
	if tbl.Len() != 2 {
		t.Fatalf("Len=%d want 2", tbl.Len())
	}
}

func TestLookup(t *testing.T) {
	tbl := NewTable()
	id := tbl.Intern("C", "m", KindSort)
	got, ok := tbl.Lookup("C", "m")
	if !ok || got != id {
		t.Fatalf("Lookup = (%d,%v), want (%d,true)", got, ok, id)
	}
	if _, ok := tbl.Lookup("C", "missing"); ok {
		t.Fatal("Lookup found a method that was never interned")
	}
}

func TestMethodFQNAndFormatStack(t *testing.T) {
	tbl := NewTable()
	a := tbl.Intern("java.lang.Thread", "run", KindFramework)
	b := tbl.Intern("org.apache.spark.Aggregator", "combineValuesByKey", KindReduce)
	s := Stack{a, b}
	out := tbl.FormatStack(s)
	if !strings.Contains(out, "java.lang.Thread.run") ||
		!strings.Contains(out, "Aggregator.combineValuesByKey") {
		t.Fatalf("FormatStack missing frames:\n%s", out)
	}
	if got := tbl.FQN(b); got != "org.apache.spark.Aggregator.combineValuesByKey" {
		t.Fatalf("FQN = %q", got)
	}
}

func TestStackLeafCloneEqual(t *testing.T) {
	var empty Stack
	if empty.Leaf() != NoMethod {
		t.Fatal("empty stack leaf should be NoMethod")
	}
	s := Stack{1, 2, 3}
	if s.Leaf() != 3 {
		t.Fatalf("Leaf=%d want 3", s.Leaf())
	}
	c := s.Clone()
	if !s.Equal(c) {
		t.Fatal("clone not equal to original")
	}
	c[0] = 9
	if s.Equal(c) {
		t.Fatal("mutated clone still equal")
	}
	if s[0] != 1 {
		t.Fatal("clone aliases original")
	}
	if s.Equal(Stack{1, 2}) {
		t.Fatal("different lengths compare equal")
	}
}

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindOther: "other", KindFramework: "framework", KindMap: "map",
		KindReduce: "reduce", KindSort: "sort", KindIO: "io",
	}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("Kind(%d).String()=%q want %q", k, k.String(), want)
		}
		if !k.Valid() {
			t.Errorf("Kind %v should be valid", k)
		}
	}
	if Kind(200).Valid() {
		t.Error("Kind(200) should be invalid")
	}
}

func TestByKind(t *testing.T) {
	tbl := NewTable()
	tbl.Intern("A", "x", KindMap)
	m2 := tbl.Intern("A", "y", KindSort)
	m3 := tbl.Intern("A", "z", KindSort)
	got := tbl.ByKind(KindSort)
	if len(got) != 2 || got[0] != m2 || got[1] != m3 {
		t.Fatalf("ByKind(Sort)=%v want [%d %d]", got, m2, m3)
	}
}

func TestConcurrentIntern(t *testing.T) {
	tbl := NewTable()
	var wg sync.WaitGroup
	ids := make([]MethodID, 64)
	for g := 0; g < 64; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ids[g] = tbl.Intern("C", "shared", KindOther)
		}(g)
	}
	wg.Wait()
	for _, id := range ids {
		if id != ids[0] {
			t.Fatalf("concurrent intern produced distinct ids: %v", ids)
		}
	}
	if tbl.Len() != 1 {
		t.Fatalf("Len=%d want 1", tbl.Len())
	}
}

func TestPropertyInternIdempotent(t *testing.T) {
	tbl := NewTable()
	f := func(class, name string, kind uint8) bool {
		k := Kind(kind % uint8(NumKinds))
		a := tbl.Intern(class, name, k)
		b := tbl.Intern(class, name, k)
		return a == b && tbl.Method(a).Class == class && tbl.Method(a).Name == name
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
