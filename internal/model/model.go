// Package model defines the vocabulary shared by every SimProf substrate:
// interned method identities, method kinds (the operation categories used
// for phase-type classification, Fig. 10 of the paper), and call stacks.
//
// Engines (internal/spark, internal/hadoop) intern the methods they
// "execute" into a Table once, then refer to them by MethodID so that call
// stacks are cheap to copy and compare. The profiler and phase-formation
// layers only ever see MethodIDs; names are recovered from the Table for
// reporting.
package model

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Kind classifies a method by the dominant operation it performs. The
// paper buckets phases of key-value workloads into map, reduce, sort and
// IO types; Framework marks executor scaffolding (thread start, task
// dispatch) and Other everything else.
type Kind uint8

// Method kinds, ordered roughly by how "frameworky" they are.
const (
	KindOther Kind = iota
	KindFramework
	KindMap
	KindReduce
	KindSort
	KindIO
	numKinds
)

// NumKinds is the number of distinct method kinds.
const NumKinds = int(numKinds)

var kindNames = [...]string{"other", "framework", "map", "reduce", "sort", "io"}

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Valid reports whether k is one of the defined kinds.
func (k Kind) Valid() bool { return k < numKinds }

// MethodID is a dense index into a Table. The zero value is NoMethod.
type MethodID int32

// NoMethod is the invalid method id.
const NoMethod MethodID = -1

// Method is one interned method.
type Method struct {
	ID    MethodID
	Class string // e.g. "org.apache.spark.Aggregator"
	Name  string // e.g. "combineValuesByKey"
	Kind  Kind
}

// FQN returns "Class.Name".
func (m Method) FQN() string { return m.Class + "." + m.Name }

// Stack is a call stack, outermost frame first (index 0 is the thread
// entry point, the last element is the currently executing method).
type Stack []MethodID

// Leaf returns the innermost (currently executing) method, or NoMethod
// for an empty stack.
func (s Stack) Leaf() MethodID {
	if len(s) == 0 {
		return NoMethod
	}
	return s[len(s)-1]
}

// Clone returns a copy of the stack.
func (s Stack) Clone() Stack {
	out := make(Stack, len(s))
	copy(out, s)
	return out
}

// Equal reports whether two stacks are frame-for-frame identical.
func (s Stack) Equal(o Stack) bool {
	if len(s) != len(o) {
		return false
	}
	for i, id := range s {
		if o[i] != id {
			return false
		}
	}
	return true
}

// Table interns methods and assigns dense MethodIDs. It is safe for
// concurrent use; interning an already-present FQN returns the existing
// id (the kind of the first interning wins).
type Table struct {
	mu      sync.RWMutex
	methods []Method
	byFQN   map[string]MethodID
}

// NewTable returns an empty method table.
func NewTable() *Table {
	return &Table{byFQN: make(map[string]MethodID)}
}

// Intern returns the id for class.name, creating it with the given kind
// if it was not present.
func (t *Table) Intern(class, name string, kind Kind) MethodID {
	fqn := class + "." + name
	t.mu.RLock()
	id, ok := t.byFQN[fqn]
	t.mu.RUnlock()
	if ok {
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if id, ok := t.byFQN[fqn]; ok {
		return id
	}
	id = MethodID(len(t.methods))
	t.methods = append(t.methods, Method{ID: id, Class: class, Name: name, Kind: kind})
	t.byFQN[fqn] = id
	return id
}

// Lookup returns the id for class.name and whether it is interned.
func (t *Table) Lookup(class, name string) (MethodID, bool) {
	t.mu.RLock()
	defer t.mu.RUnlock()
	id, ok := t.byFQN[class+"."+name]
	return id, ok
}

// Method returns the method for id. It panics on an out-of-range id,
// which always indicates corrupted trace data.
func (t *Table) Method(id MethodID) Method {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.methods[id]
}

// Kind returns the kind of id.
func (t *Table) Kind(id MethodID) Kind { return t.Method(id).Kind }

// FQN returns the fully qualified name of id.
func (t *Table) FQN(id MethodID) string { return t.Method(id).FQN() }

// Len returns the number of interned methods.
func (t *Table) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.methods)
}

// Methods returns a copy of all interned methods in id order.
func (t *Table) Methods() []Method {
	t.mu.RLock()
	defer t.mu.RUnlock()
	out := make([]Method, len(t.methods))
	copy(out, t.methods)
	return out
}

// FormatStack renders a stack one frame per line, outermost first,
// mirroring the call-stack figure in the paper.
func (t *Table) FormatStack(s Stack) string {
	var b strings.Builder
	for i, id := range s {
		fmt.Fprintf(&b, "%2d: %s\n", i+1, t.FQN(id))
	}
	return b.String()
}

// ByKind returns the interned method ids of the given kind, sorted.
func (t *Table) ByKind(k Kind) []MethodID {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var out []MethodID
	for _, m := range t.methods {
		if m.Kind == k {
			out = append(out, m.ID)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
