package spark

import (
	"testing"

	"simprof/internal/cpu"
	"simprof/internal/exec"
	"simprof/internal/model"
)

func TestGroupByKeyPipelinesFetch(t *testing.T) {
	// GroupByKey has no reduce-side aggregation: the fetch iterator
	// pipelines into the downstream chain, so fetch frames appear
	// nested under the downstream consumer's frames.
	ctx := newCtx(t)
	grouped := ctx.TextFile(textInput(), 8).
		Map(mapSpec("pair", 40)).
		GroupByKey(8)
	downstream := mapSpec("emit", 30)
	grouped.Map(downstream).Count()
	threads, err := ctx.Run()
	if err != nil {
		t.Fatal(err)
	}
	fetchID, ok := ctx.VM().Table.Lookup("org.apache.spark.storage.ShuffleBlockFetcherIterator", "next")
	if !ok {
		t.Fatal("fetch frame never interned")
	}
	emitID, _ := ctx.VM().Table.Lookup("app.emit", "apply")
	nested := false
	for _, th := range threads {
		for _, seg := range th.Segments {
			sawEmit := false
			for _, id := range seg.Stack {
				if id == emitID {
					sawEmit = true
				}
				if id == fetchID && sawEmit {
					nested = true
				}
			}
		}
	}
	if !nested {
		t.Fatal("fetch not pipelined under the downstream consumer")
	}
}

func TestUnionEmitsBothBranches(t *testing.T) {
	ctx := newCtx(t)
	a := ctx.TextFile(textInput(), 3).Map(mapSpec("left", 40))
	b := ctx.TextFile(textInput(), 4).Map(mapSpec("right", 40))
	a.Union(b).Count()
	threads, err := ctx.Run()
	if err != nil {
		t.Fatal(err)
	}
	leaves := stackFQNs(t, ctx, threads)
	foundLeft, foundRight := false, false
	for fqn := range leaves {
		switch fqn {
		case "app.left.apply":
			foundLeft = true
		case "app.right.apply":
			foundRight = true
		}
	}
	// The ops may also be observed via helper leaves; check full stacks.
	if !foundLeft || !foundRight {
		for _, th := range threads {
			for _, seg := range th.Segments {
				for _, id := range seg.Stack {
					switch ctx.VM().Table.FQN(id) {
					case "app.left.apply":
						foundLeft = true
					case "app.right.apply":
						foundRight = true
					}
				}
			}
		}
	}
	if !foundLeft || !foundRight {
		t.Fatalf("union branch ops missing: left=%v right=%v", foundLeft, foundRight)
	}
}

func TestMaterializeSplitsPipeline(t *testing.T) {
	// A materializing narrow op must never share a segment stack with
	// its upstream ops.
	ctx := newCtx(t)
	mat := exec.FuncSpec{
		Class: "app.cached", Method: "apply", Kind: model.KindMap,
		InstrPerRec: 50, BaseCPI: 0.6,
		Pattern:     cpu.PatternSequential,
		WS:          exec.WorkingSet{Kind: exec.WSPartitionBytes},
		Materialize: true,
	}
	ctx.TextFile(textInput(), 4).Map(mapSpec("pre", 40)).Map(mat).Map(mapSpec("post", 40)).Count()
	threads, err := ctx.Run()
	if err != nil {
		t.Fatal(err)
	}
	matID, _ := ctx.VM().Table.Lookup("app.cached", "apply")
	preID, _ := ctx.VM().Table.Lookup("app.pre", "apply")
	postID, _ := ctx.VM().Table.Lookup("app.post", "apply")
	sawMat := false
	for _, th := range threads {
		for _, seg := range th.Segments {
			hasMat, hasPre, hasPost := false, false, false
			for _, id := range seg.Stack {
				switch id {
				case matID:
					hasMat = true
				case preID:
					hasPre = true
				case postID:
					hasPost = true
				}
			}
			if hasMat {
				sawMat = true
				if hasPre || hasPost {
					t.Fatalf("materialized op shares a stack with its pipeline: %v",
						ctx.VM().Table.FormatStack(seg.Stack))
				}
			}
		}
	}
	if !sawMat {
		t.Fatal("materialized op never executed")
	}
}

func TestGCOptionReachesEmitter(t *testing.T) {
	cfg := Config{Cores: 2, Seed: 1, GC: exec.GCConfig{Enabled: true, YoungGenBytes: 8 << 20}}
	ctx, err := NewContext("gc", cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx.TextFile(textInput(), 4).Map(mapSpec("m", 200)).Count()
	threads, err := ctx.Run()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := ctx.VM().Table.Lookup("sun.jvm.GCTaskThread", "run"); !ok {
		t.Fatal("GC frames absent despite enabled GC")
	}
	_ = threads
}
