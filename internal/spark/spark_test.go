package spark

import (
	"strings"
	"testing"

	"simprof/internal/cpu"
	"simprof/internal/exec"
	"simprof/internal/model"
	"simprof/internal/synth"
)

func textInput() synth.InputStats {
	return synth.InputStats{Name: "t", Records: 1_000_000, Bytes: 8 << 20, DistinctKeys: 10_000, Skew: 1.1}
}

func mapSpec(name string, instr float64) exec.FuncSpec {
	return exec.FuncSpec{
		Class: "app." + name, Method: "apply", Kind: model.KindMap,
		InstrPerRec: instr, BaseCPI: 0.55,
		Pattern: cpu.PatternSequential,
		WS:      exec.WorkingSet{Kind: exec.WSPartitionBytes},
	}
}

func aggSpec() exec.FuncSpec {
	return exec.FuncSpec{
		Class: "org.apache.spark.Aggregator", Method: "combineCombinersByKey",
		Kind: model.KindReduce, InstrPerRec: 50, BaseCPI: 0.65,
		Pattern: cpu.PatternRandom,
		WS:      exec.WorkingSet{Kind: exec.WSDistinctKeys},
	}
}

func newCtx(t *testing.T) *Context {
	t.Helper()
	ctx, err := NewContext("test", Config{Cores: 4, Seed: 1, ChunkInstr: 500_000})
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

func TestNewContextValidation(t *testing.T) {
	if _, err := NewContext("x", Config{Cores: 0}); err == nil {
		t.Fatal("Cores=0 should fail")
	}
}

func TestRunWithoutActionFails(t *testing.T) {
	ctx := newCtx(t)
	ctx.TextFile(textInput(), 8)
	if _, err := ctx.Run(); err == nil {
		t.Fatal("Run without action should fail")
	}
}

func TestWordCountStagePlan(t *testing.T) {
	ctx := newCtx(t)
	lines := ctx.TextFile(textInput(), 8)
	counts := lines.FlatMap(mapSpec("tok", 80)).Map(mapSpec("pair", 40)).ReduceByKey(aggSpec(), 8)
	counts.SaveAsTextFile("out")
	stages := ctx.planStages(ctx.jobs[0])
	if len(stages) != 2 {
		t.Fatalf("stages=%d want 2", len(stages))
	}
	if stages[0].feeds == nil || !stages[0].feeds.combine {
		t.Fatal("map stage should feed a combining shuffle")
	}
	if stages[1].feeds != nil || !stages[1].isResult || !stages[1].save {
		t.Fatalf("result stage wrong: %+v", stages[1])
	}
	if stages[0].NumTasks() != 8 || stages[1].NumTasks() != 8 {
		t.Fatalf("task counts %d/%d", stages[0].NumTasks(), stages[1].NumTasks())
	}
	if len(stages[0].pipelines[0].ops) != 2 {
		t.Fatalf("map stage ops=%d want 2 pipelined", len(stages[0].pipelines[0].ops))
	}
}

func TestGrepSingleStage(t *testing.T) {
	ctx := newCtx(t)
	f := mapSpec("grep", 60)
	f.Selectivity = 0.001
	ctx.TextFile(textInput(), 8).Filter(f).Count()
	stages := ctx.planStages(ctx.jobs[0])
	if len(stages) != 1 {
		t.Fatalf("grep stages=%d want 1", len(stages))
	}
	if stages[0].feeds != nil || stages[0].save {
		t.Fatal("grep stage should be a pure result stage")
	}
}

func TestIterativeLineageManyStages(t *testing.T) {
	ctx := newCtx(t)
	cur := ctx.TextFile(textInput(), 4).Map(mapSpec("seed", 10))
	for i := 0; i < 5; i++ {
		cur = cur.Map(mapSpec("scan", 20)).AggregateUsingIndex(aggSpec(), 4)
	}
	cur.Count()
	stages := ctx.planStages(ctx.jobs[0])
	if len(stages) != 6 {
		t.Fatalf("stages=%d want 6 (5 shuffles + result)", len(stages))
	}
}

func TestRunProducesExecutorThreads(t *testing.T) {
	ctx := newCtx(t)
	lines := ctx.TextFile(textInput(), 8)
	lines.FlatMap(mapSpec("tok", 80)).ReduceByKey(aggSpec(), 8).SaveAsTextFile("out")
	threads, err := ctx.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(threads) != 4 {
		t.Fatalf("threads=%d want cores=4", len(threads))
	}
	for _, th := range threads {
		if !strings.Contains(th.Name, "Executor task launch worker") {
			t.Fatalf("thread name %q", th.Name)
		}
		if len(th.Segments) == 0 {
			t.Fatal("idle executor thread")
		}
		// Base frames on every segment.
		for _, seg := range th.Segments {
			if len(seg.Stack) < 4 {
				t.Fatalf("segment stack too shallow: %v", seg.Stack)
			}
			fqn := ctx.VM().Table.FQN(seg.Stack[0])
			if fqn != "java.lang.Thread.run" {
				t.Fatalf("outermost frame %q", fqn)
			}
		}
	}
}

// stackFQNs renders all distinct leaf FQNs across threads.
func stackFQNs(t *testing.T, ctx *Context, threads []*cpu.Thread) map[string]bool {
	t.Helper()
	out := map[string]bool{}
	for _, th := range threads {
		for _, seg := range th.Segments {
			out[ctx.VM().Table.FQN(seg.Stack.Leaf())] = true
		}
	}
	return out
}

func TestMapSideCombineFramesPresent(t *testing.T) {
	ctx := newCtx(t)
	ctx.TextFile(textInput(), 8).
		Map(mapSpec("pair", 40)).
		ReduceByKey(aggSpec(), 8).
		SaveAsTextFile("out")
	threads, err := ctx.Run()
	if err != nil {
		t.Fatal(err)
	}
	leaves := stackFQNs(t, ctx, threads)
	if !leaves["org.apache.spark.util.collection.ExternalAppendOnlyMap.insertAll"] {
		t.Fatalf("map-side combine frames missing; leaves=%v", keys(leaves))
	}
	if !leaves["org.apache.spark.storage.ShuffleBlockFetcherIterator.next"] {
		t.Fatal("shuffle fetch frames missing")
	}
	if !leaves["org.apache.hadoop.hdfs.DFSOutputStream.write"] {
		t.Fatal("save frames missing")
	}
	// The Aggregator frame must appear as a parent of insertAll.
	found := false
	for _, th := range threads {
		for _, seg := range th.Segments {
			for _, id := range seg.Stack {
				if ctx.VM().Table.FQN(id) == "org.apache.spark.Aggregator.combineValuesByKey" {
					found = true
				}
			}
		}
	}
	if !found {
		t.Fatal("Aggregator.combineValuesByKey not on any stack")
	}
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestSortByKeyEmitsSorter(t *testing.T) {
	ctx := newCtx(t)
	ctx.TextFile(textInput(), 8).Map(mapSpec("parse", 30)).SortByKey(8).SaveAsTextFile("out")
	threads, _ := ctx.Run()
	leaves := stackFQNs(t, ctx, threads)
	if !leaves["org.apache.spark.util.collection.ExternalSorter.insertAll"] {
		t.Fatal("sorter frames missing")
	}
}

func TestUnionPipelines(t *testing.T) {
	ctx := newCtx(t)
	a := ctx.TextFile(textInput(), 4).Map(mapSpec("a", 30))
	b := ctx.TextFile(textInput(), 3).Map(mapSpec("b", 30))
	u := a.Union(b)
	u.Count()
	stages := ctx.planStages(ctx.jobs[0])
	if len(stages) != 1 {
		t.Fatalf("union stages=%d want 1", len(stages))
	}
	if len(stages[0].pipelines) != 2 {
		t.Fatalf("pipelines=%d want 2", len(stages[0].pipelines))
	}
	if stages[0].NumTasks() != 7 {
		t.Fatalf("tasks=%d want 7", stages[0].NumTasks())
	}
	if u.Stats().Records != 2*textInput().Records {
		t.Fatalf("union records=%d", u.Stats().Records)
	}
}

func TestStatsPropagation(t *testing.T) {
	ctx := newCtx(t)
	in := textInput()
	lines := ctx.TextFile(in, 8)
	if lines.Stats().Records != in.Records {
		t.Fatal("source stats wrong")
	}
	f := mapSpec("fan", 10)
	f.Fanout = 2
	doubled := lines.FlatMap(f)
	if doubled.Stats().Records != 2*in.Records {
		t.Fatalf("fanout records=%d", doubled.Stats().Records)
	}
	reduced := doubled.ReduceByKey(aggSpec(), 8)
	if reduced.Stats().Records != in.DistinctKeys {
		t.Fatalf("reduceByKey records=%d want distinct=%d", reduced.Stats().Records, in.DistinctKeys)
	}
}

func TestRunDeterminism(t *testing.T) {
	build := func() []*cpu.Thread {
		ctx := newCtx(t)
		ctx.TextFile(textInput(), 8).FlatMap(mapSpec("tok", 80)).
			ReduceByKey(aggSpec(), 8).SaveAsTextFile("out")
		threads, err := ctx.Run()
		if err != nil {
			t.Fatal(err)
		}
		return threads
	}
	a, b := build(), build()
	if len(a) != len(b) {
		t.Fatal("thread counts differ")
	}
	for i := range a {
		if len(a[i].Segments) != len(b[i].Segments) {
			t.Fatalf("thread %d segment counts differ", i)
		}
		if a[i].Instructions() != b[i].Instructions() {
			t.Fatalf("thread %d instruction counts differ", i)
		}
	}
}

func TestTasksBalancedAcrossThreads(t *testing.T) {
	ctx := newCtx(t)
	ctx.TextFile(textInput(), 16).Map(mapSpec("m", 100)).Count()
	threads, _ := ctx.Run()
	var minI, maxI uint64 = ^uint64(0), 0
	for _, th := range threads {
		n := th.Instructions()
		if n < minI {
			minI = n
		}
		if n > maxI {
			maxI = n
		}
	}
	if float64(maxI) > 1.6*float64(minI) {
		t.Fatalf("load imbalance: min=%d max=%d", minI, maxI)
	}
}
