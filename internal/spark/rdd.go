// Package spark simulates the Apache Spark execution model the paper
// profiles: RDD lineage graphs split into stages at shuffle boundaries,
// per-partition tasks pipelining narrow transformations, long-lived
// executor threads (one per core, alive for the whole job), map-side
// combine through the Aggregator, and shuffle/HDFS IO. Workloads build
// jobs with the familiar RDD API; Run compiles them into jvm threads for
// the machine in internal/cpu.
package spark

import (
	"fmt"

	"simprof/internal/exec"
	"simprof/internal/hdfs"
	"simprof/internal/jvm"
	"simprof/internal/model"
	"simprof/internal/stats"
	"simprof/internal/synth"
)

// Config parameterizes a Context.
type Config struct {
	Cores      int // executor threads (one per core)
	Seed       uint64
	ChunkInstr uint64       // segment granularity (default 1M)
	Table      *model.Table // shared method table (optional)
	IOCost     hdfs.CostModel
	GC         exec.GCConfig // opt-in JVM garbage-collection model
}

// Context is the SparkContext analogue: it owns the lineage graph and
// compiles actions into executor threads.
type Context struct {
	name    string
	vm      *jvm.VM
	cfg     Config
	emitter *exec.Emitter
	rdds    []*RDD
	jobs    []*job
}

// NewContext creates a context. Cores must be positive.
func NewContext(name string, cfg Config) (*Context, error) {
	if cfg.Cores <= 0 {
		return nil, fmt.Errorf("spark: Cores=%d must be positive", cfg.Cores)
	}
	if cfg.IOCost == (hdfs.CostModel{}) {
		cfg.IOCost = hdfs.DefaultCostModel()
	}
	vm := jvm.NewVM()
	if cfg.Table != nil {
		vm = jvm.NewVMWithTable(cfg.Table)
	}
	em := exec.NewEmitter(stats.SplitSeed(cfg.Seed, 0xa11), cfg.ChunkInstr)
	em.GC = cfg.GC
	return &Context{
		name:    name,
		vm:      vm,
		cfg:     cfg,
		emitter: em,
	}, nil
}

// VM exposes the simulated JVM (for profiling).
func (c *Context) VM() *jvm.VM { return c.vm }

// depKind distinguishes how an RDD obtains its input.
type depKind uint8

const (
	depSource  depKind = iota // reads HDFS
	depNarrow                 // pipelined within the parent's stage
	depShuffle                // stage boundary
	depUnion                  // narrow over two parents
)

// shuffleSpec describes the shuffle that materializes a wide RDD.
type shuffleSpec struct {
	combine  bool // map-side combine (reduceByKey)
	sortSide bool // reduce-side sort (sortByKey)
	// aggregate is the user merge function applied while combining
	// (both map- and reduce-side); nil for pure groupBy/sort.
	aggregate *exec.FuncSpec
	// graphx marks GraphX's aggregateUsingIndex, which uses its own
	// frames and a vertex-index working set.
	graphx bool
}

// RDD is one node of the lineage graph.
type RDD struct {
	ctx        *Context
	id         int
	name       string
	dep        depKind
	parent     *RDD
	parent2    *RDD // union only
	partitions int

	// source input
	input synth.InputStats

	// narrow transformation ops (applied in order within the task)
	fns []exec.FuncSpec

	// shuffle dependency (dep == depShuffle)
	shuffle *shuffleSpec

	// outStats is the whole-RDD output statistics.
	outStats exec.PartStats
}

func (c *Context) newRDD(name string, dep depKind) *RDD {
	r := &RDD{ctx: c, id: len(c.rdds), name: name, dep: dep}
	c.rdds = append(c.rdds, r)
	return r
}

// Stats returns the whole-RDD output statistics.
func (r *RDD) Stats() exec.PartStats { return r.outStats }

// Partitions returns the RDD's partition count.
func (r *RDD) Partitions() int { return r.partitions }

// String renders like Spark's debug output.
func (r *RDD) String() string {
	return fmt.Sprintf("%s[%d] partitions=%d records=%d", r.name, r.id, r.partitions, r.outStats.Records)
}

// TextFile reads an input data set from HDFS, one partition per split.
func (c *Context) TextFile(in synth.InputStats, partitions int) *RDD {
	if partitions <= 0 {
		partitions = c.cfg.Cores * 2
	}
	r := c.newRDD("HadoopRDD", depSource)
	r.partitions = partitions
	r.input = in
	r.outStats = exec.PartStats{
		Records:      in.Records,
		Bytes:        in.Bytes,
		DistinctKeys: in.DistinctKeys,
		Skew:         in.Skew,
	}
	return r
}

// Transform applies narrow per-record operations (the generic form
// behind Map/FlatMap/Filter/MapPartitions).
func (r *RDD) Transform(name string, fns ...exec.FuncSpec) *RDD {
	out := r.ctx.newRDD(name, depNarrow)
	out.parent = r
	out.partitions = r.partitions
	out.fns = fns
	st := r.outStats
	for _, f := range fns {
		st = f.Out(st)
	}
	out.outStats = st
	return out
}

// Map applies a 1:1 user function.
func (r *RDD) Map(f exec.FuncSpec) *RDD { return r.Transform("MapPartitionsRDD", f) }

// FlatMap applies a 1:N user function (set f.Fanout).
func (r *RDD) FlatMap(f exec.FuncSpec) *RDD { return r.Transform("MapPartitionsRDD", f) }

// Filter applies a predicate (set f.Selectivity).
func (r *RDD) Filter(f exec.FuncSpec) *RDD { return r.Transform("MapPartitionsRDD", f) }

// MapPartitionsWithIndex applies a per-partition function; GraphX's
// edge-scan phases use this form.
func (r *RDD) MapPartitionsWithIndex(f exec.FuncSpec) *RDD {
	return r.Transform("MapPartitionsRDD", f)
}

// Union concatenates two RDDs without a shuffle.
func (r *RDD) Union(other *RDD) *RDD {
	out := r.ctx.newRDD("UnionRDD", depUnion)
	out.parent = r
	out.parent2 = other
	out.partitions = r.partitions + other.partitions
	out.outStats = exec.PartStats{
		Records:      r.outStats.Records + other.outStats.Records,
		Bytes:        r.outStats.Bytes + other.outStats.Bytes,
		DistinctKeys: maxI64(r.outStats.DistinctKeys, other.outStats.DistinctKeys),
		Skew:         (r.outStats.Skew + other.outStats.Skew) / 2,
	}
	return out
}

// ReduceByKey shuffles with map-side combine (the Aggregator path the
// paper dissects for wc_sp in Fig. 14). agg is the user merge function;
// its WS/Pattern govern the combine's memory behaviour.
func (r *RDD) ReduceByKey(agg exec.FuncSpec, partitions int) *RDD {
	if partitions <= 0 {
		partitions = r.partitions
	}
	out := r.ctx.newRDD("ShuffledRDD", depShuffle)
	out.parent = r
	out.partitions = partitions
	a := agg
	out.shuffle = &shuffleSpec{combine: true, aggregate: &a}
	in := r.outStats
	out.outStats = exec.PartStats{
		Records:      minI64(in.Records, in.DistinctKeys),
		DistinctKeys: in.DistinctKeys,
		Skew:         in.Skew,
	}
	out.outStats.Bytes = int64(float64(out.outStats.Records) * in.AvgRecordBytes())
	return out
}

// GroupByKey shuffles without map-side combine: all records cross the
// wire and the reduce side groups them.
func (r *RDD) GroupByKey(partitions int) *RDD {
	if partitions <= 0 {
		partitions = r.partitions
	}
	out := r.ctx.newRDD("ShuffledRDD", depShuffle)
	out.parent = r
	out.partitions = partitions
	out.shuffle = &shuffleSpec{}
	in := r.outStats
	out.outStats = exec.PartStats{
		Records:      minI64(in.Records, in.DistinctKeys),
		Bytes:        in.Bytes,
		DistinctKeys: in.DistinctKeys,
		Skew:         in.Skew,
	}
	return out
}

// SortByKey shuffles with a reduce-side ExternalSorter (range
// partitioning + per-partition sort).
func (r *RDD) SortByKey(partitions int) *RDD {
	if partitions <= 0 {
		partitions = r.partitions
	}
	out := r.ctx.newRDD("ShuffledRDD", depShuffle)
	out.parent = r
	out.partitions = partitions
	out.shuffle = &shuffleSpec{sortSide: true}
	out.outStats = r.outStats
	return out
}

// AggregateUsingIndex is GraphX's message-combining shuffle: messages
// are reduced into the vertex index. agg describes the user merge
// function over per-vertex state.
func (r *RDD) AggregateUsingIndex(agg exec.FuncSpec, partitions int) *RDD {
	if partitions <= 0 {
		partitions = r.partitions
	}
	out := r.ctx.newRDD("VertexRDD", depShuffle)
	out.parent = r
	out.partitions = partitions
	a := agg
	out.shuffle = &shuffleSpec{combine: true, aggregate: &a, graphx: true}
	in := r.outStats
	out.outStats = exec.PartStats{
		Records:      minI64(in.Records, in.DistinctKeys),
		DistinctKeys: in.DistinctKeys,
		Skew:         in.Skew,
	}
	out.outStats.Bytes = int64(float64(out.outStats.Records) * 16)
	return out
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
