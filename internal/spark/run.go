package spark

import (
	"fmt"

	"simprof/internal/cpu"
	"simprof/internal/exec"
	"simprof/internal/jvm"
	"simprof/internal/model"
)

// job is one action: it forces the lineage ending at final.
type job struct {
	name  string
	final *RDD
	save  bool // write the result to HDFS
}

// SaveAsTextFile registers an action that writes the RDD to HDFS.
func (r *RDD) SaveAsTextFile(path string) {
	r.ctx.jobs = append(r.ctx.jobs, &job{name: "saveAsTextFile:" + path, final: r, save: true})
}

// Count registers a counting action (no output IO).
func (r *RDD) Count() {
	r.ctx.jobs = append(r.ctx.jobs, &job{name: "count", final: r})
}

// Collect registers a collect action (results stream back to the
// driver; negligible executor-side IO).
func (r *RDD) Collect() {
	r.ctx.jobs = append(r.ctx.jobs, &job{name: "collect", final: r})
}

// pipeline is one narrow-op chain executed inside a task.
type pipeline struct {
	head       *RDD // depSource or depShuffle RDD providing the input
	ops        []exec.FuncSpec
	partitions int
}

// stage is a set of tasks separated from the rest of the job by shuffle
// boundaries.
type stage struct {
	id         int
	pipelines  []pipeline
	out        *RDD         // last RDD computed by the stage
	feeds      *shuffleSpec // non-nil: ShuffleMapTask writing this shuffle
	feedsParts int
	isResult   bool
	save       bool
}

// NumTasks returns the stage's task count.
func (s *stage) NumTasks() int {
	n := 0
	for _, p := range s.pipelines {
		n += p.partitions
	}
	return n
}

// planStages flattens the lineage of a job's final RDD into stages in
// execution order (parents before consumers), exactly like Spark's
// DAGScheduler: narrow dependencies pipeline into one stage, shuffle
// dependencies cut.
func (c *Context) planStages(j *job) []*stage {
	var stages []*stage
	planned := map[int]bool{} // shuffle-RDD id → stage already planned
	var plan func(target *RDD, result bool) *stage
	plan = func(target *RDD, result bool) *stage {
		// Walk narrow deps back to the stage inputs, collecting ops.
		var pipes []pipeline
		var walk func(r *RDD) pipeline
		walk = func(r *RDD) pipeline {
			switch r.dep {
			case depSource:
				return pipeline{head: r, partitions: r.partitions}
			case depShuffle:
				if !planned[r.id] {
					planned[r.id] = true
					stages = append(stages, plan(r.parent, false))
					// Tag the parent stage with the shuffle it feeds.
					parentStage := stages[len(stages)-1]
					parentStage.feeds = r.shuffle
					parentStage.feedsParts = r.partitions
				}
				return pipeline{head: r, partitions: r.partitions}
			case depNarrow:
				p := walk(r.parent)
				p.ops = append(p.ops, r.fns...)
				return p
			case depUnion:
				p1 := walk(r.parent)
				p2 := walk(r.parent2)
				pipes = append(pipes, p2) // second branch becomes its own pipeline
				return pipeline{head: p1.head, ops: p1.ops, partitions: p1.partitions}
			default:
				panic(fmt.Sprintf("spark: unknown dep %d", r.dep))
			}
		}
		main := walk(target)
		pipes = append([]pipeline{main}, pipes...)
		return &stage{pipelines: pipes, out: target, isResult: result, save: result && j.save}
	}
	final := plan(j.final, true)
	stages = append(stages, final)
	for i, s := range stages {
		s.id = i
	}
	return stages
}

// divideStats splits whole-RDD stats across n tasks. Distinct keys do
// not divide for map-side structures (every partition of a text corpus
// sees most of the vocabulary) but do divide for hash-partitioned
// reduce sides; callers pick via divideKeys.
func divideStats(st exec.PartStats, n int, divideKeys bool) exec.PartStats {
	if n <= 0 {
		n = 1
	}
	out := st
	out.Records = st.Records / int64(n)
	out.Bytes = st.Bytes / int64(n)
	if divideKeys {
		out.DistinctKeys = st.DistinctKeys / int64(n)
	}
	if out.DistinctKeys > out.Records {
		out.DistinctKeys = out.Records
	}
	if out.Records == 0 {
		out.Records = 1
	}
	return out
}

// Framework cost constants (instructions per record/byte for the
// engine-internal routines).
const (
	combineInstrPerRec = 60.0 // Aggregator hash-map insert/merge
	fetchInstrPerByte  = 1.2  // shuffle fetch + deserialize
	writeInstrPerByte  = 1.6  // shuffle serialize + write
	sortInstrPerRec    = 110.0
)

// Run compiles every registered action into executor threads, one per
// core, scheduling tasks stage by stage onto the least-loaded thread
// (Spark's executor pulls tasks greedily, which this reproduces in
// expectation). The returned threads plug into cpu.Machine.Run.
func (c *Context) Run() ([]*cpu.Thread, error) {
	if len(c.jobs) == 0 {
		return nil, fmt.Errorf("spark: no actions registered on context %q", c.name)
	}
	tbl := c.vm.Table
	frameThreadRun := tbl.Intern("java.lang.Thread", "run", model.KindFramework)
	frameWorker := tbl.Intern("java.util.concurrent.ThreadPoolExecutor$Worker", "run", model.KindFramework)
	frameTaskRunner := tbl.Intern("org.apache.spark.executor.Executor$TaskRunner", "run", model.KindFramework)
	frameShuffleTask := tbl.Intern("org.apache.spark.scheduler.ShuffleMapTask", "runTask", model.KindFramework)
	frameResultTask := tbl.Intern("org.apache.spark.scheduler.ResultTask", "runTask", model.KindFramework)
	frameIter := tbl.Intern("org.apache.spark.rdd.RDD", "iterator", model.KindFramework)

	builders := make([]*jvmBuilder, c.cfg.Cores)
	for i := range builders {
		b := c.vm.SpawnThread(fmt.Sprintf("Executor task launch worker-%d", i))
		b.Push(frameThreadRun).Push(frameWorker).Push(frameTaskRunner)
		builders[i] = &jvmBuilder{b: b}
	}

	taskID := 0
	stageID := 0
	for _, j := range c.jobs {
		stages := c.planStages(j)
		for _, s := range stages {
			gid := stageID
			stageID++
			for _, p := range s.pipelines {
				for t := 0; t < p.partitions; t++ {
					bb := leastLoaded(builders)
					bb.b.SetTask(taskID, gid)
					taskID++
					if s.feeds != nil {
						bb.b.Push(frameShuffleTask)
					} else {
						bb.b.Push(frameResultTask)
					}
					bb.b.Push(frameIter)
					c.emitTask(bb.b, s, p)
					bb.b.PopN(2)
				}
			}
		}
	}
	for _, bb := range builders {
		bb.b.PopN(3)
	}
	return c.vm.Threads(), nil
}

type jvmBuilder struct {
	b *jvm.ThreadBuilder
}

// leastLoaded picks the builder with the fewest instructions so far.
func leastLoaded(bs []*jvmBuilder) *jvmBuilder {
	best := bs[0]
	bestN := best.b.Thread().Instructions()
	for _, bb := range bs[1:] {
		if n := bb.b.Thread().Instructions(); n < bestN {
			best, bestN = bb, n
		}
	}
	return best
}

// emitTask emits one task. Operations that execute as one record-at-a-
// time iterator chain (source read, narrow transformations, map-side
// combine, shuffle/save writes) are emitted *interleaved* as one group —
// a snapshot window over the group observes all of their stacks mixed,
// which is why a pipelined Spark stage forms a single phase (Fig. 14).
// Materializing operations at a shuffle's reduce side (hash-map
// aggregation, external sort) run to completion before the downstream
// chain iterates their output, so they close their own group.
func (c *Context) emitTask(b *jvm.ThreadBuilder, s *stage, p pipeline) {
	em := c.emitter
	var group []exec.OpRun
	var cur exec.PartStats

	switch p.head.dep {
	case depSource:
		cur = divideStats(p.head.outStats, p.partitions, false)
		read := exec.FuncSpec{
			Class: "org.apache.hadoop.hdfs.DFSInputStream", Method: "read",
			Kind: model.KindIO, BaseCPI: 0.9,
			Pattern: cpu.PatternSequential,
			WS:      exec.WorkingSet{Kind: exec.WSFixed, Fixed: c.cfg.IOCost.BufferBytes},
			Refs:    0.35,
		}
		group = append(group, exec.OpRun{Spec: read, Total: c.cfg.IOCost.ReadInstr(cur.Bytes), Stats: cur})
	case depShuffle:
		spec := p.head.shuffle
		mapOut := p.head.parent.outStats
		if spec.combine {
			// Map-side combine already shrank the data crossing the wire.
			mapOut.Records = minI64(mapOut.Records, mapOut.DistinctKeys*int64(maxInt(1, p.head.parent.partitions/4)))
			mapOut.Bytes = int64(float64(mapOut.Records) * p.head.parent.outStats.AvgRecordBytes())
		}
		perTask := divideStats(mapOut, p.partitions, true)
		fetch := exec.FuncSpec{
			Class: "org.apache.spark.storage.ShuffleBlockFetcherIterator", Method: "next",
			Kind: model.KindIO, BaseCPI: 1.0,
			Pattern: cpu.PatternSequential,
			WS:      exec.WorkingSet{Kind: exec.WSFixed, Fixed: 2 << 20},
			Refs:    0.35,
		}
		fetchRun := exec.OpRun{Spec: fetch, Total: uint64(fetchInstrPerByte * float64(perTask.Bytes)), Stats: perTask}
		switch {
		case spec.sortSide:
			sorter := exec.FuncSpec{
				Class: "org.apache.spark.util.collection.ExternalSorter", Method: "insertAll",
				Kind: model.KindSort, InstrPerRec: sortInstrPerRec, BaseCPI: 0.75,
				Pattern: cpu.PatternSawtooth,
				WS:      exec.WorkingSet{Kind: exec.WSPartitionBytes},
				Refs:    0.33,
			}
			// The sort materializes: fetch+insert interleave, then the
			// downstream chain iterates sorted output.
			em.EmitGroup(b, c.vm, []exec.OpRun{fetchRun, {Spec: sorter, Stats: perTask}}, true)
		case spec.aggregate != nil:
			agg := *spec.aggregate
			em.EmitGroup(b, c.vm, []exec.OpRun{fetchRun, {Spec: agg, Stats: perTask}}, true)
		default:
			// Pure repartition: the fetch iterator pipelines straight
			// into the downstream chain.
			group = append(group, fetchRun)
		}
		cur = divideStats(p.head.outStats, p.partitions, true)
	default:
		panic("spark: pipeline head must be source or shuffle")
	}

	for _, f := range p.ops {
		if f.Materialize {
			// Flush the pipeline so far; the materializing op forms its
			// own block (and phase).
			em.EmitGroup(b, c.vm, group, true)
			group = nil
			cur = em.EmitOp(b, c.vm, f, cur)
			continue
		}
		group = append(group, exec.OpRun{Spec: f, Stats: cur})
		cur = f.Out(cur)
	}

	if s.feeds != nil {
		spec := s.feeds
		if spec.combine && spec.aggregate != nil {
			// Map-side combine: Aggregator.combineValuesByKey inserting
			// into the append-only map, pipelined with the upstream
			// chain (Fig. 14's dominant mixed phase).
			agg := *spec.aggregate
			mapSide := exec.FuncSpec{
				Class: "org.apache.spark.Aggregator", Method: "combineValuesByKey",
				Kind:        model.KindReduce,
				InstrPerRec: combineInstrPerRec + agg.InstrPerRec,
				BaseCPI:     agg.BaseCPI,
				Pattern:     agg.Pattern,
				WS:          agg.WS,
				Refs:        agg.Refs,
			}
			if spec.graphx {
				mapSide.Class = "org.apache.spark.graphx.impl.EdgePartition"
				mapSide.Method = "aggregateMessagesEdgeScan"
			}
			inner := []exec.FuncSpec{{
				Class: "org.apache.spark.util.collection.ExternalAppendOnlyMap", Method: "insertAll",
				Kind: model.KindReduce,
			}}
			cur.DistinctKeys = minI64(s.out.outStats.DistinctKeys, cur.Records)
			group = append(group, exec.OpRun{Spec: mapSide, Inner: inner, Stats: cur})
			out := mapSide.Out(cur)
			out.Records = minI64(cur.Records, cur.DistinctKeys)
			out.Bytes = int64(float64(out.Records) * cur.AvgRecordBytes())
			cur = out
		}
		write := exec.FuncSpec{
			Class: "org.apache.spark.storage.DiskBlockObjectWriter", Method: "write",
			Kind: model.KindIO, BaseCPI: 1.05,
			Pattern: cpu.PatternSequential,
			WS:      exec.WorkingSet{Kind: exec.WSFixed, Fixed: 1 << 20},
			Refs:    0.35,
		}
		group = append(group, exec.OpRun{Spec: write, Total: uint64(writeInstrPerByte * float64(cur.Bytes)), Stats: cur})
	} else if s.save {
		save := exec.FuncSpec{
			Class: "org.apache.hadoop.hdfs.DFSOutputStream", Method: "write",
			Kind: model.KindIO, BaseCPI: 1.1,
			Pattern: cpu.PatternRandom, // serializing heterogeneous objects
			WS:      exec.WorkingSet{Kind: exec.WSFixed, Fixed: 24 << 20},
			Refs:    0.03,
		}
		group = append(group, exec.OpRun{Spec: save, Total: c.cfg.IOCost.WriteInstr(cur.Bytes, false), Stats: cur})
	}
	em.EmitGroup(b, c.vm, group, true)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
