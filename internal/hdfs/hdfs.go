// Package hdfs simulates the distributed file system under both engines:
// block-oriented files that define input splits (and therefore task
// counts), plus the instruction-cost model of reading and writing
// through the HDFS client path (checksumming, (de)serialization, buffer
// copies). Only the cost and split structure matter to SimProf — no
// bytes are stored.
package hdfs

import (
	"fmt"
	"sort"
	"sync"
)

// FS is a simulated HDFS namespace.
type FS struct {
	mu        sync.Mutex
	blockSize int64
	files     map[string]*File
	nextBlock int64
}

// DefaultBlockSize is the classic HDFS block size (scaled experiments
// typically use smaller blocks to keep task counts realistic for small
// inputs).
const DefaultBlockSize = 128 << 20

// NewFS creates a filesystem with the given block size.
func NewFS(blockSize int64) (*FS, error) {
	if blockSize <= 0 {
		return nil, fmt.Errorf("hdfs: block size %d must be positive", blockSize)
	}
	return &FS{blockSize: blockSize, files: make(map[string]*File)}, nil
}

// BlockSize returns the configured block size.
func (fs *FS) BlockSize() int64 { return fs.blockSize }

// Block is one file block.
type Block struct {
	ID   int64
	Size int64
}

// File is a stored file: a path and its block list.
type File struct {
	Path   string
	Size   int64
	Blocks []Block
}

// Create allocates a file of the given logical size, replacing any
// existing file at the path.
func (fs *FS) Create(path string, size int64) (*File, error) {
	if size < 0 {
		return nil, fmt.Errorf("hdfs: negative size %d for %q", size, path)
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f := &File{Path: path, Size: size}
	remaining := size
	for remaining > 0 {
		b := Block{ID: fs.nextBlock, Size: fs.blockSize}
		if remaining < fs.blockSize {
			b.Size = remaining
		}
		fs.nextBlock++
		f.Blocks = append(f.Blocks, b)
		remaining -= b.Size
	}
	fs.files[path] = f
	return f, nil
}

// Open returns the file at path.
func (fs *FS) Open(path string) (*File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[path]
	if !ok {
		return nil, fmt.Errorf("hdfs: open %q: no such file", path)
	}
	return f, nil
}

// Delete removes the file at path; deleting a missing file is a no-op,
// as in HDFS.
func (fs *FS) Delete(path string) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	delete(fs.files, path)
}

// List returns all paths, sorted.
func (fs *FS) List() []string {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	out := make([]string, 0, len(fs.files))
	for p := range fs.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Split is one input split: the unit of work for a map task or an RDD
// partition read.
type Split struct {
	Index int
	Bytes int64
}

// Splits returns one split per block.
func (f *File) Splits() []Split {
	out := make([]Split, len(f.Blocks))
	for i, b := range f.Blocks {
		out[i] = Split{Index: i, Bytes: b.Size}
	}
	return out
}

// CostModel converts IO volume into instruction counts. Reads and
// writes through the HDFS client burn CPU in checksums, buffer copies
// and (de)serialization; compression multiplies the write cost.
type CostModel struct {
	ReadInstrPerByte  float64
	WriteInstrPerByte float64
	CompressFactor    float64 // extra write-side multiplier when compressing
	BufferBytes       uint64  // client buffer working set
}

// DefaultCostModel returns a cost model in line with measured HDFS
// client overheads (a few instructions per byte end to end).
func DefaultCostModel() CostModel {
	return CostModel{
		ReadInstrPerByte:  2.0,
		WriteInstrPerByte: 3.0,
		CompressFactor:    2.2,
		BufferBytes:       4 << 20,
	}
}

// ReadInstr returns the instructions to read n bytes.
func (cm CostModel) ReadInstr(n int64) uint64 {
	if n <= 0 {
		return 0
	}
	return uint64(float64(n) * cm.ReadInstrPerByte)
}

// WriteInstr returns the instructions to write n bytes, with or without
// compression.
func (cm CostModel) WriteInstr(n int64, compressed bool) uint64 {
	if n <= 0 {
		return 0
	}
	instr := float64(n) * cm.WriteInstrPerByte
	if compressed {
		instr *= cm.CompressFactor
	}
	return uint64(instr)
}
