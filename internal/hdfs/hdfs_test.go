package hdfs

import "testing"

func TestCreateOpenDelete(t *testing.T) {
	fs, err := NewFS(64 << 20)
	if err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create("/data/input", 200<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Blocks) != 4 {
		t.Fatalf("blocks=%d want 4 (3 full + 1 partial)", len(f.Blocks))
	}
	if f.Blocks[3].Size != 200<<20-3*(64<<20) {
		t.Fatalf("last block size=%d", f.Blocks[3].Size)
	}
	got, err := fs.Open("/data/input")
	if err != nil || got != f {
		t.Fatalf("Open returned %v, %v", got, err)
	}
	if _, err := fs.Open("/missing"); err == nil {
		t.Fatal("Open missing should fail")
	}
	fs.Delete("/data/input")
	if _, err := fs.Open("/data/input"); err == nil {
		t.Fatal("Open after Delete should fail")
	}
	fs.Delete("/data/input") // idempotent
}

func TestSplits(t *testing.T) {
	fs, _ := NewFS(32 << 20)
	f, _ := fs.Create("/x", 100<<20)
	splits := f.Splits()
	if len(splits) != 4 {
		t.Fatalf("splits=%d", len(splits))
	}
	var total int64
	for i, s := range splits {
		if s.Index != i {
			t.Fatalf("split %d index=%d", i, s.Index)
		}
		total += s.Bytes
	}
	if total != 100<<20 {
		t.Fatalf("split bytes sum=%d", total)
	}
}

func TestList(t *testing.T) {
	fs, _ := NewFS(1 << 20)
	fs.Create("/b", 10)
	fs.Create("/a", 10)
	got := fs.List()
	if len(got) != 2 || got[0] != "/a" || got[1] != "/b" {
		t.Fatalf("List=%v", got)
	}
}

func TestErrors(t *testing.T) {
	if _, err := NewFS(0); err == nil {
		t.Fatal("block size 0 should fail")
	}
	fs, _ := NewFS(1 << 20)
	if _, err := fs.Create("/x", -1); err == nil {
		t.Fatal("negative size should fail")
	}
	// Empty file: zero blocks is fine.
	f, err := fs.Create("/empty", 0)
	if err != nil || len(f.Blocks) != 0 {
		t.Fatalf("empty file: %v, %d blocks", err, len(f.Blocks))
	}
}

func TestCostModel(t *testing.T) {
	cm := DefaultCostModel()
	if cm.ReadInstr(1000) != 2000 {
		t.Fatalf("ReadInstr=%d", cm.ReadInstr(1000))
	}
	plain := cm.WriteInstr(1000, false)
	compressed := cm.WriteInstr(1000, true)
	if plain != 3000 {
		t.Fatalf("WriteInstr=%d", plain)
	}
	if compressed <= plain {
		t.Fatal("compression should cost more CPU")
	}
	if cm.ReadInstr(0) != 0 || cm.WriteInstr(-5, true) != 0 {
		t.Fatal("non-positive volumes should cost 0")
	}
}
