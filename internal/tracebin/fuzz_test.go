package tracebin

import (
	"encoding/binary"
	"hash/crc32"
	"testing"

	"simprof/internal/synth"
)

// FuzzDecodeBin mirrors the gob/JSON fuzz contract for the columnar
// decoder: no input panics it, and any input it accepts yields a trace
// that passes Validate — plus, for this format, a structurally valid
// frequency matrix. The seed corpus starts from a real encoding and
// hand-broken variants so the fuzzer reaches past the header checks.
func FuzzDecodeBin(f *testing.F) {
	spec := synth.DefaultTrace(30, 17)
	spec.Methods = 32
	spec.Snapshots = 4
	tr, err := spec.Generate()
	if err != nil {
		f.Fatal(err)
	}
	good, err := Marshal(tr)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add(good[:headerSize])
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	f.Add([]byte(Magic))
	flipped := append([]byte(nil), good...)
	for i := 10; i < len(flipped); i += 97 {
		flipped[i] ^= 0x40
	}
	f.Add(flipped)
	// A body-corrupted file with a recomputed CRC, so the fuzzer's
	// descendants of this seed get past the checksum into the section
	// validation.
	refixed := append([]byte(nil), good...)
	for i := headerSize + 300; i < len(refixed); i += 131 {
		refixed[i] ^= 0x11
	}
	fixCRC(refixed)
	f.Add(refixed)

	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := Decode(data)
		if err != nil {
			return
		}
		if err := dec.Validate(); err != nil {
			t.Fatalf("Decode returned an invalid trace: %v", err)
		}
		if sp := dec.Freq(); sp != nil {
			if sp.Rows() != len(dec.Units) || sp.Cols() != len(dec.Methods) {
				t.Fatalf("Decode attached a %dx%d frequency matrix to a %d-unit/%d-method trace",
					sp.Rows(), sp.Cols(), len(dec.Units), len(dec.Methods))
			}
		}
		if _, err := dec.Table(); err != nil {
			t.Fatalf("valid trace but Table failed: %v", err)
		}
		dec.OracleCPI()
		dec.CPIs()
		dec.Summarize()
	})
}

// fixCRC recomputes the header checksum of a (possibly corrupted)
// tracebin buffer in place.
func fixCRC(data []byte) {
	if len(data) < headerSize {
		return
	}
	binary.LittleEndian.PutUint32(data[8:], crc32.Checksum(data[headerSize:], crcTable))
}
