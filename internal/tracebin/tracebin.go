// Package tracebin implements SimProf's flat columnar binary trace
// format (magic "SPTB"). A tracebin file is a 16-byte header, a section
// table, and a sequence of 8-byte-aligned little-endian column
// sections: one contiguous array per unit attribute (ids, threads,
// counters, quality flags), length-prefixed blobs for the method table,
// CSR-style offset arrays for the variable-length snapshot and stage
// data, and a pre-computed per-unit method-frequency matrix in CSR
// layout. The decoder slices columns directly out of the input buffer
// (zero-copy on aligned little-endian hosts, a portable copying
// fallback elsewhere), so decoding a 100k-unit trace costs a handful of
// allocations instead of one per snapshot, and phase formation can
// adopt the frequency matrix without re-walking any stacks.
//
// Layout, from byte 0:
//
//	[0:4)   magic "SPTB"
//	[4:8)   u32 version (currently 1)
//	[8:12)  u32 CRC-32C (Castagnoli) of everything from byte 16 on
//	[12:16) u32 section count
//	[16:..) section table: per section u32 id, u32 reserved(0),
//	        u64 absolute offset, u64 byte length
//	then the sections, each padded to 8-byte alignment.
//
// The package registers itself with the trace format registry at init
// time, so importing it (the CLIs do) teaches trace.DecodeBytes and
// Trace.Encode the "bin" format.
package tracebin

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sort"

	"simprof/internal/matrix"
	"simprof/internal/model"
	"simprof/internal/obs"
	"simprof/internal/trace"
)

// Magic is the byte prefix identifying a tracebin stream.
const Magic = "SPTB"

// Version is the current format version.
const Version = 1

const (
	headerSize = 16
	entrySize  = 24 // section table entry
)

// Section ids. New sections get new ids; readers reject files missing a
// section they need, which is how version 1 stays simple.
const (
	secMeta      = 1  // u64 UnitInstr, u64 SnapshotEvery, u64 Seed, 3 length-prefixed strings
	secKind      = 2  // u8[m] method kinds
	secMethodOff = 3  // u32[2m+1] offsets into the method blob (class, name per method)
	secMethodStr = 4  // method blob bytes
	secUnitID    = 5  // u64[n] unit ids (must be dense)
	secThread    = 6  // i32[n]
	secIndex     = 7  // i32[n]
	secStart     = 8  // u64[n] start cycles
	secInstr     = 9  // u64[n]
	secCycles    = 10 // u64[n]
	secL1        = 11 // u64[n]
	secL2        = 12 // u64[n]
	secLLC       = 13 // u64[n]
	secQuality   = 14 // u8[n]
	secStageOff  = 15 // u32[n+1] offsets into secStageVal
	secStageVal  = 16 // i32[nStages]
	secSnapOff   = 17 // u32[n+1] offsets into secFrameOff's stacks
	secFrameOff  = 18 // u32[S+1] offsets into secFrames
	secFrames    = 19 // i32[F] method ids, the frame arena
	secCPI       = 20 // f64[n] derived CPI column (for external tools; ignored on decode)
	secFreqPtr   = 21 // u64[n+1] CSR row pointers of the frequency matrix
	secFreqCol   = 22 // i32[nnz] CSR column indices (method ids)
	secFreqVal   = 23 // f64[nnz] CSR values (frame counts)

	numSections = 23
)

// Sentinel errors for the two ways an input can be wrong before the
// format even gets a say. Both arrive wrapped with context.
var (
	// ErrFormat marks input that is not a tracebin stream at all (foreign
	// magic bytes).
	ErrFormat = errors.New("not a tracebin stream")
	// ErrTruncated marks a tracebin stream cut short of its own declared
	// structure.
	ErrTruncated = errors.New("truncated tracebin stream")
	// ErrChecksum marks a stream whose body does not match its CRC —
	// truncated or corrupted after the header.
	ErrChecksum = errors.New("tracebin checksum mismatch (file truncated or corrupted)")
)

var (
	obsEncodes = obs.NewCounter("tracebin.encodes",
		"traces encoded to the columnar binary format")
	obsDecodes = obs.NewCounter("tracebin.decodes",
		"traces decoded from the columnar binary format")
	obsDecodeErrors = obs.NewCounter("tracebin.decode_errors",
		"tracebin decodes rejected (malformed, truncated or corrupt)")
	obsDecodedBytes = obs.NewCounter("tracebin.decoded_bytes",
		"total bytes of tracebin input decoded")
	obsZeroCopyCols = obs.NewCounter("tracebin.zero_copy_columns",
		"column sections adopted as direct views of the input buffer")
	obsCopiedCols = obs.NewCounter("tracebin.copied_columns",
		"column sections read through the portable copying fallback")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

func init() {
	trace.RegisterFormat(trace.Format{
		Name:   "bin",
		Magic:  Magic,
		Decode: Decode,
		Encode: Encode,
	})
}

// Encode writes the trace in tracebin format.
func Encode(t *trace.Trace, w io.Writer) error {
	data, err := Marshal(t)
	if err != nil {
		return err
	}
	_, err = w.Write(data)
	return err
}

// Marshal serializes the trace to one tracebin buffer. The trace must
// pass Validate; the limits of the format (section payloads addressed
// by u32 offsets) are checked and reported as errors, not silently
// wrapped.
func Marshal(t *trace.Trace) ([]byte, error) {
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("tracebin: encode: %w", err)
	}
	n := len(t.Units)
	m := len(t.Methods)
	var nStages, nStacks, nFrames int
	for i := range t.Units {
		u := &t.Units[i]
		nStages += len(u.Stages)
		nStacks += len(u.Snapshots)
		for _, snap := range u.Snapshots {
			nFrames += len(snap)
		}
	}
	var blobLen int
	for _, mm := range t.Methods {
		blobLen += len(mm.Class) + len(mm.Name)
	}
	const maxU32 = math.MaxUint32
	if uint64(n) >= maxU32 || uint64(nStages) >= maxU32 ||
		uint64(nStacks) >= maxU32 || uint64(nFrames) >= maxU32 ||
		uint64(blobLen) >= maxU32 {
		return nil, fmt.Errorf("tracebin: encode: trace exceeds u32 section offsets (%d units, %d frames)", n, nFrames)
	}
	for i := range t.Units {
		u := &t.Units[i]
		if u.Thread > math.MaxInt32 || u.Index > math.MaxInt32 {
			return nil, fmt.Errorf("tracebin: encode: unit %d thread/index overflow int32", i)
		}
		for _, s := range u.Stages {
			if s < math.MinInt32 || s > math.MaxInt32 {
				return nil, fmt.Errorf("tracebin: encode: unit %d stage %d overflows int32", i, s)
			}
		}
	}

	le := binary.LittleEndian
	tableEnd := headerSize + numSections*entrySize
	buf := make([]byte, tableEnd, tableEnd+24*n+8*nFrames+blobLen+1024)

	type section struct {
		id       uint32
		off, len uint64
	}
	secs := make([]section, 0, numSections)
	begin := func(id uint32) {
		for len(buf)%8 != 0 {
			buf = append(buf, 0)
		}
		secs = append(secs, section{id: id, off: uint64(len(buf))})
	}
	end := func() {
		s := &secs[len(secs)-1]
		s.len = uint64(len(buf)) - s.off
	}

	// 1: meta.
	begin(secMeta)
	buf = le.AppendUint64(buf, t.UnitInstr)
	buf = le.AppendUint64(buf, t.SnapshotEvery)
	buf = le.AppendUint64(buf, t.Seed)
	for _, s := range []string{t.Benchmark, t.Framework, t.Input} {
		buf = le.AppendUint32(buf, uint32(len(s)))
		buf = append(buf, s...)
	}
	end()

	// 2-4: method table.
	begin(secKind)
	for _, mm := range t.Methods {
		buf = append(buf, byte(mm.Kind))
	}
	end()
	begin(secMethodOff)
	off := uint32(0)
	buf = le.AppendUint32(buf, 0)
	for _, mm := range t.Methods {
		off += uint32(len(mm.Class))
		buf = le.AppendUint32(buf, off)
		off += uint32(len(mm.Name))
		buf = le.AppendUint32(buf, off)
	}
	end()
	begin(secMethodStr)
	for _, mm := range t.Methods {
		buf = append(buf, mm.Class...)
		buf = append(buf, mm.Name...)
	}
	end()

	// 5-14: fixed-width unit columns.
	begin(secUnitID)
	for i := range t.Units {
		buf = le.AppendUint64(buf, uint64(t.Units[i].ID))
	}
	end()
	begin(secThread)
	for i := range t.Units {
		buf = le.AppendUint32(buf, uint32(int32(t.Units[i].Thread)))
	}
	end()
	begin(secIndex)
	for i := range t.Units {
		buf = le.AppendUint32(buf, uint32(int32(t.Units[i].Index)))
	}
	end()
	begin(secStart)
	for i := range t.Units {
		buf = le.AppendUint64(buf, t.Units[i].StartCycle)
	}
	end()
	for _, col := range []struct {
		id  uint32
		get func(*trace.Counters) uint64
	}{
		{secInstr, func(c *trace.Counters) uint64 { return c.Instructions }},
		{secCycles, func(c *trace.Counters) uint64 { return c.Cycles }},
		{secL1, func(c *trace.Counters) uint64 { return c.L1Misses }},
		{secL2, func(c *trace.Counters) uint64 { return c.L2Misses }},
		{secLLC, func(c *trace.Counters) uint64 { return c.LLCMisses }},
	} {
		begin(col.id)
		for i := range t.Units {
			buf = le.AppendUint64(buf, col.get(&t.Units[i].Counters))
		}
		end()
	}
	begin(secQuality)
	for i := range t.Units {
		buf = append(buf, byte(t.Units[i].Quality))
	}
	end()

	// 15-16: stages (CSR offsets + flat values).
	begin(secStageOff)
	off = 0
	buf = le.AppendUint32(buf, 0)
	for i := range t.Units {
		off += uint32(len(t.Units[i].Stages))
		buf = le.AppendUint32(buf, off)
	}
	end()
	begin(secStageVal)
	for i := range t.Units {
		for _, s := range t.Units[i].Stages {
			buf = le.AppendUint32(buf, uint32(int32(s)))
		}
	}
	end()

	// 17-19: snapshots (two offset levels + the frame arena).
	begin(secSnapOff)
	off = 0
	buf = le.AppendUint32(buf, 0)
	for i := range t.Units {
		off += uint32(len(t.Units[i].Snapshots))
		buf = le.AppendUint32(buf, off)
	}
	end()
	begin(secFrameOff)
	off = 0
	buf = le.AppendUint32(buf, 0)
	for i := range t.Units {
		for _, snap := range t.Units[i].Snapshots {
			off += uint32(len(snap))
			buf = le.AppendUint32(buf, off)
		}
	}
	end()
	begin(secFrames)
	for i := range t.Units {
		for _, snap := range t.Units[i].Snapshots {
			for _, id := range snap {
				buf = le.AppendUint32(buf, uint32(id))
			}
		}
	}
	end()

	// 20: derived CPI column.
	begin(secCPI)
	for i := range t.Units {
		buf = le.AppendUint64(buf, math.Float64bits(t.Units[i].CPI()))
	}
	end()

	// 21-23: the per-unit method-frequency matrix, in CSR layout with
	// method id as the column index. Cell values are snapshot frame
	// counts accumulated exactly like phase formation's sparse
	// vectorizer (float64 increments, which are exact for counts far
	// below 2^53), so a decoder-adopted matrix reproduces VectorizeSparse
	// bit for bit whenever the method table maps ids 1:1 onto feature
	// dimensions.
	counts := make([]float64, m)
	touched := make([]int32, 0, 64)
	begin(secFreqPtr)
	nnzOff := uint64(0)
	buf = le.AppendUint64(buf, 0)
	for i := range t.Units {
		rowNNZ := 0
		for _, snap := range t.Units[i].Snapshots {
			for _, id := range snap {
				if counts[id] == 0 {
					rowNNZ++
				}
				counts[id]++
			}
		}
		for _, snap := range t.Units[i].Snapshots {
			for _, id := range snap {
				counts[id] = 0
			}
		}
		nnzOff += uint64(rowNNZ)
		buf = le.AppendUint64(buf, nnzOff)
	}
	end()
	begin(secFreqCol)
	colStart := len(buf)
	buf = appendFreqCols(buf, t, counts, touched)
	nnz := (len(buf) - colStart) / 4
	end()
	begin(secFreqVal)
	buf = appendFreqVals(buf, t, counts, touched)
	end()
	if uint64(nnz) != nnzOff {
		// Impossible unless the two passes disagree; guard the invariant
		// rather than emit a file the decoder will reject.
		return nil, fmt.Errorf("tracebin: encode: frequency nnz mismatch (%d != %d)", nnz, nnzOff)
	}

	// Patch the section table and header, then checksum the body.
	if len(secs) != numSections {
		return nil, fmt.Errorf("tracebin: encode: wrote %d sections, want %d", len(secs), numSections)
	}
	for i, s := range secs {
		e := buf[headerSize+i*entrySize:]
		le.PutUint32(e[0:], s.id)
		le.PutUint32(e[4:], 0)
		le.PutUint64(e[8:], s.off)
		le.PutUint64(e[16:], s.len)
	}
	copy(buf[0:4], Magic)
	le.PutUint32(buf[4:], Version)
	le.PutUint32(buf[12:], numSections)
	le.PutUint32(buf[8:], crc32.Checksum(buf[headerSize:], crcTable))
	obsEncodes.Inc()
	return buf, nil
}

// appendFreqCols emits, for every unit, the ascending method ids its
// snapshots touch. counts is a zeroed scratch of len(Methods); it is
// returned to all-zero.
func appendFreqCols(buf []byte, t *trace.Trace, counts []float64, touched []int32) []byte {
	le := binary.LittleEndian
	for i := range t.Units {
		touched = touched[:0]
		for _, snap := range t.Units[i].Snapshots {
			for _, id := range snap {
				if counts[id] == 0 {
					touched = append(touched, int32(id))
				}
				counts[id]++
			}
		}
		sort.Slice(touched, func(a, b int) bool { return touched[a] < touched[b] })
		for _, c := range touched {
			buf = le.AppendUint32(buf, uint32(c))
			counts[c] = 0
		}
	}
	return buf
}

// appendFreqVals emits the matching frame counts, in the same ascending
// column order as appendFreqCols.
func appendFreqVals(buf []byte, t *trace.Trace, counts []float64, touched []int32) []byte {
	le := binary.LittleEndian
	for i := range t.Units {
		touched = touched[:0]
		for _, snap := range t.Units[i].Snapshots {
			for _, id := range snap {
				if counts[id] == 0 {
					touched = append(touched, int32(id))
				}
				counts[id]++
			}
		}
		sort.Slice(touched, func(a, b int) bool { return touched[a] < touched[b] })
		for _, c := range touched {
			buf = le.AppendUint64(buf, math.Float64bits(counts[c]))
			counts[c] = 0
		}
	}
	return buf
}

// Decode parses a tracebin buffer into a trace. The returned trace
// aliases data (snapshot frames and the frequency matrix are views into
// the buffer on little-endian hosts), so the caller must not mutate
// data while the trace is in use. Decode never panics on malformed
// input and never returns a trace that fails Validate; foreign bytes
// come back wrapping ErrFormat, short files ErrTruncated, and corrupt
// bodies ErrChecksum.
func Decode(data []byte) (*trace.Trace, error) {
	t, err := decode(data)
	if err != nil {
		obsDecodeErrors.Inc()
		return nil, fmt.Errorf("tracebin: decode: %w", err)
	}
	obsDecodes.Inc()
	obsDecodedBytes.Add(int64(len(data)))
	return t, nil
}

func decode(data []byte) (*trace.Trace, error) {
	le := binary.LittleEndian
	if len(data) < 4 || string(data[0:4]) != Magic {
		return nil, fmt.Errorf("%w (missing %q magic)", ErrFormat, Magic)
	}
	if len(data) < headerSize {
		return nil, fmt.Errorf("%w: %d-byte header", ErrTruncated, len(data))
	}
	if v := le.Uint32(data[4:]); v != Version {
		return nil, fmt.Errorf("unsupported tracebin version %d (have %d)", v, Version)
	}
	nsec := int(le.Uint32(data[12:]))
	if nsec < 0 || nsec > 1024 {
		return nil, fmt.Errorf("implausible section count %d", nsec)
	}
	tableEnd := headerSize + nsec*entrySize
	if len(data) < tableEnd {
		return nil, fmt.Errorf("%w: section table needs %d bytes, have %d", ErrTruncated, tableEnd, len(data))
	}
	if got, want := crc32.Checksum(data[headerSize:], crcTable), le.Uint32(data[8:]); got != want {
		return nil, fmt.Errorf("%w: crc %#x != stored %#x", ErrChecksum, got, want)
	}

	secs := make(map[uint32][]byte, nsec)
	for i := 0; i < nsec; i++ {
		e := data[headerSize+i*entrySize:]
		id := le.Uint32(e[0:])
		off := le.Uint64(e[8:])
		length := le.Uint64(e[16:])
		if _, dup := secs[id]; dup {
			return nil, fmt.Errorf("duplicate section %d", id)
		}
		if off < uint64(tableEnd) || off > uint64(len(data)) ||
			length > uint64(len(data)) || off+length > uint64(len(data)) {
			return nil, fmt.Errorf("%w: section %d spans [%d, %d) of %d bytes",
				ErrTruncated, id, off, off+length, len(data))
		}
		secs[id] = data[off : off+length : off+length]
	}
	sec := func(id uint32, elem int) ([]byte, error) {
		b, ok := secs[id]
		if !ok {
			return nil, fmt.Errorf("missing section %d", id)
		}
		if elem > 0 && len(b)%elem != 0 {
			return nil, fmt.Errorf("section %d length %d not a multiple of %d", id, len(b), elem)
		}
		return b, nil
	}
	secN := func(id uint32, elem, want int) ([]byte, error) {
		b, err := sec(id, elem)
		if err != nil {
			return nil, err
		}
		if len(b) != elem*want {
			return nil, fmt.Errorf("section %d holds %d entries, want %d", id, len(b)/elem, want)
		}
		return b, nil
	}

	// Meta.
	meta, err := sec(secMeta, 0)
	if err != nil {
		return nil, err
	}
	if len(meta) < 24 {
		return nil, fmt.Errorf("meta section too short (%d bytes)", len(meta))
	}
	t := &trace.Trace{
		UnitInstr:     le.Uint64(meta[0:]),
		SnapshotEvery: le.Uint64(meta[8:]),
		Seed:          le.Uint64(meta[16:]),
	}
	rest := meta[24:]
	for _, dst := range []*string{&t.Benchmark, &t.Framework, &t.Input} {
		if len(rest) < 4 {
			return nil, fmt.Errorf("meta strings truncated")
		}
		sl := int(le.Uint32(rest))
		rest = rest[4:]
		if sl < 0 || sl > len(rest) {
			return nil, fmt.Errorf("meta string length %d exceeds section", sl)
		}
		*dst = string(rest[:sl])
		rest = rest[sl:]
	}
	if t.UnitInstr == 0 {
		return nil, fmt.Errorf("UnitInstr must be positive")
	}
	if t.SnapshotEvery == 0 || t.SnapshotEvery > t.UnitInstr {
		return nil, fmt.Errorf("SnapshotEvery=%d must be in (0, UnitInstr=%d]", t.SnapshotEvery, t.UnitInstr)
	}

	// Method table.
	kinds, err := sec(secKind, 1)
	if err != nil {
		return nil, err
	}
	m := len(kinds)
	if m > math.MaxInt32 {
		return nil, fmt.Errorf("method table too large (%d)", m)
	}
	methodOffB, err := secN(secMethodOff, 4, 2*m+1)
	if err != nil {
		return nil, err
	}
	blob, err := sec(secMethodStr, 0)
	if err != nil {
		return nil, err
	}
	methodOff, err := offsetCol(methodOffB, len(blob), "method")
	if err != nil {
		return nil, err
	}
	t.Methods = make([]model.Method, m)
	for i := 0; i < m; i++ {
		t.Methods[i] = model.Method{
			ID:    model.MethodID(i),
			Class: string(blob[methodOff[2*i]:methodOff[2*i+1]]),
			Name:  string(blob[methodOff[2*i+1]:methodOff[2*i+2]]),
			Kind:  model.Kind(kinds[i]),
		}
	}

	// Fixed-width unit columns. The thread column defines n.
	threadB, err := sec(secThread, 4)
	if err != nil {
		return nil, err
	}
	n := len(threadB) / 4
	threads := int32Col(threadB)
	get64 := func(id uint32) ([]uint64, error) {
		b, err := secN(id, 8, n)
		if err != nil {
			return nil, err
		}
		return uint64Col(b), nil
	}
	ids, err := get64(secUnitID)
	if err != nil {
		return nil, err
	}
	indexB, err := secN(secIndex, 4, n)
	if err != nil {
		return nil, err
	}
	indexes := int32Col(indexB)
	starts, err := get64(secStart)
	if err != nil {
		return nil, err
	}
	instr, err := get64(secInstr)
	if err != nil {
		return nil, err
	}
	cycles, err := get64(secCycles)
	if err != nil {
		return nil, err
	}
	l1, err := get64(secL1)
	if err != nil {
		return nil, err
	}
	l2, err := get64(secL2)
	if err != nil {
		return nil, err
	}
	llc, err := get64(secLLC)
	if err != nil {
		return nil, err
	}
	quality, err := secN(secQuality, 1, n)
	if err != nil {
		return nil, err
	}
	if _, err := secN(secCPI, 8, n); err != nil {
		return nil, err // derived column: present and sized, content not trusted
	}

	// Variable-length data: stages, snapshots, frames.
	stageValB, err := sec(secStageVal, 4)
	if err != nil {
		return nil, err
	}
	stageVals := int32Col(stageValB)
	stageOffB, err := secN(secStageOff, 4, n+1)
	if err != nil {
		return nil, err
	}
	stageOff, err := offsetCol(stageOffB, len(stageVals), "stage")
	if err != nil {
		return nil, err
	}
	framesB, err := sec(secFrames, 4)
	if err != nil {
		return nil, err
	}
	frames := methodIDCol(framesB)
	frameOffB, err := sec(secFrameOff, 4)
	if err != nil {
		return nil, err
	}
	if len(frameOffB) < 4 {
		return nil, fmt.Errorf("frame offset section empty")
	}
	nStacks := len(frameOffB)/4 - 1
	snapOffB, err := secN(secSnapOff, 4, n+1)
	if err != nil {
		return nil, err
	}
	snapOff, err := offsetCol(snapOffB, nStacks, "snapshot")
	if err != nil {
		return nil, err
	}
	um := uint32(m)
	for _, id := range frames {
		if uint32(id) >= um {
			return nil, fmt.Errorf("snapshot frame refers to method %d outside the table (%d methods)", id, m)
		}
	}

	// Assemble the snapshot arena, validating the frame offsets in the
	// same pass (monotone, anchored at 0, ending exactly at the frame
	// count) instead of materializing an intermediate offset slice.
	if le.Uint32(frameOffB) != 0 {
		return nil, fmt.Errorf("frame offsets do not start at 0")
	}
	stacks := make([]model.Stack, nStacks)
	prevOff := 0
	for s := 0; s < nStacks; s++ {
		b := int(le.Uint32(frameOffB[4*s+4:]))
		if b < prevOff || b > len(frames) {
			return nil, fmt.Errorf("frame offsets not monotone at %d (%d < %d)", s+1, b, prevOff)
		}
		if prevOff < b {
			stacks[s] = frames[prevOff:b:b]
		}
		prevOff = b
	}
	if prevOff != len(frames) {
		return nil, fmt.Errorf("frame offsets end at %d, want %d", prevOff, len(frames))
	}
	stages := make([]int, len(stageVals))
	for i, v := range stageVals {
		stages[i] = int(v)
	}
	maxSnaps := t.ExpectedSnapshots() + 1
	qualityKnown := byte(trace.CountersMissing | trace.SnapshotsPartial | trace.Truncated)
	t.Units = make([]trace.Unit, n)
	for i := 0; i < n; i++ {
		u := &t.Units[i]
		if ids[i] != uint64(i) {
			return nil, fmt.Errorf("non-dense unit ids at %d (id %d)", i, ids[i])
		}
		if threads[i] < 0 || indexes[i] < 0 {
			return nil, fmt.Errorf("unit %d has negative thread/index (%d/%d)", i, threads[i], indexes[i])
		}
		if instr[i] > t.UnitInstr {
			return nil, fmt.Errorf("unit %d holds %d instructions, more than the unit size %d", i, instr[i], t.UnitInstr)
		}
		if quality[i]&^qualityKnown != 0 {
			return nil, fmt.Errorf("unit %d has unknown quality bits %#x", i, quality[i])
		}
		if snapOff[i+1]-snapOff[i] > maxSnaps {
			return nil, fmt.Errorf("unit %d has %d snapshots, more than the cadence allows (%d)",
				i, snapOff[i+1]-snapOff[i], maxSnaps)
		}
		u.ID = i
		u.Thread = int(threads[i])
		u.Index = int(indexes[i])
		u.StartCycle = starts[i]
		u.Counters = trace.Counters{
			Instructions: instr[i],
			Cycles:       cycles[i],
			L1Misses:     l1[i],
			L2Misses:     l2[i],
			LLCMisses:    llc[i],
		}
		u.Quality = trace.Quality(quality[i])
		if a, b := snapOff[i], snapOff[i+1]; a < b {
			u.Snapshots = stacks[a:b:b]
		}
		if a, b := stageOff[i], stageOff[i+1]; a < b {
			u.Stages = stages[a:b:b]
		}
	}

	// The frequency matrix: structural validation via NewSparseCSR plus a
	// finite-positive sweep over the values (a NaN would poison the
	// clustering distances downstream). Content consistency with the
	// snapshot columns is the encoder's contract, enforced by the
	// round-trip property tests and the golden fixture, not re-derived
	// here — that recomputation is exactly the cost this format removes.
	freqPtrB, err := secN(secFreqPtr, 8, n+1)
	if err != nil {
		return nil, err
	}
	freqColB, err := sec(secFreqCol, 4)
	if err != nil {
		return nil, err
	}
	freqValB, err := sec(secFreqVal, 8)
	if err != nil {
		return nil, err
	}
	freqVal := float64Col(freqValB)
	for _, v := range freqVal {
		if !(v > 0) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("frequency matrix holds non-positive or non-finite value %v", v)
		}
	}
	sp, err := matrix.NewSparseCSR(n, m, intCol(freqPtrB), int32Col(freqColB), freqVal)
	if err != nil {
		return nil, fmt.Errorf("frequency matrix: %w", err)
	}
	t.SetFreq(sp)
	return t, nil
}

// offsetCol decodes a u32 offset column, checking the CSR invariants:
// starts at 0, non-decreasing, ends exactly at bound.
func offsetCol(b []byte, bound int, what string) ([]int, error) {
	le := binary.LittleEndian
	out := make([]int, len(b)/4)
	for i := range out {
		out[i] = int(le.Uint32(b[4*i:]))
	}
	if len(out) == 0 || out[0] != 0 {
		return nil, fmt.Errorf("%s offsets do not start at 0", what)
	}
	for i := 1; i < len(out); i++ {
		if out[i] < out[i-1] {
			return nil, fmt.Errorf("%s offsets not monotone at %d (%d < %d)", what, i, out[i], out[i-1])
		}
	}
	if out[len(out)-1] != bound {
		return nil, fmt.Errorf("%s offsets end at %d, want %d", what, out[len(out)-1], bound)
	}
	return out, nil
}
