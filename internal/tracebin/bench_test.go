package tracebin

import (
	"bytes"
	"testing"

	"simprof/internal/phase"
	"simprof/internal/sampling"
	"simprof/internal/synth"
	"simprof/internal/trace"
)

// bench100kSpec is the 100k-unit workload behind the decode and
// end-to-end benchmarks: five snapshots per unit at depth 5 over 256
// methods — a long production run at the observation density a 1-CPU
// baseline runner can profile interactively.
func bench100kSpec() synth.TraceSpec {
	spec := synth.DefaultTrace(100_000, 1234)
	spec.Depth = 5
	spec.Snapshots = 5
	return spec
}

var bench100k struct {
	bin []byte
	gob []byte
}

// bench100kData generates and encodes the 100k-unit trace once per
// test binary (the generation itself is not part of any measurement).
func bench100kData(b *testing.B) ([]byte, []byte) {
	b.Helper()
	if bench100k.bin == nil {
		tr, err := bench100kSpec().Generate()
		if err != nil {
			b.Fatal(err)
		}
		if bench100k.bin, err = Marshal(tr); err != nil {
			b.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tr.EncodeGob(&buf); err != nil {
			b.Fatal(err)
		}
		bench100k.gob = buf.Bytes()
	}
	return bench100k.bin, bench100k.gob
}

// BenchmarkDecodeBin measures the columnar decode of the 100k-unit
// trace: header + CRC + column validation + zero-copy adoption.
func BenchmarkDecodeBin(b *testing.B) {
	bin, _ := bench100kData(b)
	b.SetBytes(int64(len(bin)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(bin); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDecodeGob is the legacy path on identical data: gob decode,
// validation, arena compaction — the baseline DecodeBin replaces.
func BenchmarkDecodeGob(b *testing.B) {
	_, gobData := bench100kData(b)
	b.SetBytes(int64(len(gobData)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := trace.DecodeBytes(gobData); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEnd100k is the tentpole target: decode → phase
// formation (frequency matrix adopted from the file, parallel
// projection) → Neyman allocation → CPI estimate, on 100k units,
// in under 100ms on the baseline runner. The Options mirror an
// interactive profile of a long run: a focused feature space and a
// small k sweep — the pipeline a `simprof profile` of a pre-recorded
// trace executes.
func BenchmarkEndToEnd100k(b *testing.B) {
	bin, _ := bench100kData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := Decode(bin)
		if err != nil {
			b.Fatal(err)
		}
		ph, err := phase.Form(tr, phase.Options{
			TopK:      6,
			MaxPhases: 4,
			Restarts:  1,
			MaxIter:   25,
			Seed:      7,
		})
		if err != nil {
			b.Fatal(err)
		}
		sp, err := sampling.SimProf(ph, 40, 7)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sampling.EstimateOnTrace(ph, sp, tr); err != nil {
			b.Fatal(err)
		}
	}
}
