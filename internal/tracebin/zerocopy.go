package tracebin

import (
	"encoding/binary"
	"math"
	"unsafe"

	"simprof/internal/model"
)

// The zero-copy column views. A tracebin column section is a contiguous
// little-endian array, so on a little-endian host whose buffer happens
// to be suitably aligned (Go's allocator aligns every []byte we read
// from disk far beyond the 8 bytes the widest column needs) the decoder
// can reinterpret the raw bytes as the typed slice the pipeline wants —
// no per-unit allocation, no copy, the file bytes ARE the matrix. Every
// view helper runs a three-part gate (host endianness, element-size
// divisibility, base-pointer alignment) and the callers fall back to a
// portable copying read when any part fails, so big-endian or oddly
// aligned inputs decode to bit-identical values through the slow path.

// hostLittleEndian reports the byte order of this process.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// forceCopy disables the zero-copy views. Tests set it to exercise the
// portable decode path on little-endian hosts; production code never
// touches it.
var forceCopy = false

// viewable reports whether b can be reinterpreted as elements of the
// given size and alignment.
func viewable(b []byte, size int) bool {
	if forceCopy || !hostLittleEndian {
		return false
	}
	return uintptr(unsafe.Pointer(unsafe.SliceData(b)))%uintptr(size) == 0
}

// int32Col returns the section as []int32, zero-copy when possible.
// len(b) must already be a multiple of 4.
func int32Col(b []byte) []int32 {
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if viewable(b, 4) {
		obsZeroCopyCols.Inc()
		return unsafe.Slice((*int32)(unsafe.Pointer(unsafe.SliceData(b))), n)
	}
	obsCopiedCols.Inc()
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// methodIDCol is int32Col typed as the model's method ids (same
// underlying representation).
func methodIDCol(b []byte) []model.MethodID {
	n := len(b) / 4
	if n == 0 {
		return nil
	}
	if viewable(b, 4) {
		obsZeroCopyCols.Inc()
		return unsafe.Slice((*model.MethodID)(unsafe.Pointer(unsafe.SliceData(b))), n)
	}
	obsCopiedCols.Inc()
	out := make([]model.MethodID, n)
	for i := range out {
		out[i] = model.MethodID(binary.LittleEndian.Uint32(b[4*i:]))
	}
	return out
}

// uint64Col returns the section as []uint64, zero-copy when possible.
// len(b) must already be a multiple of 8.
func uint64Col(b []byte) []uint64 {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if viewable(b, 8) {
		obsZeroCopyCols.Inc()
		return unsafe.Slice((*uint64)(unsafe.Pointer(unsafe.SliceData(b))), n)
	}
	obsCopiedCols.Inc()
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[8*i:])
	}
	return out
}

// float64Col returns the section as []float64, zero-copy when possible.
// len(b) must already be a multiple of 8.
func float64Col(b []byte) []float64 {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if viewable(b, 8) {
		obsZeroCopyCols.Inc()
		return unsafe.Slice((*float64)(unsafe.Pointer(unsafe.SliceData(b))), n)
	}
	obsCopiedCols.Inc()
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(b[8*i:]))
	}
	return out
}

// intCol returns the section (stored as u64 little-endian) as []int,
// zero-copy on 64-bit hosts when possible. Values above MaxInt come
// back negative either way; the structural validation the callers run
// (monotone chains anchored at 0) rejects them.
func intCol(b []byte) []int {
	n := len(b) / 8
	if n == 0 {
		return nil
	}
	if strconvIntSize == 64 && viewable(b, 8) {
		obsZeroCopyCols.Inc()
		return unsafe.Slice((*int)(unsafe.Pointer(unsafe.SliceData(b))), n)
	}
	obsCopiedCols.Inc()
	out := make([]int, n)
	for i := range out {
		out[i] = int(int64(binary.LittleEndian.Uint64(b[8*i:])))
	}
	return out
}

// strconvIntSize mirrors strconv.IntSize without the import.
const strconvIntSize = 32 << (^uint(0) >> 63)
