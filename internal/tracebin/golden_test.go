package tracebin

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"simprof/internal/synth"
	"simprof/internal/trace"
)

// goldenTrace is the fixed input behind testdata/golden.bin. Everything
// here is deterministic, so the encoder must reproduce the committed
// bytes exactly; a diff means the format changed and needs a version
// bump, not a fixture refresh.
func goldenTrace(t testing.TB) *trace.Trace {
	spec := synth.TraceSpec{
		Benchmark: "golden",
		Framework: "spark",
		Input:     "fixture",
		Units:     20,
		Methods:   24,
		Phases:    3,
		Depth:     4,
		Snapshots: 3,
		UnitInstr: 1_000_000,
		Seed:      42,
	}
	tr, err := spec.Generate()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

const goldenPath = "testdata/golden.bin"

// TestGoldenEncode pins the on-disk format: encoding the fixed trace
// must reproduce the committed fixture byte for byte. Run with
// UPDATE_GOLDEN=1 to regenerate after a deliberate format change
// (which must also bump Version).
func TestGoldenEncode(t *testing.T) {
	got, err := Marshal(goldenTrace(t))
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read fixture (run UPDATE_GOLDEN=1 go test once to create it): %v", err)
	}
	if !bytes.Equal(got, want) {
		i := 0
		for i < len(got) && i < len(want) && got[i] == want[i] {
			i++
		}
		t.Fatalf("encoding diverges from the committed fixture at byte %d (%d vs %d bytes total); "+
			"a format change requires a Version bump and UPDATE_GOLDEN=1", i, len(got), len(want))
	}
}

// TestGoldenDecode: the committed fixture decodes back to the exact
// golden trace (gob-byte identity) with its frequency matrix attached.
func TestGoldenDecode(t *testing.T) {
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read fixture: %v", err)
	}
	dec, err := Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if dec.Freq() == nil {
		t.Fatalf("fixture decode lost the frequency matrix")
	}
	want := gobBytes(t, goldenTrace(t))
	if got := gobBytes(t, dec); !bytes.Equal(got, want) {
		t.Fatalf("fixture decodes to a different trace")
	}
}

// TestHostileHeaderLayout decodes a hand-mangled worst-case header: the
// section table rewritten in reverse order with all reserved fields set
// to 0xFFFFFFFF. The format spec orders neither the table nor the
// sections, so a conforming decoder must accept this layout and produce
// the identical trace.
func TestHostileHeaderLayout(t *testing.T) {
	tr := goldenTrace(t)
	data, err := Marshal(tr)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	mangled := append([]byte(nil), data...)
	le := binary.LittleEndian
	nsec := int(le.Uint32(mangled[12:]))
	entries := make([][]byte, nsec)
	for i := 0; i < nsec; i++ {
		e := make([]byte, entrySize)
		copy(e, mangled[headerSize+i*entrySize:])
		le.PutUint32(e[4:], 0xFFFFFFFF) // reserved: must be ignored
		entries[i] = e
	}
	for i := 0; i < nsec; i++ {
		copy(mangled[headerSize+i*entrySize:], entries[nsec-1-i])
	}
	le.PutUint32(mangled[8:], crc32.Checksum(mangled[headerSize:], crcTable))
	dec, err := Decode(mangled)
	if err != nil {
		t.Fatalf("decode of reversed-table header: %v", err)
	}
	if !bytes.Equal(gobBytes(t, dec), gobBytes(t, tr)) {
		t.Fatalf("reversed-table decode differs from original")
	}
}
