package tracebin

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"simprof/internal/faults"
	"simprof/internal/matrix"
	"simprof/internal/model"
	"simprof/internal/phase"
	"simprof/internal/synth"
	"simprof/internal/trace"
)

// testTrace generates a small phase-structured trace.
func testTrace(t *testing.T, units int, seed uint64) *trace.Trace {
	t.Helper()
	spec := synth.DefaultTrace(units, seed)
	spec.Methods = 64
	spec.Snapshots = 5
	if units < spec.Phases {
		spec.Phases = units
	}
	tr, err := spec.Generate()
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	return tr
}

// gobBytes re-encodes a trace as gob — the canonical byte-identity
// witness. Comparing gob bytes instead of reflect.DeepEqual sidesteps
// the nil-vs-empty-slice distinction gob itself cannot represent.
func gobBytes(t *testing.T, tr *trace.Trace) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.EncodeGob(&buf); err != nil {
		t.Fatalf("encode gob: %v", err)
	}
	return buf.Bytes()
}

// degradedTrace runs the fault injector and Repair over a synthetic
// trace, yielding a valid trace with quality-flagged units.
func degradedTrace(t *testing.T, units int, seed uint64) *trace.Trace {
	t.Helper()
	tr := testTrace(t, units, seed)
	out, _, err := faults.Apply(tr, faults.Uniform(0.2, seed))
	if err != nil {
		t.Fatalf("faults: %v", err)
	}
	if _, err := out.Repair(); err != nil {
		t.Fatalf("repair: %v", err)
	}
	return out
}

// TestRoundTripGobBinGob is the core format contract: gob → bin → gob
// reproduces the original gob bytes exactly, for pristine and degraded
// traces, through both the zero-copy and the copying decode paths.
func TestRoundTripGobBinGob(t *testing.T) {
	for _, tc := range []struct {
		name string
		tr   *trace.Trace
	}{
		{"pristine", testTrace(t, 200, 7)},
		{"degraded", degradedTrace(t, 200, 11)},
	} {
		for _, copyPath := range []bool{false, true} {
			name := tc.name + "/zerocopy"
			if copyPath {
				name = tc.name + "/copied"
			}
			t.Run(name, func(t *testing.T) {
				want := gobBytes(t, tc.tr)
				// Through gob first, so the bin encoder sees exactly what a
				// legacy pipeline would hand it.
				viaGob, err := trace.DecodeBytes(want)
				if err != nil {
					t.Fatalf("decode gob: %v", err)
				}
				bin, err := Marshal(viaGob)
				if err != nil {
					t.Fatalf("marshal: %v", err)
				}
				defer func(old bool) { forceCopy = old }(forceCopy)
				forceCopy = copyPath
				back, err := Decode(bin)
				if err != nil {
					t.Fatalf("decode bin: %v", err)
				}
				if got := gobBytes(t, back); !bytes.Equal(got, want) {
					t.Fatalf("gob→bin→gob changed the trace (%d vs %d bytes)", len(got), len(want))
				}
				if back.Freq() == nil {
					t.Fatalf("bin decode did not attach a frequency matrix")
				}
			})
		}
	}
}

// TestDecodeBytesSniffsBin checks the registry wiring: DecodeBytes
// routes magic-prefixed buffers to this package.
func TestDecodeBytesSniffsBin(t *testing.T) {
	tr := testTrace(t, 50, 3)
	bin, err := Marshal(tr)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	got, err := trace.DecodeBytes(bin)
	if err != nil {
		t.Fatalf("DecodeBytes: %v", err)
	}
	if got.Freq() == nil {
		t.Fatalf("sniffed decode lost the frequency matrix")
	}
	if !bytes.Equal(gobBytes(t, got), gobBytes(t, tr)) {
		t.Fatalf("sniffed decode differs from original")
	}
}

// TestFreqMatchesVectorizeSparse: the encoded frequency matrix must be
// cell-for-cell the full-space sparse vectorization, so phase formation
// can adopt it without changing a single bit of its output.
func TestFreqMatchesVectorizeSparse(t *testing.T) {
	for _, units := range []int{1, 37, 200} {
		tr := testTrace(t, units, uint64(units))
		bin, err := Marshal(tr)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		dec, err := Decode(bin)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		got := dec.Freq()
		fs := &phase.FeatureSpace{
			Methods: make([]string, len(tr.Methods)),
			Kinds:   make([]model.Kind, len(tr.Methods)),
		}
		for i, m := range tr.Methods {
			fs.Methods[i] = m.FQN()
			fs.Kinds[i] = m.Kind
		}
		want := fs.VectorizeSparse(tr)
		if got.Rows() != want.Rows() || got.Cols() != want.Cols() || got.NNZ() != want.NNZ() {
			t.Fatalf("units=%d: freq shape %dx%d/%d, want %dx%d/%d", units,
				got.Rows(), got.Cols(), got.NNZ(), want.Rows(), want.Cols(), want.NNZ())
		}
		if !sparseEqual(got, want) {
			t.Fatalf("units=%d: freq cells differ from VectorizeSparse", units)
		}
	}
}

func sparseEqual(a, b *matrix.Sparse) bool {
	if a.Rows() != b.Rows() || a.Cols() != b.Cols() || a.NNZ() != b.NNZ() {
		return false
	}
	for i := 0; i < a.Rows(); i++ {
		ac, av := a.Row(i)
		bc, bv := b.Row(i)
		if len(ac) != len(bc) {
			return false
		}
		for k := range ac {
			if ac[k] != bc[k] || math.Float64bits(av[k]) != math.Float64bits(bv[k]) {
				return false
			}
		}
	}
	return true
}

// TestFormBitIdentical is the adoption + parallel-projection contract:
// phase formation over a bin-decoded trace (frequency matrix adopted,
// projection parallel) is bit-for-bit the formation over the same trace
// decoded from gob (legacy vectorization), at every worker count —
// including a degraded trace where some units are fenced out.
func TestFormBitIdentical(t *testing.T) {
	for _, tc := range []struct {
		name string
		tr   *trace.Trace
	}{
		{"pristine", testTrace(t, 240, 21)},
		{"degraded", degradedTrace(t, 240, 22)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			gobTr, err := trace.DecodeBytes(gobBytes(t, tc.tr))
			if err != nil {
				t.Fatalf("decode gob: %v", err)
			}
			bin, err := Marshal(gobTr)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			binTr, err := Decode(bin)
			if err != nil {
				t.Fatalf("decode bin: %v", err)
			}
			if binTr.Freq() == nil {
				t.Fatalf("no frequency matrix to adopt")
			}
			opts := phase.Options{TopK: 20, MaxPhases: 6, Seed: 5, Workers: 1}
			ref, err := phase.Form(gobTr, opts)
			if err != nil {
				t.Fatalf("form(gob): %v", err)
			}
			for _, workers := range []int{1, 2, 8} {
				o := opts
				o.Workers = workers
				got, err := phase.Form(binTr, o)
				if err != nil {
					t.Fatalf("form(bin, workers=%d): %v", workers, err)
				}
				comparePhases(t, workers, ref, got)
			}
		})
	}
}

func comparePhases(t *testing.T, workers int, a, b *phase.Phases) {
	t.Helper()
	if a.K != b.K {
		t.Fatalf("workers=%d: K %d != %d", workers, b.K, a.K)
	}
	if math.Float64bits(a.Silhouette) != math.Float64bits(b.Silhouette) {
		t.Fatalf("workers=%d: silhouette %v != %v", workers, b.Silhouette, a.Silhouette)
	}
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatalf("workers=%d: assign[%d] %d != %d", workers, i, b.Assign[i], a.Assign[i])
		}
	}
	for h := range a.Centers {
		for j := range a.Centers[h] {
			if math.Float64bits(a.Centers[h][j]) != math.Float64bits(b.Centers[h][j]) {
				t.Fatalf("workers=%d: center[%d][%d] %v != %v", workers, h, j, b.Centers[h][j], a.Centers[h][j])
			}
		}
	}
	for i := range a.Vectors {
		for j := range a.Vectors[i] {
			if math.Float64bits(a.Vectors[i][j]) != math.Float64bits(b.Vectors[i][j]) {
				t.Fatalf("workers=%d: vector[%d][%d] %v != %v", workers, i, j, b.Vectors[i][j], a.Vectors[i][j])
			}
		}
	}
}

// TestDecodeErrors: foreign, truncated and corrupted inputs come back
// as wrapped sentinel errors, never as panics or invalid traces.
func TestDecodeErrors(t *testing.T) {
	tr := testTrace(t, 40, 9)
	good, err := Marshal(tr)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	t.Run("foreign", func(t *testing.T) {
		if _, err := Decode([]byte("GOBSTREAM....")); !errors.Is(err, ErrFormat) {
			t.Fatalf("foreign bytes: got %v, want ErrFormat", err)
		}
		if _, err := Decode(nil); !errors.Is(err, ErrFormat) {
			t.Fatalf("empty input: got %v, want ErrFormat", err)
		}
	})
	t.Run("truncated-header", func(t *testing.T) {
		if _, err := Decode(good[:10]); !errors.Is(err, ErrTruncated) {
			t.Fatalf("10-byte file: got %v, want ErrTruncated", err)
		}
	})
	t.Run("truncated-body", func(t *testing.T) {
		_, err := Decode(good[:len(good)/2])
		if !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrTruncated) {
			t.Fatalf("half file: got %v, want ErrChecksum/ErrTruncated", err)
		}
	})
	t.Run("corrupted", func(t *testing.T) {
		bad := faults.CorruptBytes(good, 4, 1)
		if _, err := Decode(bad); err == nil {
			// A flip inside the header may leave the body CRC intact only
			// if it missed every checked field; decode must still reject.
			t.Fatalf("corrupted file decoded cleanly")
		}
	})
	t.Run("bad-version", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[4] = 99
		if _, err := Decode(bad); err == nil {
			t.Fatalf("version 99 accepted")
		}
	})
}

// TestDecodeValidates: every decoded trace passes trace.Validate — the
// same trust-boundary guarantee the gob and JSON decoders give.
func TestDecodeValidates(t *testing.T) {
	for _, units := range []int{1, 64, 333} {
		tr := degradedTrace(t, units, uint64(units)*3)
		bin, err := Marshal(tr)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		dec, err := Decode(bin)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if err := dec.Validate(); err != nil {
			t.Fatalf("units=%d: decoded trace fails Validate: %v", units, err)
		}
	}
}

// TestMarshalRejectsInvalid: the encoder refuses traces that fail
// Validate instead of writing files no decoder would accept.
func TestMarshalRejectsInvalid(t *testing.T) {
	tr := testTrace(t, 10, 1)
	tr.Units[3].ID = 99
	if _, err := Marshal(tr); err == nil {
		t.Fatalf("marshal accepted a non-dense unit id")
	}
}
