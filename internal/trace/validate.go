package trace

import (
	"fmt"
	"sort"
	"strings"

	"simprof/internal/model"
	"simprof/internal/obs"
)

// Repair telemetry: what normalization actually did across a run.
var (
	obsRepairs = obs.NewCounter("trace.repairs",
		"Repair passes run")
	obsRepairChanged = obs.NewCounter("trace.repairs_changed",
		"Repair passes that modified the trace")
	obsRepairDropped = obs.NewCounter("trace.repair_units_dropped",
		"duplicate units dropped by Repair")
	obsRepairReordered = obs.NewCounter("trace.repair_units_reordered",
		"units moved back into stream order by Repair")
	obsRepairFlagged = obs.NewCounter("trace.repair_units_flagged",
		"quality flags materialized by Repair (missing+partial+truncated)")
)

// Quality is a bitmask of per-unit degradation flags. A zero value (OK)
// marks a pristine unit; any set bit marks a unit whose observation is
// incomplete in a way real profilers produce — perf_event multiplexing
// dropping counter reads, JVMTI snapshot requests lost under load, or an
// executor crashing mid-stream. Degraded units stay in the trace (they
// still represent executed instructions, so phase weights must count
// them) but the statistics layers exclude or impute them instead of
// treating garbage values as measurements.
type Quality uint8

const (
	// OK marks a fully observed unit.
	OK Quality = 0
	// CountersMissing marks a unit whose hardware counters were lost
	// (multiplexing dropout). Its CPI is meaningless.
	CountersMissing Quality = 1 << 0
	// SnapshotsPartial marks a unit that lost call-stack snapshots. Its
	// feature vector underestimates method frequencies.
	SnapshotsPartial Quality = 1 << 1
	// Truncated marks the last surviving unit of a thread stream cut
	// short by an executor crash, or a unit following a gap in its
	// thread's unit sequence.
	Truncated Quality = 1 << 2

	qualityKnown = CountersMissing | SnapshotsPartial | Truncated
)

// Degraded reports whether any flag is set.
func (q Quality) Degraded() bool { return q != OK }

// Has reports whether flag f is set.
func (q Quality) Has(f Quality) bool { return q&f != 0 }

// String renders the flags ("ok" or "counters_missing|truncated").
func (q Quality) String() string {
	if q == OK {
		return "ok"
	}
	var s string
	add := func(name string) {
		if s != "" {
			s += "|"
		}
		s += name
	}
	if q.Has(CountersMissing) {
		add("counters_missing")
	}
	if q.Has(SnapshotsPartial) {
		add("snapshots_partial")
	}
	if q.Has(Truncated) {
		add("truncated")
	}
	if q&^qualityKnown != 0 {
		add(fmt.Sprintf("unknown(%#x)", uint8(q&^qualityKnown)))
	}
	return s
}

// CPIValid reports whether the unit's CPI is a real measurement: the
// counters were observed and the unit holds instructions. Zero-
// instruction units (counter dropouts, malformed input) must not enter
// CPI means or σ estimates as CPI 0 — that is a missing value, not a
// fast unit.
func (u Unit) CPIValid() bool {
	return u.Counters.Instructions > 0 && !u.Quality.Has(CountersMissing)
}

// ExpectedSnapshots is the snapshot count a fully observed unit carries
// at this trace's cadence.
func (t *Trace) ExpectedSnapshots() int {
	if t.SnapshotEvery == 0 {
		return 0
	}
	return int(t.UnitInstr / t.SnapshotEvery)
}

// EffectiveQuality returns unit i's stored flags plus the flags that are
// derivable from the unit itself (zero instructions ⇒ CountersMissing,
// fewer snapshots than the cadence implies ⇒ SnapshotsPartial). The
// pipeline consumes effective quality so hand-built or legacy traces
// degrade gracefully even when nothing ran Repair on them.
func (t *Trace) EffectiveQuality(i int) Quality {
	u := t.Units[i]
	q := u.Quality
	if u.Counters.Instructions == 0 {
		q |= CountersMissing
	}
	if exp := t.ExpectedSnapshots(); len(u.Snapshots) < exp {
		q |= SnapshotsPartial
	}
	return q
}

// DegradedFraction is the fraction of units with any effective flag set.
func (t *Trace) DegradedFraction() float64 {
	if len(t.Units) == 0 {
		return 0
	}
	n := 0
	for i := range t.Units {
		if t.EffectiveQuality(i).Degraded() {
			n++
		}
	}
	return float64(n) / float64(len(t.Units))
}

// QualitySummary counts units per effective flag (a unit with several
// flags is counted under each).
type QualitySummary struct {
	Units            int
	OK               int
	CountersMissing  int
	SnapshotsPartial int
	Truncated        int
}

// Summarize tallies the effective quality of every unit.
func (t *Trace) Summarize() QualitySummary {
	s := QualitySummary{Units: len(t.Units)}
	for i := range t.Units {
		q := t.EffectiveQuality(i)
		if q == OK {
			s.OK++
			continue
		}
		if q.Has(CountersMissing) {
			s.CountersMissing++
		}
		if q.Has(SnapshotsPartial) {
			s.SnapshotsPartial++
		}
		if q.Has(Truncated) {
			s.Truncated++
		}
	}
	return s
}

// String renders the tally, e.g. "228 units: 140 ok, 60
// counters_missing, 45 snapshots_partial, 3 truncated".
func (s QualitySummary) String() string {
	parts := []string{fmt.Sprintf("%d ok", s.OK)}
	add := func(n int, what string) {
		if n > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", n, what))
		}
	}
	add(s.CountersMissing, "counters_missing")
	add(s.SnapshotsPartial, "snapshots_partial")
	add(s.Truncated, "truncated")
	return fmt.Sprintf("%d units: %s", s.Units, strings.Join(parts, ", "))
}

// Validate checks the structural invariants every pipeline stage relies
// on and returns the first violation. It is called by DecodeGob and
// DecodeJSON so that malformed inputs surface as errors at the trust
// boundary instead of panics deep in phase formation. Quality problems
// (lost counters, partial snapshots) are NOT errors — they are per-unit
// flags; Repair turns a structurally broken trace into a valid, flagged
// one when possible.
func (t *Trace) Validate() error {
	if t == nil {
		return fmt.Errorf("trace: nil trace")
	}
	if t.UnitInstr == 0 {
		return fmt.Errorf("trace: UnitInstr must be positive")
	}
	if t.SnapshotEvery == 0 || t.SnapshotEvery > t.UnitInstr {
		return fmt.Errorf("trace: SnapshotEvery=%d must be in (0, UnitInstr=%d]",
			t.SnapshotEvery, t.UnitInstr)
	}
	for i, m := range t.Methods {
		if int(m.ID) != i {
			return fmt.Errorf("trace: method table not id-ordered at %d (id %d)", i, m.ID)
		}
	}
	maxSnaps := t.ExpectedSnapshots() + 1
	for i, u := range t.Units {
		if u.ID != i {
			return fmt.Errorf("trace: non-dense unit ids at %d (id %d)", i, u.ID)
		}
		if u.Thread < 0 || u.Index < 0 {
			return fmt.Errorf("trace: unit %d has negative thread/index (%d/%d)", i, u.Thread, u.Index)
		}
		if u.Counters.Instructions > t.UnitInstr {
			return fmt.Errorf("trace: unit %d holds %d instructions, more than the unit size %d",
				i, u.Counters.Instructions, t.UnitInstr)
		}
		if len(u.Snapshots) > maxSnaps {
			return fmt.Errorf("trace: unit %d has %d snapshots, more than the cadence allows (%d)",
				i, len(u.Snapshots), maxSnaps)
		}
		if u.Quality&^qualityKnown != 0 {
			return fmt.Errorf("trace: unit %d has unknown quality bits %#x", i, uint8(u.Quality))
		}
		for _, snap := range u.Snapshots {
			for _, id := range snap {
				if id < 0 || int(id) >= len(t.Methods) {
					return fmt.Errorf("trace: unit %d snapshot refers to method %d outside the table (%d methods)",
						i, id, len(t.Methods))
				}
			}
		}
	}
	return nil
}

// RepairReport records what Repair changed.
type RepairReport struct {
	MethodsRemapped  bool // method table was re-sorted / re-identified
	UnitsDropped     int  // duplicate (thread,index) units removed
	UnitsReordered   int  // units moved back into stream order
	FramesDropped    int  // snapshot frames referring outside the method table
	SnapshotsClamped int  // over-long snapshot lists truncated to the cadence
	CountersCleared  int  // impossible counter readings zeroed + flagged
	FlaggedMissing   int  // units flagged CountersMissing
	FlaggedPartial   int  // units flagged SnapshotsPartial
	FlaggedTruncated int  // units flagged Truncated
}

// Changed reports whether Repair modified the trace at all.
func (r RepairReport) Changed() bool {
	return r != RepairReport{}
}

// longestOrderedRun returns the length of the longest subsequence of
// units already in non-decreasing (thread, index) order — the units
// Repair's sort leaves logically in place.
func longestOrderedRun(units []Unit) int {
	// Patience sorting: tails[k] holds the smallest possible last key of
	// a non-decreasing subsequence of length k+1.
	type key struct{ thread, index int }
	le := func(a, b key) bool {
		return a.thread < b.thread || (a.thread == b.thread && a.index <= b.index)
	}
	var tails []key
	for _, u := range units {
		k := key{u.Thread, u.Index}
		pos := sort.Search(len(tails), func(i int) bool { return !le(tails[i], k) })
		if pos == len(tails) {
			tails = append(tails, k)
		} else {
			tails[pos] = k
		}
	}
	return len(tails)
}

// String renders the non-zero repair actions, e.g.
// "dropped 2 duplicate units, flagged 5 truncated".
func (r RepairReport) String() string {
	var parts []string
	add := func(n int, what string) {
		if n > 0 {
			parts = append(parts, fmt.Sprintf("%d %s", n, what))
		}
	}
	if r.MethodsRemapped {
		parts = append(parts, "method table re-identified")
	}
	add(r.UnitsDropped, "duplicate units dropped")
	add(r.UnitsReordered, "units reordered")
	add(r.FramesDropped, "stack frames dropped")
	add(r.SnapshotsClamped, "snapshot lists clamped")
	add(r.CountersCleared, "counter sets cleared")
	add(r.FlaggedMissing, "units flagged counters_missing")
	add(r.FlaggedPartial, "units flagged snapshots_partial")
	add(r.FlaggedTruncated, "units flagged truncated")
	if len(parts) == 0 {
		return "no changes"
	}
	return strings.Join(parts, ", ")
}

// Repair normalizes a structurally damaged trace in place so that it
// passes Validate, materializing quality flags for everything that was
// lost rather than fabricated: duplicate units are dropped, displaced
// units are sorted back into (thread, index) order and re-identified
// densely, snapshot frames pointing outside the method table are
// removed (flagging SnapshotsPartial), impossible counter readings are
// cleared (flagging CountersMissing), and gaps in a thread's unit
// sequence flag the following unit Truncated. Structural damage Repair
// cannot make sense of (an unusable unit size or snapshot cadence, a
// method table with colliding ids it cannot re-identify) returns an
// error and leaves the trace unchanged.
func (t *Trace) Repair() (RepairReport, error) {
	var rep RepairReport
	if t == nil {
		return rep, fmt.Errorf("trace: nil trace")
	}
	// Repair mutates units and snapshots, so any attached frequency
	// matrix no longer matches the trace.
	t.freq = nil
	if t.UnitInstr == 0 {
		return rep, fmt.Errorf("trace: UnitInstr must be positive")
	}
	if t.SnapshotEvery == 0 || t.SnapshotEvery > t.UnitInstr {
		return rep, fmt.Errorf("trace: SnapshotEvery=%d must be in (0, UnitInstr=%d]",
			t.SnapshotEvery, t.UnitInstr)
	}

	// Method table: re-sort by declared id, then re-identify densely.
	// Snapshot frames are remapped through old→new; unmappable frames
	// are dropped below.
	remap, err := t.repairMethods(&rep)
	if err != nil {
		return rep, err
	}

	// Units: drop duplicates, restore stream order, re-identify.
	t.repairUnits(&rep)

	maxSnaps := t.ExpectedSnapshots()
	for i := range t.Units {
		u := &t.Units[i]
		// Remap / drop snapshot frames.
		for si := 0; si < len(u.Snapshots); si++ {
			snap := u.Snapshots[si]
			kept := snap[:0:0]
			dropped := false
			for _, id := range snap {
				nid, ok := remapID(remap, id, len(t.Methods))
				if !ok {
					dropped = true
					rep.FramesDropped++
					continue
				}
				kept = append(kept, nid)
			}
			if dropped || remap != nil {
				u.Snapshots[si] = kept
			}
			if dropped {
				if !u.Quality.Has(SnapshotsPartial) {
					rep.FlaggedPartial++
				}
				u.Quality |= SnapshotsPartial
			}
		}
		if len(u.Snapshots) > maxSnaps+1 {
			u.Snapshots = u.Snapshots[:maxSnaps+1]
			rep.SnapshotsClamped++
		}
		// Counters beyond the unit size cannot be a real reading.
		if u.Counters.Instructions > t.UnitInstr {
			u.Counters = Counters{}
			rep.CountersCleared++
		}
		if u.Counters.Instructions == 0 && !u.Quality.Has(CountersMissing) {
			u.Quality |= CountersMissing
			rep.FlaggedMissing++
		}
		if len(u.Snapshots) < maxSnaps && !u.Quality.Has(SnapshotsPartial) {
			u.Quality |= SnapshotsPartial
			rep.FlaggedPartial++
		}
		u.Quality &= qualityKnown
	}
	obsRepairs.Inc()
	if rep.Changed() {
		obsRepairChanged.Inc()
		obsRepairDropped.Add(int64(rep.UnitsDropped))
		obsRepairReordered.Add(int64(rep.UnitsReordered))
		obsRepairFlagged.Add(int64(rep.FlaggedMissing + rep.FlaggedPartial + rep.FlaggedTruncated))
	}
	return rep, t.Validate()
}

// repairMethods restores a dense id-ordered method table, returning the
// old-id → new-id remap (nil when the table was already clean).
func (t *Trace) repairMethods(rep *RepairReport) (map[model.MethodID]model.MethodID, error) {
	clean := true
	for i, m := range t.Methods {
		if int(m.ID) != i {
			clean = false
			break
		}
	}
	if clean {
		return nil, nil
	}
	rep.MethodsRemapped = true
	sorted := make([]model.Method, len(t.Methods))
	copy(sorted, t.Methods)
	sort.SliceStable(sorted, func(a, b int) bool { return sorted[a].ID < sorted[b].ID })
	remap := make(map[model.MethodID]model.MethodID, len(sorted))
	out := sorted[:0:0]
	for _, m := range sorted {
		if _, dup := remap[m.ID]; dup {
			return nil, fmt.Errorf("trace: method table has colliding id %d", m.ID)
		}
		remap[m.ID] = model.MethodID(len(out))
		m.ID = model.MethodID(len(out))
		out = append(out, m)
	}
	t.Methods = out
	return remap, nil
}

func remapID(remap map[model.MethodID]model.MethodID, id model.MethodID, n int) (model.MethodID, bool) {
	if remap == nil {
		if id < 0 || int(id) >= n {
			return 0, false
		}
		return id, true
	}
	nid, ok := remap[id]
	return nid, ok
}

// repairUnits restores stream order, removes duplicates and
// re-identifies units densely, flagging sequence gaps as Truncated.
func (t *Trace) repairUnits(rep *RepairReport) {
	ordered := true
	for i := 1; i < len(t.Units); i++ {
		a, b := t.Units[i-1], t.Units[i]
		if b.Thread < a.Thread || (b.Thread == a.Thread && b.Index <= a.Index) {
			ordered = false
			break
		}
	}
	if !ordered {
		// Report the minimal number of units that had to move: everything
		// outside the longest already-ordered subsequence. (Counting raw
		// position changes would blame the whole tail for one insertion.)
		rep.UnitsReordered = len(t.Units) - longestOrderedRun(t.Units)
		sort.SliceStable(t.Units, func(a, b int) bool {
			if t.Units[a].Thread != t.Units[b].Thread {
				return t.Units[a].Thread < t.Units[b].Thread
			}
			return t.Units[a].Index < t.Units[b].Index
		})
		// Drop duplicate (thread, index) entries, keeping the first.
		kept := t.Units[:0]
		for i, u := range t.Units {
			if i > 0 && u.Thread == kept[len(kept)-1].Thread && u.Index == kept[len(kept)-1].Index {
				rep.UnitsDropped++
				continue
			}
			kept = append(kept, u)
		}
		t.Units = kept
	}
	prevThread, prevIndex := -1, -1
	for i := range t.Units {
		u := &t.Units[i]
		u.ID = i
		if u.Thread < 0 {
			u.Thread = 0
		}
		if u.Index < 0 {
			u.Index = 0
		}
		gap := false
		if u.Thread == prevThread {
			gap = u.Index != prevIndex+1
		} else {
			gap = u.Index != 0
		}
		if gap && !u.Quality.Has(Truncated) {
			u.Quality |= Truncated
			rep.FlaggedTruncated++
		}
		prevThread, prevIndex = u.Thread, u.Index
	}
}
