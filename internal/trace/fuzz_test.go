package trace

import (
	"bytes"
	"testing"
)

// fuzzSeedCorpus returns encodings of a valid trace plus hand-broken
// variants, so the fuzzers start from inputs that reach deep into the
// decoder instead of failing at the first byte.
func fuzzSeedCorpus(f *testing.F, json bool) {
	f.Helper()
	encode := func(tr *Trace) []byte {
		var buf bytes.Buffer
		var err error
		if json {
			err = tr.EncodeJSON(&buf)
		} else {
			err = tr.EncodeGob(&buf)
		}
		if err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	good := encode(threadedTrace())
	f.Add(good)
	f.Add(good[:len(good)/2])
	f.Add([]byte{})
	f.Add([]byte("garbage"))
	broken := threadedTrace()
	broken.Units[0].ID = 7
	f.Add(encode(broken))
	flipped := append([]byte(nil), good...)
	for i := 10; i < len(flipped); i += 97 {
		flipped[i] ^= 0x40
	}
	f.Add(flipped)
}

// FuzzDecodeGob asserts the gob decode path never panics: any input
// either yields a trace that passes Validate or returns an error.
func FuzzDecodeGob(f *testing.F) {
	fuzzSeedCorpus(f, false)
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeGob(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("DecodeGob returned an invalid trace: %v", err)
		}
		// Exercise the paths that used to panic on malformed traces.
		if _, err := tr.Table(); err != nil {
			t.Fatalf("valid trace but Table failed: %v", err)
		}
		tr.OracleCPI()
		tr.CPIs()
		tr.Summarize()
	})
}

// FuzzDecodeJSON is the same contract for the JSON decoder.
func FuzzDecodeJSON(f *testing.F) {
	fuzzSeedCorpus(f, true)
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := DecodeJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("DecodeJSON returned an invalid trace: %v", err)
		}
		if _, err := tr.Table(); err != nil {
			t.Fatalf("valid trace but Table failed: %v", err)
		}
		tr.OracleCPI()
		tr.CPIs()
		tr.Summarize()
	})
}
