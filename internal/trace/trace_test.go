package trace

import (
	"bytes"
	"testing"

	"simprof/internal/model"
)

func sampleTrace() *Trace {
	tbl := model.NewTable()
	m1 := tbl.Intern("A", "map", model.KindMap)
	m2 := tbl.Intern("B", "reduce", model.KindReduce)
	return &Trace{
		Benchmark: "wc", Framework: "spark", Input: "text-10g", Seed: 1,
		UnitInstr: 100, SnapshotEvery: 10,
		Methods: tbl.Methods(),
		Units: []Unit{
			{ID: 0, Counters: Counters{Instructions: 100, Cycles: 150}, Snapshots: []model.Stack{{m1}}},
			{ID: 1, Counters: Counters{Instructions: 100, Cycles: 250}, Snapshots: []model.Stack{{m2}}},
		},
	}
}

func TestCountersCPIAndIPC(t *testing.T) {
	c := Counters{Instructions: 200, Cycles: 300}
	if c.CPI() != 1.5 {
		t.Fatalf("CPI=%v", c.CPI())
	}
	if c.IPC() != 200.0/300.0 {
		t.Fatalf("IPC=%v", c.IPC())
	}
	var z Counters
	if z.CPI() != 0 || z.IPC() != 0 {
		t.Fatal("zero counters should give 0 CPI/IPC")
	}
	z.Add(c)
	if z.Instructions != 200 || z.Cycles != 300 {
		t.Fatalf("Add=%+v", z)
	}
}

func TestNameAbbreviation(t *testing.T) {
	tr := sampleTrace()
	if tr.Name() != "wc_sp" {
		t.Fatalf("Name=%q", tr.Name())
	}
	tr.Framework = "hadoop"
	if tr.Name() != "wc_hp" {
		t.Fatalf("Name=%q", tr.Name())
	}
	tr.Framework = "flink"
	if tr.Name() != "wc_flink" {
		t.Fatalf("Name=%q", tr.Name())
	}
}

func TestOracleCPIAndCPIs(t *testing.T) {
	tr := sampleTrace()
	if got := tr.OracleCPI(); got != 2.0 {
		t.Fatalf("OracleCPI=%v want 2.0", got)
	}
	cpis := tr.CPIs()
	if len(cpis) != 2 || cpis[0] != 1.5 || cpis[1] != 2.5 {
		t.Fatalf("CPIs=%v", cpis)
	}
	var empty Trace
	if empty.OracleCPI() != 0 {
		t.Fatal("empty OracleCPI should be 0")
	}
}

func TestTableRoundTrip(t *testing.T) {
	tr := sampleTrace()
	tbl, err := tr.Table()
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 {
		t.Fatalf("table len=%d", tbl.Len())
	}
	if tbl.FQN(0) != "A.map" || tbl.Kind(1) != model.KindReduce {
		t.Fatal("table content lost")
	}
}

func TestGobRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.EncodeGob(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeGob(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != tr.Name() || len(got.Units) != 2 || got.Units[1].CPI() != 2.5 {
		t.Fatalf("gob round trip lost data: %+v", got)
	}
	if len(got.Units[0].Snapshots) != 1 {
		t.Fatal("snapshots lost")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name() != "wc_sp" || len(got.Methods) != 2 {
		t.Fatalf("json round trip lost data")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := DecodeGob(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("garbage gob should fail")
	}
	if _, err := DecodeJSON(bytes.NewReader([]byte("{"))); err == nil {
		t.Fatal("garbage json should fail")
	}
}
