package trace

import (
	"bytes"
	"strings"
	"testing"

	"simprof/internal/model"
)

// threadedTrace builds a valid trace: 2 threads × 4 units, 2 snapshots
// per unit at a 100/50 cadence.
func threadedTrace() *Trace {
	tbl := model.NewTable()
	m1 := tbl.Intern("A", "map", model.KindMap)
	m2 := tbl.Intern("B", "reduce", model.KindReduce)
	tr := &Trace{
		Benchmark: "x", Framework: "spark",
		UnitInstr: 100, SnapshotEvery: 50,
		Methods: tbl.Methods(),
	}
	for th := 0; th < 2; th++ {
		for i := 0; i < 4; i++ {
			m := m1
			if i%2 == 1 {
				m = m2
			}
			tr.Units = append(tr.Units, Unit{
				ID: len(tr.Units), Thread: th, Index: i,
				Counters:  Counters{Instructions: 100, Cycles: 150 + uint64(10*i)},
				Snapshots: []model.Stack{{m}, {m}},
			})
		}
	}
	return tr
}

func TestValidateAcceptsGoodTrace(t *testing.T) {
	if err := threadedTrace().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateStructuralErrors(t *testing.T) {
	cases := []struct {
		name   string
		break_ func(*Trace)
		want   string
	}{
		{"zero unit size", func(tr *Trace) { tr.UnitInstr = 0 }, "unitinstr"},
		{"cadence above unit", func(tr *Trace) { tr.SnapshotEvery = 1000 }, "snapshotevery"},
		{"non-dense ids", func(tr *Trace) { tr.Units[3].ID = 77 }, "non-dense"},
		{"negative thread", func(tr *Trace) { tr.Units[0].Thread = -1 }, "thread"},
		{"negative index", func(tr *Trace) { tr.Units[0].Index = -2 }, "index"},
		{"overfull counters", func(tr *Trace) { tr.Units[0].Counters.Instructions = 1000 }, "instructions"},
		{"unknown method", func(tr *Trace) { tr.Units[1].Snapshots[0] = model.Stack{42} }, "method"},
		{"too many snapshots", func(tr *Trace) {
			s := tr.Units[0].Snapshots[0]
			tr.Units[0].Snapshots = []model.Stack{s, s, s, s}
		}, "snapshots"},
		{"unknown quality bits", func(tr *Trace) { tr.Units[0].Quality = 0x80 }, "quality"},
		{"method ids out of order", func(tr *Trace) {
			tr.Methods[0], tr.Methods[1] = tr.Methods[1], tr.Methods[0]
		}, "method"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tr := threadedTrace()
			c.break_(tr)
			err := tr.Validate()
			if err == nil {
				t.Fatalf("%s not caught", c.name)
			}
			if !strings.Contains(strings.ToLower(err.Error()), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
	var nilTrace *Trace
	if err := nilTrace.Validate(); err == nil {
		t.Fatal("nil trace should not validate")
	}
}

func TestRepairDuplicatesAndReorder(t *testing.T) {
	tr := threadedTrace()
	// Duplicate unit 2 (append with same id) and swap two units.
	dup := tr.Units[2]
	dup.Snapshots = append([]model.Stack(nil), dup.Snapshots...)
	tr.Units = append(tr.Units, dup)
	tr.Units[0], tr.Units[5] = tr.Units[5], tr.Units[0]
	if err := tr.Validate(); err == nil {
		t.Fatal("broken trace should not validate")
	}
	rep, err := tr.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Changed() {
		t.Fatal("repair reported no changes")
	}
	if rep.UnitsDropped != 1 {
		t.Fatalf("UnitsDropped=%d want 1", rep.UnitsDropped)
	}
	if rep.UnitsReordered == 0 {
		t.Fatal("reordering not reported")
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("repaired trace invalid: %v", err)
	}
	if len(tr.Units) != 8 {
		t.Fatalf("units=%d want 8", len(tr.Units))
	}
	for i, u := range tr.Units {
		if u.ID != i {
			t.Fatalf("id %d at position %d", u.ID, i)
		}
	}
	if rep.String() == "no changes" {
		t.Fatal("String should describe the repair")
	}
}

func TestRepairFlagsSequenceGaps(t *testing.T) {
	tr := threadedTrace()
	// Remove thread 0's unit at index 2: the stream jumps 1 → 3.
	tr.Units = append(tr.Units[:2], tr.Units[3:]...)
	rep, err := tr.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if rep.FlaggedTruncated != 1 {
		t.Fatalf("FlaggedTruncated=%d want 1", rep.FlaggedTruncated)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	// The unit after the gap carries the flag.
	found := false
	for _, u := range tr.Units {
		if u.Thread == 0 && u.Index == 3 {
			found = u.Quality.Has(Truncated)
		}
	}
	if !found {
		t.Fatal("unit after the gap not flagged Truncated")
	}
}

func TestRepairDropsForeignFrames(t *testing.T) {
	tr := threadedTrace()
	tr.Units[1].Snapshots[0] = model.Stack{model.MethodID(99)}
	rep, err := tr.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if rep.FramesDropped == 0 {
		t.Fatal("foreign frame not dropped")
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if !tr.Units[1].Quality.Has(SnapshotsPartial) {
		t.Fatal("unit with dropped frame not flagged SnapshotsPartial")
	}
}

func TestEffectiveQualityDerivesFlags(t *testing.T) {
	tr := threadedTrace()
	tr.Units[0].Counters = Counters{}
	tr.Units[1].Snapshots = tr.Units[1].Snapshots[:1]
	if q := tr.EffectiveQuality(0); !q.Has(CountersMissing) {
		t.Fatalf("zero counters not derived: %v", q)
	}
	if q := tr.EffectiveQuality(1); !q.Has(SnapshotsPartial) {
		t.Fatalf("short snapshots not derived: %v", q)
	}
	if q := tr.EffectiveQuality(2); q != OK {
		t.Fatalf("clean unit flagged: %v", q)
	}
	if got := tr.DegradedFraction(); got != 0.25 {
		t.Fatalf("DegradedFraction=%v want 0.25", got)
	}
	sum := tr.Summarize()
	if sum.OK != 6 || sum.CountersMissing != 1 || sum.SnapshotsPartial != 1 {
		t.Fatalf("summary %+v", sum)
	}
	if !strings.Contains(sum.String(), "counters_missing") {
		t.Fatalf("summary string %q", sum)
	}
}

func TestQualityString(t *testing.T) {
	if got := OK.String(); got != "ok" {
		t.Fatalf("OK=%q", got)
	}
	q := CountersMissing | Truncated
	s := q.String()
	if !strings.Contains(s, "counters_missing") || !strings.Contains(s, "truncated") {
		t.Fatalf("flags=%q", s)
	}
}

// Satellite regression: zero-instruction units must not drag the oracle
// CPI toward zero or inject CPI-0 points into σ estimation.
func TestOracleCPIExcludesInvalidUnits(t *testing.T) {
	tr := threadedTrace()
	want := tr.OracleCPI()
	tr.Units = append(tr.Units, Unit{
		ID: len(tr.Units), Thread: 2, Index: 0,
		Snapshots: tr.Units[0].Snapshots,
	})
	if got := tr.OracleCPI(); got != want {
		t.Fatalf("OracleCPI moved from %v to %v after adding a zero-instruction unit", want, got)
	}
	if got := len(tr.CPIs()); got != 8 {
		t.Fatalf("CPIs length %d want 8 (invalid unit included)", got)
	}
	// Explicit flag without zero counters also excludes.
	tr2 := threadedTrace()
	want2 := len(tr2.CPIs())
	tr2.Units[0].Quality |= CountersMissing
	if got := len(tr2.CPIs()); got != want2-1 {
		t.Fatalf("flagged unit not excluded: %d CPIs", got)
	}
}

func TestDecodeRejectsStructurallyInvalid(t *testing.T) {
	tr := threadedTrace()
	tr.Units[2].ID = 99 // non-dense
	var gob, js bytes.Buffer
	if err := tr.EncodeGob(&gob); err != nil {
		t.Fatal(err)
	}
	if err := tr.EncodeJSON(&js); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeGob(&gob); err == nil {
		t.Fatal("invalid gob decoded without error")
	} else if !strings.Contains(err.Error(), "non-dense") {
		t.Fatalf("error does not surface the Validate failure: %v", err)
	}
	if _, err := DecodeJSON(&js); err == nil {
		t.Fatal("invalid json decoded without error")
	}
}

func TestDecodeTruncatedStream(t *testing.T) {
	tr := threadedTrace()
	var gob, js bytes.Buffer
	if err := tr.EncodeGob(&gob); err != nil {
		t.Fatal(err)
	}
	if err := tr.EncodeJSON(&js); err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{1, 7, gob.Len() / 2, gob.Len() - 1} {
		if _, err := DecodeGob(bytes.NewReader(gob.Bytes()[:cut])); err == nil {
			t.Fatalf("gob truncated at %d decoded without error", cut)
		}
	}
	for _, cut := range []int{1, 7, js.Len() / 2, js.Len() - 2} {
		if _, err := DecodeJSON(bytes.NewReader(js.Bytes()[:cut])); err == nil {
			t.Fatalf("json truncated at %d decoded without error", cut)
		}
	}
}

func TestRepairIdempotent(t *testing.T) {
	tr := threadedTrace()
	dup := tr.Units[1]
	tr.Units = append(tr.Units, dup)
	if _, err := tr.Repair(); err != nil {
		t.Fatal(err)
	}
	rep, err := tr.Repair()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Changed() {
		t.Fatalf("second repair changed a repaired trace: %+v", rep)
	}
}
