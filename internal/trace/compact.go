package trace

import (
	"simprof/internal/matrix"
	"simprof/internal/model"
	"simprof/internal/obs"
)

// Compaction telemetry: how many traces were repacked and how many
// heap objects the arenas collapsed.
var (
	obsCompacts = obs.NewCounter("trace.compacts",
		"traces repacked into shared slice arenas after decode")
	obsCompactFrames = obs.NewCounter("trace.compact_frames",
		"snapshot frames moved into the shared frame arena")
)

// Compact repacks the trace's per-unit slice data — snapshot frames,
// snapshot lists and stage lists — into three shared arenas. A
// gob-decoded million-unit trace otherwise holds one small heap object
// per snapshot per unit (pointer-heavy, GC-hostile, cache-hostile); after
// Compact the same data lives in three contiguous allocations and every
// unit's slices are views into them. Contents are bit-identical (nil
// slices stay nil, so a re-encode is byte-for-byte the original), only
// the backing memory changes. The decode paths call this automatically;
// it is exported for hand-built traces headed into the hot pipeline.
//
// The arena views are disjoint, so in-place writes confined to one
// unit's own slices remain safe; code that grows a slice reallocates as
// usual and simply leaves the arena.
func (t *Trace) Compact() {
	var nStacks, nFrames, nStages int
	for i := range t.Units {
		u := &t.Units[i]
		nStacks += len(u.Snapshots)
		for _, snap := range u.Snapshots {
			nFrames += len(snap)
		}
		nStages += len(u.Stages)
	}
	// Exact capacities: the appends below must never reallocate, or the
	// views handed out earlier would be left pointing at abandoned
	// backing arrays (still correct, but no longer an arena).
	stacks := make([]model.Stack, 0, nStacks)
	frames := make([]model.MethodID, 0, nFrames)
	stages := make([]int, 0, nStages)
	for i := range t.Units {
		u := &t.Units[i]
		if len(u.Snapshots) > 0 {
			s0 := len(stacks)
			for _, snap := range u.Snapshots {
				if len(snap) == 0 {
					stacks = append(stacks, snap) // preserve nil vs empty
					continue
				}
				f0 := len(frames)
				frames = append(frames, snap...)
				stacks = append(stacks, frames[f0:len(frames):len(frames)])
			}
			u.Snapshots = stacks[s0:len(stacks):len(stacks)]
		}
		if len(u.Stages) > 0 {
			g0 := len(stages)
			stages = append(stages, u.Stages...)
			u.Stages = stages[g0:len(stages):len(stages)]
		}
	}
	obsCompacts.Inc()
	obsCompactFrames.Add(int64(nFrames))
}

// freq is the per-unit method-frequency matrix attached by a columnar
// decoder: row u holds, for every method id the unit's snapshots touch,
// the count of stack frames referring to it — exactly the cells the
// full-space sparse vectorization of phase formation would compute. It
// is unexported so the gob/JSON codecs never serialize it; it rides
// along in memory only.

// SetFreq attaches a pre-computed method-frequency matrix (rows =
// units, cols = methods). Decoders that materialize or adopt the matrix
// call this so phase formation can skip vectorization.
func (t *Trace) SetFreq(f *matrix.Sparse) { t.freq = f }

// Freq returns the attached method-frequency matrix, or nil when the
// trace was not decoded from a columnar format. Callers must treat it
// as read-only and verify its dimensions against the trace before
// adopting it.
func (t *Trace) Freq() *matrix.Sparse { return t.freq }
