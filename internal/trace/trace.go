// Package trace defines the on-disk and in-memory representation of a
// profiling run: the sampling units (the paper's 100M-instruction
// intervals) with their call-stack snapshots and hardware counters, plus
// the interned method table needed to interpret them. Traces serialize
// to gob (compact) and JSON (interoperable).
package trace

import (
	"encoding/gob"
	"encoding/json"
	"fmt"
	"io"

	"simprof/internal/matrix"
	"simprof/internal/model"
	"simprof/internal/obs"
)

// Decode/validate telemetry: how many traces crossed the trust boundary
// and how many were rejected there.
var (
	obsDecodes = obs.NewCounter("trace.decodes",
		"traces decoded successfully (gob + json)")
	obsDecodeErrors = obs.NewCounter("trace.decode_errors",
		"trace decodes rejected (malformed bytes or failed validation)")
)

// Counters are the per-unit hardware counter values the profiler's
// perf_event-like collector reads.
type Counters struct {
	Instructions uint64
	Cycles       uint64
	L1Misses     uint64
	L2Misses     uint64
	LLCMisses    uint64
}

// CPI returns cycles per instruction (0 for an empty unit).
func (c Counters) CPI() float64 {
	if c.Instructions == 0 {
		return 0
	}
	return float64(c.Cycles) / float64(c.Instructions)
}

// IPC returns instructions per cycle (0 for an empty unit).
func (c Counters) IPC() float64 {
	if c.Cycles == 0 {
		return 0
	}
	return float64(c.Instructions) / float64(c.Cycles)
}

// Add accumulates other into c.
func (c *Counters) Add(o Counters) {
	c.Instructions += o.Instructions
	c.Cycles += o.Cycles
	c.L1Misses += o.L1Misses
	c.L2Misses += o.L2Misses
	c.LLCMisses += o.LLCMisses
}

// Unit is one sampling unit: a fixed-length instruction interval within
// one (possibly merged) executor thread, carrying the call-stack
// snapshots taken inside it and its counters.
type Unit struct {
	ID         int // dense id within the trace
	Thread     int // profiled (merged) thread index
	Index      int // position within that thread
	StartCycle uint64
	Counters   Counters
	Snapshots  []model.Stack // one per snapshot interval
	Stages     []int         // engine stages observed in the unit (sorted, unique)
	Quality    Quality       // degradation flags (OK for a pristine unit)
}

// CPI is shorthand for u.Counters.CPI().
func (u Unit) CPI() float64 { return u.Counters.CPI() }

// Trace is a full profiling run of one workload on one input.
type Trace struct {
	Benchmark string
	Framework string // "spark" or "hadoop"
	Input     string
	Seed      uint64

	UnitInstr     uint64 // sampling unit size (paper: 100M)
	SnapshotEvery uint64 // snapshot cadence (paper: 10M)

	Methods []model.Method // interned table, id-ordered
	Units   []Unit

	// freq is the per-unit method-frequency matrix a columnar decoder
	// attached (see SetFreq/Freq in compact.go). Unexported: it is an
	// in-memory acceleration handle, never serialized.
	freq *matrix.Sparse
}

// Name returns "benchmark_fw" in the paper's abbreviation style
// (e.g. "wc_sp").
func (t *Trace) Name() string {
	suffix := map[string]string{"spark": "sp", "hadoop": "hp"}[t.Framework]
	if suffix == "" {
		suffix = t.Framework
	}
	return t.Benchmark + "_" + suffix
}

// Table reconstructs a model.Table from the serialized methods. It
// returns an error (instead of the historical panic) when the table is
// not id-ordered — decoded traces are validated, so this only fires on
// hand-built traces that skipped Validate/Repair.
func (t *Trace) Table() (*model.Table, error) {
	tbl := model.NewTable()
	for _, m := range t.Methods {
		id := tbl.Intern(m.Class, m.Name, m.Kind)
		if id != m.ID {
			return nil, fmt.Errorf("trace: method table not id-ordered (%d != %d)", id, m.ID)
		}
	}
	return tbl, nil
}

// CPIs returns the CPI of every measured unit, in unit order — the
// population the sampling approaches draw from. Units whose counters
// were lost (zero instructions or a CountersMissing flag) are excluded:
// their CPI is unknown, not 0, and including them as 0 would bias the
// oracle mean and every σ computed from the population.
func (t *Trace) CPIs() []float64 {
	out := make([]float64, 0, len(t.Units))
	for _, u := range t.Units {
		if u.CPIValid() {
			out = append(out, u.CPI())
		}
	}
	return out
}

// OracleCPI is the average CPI over all measured sampling units: the
// quantity every sampling approach tries to estimate (§IV-C). Units
// without a valid counter reading are excluded from the mean.
func (t *Trace) OracleCPI() float64 {
	var sum float64
	n := 0
	for _, u := range t.Units {
		if u.CPIValid() {
			sum += u.CPI()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// EncodeGob writes the trace in gob format.
func (t *Trace) EncodeGob(w io.Writer) error {
	return gob.NewEncoder(w).Encode(t)
}

// DecodeGob reads a gob-encoded trace. The decoded trace is validated:
// structurally malformed inputs (non-dense unit ids, out-of-order
// method tables, snapshot frames outside the table, impossible
// profiler parameters) return a wrapped error here instead of panicking
// deep in the pipeline.
func DecodeGob(r io.Reader) (*Trace, error) {
	var t Trace
	if err := gob.NewDecoder(r).Decode(&t); err != nil {
		obsDecodeErrors.Inc()
		return nil, fmt.Errorf("trace: decode gob: %w", err)
	}
	if err := t.Validate(); err != nil {
		obsDecodeErrors.Inc()
		return nil, fmt.Errorf("trace: decode gob: %w", err)
	}
	// Gob hands back one heap object per snapshot per unit; repack them
	// into contiguous arenas so the downstream hot loops walk linear
	// memory (contents are bit-identical, see Compact).
	t.Compact()
	obsDecodes.Inc()
	return &t, nil
}

// EncodeJSON writes the trace as indented JSON.
func (t *Trace) EncodeJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t)
}

// DecodeJSON reads a JSON-encoded trace, validating it like DecodeGob.
func DecodeJSON(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		obsDecodeErrors.Inc()
		return nil, fmt.Errorf("trace: decode json: %w", err)
	}
	if err := t.Validate(); err != nil {
		obsDecodeErrors.Inc()
		return nil, fmt.Errorf("trace: decode json: %w", err)
	}
	t.Compact()
	obsDecodes.Inc()
	return &t, nil
}
