package trace

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Format is a registered trace serialization. The gob and JSON codecs
// are built in; binary codecs (internal/tracebin) register themselves at
// init time, image.RegisterFormat-style, which keeps this package free
// of a dependency on their implementation. Magic is the byte prefix that
// identifies the format on disk; Decode receives the whole input so
// zero-copy decoders can alias it.
type Format struct {
	Name   string
	Magic  string
	Decode func(data []byte) (*Trace, error)
	Encode func(t *Trace, w io.Writer) error
}

var (
	formatMu sync.RWMutex
	formats  []Format
)

// RegisterFormat adds a binary trace format to the sniffing table used
// by DecodeBytes and to the name table used by Encode. Registering an
// empty name or magic, or a duplicate of either, panics: it is a
// programming error wired at init time.
func RegisterFormat(f Format) {
	if f.Name == "" || f.Magic == "" || f.Decode == nil || f.Encode == nil {
		panic("trace: RegisterFormat with missing name, magic or codec")
	}
	formatMu.Lock()
	defer formatMu.Unlock()
	for _, g := range formats {
		if g.Name == f.Name || g.Magic == f.Magic {
			panic(fmt.Sprintf("trace: format %q (magic %q) already registered", f.Name, f.Magic))
		}
	}
	formats = append(formats, f)
}

// FormatNames lists the encodable formats: the built-in gob and json
// plus everything registered, sorted.
func FormatNames() []string {
	formatMu.RLock()
	defer formatMu.RUnlock()
	names := []string{"gob", "json"}
	for _, f := range formats {
		names = append(names, f.Name)
	}
	sort.Strings(names)
	return names
}

// lookupFormat returns the registered format with the given name.
func lookupFormat(name string) (Format, bool) {
	formatMu.RLock()
	defer formatMu.RUnlock()
	for _, f := range formats {
		if f.Name == name {
			return f, true
		}
	}
	return Format{}, false
}

// sniffFormat returns the registered format whose magic prefixes data.
func sniffFormat(data []byte) (Format, bool) {
	formatMu.RLock()
	defer formatMu.RUnlock()
	for _, f := range formats {
		if bytes.HasPrefix(data, []byte(f.Magic)) {
			return f, true
		}
	}
	return Format{}, false
}

// Encode writes the trace in the named format ("gob", "json", or any
// registered binary format such as "bin").
func (t *Trace) Encode(w io.Writer, format string) error {
	switch format {
	case "gob":
		return t.EncodeGob(w)
	case "json":
		return t.EncodeJSON(w)
	}
	if f, ok := lookupFormat(format); ok {
		return f.Encode(t, w)
	}
	return fmt.Errorf("trace: unknown format %q (have: %v)", format, FormatNames())
}

// DecodeBytes decodes a trace of any known format, detecting the format
// from the bytes themselves: a registered magic prefix selects that
// binary codec (which may alias data — the caller must not mutate the
// buffer while the trace lives), a leading '{' (after whitespace)
// selects JSON, and anything else is tried as gob. Like the per-format
// decoders it never panics on malformed input and never returns a trace
// that fails Validate.
func DecodeBytes(data []byte) (*Trace, error) {
	if f, ok := sniffFormat(data); ok {
		return f.Decode(data)
	}
	if looksLikeJSON(data) {
		return DecodeJSON(bytes.NewReader(data))
	}
	t, err := DecodeGob(bytes.NewReader(data))
	if err != nil {
		// No known magic, not JSON, not gob: most likely a foreign file.
		return nil, fmt.Errorf("unrecognized trace format (tried %v): %w", FormatNames(), err)
	}
	return t, nil
}

// DecodeBytesCtx is DecodeBytes under a context. The codecs themselves
// are monolithic (a half-decoded trace is useless), so cancellation is
// honored at the boundaries: a dead context skips the decode entirely,
// and a context that dies during the decode discards the result. That
// bounds the wasted work to one codec run instead of the downstream
// pipeline.
func DecodeBytesCtx(ctx context.Context, data []byte) (*Trace, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	t, err := DecodeBytes(data)
	if err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return t, nil
}

// Decode reads a whole stream and decodes it with DecodeBytes. Binary
// formats need the full input in memory anyway (their decoders slice
// it), so buffering the reader here costs nothing extra.
func Decode(r io.Reader) (*Trace, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	return DecodeBytes(data)
}

// looksLikeJSON reports whether the first non-whitespace byte opens a
// JSON object — the only shape EncodeJSON emits.
func looksLikeJSON(data []byte) bool {
	for _, b := range data {
		switch b {
		case ' ', '\t', '\r', '\n':
			continue
		case '{':
			return true
		default:
			return false
		}
	}
	return false
}
