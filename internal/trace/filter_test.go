package trace

import (
	"strings"
	"testing"

	"simprof/internal/model"
)

// multiTrace builds a trace with units across 2 threads and 2 stages.
func multiTrace() *Trace {
	tbl := model.NewTable()
	m1 := tbl.Intern("A", "map", model.KindMap)
	m2 := tbl.Intern("B", "reduce", model.KindReduce)
	tr := &Trace{
		Benchmark: "x", Framework: "spark", Methods: tbl.Methods(),
		UnitInstr: 100, SnapshotEvery: 100,
	}
	perThread := map[int]int{}
	add := func(thread, stage int, m model.MethodID) {
		u := Unit{
			ID: len(tr.Units), Thread: thread, Index: perThread[thread], Stages: []int{stage},
			Counters:  Counters{Instructions: 100, Cycles: 150},
			Snapshots: []model.Stack{{m}},
		}
		perThread[thread]++
		tr.Units = append(tr.Units, u)
	}
	add(0, 0, m1)
	add(0, 0, m1)
	add(0, 1, m2)
	add(1, 0, m1)
	add(1, 1, m2)
	return tr
}

func TestFilterUnitsDensifies(t *testing.T) {
	tr := multiTrace()
	odd := tr.FilterUnits(func(u Unit) bool { return u.Thread == 1 })
	if len(odd.Units) != 2 {
		t.Fatalf("units=%d", len(odd.Units))
	}
	for i, u := range odd.Units {
		if u.ID != i {
			t.Fatalf("ids not densified: %d at %d", u.ID, i)
		}
	}
	// Original untouched.
	if len(tr.Units) != 5 || tr.Units[3].ID != 3 {
		t.Fatal("source trace mutated")
	}
	if err := odd.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestByStageAndByThread(t *testing.T) {
	tr := multiTrace()
	if got := len(tr.ByStage(0).Units); got != 3 {
		t.Fatalf("stage 0 units=%d", got)
	}
	if got := len(tr.ByStage(1).Units); got != 2 {
		t.Fatalf("stage 1 units=%d", got)
	}
	if got := len(tr.ByThread(0).Units); got != 3 {
		t.Fatalf("thread 0 units=%d", got)
	}
	threads := tr.Threads()
	if len(threads) != 2 || threads[0] != 0 || threads[1] != 1 {
		t.Fatalf("Threads=%v", threads)
	}
}

func TestMethodProfiles(t *testing.T) {
	tr := multiTrace()
	profs := tr.MethodProfiles()
	if len(profs) != 2 {
		t.Fatalf("profiles=%d", len(profs))
	}
	if !strings.Contains(profs[0].Method.FQN(), "A.map") {
		t.Fatalf("top method %s; A.map appears in 3/5 snapshots", profs[0].Method.FQN())
	}
	if profs[0].Share != 0.6 || profs[1].Share != 0.4 {
		t.Fatalf("shares %v/%v", profs[0].Share, profs[1].Share)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	good := multiTrace()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}

	nonDense := multiTrace()
	nonDense.Units[2].ID = 99
	if err := nonDense.Validate(); err == nil {
		t.Fatal("non-dense ids not caught")
	} else if !strings.Contains(err.Error(), "non-dense") {
		t.Fatalf("wrong error: %v", err)
	}

	// Zero instructions is a quality problem, not a structural one: the
	// unit stays, flagged CountersMissing, and drops out of CPI stats.
	zeroInstr := multiTrace()
	zeroInstr.Units[1].Counters.Instructions = 0
	if err := zeroInstr.Validate(); err != nil {
		t.Fatalf("zero instructions should validate (quality, not structure): %v", err)
	}
	if q := zeroInstr.EffectiveQuality(1); !q.Has(CountersMissing) {
		t.Fatalf("zero-instruction unit not flagged: %v", q)
	}

	badMethod := multiTrace()
	badMethod.Units[0].Snapshots[0] = model.Stack{42}
	if err := badMethod.Validate(); err == nil {
		t.Fatal("unknown method not caught")
	}
}
