package trace

import (
	"simprof/internal/model"
)

// FilterUnits returns a shallow copy of the trace containing only the
// units for which keep returns true; unit IDs are re-densified so the
// result is a valid standalone trace (the phase/sampling layers assume
// dense ids).
func (t *Trace) FilterUnits(keep func(Unit) bool) *Trace {
	out := *t
	out.Units = nil
	for _, u := range t.Units {
		if keep(u) {
			u.ID = len(out.Units)
			out.Units = append(out.Units, u)
		}
	}
	return &out
}

// ByStage returns the units that observed the given engine stage.
func (t *Trace) ByStage(stage int) *Trace {
	return t.FilterUnits(func(u Unit) bool {
		for _, s := range u.Stages {
			if s == stage {
				return true
			}
		}
		return false
	})
}

// ByThread returns the units of one profiled (merged) thread.
func (t *Trace) ByThread(thread int) *Trace {
	return t.FilterUnits(func(u Unit) bool { return u.Thread == thread })
}

// Threads returns the distinct profiled thread indices, ascending.
func (t *Trace) Threads() []int {
	seen := map[int]bool{}
	var out []int
	for _, u := range t.Units {
		if !seen[u.Thread] {
			seen[u.Thread] = true
			out = append(out, u.Thread)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// MethodProfile aggregates, per method, the fraction of snapshot stacks
// it appears in — the flat "where does time go" view an architect reads
// before diving into phases.
type MethodProfile struct {
	Method model.Method
	Share  float64 // fraction of snapshots containing the method
}

// MethodProfiles returns the per-method snapshot shares, descending.
func (t *Trace) MethodProfiles() []MethodProfile {
	counts := make([]int, len(t.Methods))
	total := 0
	for _, u := range t.Units {
		for _, snap := range u.Snapshots {
			total++
			seen := map[model.MethodID]bool{}
			for _, id := range snap {
				if !seen[id] {
					seen[id] = true
					if int(id) < len(counts) {
						counts[id]++
					}
				}
			}
		}
	}
	out := make([]MethodProfile, 0, len(counts))
	for i, c := range counts {
		if c == 0 {
			continue
		}
		out = append(out, MethodProfile{Method: t.Methods[i], Share: float64(c) / float64(total)})
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].Share > out[j-1].Share; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
