// Package traceevent serializes an obs run — the sequential span tree
// plus the concurrent timer samples captured inside parallel loops —
// to the Chrome trace-event JSON format, loadable in Perfetto
// (ui.perfetto.dev) and chrome://tracing.
//
// The mapping: every span becomes a complete event ("ph":"X") on the
// thread lane of the goroutine that opened it, so the driver's stages
// stack into a flame chart; every timer sample becomes a complete
// event on its worker goroutine's lane, so the parallel pool's k-sweep
// and restart work shows up beside the stages it overlaps. Metadata
// events name the process after the tool that produced the manifest
// and label each goroutine lane.
//
// Output is deterministic for a given manifest: events sort by
// (timestamp, name, lane) with metadata first, and encoding uses fixed
// field order — a golden test pins the exact bytes.
package traceevent

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"simprof/internal/obs"
)

// Event is one Chrome trace event. Only the fields this exporter emits
// are modeled: complete events ("X") and metadata events ("M").
// Timestamps and durations are in microseconds per the format spec;
// fractional microseconds keep the span tree's nanosecond resolution.
type Event struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	Cat  string `json:"cat,omitempty"`
	TS   TSUS   `json:"ts"`
	Dur  TSUS   `json:"dur,omitempty"`
	PID  int64  `json:"pid"`
	TID  int64  `json:"tid"`
	Args *Args  `json:"args,omitempty"`
}

// Args carries the structured payload of an event. A fixed struct
// (rather than a map) keeps encoding order deterministic.
type Args struct {
	Name   string `json:"name,omitempty"`    // metadata: process/thread name
	SelfUS TSUS   `json:"self_us,omitempty"` // spans: duration minus children
	GID    int64  `json:"gid,omitempty"`
}

// TSUS is a microsecond quantity serialized with fixed precision
// (three decimals, i.e. nanosecond resolution) so encoded output is
// byte-stable across platforms' float formatting.
type TSUS float64

// MarshalJSON renders the timestamp with exactly three decimals.
func (t TSUS) MarshalJSON() ([]byte, error) {
	return []byte(fmt.Sprintf("%.3f", float64(t))), nil
}

// UnmarshalJSON accepts any JSON number.
func (t *TSUS) UnmarshalJSON(b []byte) error {
	return json.Unmarshal(b, (*float64)(t))
}

// File is a trace-event file in the JSON object form ({"traceEvents":
// [...]}), the variant Perfetto and chrome://tracing both accept.
type File struct {
	TraceEvents     []Event `json:"traceEvents"`
	DisplayTimeUnit string  `json:"displayTimeUnit"`
}

// Event phase and category names used by the exporter.
const (
	phComplete = "X"
	phMetadata = "M"

	catStage = "stage"
	catTimer = "timer"

	pid = 1 // single-process trace

	// defaultTID lanes spans from pre-v2 manifests that carry no GID.
	defaultTID = 1
)

func usNS(ns int64) TSUS { return TSUS(float64(ns) / 1e3) }

// FromManifest converts a run manifest's span tree and timer samples
// into a trace-event file. A manifest without spans yields a file with
// only the lanes its timer samples need; a fully empty manifest yields
// an empty (but valid) trace.
func FromManifest(m *obs.Manifest) *File {
	name := "simprof"
	if m != nil && m.Tool != "" {
		name = m.Tool
	}
	if m == nil {
		return FromSpans(name, nil, nil)
	}
	return FromSpans(name, m.Spans, m.TimerSamples)
}

// FromSpans builds a trace-event file from a span tree and concurrent
// timer samples. Either may be nil.
func FromSpans(process string, root *obs.Span, samples []obs.TimerSample) *File {
	f := &File{DisplayTimeUnit: "ms", TraceEvents: []Event{}}
	lanes := map[int64]bool{}
	lane := func(gid int64) int64 {
		if gid == 0 {
			gid = defaultTID
		}
		lanes[gid] = true
		return gid
	}

	var events []Event
	root.Walk(func(sp *obs.Span, depth int) {
		events = append(events, Event{
			Name: sp.Name,
			Ph:   phComplete,
			Cat:  catStage,
			TS:   usNS(sp.StartNS),
			Dur:  usNS(sp.DurNS),
			PID:  pid,
			TID:  lane(sp.GID),
			Args: &Args{SelfUS: usNS(sp.SelfDuration().Nanoseconds()), GID: sp.GID},
		})
	})
	for _, s := range samples {
		events = append(events, Event{
			Name: s.Name,
			Ph:   phComplete,
			Cat:  catTimer,
			TS:   usNS(s.StartNS),
			Dur:  usNS(s.DurNS),
			PID:  pid,
			TID:  lane(s.GID),
			Args: &Args{GID: s.GID},
		})
	}
	sort.SliceStable(events, func(a, b int) bool {
		if events[a].TS != events[b].TS {
			return events[a].TS < events[b].TS
		}
		if events[a].Name != events[b].Name {
			return events[a].Name < events[b].Name
		}
		return events[a].TID < events[b].TID
	})

	// Metadata first: the process name, then one thread_name per lane.
	f.TraceEvents = append(f.TraceEvents, Event{
		Name: "process_name", Ph: phMetadata, PID: pid, TID: defaultTID,
		Args: &Args{Name: process},
	})
	var tids []int64
	for tid := range lanes {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(a, b int) bool { return tids[a] < tids[b] })
	rootTID := int64(defaultTID)
	if root != nil && root.GID != 0 {
		rootTID = root.GID
	}
	for _, tid := range tids {
		label := fmt.Sprintf("goroutine %d", tid)
		if tid == rootTID {
			label = fmt.Sprintf("driver (goroutine %d)", tid)
		}
		f.TraceEvents = append(f.TraceEvents, Event{
			Name: "thread_name", Ph: phMetadata, PID: pid, TID: tid,
			Args: &Args{Name: label},
		})
	}
	f.TraceEvents = append(f.TraceEvents, events...)
	return f
}

// Encode writes the file as indented JSON. Output is deterministic:
// struct field order, the event sort and fixed-precision timestamps
// pin the bytes for a given input.
func (f *File) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(f); err != nil {
		return fmt.Errorf("traceevent: encode: %w", err)
	}
	return nil
}

// Decode reads a trace-event file written by Encode (or any
// {"traceEvents": [...]} object).
func Decode(r io.Reader) (*File, error) {
	var f File
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("traceevent: decode: %w", err)
	}
	return &f, nil
}

// Validate checks the structural invariants a viewer relies on: known
// phases, named events, positive pid/tid, non-negative times, and
// metadata events carrying a name argument.
func (f *File) Validate() error {
	if f == nil {
		return fmt.Errorf("traceevent: nil file")
	}
	for i, e := range f.TraceEvents {
		switch e.Ph {
		case phComplete:
			if e.Dur < 0 {
				return fmt.Errorf("traceevent: event %d (%s): negative dur %v", i, e.Name, e.Dur)
			}
		case phMetadata:
			if e.Args == nil || e.Args.Name == "" {
				return fmt.Errorf("traceevent: metadata event %d (%s) has no name arg", i, e.Name)
			}
		default:
			return fmt.Errorf("traceevent: event %d (%s): unsupported phase %q", i, e.Name, e.Ph)
		}
		if e.Name == "" {
			return fmt.Errorf("traceevent: event %d has no name", i)
		}
		if e.PID <= 0 || e.TID <= 0 {
			return fmt.Errorf("traceevent: event %d (%s): pid=%d tid=%d must be positive", i, e.Name, e.PID, e.TID)
		}
		if e.TS < 0 {
			return fmt.Errorf("traceevent: event %d (%s): negative ts %v", i, e.Name, e.TS)
		}
	}
	return nil
}

// WriteFile converts the manifest and writes the trace to path.
func WriteFile(path string, m *obs.Manifest) error {
	f := FromManifest(m)
	if err := f.Validate(); err != nil {
		return err
	}
	out, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("traceevent: write %s: %w", path, err)
	}
	defer out.Close()
	if err := f.Encode(out); err != nil {
		return err
	}
	return out.Close()
}

// SpanDurUS sums the durations (µs) of all stage events — the check
// that export preserved the manifest's span tree timings.
func (f *File) SpanDurUS() float64 {
	var sum float64
	for _, e := range f.TraceEvents {
		if e.Ph == phComplete && e.Cat == catStage {
			sum += float64(e.Dur)
		}
	}
	return sum
}
