package traceevent

import (
	"bytes"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"simprof/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden trace file")

// fixedManifest builds a manifest with hand-set span and sample times,
// so its trace export is byte-deterministic.
func fixedManifest() *obs.Manifest {
	root := &obs.Span{Name: "simprof compare", StartNS: 0, DurNS: 5_000_000, GID: 1}
	form := &obs.Span{Name: "phase.form", StartNS: 100_000, DurNS: 3_000_000, GID: 1}
	cluster := &obs.Span{Name: "phase.cluster", StartNS: 600_000, DurNS: 2_000_000, GID: 1}
	sampleSpan := &obs.Span{Name: "sampling.simprof", StartNS: 3_500_000, DurNS: 1_200_000, GID: 1}
	form.Children = []*obs.Span{cluster}
	root.Children = []*obs.Span{form, sampleSpan}
	return &obs.Manifest{
		Version: obs.ManifestVersion,
		Tool:    "simprof compare",
		Spans:   root,
		TimerSamples: []obs.TimerSample{
			{Name: "cluster.choosek_k_seconds", GID: 7, StartNS: 700_000, DurNS: 400_000},
			{Name: "cluster.choosek_k_seconds", GID: 8, StartNS: 750_000, DurNS: 900_000},
			{Name: "cluster.choosek_k_seconds", GID: 7, StartNS: 1_200_000, DurNS: 300_000},
		},
	}
}

// TestTraceEventGolden pins the exact bytes the exporter produces for a
// fixed manifest. Regenerate with `go test ./internal/obs/traceevent
// -run TestTraceEventGolden -update` after an intentional format
// change.
func TestTraceEventGolden(t *testing.T) {
	f := FromManifest(fixedManifest())
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_trace.json")
	if *updateGolden {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace export drifted from golden file (run with -update after intentional changes)\ngot:\n%s", buf.String())
	}
}

// TestTraceEventSchema checks the structural contract of the export:
// valid phases, metadata lanes for every tid, stage events mirroring
// the span tree and timer events mirroring the samples, with durations
// that sum-match the manifest.
func TestTraceEventSchema(t *testing.T) {
	m := fixedManifest()
	f := FromManifest(m)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}

	// Round-trips through its own decoder.
	var buf bytes.Buffer
	if err := f.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("decoded file invalid: %v", err)
	}
	if len(back.TraceEvents) != len(f.TraceEvents) {
		t.Fatalf("round trip lost events: %d vs %d", len(back.TraceEvents), len(f.TraceEvents))
	}

	var stages, timers, meta int
	lanes := map[int64]bool{}
	named := map[int64]bool{}
	for _, e := range f.TraceEvents {
		switch {
		case e.Ph == "M":
			meta++
			if e.Name == "thread_name" {
				named[e.TID] = true
			}
		case e.Cat == "stage":
			stages++
			lanes[e.TID] = true
		case e.Cat == "timer":
			timers++
			lanes[e.TID] = true
		}
	}
	if stages != 4 {
		t.Errorf("stage events = %d, want 4 (one per span)", stages)
	}
	if timers != len(m.TimerSamples) {
		t.Errorf("timer events = %d, want %d", timers, len(m.TimerSamples))
	}
	for tid := range lanes {
		if !named[tid] {
			t.Errorf("lane %d has no thread_name metadata", tid)
		}
	}

	// Span durations sum-match the manifest span tree.
	var wantUS float64
	m.Spans.Walk(func(sp *obs.Span, depth int) { wantUS += float64(sp.DurNS) / 1e3 })
	if got := f.SpanDurUS(); math.Abs(got-wantUS) > 1e-6 {
		t.Errorf("stage durations sum to %vµs, span tree sums to %vµs", got, wantUS)
	}
}

// TestTraceEventDegenerate checks empty inputs stay valid: no spans,
// no samples, nil manifest.
func TestTraceEventDegenerate(t *testing.T) {
	for name, m := range map[string]*obs.Manifest{
		"nil":          nil,
		"empty":        {},
		"samples-only": {TimerSamples: []obs.TimerSample{{Name: "x", GID: 3, DurNS: 10}}},
	} {
		f := FromManifest(m)
		if err := f.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if len(f.TraceEvents) == 0 {
			t.Errorf("%s: no events at all (want at least process metadata)", name)
		}
	}
}

// TestWriteFile exercises the file path used by the CLI.
func TestWriteFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := WriteFile(path, fixedManifest()); err != nil {
		t.Fatal(err)
	}
	fh, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	f, err := Decode(fh)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
}
