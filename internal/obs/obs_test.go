package obs

import (
	"bytes"
	"math"
	"strings"
	"sync"
	"testing"
)

// withEnabled runs fn with telemetry on, restoring the prior state.
func withEnabled(t *testing.T, fn func()) {
	t.Helper()
	was := Enabled()
	Enable()
	defer func() {
		if !was {
			Disable()
		}
	}()
	fn()
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test.count", "events")
	g := r.Gauge("test.gauge", "level")
	h := r.Histogram("test.hist", "sizes", 1, 10, 100)

	// Disabled: records nothing.
	Disable()
	c.Inc()
	g.Set(3)
	h.Observe(5)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("disabled telemetry recorded: c=%d g=%v h=%d", c.Value(), g.Value(), h.Count())
	}

	withEnabled(t, func() {
		c.Add(2)
		c.Inc()
		g.Set(1.5)
		g.Set(2.5)
		for _, v := range []float64{0.5, 1, 5, 50, 500} {
			h.Observe(v)
		}
	})
	if c.Value() != 3 {
		t.Errorf("counter=%d, want 3", c.Value())
	}
	if g.Value() != 2.5 {
		t.Errorf("gauge=%v, want 2.5", g.Value())
	}
	if h.Count() != 5 || h.Sum() != 556.5 {
		t.Errorf("hist count=%d sum=%v", h.Count(), h.Sum())
	}

	snap := r.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("snapshot has %d metrics, want 3", len(snap))
	}
	// Sorted by name.
	for i := 1; i < len(snap); i++ {
		if snap[i-1].Name >= snap[i].Name {
			t.Fatalf("snapshot not sorted: %q before %q", snap[i-1].Name, snap[i].Name)
		}
	}
	var hist Metric
	for _, m := range snap {
		if m.Kind == "histogram" {
			hist = m
		}
	}
	// Cumulative buckets: ≤1 → 2 (0.5 and 1), ≤10 → 3, ≤100 → 4, +Inf → 5.
	want := []int64{2, 3, 4, 5}
	if len(hist.Buckets) != len(want) {
		t.Fatalf("buckets=%v", hist.Buckets)
	}
	for i, b := range hist.Buckets {
		if b.Count != want[i] {
			t.Errorf("bucket %d count=%d, want %d", i, b.Count, want[i])
		}
	}
	if hist.Buckets[len(hist.Buckets)-1].LE != math.MaxFloat64 {
		t.Errorf("overflow bucket bound=%v", hist.Buckets[len(hist.Buckets)-1].LE)
	}

	r.Reset()
	if len(r.Snapshot()) != 0 {
		t.Fatal("reset registry still snapshots metrics")
	}
	if c.Value() != 0 {
		t.Fatal("reset did not zero the counter handle")
	}
}

func TestRegistryReturnsSameHandle(t *testing.T) {
	r := NewRegistry()
	if r.Counter("x", "a") != r.Counter("x", "b") {
		t.Fatal("same-name counters are distinct handles")
	}
	if r.Histogram("h", "", 1, 2) != r.Histogram("h", "", 3) {
		t.Fatal("same-name histograms are distinct handles")
	}
}

func TestNilHandlesNoop(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var s *Span
	c.Add(1)
	c.Inc()
	g.Set(1)
	h.Observe(1)
	h.ObserveTimer(Timer{})
	s.End()
	s.Walk(func(*Span, int) { t.Fatal("nil span walked") })
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 ||
		s.Duration() != 0 || s.SelfDuration() != 0 {
		t.Fatal("nil handles returned non-zero values")
	}
}

func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("cc", "")
	h := r.Histogram("hh", "", 10)
	withEnabled(t, func() {
		var wg sync.WaitGroup
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 1000; i++ {
					c.Inc()
					h.Observe(1)
				}
			}()
		}
		wg.Wait()
	})
	if c.Value() != 8000 {
		t.Fatalf("counter=%d, want 8000", c.Value())
	}
	if h.Count() != 8000 || h.Sum() != 8000 {
		t.Fatalf("hist count=%d sum=%v", h.Count(), h.Sum())
	}
}

func TestSpanTree(t *testing.T) {
	Disable()
	if s := StartRun("off"); s != nil {
		t.Fatal("StartRun collected while disabled")
	}
	if s := StartSpan("off"); s != nil {
		t.Fatal("StartSpan collected while disabled")
	}

	withEnabled(t, func() {
		root := StartRun("run")
		a := StartSpan("a")
		a1 := StartSpan("a1")
		a1.End()
		a.End()
		b := StartSpan("b")
		b.End()
		root.End()

		tree := SpanTree()
		if tree != root {
			t.Fatal("SpanTree is not the started root")
		}
		var names []string
		tree.Walk(func(sp *Span, depth int) {
			names = append(names, strings.Repeat(">", depth)+sp.Name)
		})
		want := "run >a >>a1 >b"
		if got := strings.Join(names, " "); got != want {
			t.Fatalf("span walk %q, want %q", got, want)
		}
		if root.Duration() < a.Duration()+b.Duration() {
			t.Fatalf("root %v shorter than children %v+%v", root.Duration(), a.Duration(), b.Duration())
		}
		if root.SelfDuration() > root.Duration() {
			t.Fatal("self duration exceeds total")
		}
	})
}

// TestTimerSamplesAttribution checks that ObserveTimer captures
// concurrent intervals with goroutine attribution while a run is
// active, that the returned samples are sorted, and that spans carry
// the opener's goroutine id.
func TestTimerSamplesAttribution(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("ts.hist", "", 1)
	withEnabled(t, func() {
		root := StartRun("attrib")
		if root.GID == 0 {
			t.Error("root span has no goroutine id")
		}
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < 3; i++ {
					h.ObserveTimer(StartTimer())
				}
			}()
		}
		wg.Wait()
		root.End()

		samples, dropped := TimerSamples()
		if len(samples) != 12 {
			t.Fatalf("%d samples, want 12", len(samples))
		}
		if dropped != 0 {
			t.Fatalf("dropped=%d, want 0", dropped)
		}
		gids := map[int64]bool{}
		for i, s := range samples {
			if s.Name != "ts.hist" {
				t.Errorf("sample %d name %q", i, s.Name)
			}
			if s.GID == 0 {
				t.Errorf("sample %d has no goroutine id", i)
			}
			if s.DurNS < 0 || s.StartNS < 0 {
				t.Errorf("sample %d has negative times: %+v", i, s)
			}
			if i > 0 && samples[i-1].StartNS > s.StartNS {
				t.Errorf("samples not sorted at %d", i)
			}
			gids[s.GID] = true
		}
		if len(gids) < 2 {
			t.Errorf("samples attribute to %d goroutines, want several", len(gids))
		}
		if root.GID != curGID() {
			t.Errorf("root GID %d != current goroutine %d", root.GID, curGID())
		}

		// A new run resets the buffer.
		StartRun("attrib2").End()
		if samples, _ := TimerSamples(); len(samples) != 0 {
			t.Errorf("new run inherited %d samples", len(samples))
		}
	})

	// Outside a run (or disabled), ObserveTimer records no samples.
	Disable()
	h.ObserveTimer(StartTimer())
	if samples, _ := TimerSamples(); len(samples) != 0 {
		t.Error("disabled ObserveTimer recorded a sample")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := NewManifest("simprof compare", []string{"-trace", "x.gob"})
	m.Workload = &WorkloadInfo{Benchmark: "wc", Framework: "spark", Seed: 42, Units: 100, OracleCPI: 1.5}
	m.Phases = &PhaseInfo{K: 4, Silhouette: 0.8, KScores: []float64{0, 0.5, 0.7, 0.8}}
	m.Sampling = &SamplingInfo{
		Method: "SimProf", N: 20, Confidence: 0.997, EstCPI: 1.49, SE: 0.01,
		CILo: 1.46, CIHi: 1.52, OracleCPI: 1.5, RelErr: 0.0067, SEInflation: 1,
		Strata: []StratumInfo{{Phase: 0, Units: 60, Measured: 60, Weight: 0.6, Sigma: 0.2, Alloc: 12, SampledMean: 1.4}},
	}
	m.Faults = &FaultInfo{Spec: "rate=0.05", CountersDropped: 3}

	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeManifest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != m.Tool || got.Workload.Benchmark != "wc" || got.Phases.K != 4 ||
		got.Sampling.Strata[0].Alloc != 12 || got.Faults.CountersDropped != 3 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if got.Build.GoVersion == "" {
		t.Fatal("build info missing go version")
	}

	// Unsupported versions are rejected, not misread.
	var buf2 bytes.Buffer
	m2 := *m
	m2.Version = ManifestVersion + 1
	if err := m2.Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeManifest(&buf2); err == nil {
		t.Fatal("future manifest version decoded without error")
	}
}

func TestManifestFile(t *testing.T) {
	path := t.TempDir() + "/run.json"
	m := NewManifest("simprof sample", nil)
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifestFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != "simprof sample" || got.Version != ManifestVersion {
		t.Fatalf("file round trip: %+v", got)
	}
}

func TestSpanSetAttr(t *testing.T) {
	Enable()
	defer Disable()

	run := StartRun("run")
	s := StartSpan("stage")
	s.SetAttr("batch.size", "4")
	s.SetAttr("cache", "miss")
	s.SetAttr("cache", "hit") // last write wins
	s.End()
	run.End()

	if got := s.Attrs["batch.size"]; got != "4" {
		t.Fatalf("batch.size = %q, want 4", got)
	}
	if got := s.Attrs["cache"]; got != "hit" {
		t.Fatalf("cache = %q, want hit (overwrite)", got)
	}

	var nilSpan *Span
	nilSpan.SetAttr("k", "v") // disabled-path no-op
}

func TestSpanSetAttrCollectorOwned(t *testing.T) {
	Enable()
	defer Disable()

	c := AttachCollector("req")
	s := StartSpan("stage")
	s.SetAttr("source", "coalesced")
	s.End()
	root := c.Detach()
	if len(root.Children) != 1 || root.Children[0].Attrs["source"] != "coalesced" {
		t.Fatalf("collector-owned attr missing: %+v", root.Children)
	}
}
