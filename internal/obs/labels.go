package obs

import (
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labeled metric families. A *Vec is a family of children sharing one
// name and a fixed set of label names; each distinct label-value tuple
// owns an independent child. The families obey the same two contracts
// as the scalar metrics:
//
//   - disabled telemetry is free: With gates on the enabled flag before
//     touching the children map and returns nil, and every child method
//     no-ops on a nil receiver, so a disabled call is an atomic load, a
//     branch and nothing else (0 allocs/op, benchmarked);
//   - snapshots are deterministic: children serialize sorted by family
//     name, then kind, then the canonical sorted label-pair key.
//
// Cardinality is bounded: a vec holds at most maxCardinality distinct
// children. Once the bound is hit, new label tuples collapse into one
// overflow child whose every label value is "~overflow" — a service fed
// hostile label values (tenant names, say) degrades to one coarse
// series instead of growing telemetry state without limit.

// maxCardinality bounds the distinct children of one vec.
const maxCardinality = 256

// overflowLabel is the label value of the shared overflow child.
const overflowLabel = "~overflow"

// cardinalityOverflows tallies, across every vec in the process, each
// observation whose (previously unseen) label tuple collapsed into the
// overflow child. The tally feeds both the CardinalityOverflows
// accessor and the obs.cardinality_overflow self-metric, so a service
// under label-value abuse shows the damage on /metrics instead of
// silently coarsening.
var cardinalityOverflows atomic.Int64

var overflowCounter = NewCounter("obs.cardinality_overflow",
	"observations collapsed into a vec's ~overflow child because the cardinality bound was hit")

// CardinalityOverflows returns the process-wide count of observations
// that collapsed into an overflow child.
func CardinalityOverflows() int64 { return cardinalityOverflows.Load() }

// LabelPair is one name=value label on a snapshotted metric.
type LabelPair struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// labelSet is the shared bookkeeping of a vec: the fixed label names
// and the children keyed by joined label values.
type labelSet struct {
	labels []string
	mu     sync.Mutex
	keys   []string // insertion-ordered child keys
	values map[string][]string
}

// childKey joins label values into a map key. \xff cannot appear in a
// UTF-8 label value's byte stream as a separator collision risk worth
// worrying about; collisions would only merge two children's counts.
func childKey(values []string) string {
	return strings.Join(values, "\xff")
}

// resolve validates the tuple arity and applies the cardinality bound:
// it returns the canonical key for the tuple (or the overflow key) and
// whether the tuple is new. Callers hold ls.mu.
func (ls *labelSet) resolve(values []string) (string, bool) {
	if len(values) != len(ls.labels) {
		panic("obs: label value count does not match the vec's label names")
	}
	k := childKey(values)
	if _, ok := ls.values[k]; ok {
		return k, false
	}
	if len(ls.keys) >= maxCardinality {
		cardinalityOverflows.Add(1)
		overflowCounter.Add(1)
		ov := make([]string, len(ls.labels))
		for i := range ov {
			ov[i] = overflowLabel
		}
		k = childKey(ov)
		if _, ok := ls.values[k]; ok {
			return k, false
		}
		values = ov
	}
	stored := make([]string, len(values))
	copy(stored, values)
	ls.keys = append(ls.keys, k)
	ls.values[k] = stored
	return k, true
}

// pairs converts a stored value tuple to snapshot label pairs in the
// registered label-name order.
func (ls *labelSet) pairs(values []string) []LabelPair {
	out := make([]LabelPair, len(ls.labels))
	for i, n := range ls.labels {
		out[i] = LabelPair{Name: n, Value: values[i]}
	}
	return out
}

// CounterVec is a labeled family of counters.
type CounterVec struct {
	name, help string
	set        labelSet
	children   map[string]*Counter
}

// GaugeVec is a labeled family of gauges.
type GaugeVec struct {
	name, help string
	set        labelSet
	children   map[string]*Gauge
}

// HistogramVec is a labeled family of fixed-bucket histograms. All
// children share the family's bounds.
type HistogramVec struct {
	name, help string
	bounds     []float64
	set        labelSet
	children   map[string]*Histogram
}

// CounterVec registers (or returns the existing) counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.counterVecs[name]; ok {
		return v
	}
	v := &CounterVec{name: name, help: help, children: map[string]*Counter{}}
	v.set = labelSet{labels: append([]string(nil), labels...), values: map[string][]string{}}
	r.counterVecs[name] = v
	return v
}

// GaugeVec registers (or returns the existing) gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.gaugeVecs[name]; ok {
		return v
	}
	v := &GaugeVec{name: name, help: help, children: map[string]*Gauge{}}
	v.set = labelSet{labels: append([]string(nil), labels...), values: map[string][]string{}}
	r.gaugeVecs[name] = v
	return v
}

// HistogramVec registers (or returns the existing) histogram family.
// bounds must be sorted ascending, as for Histogram.
func (r *Registry) HistogramVec(name, help string, labels []string, bounds ...float64) *HistogramVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	if v, ok := r.histVecs[name]; ok {
		return v
	}
	v := &HistogramVec{
		name: name, help: help,
		bounds:   append([]float64(nil), bounds...),
		children: map[string]*Histogram{},
	}
	v.set = labelSet{labels: append([]string(nil), labels...), values: map[string][]string{}}
	r.histVecs[name] = v
	return v
}

// NewCounterVec registers a counter family on the default registry.
func NewCounterVec(name, help string, labels ...string) *CounterVec {
	return defaultRegistry.CounterVec(name, help, labels...)
}

// NewGaugeVec registers a gauge family on the default registry.
func NewGaugeVec(name, help string, labels ...string) *GaugeVec {
	return defaultRegistry.GaugeVec(name, help, labels...)
}

// NewHistogramVec registers a histogram family on the default registry.
func NewHistogramVec(name, help string, labels []string, bounds ...float64) *HistogramVec {
	return defaultRegistry.HistogramVec(name, help, labels, bounds...)
}

// With returns the child for the label-value tuple, creating it on
// first use. Disabled telemetry (or a nil vec) returns nil, whose
// methods no-op — the disabled path never touches the children map and
// never allocates.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil || !enabled.Load() {
		return nil
	}
	v.set.mu.Lock()
	defer v.set.mu.Unlock()
	k, fresh := v.set.resolve(values)
	if fresh {
		v.children[k] = &Counter{name: v.name, help: v.help}
	}
	return v.children[k]
}

// With returns the gauge child for the label-value tuple (nil while
// telemetry is disabled; see CounterVec.With).
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil || !enabled.Load() {
		return nil
	}
	v.set.mu.Lock()
	defer v.set.mu.Unlock()
	k, fresh := v.set.resolve(values)
	if fresh {
		v.children[k] = &Gauge{name: v.name, help: v.help}
	}
	return v.children[k]
}

// With returns the histogram child for the label-value tuple (nil while
// telemetry is disabled; see CounterVec.With).
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil || !enabled.Load() {
		return nil
	}
	v.set.mu.Lock()
	defer v.set.mu.Unlock()
	k, fresh := v.set.resolve(values)
	if fresh {
		v.children[k] = &Histogram{
			name: v.name, help: v.help,
			bounds: v.bounds,
			counts: make([]atomic.Int64, len(v.bounds)+1),
		}
	}
	return v.children[k]
}

// LabelsKey returns the metric's canonical label identity: "k=v,k=v"
// with pairs sorted by label name (then value). Unlabeled metrics
// return "". Snapshot ordering and history diff keys use it so labeled
// children never collide or reorder across runs.
func (m Metric) LabelsKey() string {
	if len(m.Labels) == 0 {
		return ""
	}
	ps := append([]LabelPair(nil), m.Labels...)
	sort.Slice(ps, func(a, b int) bool {
		if ps[a].Name != ps[b].Name {
			return ps[a].Name < ps[b].Name
		}
		return ps[a].Value < ps[b].Value
	})
	var sb strings.Builder
	for i, p := range ps {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(p.Name)
		sb.WriteByte('=')
		sb.WriteString(p.Value)
	}
	return sb.String()
}
