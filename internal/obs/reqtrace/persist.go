package reqtrace

import (
	"fmt"
	"time"

	"simprof/internal/history"
	"simprof/internal/obs"
)

// Persistence: every admission is offered to the durable history store
// through a bounded async queue, the access-log idiom — the retention
// path must never block on an fsync. The store is an admission log:
// traces later evicted from the in-memory set stay on disk, and each
// record carries the inclusion probability at admission time (the live
// π keeps moving as the stratum sees more traffic; the Status endpoint
// reports the current value).

// persistLocked enqueues one admitted trace for durable persistence.
// Callers hold e.mu.
func (e *Engine) persistLocked(t *Trace, st *stratum) {
	if e.persistCh == nil {
		return
	}
	pi := 1.0
	if t.Forced {
		if st.forcedSeen > 0 {
			pi = float64(len(st.forced)) / float64(st.forcedSeen)
		}
	} else if st.sampledSeen > 0 {
		pi = float64(len(st.kept)) / float64(st.sampledSeen)
	}
	select {
	case e.persistCh <- e.record(t, st.key, pi):
	default:
		e.persistDropped++
		obsPersistDropped.Inc()
	}
}

// record converts a trace to a manifest-carrying history record, so the
// existing tooling (simprof history show, simprof inspect) renders
// retained traces with no new decoder.
func (e *Engine) record(t *Trace, key stratumKey, pi float64) *history.Record {
	m := obs.NewManifest("simprofd reqtrace", nil)
	weight := 0.0
	if pi > 0 {
		weight = 1 / pi
	}
	m.Request = &obs.RequestInfo{
		ID:      t.ID,
		Route:   t.Route,
		Tenant:  t.Tenant,
		Status:  t.Status,
		Class:   t.Class,
		Bytes:   t.Bytes,
		Start:   t.Start.UTC().Format(time.RFC3339Nano),
		Latency: t.LatencyMS(),

		Stratum:    key.String(),
		Forced:     t.Forced,
		InclusionP: pi,
		Weight:     weight,
	}
	m.Spans = t.Spans
	rec := history.FromManifest(m)
	rec.Note = fmt.Sprintf("trace %s %s status=%d %.2fms", t.ID, t.Route, t.Status, t.LatencyMS())
	return rec
}

// persistLoop drains the queue into the store. Append errors are
// swallowed deliberately: persistence is best-effort telemetry, and the
// request path that produced the trace already succeeded or failed on
// its own terms.
func (e *Engine) persistLoop() {
	defer close(e.persistDone)
	for rec := range e.persistCh {
		e.cfg.Store.Append(rec)
	}
}
