package reqtrace

import (
	"math"
	"sort"
)

// latHist is the engine's own cumulative latency histogram over every
// completion — the unsampled ground truth the weighted estimates are
// checked against. It is deliberately independent of the obs registry
// (always on, never reset) so the estimate-vs-histogram comparison is
// self-contained.
type latHist struct {
	boundsMS []float64
	counts   []int64 // len(bounds)+1, last is overflow
	total    int64
	sum      float64
}

// latHistBoundsMS is a fixed ms ladder dense enough that interpolated
// quantiles are meaningful from microseconds to tens of seconds.
var latHistBoundsMS = []float64{
	0.5, 1, 2, 5, 10, 20, 50, 75, 100, 150, 200, 300, 400, 500,
	750, 1000, 1500, 2000, 3000, 5000, 10000,
}

func newLatHist() latHist {
	return latHist{boundsMS: latHistBoundsMS, counts: make([]int64, len(latHistBoundsMS)+1)}
}

func (h *latHist) observe(ms float64) {
	i := sort.SearchFloat64s(h.boundsMS, ms)
	if i < len(h.boundsMS) && ms == h.boundsMS[i] {
		i++ // bucket i holds values ≤ bound i: move to the next le
	}
	h.counts[i]++
	h.total++
	h.sum += ms
}

// quantile interpolates linearly inside the containing bucket, the same
// convention as the obs histograms; the overflow bucket answers with
// the last finite bound.
func (h *latHist) quantile(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	rank := q * float64(h.total)
	var cum int64
	for i, c := range h.counts {
		cum += c
		if float64(cum) >= rank {
			if i >= len(h.boundsMS) {
				return h.boundsMS[len(h.boundsMS)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.boundsMS[i-1]
			}
			hi := h.boundsMS[i]
			frac := (rank - float64(cum-c)) / float64(c)
			return lo + (hi-lo)*frac
		}
	}
	return h.boundsMS[len(h.boundsMS)-1]
}

// bucketWidth returns the width of the bucket containing the q-th
// quantile — the histogram's own resolution there, which bounds how
// closely any estimate can be expected to agree with it.
func (h *latHist) bucketWidth(q float64) float64 {
	if h.total == 0 {
		return 0
	}
	rank := q * float64(h.total)
	var cum int64
	for i, c := range h.counts {
		cum += c
		if float64(cum) >= rank {
			if i >= len(h.boundsMS) {
				return h.boundsMS[len(h.boundsMS)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.boundsMS[i-1]
			}
			return h.boundsMS[i] - lo
		}
	}
	return 0
}

// QuantileEstimate is one weighted order statistic with its standard
// error (Woodruff interval halved: the weighted quantile is re-read at
// q ± sqrt(q(1-q)/n_eff)).
type QuantileEstimate struct {
	Q       float64 `json:"q"`
	ValueMS float64 `json:"value_ms"`
	SEMS    float64 `json:"se_ms"`
}

// Estimate is the engine's weighted view of the full population,
// reconstructed from the retained sample via inclusion-probability
// weights, alongside the cumulative histogram's direct answer.
type Estimate struct {
	// N is the population (every completion); Kept the retained sample
	// size backing the estimate; CoveredN the population share of strata
	// that still hold at least one trace.
	N        int64 `json:"n"`
	Kept     int   `json:"kept"`
	CoveredN int64 `json:"covered_n"`
	// EffN is the Kish effective sample size (Σw)²/Σw² — unequal weights
	// cost precision, and the SEs below charge for it.
	EffN float64 `json:"eff_n"`

	MeanMS   float64 `json:"mean_ms"`
	MeanSEMS float64 `json:"mean_se_ms"`

	Quantiles []QuantileEstimate `json:"quantiles"`

	// The cumulative histogram's direct quantiles over every completion
	// (the ground truth the weighted quantiles should agree with), plus
	// its bucket resolution at p99.
	HistP50MS           float64 `json:"hist_p50_ms"`
	HistP90MS           float64 `json:"hist_p90_ms"`
	HistP99MS           float64 `json:"hist_p99_ms"`
	HistP99ResolutionMS float64 `json:"hist_p99_resolution_ms"`
}

// weightedPoint is one retained trace with its estimation weight 1/π.
type weightedPoint struct {
	ms float64
	w  float64
}

// estimateLocked builds the weighted estimate. Parts (a stratum's
// sampled reservoir, a stratum's forced list) contribute their seen
// count as population weight and their kept traces as the sample; a
// part whose every trace was evicted drops out of coverage and the
// estimator renormalizes over what remains.
func (e *Engine) estimateLocked() *Estimate {
	var (
		points   []weightedPoint
		coveredN int64
		totalN   int64
		varSum   float64 // Σ N_p²·(1-n_p/N_p)·s_p²/n_p over covered parts
		meanSum  float64 // Σ N_p·ȳ_p over covered parts
	)
	part := func(seen int64, kept []*Trace) {
		totalN += seen
		if seen == 0 || len(kept) == 0 {
			return
		}
		coveredN += seen
		w := float64(seen) / float64(len(kept))
		var sum float64
		for _, t := range kept {
			points = append(points, weightedPoint{ms: t.LatencyMS(), w: w})
			sum += t.LatencyMS()
		}
		n := float64(len(kept))
		mean := sum / n
		meanSum += float64(seen) * mean
		if len(kept) > 1 {
			var s2 float64
			for _, t := range kept {
				d := t.LatencyMS() - mean
				s2 += d * d
			}
			s2 /= n - 1
			fpc := 1 - n/float64(seen)
			if fpc < 0 {
				fpc = 0
			}
			varSum += float64(seen) * float64(seen) * fpc * s2 / n
		}
	}
	for _, st := range e.sortedStrata() {
		part(st.sampledSeen, st.kept)
		part(st.forcedSeen, st.forced)
	}
	if coveredN == 0 || len(points) == 0 {
		return nil
	}

	est := &Estimate{
		N:        totalN,
		Kept:     len(points),
		CoveredN: coveredN,
		MeanMS:   meanSum / float64(coveredN),
		MeanSEMS: math.Sqrt(varSum) / float64(coveredN),

		HistP50MS:           e.hist.quantile(0.50),
		HistP90MS:           e.hist.quantile(0.90),
		HistP99MS:           e.hist.quantile(0.99),
		HistP99ResolutionMS: e.hist.bucketWidth(0.99),
	}

	sort.Slice(points, func(a, b int) bool { return points[a].ms < points[b].ms })
	var W, W2 float64
	for _, p := range points {
		W += p.w
		W2 += p.w * p.w
	}
	est.EffN = W * W / W2

	quantile := func(q float64) float64 {
		rank := q * W
		var cum float64
		for _, p := range points {
			cum += p.w
			if cum >= rank {
				return p.ms
			}
		}
		return points[len(points)-1].ms
	}
	for _, q := range []float64{0.50, 0.90, 0.99} {
		v := quantile(q)
		// Woodruff: the sampling noise of the estimated CDF at q is
		// ~sqrt(q(1-q)/n_eff); reading the quantile curve at q ± that
		// noise brackets the estimate.
		delta := math.Sqrt(q * (1 - q) / est.EffN)
		lo, hi := q-delta, q+delta
		if lo < 0 {
			lo = 0
		}
		if hi > 1 {
			hi = 1
		}
		se := (quantile(hi) - quantile(lo)) / 2
		est.Quantiles = append(est.Quantiles, QuantileEstimate{Q: q, ValueMS: v, SEMS: se})
	}
	return est
}
