package reqtrace

import (
	"sort"
)

// StratumStatus is one row of the retention table: the stratum's
// population counts, what is retained, and the resulting inclusion
// probabilities.
type StratumStatus struct {
	Route         string `json:"route"`
	StatusClass   string `json:"status_class"`
	LatencyBucket string `json:"latency_bucket"`

	Seen       int64 `json:"seen"` // total completions, forced included
	ForcedSeen int64 `json:"forced_seen"`
	Kept       int   `json:"kept"` // reservoir size
	ForcedKept int   `json:"forced_kept"`
	Target     int   `json:"target"` // current Neyman allocation

	MeanMS  float64 `json:"mean_ms"`  // sampled sub-population
	SigmaMS float64 `json:"sigma_ms"` // sampled sub-population spread

	// InclusionP is the reservoir's empirical π = kept/seen over the
	// sampled sub-population; ForcedInclusionP the forced list's (1.0
	// until budget pressure evicts forced traces).
	InclusionP       float64 `json:"inclusion_p"`
	ForcedInclusionP float64 `json:"forced_inclusion_p"`
}

// Status is the engine's full self-description: configuration, global
// tallies, the per-stratum retention table, and the weighted estimate.
type Status struct {
	Budget            int     `json:"budget"`
	Retained          int     `json:"retained"`
	ForcedRetained    int     `json:"forced_retained"`
	BudgetUtilization float64 `json:"budget_utilization"`

	Completed      int64 `json:"completed"`
	Evicted        int64 `json:"evicted"`
	PersistDropped int64 `json:"persist_dropped"`

	Strata   []StratumStatus `json:"strata"`
	Estimate *Estimate       `json:"estimate,omitempty"`
}

// Status reports the engine's current state. Safe on a nil engine
// (returns a zero Status).
func (e *Engine) Status() Status {
	if e == nil {
		return Status{}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	s := Status{
		Budget:            e.cfg.Budget,
		Retained:          e.retained,
		ForcedRetained:    e.forcedKept,
		BudgetUtilization: float64(e.retained) / float64(e.cfg.Budget),
		Completed:         e.completions,
		Evicted:           e.evicted,
		PersistDropped:    e.persistDropped,
		Estimate:          e.estimateLocked(),
	}
	for _, st := range e.sortedStrata() {
		row := StratumStatus{
			Route:         st.key.route,
			StatusClass:   st.key.statusClass,
			LatencyBucket: st.key.bucket,
			Seen:          st.sampledSeen + st.forcedSeen,
			ForcedSeen:    st.forcedSeen,
			Kept:          len(st.kept),
			ForcedKept:    len(st.forced),
			Target:        st.target,
			MeanMS:        st.mean,
			SigmaMS:       st.sigma(),
		}
		if st.sampledSeen > 0 {
			row.InclusionP = float64(len(st.kept)) / float64(st.sampledSeen)
		}
		if st.forcedSeen > 0 {
			row.ForcedInclusionP = float64(len(st.forced)) / float64(st.forcedSeen)
		}
		s.Strata = append(s.Strata, row)
	}
	return s
}

// Summary is one trace row in a listing: identity, outcome, and its
// retention bookkeeping (stratum, forced flag, current weight 1/π).
type Summary struct {
	Seq       uint64  `json:"seq"`
	ID        string  `json:"id"`
	Route     string  `json:"route"`
	Tenant    string  `json:"tenant,omitempty"`
	Status    int     `json:"status"`
	Class     string  `json:"class"`
	LatencyMS float64 `json:"latency_ms"`

	StatusClass   string  `json:"status_class"`
	LatencyBucket string  `json:"latency_bucket"`
	Forced        bool    `json:"forced,omitempty"`
	Weight        float64 `json:"weight"`
	HasSpans      bool    `json:"has_spans,omitempty"`
}

// ListOptions filter a trace listing. Zero-valued fields match
// everything; Recent switches from the retained set to the
// most-recent-completions ring.
type ListOptions struct {
	Route         string
	StatusClass   string
	LatencyBucket string
	Recent        bool
	Limit         int
}

// List returns trace summaries (ascending Seq) from the retained set —
// or the recent ring — applying the filters. Safe on a nil engine.
func (e *Engine) List(opts ListOptions) []Summary {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()

	var out []Summary
	add := func(t *Trace, weight float64) {
		bucket, _ := e.bucketOf(t.Latency)
		sc := statusClassOf(t.Status)
		if opts.Route != "" && opts.Route != t.Route {
			return
		}
		if opts.StatusClass != "" && opts.StatusClass != sc {
			return
		}
		if opts.LatencyBucket != "" && opts.LatencyBucket != bucket {
			return
		}
		out = append(out, Summary{
			Seq: t.Seq, ID: t.ID, Route: t.Route, Tenant: t.Tenant,
			Status: t.Status, Class: t.Class, LatencyMS: t.LatencyMS(),
			StatusClass: sc, LatencyBucket: bucket,
			Forced: t.Forced, Weight: weight, HasSpans: t.Spans != nil,
		})
	}
	if opts.Recent {
		for _, t := range e.recent {
			add(t, e.weightLocked(t))
		}
	} else {
		for _, st := range e.sortedStrata() {
			for _, t := range st.kept {
				add(t, e.weightLocked(t))
			}
			for _, t := range st.forced {
				add(t, e.weightLocked(t))
			}
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	if opts.Limit > 0 && len(out) > opts.Limit {
		out = out[len(out)-opts.Limit:] // newest wins a bounded listing
	}
	return out
}

// weightLocked returns the trace's current estimation weight 1/π from
// its stratum's live counts (0 when the part has nothing kept).
func (e *Engine) weightLocked(t *Trace) float64 {
	bucket, _ := e.bucketOf(t.Latency)
	st := e.strata[stratumKey{route: t.Route, statusClass: statusClassOf(t.Status), bucket: bucket}]
	if st == nil {
		return 0
	}
	if t.Forced {
		if len(st.forced) == 0 {
			return 0
		}
		return float64(st.forcedSeen) / float64(len(st.forced))
	}
	if len(st.kept) == 0 {
		return 0
	}
	return float64(st.sampledSeen) / float64(len(st.kept))
}

// Get returns the retained (or ring-held) trace with the given request
// ID, newest first on duplicates. Safe on a nil engine.
func (e *Engine) Get(id string) *Trace {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	var best *Trace
	consider := func(t *Trace) {
		if t.ID == id && (best == nil || t.Seq > best.Seq) {
			best = t
		}
	}
	for _, st := range e.strata {
		for _, t := range st.kept {
			consider(t)
		}
		for _, t := range st.forced {
			consider(t)
		}
	}
	for _, t := range e.recent {
		consider(t)
	}
	return best
}
