package reqtrace

import (
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"testing"
	"time"

	"simprof/internal/history"
	"simprof/internal/obs"
)

// leakCheck fails the test if it ends with more goroutines than it
// started with (after a settling poll) — the engine's persister must
// die with Stop.
func leakCheck(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= before {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
	})
}

// TestChaosFailureStormForcedKeep: a burst of 5xx/timeouts inside a sea
// of concurrent OK traffic — every error trace that arrived after the
// budget stopped fighting back must be in the retained set, and the
// error strata must report their forced population.
func TestChaosFailureStormForcedKeep(t *testing.T) {
	leakCheck(t)
	e := New(Config{Budget: 200, Rebalance: 32, Seed: 13})
	defer e.Stop()

	const (
		workers = 8
		perW    = 500
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perW; i++ {
				id := fmt.Sprintf("w%d-r%d", w, i)
				status, class, lat := 200, "ok", 5*time.Millisecond
				if i%50 < 5 { // injected failure storm: 10% errors in bursts
					status, class, lat = 500, "internal", 20*time.Millisecond
				}
				finish(e, id, "/v1/profile", status, class, lat)
			}
		}(w)
	}
	wg.Wait()

	s := e.Status()
	if s.Completed != workers*perW {
		t.Fatalf("completed %d, want %d", s.Completed, workers*perW)
	}
	if s.Retained > 200 {
		t.Fatalf("retained %d > budget under concurrent storm", s.Retained)
	}
	var forcedSeen, forcedKept int64
	for _, row := range s.Strata {
		if row.StatusClass == "5xx" {
			forcedSeen += row.ForcedSeen
			forcedKept += int64(row.ForcedKept)
		}
	}
	wantErrors := int64(workers * perW / 10)
	if forcedSeen != wantErrors {
		t.Fatalf("error strata saw %d, want %d", forcedSeen, wantErrors)
	}
	// The error volume (400) exceeds the budget (200): the engine keeps
	// as many of the newest error traces as the budget allows — never
	// fewer than budget minus what the sampled strata still hold — and
	// reports the honest forced π < 1.
	if forcedKept == 0 || forcedKept > 200 {
		t.Fatalf("forced kept %d, want in (0, 200]", forcedKept)
	}
	if forcedSeen > forcedKept {
		for _, row := range s.Strata {
			if row.StatusClass == "5xx" && row.ForcedInclusionP >= 1 {
				t.Fatalf("forced π must drop below 1 when forced traces are evicted: %+v", row)
			}
		}
	}
}

// TestChaosOverloadStormBoundedMemory: a 429 storm (every trace
// force-kept as overload class) must not grow the retained set past
// the budget no matter how long it runs — bounded memory is the
// contract that lets tracing stay on during the incident.
func TestChaosOverloadStormBoundedMemory(t *testing.T) {
	leakCheck(t)
	const budget = 64
	e := New(Config{Budget: budget, Ring: 16, Rebalance: 16, Seed: 17})
	defer e.Stop()

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				finish(e, fmt.Sprintf("w%d-r%d", w, i), "/v1/profile", 429, "overload", time.Millisecond)
			}
		}(w)
	}
	wg.Wait()

	s := e.Status()
	if s.Retained > budget {
		t.Fatalf("429 storm grew retained set to %d > budget %d", s.Retained, budget)
	}
	if s.Retained != budget {
		t.Fatalf("retained %d, want full budget of forced traces", s.Retained)
	}
	if s.Evicted == 0 {
		t.Fatal("storm must have evicted forced traces to stay bounded")
	}
	// The kept forced traces are the newest (FIFO eviction of the
	// oldest), and their π reflects the eviction honestly.
	for _, row := range s.Strata {
		if row.ForcedSeen > 0 && row.ForcedInclusionP >= 1 {
			t.Fatalf("forced π = %v after evictions, want < 1", row.ForcedInclusionP)
		}
	}
}

// TestChaosConcurrentReadsDuringStorm: Status/List/Get race with
// completions (run under -race in chaos-smoke).
func TestChaosConcurrentReadsDuringStorm(t *testing.T) {
	leakCheck(t)
	e := New(Config{Budget: 50, Rebalance: 8, Seed: 19})
	defer e.Stop()

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
					e.Status()
					e.List(ListOptions{Recent: true, Limit: 10})
					e.Get("w0-r10")
				}
			}
		}()
	}
	var writers sync.WaitGroup
	for w := 0; w < 4; w++ {
		writers.Add(1)
		go func(w int) {
			defer writers.Done()
			for i := 0; i < 1000; i++ {
				status, class := 200, "ok"
				if i%7 == 0 {
					status, class = 503, "unavailable"
				}
				finish(e, fmt.Sprintf("w%d-r%d", w, i), "/v1/profile", status, class, time.Duration(i%30)*time.Millisecond)
			}
		}(w)
	}
	writers.Wait()
	close(stop)
	readers.Wait()

	if s := e.Status(); s.Completed != 4000 || s.Retained > 50 {
		t.Fatalf("after concurrent storm: %+v", s)
	}
}

// TestPersistRoundTrip: admitted traces land in the durable history
// store as manifest-carrying records, recoverable by the existing
// tooling, with the retention bookkeeping in the request section.
func TestPersistRoundTrip(t *testing.T) {
	leakCheck(t)
	obs.Enable()
	defer obs.Disable()

	store := history.OpenDurable(filepath.Join(t.TempDir(), "traces.jsonl"))
	clk := newSteppedClock()
	e := New(Config{Budget: 100, Now: clk.now, Seed: 23, Store: store})

	a := e.Start("req-abc", "/v1/profile", "tenant-1")
	sp := obs.StartSpan("phase.form")
	sp.End()
	e.Finish(a, 500, "internal", 64, 42*time.Millisecond)
	e.Stop() // drains the persist queue

	recs, skipped, err := store.Records()
	if err != nil || skipped != 0 {
		t.Fatalf("Records: %v (skipped %d)", err, skipped)
	}
	if len(recs) != 1 {
		t.Fatalf("persisted %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Tool != "simprofd reqtrace" {
		t.Fatalf("tool = %q", rec.Tool)
	}
	req := rec.Manifest.Request
	if req == nil {
		t.Fatal("manifest has no request section")
	}
	if req.ID != "req-abc" || req.Route != "/v1/profile" || req.Tenant != "tenant-1" ||
		req.Status != 500 || req.Class != "internal" || !req.Forced {
		t.Fatalf("request section: %+v", req)
	}
	if req.Latency != 42 {
		t.Fatalf("latency = %v, want 42ms", req.Latency)
	}
	if req.Stratum != "/v1/profile|5xx|25-100ms" {
		t.Fatalf("stratum = %q", req.Stratum)
	}
	if req.InclusionP != 1 || req.Weight != 1 {
		t.Fatalf("π=%v weight=%v, want 1/1 for a forced keep", req.InclusionP, req.Weight)
	}
	spans := rec.Manifest.Spans
	if spans == nil || spans.Name != "request req-abc" {
		t.Fatalf("span tree root: %+v", spans)
	}
	if len(spans.Children) != 1 || spans.Children[0].Name != "phase.form" {
		t.Fatalf("span children: %+v", spans.Children)
	}
}

// TestPersistQueueOverflowCounted: a wedged store must not block
// retention; overflow drops are counted.
func TestPersistQueueOverflowCounted(t *testing.T) {
	// A store pointed into a nonexistent directory: Append fails fast,
	// but the queue is tiny so drops happen under a burst regardless.
	store := history.OpenDurable(filepath.Join(t.TempDir(), "no", "such", "dir", "t.jsonl"))
	clk := newSteppedClock()
	e := New(Config{Budget: 5000, Now: clk.now, Seed: 29, Store: store, PersistQueue: 1})
	for i := 0; i < 500; i++ {
		finish(e, fmt.Sprintf("r%d", i), "/v1/profile", 500, "internal", time.Millisecond)
	}
	e.Stop()
	if s := e.Status(); s.PersistDropped == 0 {
		t.Fatalf("expected persist drops with a 1-deep queue, status %+v", s)
	}
}
