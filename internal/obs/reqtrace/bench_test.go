package reqtrace

import (
	"fmt"
	"testing"
	"time"
)

// BenchmarkReqTraceDisabled is the disabled request-tracing path: a nil
// engine's Start/Finish, exactly what the server middleware executes
// per request when tracing is off. The contract (bench-smoke-enforced)
// is 0 allocs/op — turning the feature off must cost two nil checks.
func BenchmarkReqTraceDisabled(b *testing.B) {
	var e *Engine
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a := e.Start("id", "/v1/profile", "default")
		e.Finish(a, 200, "ok", 0, time.Millisecond)
	}
}

// BenchmarkReqTraceEnabled is the instrumented cost: stratify, reservoir
// decision, budget enforcement and periodic Neyman rebalance, on a
// steady-state engine (telemetry disabled, so the obs counter calls are
// their no-op fast path — the engine's own arithmetic is what's
// measured).
func BenchmarkReqTraceEnabled(b *testing.B) {
	clk := newSteppedClock()
	e := New(Config{Budget: 256, Rebalance: 64, Seed: 31, Now: clk.now})
	defer e.Stop()
	// Pre-warm: realistic stratum population before measuring.
	for i := 0; i < 2000; i++ {
		finish(e, fmt.Sprintf("warm%d", i), "/v1/profile", 200, "ok", time.Duration(1+i%200)*time.Millisecond)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := e.Start("bench", "/v1/profile", "default")
		e.Finish(a, 200, "ok", 0, time.Duration(1+i%200)*time.Millisecond)
	}
}
