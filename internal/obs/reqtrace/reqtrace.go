// Package reqtrace retains a statistically principled sample of request
// traces. The problem is the observability twin of the paper's: a
// service cannot keep every trace, and uniform head-sampling keeps the
// wrong ones — the rare slow and failing requests an operator actually
// needs are exactly the ones a uniform coin drops. SimProf's answer
// transfers directly: stratify the completed-trace stream by
// (route, status class, latency bucket), keep 100% of the strata where
// single traces matter (errors, the latency tail), and split the
// remaining fixed budget across the bulk strata with the Neyman
// allocator — samples go where the latency variance lives. Within each
// stratum an Algorithm-R reservoir keeps a uniform sample, so every
// retained trace carries a known inclusion probability
// π_h = kept_h/seen_h and the retained set supports weighted
// (Horvitz–Thompson) latency estimates with standard errors, not just
// anecdotes.
package reqtrace

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand/v2"
	"sort"
	"sync"
	"time"

	"simprof/internal/history"
	"simprof/internal/obs"
	"simprof/internal/sampling"
	"simprof/internal/stats"
)

// Engine instrumentation. The counters mirror internal tallies kept
// unconditionally; the vecs break admissions down by stratum.
var (
	obsCompleted = obs.NewCounter("reqtrace.completed",
		"completed request traces offered to the retention engine")
	obsRetainedVec = obs.NewCounterVec("reqtrace.retained",
		"traces admitted to the retained set", "route", "status_class", "latency_bucket")
	obsEvictedVec = obs.NewCounterVec("reqtrace.evicted",
		"traces evicted from the retained set (reservoir displacement, rebalance shrink, budget pressure)",
		"route", "status_class", "latency_bucket")
	obsForcedVec = obs.NewCounterVec("reqtrace.forced_keep",
		"traces kept unconditionally (error class or tail latency)", "route", "status_class", "latency_bucket")
	obsBudgetUtil = obs.NewGauge("reqtrace.budget_utilization",
		"retained traces / budget")
	obsPersistDropped = obs.NewCounter("reqtrace.persist_dropped",
		"retained traces not persisted because the persist queue was full")
)

// forcedClasses are the resilience classes that force retention: each
// such trace is evidence of a failure mode, never down-sampled.
var forcedClasses = map[string]bool{
	"internal":    true,
	"timeout":     true,
	"overload":    true,
	"unavailable": true,
}

// defaultBucketBoundsMS are the latency bucket upper bounds (ms). The
// top (overflow) bucket is the tail: traces landing there are
// force-kept.
var defaultBucketBoundsMS = []float64{5, 25, 100, 500}

// Config tunes the retention engine. The zero value is usable: every
// field has a default.
type Config struct {
	// Budget bounds the retained set (forced keeps included); default 256.
	Budget int
	// Ring bounds the most-recent completed-trace ring, kept regardless
	// of retention so "what just happened" is always answerable;
	// default 64.
	Ring int
	// BucketBoundsMS are the latency stratum bounds in milliseconds,
	// ascending. Latencies at or above the last bound fall in the tail
	// bucket and are force-kept. Default 5, 25, 100, 500.
	BucketBoundsMS []float64
	// Rebalance re-runs the Neyman allocation every this many
	// completions; default 64.
	Rebalance int
	// Seed drives the per-stratum reservoir RNGs; retention is a pure
	// function of (seed, completion sequence).
	Seed uint64
	// Now is the clock (injectable for deterministic tests); default
	// time.Now.
	Now func() time.Time
	// Store, when non-nil, receives every admitted trace as a durable
	// history record (asynchronously; a full queue drops and counts).
	Store *history.Store
	// PersistQueue bounds the async persist queue; default 256.
	PersistQueue int
}

func (c Config) withDefaults() Config {
	if c.Budget <= 0 {
		c.Budget = 256
	}
	if c.Ring <= 0 {
		c.Ring = 64
	}
	if len(c.BucketBoundsMS) == 0 {
		c.BucketBoundsMS = defaultBucketBoundsMS
	}
	if c.Rebalance <= 0 {
		c.Rebalance = 64
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.PersistQueue <= 0 {
		c.PersistQueue = 256
	}
	return c
}

// Trace is one completed request: identity, outcome, and the captured
// span tree (nil when span capture was off).
type Trace struct {
	Seq     uint64        `json:"seq"` // admission order, engine-assigned
	ID      string        `json:"id"`
	Route   string        `json:"route"`
	Tenant  string        `json:"tenant,omitempty"`
	Status  int           `json:"status"`
	Class   string        `json:"class"`
	Bytes   int64         `json:"bytes,omitempty"`
	Start   time.Time     `json:"start"`
	Latency time.Duration `json:"latency"`
	Forced  bool          `json:"forced"`
	Spans   *obs.Span     `json:"spans,omitempty"`
}

// LatencyMS returns the trace latency in float milliseconds.
func (t *Trace) LatencyMS() float64 { return float64(t.Latency) / float64(time.Millisecond) }

// stratumKey identifies one stratum of the completed-trace stream.
type stratumKey struct {
	route       string
	statusClass string
	bucket      string
}

func (k stratumKey) String() string {
	return k.route + "|" + k.statusClass + "|" + k.bucket
}

// stratum is the engine's per-stratum state. The forced and sampled
// sub-populations are tracked separately: forced keeps have π ≈ 1 by
// construction, the reservoir's π is kept/seen. Latency moments
// (Welford) accumulate over everything the stratum has seen — the
// engine observes the full population stream, so σ_h for the Neyman
// split is the population spread, not a sample estimate.
type stratum struct {
	key stratumKey
	rng *rand.Rand

	sampledSeen int64
	forcedSeen  int64
	kept        []*Trace // reservoir, admission order
	forced      []*Trace // forced keeps, admission order
	target      int      // current Neyman allocation

	mean, m2             float64 // Welford over sampled-seen latencies (ms)
	forcedMean, forcedM2 float64 // Welford over forced-seen latencies (ms)
}

func (st *stratum) sigma() float64 {
	if st.sampledSeen < 2 {
		return 0
	}
	return math.Sqrt(st.m2 / float64(st.sampledSeen))
}

// Active is an in-flight request being traced; Finish or Abort it.
type Active struct {
	id, route, tenant string
	start             time.Time
	col               *obs.Collector
}

// Engine is the retention engine. A nil engine is valid and free:
// Start/Finish/Stop no-op, which is the disabled request-tracing path.
type Engine struct {
	cfg Config

	mu          sync.Mutex
	seq         uint64
	completions int64
	strata      map[stratumKey]*stratum
	retained    int // total kept, forced included
	forcedKept  int
	evicted     int64
	recent      []*Trace // ring, newest at the end
	hist        latHist  // cumulative latency histogram, all completions

	persistCh      chan *history.Record
	persistDone    chan struct{}
	persistDropped int64 // guarded by mu
	stopOnce       sync.Once
}

// New builds an engine. Pass the result around as *Engine; nil means
// request tracing is off.
func New(cfg Config) *Engine {
	c := cfg.withDefaults()
	e := &Engine{
		cfg:    c,
		strata: map[stratumKey]*stratum{},
		hist:   newLatHist(),
	}
	if c.Store != nil {
		e.persistCh = make(chan *history.Record, c.PersistQueue)
		e.persistDone = make(chan struct{})
		go e.persistLoop()
	}
	return e
}

// Stop shuts the engine down: the persist queue is drained and the
// persister goroutine is gone when Stop returns. Idempotent; safe on a
// nil engine.
func (e *Engine) Stop() {
	if e == nil {
		return
	}
	e.stopOnce.Do(func() {
		if e.persistCh != nil {
			close(e.persistCh)
			<-e.persistDone
		}
	})
}

// Start begins tracing one request: it attaches a span collector to the
// calling goroutine (when telemetry is enabled) so the pipeline's
// ordinary StartSpan calls land in this request's tree. The returned
// handle must be Finished (or Aborted) on the same goroutine chain.
// A nil engine returns nil, and a nil Active no-ops — the disabled path
// is two nil checks and nothing else.
func (e *Engine) Start(id, route, tenant string) *Active {
	if e == nil {
		return nil
	}
	return &Active{
		id: id, route: route, tenant: tenant,
		start: e.cfg.Now(),
		col:   obs.AttachCollector("request " + id),
	}
}

// Finish completes the request: the span collector detaches and the
// trace enters retention. latency is the caller's measured duration
// (the same number its metrics report); the engine's clock only stamps
// start times.
func (e *Engine) Finish(a *Active, status int, class string, bytes int64, latency time.Duration) {
	if e == nil || a == nil {
		return
	}
	t := &Trace{
		ID:      a.id,
		Route:   a.route,
		Tenant:  a.tenant,
		Status:  status,
		Class:   class,
		Bytes:   bytes,
		Start:   a.start,
		Latency: latency,
		Spans:   a.col.Detach(),
	}
	e.complete(t)
}

// Abort discards an in-flight trace (request rejected before it meant
// anything), detaching the collector without feeding retention.
func (e *Engine) Abort(a *Active) {
	if e == nil || a == nil {
		return
	}
	a.col.Detach()
}

// statusClassOf buckets an HTTP status.
func statusClassOf(status int) string {
	switch {
	case status >= 500:
		return "5xx"
	case status >= 400:
		return "4xx"
	case status >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

// bucketOf maps a latency to its stratum bucket label. The labels spell
// the bounds out so the strata are self-describing in metrics and API
// responses.
func (e *Engine) bucketOf(latency time.Duration) (label string, tail bool) {
	ms := float64(latency) / float64(time.Millisecond)
	bounds := e.cfg.BucketBoundsMS
	for i, b := range bounds {
		if ms < b {
			if i == 0 {
				return fmt.Sprintf("<%gms", b), false
			}
			return fmt.Sprintf("%g-%gms", bounds[i-1], b), false
		}
	}
	return fmt.Sprintf(">=%gms", bounds[len(bounds)-1]), true
}

// isForced reports whether a trace bypasses sampling: server-fault
// status, a failure-mode resilience class, or tail latency.
func (e *Engine) isForced(t *Trace) bool {
	if t.Status >= 500 || forcedClasses[t.Class] {
		return true
	}
	_, tail := e.bucketOf(t.Latency)
	return tail
}

// complete runs retention for one finished trace.
func (e *Engine) complete(t *Trace) {
	obsCompleted.Inc()

	e.mu.Lock()
	defer e.mu.Unlock()

	e.seq++
	t.Seq = e.seq
	e.completions++
	e.hist.observe(t.LatencyMS())

	// Recent ring first: the ring holds what just happened regardless of
	// what retention decides.
	if len(e.recent) == e.cfg.Ring {
		copy(e.recent, e.recent[1:])
		e.recent[len(e.recent)-1] = t
	} else {
		e.recent = append(e.recent, t)
	}

	bucket, _ := e.bucketOf(t.Latency)
	key := stratumKey{route: t.Route, statusClass: statusClassOf(t.Status), bucket: bucket}
	st := e.strata[key]
	if st == nil {
		h := fnv.New64a()
		h.Write([]byte(key.String()))
		st = &stratum{
			key: key,
			rng: stats.NewRNG(stats.SplitSeed(e.cfg.Seed, h.Sum64())),
			// A brand-new stratum admits its first traces immediately
			// instead of waiting for the next rebalance to grant it a
			// target; the rebalance then trims to the Neyman share.
			target: 1,
		}
		e.strata[key] = st
	}

	t.Forced = e.isForced(t)
	if t.Forced {
		st.forcedSeen++
		st.forcedMean, st.forcedM2 = welford(st.forcedMean, st.forcedM2, st.forcedSeen, t.LatencyMS())
		st.forced = append(st.forced, t)
		e.retained++
		e.forcedKept++
		obsForcedVec.With(key.route, key.statusClass, key.bucket).Inc()
		obsRetainedVec.With(key.route, key.statusClass, key.bucket).Inc()
		e.persistLocked(t, st)
	} else {
		st.sampledSeen++
		st.mean, st.m2 = welford(st.mean, st.m2, st.sampledSeen, t.LatencyMS())
		switch {
		case len(st.kept) < st.target:
			st.kept = append(st.kept, t)
			e.retained++
			obsRetainedVec.With(key.route, key.statusClass, key.bucket).Inc()
			e.persistLocked(t, st)
		case st.target > 0:
			// Algorithm R: the i-th sampled arrival displaces a uniform
			// reservoir slot with probability target/i.
			if j := st.rng.IntN(int(st.sampledSeen)); j < len(st.kept) {
				st.kept[j] = t
				e.evicted++
				obsEvictedVec.With(key.route, key.statusClass, key.bucket).Inc()
				obsRetainedVec.With(key.route, key.statusClass, key.bucket).Inc()
				e.persistLocked(t, st)
			}
		}
	}

	if e.completions%int64(e.cfg.Rebalance) == 0 {
		e.rebalanceLocked()
	}
	e.enforceBudgetLocked()
	obsBudgetUtil.Set(float64(e.retained) / float64(e.cfg.Budget))
}

// welford folds one observation into running (mean, M2) aggregates.
func welford(mean, m2 float64, n int64, x float64) (float64, float64) {
	d := x - mean
	mean += d / float64(n)
	m2 += d * (x - mean)
	return mean, m2
}

// sortedStrata returns the strata in deterministic key order; every
// loop that mutates state iterates this way so retention is replayable.
func (e *Engine) sortedStrata() []*stratum {
	out := make([]*stratum, 0, len(e.strata))
	for _, st := range e.strata {
		out = append(out, st)
	}
	sort.Slice(out, func(a, b int) bool {
		ka, kb := out[a].key, out[b].key
		if ka.route != kb.route {
			return ka.route < kb.route
		}
		if ka.statusClass != kb.statusClass {
			return ka.statusClass < kb.statusClass
		}
		return ka.bucket < kb.bucket
	})
	return out
}

// rebalanceLocked recomputes the per-stratum reservoir targets: the
// budget left after forced keeps is split across the sampled
// sub-populations by Neyman allocation (n_h ∝ N_h·σ_h, capacity-capped
// at what each stratum has actually seen), then over-target reservoirs
// shrink. σ_h is the population spread of the stratum's observed
// latencies; when no stratum has measurable spread yet the split
// degrades to proportional (σ ≡ 1).
func (e *Engine) rebalanceLocked() {
	strata := e.sortedStrata()
	var active []*stratum
	for _, st := range strata {
		if st.sampledSeen > 0 {
			active = append(active, st)
		}
	}
	if len(active) == 0 {
		return
	}
	n := e.cfg.Budget - e.forcedKept
	if n < 0 {
		n = 0
	}
	Nh := make([]int, len(active))
	sigma := make([]float64, len(active))
	anySpread := false
	for i, st := range active {
		Nh[i] = int(st.sampledSeen)
		sigma[i] = st.sigma()
		if sigma[i] > 0 {
			anySpread = true
		}
	}
	if !anySpread {
		for i := range sigma {
			sigma[i] = 1
		}
	}
	alloc, err := sampling.NeymanAllocationCapacity(Nh, Nh, sigma, n)
	if err != nil {
		return // inputs are constructed valid; defensive only
	}
	for i, st := range active {
		st.target = alloc[i]
		for len(st.kept) > st.target {
			// Shrink newest-first: the oldest reservoir entries carry the
			// longest-surviving uniform history.
			st.kept = st.kept[:len(st.kept)-1]
			e.retained--
			e.evicted++
			obsEvictedVec.With(st.key.route, st.key.statusClass, st.key.bucket).Inc()
		}
	}
}

// enforceBudgetLocked guarantees retained ≤ budget between rebalances
// (forced keeps arrive unbounded). Sampled reservoirs shed first, the
// stratum with the largest reservoir each step; if the whole overage is
// forced, the globally oldest forced trace goes — memory stays bounded
// through a failure storm and the forced π honestly drops below 1.
func (e *Engine) enforceBudgetLocked() {
	for e.retained > e.cfg.Budget {
		var victim *stratum
		for _, st := range e.sortedStrata() {
			if len(st.kept) > 0 && (victim == nil || len(st.kept) > len(victim.kept)) {
				victim = st
			}
		}
		if victim != nil {
			victim.kept = victim.kept[:len(victim.kept)-1]
			if victim.target > len(victim.kept) {
				victim.target = len(victim.kept)
			}
			e.retained--
			e.evicted++
			obsEvictedVec.With(victim.key.route, victim.key.statusClass, victim.key.bucket).Inc()
			continue
		}
		// Only forced traces remain: evict the oldest.
		var oldest *stratum
		for _, st := range e.sortedStrata() {
			if len(st.forced) > 0 && (oldest == nil || st.forced[0].Seq < oldest.forced[0].Seq) {
				oldest = st
			}
		}
		if oldest == nil {
			return // unreachable: retained > 0 implies a non-empty list
		}
		oldest.forced = oldest.forced[1:]
		e.retained--
		e.forcedKept--
		e.evicted++
		obsEvictedVec.With(oldest.key.route, oldest.key.statusClass, oldest.key.bucket).Inc()
	}
}
