package reqtrace

import (
	"fmt"
	"math"
	"sort"
	"testing"
	"time"

	"simprof/internal/stats"
)

// steppedClock is the deterministic time source every engine test uses.
type steppedClock struct{ t time.Time }

func newSteppedClock() *steppedClock {
	return &steppedClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *steppedClock) now() time.Time {
	c.t = c.t.Add(time.Millisecond)
	return c.t
}

// finish drives one trace through the engine without HTTP machinery.
func finish(e *Engine, id, route string, status int, class string, latency time.Duration) {
	a := e.Start(id, route, "default")
	e.Finish(a, status, class, 0, latency)
}

func TestNilEngineNoOps(t *testing.T) {
	var e *Engine
	a := e.Start("id", "/v1/profile", "default")
	if a != nil {
		t.Fatalf("nil engine Start = %+v, want nil", a)
	}
	e.Finish(a, 200, "ok", 0, time.Millisecond)
	e.Abort(a)
	e.Stop()
	if s := e.Status(); s.Budget != 0 || s.Completed != 0 {
		t.Fatalf("nil engine Status = %+v", s)
	}
	if l := e.List(ListOptions{}); l != nil {
		t.Fatalf("nil engine List = %v", l)
	}
	if g := e.Get("id"); g != nil {
		t.Fatalf("nil engine Get = %v", g)
	}
}

func TestForcedKeepRules(t *testing.T) {
	clk := newSteppedClock()
	e := New(Config{Budget: 100, Now: clk.now, Seed: 1})
	defer e.Stop()

	finish(e, "ok", "/v1/profile", 200, "ok", 10*time.Millisecond)
	finish(e, "err500", "/v1/profile", 500, "internal", 10*time.Millisecond)
	finish(e, "timeout", "/v1/profile", 504, "timeout", 10*time.Millisecond)
	finish(e, "overload", "/v1/profile", 429, "overload", time.Millisecond)
	finish(e, "tail", "/v1/profile", 200, "ok", 800*time.Millisecond)
	finish(e, "badinput", "/v1/profile", 400, "bad_input", time.Millisecond)

	s := e.Status()
	if s.ForcedRetained != 4 {
		t.Fatalf("forced retained = %d, want 4 (500, timeout, overload, tail): %+v", s.ForcedRetained, s.Strata)
	}
	for _, id := range []string{"err500", "timeout", "overload", "tail"} {
		tr := e.Get(id)
		if tr == nil || !tr.Forced {
			t.Fatalf("trace %s not force-kept: %+v", id, tr)
		}
	}
	if tr := e.Get("badinput"); tr != nil && tr.Forced {
		t.Fatal("4xx bad_input must not be force-kept")
	}
}

func TestStratification(t *testing.T) {
	clk := newSteppedClock()
	e := New(Config{Budget: 1000, Now: clk.now, Seed: 2})
	defer e.Stop()

	finish(e, "a", "/v1/profile", 200, "ok", 2*time.Millisecond)   // <5ms
	finish(e, "b", "/v1/profile", 200, "ok", 10*time.Millisecond)  // 5-25ms
	finish(e, "c", "/v1/profile", 200, "ok", 50*time.Millisecond)  // 25-100ms
	finish(e, "d", "/v1/profile", 200, "ok", 200*time.Millisecond) // 100-500ms
	finish(e, "e", "/v1/history", 200, "ok", 2*time.Millisecond)
	finish(e, "f", "/v1/profile", 400, "bad_input", 2*time.Millisecond)

	s := e.Status()
	if len(s.Strata) != 6 {
		t.Fatalf("strata = %d, want 6:\n%+v", len(s.Strata), s.Strata)
	}
	want := map[string]bool{
		"/v1/profile|2xx|<5ms":      true,
		"/v1/profile|2xx|5-25ms":    true,
		"/v1/profile|2xx|25-100ms":  true,
		"/v1/profile|2xx|100-500ms": true,
		"/v1/history|2xx|<5ms":      true,
		"/v1/profile|4xx|<5ms":      true,
	}
	for _, row := range s.Strata {
		k := row.Route + "|" + row.StatusClass + "|" + row.LatencyBucket
		if !want[k] {
			t.Fatalf("unexpected stratum %q", k)
		}
		if row.Seen != 1 || row.Kept+row.ForcedKept != 1 {
			t.Fatalf("stratum %q: seen=%d kept=%d forced=%d, want 1/1", k, row.Seen, row.Kept, row.ForcedKept)
		}
		if row.InclusionP != 1 && row.ForcedInclusionP != 1 {
			t.Fatalf("stratum %q: inclusion probabilities %v/%v, want 1", k, row.InclusionP, row.ForcedInclusionP)
		}
	}
}

func TestBudgetNeverExceeded(t *testing.T) {
	clk := newSteppedClock()
	const budget = 50
	e := New(Config{Budget: budget, Rebalance: 16, Now: clk.now, Seed: 3})
	defer e.Stop()

	rng := stats.NewRNG(99)
	for i := 0; i < 5000; i++ {
		lat := time.Duration(1+rng.IntN(400)) * time.Millisecond
		status, class := 200, "ok"
		if i%17 == 0 {
			status, class = 500, "internal" // steady forced stream
		}
		finish(e, fmt.Sprintf("r%d", i), "/v1/profile", status, class, lat)
		if s := e.Status(); s.Retained > budget {
			t.Fatalf("after %d completions: retained %d > budget %d", i+1, s.Retained, budget)
		}
	}
	s := e.Status()
	if s.Retained == 0 || s.Completed != 5000 {
		t.Fatalf("final status: %+v", s)
	}
	if s.BudgetUtilization > 1 {
		t.Fatalf("budget utilization %v > 1", s.BudgetUtilization)
	}
}

func TestInclusionProbabilitiesConsistent(t *testing.T) {
	clk := newSteppedClock()
	e := New(Config{Budget: 64, Rebalance: 32, Now: clk.now, Seed: 4})
	defer e.Stop()

	rng := stats.NewRNG(7)
	for i := 0; i < 2000; i++ {
		lat := time.Duration(1+rng.IntN(90)) * time.Millisecond
		finish(e, fmt.Sprintf("r%d", i), "/v1/profile", 200, "ok", lat)
	}
	s := e.Status()
	for _, row := range s.Strata {
		sampledSeen := row.Seen - row.ForcedSeen
		if sampledSeen > 0 {
			wantPi := float64(row.Kept) / float64(sampledSeen)
			if math.Abs(row.InclusionP-wantPi) > 1e-12 {
				t.Fatalf("stratum %s/%s/%s: π=%v, want kept/seen=%v",
					row.Route, row.StatusClass, row.LatencyBucket, row.InclusionP, wantPi)
			}
			if row.InclusionP <= 0 || row.InclusionP > 1 {
				t.Fatalf("π out of range: %v", row.InclusionP)
			}
		}
	}
	// Weights in listings are 1/π of the trace's stratum.
	for _, sum := range e.List(ListOptions{}) {
		if sum.Weight < 1 {
			t.Fatalf("trace %s weight %v < 1", sum.ID, sum.Weight)
		}
	}
}

func TestDeterministicRetentionUnderSteppedClock(t *testing.T) {
	run := func() []Summary {
		clk := newSteppedClock()
		e := New(Config{Budget: 40, Rebalance: 16, Now: clk.now, Seed: 42})
		defer e.Stop()
		rng := stats.NewRNG(5)
		for i := 0; i < 3000; i++ {
			lat := time.Duration(1+rng.IntN(600)) * time.Millisecond
			status, class := 200, "ok"
			switch i % 31 {
			case 7:
				status, class = 500, "internal"
			case 13:
				status, class = 429, "overload"
			}
			finish(e, fmt.Sprintf("r%d", i), "/v1/profile", status, class, lat)
		}
		return e.List(ListOptions{})
	}
	a, b := run(), run()
	if len(a) == 0 || len(a) != len(b) {
		t.Fatalf("runs retained %d vs %d traces", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("retention diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestListFilters(t *testing.T) {
	clk := newSteppedClock()
	e := New(Config{Budget: 100, Now: clk.now, Seed: 6})
	defer e.Stop()

	finish(e, "a", "/v1/profile", 200, "ok", 2*time.Millisecond)
	finish(e, "b", "/v1/profile", 500, "internal", 2*time.Millisecond)
	finish(e, "c", "/v1/history", 200, "ok", 50*time.Millisecond)

	if l := e.List(ListOptions{Route: "/v1/history"}); len(l) != 1 || l[0].ID != "c" {
		t.Fatalf("route filter: %+v", l)
	}
	if l := e.List(ListOptions{StatusClass: "5xx"}); len(l) != 1 || l[0].ID != "b" {
		t.Fatalf("status filter: %+v", l)
	}
	if l := e.List(ListOptions{LatencyBucket: "25-100ms"}); len(l) != 1 || l[0].ID != "c" {
		t.Fatalf("bucket filter: %+v", l)
	}
	if l := e.List(ListOptions{Limit: 2}); len(l) != 2 || l[0].ID != "b" || l[1].ID != "c" {
		t.Fatalf("limit keeps newest: %+v", l)
	}
	if l := e.List(ListOptions{Recent: true}); len(l) != 3 {
		t.Fatalf("recent ring: %+v", l)
	}
}

func TestRecentRingBounded(t *testing.T) {
	clk := newSteppedClock()
	e := New(Config{Budget: 4, Ring: 8, Now: clk.now, Seed: 7})
	defer e.Stop()
	for i := 0; i < 100; i++ {
		finish(e, fmt.Sprintf("r%d", i), "/v1/profile", 200, "ok", time.Millisecond)
	}
	l := e.List(ListOptions{Recent: true})
	if len(l) != 8 {
		t.Fatalf("ring holds %d, want 8", len(l))
	}
	if l[len(l)-1].ID != "r99" || l[0].ID != "r92" {
		t.Fatalf("ring window wrong: first=%s last=%s", l[0].ID, l[len(l)-1].ID)
	}
}

// TestWeightedEstimateAgreesWithHistogram is the acceptance-criteria
// integration test: a lognormal latency population flows through a
// small budget, and the weighted p99 reconstructed from the retained
// sample must agree with the cumulative histogram's p99 within the
// reported uncertainty (the estimate's SE plus the histogram's own
// bucket resolution at p99 — the histogram answer is interpolated, so
// exact agreement below its resolution is not meaningful).
func TestWeightedEstimateAgreesWithHistogram(t *testing.T) {
	clk := newSteppedClock()
	const n = 20000
	e := New(Config{
		Budget: 1000, Rebalance: 64, Seed: 11, Now: clk.now,
		// Tail cut at 250ms: the p99 region of this population (~350ms)
		// is force-kept, exactly the operator-relevant regime.
		BucketBoundsMS: []float64{5, 25, 100, 250},
	})
	defer e.Stop()

	rng := stats.NewRNG(1234)
	var exact []float64
	for i := 0; i < n; i++ {
		ms := stats.LogNormal(rng, 80, 0.9)
		exact = append(exact, ms)
		finish(e, fmt.Sprintf("r%d", i), "/v1/profile", 200, "ok", time.Duration(ms*float64(time.Millisecond)))
	}

	s := e.Status()
	if s.Retained > 1000 {
		t.Fatalf("retained %d > budget", s.Retained)
	}
	est := s.Estimate
	if est == nil {
		t.Fatal("no estimate")
	}
	if est.N != n {
		t.Fatalf("population N = %d, want %d", est.N, n)
	}

	var p99 QuantileEstimate
	for _, q := range est.Quantiles {
		if q.Q == 0.99 {
			p99 = q
		}
	}
	if p99.ValueMS == 0 || p99.SEMS <= 0 {
		t.Fatalf("p99 estimate missing or without SE: %+v", est.Quantiles)
	}

	tol := p99.SEMS + est.HistP99ResolutionMS
	if diff := math.Abs(p99.ValueMS - est.HistP99MS); diff > tol {
		t.Fatalf("weighted p99 %.2fms vs histogram p99 %.2fms: |Δ|=%.2f > SE+resolution=%.2f",
			p99.ValueMS, est.HistP99MS, diff, tol)
	}

	// And against the exact order statistic, within the same tolerance:
	// the histogram could in principle be wrong the same way the
	// estimate is.
	sort.Float64s(exact)
	exactP99 := exact[int(0.99*float64(n))]
	if diff := math.Abs(p99.ValueMS - exactP99); diff > tol {
		t.Fatalf("weighted p99 %.2fms vs exact %.2fms: |Δ|=%.2f > %.2f", p99.ValueMS, exactP99, diff, tol)
	}

	// The weighted mean should land near the true mean too (a few SEs;
	// the SE is an estimate itself, so give it 4).
	var sum float64
	for _, v := range exact {
		sum += v
	}
	trueMean := sum / float64(n)
	if diff := math.Abs(est.MeanMS - trueMean); diff > 4*est.MeanSEMS+1 {
		t.Fatalf("weighted mean %.2f vs true %.2f: |Δ|=%.2f > 4·SE=%.2f",
			est.MeanMS, trueMean, diff, 4*est.MeanSEMS)
	}
}
