package obs

import (
	"sync"
	"time"
)

// Span is one timed region of a run. Spans form a tree: the CLI opens a
// root with StartRun, pipeline stages open children with StartSpan and
// close them with End. Durations come from the monotonic clock; the
// tree structure follows the driver's stage order, which is
// deterministic because stages open and close sequentially (metrics,
// not spans, are used inside parallel loops).
type Span struct {
	Name string `json:"name"`
	// StartNS is the span's start offset from the root start, DurNS its
	// monotonic duration, both in nanoseconds.
	StartNS  int64   `json:"start_ns"`
	DurNS    int64   `json:"dur_ns"`
	Children []*Span `json:"children,omitempty"`

	parent *Span
	start  time.Time
}

// Duration returns the span's measured duration.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.DurNS)
}

// SelfDuration returns the span's duration minus its children's — the
// time spent in the stage itself.
func (s *Span) SelfDuration() time.Duration {
	if s == nil {
		return 0
	}
	d := s.DurNS
	for _, c := range s.Children {
		d -= c.DurNS
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// Walk visits the span and every descendant depth-first, passing each
// node's depth (0 for the receiver).
func (s *Span) Walk(fn func(sp *Span, depth int)) {
	if s == nil {
		return
	}
	var rec func(sp *Span, depth int)
	rec = func(sp *Span, depth int) {
		fn(sp, depth)
		for _, c := range sp.Children {
			rec(c, depth+1)
		}
	}
	rec(s, 0)
}

// spanState is the process-wide span collector: one tree per run, with
// a "current" cursor that StartSpan attaches to and End pops.
var spanState struct {
	mu      sync.Mutex
	root    *Span
	current *Span
	t0      time.Time
}

// StartRun resets the span tree and opens a new root span. It returns
// nil (and collects nothing) while telemetry is disabled.
func StartRun(name string) *Span {
	if !enabled.Load() {
		return nil
	}
	spanState.mu.Lock()
	defer spanState.mu.Unlock()
	now := time.Now()
	root := &Span{Name: name, start: now}
	spanState.root = root
	spanState.current = root
	spanState.t0 = now
	return root
}

// StartSpan opens a child of the current span and makes it current.
// Disabled telemetry (or no active run) returns nil; nil spans no-op on
// End, so call sites need no guards.
func StartSpan(name string) *Span {
	if !enabled.Load() {
		return nil
	}
	spanState.mu.Lock()
	defer spanState.mu.Unlock()
	if spanState.current == nil {
		return nil
	}
	now := time.Now()
	s := &Span{
		Name:    name,
		StartNS: now.Sub(spanState.t0).Nanoseconds(),
		parent:  spanState.current,
		start:   now,
	}
	spanState.current.Children = append(spanState.current.Children, s)
	spanState.current = s
	return s
}

// End closes the span, recording its monotonic duration. If the span is
// the current one, the cursor pops back to its parent; ending out of
// order just records the duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	spanState.mu.Lock()
	defer spanState.mu.Unlock()
	s.DurNS = time.Since(s.start).Nanoseconds()
	if spanState.current == s {
		spanState.current = s.parent
	}
}

// SpanTree returns the current run's root span, or nil if no run was
// started. The returned tree is live; call after the root's End.
func SpanTree() *Span {
	spanState.mu.Lock()
	defer spanState.mu.Unlock()
	return spanState.root
}

// Timer marks a start time for histogram-recorded durations. The zero
// Timer (returned while telemetry is disabled) records nothing, so the
// disabled path performs no clock reads and no allocations.
type Timer struct{ t time.Time }

// StartTimer returns a running timer, or the zero Timer when disabled.
func StartTimer() Timer {
	if !enabled.Load() {
		return Timer{}
	}
	return Timer{t: time.Now()}
}

// ObserveTimer records the elapsed seconds since t started. Zero timers
// and nil histograms no-op.
func (h *Histogram) ObserveTimer(t Timer) {
	if h == nil || t.t.IsZero() {
		return
	}
	h.Observe(time.Since(t.t).Seconds())
}
