package obs

import (
	"runtime"
	"sort"
	"sync"
	"time"
)

// Span is one timed region of a run. Spans form a tree: the CLI opens a
// root with StartRun, pipeline stages open children with StartSpan and
// close them with End. Durations come from the monotonic clock; the
// tree structure follows the driver's stage order, which is
// deterministic because stages open and close sequentially (timer
// samples, not spans, carry the concurrent work inside parallel loops).
type Span struct {
	Name string `json:"name"`
	// StartNS is the span's start offset from the root start, DurNS its
	// monotonic duration, both in nanoseconds.
	StartNS  int64   `json:"start_ns"`
	DurNS    int64   `json:"dur_ns"`
	Children []*Span `json:"children,omitempty"`
	// GID is the id of the goroutine that opened the span, so trace
	// viewers can lane spans by executor (0 in pre-v2 manifests).
	GID int64 `json:"gid,omitempty"`
	// Attrs are key=value annotations set with SetAttr (batch sizes,
	// queue waits, cache verdicts). Maps serialize with sorted keys, so
	// attributed spans stay deterministic in manifests and diffs.
	Attrs map[string]string `json:"attrs,omitempty"`

	parent *Span
	start  time.Time
	// col is set when the span belongs to a request-scoped Collector
	// instead of the global run tree; End routes accordingly.
	col *Collector
}

// curGID returns the running goroutine's id by parsing the
// "goroutine N [...]" header of its stack dump. Only called on enabled
// telemetry paths; the cost is a single-goroutine stack header write.
func curGID() int64 {
	var buf [32]byte
	n := runtime.Stack(buf[:], false)
	const prefix = len("goroutine ")
	var id int64
	for _, c := range buf[prefix:n] {
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + int64(c-'0')
	}
	return id
}

// Duration returns the span's measured duration.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return time.Duration(s.DurNS)
}

// SelfDuration returns the span's duration minus its children's — the
// time spent in the stage itself.
func (s *Span) SelfDuration() time.Duration {
	if s == nil {
		return 0
	}
	d := s.DurNS
	for _, c := range s.Children {
		d -= c.DurNS
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}

// Walk visits the span and every descendant depth-first, passing each
// node's depth (0 for the receiver).
func (s *Span) Walk(fn func(sp *Span, depth int)) {
	if s == nil {
		return
	}
	var rec func(sp *Span, depth int)
	rec = func(sp *Span, depth int) {
		fn(sp, depth)
		for _, c := range sp.Children {
			rec(c, depth+1)
		}
	}
	rec(s, 0)
}

// spanState is the process-wide span collector: one tree per run, with
// a "current" cursor that StartSpan attaches to and End pops, plus the
// run's concurrent timer samples.
var spanState struct {
	mu             sync.Mutex
	root           *Span
	current        *Span
	t0             time.Time
	samples        []TimerSample
	samplesDropped int64
}

// StartRun resets the span tree (and the timer-sample buffer) and opens
// a new root span. It returns nil (and collects nothing) while
// telemetry is disabled.
func StartRun(name string) *Span {
	if !enabled.Load() {
		return nil
	}
	gid := curGID()
	spanState.mu.Lock()
	defer spanState.mu.Unlock()
	now := time.Now()
	root := &Span{Name: name, GID: gid, start: now}
	spanState.root = root
	spanState.current = root
	spanState.t0 = now
	spanState.samples = nil
	spanState.samplesDropped = 0
	return root
}

// StartSpan opens a child of the current span and makes it current.
// Disabled telemetry (or no active run) returns nil; nil spans no-op on
// End, so call sites need no guards. If the calling goroutine has a
// request-scoped Collector attached, the span lands in that tree
// instead of the global run.
func StartSpan(name string) *Span {
	if !enabled.Load() {
		return nil
	}
	gid := curGID()
	if collectors.n.Load() != 0 {
		if c := collectorFor(gid); c != nil {
			return c.startSpan(name, gid)
		}
	}
	spanState.mu.Lock()
	defer spanState.mu.Unlock()
	if spanState.current == nil {
		return nil
	}
	now := time.Now()
	s := &Span{
		Name:    name,
		StartNS: now.Sub(spanState.t0).Nanoseconds(),
		GID:     gid,
		parent:  spanState.current,
		start:   now,
	}
	spanState.current.Children = append(spanState.current.Children, s)
	spanState.current = s
	return s
}

// End closes the span, recording its monotonic duration. If the span is
// the current one, the cursor pops back to its parent; ending out of
// order just records the duration.
func (s *Span) End() {
	if s == nil {
		return
	}
	if s.col != nil {
		s.col.end(s)
		return
	}
	spanState.mu.Lock()
	defer spanState.mu.Unlock()
	s.DurNS = time.Since(s.start).Nanoseconds()
	if spanState.current == s {
		spanState.current = s.parent
	}
}

// SetAttr annotates the span with a key=value attribute, shown by
// inspect and carried into manifests and trace exports. Nil spans (the
// disabled path) no-op. Attributes take the span's owning lock, so
// SetAttr is safe from the goroutine that opened the span even while
// other goroutines snapshot the tree.
func (s *Span) SetAttr(key, value string) {
	if s == nil {
		return
	}
	if s.col != nil {
		s.col.mu.Lock()
		defer s.col.mu.Unlock()
	} else {
		spanState.mu.Lock()
		defer spanState.mu.Unlock()
	}
	if s.Attrs == nil {
		s.Attrs = make(map[string]string)
	}
	s.Attrs[key] = value
}

// SpanTree returns the current run's root span, or nil if no run was
// started. The returned tree is live; call after the root's End.
func SpanTree() *Span {
	spanState.mu.Lock()
	defer spanState.mu.Unlock()
	return spanState.root
}

// Timer marks a start time for histogram-recorded durations. The zero
// Timer (returned while telemetry is disabled) records nothing, so the
// disabled path performs no clock reads and no allocations.
type Timer struct{ t time.Time }

// StartTimer returns a running timer, or the zero Timer when disabled.
func StartTimer() Timer {
	if !enabled.Load() {
		return Timer{}
	}
	return Timer{t: time.Now()}
}

// TimerSample is one concurrent timed interval captured by ObserveTimer
// while a run was active: which histogram it fed, which goroutine ran
// it, and when it ran relative to the run's root span. Samples are the
// parallel-pool complement of the sequential span tree — trace export
// lanes them by GID next to the driver's stages.
type TimerSample struct {
	Name    string `json:"name"`
	GID     int64  `json:"gid"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
}

// maxTimerSamples bounds the per-run sample buffer so a hot loop cannot
// grow telemetry state without limit; overflow is counted, not stored.
const maxTimerSamples = 8192

// ObserveTimer records the elapsed seconds since t started. Zero timers
// and nil histograms no-op. While a run is active the interval is also
// captured as a TimerSample for trace export.
func (h *Histogram) ObserveTimer(t Timer) {
	if h == nil || t.t.IsZero() {
		return
	}
	d := time.Since(t.t)
	h.Observe(d.Seconds())
	recordTimerSample(h.name, t.t, d)
}

// recordTimerSample appends one sample to the active run's buffer.
// Concurrent callers interleave nondeterministically; TimerSamples
// sorts before returning so serialized output is stable up to the
// measured times themselves.
func recordTimerSample(name string, start time.Time, d time.Duration) {
	if !enabled.Load() {
		return
	}
	gid := curGID()
	spanState.mu.Lock()
	defer spanState.mu.Unlock()
	if spanState.root == nil {
		return
	}
	if len(spanState.samples) >= maxTimerSamples {
		spanState.samplesDropped++
		return
	}
	spanState.samples = append(spanState.samples, TimerSample{
		Name:    name,
		GID:     gid,
		StartNS: start.Sub(spanState.t0).Nanoseconds(),
		DurNS:   d.Nanoseconds(),
	})
}

// TimerSamples returns the active run's captured samples sorted by
// (start, name, gid), plus the count dropped to the buffer bound.
func TimerSamples() ([]TimerSample, int64) {
	spanState.mu.Lock()
	out := append([]TimerSample(nil), spanState.samples...)
	dropped := spanState.samplesDropped
	spanState.mu.Unlock()
	sort.Slice(out, func(a, b int) bool {
		if out[a].StartNS != out[b].StartNS {
			return out[a].StartNS < out[b].StartNS
		}
		if out[a].Name != out[b].Name {
			return out[a].Name < out[b].Name
		}
		return out[a].GID < out[b].GID
	})
	return out, dropped
}
