package obs

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"
)

// Runtime collector: a ticker-driven goroutine sampling the Go runtime
// into gauges, so a scrape of /metrics sees heap pressure, GC pauses,
// goroutine counts and scheduler latency next to the request metrics.
// Sampling uses runtime/metrics (cheap, no stop-the-world) and the
// usual obs discipline applies: gauges only record while telemetry is
// enabled, and the collector's goroutine shuts down cleanly — the
// chaos harness's leak check covers it.

var (
	rtGoroutines = NewGauge("runtime.goroutines",
		"live goroutines at the last runtime sample")
	rtHeapBytes = NewGauge("runtime.heap_bytes",
		"bytes of live heap objects at the last runtime sample")
	rtGCCycles = NewGauge("runtime.gc_cycles",
		"completed GC cycles since process start")
	rtGCPauseP99 = NewGauge("runtime.gc_pause_p99_seconds",
		"p99 GC stop-the-world pause since process start")
	rtSchedLatP99 = NewGauge("runtime.sched_latency_p99_seconds",
		"p99 goroutine scheduling latency since process start")
)

// runtimeSampleNames is the fixed sample set read each tick.
var runtimeSampleNames = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/gc/cycles/total:gc-cycles",
	"/gc/pauses:seconds",
	"/sched/latencies:seconds",
}

// SampleRuntime reads the runtime metric set once into the gauges. The
// collector calls it on every tick; tests and one-shot tools may call
// it directly.
func SampleRuntime() {
	samples := make([]metrics.Sample, len(runtimeSampleNames))
	for i, n := range runtimeSampleNames {
		samples[i].Name = n
	}
	metrics.Read(samples)
	for _, s := range samples {
		switch s.Value.Kind() {
		case metrics.KindUint64:
			v := float64(s.Value.Uint64())
			switch s.Name {
			case "/sched/goroutines:goroutines":
				rtGoroutines.Set(v)
			case "/memory/classes/heap/objects:bytes":
				rtHeapBytes.Set(v)
			case "/gc/cycles/total:gc-cycles":
				rtGCCycles.Set(v)
			}
		case metrics.KindFloat64Histogram:
			p99 := runtimeHistQuantile(s.Value.Float64Histogram(), 0.99)
			switch s.Name {
			case "/gc/pauses:seconds":
				rtGCPauseP99.Set(p99)
			case "/sched/latencies:seconds":
				rtSchedLatP99.Set(p99)
			}
		}
	}
}

// runtimeHistQuantile estimates a quantile of a runtime
// Float64Histogram by scanning its bucket counts; the answer is the
// upper edge of the containing bucket (0 for an empty histogram, the
// last finite edge for ranks landing in a +Inf bucket).
func runtimeHistQuantile(h *metrics.Float64Histogram, p float64) float64 {
	if h == nil {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(math.Ceil(p * float64(total)))
	var cum uint64
	lastFinite := 0.0
	for i, c := range h.Counts {
		cum += c
		hi := h.Buckets[i+1]
		if !math.IsInf(hi, 1) {
			lastFinite = hi
		}
		if cum >= rank {
			if math.IsInf(hi, 1) {
				return lastFinite
			}
			return hi
		}
	}
	return lastFinite
}

// StartRuntimeCollector samples the runtime every interval until the
// returned stop function is called. Stop blocks until the collector
// goroutine has exited (so goroutine-leak checks see a clean shutdown)
// and is safe to call more than once. A non-positive interval disables
// collection and returns a no-op stop.
func StartRuntimeCollector(interval time.Duration) (stop func()) {
	if interval <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	exited := make(chan struct{})
	go func() {
		defer close(exited)
		t := time.NewTicker(interval)
		defer t.Stop()
		SampleRuntime()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				SampleRuntime()
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() {
			close(done)
			<-exited
		})
	}
}
