package obs_test

import (
	"math"
	"testing"

	"simprof/internal/core"
	"simprof/internal/obs"
	"simprof/internal/workloads"
)

type pipelineResult struct {
	oracleCPI uint64 // Float64bits
	k         int
	sil       uint64
	estCPI    uint64
	se        uint64
	unitIDs   []int
	assign    []int
	alloc     []int
}

func runPipeline(t *testing.T) pipelineResult {
	t.Helper()
	opts := workloads.Options{
		Cores: 4, TextBytes: 48 << 20, SortBytes: 64 << 20,
		GraphScale: 15, GraphEdgeFactor: 12,
		SparkIterations: 5, HadoopIterations: 2,
	}
	cfg := core.DefaultConfig()
	cfg.Seed = 11
	in, err := workloads.DefaultInput("wc", opts)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := core.ProfileWorkload("wc", "hadoop", in, opts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ph, err := core.FormPhases(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := core.SelectPoints(ph, 20, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pipelineResult{
		oracleCPI: math.Float64bits(tr.OracleCPI()),
		k:         ph.K,
		sil:       math.Float64bits(ph.Silhouette),
		estCPI:    math.Float64bits(sp.EstCPI),
		se:        math.Float64bits(sp.SE),
		unitIDs:   sp.UnitIDs,
		assign:    ph.Assign,
		alloc:     sp.Alloc,
	}
}

// TestTelemetryDoesNotPerturbPipeline is the determinism contract of
// DESIGN.md §10: every numeric pipeline output is bit-for-bit identical
// with telemetry recording on or off. Instrumentation may count and
// time, but it may not touch an RNG stream or a floating-point
// accumulation.
func TestTelemetryDoesNotPerturbPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline run")
	}
	obs.Disable()
	off := runPipeline(t)

	obs.Enable()
	root := obs.StartRun("determinism-test")
	on := runPipeline(t)
	root.End()
	obs.Disable()

	if off.oracleCPI != on.oracleCPI {
		t.Errorf("oracle CPI differs: %x vs %x", off.oracleCPI, on.oracleCPI)
	}
	if off.k != on.k || off.sil != on.sil {
		t.Errorf("phase formation differs: k %d/%d sil %x/%x", off.k, on.k, off.sil, on.sil)
	}
	if off.estCPI != on.estCPI || off.se != on.se {
		t.Errorf("estimate differs: est %x/%x se %x/%x", off.estCPI, on.estCPI, off.se, on.se)
	}
	if len(off.unitIDs) != len(on.unitIDs) {
		t.Fatalf("sample sizes differ: %d vs %d", len(off.unitIDs), len(on.unitIDs))
	}
	for i := range off.unitIDs {
		if off.unitIDs[i] != on.unitIDs[i] {
			t.Fatalf("unit id %d differs: %d vs %d", i, off.unitIDs[i], on.unitIDs[i])
		}
	}
	for i := range off.assign {
		if off.assign[i] != on.assign[i] {
			t.Fatalf("assignment %d differs", i)
		}
	}
	for h := range off.alloc {
		if off.alloc[h] != on.alloc[h] {
			t.Fatalf("allocation %d differs: %d vs %d", h, off.alloc[h], on.alloc[h])
		}
	}

	// The enabled run should actually have recorded something.
	if len(obs.Default().Snapshot()) == 0 {
		t.Error("enabled run recorded no metrics — instrumentation missing")
	}
	if tree := obs.SpanTree(); tree == nil || len(tree.Children) == 0 {
		t.Error("enabled run recorded no spans")
	}
}
