package obs

import (
	"math"
	"runtime"
	"runtime/metrics"
	"testing"
	"time"
)

// TestSampleRuntime: one sample populates the gauges with sane values.
func TestSampleRuntime(t *testing.T) {
	Enable()
	defer func() {
		Default().Reset()
		Disable()
	}()
	SampleRuntime()
	if g := rtGoroutines.Value(); g < 1 {
		t.Fatalf("runtime.goroutines = %v, want >= 1", g)
	}
	if b := rtHeapBytes.Value(); b <= 0 {
		t.Fatalf("runtime.heap_bytes = %v, want > 0", b)
	}
}

// TestRuntimeCollectorLifecycle: the collector samples on its ticker and
// stop blocks until the goroutine is gone (no leak), idempotently.
func TestRuntimeCollectorLifecycle(t *testing.T) {
	Enable()
	defer func() {
		Default().Reset()
		Disable()
	}()
	before := runtime.NumGoroutine()
	stop := StartRuntimeCollector(time.Millisecond)
	time.Sleep(10 * time.Millisecond)
	stop()
	stop() // second call must not panic or block
	deadline := time.Now().Add(time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Fatalf("collector leaked goroutines: %d > %d", n, before)
	}
	if g := rtGoroutines.Value(); g < 1 {
		t.Fatalf("collector never sampled: goroutines gauge = %v", g)
	}
	// Disabled or zero interval: no goroutine at all.
	noop := StartRuntimeCollector(0)
	noop()
}

// TestRuntimeHistQuantile: bucket-edge quantiles over a synthetic
// runtime histogram.
func TestRuntimeHistQuantile(t *testing.T) {
	h := &metrics.Float64Histogram{
		Counts:  []uint64{90, 9, 1},
		Buckets: []float64{0, 0.001, 0.01, 0.1},
	}
	if got := runtimeHistQuantile(h, 0.5); got != 0.001 {
		t.Fatalf("p50 = %v, want 0.001", got)
	}
	if got := runtimeHistQuantile(h, 0.99); got != 0.01 {
		t.Fatalf("p99 = %v, want 0.01", got)
	}
	if got := runtimeHistQuantile(h, 1); got != 0.1 {
		t.Fatalf("p100 = %v, want 0.1", got)
	}
	// +Inf top bucket falls back to the last finite edge.
	inf := &metrics.Float64Histogram{
		Counts:  []uint64{1, 1},
		Buckets: []float64{0, 1, math.Inf(1)},
	}
	if got := runtimeHistQuantile(inf, 1); got != 1 {
		t.Fatalf("+Inf bucket quantile = %v, want 1 (last finite edge)", got)
	}
	if got := runtimeHistQuantile(&metrics.Float64Histogram{}, 0.5); got != 0 {
		t.Fatalf("empty histogram quantile = %v, want 0", got)
	}
	if got := runtimeHistQuantile(nil, 0.5); got != 0 {
		t.Fatalf("nil histogram quantile = %v, want 0", got)
	}
}
