package obs

import (
	"fmt"
	"sort"
	"sync"
	"testing"
)

// TestVecBasics: children are per-label-tuple, reused on repeat lookups
// and independent across tuples.
func TestVecBasics(t *testing.T) {
	Enable()
	defer Disable()
	r := NewRegistry()

	cv := r.CounterVec("req", "requests", "route", "status")
	cv.With("/a", "200").Add(3)
	cv.With("/a", "200").Inc()
	cv.With("/a", "500").Inc()
	if got := cv.With("/a", "200").Value(); got != 4 {
		t.Fatalf("child value = %d, want 4", got)
	}
	if got := cv.With("/a", "500").Value(); got != 1 {
		t.Fatalf("child value = %d, want 1", got)
	}

	gv := r.GaugeVec("depth", "", "queue")
	gv.With("fast").Set(2)
	gv.With("slow").Set(9)
	if got := gv.With("fast").Value(); got != 2 {
		t.Fatalf("gauge child = %v, want 2", got)
	}

	hv := r.HistogramVec("lat", "", []string{"route"}, 1, 10)
	hv.With("/a").Observe(0.5)
	hv.With("/a").Observe(5)
	hv.With("/b").Observe(100)
	if got := hv.With("/a").Count(); got != 2 {
		t.Fatalf("hist child count = %d, want 2", got)
	}
}

// TestVecDisabledReturnsNil: the disabled path hands out nil children
// whose methods no-op, and records nothing.
func TestVecDisabledReturnsNil(t *testing.T) {
	Disable()
	r := NewRegistry()
	cv := r.CounterVec("req", "", "route")
	if c := cv.With("/a"); c != nil {
		t.Fatalf("disabled With returned %v, want nil", c)
	}
	cv.With("/a").Inc() // must not panic
	Enable()
	defer Disable()
	if got := cv.With("/a").Value(); got != 0 {
		t.Fatalf("disabled increment leaked a count: %d", got)
	}
}

// TestVecRegistrationIdempotent: the same name returns the same family.
func TestVecRegistrationIdempotent(t *testing.T) {
	Enable()
	defer Disable()
	r := NewRegistry()
	a := r.CounterVec("same", "", "l")
	b := r.CounterVec("same", "other help ignored", "l")
	if a != b {
		t.Fatal("re-registration returned a different vec")
	}
	a.With("x").Inc()
	if got := b.With("x").Value(); got != 1 {
		t.Fatalf("aliased vec sees %d, want 1", got)
	}
}

// TestVecCardinalityBound: beyond maxCardinality distinct tuples, new
// tuples collapse into the shared overflow child instead of growing.
func TestVecCardinalityBound(t *testing.T) {
	Enable()
	defer Disable()
	r := NewRegistry()
	cv := r.CounterVec("tenants", "", "tenant")
	for i := 0; i < maxCardinality+50; i++ {
		cv.With(fmt.Sprintf("t%04d", i)).Inc()
	}
	cv.set.mu.Lock()
	n := len(cv.set.keys)
	cv.set.mu.Unlock()
	if n > maxCardinality+1 {
		t.Fatalf("vec grew to %d children, bound is %d(+overflow)", n, maxCardinality)
	}
	if got := cv.With(overflowLabel).Value(); got < 50 {
		t.Fatalf("overflow child absorbed %d, want >= 50", got)
	}
	// A pre-bound tuple still resolves to its own child.
	if got := cv.With("t0001").Value(); got != 1 {
		t.Fatalf("pre-bound child = %d, want 1", got)
	}
}

// TestVecLabelArityPanics: a wrong-arity tuple is a programming error.
func TestVecLabelArityPanics(t *testing.T) {
	Enable()
	defer Disable()
	r := NewRegistry()
	cv := r.CounterVec("req", "", "route", "status")
	defer func() {
		if recover() == nil {
			t.Fatal("wrong label arity did not panic")
		}
	}()
	cv.With("only-one")
}

// TestSnapshotLabeledOrdering: the snapshot is sorted by name, kind,
// then the canonical sorted label-pair key — and the order is identical
// no matter the insertion order.
func TestSnapshotLabeledOrdering(t *testing.T) {
	Enable()
	defer Disable()
	for trial := 0; trial < 2; trial++ {
		r := NewRegistry()
		cv := r.CounterVec("req", "", "route", "status")
		hv := r.HistogramVec("lat", "", []string{"route"}, 1, 10)
		c := r.Counter("alpha", "")
		if trial == 0 {
			cv.With("/b", "200").Inc()
			cv.With("/a", "500").Inc()
			cv.With("/a", "200").Inc()
			hv.With("/z").Observe(1)
			hv.With("/a").Observe(2)
			c.Inc()
		} else {
			c.Inc()
			hv.With("/a").Observe(2)
			cv.With("/a", "200").Inc()
			hv.With("/z").Observe(1)
			cv.With("/a", "500").Inc()
			cv.With("/b", "200").Inc()
		}
		snap := r.Snapshot()
		var got []string
		for _, m := range snap {
			got = append(got, m.Name+"|"+m.Kind+"|"+m.LabelsKey())
		}
		want := []string{
			"alpha|counter|",
			"lat|histogram|route=/a",
			"lat|histogram|route=/z",
			"req|counter|route=/a,status=200",
			"req|counter|route=/a,status=500",
			"req|counter|route=/b,status=200",
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: snapshot has %d metrics %v, want %d", trial, len(got), got, len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: snapshot[%d] = %q, want %q", trial, i, got[i], want[i])
			}
		}
	}
}

// TestSnapshotOrderingUnderConcurrency: ordering stays sorted while
// children are being created and incremented concurrently.
func TestSnapshotOrderingUnderConcurrency(t *testing.T) {
	Enable()
	defer Disable()
	r := NewRegistry()
	cv := r.CounterVec("req", "", "route")
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				cv.With(fmt.Sprintf("/r%d", (w*7+i)%20)).Inc()
				i++
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		snap := r.Snapshot()
		if !sort.SliceIsSorted(snap, func(a, b int) bool {
			if snap[a].Name != snap[b].Name {
				return snap[a].Name < snap[b].Name
			}
			if snap[a].Kind != snap[b].Kind {
				return snap[a].Kind < snap[b].Kind
			}
			return snap[a].LabelsKey() < snap[b].LabelsKey()
		}) {
			close(stop)
			wg.Wait()
			t.Fatalf("snapshot %d not sorted", i)
		}
	}
	close(stop)
	wg.Wait()
}

// TestVecReset: Reset zeroes children but keeps handles valid.
func TestVecReset(t *testing.T) {
	Enable()
	defer Disable()
	r := NewRegistry()
	cv := r.CounterVec("req", "", "route")
	hv := r.HistogramVec("lat", "", []string{"route"}, 1)
	child := cv.With("/a")
	child.Add(5)
	hv.With("/a").Observe(0.5)
	r.Reset()
	if got := child.Value(); got != 0 {
		t.Fatalf("reset child = %d, want 0", got)
	}
	if got := hv.With("/a").Count(); got != 0 {
		t.Fatalf("reset hist child count = %d, want 0", got)
	}
	child.Inc()
	if got := cv.With("/a").Value(); got != 1 {
		t.Fatalf("post-reset handle records %d, want 1", got)
	}
}
